// Package pervasivegrid reproduces "Towards a Pervasive Grid" (Hingne,
// Joshi, Finin, Kargupta, Houstis; IPPS 2003): a runtime that combines
// wireless sensor networks, mobile devices, and the wired computational
// Grid behind a multi-agent framework with semantic service discovery,
// dynamic service composition, and adaptive partitioning of query
// computation across sensors, base stations, and grid resources.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are under cmd/ and examples/. The
// benchmark suite in bench_test.go regenerates every experiment table
// (E1–E10, recorded in EXPERIMENTS.md).
package pervasivegrid
