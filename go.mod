module pervasivegrid

go 1.22
