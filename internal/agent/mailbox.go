package agent

import "fmt"

// Mailbox overload control: the paper's grid must keep its control plane
// alive when the data plane saturates ("mission control" still needs
// telemetry while a burst drowns a worker). Every agent mailbox is two
// bounded lanes — a normal lane and a priority lane for telemetry and
// control ontologies — and a platform-wide policy decides what a full
// lane does with the next envelope: reject it, evict the oldest, or park
// the sender.

// MailboxPolicy selects what a full mailbox lane does with an incoming
// envelope.
type MailboxPolicy int

const (
	// DropNewest rejects the incoming envelope with ErrMailboxFull — the
	// sender finds out immediately and its retry layer takes over (the
	// platform's original semantics).
	DropNewest MailboxPolicy = iota
	// DropOldest evicts the oldest queued envelope to admit the new one.
	// The evicted envelope is dead-lettered with DropShedOldest — fresh
	// data beats stale data, the right trade for sensor readings.
	DropOldest
	// Block parks the sender until the lane has room or the agent stops.
	// Backpressure instead of loss; use where senders can afford to wait.
	Block
)

// String renders the policy for flags and experiment tables.
func (mp MailboxPolicy) String() string {
	switch mp {
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	case Block:
		return "block"
	}
	return "unknown"
}

// ParseMailboxPolicy parses a -mailbox-policy flag value.
func ParseMailboxPolicy(s string) (MailboxPolicy, error) {
	switch s {
	case "drop-newest", "":
		return DropNewest, nil
	case "drop-oldest":
		return DropOldest, nil
	case "block":
		return Block, nil
	}
	return DropNewest, fmt.Errorf("agent: unknown mailbox policy %q (drop-newest, drop-oldest, block)", s)
}

// DefaultMailboxCapacity bounds the normal lane when MailboxOptions is
// zero (the capacity agents have had since PR 1).
const DefaultMailboxCapacity = 64

// DefaultHighCapacity bounds the priority lane.
const DefaultHighCapacity = 16

// MailboxOptions bounds agent mailboxes platform-wide. Read at Register
// time; set before registering agents.
type MailboxOptions struct {
	// Capacity is the normal lane depth (default 64).
	Capacity int
	// HighCapacity is the priority lane depth (default 16).
	HighCapacity int
	// Policy is the overload behaviour (default DropNewest).
	Policy MailboxPolicy
}

func (m MailboxOptions) withDefaults() MailboxOptions {
	if m.Capacity <= 0 {
		m.Capacity = DefaultMailboxCapacity
	}
	if m.HighCapacity <= 0 {
		m.HighCapacity = DefaultHighCapacity
	}
	return m
}

// mailboxDeputy is the innermost deputy: it admits envelopes into the
// registration's lanes under the platform's overload policy. It replaces
// directDeputy (kept for compatibility) as the deputy Register builds.
type mailboxDeputy struct {
	p   *Platform
	reg *registration
}

// Deliver implements Deputy.
func (d *mailboxDeputy) Deliver(env Envelope) error {
	lane := d.reg.mailbox
	if env.HighPriority() {
		lane = d.reg.high
	}
	select {
	case lane <- env:
		return nil
	default:
	}
	switch d.p.Mailbox.Policy {
	case DropOldest:
		// Evict until the new envelope fits. Bounded attempts: under
		// heavy producer contention the slot we free can be stolen, and
		// losing that race a few times means the lane is churning fast
		// enough that rejecting is fair.
		for i := 0; i < 4; i++ {
			select {
			case old := <-lane:
				d.p.shed(old, DropShedOldest)
			default:
				// The agent drained the lane between probes.
			}
			select {
			case lane <- env:
				return nil
			default:
			}
		}
		d.p.noteShed()
		return ErrMailboxFull
	case Block:
		select {
		case lane <- env:
			return nil
		case <-d.reg.quit:
			// The agent is stopping; unblock the sender with the
			// transient error so its retry layer can re-route.
			return ErrMailboxFull
		}
	default: // DropNewest
		d.p.noteShed()
		return ErrMailboxFull
	}
}

// shed dead-letters an envelope evicted by overload control and counts
// it as shed load.
func (p *Platform) shed(env Envelope, reason DropReason) {
	p.noteShed()
	p.deadLetter(env, reason)
}

// noteShed bumps the shed-load accounting.
func (p *Platform) noteShed() {
	p.shedded.Add(1)
	p.metrics.Counter("agent_shed_total", "policy", p.Mailbox.Policy.String()).Inc()
}
