package agent

import (
	"sync"
	"testing"
	"time"
)

func TestContractNetAwardsCheapestBid(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()

	var mu sync.Mutex
	performed := map[ID]int{}
	makeBidder := func(id ID, cost float64) {
		t.Helper()
		err := p.Register(id, Bidder(
			func(CFP) float64 { return cost },
			func(Award) {
				mu.Lock()
				performed[id]++
				mu.Unlock()
			},
		), Attributes{Agent: map[string]string{AttrRole: RoleProvider}}, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	makeBidder("expensive", 10)
	makeBidder("cheap", 2)
	makeBidder("middling", 5)

	res, err := ContractNet(p, []ID{"expensive", "cheap", "middling"},
		CFP{Task: "solve-pde"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "cheap" || res.Cost != 2 {
		t.Fatalf("result = %+v, want cheap@2", res)
	}
	if res.Proposals != 3 {
		t.Fatalf("proposals = %d", res.Proposals)
	}
	// The winner (and only the winner) performs the task.
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		done := performed["cheap"] == 1
		mu.Unlock()
		if done {
			break
		}
		select {
		case <-deadline:
			t.Fatal("winner never performed the task")
		case <-time.After(5 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if performed["expensive"] != 0 || performed["middling"] != 0 {
		t.Fatalf("losers performed: %v", performed)
	}
}

func TestContractNetRefusals(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	if err := p.Register("refuser", Bidder(func(CFP) float64 { return -1 }, nil), Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("willing", Bidder(func(CFP) float64 { return 7 }, nil), Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := ContractNet(p, []ID{"refuser", "willing"}, CFP{Task: "t"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "willing" || res.Refusals != 1 || res.Proposals != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestContractNetNobodyBids(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	if err := p.Register("r1", Bidder(func(CFP) float64 { return -1 }, nil), Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := ContractNet(p, []ID{"r1"}, CFP{Task: "t"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "" || res.Refusals != 1 {
		t.Fatalf("result = %+v, want no winner", res)
	}
}

func TestContractNetDeadlineWithSilentContractor(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	// One contractor never answers; the deadline must still end the round.
	if err := p.Register("silent", HandlerFunc(func(Envelope, *Context) {}), Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("bidder", Bidder(func(CFP) float64 { return 3 }, nil), Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := ContractNet(p, []ID{"silent", "bidder"}, CFP{Task: "t"}, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "bidder" {
		t.Fatalf("result = %+v", res)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("negotiation did not respect the deadline")
	}
}

func TestContractNetValidation(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	if _, err := ContractNet(p, nil, CFP{}, time.Second); err == nil {
		t.Fatal("empty contractor list should fail")
	}
	if _, err := ContractNet(p, []ID{"ghost"}, CFP{}, time.Second); err == nil {
		t.Fatal("unreachable contractors should fail")
	}
}
