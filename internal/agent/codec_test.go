package agent

import (
	"testing"
	"testing/quick"
)

func TestKQMLRoundTrip(t *testing.T) {
	c := KQMLCodec{}
	in := map[string]string{
		"temperature": "42.5",
		"room":        "210",
		"note":        `has "quotes" and \backslashes\ and spaces`,
		"empty":       "",
	}
	data, err := c.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	if err := c.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip size %d != %d", len(out), len(in))
	}
	for k, v := range in {
		if out[k] != v {
			t.Fatalf("key %q: %q != %q", k, out[k], v)
		}
	}
}

func TestKQMLDeterministicOrder(t *testing.T) {
	c := KQMLCodec{}
	m := map[string]string{"b": "2", "a": "1"}
	d1, _ := c.Marshal(m)
	d2, _ := c.Marshal(m)
	if string(d1) != string(d2) {
		t.Fatal("kqml encoding should be deterministic")
	}
	if string(d1) != `(:a "1" :b "2")` {
		t.Fatalf("encoding = %s", d1)
	}
}

func TestKQMLErrors(t *testing.T) {
	c := KQMLCodec{}
	if _, err := c.Marshal("not a map"); err == nil {
		t.Fatal("non-map marshal should fail")
	}
	if _, err := c.Marshal(map[string]string{"bad key": "v"}); err == nil {
		t.Fatal("key with space should fail")
	}
	var out map[string]string
	for _, bad := range []string{"", "no parens", "(:key)", "(:key unquoted)", `(:key "unterminated`, `(key "v")`} {
		if err := c.Unmarshal([]byte(bad), &out); err == nil {
			t.Fatalf("Unmarshal(%q) should fail", bad)
		}
	}
	var wrong string
	if err := c.Unmarshal([]byte(`(:a "1")`), &wrong); err == nil {
		t.Fatal("decode into non-map should fail")
	}
}

func TestPropertyKQMLRoundTrip(t *testing.T) {
	c := KQMLCodec{}
	f := func(keys []uint8, vals []string) bool {
		m := map[string]string{}
		for i, k := range keys {
			if i >= len(vals) {
				break
			}
			m["k"+string(rune('a'+k%26))] = vals[i]
		}
		data, err := c.Marshal(m)
		if err != nil {
			return false
		}
		var out map[string]string
		if err := c.Unmarshal(data, &out); err != nil {
			return false
		}
		if len(out) != len(m) {
			return false
		}
		for k, v := range m {
			if out[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRegistry(t *testing.T) {
	r := NewCodecRegistry()
	if _, ok := r.Lookup("application/json"); !ok {
		t.Fatal("json codec missing")
	}
	if _, ok := r.Lookup("kqml"); !ok {
		t.Fatal("kqml codec missing")
	}
	if _, ok := r.Lookup("x-proto"); ok {
		t.Fatal("unknown codec should miss")
	}
}

func TestEnvelopeWithKQML(t *testing.T) {
	r := NewCodecRegistry()
	body := map[string]string{"performing": "tell", "content": "fire in r8"}
	env, err := NewEnvelopeWith(KQMLCodec{}, "a", "b", "tell", "fire-onto", body)
	if err != nil {
		t.Fatal(err)
	}
	if env.ContentType != "kqml" {
		t.Fatalf("content type = %s", env.ContentType)
	}
	var out map[string]string
	if err := env.DecodeWith(r, &out); err != nil {
		t.Fatal(err)
	}
	if out["content"] != "fire in r8" {
		t.Fatalf("decoded = %v", out)
	}
	// JSON Decode must refuse the kqml body.
	var j map[string]string
	if err := env.Decode(&j); err == nil {
		t.Fatal("json decode of kqml content type should fail")
	}
}

func TestConvertTranscoderJSONToKQML(t *testing.T) {
	r := NewCodecRegistry()
	env, err := NewEnvelope("a", "b", "inform", "o", map[string]string{"temp": "451"})
	if err != nil {
		t.Fatal(err)
	}
	tc := ConvertTranscoder(r, "kqml")
	out, err := tc(env)
	if err != nil {
		t.Fatal(err)
	}
	if out.ContentType != "kqml" {
		t.Fatalf("content type = %s", out.ContentType)
	}
	var m map[string]string
	if err := out.DecodeWith(r, &m); err != nil {
		t.Fatal(err)
	}
	if m["temp"] != "451" {
		t.Fatalf("converted body = %v", m)
	}
	// Round-trip back to JSON.
	back, err := ConvertTranscoder(r, "application/json")(out)
	if err != nil {
		t.Fatal(err)
	}
	var j map[string]string
	if err := back.Decode(&j); err != nil {
		t.Fatal(err)
	}
	if j["temp"] != "451" {
		t.Fatalf("round trip = %v", j)
	}
	// Same-type conversion is a no-op.
	same, err := tc(out)
	if err != nil || string(same.Content) != string(out.Content) {
		t.Fatal("same-type conversion should be identity")
	}
}

func TestConvertTranscoderOnDeputy(t *testing.T) {
	// A KQML-speaking agent behind a transcoding deputy receives
	// converted messages from a JSON-speaking sender.
	r := NewCodecRegistry()
	p := NewPlatform("test")
	defer p.Close()
	got := make(chan map[string]string, 1)
	err := p.Register("kqml-agent", HandlerFunc(func(env Envelope, ctx *Context) {
		if env.ContentType != "kqml" {
			t.Errorf("agent saw content type %s", env.ContentType)
		}
		var m map[string]string
		if err := env.DecodeWith(r, &m); err == nil {
			got <- m
		}
	}), Attributes{}, func(next Deputy) Deputy {
		return NewTranscodingDeputy(next, ConvertTranscoder(r, "kqml"))
	})
	if err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnvelope("sender", "kqml-agent", "inform", "o", map[string]string{"alert": "toxin"})
	if err := p.Send(env); err != nil {
		t.Fatal(err)
	}
	m := <-got
	if m["alert"] != "toxin" {
		t.Fatalf("received %v", m)
	}
}
