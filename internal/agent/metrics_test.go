package agent

import (
	"testing"
	"time"

	"pervasivegrid/internal/obs"
)

func TestMetricsSnapshotDeliverLatency(t *testing.T) {
	p := NewPlatform("metrics-node")
	defer p.Close()
	sink := newCollector(50)
	if err := p.Register("sink", sink, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}

	const sends = 50
	for i := 0; i < sends; i++ {
		env, err := NewEnvelope("test", "sink", "inform", "m", i)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Send(env); err != nil {
			t.Fatal(err)
		}
	}
	sink.wait(t)

	snap := p.MetricsSnapshot()
	h, ok := snap.Histograms["agent_deliver_latency_seconds"]
	if !ok {
		t.Fatalf("deliver latency histogram missing; have %v", keys(snap.Histograms))
	}
	if h.Count != sends {
		t.Fatalf("histogram count = %d, want %d", h.Count, sends)
	}
	if h.P99 <= 0 {
		t.Fatalf("p99 = %v, want > 0", h.P99)
	}
	if h.P50 > h.P95 || h.P95 > h.P99 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", h.P50, h.P95, h.P99)
	}
	if h.P99 > h.Max || h.P50 < h.Min {
		t.Fatalf("quantiles outside observed range: min=%v max=%v p50=%v p99=%v", h.Min, h.Max, h.P50, h.P99)
	}

	if c, ok := snap.Counters["agent_delivered_total"]; !ok || c != sends {
		t.Fatalf("agent_delivered_total = %v, want %d", c, sends)
	}
	if _, ok := snap.Gauges[`agent_mailbox_depth{agent="sink"}`]; !ok {
		t.Fatalf("mailbox depth gauge missing; have %v", keys(snap.Gauges))
	}
}

func TestMetricsDeadLetterCounter(t *testing.T) {
	p := NewPlatform("metrics-node")
	defer p.Close()
	env, err := NewEnvelope("test", "nobody", "inform", "m", "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(env); err == nil {
		t.Fatal("send to unknown agent should fail")
	}
	snap := p.MetricsSnapshot()
	if c := snap.Counters[`agent_dead_letter_total{reason="no_route"}`]; c != 1 {
		t.Fatalf("dead letter counter = %v, want 1; have %v", c, keys(snap.Counters))
	}
}

func TestTraceIDPropagatesThroughReply(t *testing.T) {
	p := NewPlatform("trace-node")
	p.Tracer = obs.NewTracer(64)
	defer p.Close()
	if err := p.Register("echo", HandlerFunc(func(env Envelope, ctx *Context) {
		if env.TraceID == 0 {
			t.Error("handler received envelope without trace id")
		}
		out, err := env.Reply("inform", "ok")
		if err != nil {
			t.Error(err)
			return
		}
		out.From = ctx.Self
		_ = ctx.Platform.Send(out)
	}), Attributes{}, nil); err != nil {
		t.Fatal(err)
	}

	reply, err := Call(p, "echo", "request", "m", "hi", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.TraceID == 0 {
		t.Fatal("reply lost the trace id")
	}
	spans := p.Tracer.Trace(reply.TraceID)
	if len(spans) < 4 {
		t.Fatalf("want >= 4 spans (send+deliver each way), got %d:\n%s",
			len(spans), p.Tracer.Timeline(reply.TraceID))
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
