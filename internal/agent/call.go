package agent

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// callCounter hands out unique ephemeral caller IDs per process.
var callCounter atomic.Uint64

// ErrCallTimeout reports a Call that received no reply in time.
var ErrCallTimeout = errors.New("agent: call timed out")

// Call performs a synchronous request/reply conversation: it registers an
// ephemeral agent, sends the request, waits for the correlated reply (an
// envelope whose InReplyTo matches the request), and cleans up. It is the
// convenience layer CLI tools and tests use; long-lived agents should hold
// their own registration instead.
func Call(p *Platform, to ID, performative, ontology string, body any, timeout time.Duration) (Envelope, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	self := ID(fmt.Sprintf("caller-%d", callCounter.Add(1)))
	replies := make(chan Envelope, 4)
	err := p.Register(self, HandlerFunc(func(env Envelope, ctx *Context) {
		select {
		case replies <- env:
		default:
		}
	}), Attributes{Agent: map[string]string{AttrRole: RoleClient}}, nil)
	if err != nil {
		return Envelope{}, err
	}
	defer p.Deregister(self)

	env, err := NewEnvelope(self, to, performative, ontology, body)
	if err != nil {
		return Envelope{}, err
	}
	env.Seq = p.seq.next() // assign now so we can correlate
	if err := p.Send(env); err != nil {
		return Envelope{}, err
	}

	deadline := p.clock().After(timeout)
	for {
		select {
		case r := <-replies:
			if r.InReplyTo == env.Seq {
				return r, nil
			}
			// A stray envelope — an unrelated broadcast (InReplyTo 0)
			// or a reply to an earlier conversation: keep waiting.
		case <-deadline:
			return Envelope{}, fmt.Errorf("%w: %s -> %s after %v", ErrCallTimeout, performative, to, timeout)
		}
	}
}
