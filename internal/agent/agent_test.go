package agent

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pervasivegrid/internal/leak"
)

// collector is a handler that records envelopes.
type collector struct {
	mu   sync.Mutex
	got  []Envelope
	done chan struct{} // closed after want messages, when set
	want int
}

func newCollector(want int) *collector {
	return &collector{done: make(chan struct{}), want: want}
}

func (c *collector) Handle(env Envelope, ctx *Context) {
	c.mu.Lock()
	c.got = append(c.got, env)
	n := len(c.got)
	c.mu.Unlock()
	if c.want > 0 && n == c.want {
		close(c.done)
	}
}

func (c *collector) wait(t *testing.T) []Envelope {
	t.Helper()
	select {
	case <-c.done:
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for envelopes")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Envelope(nil), c.got...)
}

func TestEnvelopeRoundTrip(t *testing.T) {
	type body struct {
		Temp float64 `json:"temp"`
	}
	env, err := NewEnvelope("a", "b", "inform", "building-temp", body{Temp: 42.5})
	if err != nil {
		t.Fatal(err)
	}
	if env.ContentType != "application/json" || env.Ontology != "building-temp" {
		t.Fatalf("envelope meta = %+v", env)
	}
	var out body
	if err := env.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Temp != 42.5 {
		t.Fatalf("decoded = %+v", out)
	}
	env.ContentType = "text/plain"
	if err := env.Decode(&out); err == nil {
		t.Fatal("decoding non-JSON content type should fail")
	}
}

func TestEnvelopeReplyCorrelation(t *testing.T) {
	env, err := NewEnvelope("client", "server", "request", "onto", "ping")
	if err != nil {
		t.Fatal(err)
	}
	env.Seq = 77
	r, err := env.Reply("inform", "pong")
	if err != nil {
		t.Fatal(err)
	}
	if r.From != "server" || r.To != "client" || r.InReplyTo != 77 || r.Ontology != "onto" {
		t.Fatalf("reply = %+v", r)
	}
}

func TestPlatformLocalDelivery(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	c := newCollector(1)
	if err := p.Register("sink", c, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnvelope("src", "sink", "inform", "o", "hello")
	if err := p.Send(env); err != nil {
		t.Fatal(err)
	}
	got := c.wait(t)
	if len(got) != 1 || got[0].Seq == 0 {
		t.Fatalf("got %+v", got)
	}
	if p.Delivered() != 1 {
		t.Fatalf("delivered = %d", p.Delivered())
	}
}

func TestPlatformUnknownDestination(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	env, _ := NewEnvelope("a", "ghost", "inform", "o", nil)
	if err := p.Send(env); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("err = %v, want ErrUnknownAgent", err)
	}
	if p.Dropped() != 1 {
		t.Fatalf("dropped = %d", p.Dropped())
	}
}

func TestPlatformDuplicateRegistration(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	h := HandlerFunc(func(Envelope, *Context) {})
	if err := p.Register("a", h, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("a", h, Attributes{}, nil); err == nil {
		t.Fatal("duplicate id should fail")
	}
	if err := p.Register("", h, Attributes{}, nil); err == nil {
		t.Fatal("empty id should fail")
	}
	if err := p.Register("b", nil, Attributes{}, nil); err == nil {
		t.Fatal("nil handler should fail")
	}
}

func TestAgentRequestReply(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	// Echo server agent.
	err := p.Register("echo", HandlerFunc(func(env Envelope, ctx *Context) {
		r, err := env.Reply("inform", "echoed")
		if err != nil {
			t.Errorf("reply: %v", err)
			return
		}
		if err := ctx.Send(r); err != nil {
			t.Errorf("send reply: %v", err)
		}
	}), Attributes{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := newCollector(1)
	if err := p.Register("client", c, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnvelope("client", "echo", "request", "o", "hi")
	if err := p.Send(env); err != nil {
		t.Fatal(err)
	}
	got := c.wait(t)
	if got[0].From != "echo" || got[0].InReplyTo == 0 {
		t.Fatalf("reply = %+v", got[0])
	}
}

func TestAttributesAndRoles(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	h := HandlerFunc(func(Envelope, *Context) {})
	attrs := Attributes{
		Agent:  map[string]string{AttrRole: RoleBroker},
		Domain: map[string]string{"market": "stocks"},
	}
	if err := p.Register("b1", h, attrs, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("p1", h, Attributes{Agent: map[string]string{AttrRole: RoleProvider}}, nil); err != nil {
		t.Fatal(err)
	}
	got, ok := p.Attributes("b1")
	if !ok || got.Role() != RoleBroker || got.Domain["market"] != "stocks" {
		t.Fatalf("attributes = %+v ok=%v", got, ok)
	}
	// Mutating the copy must not affect the platform's view.
	got.Domain["market"] = "hacked"
	again, _ := p.Attributes("b1")
	if again.Domain["market"] != "stocks" {
		t.Fatal("attributes leaked by reference")
	}
	brokers := p.FindByRole(RoleBroker)
	if len(brokers) != 1 || brokers[0] != "b1" {
		t.Fatalf("brokers = %v", brokers)
	}
}

func TestDeregisterStopsAgent(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	c := newCollector(1)
	if err := p.Register("x", c, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	p.Deregister("x")
	env, _ := NewEnvelope("a", "x", "inform", "o", nil)
	if err := p.Send(env); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("send after deregister = %v", err)
	}
	p.Deregister("x") // idempotent
}

func TestCloseRejectsTraffic(t *testing.T) {
	p := NewPlatform("test")
	if err := p.Register("a", HandlerFunc(func(Envelope, *Context) {}), Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	env, _ := NewEnvelope("x", "a", "inform", "o", nil)
	if err := p.Send(env); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v", err)
	}
	if err := p.Register("b", HandlerFunc(func(Envelope, *Context) {}), Attributes{}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close = %v", err)
	}
}

func TestDisconnectionDeputyBuffersAndFlushes(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	c := newCollector(3)
	var dd *DisconnectionDeputy
	err := p.Register("mobile", c, Attributes{}, func(next Deputy) Deputy {
		dd = NewDisconnectionDeputy(next)
		return dd
	})
	if err != nil {
		t.Fatal(err)
	}
	dd.SetConnected(false)
	for i := 0; i < 3; i++ {
		env, _ := NewEnvelope("src", "mobile", "inform", "o", i)
		if err := p.Send(env); err != nil {
			t.Fatal(err)
		}
	}
	if dd.Buffered() != 3 {
		t.Fatalf("buffered = %d, want 3", dd.Buffered())
	}
	time.Sleep(20 * time.Millisecond)
	c.mu.Lock()
	early := len(c.got)
	c.mu.Unlock()
	if early != 0 {
		t.Fatalf("agent saw %d envelopes while disconnected", early)
	}
	if flushed := dd.SetConnected(true); flushed != 3 {
		t.Fatalf("flushed = %d, want 3", flushed)
	}
	got := c.wait(t)
	// Order preserved.
	for i, env := range got {
		var v int
		if err := env.Decode(&v); err != nil || v != i {
			t.Fatalf("envelope %d decoded %d (err %v)", i, v, err)
		}
	}
}

func TestDisconnectionDeputyOverflow(t *testing.T) {
	base := &directDeputy{mailbox: make(chan Envelope, 1)}
	dd := NewDisconnectionDeputy(base)
	dd.MaxBuffer = 2
	dd.SetConnected(false)
	for i := 0; i < 2; i++ {
		if err := dd.Deliver(Envelope{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dd.Deliver(Envelope{}); err == nil {
		t.Fatal("overflow should fail")
	}
	if dd.Dropped() != 1 {
		t.Fatalf("dropped = %d", dd.Dropped())
	}
}

func TestTranscodingDeputy(t *testing.T) {
	base := &directDeputy{mailbox: make(chan Envelope, 4)}
	td := NewTranscodingDeputy(base, TruncateTranscoder(5))
	env, _ := NewEnvelope("a", "b", "inform", "o", "a very long payload that exceeds the cap")
	if err := td.Deliver(env); err != nil {
		t.Fatal(err)
	}
	got := <-base.mailbox
	if len(got.Content) != 5 {
		t.Fatalf("content length = %d, want 5", len(got.Content))
	}
	if got.ContentType == "application/json" {
		t.Fatal("truncated content must not claim to be JSON")
	}
	// Error propagation.
	bad := NewTranscodingDeputy(base, func(Envelope) (Envelope, error) {
		return Envelope{}, errors.New("nope")
	})
	if err := bad.Deliver(env); err == nil {
		t.Fatal("transcoder error should propagate")
	}
}

func TestMailboxOverflow(t *testing.T) {
	block := make(chan struct{})
	p := NewPlatform("test")
	defer func() {
		close(block)
		p.Close()
	}()
	err := p.Register("slow", HandlerFunc(func(Envelope, *Context) {
		<-block
	}), Attributes{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the 64-slot mailbox plus the one being processed.
	overflowed := false
	for i := 0; i < 70; i++ {
		env, _ := NewEnvelope("a", "slow", "inform", "o", i)
		if err := p.Send(env); err != nil {
			if !errors.Is(err, ErrMailboxFull) {
				t.Fatalf("err = %v, want ErrMailboxFull", err)
			}
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Fatal("mailbox never overflowed")
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	// The suite-wide gate (TestMain) would catch a leak eventually; the
	// per-test check attributes gateway/link goroutines to this test.
	leak.Check(t)
	server := NewPlatform("server")
	defer server.Close()
	gw, err := ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// Server-side responder.
	err = server.Register("responder", HandlerFunc(func(env Envelope, ctx *Context) {
		r, err := env.Reply("inform", "pong")
		if err != nil {
			return
		}
		_ = ctx.Send(r)
	}), Attributes{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	client := NewPlatform("client")
	defer client.Close()
	link, err := Dial(client, gw.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	c := newCollector(1)
	if err := client.Register("asker", c, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnvelope("asker", "responder", "request", "o", "ping")
	if err := client.Send(env); err != nil {
		t.Fatal(err)
	}
	got := c.wait(t)
	var body string
	if err := got[0].Decode(&body); err != nil || body != "pong" {
		t.Fatalf("reply body = %q err=%v", body, err)
	}
}

func TestTCPLinkFilter(t *testing.T) {
	server := NewPlatform("server")
	defer server.Close()
	gw, err := ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	client := NewPlatform("client")
	defer client.Close()
	link, err := Dial(client, gw.Addr(), func(id ID) bool { return id == "allowed" })
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	env, _ := NewEnvelope("a", "blocked", "inform", "o", nil)
	if err := client.Send(env); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("filtered send = %v, want ErrUnknownAgent", err)
	}
}

func TestConcurrentSends(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	const n = 200
	c := newCollector(n)
	if err := p.Register("sink", c, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			env, _ := NewEnvelope(ID(fmt.Sprintf("src%d", i)), "sink", "inform", "o", i)
			for {
				err := p.Send(env)
				if err == nil {
					return
				}
				if errors.Is(err, ErrMailboxFull) {
					time.Sleep(time.Millisecond)
					continue
				}
				errs <- err
				return
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got := c.wait(t)
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	// Sequence numbers must be unique.
	seen := map[uint64]bool{}
	for _, env := range got {
		if seen[env.Seq] {
			t.Fatalf("duplicate seq %d", env.Seq)
		}
		seen[env.Seq] = true
	}
}

func TestCallSynchronous(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	err := p.Register("adder", HandlerFunc(func(env Envelope, ctx *Context) {
		var in []int
		if err := env.Decode(&in); err != nil {
			return
		}
		sum := 0
		for _, v := range in {
			sum += v
		}
		r, err := env.Reply("inform", sum)
		if err != nil {
			return
		}
		_ = ctx.Send(r)
	}), Attributes{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := Call(p, "adder", "request", "math", []int{1, 2, 3}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var sum int
	if err := reply.Decode(&sum); err != nil || sum != 6 {
		t.Fatalf("sum = %d err=%v", sum, err)
	}
	// The ephemeral caller is gone.
	for _, id := range p.Agents() {
		if id != "adder" {
			t.Fatalf("ephemeral agent %s left behind", id)
		}
	}
}

func TestCallTimeout(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	if err := p.Register("mute", HandlerFunc(func(Envelope, *Context) {}), Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	_, err := Call(p, "mute", "request", "o", "hello", 50*time.Millisecond)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
}

func TestCallUnknownDestination(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	if _, err := Call(p, "ghost", "request", "o", nil, time.Second); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("err = %v, want ErrUnknownAgent", err)
	}
}

func BenchmarkPlatformThroughput(b *testing.B) {
	p := NewPlatform("bench")
	defer p.Close()
	done := make(chan struct{}, 1024)
	if err := p.Register("sink", HandlerFunc(func(Envelope, *Context) {
		done <- struct{}{}
	}), Attributes{}, nil); err != nil {
		b.Fatal(err)
	}
	env, _ := NewEnvelope("src", "sink", "inform", "o", 42)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.Seq = 0
		for {
			if err := p.Send(env); err == nil {
				break
			}
			<-done // drain when the mailbox is full
		}
	}
	// Drain whatever deliveries remain queued.
	for {
		select {
		case <-done:
		default:
			return
		}
	}
}

func TestGatewayCloseIsIdempotent(t *testing.T) {
	server := NewPlatform("server")
	defer server.Close()
	gw, err := ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gw.Close()
	gw.Close() // second close must not panic
}

func TestLinkCloseStopsRouting(t *testing.T) {
	server := NewPlatform("server")
	defer server.Close()
	if err := server.Register("remote", HandlerFunc(func(Envelope, *Context) {}), Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	gw, err := ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	client := NewPlatform("client")
	defer client.Close()
	link, err := Dial(client, gw.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	env, _ := NewEnvelope("a", "remote", "inform", "o", nil)
	if err := client.Send(env); err != nil {
		t.Fatalf("send over live link: %v", err)
	}
	link.Close()
	link.Close() // idempotent
	env2, _ := NewEnvelope("a", "remote", "inform", "o", nil)
	if err := client.Send(env2); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("send over closed link = %v, want ErrUnknownAgent", err)
	}
}

func TestDialUnreachable(t *testing.T) {
	client := NewPlatform("client")
	defer client.Close()
	if _, err := Dial(client, "127.0.0.1:1", nil); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}
