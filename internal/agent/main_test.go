package agent

import (
	"testing"

	"pervasivegrid/internal/leak"
)

// TestMain gates the whole agent suite on goroutine hygiene: every
// platform, link, gateway, and deputy the tests start must be reaped by
// the time the suite exits, or the binary fails with the leaked stacks.
func TestMain(m *testing.M) {
	leak.VerifyTestMain(m)
}
