package agent

import (
	"errors"
	"fmt"
	"sync"
)

// Deputy is the front-end interface for reaching an agent: "each Agent
// Deputy must implement a deliver method". Deputies compose — transcoding
// and disconnection management are decorators around the direct deputy.
type Deputy interface {
	Deliver(env Envelope) error
}

// directDeputy hands envelopes to the agent's mailbox.
type directDeputy struct {
	mailbox chan Envelope
}

// ErrMailboxFull reports an agent that cannot keep up.
var ErrMailboxFull = errors.New("agent: mailbox full")

func (d *directDeputy) Deliver(env Envelope) error {
	select {
	case d.mailbox <- env:
		return nil
	default:
		return ErrMailboxFull
	}
}

// DisconnectionDeputy buffers envelopes while its agent's device is
// disconnected and flushes them on reconnect — the paper's "deputies that
// will provide features of ... disconnection management".
type DisconnectionDeputy struct {
	next Deputy

	mu        sync.Mutex
	connected bool
	buffer    []Envelope
	// MaxBuffer bounds the store-and-forward queue (default 256).
	MaxBuffer int
	dropped   int
}

// NewDisconnectionDeputy wraps next, starting connected.
func NewDisconnectionDeputy(next Deputy) *DisconnectionDeputy {
	return &DisconnectionDeputy{next: next, connected: true, MaxBuffer: 256}
}

// Deliver implements Deputy: pass through when connected, buffer otherwise.
func (d *DisconnectionDeputy) Deliver(env Envelope) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.connected {
		// next is the non-blocking directDeputy (or another deputy whose
		// Deliver never re-enters this one); the re-entrant flush path in
		// SetConnected already delivers outside the lock.
		//lint:ignore lockeddeliver next.Deliver is non-blocking and never re-enters this deputy
		return d.next.Deliver(env)
	}
	max := d.MaxBuffer
	if max <= 0 {
		max = 256
	}
	if len(d.buffer) >= max {
		d.dropped++
		return fmt.Errorf("agent: disconnection buffer full (%d)", max)
	}
	d.buffer = append(d.buffer, env)
	return nil
}

// SetConnected flips connectivity; reconnecting flushes the buffer in
// order. It returns how many buffered envelopes were flushed. The flush
// delivers outside d.mu so a downstream deputy may re-enter this deputy
// (query Buffered, even Deliver) without deadlocking.
func (d *DisconnectionDeputy) SetConnected(up bool) int {
	d.mu.Lock()
	d.connected = up
	if !up {
		d.mu.Unlock()
		return 0
	}
	buf := d.buffer
	d.buffer = nil
	d.mu.Unlock()
	flushed := 0
	for i, env := range buf {
		if err := d.next.Deliver(env); err != nil {
			// Keep the undelivered tail ahead of anything buffered
			// again in the meantime.
			d.mu.Lock()
			d.buffer = append(buf[i:len(buf):len(buf)], d.buffer...)
			d.mu.Unlock()
			return flushed
		}
		flushed++
	}
	return flushed
}

// Buffered reports the store-and-forward queue length.
func (d *DisconnectionDeputy) Buffered() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.buffer)
}

// Dropped reports envelopes lost to buffer overflow.
func (d *DisconnectionDeputy) Dropped() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dropped
}

// Transcoder rewrites an envelope's content from one content type to
// another (e.g. shrinking payloads for a thin link).
type Transcoder func(env Envelope) (Envelope, error)

// TranscodingDeputy applies a transcoder before delivery — the paper's
// "deputies that will provide features of transcoding".
type TranscodingDeputy struct {
	next Deputy
	fn   Transcoder
}

// NewTranscodingDeputy wraps next with the transcoder.
func NewTranscodingDeputy(next Deputy, fn Transcoder) *TranscodingDeputy {
	return &TranscodingDeputy{next: next, fn: fn}
}

// Deliver implements Deputy.
func (t *TranscodingDeputy) Deliver(env Envelope) error {
	if t.fn != nil {
		out, err := t.fn(env)
		if err != nil {
			return fmt.Errorf("agent: transcode: %w", err)
		}
		env = out
	}
	return t.next.Deliver(env)
}

// TruncateTranscoder returns a transcoder that caps Content at max bytes,
// a stand-in for lossy transcoding on constrained links.
func TruncateTranscoder(max int) Transcoder {
	return func(env Envelope) (Envelope, error) {
		if max > 0 && len(env.Content) > max {
			env.Content = env.Content[:max]
			env.ContentType = "application/octet-stream" // no longer valid JSON
		}
		return env, nil
	}
}
