package agent

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Codec encodes and decodes envelope bodies for one content language. The
// envelope's ContentType names the codec, which is how the framework stays
// "ACL and network protocol independent": agents negotiate content
// languages per conversation, and transcoding deputies can convert between
// them in flight.
type Codec interface {
	// ContentType is the wire identifier ("application/json", "kqml").
	ContentType() string
	// Marshal encodes a body value.
	Marshal(v any) ([]byte, error)
	// Unmarshal decodes into the given pointer.
	Unmarshal(data []byte, v any) error
}

// JSONCodec is the default content language.
type JSONCodec struct{}

// ContentType implements Codec.
func (JSONCodec) ContentType() string { return "application/json" }

// Marshal implements Codec.
func (JSONCodec) Marshal(v any) ([]byte, error) { return json.Marshal(v) }

// Unmarshal implements Codec.
func (JSONCodec) Unmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }

// KQMLCodec speaks a KQML-flavoured s-expression syntax:
//
//	(:temperature "42.5" :room "210")
//
// Bodies are map[string]string (or *map[string]string on decode). It
// exists to prove the envelope layer is content-language neutral, as the
// DARPA-KSE heritage of the paper demands.
type KQMLCodec struct{}

// ContentType implements Codec.
func (KQMLCodec) ContentType() string { return "kqml" }

// validKQMLKey reports whether a key is expressible on the wire: no
// spaces, parens, quotes, or colons, and non-empty. Both directions of the
// codec enforce it so decode(encode(m)) and encode(decode(b)) round-trip.
func validKQMLKey(k string) bool {
	return k != "" && !strings.ContainsAny(k, " ()\":")
}

// Marshal implements Codec.
//
//lint:hot budget=5
func (KQMLCodec) Marshal(v any) ([]byte, error) {
	m, ok := v.(map[string]string)
	if !ok {
		return nil, fmt.Errorf("agent: kqml codec encodes map[string]string, got %T", v)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		if !validKQMLKey(k) {
			return nil, fmt.Errorf("agent: kqml key %q contains reserved characters", k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, ":%s %q", k, m[k])
	}
	b.WriteByte(')')
	return []byte(b.String()), nil
}

// Unmarshal implements Codec.
//
//lint:hot budget=9
func (KQMLCodec) Unmarshal(data []byte, v any) error {
	out, ok := v.(*map[string]string)
	if !ok {
		return fmt.Errorf("agent: kqml codec decodes into *map[string]string, got %T", v)
	}
	s := strings.TrimSpace(string(data))
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return fmt.Errorf("agent: kqml body %q is not a list", s)
	}
	s = s[1 : len(s)-1]
	m := map[string]string{}
	i := 0
	for i < len(s) {
		for i < len(s) && s[i] == ' ' {
			i++
		}
		if i >= len(s) {
			break
		}
		if s[i] != ':' {
			return fmt.Errorf("agent: kqml expected :key at %d in %q", i, s)
		}
		i++
		start := i
		for i < len(s) && s[i] != ' ' {
			i++
		}
		key := s[start:i]
		if !validKQMLKey(key) {
			return fmt.Errorf("agent: kqml invalid key %q at %d", key, start)
		}
		for i < len(s) && s[i] == ' ' {
			i++
		}
		if i >= len(s) || s[i] != '"' {
			return fmt.Errorf("agent: kqml expected quoted value for %q", key)
		}
		// Parse the Go-quoted string.
		end := i + 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return fmt.Errorf("agent: kqml unterminated value for %q", key)
		}
		var val string
		if _, err := fmt.Sscanf(s[i:end+1], "%q", &val); err != nil {
			return fmt.Errorf("agent: kqml bad value for %q: %w", key, err)
		}
		m[key] = val
		i = end + 1
	}
	*out = m
	return nil
}

// CodecRegistry maps content types to codecs.
type CodecRegistry struct {
	codecs map[string]Codec
}

// NewCodecRegistry returns a registry preloaded with the JSON and KQML
// codecs.
func NewCodecRegistry() *CodecRegistry {
	r := &CodecRegistry{codecs: map[string]Codec{}}
	r.Register(JSONCodec{})
	r.Register(KQMLCodec{})
	return r
}

// Register adds (or replaces) a codec.
func (r *CodecRegistry) Register(c Codec) { r.codecs[c.ContentType()] = c }

// Lookup finds the codec for a content type.
func (r *CodecRegistry) Lookup(contentType string) (Codec, bool) {
	c, ok := r.codecs[contentType]
	return c, ok
}

// NewEnvelopeWith builds an envelope using an explicit codec.
func NewEnvelopeWith(c Codec, from, to ID, performative, ontology string, body any) (Envelope, error) {
	content, err := c.Marshal(body)
	if err != nil {
		return Envelope{}, fmt.Errorf("agent: encode %s body: %w", c.ContentType(), err)
	}
	return Envelope{
		From: from, To: to,
		Performative: performative,
		ContentType:  c.ContentType(),
		Ontology:     ontology,
		Content:      content,
	}, nil
}

// DecodeWith decodes the envelope body using the registry's codec for its
// content type.
func (e Envelope) DecodeWith(r *CodecRegistry, v any) error {
	c, ok := r.Lookup(e.ContentType)
	if !ok {
		return fmt.Errorf("agent: no codec for content type %q", e.ContentType)
	}
	return c.Unmarshal(e.Content, v)
}

// ConvertTranscoder returns a Transcoder that rewrites envelope bodies from
// one content language to another — the "transcoding" feature the paper
// assigns to agent deputies. Only flat map[string]string bodies convert in
// both directions.
func ConvertTranscoder(r *CodecRegistry, to string) Transcoder {
	return func(env Envelope) (Envelope, error) {
		if env.ContentType == to {
			return env, nil
		}
		src, ok := r.Lookup(env.ContentType)
		if !ok {
			return env, fmt.Errorf("agent: no codec for %q", env.ContentType)
		}
		dst, ok := r.Lookup(to)
		if !ok {
			return env, fmt.Errorf("agent: no codec for %q", to)
		}
		var body map[string]string
		if jc, isJSON := src.(JSONCodec); isJSON {
			if err := jc.Unmarshal(env.Content, &body); err != nil {
				return env, fmt.Errorf("agent: transcode decode: %w", err)
			}
		} else if err := src.Unmarshal(env.Content, &body); err != nil {
			return env, fmt.Errorf("agent: transcode decode: %w", err)
		}
		content, err := dst.Marshal(body)
		if err != nil {
			return env, fmt.Errorf("agent: transcode encode: %w", err)
		}
		env.Content = content
		env.ContentType = to
		return env, nil
	}
}
