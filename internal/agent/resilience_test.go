package agent

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"pervasivegrid/internal/obs"
)

// --- satellite regressions -------------------------------------------------

// TestCallRejectsStrayBroadcast: an uncorrelated envelope (InReplyTo 0)
// must not satisfy a pending Call. Before the fix, any broadcast arriving
// at the ephemeral caller completed the conversation with the wrong body.
func TestCallRejectsStrayBroadcast(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	err := p.Register("noisy", HandlerFunc(func(env Envelope, ctx *Context) {
		// Reply with an unrelated broadcast instead of a correlated reply.
		stray, err := NewEnvelope(ctx.Self, env.From, "inform", "spam", "not-your-reply")
		if err != nil {
			return
		}
		_ = ctx.Send(stray) // InReplyTo stays 0
	}), Attributes{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Call(p, "noisy", "request", "o", "hi", 100*time.Millisecond)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout (stray broadcast must not match)", err)
	}
}

// TestCallSkipsStrayThenAcceptsExactReply: the stray arrives first, the
// real reply second; Call must wait through the stray and return the
// correlated one.
func TestCallSkipsStrayThenAcceptsExactReply(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	err := p.Register("mixed", HandlerFunc(func(env Envelope, ctx *Context) {
		stray, _ := NewEnvelope(ctx.Self, env.From, "inform", "spam", "noise")
		_ = ctx.Send(stray)
		r, err := env.Reply("inform", "real")
		if err != nil {
			return
		}
		_ = ctx.Send(r)
	}), Attributes{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := Call(p, "mixed", "request", "o", "hi", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var body string
	if err := reply.Decode(&body); err != nil || body != "real" {
		t.Fatalf("body = %q err=%v, want the correlated reply", body, err)
	}
}

// TestRemoveRoute: an uninstalled route must stop receiving traffic.
func TestRemoveRoute(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	var accepted int
	id := p.AddRoute(func(env Envelope) bool {
		accepted++
		return true
	})
	env, _ := NewEnvelope("a", "remote", "inform", "o", nil)
	if err := p.Send(env); err != nil {
		t.Fatal(err)
	}
	if !p.RemoveRoute(id) {
		t.Fatal("RemoveRoute reported the route missing")
	}
	if p.RemoveRoute(id) {
		t.Fatal("double removal should report false")
	}
	env2, _ := NewEnvelope("a", "remote", "inform", "o", nil)
	if err := p.Send(env2); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("send after removal = %v, want ErrUnknownAgent", err)
	}
	if accepted != 1 {
		t.Fatalf("route saw %d envelopes after removal", accepted)
	}
}

// TestLinkCloseRemovesRoute: the satellite bug — Link.Close used to leave
// the dead route installed on the platform forever.
func TestLinkCloseRemovesRoute(t *testing.T) {
	server := NewPlatform("server")
	defer server.Close()
	gw, err := ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	client := NewPlatform("client")
	defer client.Close()
	link, err := Dial(client, gw.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if client.Routes() != 1 {
		t.Fatalf("routes = %d before close", client.Routes())
	}
	link.Close()
	if client.Routes() != 0 {
		t.Fatalf("routes = %d after Link.Close, want 0 (route leak)", client.Routes())
	}
}

// TestGatewayCloseRemovesRoute mirrors the link fix on the server side.
func TestGatewayCloseRemovesRoute(t *testing.T) {
	server := NewPlatform("server")
	defer server.Close()
	gw, err := ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if server.Routes() != 1 {
		t.Fatalf("routes = %d", server.Routes())
	}
	gw.Close()
	if server.Routes() != 0 {
		t.Fatalf("routes = %d after Gateway.Close, want 0", server.Routes())
	}
}

// reentrantDeputy queries its parent DisconnectionDeputy from inside
// Deliver — the shape that deadlocked when SetConnected flushed while
// holding d.mu.
type reentrantDeputy struct {
	mu  sync.Mutex
	dd  *DisconnectionDeputy
	got []Envelope
}

func (r *reentrantDeputy) Deliver(env Envelope) error {
	if r.dd != nil {
		_ = r.dd.Buffered() // re-enters the deputy's lock
	}
	r.mu.Lock()
	r.got = append(r.got, env)
	r.mu.Unlock()
	return nil
}

func TestDisconnectionDeputyReentrantFlush(t *testing.T) {
	next := &reentrantDeputy{}
	dd := NewDisconnectionDeputy(next)
	next.dd = dd
	dd.SetConnected(false)
	for i := 0; i < 3; i++ {
		if err := dd.Deliver(Envelope{Seq: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan int, 1)
	go func() { done <- dd.SetConnected(true) }()
	select {
	case flushed := <-done:
		if flushed != 3 {
			t.Fatalf("flushed = %d, want 3", flushed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SetConnected deadlocked against a re-entrant deputy")
	}
	next.mu.Lock()
	defer next.mu.Unlock()
	for i, env := range next.got {
		if env.Seq != uint64(i+1) {
			t.Fatalf("flush order broken: %v", next.got)
		}
	}
}

// TestDisconnectionDeputyFlushFailureKeepsTail: a mid-flush delivery
// failure must keep the undelivered tail buffered, in order.
func TestDisconnectionDeputyFlushFailureKeepsTail(t *testing.T) {
	base := &directDeputy{mailbox: make(chan Envelope, 2)}
	dd := NewDisconnectionDeputy(base)
	dd.SetConnected(false)
	for i := 0; i < 5; i++ {
		if err := dd.Deliver(Envelope{Seq: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Only 2 fit in the mailbox.
	if flushed := dd.SetConnected(true); flushed != 2 {
		t.Fatalf("flushed = %d, want 2", flushed)
	}
	if dd.Buffered() != 3 {
		t.Fatalf("buffered = %d, want the 3-envelope tail", dd.Buffered())
	}
}

// --- retry layer -----------------------------------------------------------

// lossyDeputy silently drops the first n deliveries — a deterministic
// stand-in for a lossy radio.
type lossyDeputy struct {
	mu    sync.Mutex
	next  Deputy
	drops int
}

func (l *lossyDeputy) Deliver(env Envelope) error {
	l.mu.Lock()
	drop := l.drops > 0
	if drop {
		l.drops--
	}
	l.mu.Unlock()
	if drop {
		return nil // swallowed, like a lost packet
	}
	return l.next.Deliver(env)
}

func TestCallRetryRecoversFromLoss(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	err := p.Register("flaky", HandlerFunc(func(env Envelope, ctx *Context) {
		r, err := env.Reply("inform", "finally")
		if err != nil {
			return
		}
		_ = ctx.Send(r)
	}), Attributes{}, func(next Deputy) Deputy {
		return &lossyDeputy{next: next, drops: 2}
	})
	if err != nil {
		t.Fatal(err)
	}
	policy := RetryPolicy{
		MaxAttempts:    5,
		BaseDelay:      5 * time.Millisecond,
		MaxDelay:       20 * time.Millisecond,
		AttemptTimeout: 50 * time.Millisecond,
		Seed:           1,
	}
	reply, err := CallRetry(p, "flaky", "request", "o", "hi", 5*time.Second, policy)
	if err != nil {
		t.Fatal(err)
	}
	var body string
	if err := reply.Decode(&body); err != nil || body != "finally" {
		t.Fatalf("body = %q err=%v", body, err)
	}
	if st := p.DeliveryStats(); st.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2 (two attempts were dropped)", st.Retries)
	}
}

func TestCallRetryExhaustsAgainstTotalLoss(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	err := p.Register("void", HandlerFunc(func(Envelope, *Context) {}),
		Attributes{}, func(next Deputy) Deputy {
			return &lossyDeputy{next: next, drops: 1 << 30}
		})
	if err != nil {
		t.Fatal(err)
	}
	// The fake clock runs a wall-clock-scale backoff schedule (seconds of
	// attempt timeout) in microseconds of real time.
	fc := obs.NewFakeClock()
	stop := fc.AutoAdvance()
	defer stop()
	policy := RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond,
		AttemptTimeout: time.Second, Seed: 1, Clock: fc}
	epoch := fc.Now()
	start := time.Now()
	_, err = CallRetry(p, "void", "request", "o", nil, 30*time.Second, policy)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if elapsed := fc.Now().Sub(epoch); elapsed < 3*time.Second {
		t.Fatalf("fake time advanced %v, want >= 3s (three 1s attempts)", elapsed)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("fake-clock retry schedule burned real wall time")
	}
	if st := p.DeliveryStats(); st.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (3 attempts)", st.Retries)
	}
}

func TestCallRetryHonoursOverallDeadline(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	if err := p.Register("mute", HandlerFunc(func(Envelope, *Context) {}), Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	fc := obs.NewFakeClock()
	stop := fc.AutoAdvance()
	defer stop()
	policy := RetryPolicy{MaxAttempts: 100, BaseDelay: 10 * time.Millisecond,
		AttemptTimeout: 50 * time.Millisecond, Seed: 1, Clock: fc}
	epoch := fc.Now()
	_, err := CallRetry(p, "mute", "request", "o", nil, time.Second, policy)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v", err)
	}
	// The overall deadline, not MaxAttempts, must have stopped the loop:
	// 100 attempts at 50ms each would need 5s of (fake) time.
	if elapsed := fc.Now().Sub(epoch); elapsed > 1100*time.Millisecond {
		t.Fatalf("ran %v of fake time past a 1s overall deadline", elapsed)
	}
}

func TestSendRetryRecoversWhenMailboxDrains(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	block := make(chan struct{})
	closed := false
	defer func() {
		// Runs before the deferred p.Close(): a Fatal path must not leave
		// the handler parked on block, or Close would never return.
		if !closed {
			close(block)
		}
	}()
	entered := make(chan struct{}, 1)
	if err := p.Register("slow", HandlerFunc(func(Envelope, *Context) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-block
	}), Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	// Prime the worker: once the handler holds a message, no mailbox slot
	// can free up until block is closed, so filling to capacity below makes
	// SendRetry's first attempt fail deterministically.
	prime, _ := NewEnvelope("a", "slow", "inform", "o", "prime")
	if err := p.Send(prime); err != nil {
		t.Fatal(err)
	}
	<-entered
	// Fill the mailbox (64) behind the envelope being handled.
	for i := 0; ; i++ {
		env, _ := NewEnvelope("a", "slow", "inform", "o", i)
		if err := p.Send(env); err != nil {
			break
		}
		if i > 200 {
			t.Fatal("mailbox never filled")
		}
	}
	// Drive the backoff schedule by hand: the first attempt must fail
	// (the handler is still blocked when SendRetry parks its first backoff
	// sleep), which guarantees at least one retry without a wall-clock
	// race. Only then is the handler unblocked, and each manual Advance
	// gives the drain a short real-time window before the next attempt.
	fc := obs.NewFakeClock()
	env, _ := NewEnvelope("a", "slow", "inform", "o", "late")
	policy := RetryPolicy{MaxAttempts: 50, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 50 * time.Millisecond, Seed: 1, Clock: fc}
	done := make(chan error, 1)
	go func() { done <- SendRetry(p, env, time.Hour, policy) }()
	for deadline := time.Now().Add(5 * time.Second); ; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("SendRetry = %v", err)
			}
			if st := p.DeliveryStats(); st.Retries == 0 {
				t.Fatal("expected at least one retry")
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("SendRetry never completed")
		}
		if fc.Waiters() > 0 {
			if !closed {
				close(block)
				closed = true
			}
			time.Sleep(time.Millisecond) // real-time window for the drain
			fc.Advance(time.Minute)
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// --- dead-letter accounting ------------------------------------------------

func TestDeadLetterReasons(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	// no_route
	env, _ := NewEnvelope("a", "ghost", "inform", "o", nil)
	if err := p.Send(env); !errors.Is(err, ErrUnknownAgent) {
		t.Fatal(err)
	}
	// mailbox_full
	block := make(chan struct{})
	defer close(block)
	if err := p.Register("slow", HandlerFunc(func(Envelope, *Context) { <-block }), Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	full := false
	for i := 0; i < 200; i++ {
		e, _ := NewEnvelope("a", "slow", "inform", "o", i)
		if err := p.Send(e); errors.Is(err, ErrMailboxFull) {
			full = true
			break
		}
	}
	if !full {
		t.Fatal("mailbox never filled")
	}
	st := p.DeliveryStats()
	if st.Reasons[DropNoRoute] != 1 {
		t.Fatalf("no_route = %d, want 1", st.Reasons[DropNoRoute])
	}
	if st.Reasons[DropMailboxFull] != 1 {
		t.Fatalf("mailbox_full = %d, want 1", st.Reasons[DropMailboxFull])
	}
	if st.DeadLettered != 2 || st.Dropped != 2 {
		t.Fatalf("stats = %+v", st)
	}
	dls := p.DeadLetters()
	if len(dls) != 2 {
		t.Fatalf("retained %d dead letters", len(dls))
	}
	if dls[0].Reason != DropNoRoute || dls[0].Env.To != "ghost" {
		t.Fatalf("oldest dead letter = %+v", dls[0])
	}
}

func TestDeadLetterRingIsBounded(t *testing.T) {
	p := NewPlatform("test")
	defer p.Close()
	n := DefaultDeadLetterCap + 10
	for i := 0; i < n; i++ {
		env, _ := NewEnvelope("a", ID(fmt.Sprintf("ghost-%d", i)), "inform", "o", nil)
		_ = p.Send(env)
	}
	dls := p.DeadLetters()
	if len(dls) != DefaultDeadLetterCap {
		t.Fatalf("ring holds %d, want %d", len(dls), DefaultDeadLetterCap)
	}
	// Oldest retained is the (n-cap)th envelope; newest is the last.
	if dls[0].Env.To != ID(fmt.Sprintf("ghost-%d", n-DefaultDeadLetterCap)) {
		t.Fatalf("oldest retained = %s", dls[0].Env.To)
	}
	if dls[len(dls)-1].Env.To != ID(fmt.Sprintf("ghost-%d", n-1)) {
		t.Fatalf("newest retained = %s", dls[len(dls)-1].Env.To)
	}
	if st := p.DeliveryStats(); st.DeadLettered != uint64(n) {
		t.Fatalf("dead-letter counter = %d, want %d (counter is unbounded)", st.DeadLettered, n)
	}
}

// TestHopBudgetStopsRoutingLoop: two platforms whose routes forward to
// each other must not circulate an unroutable envelope forever.
func TestHopBudgetStopsRoutingLoop(t *testing.T) {
	a := NewPlatform("a")
	defer a.Close()
	b := NewPlatform("b")
	defer b.Close()
	// Each route models a transport: increments Hops at ingress of the
	// peer platform, exactly like Gateway.readLoop does.
	a.AddRoute(func(env Envelope) bool {
		env.Hops++
		return b.Send(env) == nil
	})
	b.AddRoute(func(env Envelope) bool {
		env.Hops++
		return a.Send(env) == nil
	})
	env, _ := NewEnvelope("x", "nowhere", "inform", "o", nil)
	_ = a.Send(env) // must terminate
	expired := a.DeliveryStats().Reasons[DropTTLExpired] + b.DeliveryStats().Reasons[DropTTLExpired]
	if expired == 0 {
		t.Fatal("looping envelope was never dropped as ttl_expired")
	}
}

// --- transport failure paths ----------------------------------------------

// TestGatewaySurvivesPeerClosingMidStream: a peer that sends garbage and
// slams the connection must not take the gateway down.
func TestGatewaySurvivesPeerClosingMidStream(t *testing.T) {
	server := NewPlatform("server")
	defer server.Close()
	c := newCollector(1)
	if err := server.Register("sink", c, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	gw, err := ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// A rude peer: half an envelope, then gone.
	conn, err := net.Dial("tcp", gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(`{"seq":1,"from":"rude","to":"si`)); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A well-behaved peer still gets through.
	client := NewPlatform("client")
	defer client.Close()
	link, err := Dial(client, gw.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	env, _ := NewEnvelope("polite", "sink", "inform", "o", "hello")
	if err := client.Send(env); err != nil {
		t.Fatal(err)
	}
	got := c.wait(t)
	var body string
	if err := got[0].Decode(&body); err != nil || body != "hello" {
		t.Fatalf("body = %q err=%v", body, err)
	}
}

// freeAddr reserves an address and releases it, so a later listener can
// claim it.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDialReconnectToDeadAddressBuffersAndReplays: dialling an address
// nobody is listening on is not an error — envelopes buffer and replay
// once the gateway appears.
func TestDialReconnectToDeadAddressBuffersAndReplays(t *testing.T) {
	addr := freeAddr(t)

	client := NewPlatform("client")
	defer client.Close()
	link := DialReconnect(client, addr, ReconnectOptions{BaseDelay: 5 * time.Millisecond})
	defer link.Close()

	const n = 5
	for i := 0; i < n; i++ {
		env, _ := NewEnvelope("src", "sink", "inform", "o", i)
		if err := client.Send(env); err != nil {
			t.Fatalf("send while down: %v", err)
		}
	}
	if link.Stats().Buffered != n {
		t.Fatalf("buffered = %d, want %d", link.Stats().Buffered, n)
	}

	server := NewPlatform("server")
	defer server.Close()
	c := newCollector(n)
	if err := server.Register("sink", c, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	gw, err := ListenAndServe(server, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	got := c.wait(t)
	for i, env := range got {
		var v int
		if err := env.Decode(&v); err != nil || v != i {
			t.Fatalf("replay order broken at %d: got %d (err %v)", i, v, err)
		}
		if env.Hops != 1 {
			t.Fatalf("hops = %d after one transport ingress", env.Hops)
		}
	}
	st := link.Stats()
	if st.Replayed != n || st.Connects != 1 || st.Buffered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReconnectAfterGatewayRestartReplaysInOrder: the full disconnect →
// buffer → redial → replay cycle against a restarted gateway.
func TestReconnectAfterGatewayRestartReplaysInOrder(t *testing.T) {
	server := NewPlatform("server")
	defer server.Close()
	c := newCollector(4)
	if err := server.Register("sink", c, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	gw, err := ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := gw.Addr()

	client := NewPlatform("client")
	defer client.Close()
	link := DialReconnect(client, addr, ReconnectOptions{BaseDelay: 5 * time.Millisecond})
	defer link.Close()
	waitFor(t, "initial connect", link.Connected)

	env0, _ := NewEnvelope("src", "sink", "inform", "o", 0)
	if err := client.Send(env0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first envelope to land", func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.got) == 1
	})

	// Forced disconnect: the gateway goes away with the connection.
	gw.Close()
	waitFor(t, "link to notice the disconnect", func() bool { return !link.Connected() })

	for i := 1; i <= 3; i++ {
		env, _ := NewEnvelope("src", "sink", "inform", "o", i)
		if err := client.Send(env); err != nil {
			t.Fatalf("send while disconnected: %v", err)
		}
	}

	gw2, err := ListenAndServe(server, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()

	got := c.wait(t)
	for i, env := range got {
		var v int
		if err := env.Decode(&v); err != nil || v != i {
			t.Fatalf("order broken at %d: got %d (err %v); all: %d envelopes", i, v, err, len(got))
		}
	}
	st := link.Stats()
	if st.Connects < 2 {
		t.Fatalf("connects = %d, want a reconnection", st.Connects)
	}
	if st.Replayed != 3 {
		t.Fatalf("replayed = %d, want 3", st.Replayed)
	}
}

// TestReconnectBufferOverflowDeadLetters: the store-and-forward queue is
// bounded; the overflow is accounted, not silent.
func TestReconnectBufferOverflowDeadLetters(t *testing.T) {
	addr := freeAddr(t)
	client := NewPlatform("client")
	defer client.Close()
	link := DialReconnect(client, addr, ReconnectOptions{MaxBuffer: 2, BaseDelay: time.Hour})
	defer link.Close()
	for i := 0; i < 5; i++ {
		env, _ := NewEnvelope("src", "sink", "inform", "o", i)
		if err := client.Send(env); err != nil {
			t.Fatal(err)
		}
	}
	st := link.Stats()
	if st.Buffered != 2 || st.Overflowed != 3 {
		t.Fatalf("stats = %+v", st)
	}
	ds := client.DeliveryStats()
	if ds.Reasons[DropLinkDown] != 3 {
		t.Fatalf("link_down dead letters = %d, want 3", ds.Reasons[DropLinkDown])
	}
	// The oldest envelopes were evicted; the newest two remain queued.
	dls := client.DeadLetters()
	var v int
	if err := dls[0].Env.Decode(&v); err != nil || v != 0 {
		t.Fatalf("first evicted = %d (err %v), want 0", v, err)
	}
}

// TestReconnectLinkCloseDeadLettersBuffer: closing a down link accounts
// for what it was still holding.
func TestReconnectLinkCloseDeadLettersBuffer(t *testing.T) {
	addr := freeAddr(t)
	client := NewPlatform("client")
	defer client.Close()
	link := DialReconnect(client, addr, ReconnectOptions{BaseDelay: time.Hour})
	env, _ := NewEnvelope("src", "sink", "inform", "o", nil)
	if err := client.Send(env); err != nil {
		t.Fatal(err)
	}
	link.Close()
	link.Close() // idempotent
	if client.Routes() != 0 {
		t.Fatalf("routes = %d after close", client.Routes())
	}
	if n := client.DeliveryStats().Reasons[DropLinkDown]; n != 1 {
		t.Fatalf("link_down dead letters = %d, want 1", n)
	}
}
