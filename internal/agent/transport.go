package agent

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/supervise"
)

// Transport: envelopes travel between platforms as newline-delimited JSON
// over TCP. The framework is "network protocol independent" in the Ronin
// sense — a platform only sees RouteFuncs; this file provides the stdlib
// TCP instantiation used by the pgridd daemon. Remote envelopes get their
// Hops count incremented at ingress so the platform's hop budget can stop
// routing loops.

// wireConn wraps a connection with a locked JSON encoder.
type wireConn struct {
	conn net.Conn
	mu   sync.Mutex
	enc  *json.Encoder
}

func newWireConn(c net.Conn) *wireConn {
	return &wireConn{conn: c, enc: json.NewEncoder(c)}
}

// write frames one envelope onto the wire — the per-envelope syscall
// path link batching (ROADMAP item 1) will coalesce.
//
//lint:hot budget=0
func (w *wireConn) write(env Envelope) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(env)
}

// Gateway accepts remote platform connections. Envelopes arriving on a
// connection are injected into the local platform; replies addressed to any
// agent previously seen as a sender on that connection are routed back over
// it.
type Gateway struct {
	platform *Platform
	ln       net.Listener
	routeID  RouteID

	mu    sync.Mutex
	conns map[*wireConn]map[ID]bool // remote IDs seen per connection
	done  chan struct{}
}

// ListenAndServe starts a gateway on addr (e.g. "127.0.0.1:0") and installs
// its reverse route on the platform.
func ListenAndServe(p *Platform, addr string) (*Gateway, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: gateway listen: %w", err)
	}
	g := &Gateway{platform: p, ln: ln, conns: map[*wireConn]map[ID]bool{}, done: make(chan struct{})}
	g.routeID = p.AddRoute(g.route)
	supervise.Spawn("gateway-accept", g.acceptLoop)
	return g, nil
}

// Addr reports the gateway's listen address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// Close stops accepting, closes all connections, and uninstalls the
// gateway's route from the platform.
func (g *Gateway) Close() {
	select {
	case <-g.done:
		return
	default:
		close(g.done)
	}
	g.platform.RemoveRoute(g.routeID)
	g.ln.Close()
	g.mu.Lock()
	for wc := range g.conns {
		wc.conn.Close()
	}
	g.mu.Unlock()
}

func (g *Gateway) acceptLoop() {
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return // listener closed
		}
		wc := newWireConn(conn)
		g.mu.Lock()
		g.conns[wc] = map[ID]bool{}
		g.mu.Unlock()
		supervise.Spawn("gateway-read", func() { g.readLoop(wc) })
	}
}

func (g *Gateway) readLoop(wc *wireConn) {
	defer func() {
		g.mu.Lock()
		delete(g.conns, wc)
		g.mu.Unlock()
		wc.conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(wc.conn))
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		g.mu.Lock()
		g.conns[wc][env.From] = true
		g.mu.Unlock()
		env.Hops++
		g.platform.trace(obs.SpanIngress, env, "gateway")
		_ = g.platform.Send(env) // undeliverable remote envelopes are dead-lettered
	}
}

// route sends envelopes back to remote agents that previously talked to us.
func (g *Gateway) route(env Envelope) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for wc, ids := range g.conns {
		if ids[env.To] {
			return wc.write(env) == nil
		}
	}
	return false
}

// Link is a client-side connection from one platform to a remote gateway.
// It does not survive the connection: see ReconnectLink for the
// disconnection-tolerant variant.
type Link struct {
	platform *Platform
	wc       *wireConn
	filter   func(ID) bool
	routeID  RouteID
	closed   chan struct{}
}

// Dial connects the platform to a remote gateway. Envelopes whose
// destination is not local and passes filter (nil = every non-local ID) are
// forwarded over the link; envelopes arriving from the remote side are
// injected locally.
func Dial(p *Platform, addr string, filter func(ID) bool) (*Link, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: dial gateway: %w", err)
	}
	l := &Link{platform: p, wc: newWireConn(conn), filter: filter, closed: make(chan struct{})}
	l.routeID = p.AddRoute(l.route)
	supervise.Spawn("link-read", l.readLoop)
	return l, nil
}

// Close tears the link down and uninstalls its route from the platform.
func (l *Link) Close() {
	select {
	case <-l.closed:
		return
	default:
		close(l.closed)
	}
	l.platform.RemoveRoute(l.routeID)
	l.wc.conn.Close()
}

func (l *Link) route(env Envelope) bool {
	select {
	case <-l.closed:
		return false
	default:
	}
	if l.filter != nil && !l.filter(env.To) {
		return false
	}
	return l.wc.write(env) == nil
}

func (l *Link) readLoop() {
	dec := json.NewDecoder(bufio.NewReader(l.wc.conn))
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		env.Hops++
		l.platform.trace(obs.SpanIngress, env, "link")
		_ = l.platform.Send(env)
	}
}
