package agent

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/supervise"
)

// Handler is an agent's behaviour: it receives each envelope delivered to
// the agent, together with a platform context for sending replies. Handlers
// for one agent run sequentially on the agent's own goroutine.
type Handler interface {
	Handle(env Envelope, ctx *Context)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(env Envelope, ctx *Context)

// Handle implements Handler.
func (f HandlerFunc) Handle(env Envelope, ctx *Context) { f(env, ctx) }

// Context gives a running agent access to its platform.
type Context struct {
	// Self is the agent's own ID.
	Self ID
	// Platform is the hosting platform.
	Platform *Platform
}

// Send routes an envelope from this agent.
func (c *Context) Send(env Envelope) error {
	env.From = c.Self
	return c.Platform.Send(env)
}

// registration is one hosted agent: its deputy chain, mailbox lanes, and
// attributes. The lane channels are never closed — concurrent deliveries
// (including delayed ones from decorating deputies) may race a
// deregistration, and a send on a closed channel would panic the sender.
// Termination is signalled through quit instead; the agent goroutine
// drains what is already queued and exits. The run loop itself executes
// as a supervised child (see supervision.go): proc is its handle.
type registration struct {
	id      ID
	deputy  Deputy
	attrs   Attributes
	mailbox chan Envelope // normal lane
	high    chan Envelope // priority lane (telemetry / control ontologies)
	quit    chan struct{}
	proc    *supervise.Proc

	// Checkpoint storage for handlers implementing Checkpointer: the
	// last snapshot taken after a successful Handle, restored when
	// supervision restarts the agent.
	ckptMu  sync.Mutex
	ckpt    any
	hasCkpt bool
}

// RouteID names an installed gateway route so it can be removed when the
// underlying transport goes away (see Link.Close, Gateway.Close).
type RouteID uint64

// routeEntry pairs an installed route with its removal handle.
type routeEntry struct {
	id RouteID
	fn RouteFunc
}

// DropReason classifies why an envelope became undeliverable.
type DropReason string

// Drop reasons recorded in the dead-letter ring.
const (
	// DropMailboxFull: the destination deputy rejected the envelope
	// (agent mailbox or disconnection buffer full).
	DropMailboxFull DropReason = "mailbox_full"
	// DropNoRoute: no local agent and no gateway route accepted it.
	DropNoRoute DropReason = "no_route"
	// DropLinkDown: a link's store-and-forward buffer overflowed or was
	// abandoned while its transport was disconnected.
	DropLinkDown DropReason = "link_down"
	// DropTTLExpired: the envelope exceeded the platform hop budget
	// (a routing loop, or a retry storm bouncing between gateways).
	DropTTLExpired DropReason = "ttl_expired"
	// DropShedOldest: overload control evicted this envelope from a full
	// mailbox lane to admit a newer one (MailboxPolicy DropOldest).
	DropShedOldest DropReason = "shed_oldest"
	// DropDeliverPanic: a deputy or route panicked while delivering; the
	// panic was recovered and the envelope abandoned.
	DropDeliverPanic DropReason = "deliver_panic"
)

// DeadLetter is one undeliverable envelope held for post-mortem.
type DeadLetter struct {
	Env    Envelope
	Reason DropReason
}

// DefaultDeadLetterCap bounds the dead-letter ring.
const DefaultDeadLetterCap = 128

// DefaultMaxHops bounds how many platform ingress points an envelope may
// traverse before it is dropped as looping.
const DefaultMaxHops = 16

// DeliveryStats is a point-in-time snapshot of a platform's envelope
// accounting, the paper's "mission control ... evaluating the overall
// performance" view of the messaging layer.
type DeliveryStats struct {
	// Delivered counts envelopes accepted by a deputy or a route.
	Delivered uint64
	// Dropped counts terminally undeliverable envelopes.
	Dropped uint64
	// Retries counts re-attempted sends (CallRetry / SendRetry).
	Retries uint64
	// DeadLettered counts envelopes pushed into the dead-letter ring
	// (equals Dropped; kept separate so the ring can be bounded while
	// the counter is not).
	DeadLettered uint64
	// Shed counts envelopes refused or evicted by mailbox overload
	// control (both rejected-newest and evicted-oldest).
	Shed uint64
	// Reasons breaks Dropped down by drop reason.
	Reasons map[DropReason]uint64
}

// Platform hosts agents and routes envelopes between them. Remote platforms
// are reachable through gateway routes (see transport.go).
type Platform struct {
	Name string

	// MaxHops bounds envelope forwarding across platforms (0 = the
	// DefaultMaxHops budget). Transports increment Envelope.Hops at
	// ingress; Send dead-letters envelopes over budget.
	MaxHops int

	// Tracer, when set, receives a span for every hop an envelope takes
	// through this platform (send, deliver, route, ingress, retry,
	// drop). Envelopes without a TraceID get one assigned on Send so
	// the whole conversation — including replies and remote hops — can
	// be reassembled into a causal timeline. Nil disables tracing.
	Tracer *obs.Tracer

	// Events, when set, receives one wide event per conversation from
	// the retry layer (CallRetry/SendRetry): route, retries, sheds,
	// breaker state, per-attempt latency, outcome. Envelopes get a
	// TraceID assigned on Send whenever Events or Tracer is set, so an
	// event always points at a stitchable trace. Nil disables events.
	Events *obs.EventLog

	// Clock is the time source for deliver-latency measurement and the
	// retry/reconnect layers. Nil means the wall clock; tests inject
	// obs.FakeClock to run backoff schedules without sleeping.
	Clock obs.Clock

	// Supervision selects the restart policy for agent run loops. Nil
	// means supervise.DefaultPolicy() (restart on panic, with backoff
	// and a budget); a policy with Restart false makes the first panic
	// final. Set before registering agents.
	Supervision *supervise.Policy

	// OnAgentDown is the escalation hook: called (from the supervisor's
	// goroutine) when supervision gives up on an agent. The registration
	// stays installed — the hook decides whether to Deregister, replace,
	// or exit. Set before registering agents.
	OnAgentDown func(id ID, err error)

	// OnCheckpoint, when set, observes every checkpoint a supervised
	// Checkpointer handler takes (called from the agent's own goroutine,
	// after the snapshot is stored). The durable store journals these to
	// its WAL so checkpoints survive process death, not just restarts.
	// Set before registering agents.
	OnCheckpoint func(id ID, snapshot any)

	// OnDeadLetter, when set, observes every envelope pushed into the
	// dead-letter ring (called outside the ring lock, after the push).
	// Set before registering agents.
	OnDeadLetter func(dl DeadLetter)

	// OnAgentRestart, when set, is called after supervision decides to
	// restart a crashed agent (from the supervisor's goroutine, before
	// the backoff sleep). The durable store uses it to force-fsync the
	// journal: a crashing agent is exactly the one whose last checkpoint
	// must not be lost. Set before registering agents.
	OnAgentRestart func(id ID, err error)

	// Breakers, when set, guards destinations with per-route circuit
	// breakers: Send outcomes feed them, and SendRetry/CallRetry consult
	// them before each attempt so a destination that telemetry or
	// repeated failures marked bad is shed instead of retried into.
	Breakers *supervise.BreakerSet

	// Mailbox bounds agent mailboxes and picks the overload policy
	// (see MailboxOptions). Read at Register time.
	Mailbox MailboxOptions

	// DeadLetterCap overrides DefaultDeadLetterCap (128) when positive.
	DeadLetterCap int

	mu      sync.RWMutex
	agents  map[ID]*registration
	seeds   map[ID]any // recovered checkpoints awaiting registration
	routes  []routeEntry
	nextRID RouteID
	seq     seqCounter
	closed  bool

	// sup supervises agent run loops; built lazily at first Register.
	sup *supervise.Supervisor

	// delivered counts envelopes successfully handed to a deputy or
	// accepted by a route; dropped counts undeliverable envelopes;
	// retries counts re-attempted sends; shedded counts envelopes
	// refused or evicted by mailbox overload control.
	delivered atomic.Uint64
	dropped   atomic.Uint64
	retries   atomic.Uint64
	shedded   atomic.Uint64

	// p99 slow-keep cache: deliver latencies above slowNanos tail-keep
	// their trace; refreshed from the latency histogram every
	// slowRefreshEvery sends (slowTick) to keep Quantile off the hot
	// path.
	slowNanos atomic.Uint64
	slowTick  atomic.Uint64

	// Dead-letter accounting: a bounded ring of the most recent
	// undeliverable envelopes plus an unbounded per-reason counter.
	dlMu    sync.Mutex
	dlRing  []DeadLetter
	dlNext  int // next write position once the ring is full
	dlTotal uint64
	dlWhy   map[DropReason]uint64

	// metrics is always non-nil for platforms built via NewPlatform;
	// see docs/observability.md for the series catalog.
	metrics *obs.Registry
}

// RouteFunc tries to deliver an envelope to a non-local destination. It
// reports whether it accepted the envelope.
type RouteFunc func(env Envelope) bool

// ErrUnknownAgent reports a send to an ID no route can reach.
var ErrUnknownAgent = errors.New("agent: unknown destination")

// ErrClosed reports use of a closed platform.
var ErrClosed = errors.New("agent: platform closed")

// ErrTTLExpired reports an envelope that exceeded the platform hop budget.
var ErrTTLExpired = errors.New("agent: envelope hop budget exhausted")

// NewPlatform builds an empty platform.
func NewPlatform(name string) *Platform {
	return &Platform{
		Name:    name,
		agents:  map[ID]*registration{},
		seeds:   map[ID]any{},
		dlWhy:   map[DropReason]uint64{},
		metrics: obs.NewRegistry(),
	}
}

// Metrics exposes the platform's metric registry so co-located
// subsystems (runtime, injectors) can record into the same snapshot.
func (p *Platform) Metrics() *obs.Registry { return p.metrics }

// MetricsSnapshot captures every platform metric, including the
// agent_deliver_latency_seconds histogram with p50/p95/p99.
func (p *Platform) MetricsSnapshot() obs.Snapshot { return p.metrics.Snapshot() }

// clock returns the configured time source (wall clock by default).
func (p *Platform) clock() obs.Clock {
	if p.Clock != nil {
		return p.Clock
	}
	return obs.Real
}

// trace records a hop span when tracing is enabled.
func (p *Platform) trace(kind string, env Envelope, note string) {
	if p.Tracer == nil || env.TraceID == 0 {
		return
	}
	p.Tracer.Record(obs.Span{
		Trace: env.TraceID,
		Seq:   env.Seq,
		Time:  p.clock().Now(),
		Node:  p.Name,
		Kind:  kind,
		From:  string(env.From),
		To:    string(env.To),
		Note:  note,
	})
}

// Register hosts an agent under id with the given behaviour and attributes.
// The returned error is non-nil when the ID is taken or the platform is
// closed. A default mailbox deputy is used unless wrap decorates it (wrap
// may be nil). The agent's run loop executes as a supervised child: a
// panicking handler is recovered and the loop restarted under the
// platform's Supervision policy, restoring the handler's last checkpoint
// when it implements Checkpointer.
func (p *Platform) Register(id ID, h Handler, attrs Attributes, wrap func(Deputy) Deputy) error {
	if id == "" || h == nil {
		return fmt.Errorf("agent: register needs an id and a handler")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if _, ok := p.agents[id]; ok {
		return fmt.Errorf("agent: id %q already registered", id)
	}
	mb := p.Mailbox.withDefaults()
	reg := &registration{
		id:      id,
		attrs:   attrs.Clone(),
		mailbox: make(chan Envelope, mb.Capacity),
		high:    make(chan Envelope, mb.HighCapacity),
		quit:    make(chan struct{}),
	}
	var d Deputy = &mailboxDeputy{p: p, reg: reg}
	if wrap != nil {
		d = wrap(d)
	}
	reg.deputy = d
	p.agents[id] = reg

	ctx := &Context{Self: id, Platform: p}
	cp, _ := h.(Checkpointer)
	if cp != nil {
		// A checkpoint recovered from durable storage (SeedCheckpoint
		// before Register) becomes the agent's starting state.
		if snap, ok := p.seeds[id]; ok {
			reg.ckpt, reg.hasCkpt = snap, true
			delete(p.seeds, id)
		}
	}
	handle := func(env Envelope) {
		h.Handle(env, ctx)
		if cp != nil {
			snap := cp.Checkpoint()
			reg.ckptMu.Lock()
			reg.ckpt, reg.hasCkpt = snap, true
			reg.ckptMu.Unlock()
			if fn := p.OnCheckpoint; fn != nil {
				fn(id, snap)
			}
		}
	}
	reg.proc = p.supervisorLocked().Spawn("agent:"+string(id), func(stop <-chan struct{}) {
		if cp != nil {
			reg.ckptMu.Lock()
			snap, ok := reg.ckpt, reg.hasCkpt
			reg.ckptMu.Unlock()
			if ok {
				cp.Restore(snap)
			}
		}
		for {
			// Priority lane first: telemetry and control envelopes are
			// handled ahead of queued data-plane traffic.
			select {
			case env := <-reg.high:
				handle(env)
				continue
			default:
			}
			select {
			case env := <-reg.high:
				handle(env)
			case env := <-reg.mailbox:
				handle(env)
			case <-reg.quit:
				drainLanes(reg, handle)
				return
			case <-stop:
				drainLanes(reg, handle)
				return
			}
		}
	})
	return nil
}

// drainLanes handles whatever was queued before a stop, priority lane
// first, then exits.
func drainLanes(reg *registration, handle func(Envelope)) {
	for {
		select {
		case env := <-reg.high:
			handle(env)
		default:
			select {
			case env := <-reg.mailbox:
				handle(env)
			default:
				return
			}
		}
	}
}

// Deregister removes an agent and stops its goroutine (after it drains its
// mailbox).
func (p *Platform) Deregister(id ID) {
	p.mu.Lock()
	reg, ok := p.agents[id]
	if ok {
		delete(p.agents, id)
	}
	p.mu.Unlock()
	if ok {
		close(reg.quit)
		reg.proc.Stop()
	}
}

// Deputy returns the deputy fronting an agent, or nil. Other agents (and
// transports) talk to the deputy, never to the agent directly — the Ronin
// indirection.
func (p *Platform) Deputy(id ID) Deputy {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if reg, ok := p.agents[id]; ok {
		return reg.deputy
	}
	return nil
}

// Attributes returns a copy of an agent's attributes and whether it exists.
func (p *Platform) Attributes(id ID) (Attributes, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	reg, ok := p.agents[id]
	if !ok {
		return Attributes{}, false
	}
	return reg.attrs.Clone(), true
}

// Agents lists hosted agent IDs in sorted order.
func (p *Platform) Agents() []ID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]ID, 0, len(p.agents))
	for id := range p.agents {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindByRole lists agents whose framework role attribute equals role.
func (p *Platform) FindByRole(role string) []ID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []ID
	for id, reg := range p.agents {
		if reg.attrs.Role() == role {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddRoute appends a gateway route for non-local destinations and returns
// a handle for RemoveRoute.
func (p *Platform) AddRoute(r RouteFunc) RouteID {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextRID++
	id := p.nextRID
	// Copy-on-write so Send can iterate a snapshot outside the lock.
	routes := make([]routeEntry, len(p.routes), len(p.routes)+1)
	copy(routes, p.routes)
	p.routes = append(routes, routeEntry{id: id, fn: r})
	return id
}

// RemoveRoute uninstalls a route. It reports whether the handle was
// installed. Transports must call this when they close, or the dead route
// leaks and keeps rejecting (or worse, black-holing) traffic.
func (p *Platform) RemoveRoute(id RouteID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, e := range p.routes {
		if e.id == id {
			routes := make([]routeEntry, 0, len(p.routes)-1)
			routes = append(routes, p.routes[:i]...)
			routes = append(routes, p.routes[i+1:]...)
			p.routes = routes
			return true
		}
	}
	return false
}

// Routes reports how many gateway routes are installed.
func (p *Platform) Routes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.routes)
}

// Send assigns a sequence number and routes the envelope: local deputy
// first, then gateway routes in order. Undeliverable envelopes land in the
// dead-letter ring with a drop reason.
//
//lint:hot budget=30
func (p *Platform) Send(env Envelope) error {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrClosed
	}
	reg, local := p.agents[env.To]
	routes := p.routes
	p.mu.RUnlock()

	if env.Seq == 0 {
		env.Seq = p.seq.next()
	}
	if (p.Tracer != nil || p.Events != nil) && env.TraceID == 0 {
		env.TraceID = obs.NewTraceID()
	}
	p.trace(obs.SpanSend, env, "")
	maxHops := p.MaxHops
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	if env.Hops > maxHops {
		p.deadLetter(env, DropTTLExpired)
		return fmt.Errorf("%w: %q after %d hops", ErrTTLExpired, env.To, env.Hops)
	}
	if local {
		start := p.clock().Now()
		if err := p.safeDeliver(reg.deputy, env); err != nil {
			reason := DropMailboxFull
			if errors.Is(err, ErrDeliverPanic) {
				reason = DropDeliverPanic
			}
			p.deadLetter(env, reason)
			p.breakerFailure(env.To)
			return err
		}
		p.delivered.Add(1)
		lat := p.clock().Now().Sub(start)
		p.metrics.Histogram("agent_deliver_latency_seconds").
			Observe(lat.Seconds())
		p.noteSlow(env.TraceID, lat)
		p.metrics.Gauge("agent_mailbox_depth", "agent", string(env.To)).
			Set(float64(len(reg.mailbox) + len(reg.high)))
		p.metrics.Counter("agent_delivered_total").Inc()
		p.trace(obs.SpanDeliver, env, "")
		p.breakerSuccess(env.To)
		return nil
	}
	anyPanicked := false
	for _, r := range routes {
		accepted, panicked := safeRoute(r.fn, env)
		anyPanicked = anyPanicked || panicked
		if accepted {
			p.delivered.Add(1)
			p.metrics.Counter("agent_delivered_total").Inc()
			p.metrics.Counter("agent_route_delivered_total",
				"route", strconv.FormatUint(uint64(r.id), 10)).Inc()
			p.trace(obs.SpanRoute, env, "route "+strconv.FormatUint(uint64(r.id), 10))
			p.breakerSuccess(env.To)
			return nil
		}
	}
	p.breakerFailure(env.To)
	if anyPanicked {
		p.deadLetter(env, DropDeliverPanic)
		return fmt.Errorf("%w: route to %q", ErrDeliverPanic, env.To)
	}
	p.deadLetter(env, DropNoRoute)
	return fmt.Errorf("%w: %q", ErrUnknownAgent, env.To)
}

// deadLetter records a terminally undeliverable envelope. The ring is
// bounded by DeadLetterCap (default DefaultDeadLetterCap); once full,
// the oldest retained letter is evicted and counted.
func (p *Platform) deadLetter(env Envelope, reason DropReason) {
	p.dropped.Add(1)
	p.metrics.Counter("agent_dead_letter_total", "reason", string(reason)).Inc()
	p.trace(obs.SpanDrop, env, string(reason))
	dl := DeadLetter{Env: env, Reason: reason}
	p.dlMu.Lock()
	p.dlTotal++
	p.dlWhy[reason]++
	p.pushDeadLetterLocked(dl)
	p.dlMu.Unlock()
	if fn := p.OnDeadLetter; fn != nil {
		fn(dl)
	}
}

// pushDeadLetterLocked appends to the ring, evicting the oldest letter
// once the ring is at capacity. Caller holds p.dlMu.
func (p *Platform) pushDeadLetterLocked(dl DeadLetter) {
	ringCap := p.DeadLetterCap
	if ringCap <= 0 {
		ringCap = DefaultDeadLetterCap
	}
	if len(p.dlRing) < ringCap {
		p.dlRing = append(p.dlRing, dl)
		p.metrics.Gauge("agent_dead_letter_depth").Set(float64(len(p.dlRing)))
		return
	}
	p.dlRing[p.dlNext] = dl
	p.dlNext = (p.dlNext + 1) % len(p.dlRing)
	p.metrics.Counter("agent_dead_letter_evicted_total").Inc()
	p.metrics.Gauge("agent_dead_letter_depth").Set(float64(len(p.dlRing)))
}

// RestoreDeadLetters refills the ring with letters recovered from
// durable storage (oldest first), counting them into the per-reason
// totals but not firing OnDeadLetter — the recovered letters are
// already journaled. Call before traffic starts.
func (p *Platform) RestoreDeadLetters(letters []DeadLetter) {
	p.dlMu.Lock()
	defer p.dlMu.Unlock()
	for _, dl := range letters {
		p.dropped.Add(1)
		p.dlTotal++
		p.dlWhy[dl.Reason]++
		p.pushDeadLetterLocked(dl)
	}
}

// slowRefreshEvery spaces out the Quantile(0.99) lookups that feed the
// slow-keep threshold; a power of two so the tick check is a mask.
const slowRefreshEvery = 256

// noteSlow tail-keeps the trace of any deliver slower than the cached
// p99 of agent_deliver_latency_seconds — the "why was this one slow?"
// conversations survive head sampling. The threshold refreshes lazily
// so the hot path pays two atomic ops, not a histogram scan.
func (p *Platform) noteSlow(trace uint64, lat time.Duration) {
	if p.Tracer == nil || trace == 0 {
		return
	}
	if p.slowTick.Add(1)&(slowRefreshEvery-1) == 1 {
		p99 := p.metrics.Histogram("agent_deliver_latency_seconds").Quantile(0.99)
		p.slowNanos.Store(uint64(p99 * float64(time.Second)))
	}
	if thr := p.slowNanos.Load(); thr > 0 && lat > 0 && uint64(lat) > thr {
		p.Tracer.KeepTrace(trace)
	}
}

// noteRetry bumps the retry counter (CallRetry / SendRetry attempts beyond
// the first).
func (p *Platform) noteRetry() {
	p.retries.Add(1)
	p.metrics.Counter("agent_retries_total").Inc()
}

// DeliveryStats snapshots the platform's envelope accounting.
func (p *Platform) DeliveryStats() DeliveryStats {
	st := DeliveryStats{
		Delivered: p.delivered.Load(),
		Dropped:   p.dropped.Load(),
		Retries:   p.retries.Load(),
		Shed:      p.shedded.Load(),
		Reasons:   map[DropReason]uint64{},
	}
	p.dlMu.Lock()
	st.DeadLettered = p.dlTotal
	for k, v := range p.dlWhy {
		st.Reasons[k] = v
	}
	p.dlMu.Unlock()
	return st
}

// DeadLetters returns the retained dead letters, oldest first.
func (p *Platform) DeadLetters() []DeadLetter {
	p.dlMu.Lock()
	defer p.dlMu.Unlock()
	out := make([]DeadLetter, 0, len(p.dlRing))
	out = append(out, p.dlRing[p.dlNext:]...)
	out = append(out, p.dlRing[:p.dlNext]...)
	return out
}

// Delivered and Dropped report routing counters.
func (p *Platform) Delivered() uint64 { return p.delivered.Load() }

// Dropped reports envelopes that could not be routed or delivered.
func (p *Platform) Dropped() uint64 { return p.dropped.Load() }

// Close stops every agent. Subsequent Sends fail with ErrClosed.
func (p *Platform) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	regs := make([]*registration, 0, len(p.agents))
	for _, reg := range p.agents {
		regs = append(regs, reg)
	}
	p.agents = map[ID]*registration{}
	p.routes = nil
	p.mu.Unlock()
	for _, reg := range regs {
		close(reg.quit)
		reg.proc.Stop()
	}
}
