package agent

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Handler is an agent's behaviour: it receives each envelope delivered to
// the agent, together with a platform context for sending replies. Handlers
// for one agent run sequentially on the agent's own goroutine.
type Handler interface {
	Handle(env Envelope, ctx *Context)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(env Envelope, ctx *Context)

// Handle implements Handler.
func (f HandlerFunc) Handle(env Envelope, ctx *Context) { f(env, ctx) }

// Context gives a running agent access to its platform.
type Context struct {
	// Self is the agent's own ID.
	Self ID
	// Platform is the hosting platform.
	Platform *Platform
}

// Send routes an envelope from this agent.
func (c *Context) Send(env Envelope) error {
	env.From = c.Self
	return c.Platform.Send(env)
}

// registration is one hosted agent: its deputy chain, mailbox, and
// attributes.
type registration struct {
	id      ID
	deputy  Deputy
	attrs   Attributes
	mailbox chan Envelope
	done    chan struct{}
}

// Platform hosts agents and routes envelopes between them. Remote platforms
// are reachable through gateway routes (see transport.go).
type Platform struct {
	Name string

	mu     sync.RWMutex
	agents map[ID]*registration
	routes []RouteFunc
	seq    seqCounter
	closed bool

	// Delivered counts envelopes successfully handed to a deputy.
	delivered atomic64
	// Dropped counts undeliverable envelopes.
	dropped atomic64
}

type atomic64 struct {
	mu sync.Mutex
	n  uint64
}

func (a *atomic64) inc() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

func (a *atomic64) get() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// RouteFunc tries to deliver an envelope to a non-local destination. It
// reports whether it accepted the envelope.
type RouteFunc func(env Envelope) bool

// ErrUnknownAgent reports a send to an ID no route can reach.
var ErrUnknownAgent = errors.New("agent: unknown destination")

// ErrClosed reports use of a closed platform.
var ErrClosed = errors.New("agent: platform closed")

// NewPlatform builds an empty platform.
func NewPlatform(name string) *Platform {
	return &Platform{Name: name, agents: map[ID]*registration{}}
}

// Register hosts an agent under id with the given behaviour and attributes.
// The returned error is non-nil when the ID is taken or the platform is
// closed. A default direct deputy is used unless wrap decorates it (wrap
// may be nil).
func (p *Platform) Register(id ID, h Handler, attrs Attributes, wrap func(Deputy) Deputy) error {
	if id == "" || h == nil {
		return fmt.Errorf("agent: register needs an id and a handler")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if _, ok := p.agents[id]; ok {
		return fmt.Errorf("agent: id %q already registered", id)
	}
	reg := &registration{
		id:      id,
		attrs:   attrs.Clone(),
		mailbox: make(chan Envelope, 64),
		done:    make(chan struct{}),
	}
	var d Deputy = &directDeputy{mailbox: reg.mailbox}
	if wrap != nil {
		d = wrap(d)
	}
	reg.deputy = d
	p.agents[id] = reg

	ctx := &Context{Self: id, Platform: p}
	go func() {
		defer close(reg.done)
		for env := range reg.mailbox {
			h.Handle(env, ctx)
		}
	}()
	return nil
}

// Deregister removes an agent and stops its goroutine (after it drains its
// mailbox).
func (p *Platform) Deregister(id ID) {
	p.mu.Lock()
	reg, ok := p.agents[id]
	if ok {
		delete(p.agents, id)
	}
	p.mu.Unlock()
	if ok {
		close(reg.mailbox)
		<-reg.done
	}
}

// Deputy returns the deputy fronting an agent, or nil. Other agents (and
// transports) talk to the deputy, never to the agent directly — the Ronin
// indirection.
func (p *Platform) Deputy(id ID) Deputy {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if reg, ok := p.agents[id]; ok {
		return reg.deputy
	}
	return nil
}

// Attributes returns a copy of an agent's attributes and whether it exists.
func (p *Platform) Attributes(id ID) (Attributes, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	reg, ok := p.agents[id]
	if !ok {
		return Attributes{}, false
	}
	return reg.attrs.Clone(), true
}

// Agents lists hosted agent IDs in sorted order.
func (p *Platform) Agents() []ID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]ID, 0, len(p.agents))
	for id := range p.agents {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindByRole lists agents whose framework role attribute equals role.
func (p *Platform) FindByRole(role string) []ID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []ID
	for id, reg := range p.agents {
		if reg.attrs.Role() == role {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddRoute appends a gateway route for non-local destinations.
func (p *Platform) AddRoute(r RouteFunc) {
	p.mu.Lock()
	p.routes = append(p.routes, r)
	p.mu.Unlock()
}

// Send assigns a sequence number and routes the envelope: local deputy
// first, then gateway routes in order.
func (p *Platform) Send(env Envelope) error {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrClosed
	}
	reg, local := p.agents[env.To]
	routes := p.routes
	p.mu.RUnlock()

	if env.Seq == 0 {
		env.Seq = p.seq.next()
	}
	if local {
		if err := reg.deputy.Deliver(env); err != nil {
			p.dropped.inc()
			return err
		}
		p.delivered.inc()
		return nil
	}
	for _, r := range routes {
		if r(env) {
			p.delivered.inc()
			return nil
		}
	}
	p.dropped.inc()
	return fmt.Errorf("%w: %q", ErrUnknownAgent, env.To)
}

// Delivered and Dropped report routing counters.
func (p *Platform) Delivered() uint64 { return p.delivered.get() }

// Dropped reports envelopes that could not be routed or delivered.
func (p *Platform) Dropped() uint64 { return p.dropped.get() }

// Close stops every agent. Subsequent Sends fail with ErrClosed.
func (p *Platform) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	regs := make([]*registration, 0, len(p.agents))
	for _, reg := range p.agents {
		regs = append(regs, reg)
	}
	p.agents = map[ID]*registration{}
	p.mu.Unlock()
	for _, reg := range regs {
		close(reg.mailbox)
		<-reg.done
	}
}
