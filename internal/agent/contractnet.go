package agent

import (
	"fmt"
	"time"
)

// Contract-net negotiation: the paper requires agents that "negotiate with
// other agents about appropriate mediating interfaces or performance
// commitments". This file implements the classic contract-net protocol on
// top of the envelope layer: an initiator issues a call-for-proposals to
// candidate contractors, collects bids, awards the task to the best bid,
// and informs the losers.

// CFP is a call-for-proposals body.
type CFP struct {
	// Task describes the work being tendered.
	Task string `json:"task"`
	// Payload carries task-specific parameters.
	Payload map[string]string `json:"payload,omitempty"`
}

// Proposal is a contractor's bid.
type Proposal struct {
	// Willing is false for an explicit refusal.
	Willing bool `json:"willing"`
	// Cost is the bid (lower wins): the "performance commitment".
	Cost float64 `json:"cost"`
	// Note carries free-form terms.
	Note string `json:"note,omitempty"`
}

// Award is sent to the winning contractor; losers get a "reject" envelope.
type Award struct {
	Task string `json:"task"`
}

// Contract-net performatives.
const (
	PerformativeCFP     = "cfp"
	PerformativePropose = "propose"
	PerformativeRefuse  = "refuse"
	PerformativeAward   = "accept-proposal"
	PerformativeReject  = "reject-proposal"
)

// ContractNetResult reports a completed negotiation.
type ContractNetResult struct {
	// Winner is the awarded contractor ("" when nobody bid).
	Winner ID
	// Cost is the winning bid.
	Cost float64
	// Proposals counts bids received (refusals excluded).
	Proposals int
	// Refusals counts explicit refusals.
	Refusals int
}

// Bidder adapts a cost function into a contract-net contractor handler:
// on a CFP it computes a bid (or refuses when the returned cost is
// negative), and on an award it runs perform.
func Bidder(bid func(CFP) float64, perform func(Award)) Handler {
	return HandlerFunc(func(env Envelope, ctx *Context) {
		switch env.Performative {
		case PerformativeCFP:
			var cfp CFP
			if err := env.Decode(&cfp); err != nil {
				return
			}
			cost := bid(cfp)
			var reply Envelope
			var err error
			if cost < 0 {
				reply, err = env.Reply(PerformativeRefuse, Proposal{Willing: false})
			} else {
				reply, err = env.Reply(PerformativePropose, Proposal{Willing: true, Cost: cost})
			}
			if err == nil {
				_ = ctx.Send(reply)
			}
		case PerformativeAward:
			var aw Award
			if err := env.Decode(&aw); err != nil {
				return
			}
			if perform != nil {
				perform(aw)
			}
		}
	})
}

// ContractNet runs one negotiation round from an ephemeral initiator: CFP
// to every contractor, wait out the deadline, award the cheapest bid. It
// returns ErrCallTimeout-free results: silence from a contractor simply
// means no bid.
func ContractNet(p *Platform, contractors []ID, cfp CFP, deadline time.Duration) (ContractNetResult, error) {
	if len(contractors) == 0 {
		return ContractNetResult{}, fmt.Errorf("agent: contract net needs contractors")
	}
	if deadline <= 0 {
		deadline = time.Second
	}
	self := ID(fmt.Sprintf("cnet-%d", callCounter.Add(1)))
	type bid struct {
		from ID
		prop Proposal
	}
	bids := make(chan bid, len(contractors)*2)
	refusals := make(chan ID, len(contractors)*2)
	err := p.Register(self, HandlerFunc(func(env Envelope, ctx *Context) {
		switch env.Performative {
		case PerformativePropose:
			var prop Proposal
			if err := env.Decode(&prop); err == nil && prop.Willing {
				select {
				case bids <- bid{from: env.From, prop: prop}:
				default:
				}
			}
		case PerformativeRefuse:
			select {
			case refusals <- env.From:
			default:
			}
		}
	}), Attributes{Agent: map[string]string{AttrRole: RoleClient}}, nil)
	if err != nil {
		return ContractNetResult{}, err
	}
	defer p.Deregister(self)

	// CFPs ride the retry layer: a contractor whose mailbox is briefly
	// full (or whose link is mid-reconnect) still gets tendered.
	cfpPolicy := RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	sent := 0
	for _, c := range contractors {
		env, err := NewEnvelope(self, c, PerformativeCFP, "contract-net", cfp)
		if err != nil {
			continue
		}
		if SendRetry(p, env, deadline/2, cfpPolicy) == nil {
			sent++
		}
	}
	if sent == 0 {
		return ContractNetResult{}, fmt.Errorf("agent: no contractor reachable")
	}

	expired := p.clock().After(deadline)
	res := ContractNetResult{}
	var best *bid
	for done := false; !done; {
		select {
		case b := <-bids:
			res.Proposals++
			bb := b
			if best == nil || bb.prop.Cost < best.prop.Cost {
				best = &bb
			}
			if res.Proposals+res.Refusals >= sent {
				done = true
			}
		case <-refusals:
			res.Refusals++
			if res.Proposals+res.Refusals >= sent {
				done = true
			}
		case <-expired:
			done = true
		}
	}
	if best == nil {
		return res, nil // nobody bid; Winner stays empty
	}
	res.Winner = best.from
	res.Cost = best.prop.Cost

	// The award is the one envelope that must not be lost to a transient
	// full mailbox — the winner would never perform.
	award, err := NewEnvelope(self, best.from, PerformativeAward, "contract-net", Award{Task: cfp.Task})
	if err == nil {
		_ = SendRetry(p, award, deadline, cfpPolicy)
	}
	for _, c := range contractors {
		if c == best.from {
			continue
		}
		rej, err := NewEnvelope(self, c, PerformativeReject, "contract-net", Award{Task: cfp.Task})
		if err == nil {
			_ = p.Send(rej)
		}
	}
	return res, nil
}
