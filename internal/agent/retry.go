package agent

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pervasivegrid/internal/obs"
)

// Retry layer: the paper's runtime must "handle the transport level
// problems caused by low bandwidth, high latency, frequent disconnections
// and network topology changes". Envelope delivery is at-most-once per
// attempt, so conversations that must survive loss re-send with
// exponential backoff and correlate the reply against every attempt.

// RetryPolicy shapes CallRetry / SendRetry backoff.
type RetryPolicy struct {
	// MaxAttempts bounds total sends (first try included; default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the backoff per attempt (default 2).
	Multiplier float64
	// Jitter randomises each backoff by ±Jitter fraction (default 0.2).
	Jitter float64
	// AttemptTimeout bounds the wait for a reply per attempt before
	// re-sending (CallRetry only; default: overall timeout divided by
	// MaxAttempts).
	AttemptTimeout time.Duration
	// Seed makes the jitter sequence deterministic when nonzero —
	// chaos tests pin it so backoff schedules are reproducible.
	Seed int64
	// Clock is the time source for deadlines and backoff sleeps. Nil
	// means the wall clock; tests inject obs.FakeClock so multi-second
	// backoff schedules run in microseconds.
	Clock obs.Clock
}

// clock returns the policy's time source (wall clock by default).
func (rp RetryPolicy) clock() obs.Clock {
	if rp.Clock != nil {
		return rp.Clock
	}
	return obs.Real
}

// DefaultRetryPolicy returns the stock policy.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

// withDefaults fills zero fields.
func (rp RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = def.MaxAttempts
	}
	if rp.BaseDelay <= 0 {
		rp.BaseDelay = def.BaseDelay
	}
	if rp.MaxDelay <= 0 {
		rp.MaxDelay = def.MaxDelay
	}
	if rp.Multiplier < 1 {
		rp.Multiplier = def.Multiplier
	}
	if rp.Jitter < 0 || rp.Jitter > 1 {
		rp.Jitter = def.Jitter
	}
	return rp
}

// backoffSource yields the jittered backoff before each retry.
type backoffSource struct {
	policy RetryPolicy
	delay  time.Duration
	mu     sync.Mutex
	rng    *rand.Rand // nil = global rand
}

func newBackoffSource(rp RetryPolicy) *backoffSource {
	b := &backoffSource{policy: rp, delay: rp.BaseDelay}
	if rp.Seed != 0 {
		b.rng = rand.New(rand.NewSource(rp.Seed))
	}
	return b
}

// next returns the current jittered delay and grows the base delay.
func (b *backoffSource) next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.delay
	grown := time.Duration(float64(b.delay) * b.policy.Multiplier)
	if grown > b.policy.MaxDelay {
		grown = b.policy.MaxDelay
	}
	b.delay = grown
	if b.policy.Jitter > 0 {
		var u float64
		if b.rng != nil {
			u = b.rng.Float64()
		} else {
			u = rand.Float64()
		}
		// Scale into [1-Jitter, 1+Jitter].
		d = time.Duration(float64(d) * (1 - b.policy.Jitter + 2*b.policy.Jitter*u))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// breakerStateName names the breaker state toward a destination for
// wide events ("" when no breaker set is installed).
func (p *Platform) breakerStateName(to ID) string {
	if p.Breakers == nil {
		return ""
	}
	return p.Breakers.State(string(to)).String()
}

// finishEvent stamps outcome/err/breaker on a conversation's wide event
// and emits it, tail-keeping the trace when anything went wrong so the
// event always points at a retained timeline.
func (p *Platform) finishEvent(ev *obs.Event, outcome string, callErr error, end time.Time) {
	if p.Events == nil {
		return
	}
	if callErr != nil && outcome == obs.OutcomeOK {
		outcome = obs.OutcomeError
	}
	if callErr != nil {
		ev.Err = callErr.Error()
	}
	ev.Breaker = p.breakerStateName(ID(ev.To))
	ev.Finish(outcome, end)
	if ev.Failed() {
		p.Tracer.KeepTrace(ev.Trace)
	}
	p.Events.Emit(*ev)
}

// SendRetry sends an envelope, re-attempting transient failures (mailbox
// full, no route — e.g. a link mid-reconnect) with backoff until the
// policy or deadline is exhausted. Permanent errors (closed platform, TTL
// exhausted) fail immediately. The envelope keeps one sequence number
// across attempts, so a duplicate arrival is detectable by the receiver.
func SendRetry(p *Platform, env Envelope, timeout time.Duration, policy RetryPolicy) error {
	rp := policy.withDefaults()
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if env.Seq == 0 {
		env.Seq = p.seq.next()
	}
	if (p.Tracer != nil || p.Events != nil) && env.TraceID == 0 {
		env.TraceID = obs.NewTraceID()
	}
	clk := rp.clock()
	start := clk.Now()
	ev := obs.NewEvent(p.Name, env.TraceID, string(env.From), string(env.To), env.Ontology, start)
	deadline := start.Add(timeout)
	backoff := newBackoffSource(rp)
	var err error
	for attempt := 1; attempt <= rp.MaxAttempts; attempt++ {
		if attempt > 1 {
			p.noteRetry()
			p.trace(obs.SpanRetry, env, fmt.Sprintf("attempt %d", attempt))
			ev.Retries++
		}
		attemptStart := clk.Now()
		if !p.breakerAllow(env.To) {
			// The destination's circuit is open: shed the attempt
			// instead of feeding a known-bad target. Backing off still
			// applies — the breaker may half-open before the deadline.
			p.noteBreakerReject()
			p.Tracer.KeepTrace(env.TraceID)
			ev.Sheds++
			err = fmt.Errorf("%w: %q", ErrCircuitOpen, env.To)
		} else {
			err = p.Send(env)
			ev.AddPhase(fmt.Sprintf("attempt-%d", attempt), clk.Now().Sub(attemptStart))
			if err == nil {
				p.finishEvent(&ev, obs.OutcomeOK, nil, clk.Now())
				return nil
			}
			if errors.Is(err, ErrClosed) || errors.Is(err, ErrTTLExpired) {
				p.finishEvent(&ev, obs.OutcomeError, err, clk.Now())
				return err
			}
		}
		wait := backoff.next()
		if attempt == rp.MaxAttempts || clk.Now().Add(wait).After(deadline) {
			break
		}
		clk.Sleep(wait)
	}
	outcome := obs.OutcomeError
	if errors.Is(err, ErrCircuitOpen) {
		outcome = obs.OutcomeBreakerOpen
	}
	p.finishEvent(&ev, outcome, err, clk.Now())
	return err
}

// CallRetry performs a Call that survives envelope loss: each attempt
// re-sends the request with a fresh sequence number, waits up to the
// attempt timeout, and backs off (exponential + jitter) before the next
// attempt, never exceeding the overall timeout. The reply is correlated
// against *every* attempt's sequence number, so a slow reply to attempt 1
// still completes the conversation during attempt 3 — which also means
// the request may be handled more than once: use it for idempotent
// conversations (queries, discovery, advertisements with leases).
func CallRetry(p *Platform, to ID, performative, ontology string, body any, timeout time.Duration, policy RetryPolicy) (Envelope, error) {
	rp := policy.withDefaults()
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	attemptTimeout := rp.AttemptTimeout
	if attemptTimeout <= 0 {
		attemptTimeout = timeout / time.Duration(rp.MaxAttempts)
		if attemptTimeout < time.Millisecond {
			attemptTimeout = time.Millisecond
		}
	}

	self := ID(fmt.Sprintf("caller-%d", callCounter.Add(1)))
	replies := make(chan Envelope, 8)
	err := p.Register(self, HandlerFunc(func(env Envelope, ctx *Context) {
		select {
		case replies <- env:
		default:
		}
	}), Attributes{Agent: map[string]string{AttrRole: RoleClient}}, nil)
	if err != nil {
		return Envelope{}, err
	}
	defer p.Deregister(self)

	template, err := NewEnvelope(self, to, performative, ontology, body)
	if err != nil {
		return Envelope{}, err
	}
	// One trace covers every attempt of the conversation: each retry
	// re-sends with a fresh Seq but the same TraceID, so the dumped
	// timeline shows the loss, the backoff, and the attempt that won —
	// and the wide event points at a stitchable trace.
	if p.Tracer != nil || p.Events != nil {
		template.TraceID = obs.NewTraceID()
	}

	clk := rp.clock()
	start := clk.Now()
	ev := obs.NewEvent(p.Name, template.TraceID, string(self), string(to), ontology, start)
	done := func(r Envelope) (Envelope, error) {
		ev.Hops = r.Hops
		p.finishEvent(&ev, obs.OutcomeOK, nil, clk.Now())
		return r, nil
	}
	deadline := start.Add(timeout)
	backoff := newBackoffSource(rp)
	// Seqs of every attempt sent so far; a reply to any of them wins.
	sent := map[uint64]bool{}
	var lastErr error
	for attempt := 1; attempt <= rp.MaxAttempts; attempt++ {
		env := template
		env.Seq = p.seq.next()
		sent[env.Seq] = true
		if attempt > 1 {
			p.noteRetry()
			p.trace(obs.SpanRetry, env, fmt.Sprintf("attempt %d", attempt))
			ev.Retries++
		}
		attemptStart := clk.Now()
		if !p.breakerAllow(to) {
			// Open circuit: skip the send. The attempt timer still runs
			// — a reply to an earlier attempt may yet land, and the
			// breaker needs its cool-down to elapse before half-opening.
			p.noteBreakerReject()
			p.Tracer.KeepTrace(env.TraceID)
			ev.Sheds++
			lastErr = fmt.Errorf("%w: %q", ErrCircuitOpen, to)
		} else if err := p.Send(env); err != nil {
			if errors.Is(err, ErrClosed) {
				p.finishEvent(&ev, obs.OutcomeError, err, clk.Now())
				return Envelope{}, err
			}
			// Transient (mailbox full, link down with no buffer, no
			// route yet): back off and re-attempt like a lost packet.
			lastErr = err
		}

		attemptDeadline := clk.Now().Add(attemptTimeout)
		if attemptDeadline.After(deadline) {
			attemptDeadline = deadline
		}
		timer := clk.After(attemptDeadline.Sub(clk.Now()))
	wait:
		for {
			select {
			case r := <-replies:
				if sent[r.InReplyTo] {
					ev.AddPhase(fmt.Sprintf("attempt-%d", attempt), clk.Now().Sub(attemptStart))
					return done(r)
				}
				// Stray envelope: keep waiting.
			case <-timer:
				break wait
			}
		}
		ev.AddPhase(fmt.Sprintf("attempt-%d", attempt), clk.Now().Sub(attemptStart))
		if attempt == rp.MaxAttempts || !clk.Now().Before(deadline) {
			break
		}
		wait := backoff.next()
		if remaining := deadline.Sub(clk.Now()); wait > remaining {
			wait = remaining
		}
		if wait > 0 {
			clk.Sleep(wait)
		}
		// A reply may have landed during the backoff sleep.
		select {
		case r := <-replies:
			if sent[r.InReplyTo] {
				return done(r)
			}
		default:
		}
	}
	if lastErr != nil {
		outcome := obs.OutcomeError
		if errors.Is(lastErr, ErrCircuitOpen) {
			outcome = obs.OutcomeBreakerOpen
		}
		err := fmt.Errorf("agent: call retry exhausted: %w", lastErr)
		p.finishEvent(&ev, outcome, err, clk.Now())
		return Envelope{}, err
	}
	err = fmt.Errorf("%w: %s -> %s after %d attempts in %v",
		ErrCallTimeout, performative, to, len(sent), timeout)
	p.finishEvent(&ev, obs.OutcomeTimeout, err, clk.Now())
	return Envelope{}, err
}
