package agent

import "testing"

// FuzzKQMLUnmarshal feeds arbitrary bytes to the KQML decoder: it must
// never panic, and successfully decoded maps must re-encode and decode to
// the same map.
func FuzzKQMLUnmarshal(f *testing.F) {
	for _, seed := range []string{
		`(:a "1" :b "2")`,
		`(:key "value with \"quotes\"")`,
		`()`,
		`(:k "unterminated`,
		`not kqml at all`,
	} {
		f.Add([]byte(seed))
	}
	c := KQMLCodec{}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m map[string]string
		if err := c.Unmarshal(data, &m); err != nil {
			return
		}
		re, err := c.Marshal(m)
		if err != nil {
			t.Fatalf("decoded map %v does not re-encode: %v", m, err)
		}
		var m2 map[string]string
		if err := c.Unmarshal(re, &m2); err != nil {
			t.Fatalf("re-encoded %s does not decode: %v", re, err)
		}
		if len(m) != len(m2) {
			t.Fatalf("round trip changed size: %v vs %v", m, m2)
		}
		for k, v := range m {
			if m2[k] != v {
				t.Fatalf("round trip changed %q: %q vs %q", k, v, m2[k])
			}
		}
	})
}
