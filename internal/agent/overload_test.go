package agent

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/supervise"
)

// gatedHandler blocks its first envelope on gate (signalling first when
// it enters), then records the Seq of every envelope it handles.
type gatedHandler struct {
	first chan struct{}
	gate  chan struct{}
	once  sync.Once

	mu  sync.Mutex
	got []uint64
}

func newGatedHandler() *gatedHandler {
	return &gatedHandler{first: make(chan struct{}), gate: make(chan struct{})}
}

func (h *gatedHandler) Handle(env Envelope, ctx *Context) {
	h.once.Do(func() {
		close(h.first)
		<-h.gate
	})
	h.mu.Lock()
	h.got = append(h.got, env.Seq)
	h.mu.Unlock()
}

func (h *gatedHandler) seqs() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.got...)
}

func (h *gatedHandler) waitFor(t *testing.T, n int) []uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got := h.seqs(); len(got) >= n {
			return got
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("handled %d envelopes, want %d", len(h.seqs()), n)
	return nil
}

// pumpUntil drives a fake clock in small steps from the test goroutine,
// yielding a sliver of real time between steps, until done yields. On a
// single-P scheduler AutoAdvance can burn a whole retry schedule in one
// time slice without the handler goroutines ever running; the explicit
// yield makes success-path conversations deterministic.
func pumpUntil[T any](t *testing.T, fc *obs.FakeClock, done <-chan T) T {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case v := <-done:
			return v
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("pumpUntil: timed out")
		}
		fc.Advance(5 * time.Millisecond)
		time.Sleep(50 * time.Microsecond)
	}
}

func sendTo(t *testing.T, p *Platform, to ID, ontology string) error {
	t.Helper()
	env, err := NewEnvelope("tester", to, "inform", ontology, "payload")
	if err != nil {
		t.Fatal(err)
	}
	return p.Send(env)
}

func TestDropNewestOverflow(t *testing.T) {
	p := NewPlatform("overflow")
	p.Mailbox = MailboxOptions{Capacity: 2, HighCapacity: 2, Policy: DropNewest}
	defer p.Close()
	h := newGatedHandler()
	if err := p.Register("slow", h, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sendTo(t, p, "slow", "x-data"); err != nil {
		t.Fatal(err)
	}
	<-h.first // the handler is now wedged on its first envelope
	for i := 0; i < 2; i++ {
		if err := sendTo(t, p, "slow", "x-data"); err != nil {
			t.Fatalf("fill send %d: %v", i, err)
		}
	}
	err := sendTo(t, p, "slow", "x-data")
	if !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("overflow send: err = %v, want ErrMailboxFull", err)
	}
	st := p.DeliveryStats()
	if st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Shed)
	}
	if st.Reasons[DropMailboxFull] != 1 {
		t.Fatalf("Reasons[mailbox_full] = %d, want 1", st.Reasons[DropMailboxFull])
	}
	if got := p.Metrics().Counter("agent_shed_total", "policy", "drop-newest").Value(); got != 1 {
		t.Fatalf("agent_shed_total = %v, want 1", got)
	}
	close(h.gate)
	h.waitFor(t, 3)
}

func TestDropOldestEvictsAndDeadLetters(t *testing.T) {
	p := NewPlatform("evict")
	p.Mailbox = MailboxOptions{Capacity: 4, HighCapacity: 2, Policy: DropOldest}
	defer p.Close()
	h := newGatedHandler()
	if err := p.Register("slow", h, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	// Seq 1 wedges the handler; 2–5 fill the lane; 6–8 evict 2–4.
	for i := 0; i < 8; i++ {
		if err := sendTo(t, p, "slow", "x-data"); err != nil {
			t.Fatalf("send %d: %v", i+1, err)
		}
		if i == 0 {
			<-h.first
		}
	}
	close(h.gate)
	got := h.waitFor(t, 5)
	want := []uint64{1, 5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("handled %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("handled %v, want %v (oldest not evicted)", got, want)
		}
	}
	st := p.DeliveryStats()
	if st.Shed != 3 {
		t.Fatalf("Shed = %d, want 3", st.Shed)
	}
	if st.Reasons[DropShedOldest] != 3 {
		t.Fatalf("Reasons[shed_oldest] = %d, want 3", st.Reasons[DropShedOldest])
	}
	// The evicted envelopes are retained for post-mortem.
	letters := p.DeadLetters()
	if len(letters) != 3 {
		t.Fatalf("dead letters = %d, want 3", len(letters))
	}
	for _, dl := range letters {
		if dl.Reason != DropShedOldest {
			t.Fatalf("dead letter reason = %s, want shed_oldest", dl.Reason)
		}
	}
}

func TestBlockPolicyBackpressure(t *testing.T) {
	p := NewPlatform("block")
	p.Mailbox = MailboxOptions{Capacity: 1, HighCapacity: 1, Policy: Block}
	defer p.Close()
	h := newGatedHandler()
	if err := p.Register("slow", h, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sendTo(t, p, "slow", "x-data"); err != nil {
		t.Fatal(err)
	}
	<-h.first
	if err := sendTo(t, p, "slow", "x-data"); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- sendTo(t, p, "slow", "x-data") }()
	select {
	case err := <-blocked:
		t.Fatalf("send did not block on a full lane (err = %v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(h.gate)
	if err := <-blocked; err != nil {
		t.Fatalf("blocked send failed after space freed: %v", err)
	}
	h.waitFor(t, 3)
	if st := p.DeliveryStats(); st.Shed != 0 {
		t.Fatalf("Block policy shed %d envelopes, want 0", st.Shed)
	}
}

func TestPriorityLaneSurvivesSaturation(t *testing.T) {
	p := NewPlatform("priority")
	p.Mailbox = MailboxOptions{Capacity: 2, HighCapacity: 4, Policy: DropNewest}
	defer p.Close()
	h := newGatedHandler()
	if err := p.Register("worker", h, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	// Seq 1 wedges the handler, 2–3 saturate the normal lane.
	for i := 0; i < 3; i++ {
		if err := sendTo(t, p, "worker", "x-data"); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			<-h.first
		}
	}
	if err := sendTo(t, p, "worker", "x-data"); !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("data-plane overflow: err = %v, want ErrMailboxFull", err)
	}
	// Telemetry still gets through on the priority lane (Seq 5)...
	if err := sendTo(t, p, "worker", "pgrid-telemetry-report"); err != nil {
		t.Fatalf("telemetry envelope rejected under saturation: %v", err)
	}
	close(h.gate)
	got := h.waitFor(t, 4)
	// ...and preempts the queued data envelopes.
	want := []uint64{1, 5, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("handled order %v, want %v (priority lane not preferred)", got, want)
		}
	}
}

func TestDeadLetterCapConfigurable(t *testing.T) {
	p := NewPlatform("dl")
	p.DeadLetterCap = 4
	defer p.Close()
	for i := 0; i < 6; i++ {
		if err := sendTo(t, p, "ghost", "x-data"); !errors.Is(err, ErrUnknownAgent) {
			t.Fatalf("send %d: err = %v, want ErrUnknownAgent", i, err)
		}
	}
	letters := p.DeadLetters()
	if len(letters) != 4 {
		t.Fatalf("ring holds %d, want cap 4", len(letters))
	}
	// Oldest-first: sends 3..6 survive.
	if letters[0].Env.Seq != 3 || letters[3].Env.Seq != 6 {
		t.Fatalf("ring contents wrong: first seq %d, last seq %d", letters[0].Env.Seq, letters[3].Env.Seq)
	}
	if st := p.DeliveryStats(); st.DeadLettered != 6 {
		t.Fatalf("DeadLettered = %d, want 6 (counter unbounded)", st.DeadLettered)
	}
	if got := p.Metrics().Gauge("agent_dead_letter_depth").Value(); got != 4 {
		t.Fatalf("agent_dead_letter_depth = %v, want 4", got)
	}
	if got := p.Metrics().Counter("agent_dead_letter_evicted_total").Value(); got != 2 {
		t.Fatalf("agent_dead_letter_evicted_total = %v, want 2", got)
	}
}

func TestSendRetryConsultsBreaker(t *testing.T) {
	fc := obs.NewFakeClock()
	defer fc.AutoAdvance()()
	p := NewPlatform("brk")
	p.Clock = fc
	p.Breakers = supervise.NewBreakerSet(supervise.BreakerPolicy{
		FailureThreshold: 3, OpenFor: time.Hour, Clock: fc,
	})
	defer p.Close()
	// Three no-route failures trip the destination's breaker.
	for i := 0; i < 3; i++ {
		if err := sendTo(t, p, "ghost", "x-data"); err == nil {
			t.Fatal("send to ghost succeeded")
		}
	}
	if got := p.Breakers.State("ghost"); got != supervise.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", got)
	}
	env, err := NewEnvelope("tester", "ghost", "inform", "x-data", "payload")
	if err != nil {
		t.Fatal(err)
	}
	dropped := p.Dropped()
	err = SendRetry(p, env, time.Second, RetryPolicy{MaxAttempts: 3, Seed: 1, Clock: fc})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("SendRetry err = %v, want ErrCircuitOpen", err)
	}
	// The open breaker shed the attempts before they hit the send path.
	if got := p.Dropped(); got != dropped {
		t.Fatalf("breaker-suppressed attempts still dropped envelopes: %d -> %d", dropped, got)
	}
	if got := p.Metrics().Counter("agent_breaker_rejected_total").Value(); got < 3 {
		t.Fatalf("agent_breaker_rejected_total = %v, want >= 3", got)
	}
}

func TestCallRetryCircuitOpenThenHeal(t *testing.T) {
	// No AutoAdvance here: a successful conversation needs the echo
	// handler's goroutine to run between retry attempts, so the test
	// goroutine pumps the clock itself (see pumpUntil).
	fc := obs.NewFakeClock()
	p := NewPlatform("heal")
	p.Clock = fc
	p.Breakers = supervise.NewBreakerSet(supervise.BreakerPolicy{
		FailureThreshold: 1, OpenFor: 10 * time.Millisecond, HalfOpenSuccesses: 1, Clock: fc,
	})
	defer p.Close()
	if err := sendTo(t, p, "echo", "x-data"); err == nil {
		t.Fatal("send to unregistered echo succeeded")
	}
	if got := p.Breakers.State("echo"); got != supervise.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", got)
	}
	// Register the destination: the cool-down elapses under retry
	// backoff, the half-open probe succeeds, and the call completes.
	err := p.Register("echo", HandlerFunc(func(env Envelope, ctx *Context) {
		reply, err := env.Reply("inform", "pong")
		if err != nil {
			t.Errorf("reply: %v", err)
			return
		}
		if err := ctx.Send(reply); err != nil {
			t.Errorf("send reply: %v", err)
		}
	}), Attributes{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	type callResult struct {
		reply Envelope
		err   error
	}
	done := make(chan callResult, 1)
	go func() {
		reply, err := CallRetry(p, "echo", "request", "x-data", "ping", 5*time.Second,
			RetryPolicy{MaxAttempts: 6, BaseDelay: 20 * time.Millisecond, Seed: 1, Clock: fc})
		done <- callResult{reply, err}
	}()
	res := pumpUntil(t, fc, done)
	if res.err != nil {
		t.Fatalf("CallRetry through healing breaker: %v", res.err)
	}
	if res.reply.Performative != "inform" {
		t.Fatalf("reply performative = %q", res.reply.Performative)
	}
	if got := p.Breakers.State("echo"); got != supervise.BreakerClosed {
		t.Fatalf("breaker state after heal = %v, want closed", got)
	}
}
