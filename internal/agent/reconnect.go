package agent

import (
	"bufio"
	"encoding/json"
	"net"
	"sync"
	"time"

	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/supervise"
)

// ReconnectLink is the disconnection-tolerant client-side link: where Link
// dies with its TCP connection, ReconnectLink redials with capped
// exponential backoff, buffers outbound envelopes while down (the
// DisconnectionDeputy's store-and-forward semantics applied to a
// transport), and replays the buffer in order on reconnect. Overflowed and
// abandoned envelopes land in the platform's dead-letter ring with reason
// link_down.
type ReconnectLink struct {
	platform *Platform
	addr     string
	opts     ReconnectOptions
	routeID  RouteID
	done     chan struct{}
	wake     chan struct{} // posted once per connection loss

	mu         sync.Mutex
	wc         *wireConn // nil while disconnected
	buffer     []Envelope
	closed     bool
	connects   int
	replayed   int
	overflowed int
}

// ReconnectOptions tunes a ReconnectLink.
type ReconnectOptions struct {
	// Filter restricts which destinations the link forwards (nil = every
	// non-local ID), like Dial's filter.
	Filter func(ID) bool
	// MaxBuffer bounds the store-and-forward queue while disconnected
	// (default 256). On overflow the oldest envelope is dead-lettered.
	MaxBuffer int
	// BaseDelay and MaxDelay shape the capped-exponential redial backoff
	// (defaults 20ms and 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// WrapRoute, when set, decorates the route this link installs on the
	// platform — the seam chaos tests use to put a fault injector on one
	// node's uplink (e.g. faultinject.Injector.WrapRoute) without
	// touching the link machinery itself.
	WrapRoute func(RouteFunc) RouteFunc
}

func (o ReconnectOptions) withDefaults() ReconnectOptions {
	if o.MaxBuffer <= 0 {
		o.MaxBuffer = 256
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 20 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Second
	}
	return o
}

// ReconnectStats is a snapshot of a ReconnectLink's lifetime counters.
type ReconnectStats struct {
	// Connects counts successful connection establishments (1 = the
	// initial connect; more = reconnections happened).
	Connects int
	// Replayed counts buffered envelopes re-sent after a reconnect.
	Replayed int
	// Buffered is the current store-and-forward queue length.
	Buffered int
	// Overflowed counts envelopes dead-lettered because the buffer was
	// full.
	Overflowed int
}

// DialReconnect installs a reconnecting link from the platform to a remote
// gateway. It returns immediately: the first connection is established in
// the background, and envelopes routed before it comes up are buffered —
// so dialling an address that is not listening *yet* is not an error.
func DialReconnect(p *Platform, addr string, opts ReconnectOptions) *ReconnectLink {
	l := &ReconnectLink{
		platform: p,
		addr:     addr,
		opts:     opts.withDefaults(),
		done:     make(chan struct{}),
		wake:     make(chan struct{}, 1),
	}
	route := RouteFunc(l.route)
	if l.opts.WrapRoute != nil {
		route = l.opts.WrapRoute(route)
	}
	l.routeID = p.AddRoute(route)
	supervise.Spawn("reconnect-dial", l.dialLoop)
	return l
}

// Connected reports whether the link currently has a live connection.
func (l *ReconnectLink) Connected() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wc != nil
}

// Stats snapshots the link's counters.
func (l *ReconnectLink) Stats() ReconnectStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return ReconnectStats{
		Connects:   l.connects,
		Replayed:   l.replayed,
		Buffered:   len(l.buffer),
		Overflowed: l.overflowed,
	}
}

// Close stops redialling, uninstalls the route, and dead-letters whatever
// is still buffered.
func (l *ReconnectLink) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	wc := l.wc
	l.wc = nil
	buf := l.buffer
	l.buffer = nil
	l.mu.Unlock()
	close(l.done)
	l.platform.RemoveRoute(l.routeID)
	if wc != nil {
		wc.conn.Close()
	}
	for _, env := range buf {
		l.platform.deadLetter(env, DropLinkDown)
	}
}

// route implements RouteFunc: write when up, store-and-forward when down.
// It accepts the envelope either way; loss is only possible by buffer
// overflow, which is dead-lettered rather than silent.
func (l *ReconnectLink) route(env Envelope) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	if l.opts.Filter != nil && !l.opts.Filter(env.To) {
		return false
	}
	if l.wc != nil {
		wc := l.wc
		if err := wc.write(env); err == nil {
			return true
		}
		// The connection died under us: take it down, buffer this
		// envelope, and wake the dialler.
		l.wc = nil
		wc.conn.Close()
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	if len(l.buffer) >= l.opts.MaxBuffer {
		oldest := l.buffer[0]
		l.buffer = l.buffer[1:]
		l.overflowed++
		l.platform.deadLetter(oldest, DropLinkDown)
	}
	l.buffer = append(l.buffer, env)
	l.platform.trace(obs.SpanBuffer, env, "link down")
	return true
}

// dialLoop keeps the link connected: dial with capped exponential backoff,
// replay the buffer, then sleep until the connection is lost again.
func (l *ReconnectLink) dialLoop() {
	delay := l.opts.BaseDelay
	for {
		select {
		case <-l.done:
			return
		default:
		}
		conn, err := net.Dial("tcp", l.addr)
		if err != nil {
			select {
			case <-l.done:
				return
			case <-l.platform.clock().After(delay):
			}
			delay *= 2
			if delay > l.opts.MaxDelay {
				delay = l.opts.MaxDelay
			}
			continue
		}
		delay = l.opts.BaseDelay
		wc := newWireConn(conn)
		if !l.install(wc) {
			conn.Close()
			continue // closed, or the replay write failed: redial
		}
		supervise.Spawn("reconnect-read", func() { l.readLoop(wc) })
		select {
		case <-l.done:
			return
		case <-l.wake:
		}
	}
}

// install replays the store-and-forward buffer over the new connection and
// makes it the live one. Replay happens under l.mu so concurrently routed
// envelopes queue behind the replayed ones — order is preserved.
func (l *ReconnectLink) install(wc *wireConn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	for len(l.buffer) > 0 {
		if err := wc.write(l.buffer[0]); err != nil {
			return false
		}
		l.platform.trace(obs.SpanReplay, l.buffer[0], "reconnected")
		l.buffer = l.buffer[1:]
		l.replayed++
	}
	l.buffer = nil
	l.wc = wc
	l.connects++
	return true
}

// markDown reacts to a read error: drop the connection (if it is still the
// live one) and wake the dialler.
func (l *ReconnectLink) markDown(wc *wireConn) {
	l.mu.Lock()
	if l.wc == wc {
		l.wc = nil
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	l.mu.Unlock()
	wc.conn.Close()
}

func (l *ReconnectLink) readLoop(wc *wireConn) {
	dec := json.NewDecoder(bufio.NewReader(wc.conn))
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			l.markDown(wc)
			return
		}
		env.Hops++
		l.platform.trace(obs.SpanIngress, env, "reconnect link")
		_ = l.platform.Send(env)
	}
}
