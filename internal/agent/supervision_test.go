package agent

import (
	"sync"
	"testing"
	"time"

	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/supervise"
)

// crashingHandler panics once, on its panicOn-th envelope, and counts
// handled envelopes through the checkpoint hooks — a restarted
// incarnation resumes from the last checkpoint instead of zero.
type crashingHandler struct {
	mu       sync.Mutex
	handled  int
	panicOn  int
	panicked bool
}

func (h *crashingHandler) Handle(env Envelope, ctx *Context) {
	h.mu.Lock()
	h.handled++
	boom := h.handled == h.panicOn && !h.panicked
	if boom {
		h.panicked = true
	}
	h.mu.Unlock()
	if boom {
		panic("injected handler crash")
	}
}

func (h *crashingHandler) Checkpoint() any {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.handled
}

func (h *crashingHandler) Restore(snapshot any) {
	h.mu.Lock()
	h.handled = snapshot.(int)
	h.mu.Unlock()
}

func (h *crashingHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.handled
}

func TestAgentRestartsAfterPanicWithCheckpoint(t *testing.T) {
	fc := obs.NewFakeClock()
	defer fc.AutoAdvance()()
	p := NewPlatform("selfheal")
	p.Clock = fc
	defer p.Close()

	h := &crashingHandler{panicOn: 3}
	if err := p.Register("worker", h, Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := sendTo(t, p, "worker", "x-data"); err != nil {
			t.Fatalf("send %d: %v", i+1, err)
		}
	}
	// Envelope 3 kills the incarnation mid-handle; supervision restarts
	// the loop, Restore rewinds to the checkpoint taken after envelope 2,
	// and envelopes 4 and 5 land on the fresh incarnation: 2 + 2 = 4.
	deadline := time.Now().Add(5 * time.Second)
	for h.count() != 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := h.count(); got != 4 {
		t.Fatalf("handled = %d, want 4 (checkpoint 2 + 2 post-restart envelopes)", got)
	}
	if got := p.AgentRestarts("worker"); got != 1 {
		t.Fatalf("AgentRestarts = %d, want 1", got)
	}
	if !p.AgentAlive("worker") {
		t.Fatal("worker not alive after restart")
	}
	st := p.SupervisionStats()
	if st.Panics != 1 || st.Restarts != 1 || st.GiveUps != 0 {
		t.Fatalf("supervision stats = %+v", st)
	}
	if got := p.Metrics().Counter("supervise_restarts_total", "child", "agent:worker").Value(); got != 1 {
		t.Fatalf("supervise_restarts_total = %v, want 1", got)
	}
}

func TestUnsupervisedAgentEscalates(t *testing.T) {
	p := NewPlatform("baseline")
	p.Supervision = &supervise.Policy{Restart: false}
	downs := make(chan ID, 1)
	p.OnAgentDown = func(id ID, err error) {
		if err == nil {
			t.Error("OnAgentDown with nil error")
		}
		downs <- id
	}
	defer p.Close()
	if err := p.Register("fragile", HandlerFunc(func(env Envelope, ctx *Context) {
		panic("first strike")
	}), Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sendTo(t, p, "fragile", "x-data"); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-downs:
		if id != "fragile" {
			t.Fatalf("OnAgentDown id = %q", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("escalation hook never fired")
	}
	if p.AgentAlive("fragile") {
		t.Fatal("unsupervised agent still alive after panic")
	}
	if got := p.AgentRestarts("fragile"); got != 0 {
		t.Fatalf("AgentRestarts = %d, want 0 under Restart:false", got)
	}
}

func TestDeliverPanicRecovered(t *testing.T) {
	p := NewPlatform("fence")
	defer p.Close()
	// A decorating deputy that panics on delivery must not kill the
	// sender; the envelope is dead-lettered with deliver_panic.
	err := p.Register("victim", HandlerFunc(func(env Envelope, ctx *Context) {}),
		Attributes{}, func(next Deputy) Deputy {
			return deputyFunc(func(env Envelope) error { panic("bad decorator") })
		})
	if err != nil {
		t.Fatal(err)
	}
	sendErr := sendTo(t, p, "victim", "x-data")
	if sendErr == nil {
		t.Fatal("panicking deputy reported success")
	}
	st := p.DeliveryStats()
	if st.Reasons[DropDeliverPanic] != 1 {
		t.Fatalf("Reasons[deliver_panic] = %d, want 1", st.Reasons[DropDeliverPanic])
	}
}

// deputyFunc adapts a function to Deputy for tests.
type deputyFunc func(env Envelope) error

func (f deputyFunc) Deliver(env Envelope) error { return f(env) }
