// Package agent is a Ronin-style multi-agent framework: agents are
// reachable only through Agent Deputies that implement a single Deliver
// abstraction, messages travel inside Envelope objects that carry their
// content type and ontology identifier (so the framework is agent-
// communication-language independent), and every agent carries two
// attribute sets — generic Agent Attributes defined by the framework and
// free-form Domain Attributes defined by applications — exactly the split
// the paper describes.
package agent

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
)

// ID names an agent on a platform. IDs are flat strings; a platform routes
// by exact ID.
type ID string

// Envelope is the meta-level message wrapper: "messages ... are embedded
// within Envelope objects during the delivery process ... the type of
// content message and the ontology identifier of the content message are
// also stored."
type Envelope struct {
	// Seq is assigned by the platform on send.
	Seq uint64 `json:"seq"`
	// From and To identify the conversing agents.
	From ID `json:"from"`
	To   ID `json:"to"`
	// Performative is the speech act ("request", "inform", "failure",
	// "advertise", ...) — ACL-neutral.
	Performative string `json:"performative"`
	// ContentType names the encoding of Content ("text/plain",
	// "application/json", "kqml", ...).
	ContentType string `json:"contentType"`
	// Ontology identifies the vocabulary Content is expressed in.
	Ontology string `json:"ontology"`
	// InReplyTo correlates a response with a request Seq.
	InReplyTo uint64 `json:"inReplyTo,omitempty"`
	// Hops counts platform ingress points traversed. Transports
	// increment it when injecting a remote envelope; Send drops
	// envelopes whose hop count exceeds the platform budget so retry
	// storms and route loops cannot circulate forever.
	Hops int `json:"hops,omitempty"`
	// TraceID ties every hop of a conversation together for the trace
	// sink (see internal/obs). Assigned by Send on a tracing platform
	// when zero; replies inherit it, and it crosses the wire with the
	// envelope so remote platforms extend the same causal timeline.
	TraceID uint64 `json:"traceId,omitempty"`
	// Content is the opaque payload.
	Content []byte `json:"content"`
}

// NewEnvelope builds an envelope with a JSON-encoded body.
//
//lint:hot budget=4
func NewEnvelope(from, to ID, performative, ontology string, body any) (Envelope, error) {
	content, err := json.Marshal(body)
	if err != nil {
		return Envelope{}, fmt.Errorf("agent: encode envelope body: %w", err)
	}
	return Envelope{
		From: from, To: to,
		Performative: performative,
		ContentType:  "application/json",
		Ontology:     ontology,
		Content:      content,
	}, nil
}

// Decode unmarshals a JSON envelope body into out.
//
//lint:hot budget=2
func (e Envelope) Decode(out any) error {
	if e.ContentType != "application/json" {
		return fmt.Errorf("agent: envelope content type %q is not JSON", e.ContentType)
	}
	return json.Unmarshal(e.Content, out)
}

// Reply builds a response envelope correlated to e, preserving ontology.
func (e Envelope) Reply(performative string, body any) (Envelope, error) {
	r, err := NewEnvelope(e.To, e.From, performative, e.Ontology, body)
	if err != nil {
		return Envelope{}, err
	}
	r.InReplyTo = e.Seq
	r.TraceID = e.TraceID
	return r, nil
}

// HighPriorityPrefixes lists the ontology prefixes whose envelopes ride
// the priority mailbox lane: telemetry and runtime-control conversations
// must survive data-plane saturation, or the grid goes blind exactly
// when it is overloaded. Classification is by ontology so the priority
// bit needs no wire-format change.
var HighPriorityPrefixes = []string{"pgrid-telemetry", "pgrid-control"}

// HighPriority reports whether this envelope rides the priority lane.
func (e Envelope) HighPriority() bool {
	for _, prefix := range HighPriorityPrefixes {
		if strings.HasPrefix(e.Ontology, prefix) {
			return true
		}
	}
	return false
}

// seqCounter hands out platform-unique sequence numbers.
type seqCounter struct{ n atomic.Uint64 }

func (s *seqCounter) next() uint64 { return s.n.Add(1) }

// Attributes is the two-level attribute model. Agent Attributes use
// framework-defined keys (see the Role* constants); Domain Attributes are
// application-defined and uninterpreted by the framework.
type Attributes struct {
	Agent  map[string]string `json:"agent"`
	Domain map[string]string `json:"domain"`
}

// Framework-defined agent attribute keys and role values.
const (
	AttrRole = "role"

	RoleBroker   = "broker"
	RoleProvider = "service-provider"
	RoleClient   = "client"
	RoleGateway  = "gateway"
)

// Clone deep-copies the attribute sets.
func (a Attributes) Clone() Attributes {
	out := Attributes{Agent: map[string]string{}, Domain: map[string]string{}}
	for k, v := range a.Agent {
		out.Agent[k] = v
	}
	for k, v := range a.Domain {
		out.Domain[k] = v
	}
	return out
}

// Role returns the framework role attribute ("" when unset).
func (a Attributes) Role() string { return a.Agent[AttrRole] }
