package agent

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"pervasivegrid/internal/supervise"
)

// Self-healing glue between the platform and internal/supervise: agent
// run loops execute as supervised children (panic → restart with
// backoff, budget, escalation), deputy delivery runs behind a panic
// fence, and an optional BreakerSet turns repeated delivery failures
// into fail-fast shedding for the retry layer.

// ErrCircuitOpen reports a send suppressed because the destination's
// circuit breaker is open — the platform is shedding load it already
// knows would fail.
var ErrCircuitOpen = errors.New("agent: circuit open")

// ErrDeliverPanic reports a deputy (or route) that panicked during
// delivery. The panic is recovered — one bad decorator must not take
// the process down — and the envelope is dead-lettered.
var ErrDeliverPanic = errors.New("agent: delivery panicked")

// Checkpointer is the optional state hook for supervised handlers: a
// handler that implements it has Checkpoint called after every
// successfully handled envelope, and Restore called with the last
// checkpoint when the agent restarts after a panic — so a restarted
// agent resumes its conversations instead of starting amnesiac. The
// envelope being handled when the panic hit is consumed, not redelivered
// (a poison pill must not re-kill the fresh incarnation).
type Checkpointer interface {
	// Checkpoint returns an opaque snapshot of the handler's state.
	Checkpoint() any
	// Restore reinstalls a snapshot taken by Checkpoint.
	Restore(snapshot any)
}

// RecoveredSnapshot is the form a checkpoint takes when it has crossed
// a process boundary: the durable store journals snapshots as JSON, so
// on recovery it seeds agents with the raw bytes rather than the live
// value Checkpoint returned. A Checkpointer that wants to survive
// kill -9 (not just in-process restarts) must accept both shapes in
// Restore:
//
//	func (a *counter) Restore(snap any) {
//		switch s := snap.(type) {
//		case RecoveredSnapshot:
//			_ = json.Unmarshal(s, &a.state) // from disk
//		case state:
//			a.state = s // live, same process
//		}
//	}
type RecoveredSnapshot []byte

// SeedCheckpoint installs a recovered checkpoint for an agent. Called
// before Register, the snapshot waits and becomes the agent's initial
// Restore argument when its run loop starts; called on a live agent, it
// replaces the stored checkpoint used at the next supervised restart.
func (p *Platform) SeedCheckpoint(id ID, snapshot any) {
	p.mu.Lock()
	reg, ok := p.agents[id]
	if !ok {
		p.seeds[id] = snapshot
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	reg.ckptMu.Lock()
	reg.ckpt, reg.hasCkpt = snapshot, true
	reg.ckptMu.Unlock()
}

// supervisorLocked lazily builds the platform's agent supervisor;
// callers hold p.mu. The policy is read from p.Supervision once, at
// first registration.
func (p *Platform) supervisorLocked() *supervise.Supervisor {
	if p.sup == nil {
		pol := supervise.DefaultPolicy()
		if p.Supervision != nil {
			pol = *p.Supervision
		}
		if pol.Clock == nil {
			pol.Clock = p.Clock
		}
		p.sup = supervise.NewSupervisor(p.Name, pol)
		p.sup.AttachMetrics(p.metrics)
		p.sup.OnRestart(func(name string, err error, restarts int) {
			id := ID(strings.TrimPrefix(name, "agent:"))
			if fn := p.OnAgentRestart; fn != nil {
				fn(id, err)
			}
		})
		p.sup.OnGiveUp(func(e supervise.Exit) {
			id := ID(strings.TrimPrefix(e.Name, "agent:"))
			if fn := p.OnAgentDown; fn != nil {
				fn(id, e.Err)
			}
		})
	}
	return p.sup
}

// SupervisionStats snapshots the agent supervisor's panic/restart/
// give-up counters (zero if no agent was ever registered).
func (p *Platform) SupervisionStats() supervise.Stats {
	p.mu.RLock()
	sup := p.sup
	p.mu.RUnlock()
	if sup == nil {
		return supervise.Stats{}
	}
	return sup.Stats()
}

// AgentRestarts reports how many times a hosted agent has been
// restarted by supervision (0 for unknown agents).
func (p *Platform) AgentRestarts(id ID) int {
	p.mu.RLock()
	reg, ok := p.agents[id]
	p.mu.RUnlock()
	if !ok || reg.proc == nil {
		return 0
	}
	return reg.proc.Restarts()
}

// AgentAlive reports whether a hosted agent's run loop is still being
// kept alive by supervision (false after a give-up or for unknown IDs).
func (p *Platform) AgentAlive(id ID) bool {
	p.mu.RLock()
	reg, ok := p.agents[id]
	p.mu.RUnlock()
	if !ok || reg.proc == nil {
		return false
	}
	return reg.proc.Alive()
}

// breakerAllow consults the destination's circuit breaker (true when no
// breaker set is attached).
func (p *Platform) breakerAllow(to ID) bool {
	if p.Breakers == nil {
		return true
	}
	return p.Breakers.Allow(string(to))
}

// breakerSuccess / breakerFailure feed delivery outcomes into the
// breaker set.
func (p *Platform) breakerSuccess(to ID) {
	if p.Breakers != nil {
		p.Breakers.Success(string(to))
	}
}

func (p *Platform) breakerFailure(to ID) {
	if p.Breakers != nil {
		p.Breakers.Failure(string(to))
	}
}

// noteBreakerReject counts a send suppressed by an open breaker.
func (p *Platform) noteBreakerReject() {
	p.metrics.Counter("agent_breaker_rejected_total").Inc()
}

// safeDeliver invokes a deputy chain behind a panic fence.
func (p *Platform) safeDeliver(d Deputy, env Envelope) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrDeliverPanic, r)
		}
	}()
	return d.Deliver(env)
}

// safeRoute invokes a route behind a panic fence; a panicking route
// counts as not having accepted the envelope.
func safeRoute(fn RouteFunc, env Envelope) (accepted, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			accepted, panicked = false, true
		}
	}()
	return fn(env), false
}

// QueuedEnvelopes sums the depth of every agent mailbox (both lanes).
func (p *Platform) QueuedEnvelopes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, reg := range p.agents {
		n += len(reg.mailbox) + len(reg.high)
	}
	return n
}

// Drain blocks until every agent mailbox is empty or the timeout
// elapses, reporting whether the platform drained. Graceful shutdown
// calls this between "stop accepting" and Close so queued work is
// handled rather than dropped.
func (p *Platform) Drain(timeout time.Duration) bool {
	clk := p.clock()
	deadline := clk.Now().Add(timeout)
	for p.QueuedEnvelopes() > 0 {
		if !clk.Now().Before(deadline) {
			return false
		}
		clk.Sleep(2 * time.Millisecond)
	}
	return true
}
