package pde

import (
	"math"
	"sync"
)

// SolvePCG solves the discrete Poisson system with conjugate gradients
// preconditioned by symmetric SOR (SSOR). The preconditioner solve is a
// forward red-black SOR half-sweep followed by a backward one, so it keeps
// the band-parallel structure of the other solvers while cutting CG's
// iteration count roughly in half on large grids — the ablation DESIGN.md
// calls out for the grid substrate.
func SolvePCG(g *Grid2D, opt Options) (Result, error) {
	opt = opt.withDefaults()
	omega := opt.Omega
	if omega <= 0 {
		omega = 1.2 // SSOR prefers milder over-relaxation than plain SOR
	}
	if omega >= 2 {
		return Result{}, ErrDiverged
	}
	n := g.Nx * g.Ny
	h2 := g.H * g.H
	rows := bands(1, g.Ny-1, opt.Workers)
	var wg sync.WaitGroup

	// Assemble b and initial iterate exactly as SolveCG does.
	b := make([]float64, n)
	x := make([]float64, n)
	for y := 1; y < g.Ny-1; y++ {
		for xx := 1; xx < g.Nx-1; xx++ {
			i := g.Idx(xx, y)
			if g.Fixed[i] {
				continue
			}
			bi := -h2 * g.Source[i]
			for _, j := range [4]int{i - 1, i + 1, i - g.Nx, i + g.Nx} {
				if g.Fixed[j] {
					bi += g.V[j]
				}
			}
			b[i] = bi
			x[i] = g.V[i]
		}
	}

	applyA := func(out, in []float64) {
		for _, band := range rows {
			wg.Add(1)
			go func(y0, y1 int) {
				defer wg.Done()
				for y := y0; y < y1; y++ {
					base := y * g.Nx
					for xx := 1; xx < g.Nx-1; xx++ {
						i := base + xx
						if g.Fixed[i] {
							continue
						}
						s := 4 * in[i]
						for _, j := range [4]int{i - 1, i + 1, i - g.Nx, i + g.Nx} {
							if !g.Fixed[j] {
								s -= in[j]
							}
						}
						out[i] = s
					}
				}
			}(band[0], band[1])
		}
		wg.Wait()
	}

	partials := make([]float64, len(rows))
	dot := func(a, c []float64) float64 {
		for bi, band := range rows {
			wg.Add(1)
			go func(bi, y0, y1 int) {
				defer wg.Done()
				s := 0.0
				for y := y0; y < y1; y++ {
					base := y * g.Nx
					for xx := 1; xx < g.Nx-1; xx++ {
						i := base + xx
						if !g.Fixed[i] {
							s += a[i] * c[i]
						}
					}
				}
				partials[bi] = s
			}(bi, band[0], band[1])
		}
		wg.Wait()
		s := 0.0
		for _, p := range partials {
			s += p
		}
		return s
	}

	// ssorApply computes z ≈ M⁻¹ r with one symmetric red-black sweep of
	// the error equation A z = r (z starts at 0, Dirichlet cells stay 0).
	z := make([]float64, n)
	colourSweep := func(r []float64, colour int) {
		for _, band := range rows {
			wg.Add(1)
			go func(y0, y1 int) {
				defer wg.Done()
				for y := y0; y < y1; y++ {
					base := y * g.Nx
					x0 := 1
					if (x0+y)%2 != colour {
						x0++
					}
					for xx := x0; xx < g.Nx-1; xx += 2 {
						i := base + xx
						if g.Fixed[i] {
							continue
						}
						s := r[i]
						for _, j := range [4]int{i - 1, i + 1, i - g.Nx, i + g.Nx} {
							if !g.Fixed[j] {
								s += z[j]
							}
						}
						gs := s / 4
						z[i] += omega * (gs - z[i])
					}
				}
			}(band[0], band[1])
		}
		wg.Wait()
	}
	precond := func(r []float64) []float64 {
		for i := range z {
			z[i] = 0
		}
		colourSweep(r, 0)
		colourSweep(r, 1)
		colourSweep(r, 1) // backward half of the symmetric sweep
		colourSweep(r, 0)
		return z
	}

	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	applyA(ap, x)
	for i := range r {
		if !g.Fixed[i] {
			r[i] = b[i] - ap[i]
		}
	}
	zr := precond(r)
	copy(p, zr)
	rz := dot(r, zr)
	tol2 := opt.Tol * opt.Tol * math.Max(1, dot(b, b))

	iter := 0
	for ; iter < opt.MaxIter && dot(r, r) > tol2; iter++ {
		applyA(ap, p)
		pap := dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			return Result{Iterations: iter}, ErrDiverged
		}
		alpha := rz / pap
		for _, band := range rows {
			wg.Add(1)
			go func(y0, y1 int) {
				defer wg.Done()
				for y := y0; y < y1; y++ {
					base := y * g.Nx
					for xx := 1; xx < g.Nx-1; xx++ {
						i := base + xx
						if !g.Fixed[i] {
							x[i] += alpha * p[i]
							r[i] -= alpha * ap[i]
						}
					}
				}
			}(band[0], band[1])
		}
		wg.Wait()
		zr2 := precond(r)
		rzNew := dot(r, zr2)
		beta := rzNew / rz
		rz = rzNew
		for _, band := range rows {
			wg.Add(1)
			go func(y0, y1 int) {
				defer wg.Done()
				for y := y0; y < y1; y++ {
					base := y * g.Nx
					for xx := 1; xx < g.Nx-1; xx++ {
						i := base + xx
						if !g.Fixed[i] {
							p[i] = zr2[i] + beta*p[i]
						}
					}
				}
			}(band[0], band[1])
		}
		wg.Wait()
	}

	for i := range x {
		if !g.Fixed[i] {
			g.V[i] = x[i]
		}
	}
	return Result{
		Iterations: iter,
		Converged:  dot(r, r) <= tol2,
		Residual:   g.Residual(),
		Ops:        float64(iter) * float64(n) * 40,
	}, nil
}
