package pde

import (
	"math"
	"runtime"
	"sync"
)

// bands splits rows [lo, hi) into at most workers contiguous bands.
func bands(lo, hi, workers int) [][2]int {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([][2]int, 0, workers)
	for w := 0; w < workers; w++ {
		a := lo + n*w/workers
		b := lo + n*(w+1)/workers
		if a < b {
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

// SolveJacobi runs damped-free Jacobi iteration on the grid until the
// max-norm update drops below Tol. The grid is updated in place.
func SolveJacobi(g *Grid2D, opt Options) (Result, error) {
	opt = opt.withDefaults()
	next := append([]float64(nil), g.V...)
	rows := bands(1, g.Ny-1, opt.Workers)
	h2 := g.H * g.H
	deltas := make([]float64, len(rows))
	var wg sync.WaitGroup

	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		cur := g.V
		for bi, band := range rows {
			wg.Add(1)
			go func(bi int, y0, y1 int) {
				defer wg.Done()
				maxd := 0.0
				for y := y0; y < y1; y++ {
					base := y * g.Nx
					for x := 1; x < g.Nx-1; x++ {
						i := base + x
						if g.Fixed[i] {
							next[i] = cur[i]
							continue
						}
						v := (cur[i-1] + cur[i+1] + cur[i-g.Nx] + cur[i+g.Nx] - h2*g.Source[i]) / 4
						d := math.Abs(v - cur[i])
						if d > maxd {
							maxd = d
						}
						next[i] = v
					}
				}
				deltas[bi] = maxd
			}(bi, band[0], band[1])
		}
		wg.Wait()
		g.V, next = next, g.V
		maxd := 0.0
		for _, d := range deltas {
			if d > maxd {
				maxd = d
			}
		}
		if math.IsNaN(maxd) || math.IsInf(maxd, 0) {
			return Result{Iterations: iter + 1}, ErrDiverged
		}
		if maxd < opt.Tol {
			iter++
			break
		}
	}
	res := Result{
		Iterations: iter,
		Converged:  iter < opt.MaxIter || g.Residual() < opt.Tol*4,
		Residual:   g.Residual(),
		Ops:        float64(iter) * float64(g.Nx*g.Ny) * 6,
	}
	return res, nil
}
