package pde

import (
	"fmt"
	"math"
	"sort"
)

// Sample is a scattered measurement used to populate grid points, as the
// paper describes: "grid points populated by data from the sensors".
type Sample struct {
	X, Y  float64 // physical position in meters
	Value float64
}

// Method selects a solver family.
type Method int

// Available solvers.
const (
	Jacobi Method = iota
	SOR
	CG
	PCG
)

func (m Method) String() string {
	switch m {
	case Jacobi:
		return "jacobi"
	case SOR:
		return "sor"
	case CG:
		return "cg"
	case PCG:
		return "pcg"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Solve dispatches to the selected 2-D solver.
func Solve(g *Grid2D, m Method, opt Options) (Result, error) {
	switch m {
	case Jacobi:
		return SolveJacobi(g, opt)
	case SOR:
		return SolveSOR(g, opt)
	case CG:
		return SolveCG(g, opt)
	case PCG:
		return SolvePCG(g, opt)
	}
	return Result{}, fmt.Errorf("pde: unknown method %v", m)
}

// PinSamples pins the grid cell nearest each sample to the sample value.
// width and height give the physical extent of the grid. Samples landing on
// the same cell are averaged.
func PinSamples(g *Grid2D, width, height float64, samples []Sample) {
	sum := make(map[int]float64)
	count := make(map[int]int)
	for _, s := range samples {
		x := int(math.Round(s.X / width * float64(g.Nx-1)))
		y := int(math.Round(s.Y / height * float64(g.Ny-1)))
		if x < 0 {
			x = 0
		}
		if x >= g.Nx {
			x = g.Nx - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= g.Ny {
			y = g.Ny - 1
		}
		i := g.Idx(x, y)
		sum[i] += s.Value
		count[i]++
	}
	for i, c := range count {
		g.V[i] = sum[i] / float64(c)
		g.Fixed[i] = true
	}
}

// IDW interpolates a value at (x, y) from scattered samples with inverse
// distance weighting (power 2, k nearest). It is the cheap "in-situ"
// estimate a handheld device can compute without the grid.
func IDW(samples []Sample, x, y float64, k int) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	if k <= 0 || k > len(samples) {
		k = len(samples)
	}
	type ds struct {
		d2 float64
		v  float64
	}
	all := make([]ds, len(samples))
	for i, s := range samples {
		dx, dy := s.X-x, s.Y-y
		all[i] = ds{d2: dx*dx + dy*dy, v: s.Value}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d2 < all[j].d2 })
	if all[0].d2 == 0 {
		return all[0].v
	}
	num, den := 0.0, 0.0
	for _, s := range all[:k] {
		w := 1 / s.d2
		num += w * s.v
		den += w
	}
	return num / den
}
