package pde

import (
	"fmt"
	"math"
	"sync"
)

// Grid3D is a regular Nx×Ny×Nz grid for the paper's "3D partial
// differential equation" (steady-state heat inside a building volume).
type Grid3D struct {
	Nx, Ny, Nz int
	H          float64
	V          []float64
	Fixed      []bool
	Source     []float64
}

// NewGrid3D allocates the grid with all six faces fixed.
func NewGrid3D(nx, ny, nz int, h float64) (*Grid3D, error) {
	if nx < 3 || ny < 3 || nz < 3 {
		return nil, fmt.Errorf("pde: grid %dx%dx%d too small", nx, ny, nz)
	}
	if h <= 0 {
		return nil, fmt.Errorf("pde: non-positive spacing %v", h)
	}
	g := &Grid3D{Nx: nx, Ny: ny, Nz: nz, H: h,
		V:      make([]float64, nx*ny*nz),
		Fixed:  make([]bool, nx*ny*nz),
		Source: make([]float64, nx*ny*nz),
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x == 0 || y == 0 || z == 0 || x == nx-1 || y == ny-1 || z == nz-1 {
					g.Fixed[g.Idx(x, y, z)] = true
				}
			}
		}
	}
	return g, nil
}

// Idx returns the flat index of (x, y, z).
func (g *Grid3D) Idx(x, y, z int) int { return (z*g.Ny+y)*g.Nx + x }

// At returns the value at (x, y, z).
func (g *Grid3D) At(x, y, z int) float64 { return g.V[g.Idx(x, y, z)] }

// Pin assigns a Dirichlet value at (x, y, z).
func (g *Grid3D) Pin(x, y, z int, v float64) {
	i := g.Idx(x, y, z)
	g.V[i] = v
	g.Fixed[i] = true
}

// SetBoundary pins all six faces to v.
func (g *Grid3D) SetBoundary(v float64) {
	for i, f := range g.Fixed {
		if f {
			g.V[i] = v
		}
	}
}

// Residual returns the max-norm residual of the 7-point stencil over
// non-fixed cells.
func (g *Grid3D) Residual() float64 {
	max := 0.0
	h2 := g.H * g.H
	nxy := g.Nx * g.Ny
	for z := 1; z < g.Nz-1; z++ {
		for y := 1; y < g.Ny-1; y++ {
			for x := 1; x < g.Nx-1; x++ {
				i := g.Idx(x, y, z)
				if g.Fixed[i] {
					continue
				}
				want := (g.V[i-1] + g.V[i+1] + g.V[i-g.Nx] + g.V[i+g.Nx] + g.V[i-nxy] + g.V[i+nxy] - h2*g.Source[i]) / 6
				if r := math.Abs(g.V[i] - want); r > max {
					max = r
				}
			}
		}
	}
	return max
}

// SolveJacobi3D runs parallel Jacobi iteration on a 3-D grid, banded over
// z-slabs.
func SolveJacobi3D(g *Grid3D, opt Options) (Result, error) {
	opt = opt.withDefaults()
	next := append([]float64(nil), g.V...)
	slabs := bands(1, g.Nz-1, opt.Workers)
	h2 := g.H * g.H
	nxy := g.Nx * g.Ny
	deltas := make([]float64, len(slabs))
	var wg sync.WaitGroup

	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		cur := g.V
		for bi, slab := range slabs {
			wg.Add(1)
			go func(bi, z0, z1 int) {
				defer wg.Done()
				maxd := 0.0
				for z := z0; z < z1; z++ {
					for y := 1; y < g.Ny-1; y++ {
						base := (z*g.Ny + y) * g.Nx
						for x := 1; x < g.Nx-1; x++ {
							i := base + x
							if g.Fixed[i] {
								next[i] = cur[i]
								continue
							}
							v := (cur[i-1] + cur[i+1] + cur[i-g.Nx] + cur[i+g.Nx] + cur[i-nxy] + cur[i+nxy] - h2*g.Source[i]) / 6
							if d := math.Abs(v - cur[i]); d > maxd {
								maxd = d
							}
							next[i] = v
						}
					}
				}
				deltas[bi] = maxd
			}(bi, slab[0], slab[1])
		}
		wg.Wait()
		g.V, next = next, g.V
		maxd := 0.0
		for _, d := range deltas {
			if d > maxd {
				maxd = d
			}
		}
		if math.IsNaN(maxd) || math.IsInf(maxd, 0) {
			return Result{Iterations: iter + 1}, ErrDiverged
		}
		if maxd < opt.Tol {
			iter++
			break
		}
	}
	return Result{
		Iterations: iter,
		Converged:  iter < opt.MaxIter,
		Residual:   g.Residual(),
		Ops:        float64(iter) * float64(g.Nx*g.Ny*g.Nz) * 8,
	}, nil
}
