package pde

import (
	"math"
	"sync"
)

// OptimalOmega returns the asymptotically optimal SOR over-relaxation
// factor for the Laplacian on an nx×ny grid.
func OptimalOmega(nx, ny int) float64 {
	// Spectral radius of the Jacobi iteration matrix for the 5-point
	// Laplacian: rho = (cos(pi/nx) + cos(pi/ny)) / 2.
	rho := (math.Cos(math.Pi/float64(nx)) + math.Cos(math.Pi/float64(ny))) / 2
	return 2 / (1 + math.Sqrt(1-rho*rho))
}

// SolveSOR runs red-black successive over-relaxation: cells are coloured
// like a checkerboard so each colour's update touches only the other
// colour, making every half-sweep embarrassingly parallel.
func SolveSOR(g *Grid2D, opt Options) (Result, error) {
	opt = opt.withDefaults()
	omega := opt.Omega
	if omega <= 0 {
		omega = OptimalOmega(g.Nx, g.Ny)
	}
	if omega >= 2 {
		return Result{}, ErrDiverged
	}
	rows := bands(1, g.Ny-1, opt.Workers)
	h2 := g.H * g.H
	deltas := make([]float64, len(rows))
	var wg sync.WaitGroup

	sweep := func(colour int) float64 {
		for bi, band := range rows {
			wg.Add(1)
			go func(bi, y0, y1 int) {
				defer wg.Done()
				maxd := 0.0
				for y := y0; y < y1; y++ {
					base := y * g.Nx
					// Start x so that (x+y) % 2 == colour.
					x0 := 1
					if (x0+y)%2 != colour {
						x0++
					}
					for x := x0; x < g.Nx-1; x += 2 {
						i := base + x
						if g.Fixed[i] {
							continue
						}
						gs := (g.V[i-1] + g.V[i+1] + g.V[i-g.Nx] + g.V[i+g.Nx] - h2*g.Source[i]) / 4
						d := omega * (gs - g.V[i])
						g.V[i] += d
						if ad := math.Abs(d); ad > maxd {
							maxd = ad
						}
					}
				}
				deltas[bi] = maxd
			}(bi, band[0], band[1])
		}
		wg.Wait()
		maxd := 0.0
		for _, d := range deltas {
			if d > maxd {
				maxd = d
			}
		}
		return maxd
	}

	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		d1 := sweep(0)
		d2 := sweep(1)
		maxd := math.Max(d1, d2)
		if math.IsNaN(maxd) || math.IsInf(maxd, 0) {
			return Result{Iterations: iter + 1}, ErrDiverged
		}
		if maxd < opt.Tol {
			iter++
			break
		}
	}
	return Result{
		Iterations: iter,
		Converged:  g.Residual() < opt.Tol*10 || iter < opt.MaxIter,
		Residual:   g.Residual(),
		Ops:        float64(iter) * float64(g.Nx*g.Ny) * 8,
	}, nil
}
