package pde

import (
	"math"
	"sync"
)

// SolveSOR3D runs red-black successive over-relaxation on a 3-D grid,
// banded over z-slabs. Cells are coloured by (x+y+z) parity so each
// half-sweep only reads the other colour.
func SolveSOR3D(g *Grid3D, opt Options) (Result, error) {
	opt = opt.withDefaults()
	omega := opt.Omega
	if omega <= 0 {
		// Spectral radius of 3-D Jacobi: (cos πx + cos πy + cos πz)/3.
		rho := (math.Cos(math.Pi/float64(g.Nx)) + math.Cos(math.Pi/float64(g.Ny)) + math.Cos(math.Pi/float64(g.Nz))) / 3
		omega = 2 / (1 + math.Sqrt(1-rho*rho))
	}
	if omega >= 2 {
		return Result{}, ErrDiverged
	}
	slabs := bands(1, g.Nz-1, opt.Workers)
	h2 := g.H * g.H
	nxy := g.Nx * g.Ny
	deltas := make([]float64, len(slabs))
	var wg sync.WaitGroup

	sweep := func(colour int) float64 {
		for bi, slab := range slabs {
			wg.Add(1)
			go func(bi, z0, z1 int) {
				defer wg.Done()
				maxd := 0.0
				for z := z0; z < z1; z++ {
					for y := 1; y < g.Ny-1; y++ {
						base := (z*g.Ny + y) * g.Nx
						x0 := 1
						if (x0+y+z)%2 != colour {
							x0++
						}
						for x := x0; x < g.Nx-1; x += 2 {
							i := base + x
							if g.Fixed[i] {
								continue
							}
							gs := (g.V[i-1] + g.V[i+1] + g.V[i-g.Nx] + g.V[i+g.Nx] + g.V[i-nxy] + g.V[i+nxy] - h2*g.Source[i]) / 6
							d := omega * (gs - g.V[i])
							g.V[i] += d
							if ad := math.Abs(d); ad > maxd {
								maxd = ad
							}
						}
					}
				}
				deltas[bi] = maxd
			}(bi, slab[0], slab[1])
		}
		wg.Wait()
		maxd := 0.0
		for _, d := range deltas {
			if d > maxd {
				maxd = d
			}
		}
		return maxd
	}

	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		maxd := math.Max(sweep(0), sweep(1))
		if math.IsNaN(maxd) || math.IsInf(maxd, 0) {
			return Result{Iterations: iter + 1}, ErrDiverged
		}
		if maxd < opt.Tol {
			iter++
			break
		}
	}
	return Result{
		Iterations: iter,
		Converged:  iter < opt.MaxIter || g.Residual() < opt.Tol*10,
		Residual:   g.Residual(),
		Ops:        float64(iter) * float64(g.Nx*g.Ny*g.Nz) * 10,
	}, nil
}
