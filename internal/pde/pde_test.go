package pde

import (
	"math"
	"testing"
)

// harmonicGrid builds a grid whose boundary is set to the harmonic
// function u(x,y) = x² - y², whose Laplacian is zero: the interior solution
// must match the analytic function.
func harmonicGrid(t *testing.T, n int) (*Grid2D, func(x, y int) float64) {
	t.Helper()
	g, err := NewGrid2D(n, n, 1.0/float64(n-1))
	if err != nil {
		t.Fatal(err)
	}
	exact := func(x, y int) float64 {
		fx := float64(x) / float64(n-1)
		fy := float64(y) / float64(n-1)
		return fx*fx - fy*fy
	}
	for x := 0; x < n; x++ {
		g.Pin(x, 0, exact(x, 0))
		g.Pin(x, n-1, exact(x, n-1))
	}
	for y := 0; y < n; y++ {
		g.Pin(0, y, exact(0, y))
		g.Pin(n-1, y, exact(n-1, y))
	}
	return g, exact
}

func checkHarmonic(t *testing.T, g *Grid2D, exact func(x, y int) float64, tol float64) {
	t.Helper()
	worst := 0.0
	for y := 1; y < g.Ny-1; y++ {
		for x := 1; x < g.Nx-1; x++ {
			if d := math.Abs(g.At(x, y) - exact(x, y)); d > worst {
				worst = d
			}
		}
	}
	if worst > tol {
		t.Fatalf("max error vs analytic solution = %g, want <= %g", worst, tol)
	}
}

func TestJacobiHarmonic(t *testing.T) {
	g, exact := harmonicGrid(t, 33)
	res, err := SolveJacobi(g, Options{Tol: 1e-9, MaxIter: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("jacobi did not converge: %+v", res)
	}
	checkHarmonic(t, g, exact, 1e-5)
}

func TestSORHarmonic(t *testing.T) {
	g, exact := harmonicGrid(t, 33)
	res, err := SolveSOR(g, Options{Tol: 1e-10, MaxIter: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sor did not converge: %+v", res)
	}
	checkHarmonic(t, g, exact, 1e-5)
}

func TestCGHarmonic(t *testing.T) {
	g, exact := harmonicGrid(t, 33)
	res, err := SolveCG(g, Options{Tol: 1e-10, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("cg did not converge: %+v", res)
	}
	checkHarmonic(t, g, exact, 1e-5)
}

func TestSORFasterThanJacobi(t *testing.T) {
	gj, _ := harmonicGrid(t, 49)
	gs, _ := harmonicGrid(t, 49)
	rj, err := SolveJacobi(gj, Options{Tol: 1e-8, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SolveSOR(gs, Options{Tol: 1e-8, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Iterations >= rj.Iterations {
		t.Fatalf("SOR iterations %d >= Jacobi %d; SOR should converge much faster", rs.Iterations, rj.Iterations)
	}
}

func TestCGFewestIterations(t *testing.T) {
	gc, _ := harmonicGrid(t, 49)
	gs, _ := harmonicGrid(t, 49)
	rc, err := SolveCG(gc, Options{Tol: 1e-8, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SolveSOR(gs, Options{Tol: 1e-8, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Iterations > rs.Iterations*2 {
		t.Fatalf("CG iterations %d vastly exceed SOR %d", rc.Iterations, rs.Iterations)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, m := range []Method{Jacobi, SOR, CG} {
		g1, _ := harmonicGrid(t, 25)
		g2, _ := harmonicGrid(t, 25)
		r1, err := Solve(g1, m, Options{Tol: 1e-9, Workers: 1, MaxIter: 50000})
		if err != nil {
			t.Fatalf("%v serial: %v", m, err)
		}
		r2, err := Solve(g2, m, Options{Tol: 1e-9, Workers: 8, MaxIter: 50000})
		if err != nil {
			t.Fatalf("%v parallel: %v", m, err)
		}
		if !r1.Converged || !r2.Converged {
			t.Fatalf("%v convergence: serial=%v parallel=%v", m, r1.Converged, r2.Converged)
		}
		for i := range g1.V {
			if math.Abs(g1.V[i]-g2.V[i]) > 1e-6 {
				t.Fatalf("%v: parallel result diverges from serial at %d: %g vs %g", m, i, g1.V[i], g2.V[i])
			}
		}
	}
}

func TestPoissonSource(t *testing.T) {
	// -∇²u = 1 on the unit square with zero boundary has a positive
	// interior solution peaking at the center.
	n := 33
	g, err := NewGrid2D(n, n, 1.0/float64(n-1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Source {
		g.Source[i] = -1 // our convention: v = (nbrs - h²f)/4, f = -1 adds heat
	}
	res, err := SolveSOR(g, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("poisson solve did not converge")
	}
	center := g.At(n/2, n/2)
	if center <= 0 {
		t.Fatalf("center = %g, want positive", center)
	}
	// Analytic peak of -∇²u=1 on unit square is ~0.0737.
	if math.Abs(center-0.0737) > 0.005 {
		t.Fatalf("center = %g, want ~0.0737", center)
	}
	// Maximum principle: no interior cell exceeds the center
	// significantly and none is negative.
	for y := 1; y < n-1; y++ {
		for x := 1; x < n-1; x++ {
			v := g.At(x, y)
			if v < 0 || v > center+1e-9 {
				t.Fatalf("maximum principle violated at (%d,%d): %g", x, y, v)
			}
		}
	}
}

func TestInteriorPinnedCell(t *testing.T) {
	g, _ := harmonicGrid(t, 17)
	g.Pin(8, 8, 500) // a sensor reading pinned mid-grid
	if _, err := SolveSOR(g, Options{Tol: 1e-9}); err != nil {
		t.Fatal(err)
	}
	if g.At(8, 8) != 500 {
		t.Fatal("pinned cell was modified by the solver")
	}
	if g.At(8, 9) < 1 {
		t.Fatal("heat from pinned cell did not diffuse to neighbors")
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid2D(2, 5, 1); err == nil {
		t.Fatal("tiny grid should be rejected")
	}
	if _, err := NewGrid2D(5, 5, 0); err == nil {
		t.Fatal("zero spacing should be rejected")
	}
	if _, err := NewGrid3D(3, 3, 2, 1); err == nil {
		t.Fatal("tiny 3d grid should be rejected")
	}
}

func TestJacobi3DHarmonic(t *testing.T) {
	// u = x² + y² - 2z² is harmonic in 3-D.
	n := 13
	g, err := NewGrid3D(n, n, n, 1.0/float64(n-1))
	if err != nil {
		t.Fatal(err)
	}
	exact := func(x, y, z int) float64 {
		fx := float64(x) / float64(n-1)
		fy := float64(y) / float64(n-1)
		fz := float64(z) / float64(n-1)
		return fx*fx + fy*fy - 2*fz*fz
	}
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if g.Fixed[g.Idx(x, y, z)] {
					g.Pin(x, y, z, exact(x, y, z))
				}
			}
		}
	}
	res, err := SolveJacobi3D(g, Options{Tol: 1e-9, MaxIter: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("3d jacobi did not converge")
	}
	worst := 0.0
	for z := 1; z < n-1; z++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				if d := math.Abs(g.At(x, y, z) - exact(x, y, z)); d > worst {
					worst = d
				}
			}
		}
	}
	if worst > 1e-4 {
		t.Fatalf("3d max error = %g", worst)
	}
}

func TestPinSamples(t *testing.T) {
	g, _ := harmonicGrid(t, 11)
	PinSamples(g, 100, 100, []Sample{
		{X: 50, Y: 50, Value: 10},
		{X: 50, Y: 50, Value: 20}, // same cell: averaged
		{X: 0, Y: 0, Value: 99},
	})
	if g.At(5, 5) != 15 {
		t.Fatalf("averaged pin = %v, want 15", g.At(5, 5))
	}
	if !g.Fixed[g.Idx(5, 5)] {
		t.Fatal("pinned cell not fixed")
	}
	if g.At(0, 0) != 99 {
		t.Fatal("corner sample not pinned")
	}
}

func TestIDW(t *testing.T) {
	samples := []Sample{{X: 0, Y: 0, Value: 10}, {X: 10, Y: 0, Value: 20}}
	if v := IDW(samples, 0, 0, 2); v != 10 {
		t.Fatalf("exact hit = %v, want 10", v)
	}
	mid := IDW(samples, 5, 0, 2)
	if math.Abs(mid-15) > 1e-9 {
		t.Fatalf("midpoint = %v, want 15", mid)
	}
	near := IDW(samples, 2, 0, 2)
	if near >= 15 || near <= 10 {
		t.Fatalf("near-first = %v, want between 10 and 15", near)
	}
	if !math.IsNaN(IDW(nil, 0, 0, 1)) {
		t.Fatal("empty samples should give NaN")
	}
}

func TestOptimalOmegaRange(t *testing.T) {
	for _, n := range []int{8, 32, 128} {
		w := OptimalOmega(n, n)
		if w <= 1 || w >= 2 {
			t.Fatalf("omega(%d) = %g, want in (1,2)", n, w)
		}
	}
	if OptimalOmega(16, 16) >= OptimalOmega(64, 64) {
		// Larger grids need omega closer to 2.
		t.Fatal("omega should increase with grid size")
	}
}

func TestEstimateOpsMonotone(t *testing.T) {
	small := EstimateJacobiOps(16, 16, 1e-6)
	big := EstimateJacobiOps(64, 64, 1e-6)
	if big <= small {
		t.Fatal("ops estimate should grow with grid size")
	}
	loose := EstimateJacobiOps(32, 32, 1e-2)
	tight := EstimateJacobiOps(32, 32, 1e-10)
	if tight <= loose {
		t.Fatal("ops estimate should grow with tighter tolerance")
	}
}

func BenchmarkJacobi64(b *testing.B)    { benchSolver(b, Jacobi, 64, 0) }
func BenchmarkSOR64(b *testing.B)       { benchSolver(b, SOR, 64, 0) }
func BenchmarkCG64(b *testing.B)        { benchSolver(b, CG, 64, 0) }
func BenchmarkSOR64Serial(b *testing.B) { benchSolver(b, SOR, 64, 1) }

func benchSolver(b *testing.B, m Method, n, workers int) {
	for i := 0; i < b.N; i++ {
		g, err := NewGrid2D(n, n, 1.0/float64(n-1))
		if err != nil {
			b.Fatal(err)
		}
		g.SetBoundary(100)
		g.Pin(n/2, n/2, 500)
		if _, err := Solve(g, m, Options{Tol: 1e-6, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPCGHarmonic(t *testing.T) {
	g, exact := harmonicGrid(t, 33)
	res, err := SolvePCG(g, Options{Tol: 1e-10, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("pcg did not converge: %+v", res)
	}
	checkHarmonic(t, g, exact, 1e-5)
}

func TestPCGFewerIterationsThanCG(t *testing.T) {
	gc, _ := harmonicGrid(t, 97)
	gp, _ := harmonicGrid(t, 97)
	rc, err := SolveCG(gc, Options{Tol: 1e-8, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := SolvePCG(gp, Options{Tol: 1e-8, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Iterations >= rc.Iterations {
		t.Fatalf("PCG iterations %d should beat CG %d", rp.Iterations, rc.Iterations)
	}
}

func TestPCGWithInteriorPins(t *testing.T) {
	g, _ := harmonicGrid(t, 33)
	g.Pin(16, 16, 400)
	g.Pin(8, 20, 350)
	res, err := SolvePCG(g, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("pcg with pins did not converge")
	}
	if g.At(16, 16) != 400 || g.At(8, 20) != 350 {
		t.Fatal("pinned cells modified")
	}
	if g.Residual() > 1e-6 {
		t.Fatalf("residual = %g", g.Residual())
	}
}

func TestPCGParallelMatchesSerial(t *testing.T) {
	g1, _ := harmonicGrid(t, 25)
	g2, _ := harmonicGrid(t, 25)
	if _, err := SolvePCG(g1, Options{Tol: 1e-10, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := SolvePCG(g2, Options{Tol: 1e-10, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	for i := range g1.V {
		if math.Abs(g1.V[i]-g2.V[i]) > 1e-6 {
			t.Fatalf("parallel PCG diverges from serial at %d", i)
		}
	}
}

func BenchmarkPCG64(b *testing.B) { benchSolver(b, PCG, 64, 0) }

func TestSOR3DHarmonic(t *testing.T) {
	n := 13
	g, err := NewGrid3D(n, n, n, 1.0/float64(n-1))
	if err != nil {
		t.Fatal(err)
	}
	exact := func(x, y, z int) float64 {
		fx := float64(x) / float64(n-1)
		fy := float64(y) / float64(n-1)
		fz := float64(z) / float64(n-1)
		return fx*fx + fy*fy - 2*fz*fz
	}
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if g.Fixed[g.Idx(x, y, z)] {
					g.Pin(x, y, z, exact(x, y, z))
				}
			}
		}
	}
	res, err := SolveSOR3D(g, Options{Tol: 1e-9, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("3d sor did not converge")
	}
	worst := 0.0
	for z := 1; z < n-1; z++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				if d := math.Abs(g.At(x, y, z) - exact(x, y, z)); d > worst {
					worst = d
				}
			}
		}
	}
	if worst > 1e-4 {
		t.Fatalf("3d sor max error = %g", worst)
	}
}

func TestSOR3DFasterThanJacobi3D(t *testing.T) {
	build := func() *Grid3D {
		g, _ := NewGrid3D(17, 17, 17, 1.0/16)
		g.SetBoundary(0)
		g.Pin(8, 8, 8, 100)
		return g
	}
	gj, gs := build(), build()
	rj, err := SolveJacobi3D(gj, Options{Tol: 1e-7, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SolveSOR3D(gs, Options{Tol: 1e-7, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Iterations >= rj.Iterations {
		t.Fatalf("3d SOR iters %d should beat Jacobi %d", rs.Iterations, rj.Iterations)
	}
	// Same answer within tolerance.
	for i := range gj.V {
		if math.Abs(gj.V[i]-gs.V[i]) > 1e-4 {
			t.Fatalf("3d solvers disagree at %d: %g vs %g", i, gj.V[i], gs.V[i])
		}
	}
}

func TestSOR3DParallelMatchesSerial(t *testing.T) {
	build := func() *Grid3D {
		g, _ := NewGrid3D(11, 11, 11, 0.1)
		g.SetBoundary(5)
		g.Pin(5, 5, 5, 200)
		return g
	}
	g1, g2 := build(), build()
	if _, err := SolveSOR3D(g1, Options{Tol: 1e-9, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := SolveSOR3D(g2, Options{Tol: 1e-9, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	for i := range g1.V {
		if math.Abs(g1.V[i]-g2.V[i]) > 1e-7 {
			t.Fatalf("3d parallel SOR diverges at %d", i)
		}
	}
}
