package pde

import (
	"fmt"
	"math"
	"sync"
)

// TransientConfig parameterises an explicit (FTCS) time integration of the
// heat equation ∂u/∂t = α ∇²u. It backs the runtime's forecast queries:
// given the field reconstructed from current sensor readings, predict how
// heat will have diffused a horizon into the future.
type TransientConfig struct {
	// Alpha is the thermal diffusivity in m²/s.
	Alpha float64
	// Horizon is the forecast span in seconds.
	Horizon float64
	// MaxDt caps the time step; 0 lets stability pick it. Explicit FTCS
	// requires α·dt/h² ≤ 1/4 in 2-D; the integrator always respects it.
	MaxDt float64
	// Workers is the band-parallel worker count (0 = GOMAXPROCS).
	Workers int
}

// TransientResult reports a completed integration.
type TransientResult struct {
	// Steps is the number of time steps taken.
	Steps int
	// Dt is the step size used.
	Dt float64
	// Ops estimates the floating-point work for the cost model.
	Ops float64
}

// StepHeat2D integrates the grid forward by cfg.Horizon. Fixed cells
// (boundary and any pinned sources) hold their values, acting as Dirichlet
// conditions; everything else diffuses.
func StepHeat2D(g *Grid2D, cfg TransientConfig) (TransientResult, error) {
	if cfg.Alpha <= 0 {
		return TransientResult{}, fmt.Errorf("pde: diffusivity must be positive, got %v", cfg.Alpha)
	}
	if cfg.Horizon <= 0 {
		return TransientResult{}, fmt.Errorf("pde: forecast horizon must be positive, got %v", cfg.Horizon)
	}
	h2 := g.H * g.H
	// Stability bound with a safety margin.
	dt := 0.2 * h2 / cfg.Alpha
	if cfg.MaxDt > 0 && cfg.MaxDt < dt {
		dt = cfg.MaxDt
	}
	steps := int(math.Ceil(cfg.Horizon / dt))
	if steps < 1 {
		steps = 1
	}
	dt = cfg.Horizon / float64(steps)
	lambda := cfg.Alpha * dt / h2
	if lambda > 0.25+1e-12 {
		return TransientResult{}, fmt.Errorf("pde: unstable step (lambda=%v)", lambda)
	}

	rows := bands(1, g.Ny-1, cfg.Workers)
	next := append([]float64(nil), g.V...)
	var wg sync.WaitGroup
	for s := 0; s < steps; s++ {
		cur := g.V
		for _, band := range rows {
			wg.Add(1)
			go func(y0, y1 int) {
				defer wg.Done()
				for y := y0; y < y1; y++ {
					base := y * g.Nx
					for x := 1; x < g.Nx-1; x++ {
						i := base + x
						if g.Fixed[i] {
							next[i] = cur[i]
							continue
						}
						lap := cur[i-1] + cur[i+1] + cur[i-g.Nx] + cur[i+g.Nx] - 4*cur[i]
						next[i] = cur[i] + lambda*lap
					}
				}
			}(band[0], band[1])
		}
		wg.Wait()
		g.V, next = next, g.V
	}
	return TransientResult{
		Steps: steps,
		Dt:    dt,
		Ops:   float64(steps) * float64(g.Nx*g.Ny) * 7,
	}, nil
}

// FillIDW initialises every non-fixed cell of the grid by inverse-distance
// interpolation from scattered samples — the initial condition for a
// forecast, where sensor readings seed the whole field rather than pinning
// isolated cells.
func FillIDW(g *Grid2D, width, height float64, samples []Sample, k int) {
	if len(samples) == 0 {
		return
	}
	for y := 0; y < g.Ny; y++ {
		for x := 0; x < g.Nx; x++ {
			i := g.Idx(x, y)
			if g.Fixed[i] {
				continue
			}
			px := float64(x) / float64(g.Nx-1) * width
			py := float64(y) / float64(g.Ny-1) * height
			g.V[i] = IDW(samples, px, py, k)
		}
	}
}
