package pde

import (
	"math"
	"sync"
)

// SolveCG solves the discrete Poisson system with the conjugate-gradient
// method, matrix-free over non-fixed cells. The 5-point Laplacian is
// symmetric positive definite on the interior with Dirichlet boundaries, so
// CG converges in O(dim) iterations — far fewer than Jacobi.
func SolveCG(g *Grid2D, opt Options) (Result, error) {
	opt = opt.withDefaults()
	n := g.Nx * g.Ny
	h2 := g.H * g.H

	// Unknown mask and the equation Av = b where, for unknown cell i,
	// (Av)_i = 4 v_i - sum(neighbor unknowns) and
	// b_i = sum(neighbor fixed values) - h² f_i.
	b := make([]float64, n)
	x := make([]float64, n) // iterate, 0 at fixed cells
	for y := 1; y < g.Ny-1; y++ {
		for x0 := 1; x0 < g.Nx-1; x0++ {
			i := g.Idx(x0, y)
			if g.Fixed[i] {
				continue
			}
			bi := -h2 * g.Source[i]
			for _, j := range [4]int{i - 1, i + 1, i - g.Nx, i + g.Nx} {
				if g.Fixed[j] {
					bi += g.V[j]
				}
			}
			b[i] = bi
			x[i] = g.V[i]
		}
	}

	rows := bands(1, g.Ny-1, opt.Workers)
	var wg sync.WaitGroup

	// applyA computes out = A·in over unknown cells, in parallel bands.
	applyA := func(out, in []float64) {
		for _, band := range rows {
			wg.Add(1)
			go func(y0, y1 int) {
				defer wg.Done()
				for y := y0; y < y1; y++ {
					base := y * g.Nx
					for xx := 1; xx < g.Nx-1; xx++ {
						i := base + xx
						if g.Fixed[i] {
							continue
						}
						s := 4 * in[i]
						for _, j := range [4]int{i - 1, i + 1, i - g.Nx, i + g.Nx} {
							if !g.Fixed[j] {
								s -= in[j]
							}
						}
						out[i] = s
					}
				}
			}(band[0], band[1])
		}
		wg.Wait()
	}

	// dotUnknown computes the inner product over unknown cells, in
	// parallel bands with per-band partials.
	partials := make([]float64, len(rows))
	dotUnknown := func(a, c []float64) float64 {
		for bi, band := range rows {
			wg.Add(1)
			go func(bi, y0, y1 int) {
				defer wg.Done()
				s := 0.0
				for y := y0; y < y1; y++ {
					base := y * g.Nx
					for xx := 1; xx < g.Nx-1; xx++ {
						i := base + xx
						if !g.Fixed[i] {
							s += a[i] * c[i]
						}
					}
				}
				partials[bi] = s
			}(bi, band[0], band[1])
		}
		wg.Wait()
		s := 0.0
		for _, p := range partials {
			s += p
		}
		return s
	}

	// axpyUnknown computes y += alpha*x over unknown cells.
	axpyUnknown := func(dst []float64, alpha float64, src []float64) {
		for _, band := range rows {
			wg.Add(1)
			go func(y0, y1 int) {
				defer wg.Done()
				for y := y0; y < y1; y++ {
					base := y * g.Nx
					for xx := 1; xx < g.Nx-1; xx++ {
						i := base + xx
						if !g.Fixed[i] {
							dst[i] += alpha * src[i]
						}
					}
				}
			}(band[0], band[1])
		}
		wg.Wait()
	}

	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	applyA(ap, x)
	for i := range r {
		if !g.Fixed[i] {
			r[i] = b[i] - ap[i]
			p[i] = r[i]
		}
	}
	rr := dotUnknown(r, r)
	tol2 := opt.Tol * opt.Tol * math.Max(1, dotUnknown(b, b))

	iter := 0
	for ; iter < opt.MaxIter && rr > tol2; iter++ {
		applyA(ap, p)
		pap := dotUnknown(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			return Result{Iterations: iter}, ErrDiverged
		}
		alpha := rr / pap
		axpyUnknown(x, alpha, p)
		axpyUnknown(r, -alpha, ap)
		rrNew := dotUnknown(r, r)
		beta := rrNew / rr
		rr = rrNew
		for _, band := range rows {
			wg.Add(1)
			go func(y0, y1 int) {
				defer wg.Done()
				for y := y0; y < y1; y++ {
					base := y * g.Nx
					for xx := 1; xx < g.Nx-1; xx++ {
						i := base + xx
						if !g.Fixed[i] {
							p[i] = r[i] + beta*p[i]
						}
					}
				}
			}(band[0], band[1])
		}
		wg.Wait()
	}

	// Write the solution back into the grid.
	for i := range x {
		if !g.Fixed[i] {
			g.V[i] = x[i]
		}
	}
	return Result{
		Iterations: iter,
		Converged:  rr <= tol2,
		Residual:   g.Residual(),
		Ops:        float64(iter) * float64(g.Nx*g.Ny) * 20,
	}, nil
}
