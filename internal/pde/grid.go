// Package pde provides parallel iterative solvers for steady-state heat
// (Laplace/Poisson) problems on regular 2-D and 3-D grids. It is the
// numerical substrate behind the paper's "complex query" example: "a 3D
// partial differential equation needs to be set up, grid points populated
// by data from the sensors and static data about building material and
// boundary conditions, and then solved."
//
// Three solver families are provided — Jacobi, red-black SOR, and conjugate
// gradient — all matrix-free over the standard 5-point (7-point in 3-D)
// Laplacian stencil, parallelised across row bands with goroutines.
package pde

import (
	"errors"
	"fmt"
	"math"
)

// Grid2D is a regular Nx×Ny grid of temperatures. Cells flagged Fixed hold
// Dirichlet values (boundaries and sensor-pinned interior points) that
// solvers never modify.
type Grid2D struct {
	Nx, Ny int
	// H is the uniform grid spacing in meters.
	H float64
	// V holds the values in row-major order: V[y*Nx+x].
	V []float64
	// Fixed marks Dirichlet cells.
	Fixed []bool
	// Source is the Poisson right-hand side f (zero for Laplace).
	Source []float64
}

// NewGrid2D allocates an Nx×Ny grid with spacing h, all values zero and
// the outer boundary marked fixed.
func NewGrid2D(nx, ny int, h float64) (*Grid2D, error) {
	if nx < 3 || ny < 3 {
		return nil, fmt.Errorf("pde: grid %dx%d too small (need >= 3x3)", nx, ny)
	}
	if h <= 0 {
		return nil, fmt.Errorf("pde: non-positive spacing %v", h)
	}
	g := &Grid2D{
		Nx: nx, Ny: ny, H: h,
		V:      make([]float64, nx*ny),
		Fixed:  make([]bool, nx*ny),
		Source: make([]float64, nx*ny),
	}
	for x := 0; x < nx; x++ {
		g.Fixed[x] = true
		g.Fixed[(ny-1)*nx+x] = true
	}
	for y := 0; y < ny; y++ {
		g.Fixed[y*nx] = true
		g.Fixed[y*nx+nx-1] = true
	}
	return g, nil
}

// Idx returns the flat index of (x, y).
func (g *Grid2D) Idx(x, y int) int { return y*g.Nx + x }

// At returns the value at (x, y).
func (g *Grid2D) At(x, y int) float64 { return g.V[y*g.Nx+x] }

// Set assigns the value at (x, y) without fixing it.
func (g *Grid2D) Set(x, y int, v float64) { g.V[y*g.Nx+x] = v }

// Pin assigns a Dirichlet value at (x, y): solvers keep it constant. Use it
// for boundary conditions and for interior cells pinned to sensor readings.
func (g *Grid2D) Pin(x, y int, v float64) {
	i := g.Idx(x, y)
	g.V[i] = v
	g.Fixed[i] = true
}

// SetBoundary pins the entire outer boundary to v.
func (g *Grid2D) SetBoundary(v float64) {
	for x := 0; x < g.Nx; x++ {
		g.Pin(x, 0, v)
		g.Pin(x, g.Ny-1, v)
	}
	for y := 0; y < g.Ny; y++ {
		g.Pin(0, y, v)
		g.Pin(g.Nx-1, y, v)
	}
}

// Clone deep-copies the grid.
func (g *Grid2D) Clone() *Grid2D {
	c := &Grid2D{Nx: g.Nx, Ny: g.Ny, H: g.H,
		V:      append([]float64(nil), g.V...),
		Fixed:  append([]bool(nil), g.Fixed...),
		Source: append([]float64(nil), g.Source...),
	}
	return c
}

// Unknowns counts non-fixed cells.
func (g *Grid2D) Unknowns() int {
	n := 0
	for _, f := range g.Fixed {
		if !f {
			n++
		}
	}
	return n
}

// Residual returns the max-norm of the discrete Laplacian residual over
// non-fixed cells: |v[i,j] - (sum of 4 neighbors - h²·f)/4|.
func (g *Grid2D) Residual() float64 {
	max := 0.0
	h2 := g.H * g.H
	for y := 1; y < g.Ny-1; y++ {
		for x := 1; x < g.Nx-1; x++ {
			i := g.Idx(x, y)
			if g.Fixed[i] {
				continue
			}
			want := (g.V[i-1] + g.V[i+1] + g.V[i-g.Nx] + g.V[i+g.Nx] - h2*g.Source[i]) / 4
			r := math.Abs(g.V[i] - want)
			if r > max {
				max = r
			}
		}
	}
	return max
}

// Options configures an iterative solve.
type Options struct {
	// Tol is the convergence threshold on the max-norm update (Jacobi,
	// SOR) or residual norm (CG). Default 1e-6.
	Tol float64
	// MaxIter bounds the iteration count. Default 10000.
	MaxIter int
	// Workers is the number of goroutines; 0 means GOMAXPROCS.
	Workers int
	// Omega is the SOR over-relaxation factor in (0, 2); 0 selects the
	// optimal value for the Laplacian on the grid automatically.
	Omega float64
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10000
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	return o
}

// Result reports a completed solve.
type Result struct {
	// Iterations actually performed.
	Iterations int
	// Converged is true when the tolerance was met within MaxIter.
	Converged bool
	// Residual is the final discrete residual max-norm.
	Residual float64
	// Ops estimates the floating-point work performed (for the decision
	// maker's cost model).
	Ops float64
}

// ErrDiverged reports a solve that failed to make progress.
var ErrDiverged = errors.New("pde: solver diverged")

// EstimateJacobiOps predicts the work of a Jacobi solve to tolerance tol on
// an n-unknown grid: iterations scale with the grid dimension squared times
// log(1/tol) for the Laplacian.
func EstimateJacobiOps(nx, ny int, tol float64) float64 {
	n := float64(nx * ny)
	dim := math.Max(float64(nx), float64(ny))
	iters := 0.5 * dim * dim * math.Log(1/tol) / math.Ln10
	return iters * n * 6
}
