package pde

import (
	"math"
	"testing"
)

func TestTransientValidation(t *testing.T) {
	g, _ := harmonicGrid(t, 9)
	if _, err := StepHeat2D(g, TransientConfig{Alpha: 0, Horizon: 1}); err == nil {
		t.Fatal("zero diffusivity should fail")
	}
	if _, err := StepHeat2D(g, TransientConfig{Alpha: 1, Horizon: 0}); err == nil {
		t.Fatal("zero horizon should fail")
	}
}

func TestTransientConservesSteadyState(t *testing.T) {
	// A solved steady state is a fixed point of the integrator.
	g, _ := harmonicGrid(t, 17)
	if _, err := SolveSOR(g, Options{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), g.V...)
	if _, err := StepHeat2D(g, TransientConfig{Alpha: 1e-4, Horizon: 100}); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if math.Abs(g.V[i]-before[i]) > 1e-6 {
			t.Fatalf("steady state drifted at %d: %g -> %g", i, before[i], g.V[i])
		}
	}
}

func TestTransientDiffusesHotSpot(t *testing.T) {
	n := 33
	g, err := NewGrid2D(n, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.SetBoundary(0)
	g.Set(n/2, n/2, 1000) // hot cell, NOT pinned: it must cool
	res, err := StepHeat2D(g, TransientConfig{Alpha: 0.1, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < 1 || res.Dt <= 0 {
		t.Fatalf("result = %+v", res)
	}
	center := g.At(n/2, n/2)
	if center >= 1000 {
		t.Fatal("unpinned hot spot did not cool")
	}
	if g.At(n/2+3, n/2) <= 0 {
		t.Fatal("heat did not spread to neighbors")
	}
	// Maximum principle: nothing exceeds the initial max or drops below
	// the boundary min.
	for _, v := range g.V {
		if v < -1e-9 || v > 1000+1e-9 {
			t.Fatalf("maximum principle violated: %g", v)
		}
	}
}

func TestTransientPinnedSourceKeepsHeating(t *testing.T) {
	n := 25
	g, err := NewGrid2D(n, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.SetBoundary(0)
	g.Pin(n/2, n/2, 500) // persistent fire
	if _, err := StepHeat2D(g, TransientConfig{Alpha: 0.2, Horizon: 50}); err != nil {
		t.Fatal(err)
	}
	if g.At(n/2, n/2) != 500 {
		t.Fatal("pinned source changed")
	}
	near := g.At(n/2+1, n/2)
	if near < 10 {
		t.Fatalf("neighbor of pinned source = %g, want heated", near)
	}
	// Longer horizon heats the neighborhood more.
	g2, _ := NewGrid2D(n, n, 1)
	g2.SetBoundary(0)
	g2.Pin(n/2, n/2, 500)
	if _, err := StepHeat2D(g2, TransientConfig{Alpha: 0.2, Horizon: 200}); err != nil {
		t.Fatal(err)
	}
	if g2.At(n/2+3, n/2) <= g.At(n/2+3, n/2) {
		t.Fatal("longer forecast should diffuse further")
	}
}

func TestTransientParallelMatchesSerial(t *testing.T) {
	build := func() *Grid2D {
		g, _ := NewGrid2D(21, 21, 1)
		g.SetBoundary(10)
		g.Pin(10, 10, 300)
		g.Set(5, 5, 100)
		return g
	}
	g1, g2 := build(), build()
	if _, err := StepHeat2D(g1, TransientConfig{Alpha: 0.1, Horizon: 30, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := StepHeat2D(g2, TransientConfig{Alpha: 0.1, Horizon: 30, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	for i := range g1.V {
		if g1.V[i] != g2.V[i] {
			t.Fatalf("parallel transient differs at %d", i)
		}
	}
}

func TestTransientMaxDt(t *testing.T) {
	g, _ := harmonicGrid(t, 9)
	res, err := StepHeat2D(g, TransientConfig{Alpha: 1e-3, Horizon: 10, MaxDt: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dt > 0.5+1e-12 {
		t.Fatalf("dt = %v exceeds MaxDt", res.Dt)
	}
	if res.Steps < 20 {
		t.Fatalf("steps = %d, want >= horizon/maxdt", res.Steps)
	}
}

func TestFillIDW(t *testing.T) {
	g, _ := NewGrid2D(11, 11, 10)
	g.SetBoundary(0)
	FillIDW(g, 100, 100, []Sample{
		{X: 50, Y: 50, Value: 100},
		{X: 0, Y: 0, Value: 0},
	}, 2)
	if g.At(5, 5) < 50 {
		t.Fatalf("center = %g, want near the hot sample", g.At(5, 5))
	}
	if g.At(0, 0) != 0 {
		t.Fatal("fixed boundary must not be filled")
	}
	if g.At(2, 2) >= g.At(5, 5) {
		t.Fatal("interpolation should decay toward the cold sample")
	}
	// Empty samples: no-op.
	g2, _ := NewGrid2D(5, 5, 1)
	FillIDW(g2, 10, 10, nil, 2)
	for _, v := range g2.V {
		if v != 0 {
			t.Fatal("empty-sample fill changed values")
		}
	}
}
