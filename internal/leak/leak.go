// Package leak is a from-scratch goroutine leak checker for the test
// suites (in the spirit of goleak, with no dependency). A platform whose
// agents, links, probers, and monitors all own background goroutines
// must prove that Close/Stop actually reaps them; leak.Check(t) snapshots
// the goroutines alive when it is called and fails the test from a
// t.Cleanup if new ones are still running once the test body finishes.
//
//	func TestSomething(t *testing.T) {
//		defer leak.Check(t)()
//		...
//	}
//
// or, cleanup-style for a whole test including its subtests:
//
//	leak.Check(t)
//
// The checker retries with backoff before declaring a leak, because a
// goroutine that has been signalled to stop may not have been scheduled
// off its final select yet — a real leak stays; a straggler drains.
package leak

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"pervasivegrid/internal/obs"
)

// TB is the subset of testing.TB the checker needs; taking the interface
// keeps the package testable with a fake.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// Option adjusts a Check.
type Option func(*config)

type config struct {
	maxWait time.Duration
	ignores []string
	clk     obs.Clock
}

// MaxWait bounds how long the checker waits for stragglers to drain
// before reporting a leak (default 4s).
func MaxWait(d time.Duration) Option {
	return func(c *config) { c.maxWait = d }
}

// IgnoreFunc ignores goroutines whose stack mentions the given function
// name fragment (e.g. "net/http.(*persistConn).readLoop"). Use sparingly:
// every ignore is a goroutine the suite no longer guards.
func IgnoreFunc(fragment string) Option {
	return func(c *config) { c.ignores = append(c.ignores, fragment) }
}

// withClock substitutes the backoff clock (tests of the checker itself).
func withClock(clk obs.Clock) Option {
	return func(c *config) { c.clk = clk }
}

// defaultIgnores hides runtime-owned and test-harness goroutines that are
// alive in any `go test` process and are not the suite's to reap.
var defaultIgnores = []string{
	"testing.RunTests",
	"testing.(*T).Run",
	"testing.runTests",
	"testing.tRunner",
	"runtime.goexit",
	"runtime.gc",
	"runtime.MHeap_Scavenger",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.timerproc",
	"os/signal.signal_recv",
	"os/signal.loop",
	"net/http.(*persistConn)",
	"internal/leak.snapshot", // the checker's own stack-capture frame
}

// goroutine is one parsed stack-dump entry.
type goroutine struct {
	id    string
	stack string // full text, header included
}

// snapshot parses runtime.Stack(all=true) into per-goroutine entries.
func snapshot() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutine
	for _, chunk := range strings.Split(string(buf), "\n\n") {
		chunk = strings.TrimSpace(chunk)
		if !strings.HasPrefix(chunk, "goroutine ") {
			continue
		}
		header := chunk[len("goroutine "):]
		id, _, ok := strings.Cut(header, " ")
		if !ok {
			continue
		}
		out = append(out, goroutine{id: id, stack: chunk})
	}
	return out
}

// interesting filters a snapshot down to goroutines the suite owns.
func interesting(gs []goroutine, ignores []string) []goroutine {
	var out []goroutine
outer:
	for _, g := range gs {
		for _, frag := range ignores {
			if strings.Contains(g.stack, frag) {
				continue outer
			}
		}
		out = append(out, g)
	}
	return out
}

// Check snapshots the current goroutines and registers a cleanup that
// fails tb if goroutines created after the snapshot are still running
// when the test finishes. It also returns the verification function
// directly, so `defer leak.Check(t)()` runs it before the test's other
// deferred teardown when ordering matters.
func Check(tb TB, opts ...Option) func() {
	tb.Helper()
	cfg := config{maxWait: 4 * time.Second, clk: obs.Real}
	for _, o := range opts {
		o(&cfg)
	}
	ignores := append(append([]string{}, defaultIgnores...), cfg.ignores...)

	baseline := map[string]bool{}
	for _, g := range snapshot() {
		baseline[g.id] = true
	}

	done := false
	verify := func() {
		if done {
			return
		}
		done = true
		tb.Helper()
		leaked := wait(baseline, ignores, cfg)
		if len(leaked) == 0 {
			return
		}
		sort.Slice(leaked, func(i, j int) bool { return leaked[i].id < leaked[j].id })
		var b strings.Builder
		fmt.Fprintf(&b, "leak: %d goroutine(s) outlived the test:", len(leaked))
		for _, g := range leaked {
			fmt.Fprintf(&b, "\n\n%s", g.stack)
		}
		tb.Errorf("%s", b.String())
	}
	tb.Cleanup(verify)
	return verify
}

// testRunner is the subset of *testing.M VerifyTestMain needs.
type testRunner interface{ Run() int }

// VerifyTestMain gates a whole package's test binary on goroutine
// hygiene:
//
//	func TestMain(m *testing.M) { leak.VerifyTestMain(m) }
//
// It runs the tests, and if they passed but goroutines started during
// the run are still alive afterwards, prints their stacks and exits
// non-zero. Failing tests keep their own exit code — a leak report on
// top of a red suite would only bury the real failure.
func VerifyTestMain(m testRunner, opts ...Option) {
	cfg := config{maxWait: 4 * time.Second, clk: obs.Real}
	for _, o := range opts {
		o(&cfg)
	}
	ignores := append(append([]string{}, defaultIgnores...), cfg.ignores...)
	baseline := map[string]bool{}
	for _, g := range snapshot() {
		baseline[g.id] = true
	}
	code := m.Run()
	if code == 0 {
		if leaked := wait(baseline, ignores, cfg); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leak: %d goroutine(s) outlived the test run:\n", len(leaked))
			for _, g := range leaked {
				fmt.Fprintf(os.Stderr, "\n%s\n", g.stack)
			}
			code = 1
		}
	}
	os.Exit(code)
}

// wait polls for new goroutines to drain, with exponential backoff up to
// cfg.maxWait, and returns whatever is still alive at the deadline.
func wait(baseline map[string]bool, ignores []string, cfg config) []goroutine {
	delay := time.Millisecond
	waited := time.Duration(0)
	for {
		var leaked []goroutine
		for _, g := range interesting(snapshot(), ignores) {
			if !baseline[g.id] {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) == 0 || waited >= cfg.maxWait {
			return leaked
		}
		if delay > cfg.maxWait-waited {
			delay = cfg.maxWait - waited
		}
		cfg.clk.Sleep(delay)
		waited += delay
		delay *= 2
	}
}
