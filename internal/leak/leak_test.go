package leak

import (
	"strings"
	"testing"
	"time"
)

// fakeTB records failures instead of failing the real test.
type fakeTB struct {
	errors   []string
	last     []any // args of the most recent Errorf, for report inspection
	cleanups []func()
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.errors = append(f.errors, format)
	f.last = args
}
func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestNoLeakPasses(t *testing.T) {
	tb := &fakeTB{}
	verify := Check(tb)
	verify()
	if len(tb.errors) != 0 {
		t.Fatalf("clean test reported a leak: %v", tb.errors)
	}
}

func TestLeakIsReported(t *testing.T) {
	tb := &fakeTB{}
	verify := Check(tb, MaxWait(50*time.Millisecond))
	block := make(chan struct{})
	started := make(chan struct{})
	go func() { // deliberate leak: blocked until we release it
		close(started)
		<-block
	}()
	<-started
	verify()
	close(block)
	if len(tb.errors) == 0 {
		t.Fatal("leaked goroutine not reported")
	}
	report, _ := tb.last[0].(string)
	if !strings.Contains(report, "TestLeakIsReported") {
		t.Fatalf("report does not name the leaking frame:\n%s", report)
	}
}

func TestStragglerDrains(t *testing.T) {
	// A goroutine that exits shortly after verification starts must not
	// be reported: the backoff loop re-snapshots until it drains.
	tb := &fakeTB{}
	verify := Check(tb, MaxWait(2*time.Second))
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	verify()
	if len(tb.errors) != 0 {
		t.Fatalf("straggler reported as leak: %v", tb.errors)
	}
}

func TestIgnoreFunc(t *testing.T) {
	tb := &fakeTB{}
	verify := Check(tb, MaxWait(50*time.Millisecond), IgnoreFunc("leak.pinnedHelper"))
	block := make(chan struct{})
	started := make(chan struct{})
	go pinnedHelper(started, block)
	<-started
	verify()
	close(block)
	if len(tb.errors) != 0 {
		t.Fatalf("ignored goroutine still reported: %v", tb.errors)
	}
}

// pinnedHelper blocks with a recognisable frame name for TestIgnoreFunc.
func pinnedHelper(started, block chan struct{}) {
	close(started)
	<-block
}

func TestVerifyRunsOnce(t *testing.T) {
	tb := &fakeTB{}
	verify := Check(tb, MaxWait(50*time.Millisecond))
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started
	verify()
	tb.runCleanups() // cleanup must not double-report
	close(block)
	if len(tb.errors) != 1 {
		t.Fatalf("want exactly 1 report, got %d", len(tb.errors))
	}
}

func TestSnapshotParsesSelf(t *testing.T) {
	gs := snapshot()
	if len(gs) == 0 {
		t.Fatal("snapshot saw no goroutines")
	}
	for _, g := range gs {
		if g.id == "" || !strings.HasPrefix(g.stack, "goroutine ") {
			t.Fatalf("malformed parse: %+v", g)
		}
	}
}
