package experiments

import (
	"fmt"
	"time"

	"pervasivegrid/internal/load"
	"pervasivegrid/internal/sensornet"
)

// E16 runs the sensor-storm scenario at rising bulk intensity across a
// real TCP gateway: a base station that services ~400 readings/s gets
// offered 0.5x, 2x and 4x that rate while a steady stream of control
// pings rides the priority lane. The claim under test is the two-lane
// overload design: past the ceiling the base sheds bulk (DropOldest,
// fresh-beats-stale) in proportion to the excess, while priority
// delivery stays ≥99% with a flat tail. The open-loop generator is what
// makes the numbers honest — a closed-loop client would slow down with
// the overloaded base and hide the storm it was supposed to offer.
func E16PriorityUnderStorm() (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "Two-lane mailbox under a sensor storm (open-loop, real TCP)",
		Claim: "disaster-scale bursts: bulk sensor load sheds at the overloaded base station while telemetry/control traffic keeps flowing",
		Columns: []string{"bulk offered/s", "bulk delivered", "bulk shed",
			"prio delivery", "prio p99 ms", "prio dead letters"},
	}
	const serviceTime = 2500 * time.Microsecond // ~400 msgs/s ceiling
	for _, rate := range []float64{200, 800, 1600} {
		rep, err := load.RunStorm(load.StormOptions{
			Duration:     4 * time.Second,
			BulkRate:     rate,
			ServiceTime:  serviceTime,
			PriorityRate: 10,
		})
		if err != nil {
			return nil, fmt.Errorf("E16 bulk %g/s: %w", rate, err)
		}
		if err := load.CheckStormReport(rep, 0.99); err != nil {
			return nil, fmt.Errorf("E16 bulk %g/s: %w", rate, err)
		}
		t.AddRow(f4(rate),
			f4(rep.Metrics["baseDelivered"]),
			f4(rep.Metrics["baseShed"]),
			pct(rep.Metrics["priorityDeliveryRate"]),
			f3(rep.Latency.P99),
			f3(rep.Metrics["priorityDeadLetters"]))
	}
	t.Notes = "sink services ~400 readings/s; normal lane capacity 32 under DropOldest; gate: priority delivery >= 99% with a clean priority lane at every intensity"
	return t, nil
}

// E17 measures the sharded city simulation: tick throughput against
// population (10k → 100k nodes) and, at each scale, byte-identical
// aggregate state between a single-worker and a multi-worker run of the
// same seed. Shards only interact at lockstep window barriers, where
// cross-shard posts merge in a fixed order — so worker count is a pure
// throughput knob, never a semantics knob, which is what makes 100k-node
// runs debuggable (any run can be replayed serially).
func E17CityScaleSimulation() (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "City-scale sharded simulation: throughput and determinism",
		Claim: "city-scale instrumentation (\"sensors disseminated in the city\"): 100k+ node populations tick in real time, and parallel runs stay bit-reproducible",
		Columns: []string{"nodes", "ticks", "wall ms", "ticks/s", "ns/node-tick",
			"digest(1w)==digest(8w)"},
	}
	for _, nodes := range []int{10_000, 50_000, 100_000} {
		ticks := 2_000_000 / nodes // ~constant node-tick budget per row
		run := func(workers int) (uint64, float64, error) {
			cs, err := sensornet.NewCitySim(sensornet.CityConfig{
				Nodes: nodes, Workers: workers, Seed: 42,
			})
			if err != nil {
				return 0, 0, err
			}
			start := wallClock.Now()
			if err := cs.Run(ticks); err != nil {
				return 0, 0, err
			}
			return cs.Digest(), wallClock.Now().Sub(start).Seconds(), nil
		}
		d1, _, err := run(1)
		if err != nil {
			return nil, fmt.Errorf("E17 %d nodes 1w: %w", nodes, err)
		}
		d8, wall, err := run(8)
		if err != nil {
			return nil, fmt.Errorf("E17 %d nodes 8w: %w", nodes, err)
		}
		if d1 != d8 {
			return nil, fmt.Errorf("E17 %d nodes: digests diverged across worker counts (%x vs %x)", nodes, d1, d8)
		}
		t.AddRow(itoa(nodes), itoa(ticks),
			f4(wall*1e3),
			f4(float64(ticks)/wall),
			f4(wall*1e9/float64(nodes)/float64(ticks)),
			"yes")
	}
	t.Notes = "lockstep-window sharding (8 shards); digests are FNV-1a over full per-node state in global ID order; timings from the 8-worker run"
	return t, nil
}
