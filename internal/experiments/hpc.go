package experiments

import (
	"fmt"
	"math/rand"
	"runtime"

	"pervasivegrid/internal/ml"
	"pervasivegrid/internal/pde"
	"pervasivegrid/internal/stream"
)

// E9PDEScaling measures the grid substrate: solver iteration counts and
// parallel speedup of the heat-equation solve behind complex queries.
func E9PDEScaling() (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "PDE solver scaling (grid substrate)",
		Claim: "streaming of data to high-end number crunching machines for running large simulations",
		Columns: []string{
			"grid", "method", "workers", "iters", "time(ms)", "speedup",
		},
	}
	// Always exercise the banded-parallel paths; on a single-core host
	// the wall-clock speedup is ~1x (concurrency without parallelism)
	// and the note says so.
	maxW := runtime.GOMAXPROCS(0)
	workerSet := []int{1, 2, 4}

	solveOnce := func(n int, m pde.Method, workers int) (pde.Result, float64, error) {
		g, err := pde.NewGrid2D(n, n, 1.0/float64(n-1))
		if err != nil {
			return pde.Result{}, 0, err
		}
		g.SetBoundary(20)
		g.Pin(n/2, n/2, 500)
		start := wallClock.Now()
		res, err := pde.Solve(g, m, pde.Options{Tol: 1e-6, Workers: workers})
		return res, float64(wallClock.Now().Sub(start).Microseconds()) / 1000, err
	}

	for _, n := range []int{129, 257} {
		for _, m := range []pde.Method{pde.Jacobi, pde.SOR, pde.CG, pde.PCG} {
			if m == pde.Jacobi && n > 129 {
				continue // Jacobi at 257² needs too many iterations for a table run
			}
			var serialMs float64
			for _, w := range workerSet {
				// Median of 3 runs to damp scheduler noise.
				best := -1.0
				var res pde.Result
				for rep := 0; rep < 3; rep++ {
					r, ms, err := solveOnce(n, m, w)
					if err != nil {
						return nil, err
					}
					if best < 0 || ms < best {
						best, res = ms, r
					}
				}
				if w == 1 {
					serialMs = best
				}
				speedup := "-"
				if w > 1 && best > 0 {
					speedup = f3(serialMs / best)
				}
				t.AddRow(fmt.Sprintf("%dx%d", n, n), m.String(), itoa(w), itoa(res.Iterations), f3(best), speedup)
			}
		}
	}
	t.Notes = fmt.Sprintf("GOMAXPROCS=%d; SOR needs ~dim iterations vs Jacobi's ~dim², CG fewer still; wall-clock speedup requires multiple cores (≈1x on a single-core host, where only band-decomposition overhead shows)", maxW)
	return t, nil
}

// E10StreamMining reproduces the paper's worked analysis pipeline:
// distributed sites mine decision trees, ship truncated Fourier spectra,
// and the combined classifier is compared with centralising the raw data.
func E10StreamMining() (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "distributed stream mining: Fourier ensembles vs centralised",
		Claim: "create ensembles of decision trees from the data stream ... computing their Fourier spectra, choosing the dominant components, and combining them; sensors as dumb data sources can generate huge data streams beyond the capacity of the wireless connections",
		Columns: []string{
			"topK", "sites", "ensemble acc", "central acc", "ensemble bytes", "raw bytes", "saving",
		},
	}
	d := 10
	concept := func(x []float64) int {
		// Majority of three relevant features, with an interaction.
		v := 0
		if x[0] >= 0.5 {
			v++
		}
		if x[3] >= 0.5 {
			v++
		}
		if x[7] >= 0.5 && x[0] >= 0.5 {
			v++
		}
		if v >= 2 {
			return 1
		}
		return 0
	}
	makeBlock := func(rng *rand.Rand, n int) ml.Dataset {
		var ds ml.Dataset
		for i := 0; i < n; i++ {
			x := make([]float64, d)
			for b := range x {
				x[b] = float64(rng.Intn(2))
			}
			y := concept(x)
			if rng.Float64() < 0.05 {
				y = 1 - y
			}
			ds.Add(x, y)
		}
		return ds
	}
	const sites = 8
	const blockSize = 300
	for _, topK := range []int{4, 16, 64} {
		rng := rand.New(rand.NewSource(int64(topK)))
		miner, err := stream.NewEnsembleMiner(d, topK)
		if err != nil {
			return nil, err
		}
		var pooled ml.Dataset
		rawBytes := 0
		for s := 0; s < sites; s++ {
			block := makeBlock(rng, blockSize)
			for i := range block.X {
				pooled.Add(block.X[i], block.Y[i])
			}
			rawBytes += blockSize * (d + 1)
			if _, err := miner.AddBlock(block); err != nil {
				return nil, err
			}
		}
		centralTree, err := ml.TrainTree(pooled, ml.TreeConfig{MaxDepth: 8})
		if err != nil {
			return nil, err
		}
		// Clean test set.
		testRng := rand.New(rand.NewSource(999))
		hitsE, hitsC, trials := 0, 0, 500
		for i := 0; i < trials; i++ {
			x := make([]float64, d)
			for b := range x {
				x[b] = float64(testRng.Intn(2))
			}
			want := concept(x)
			got, err := miner.Classify(x)
			if err != nil {
				return nil, err
			}
			if got == want {
				hitsE++
			}
			if centralTree.Predict(x) == want {
				hitsC++
			}
		}
		t.AddRow(
			itoa(topK), itoa(sites),
			pct(float64(hitsE)/float64(trials)), pct(float64(hitsC)/float64(trials)),
			itoa(miner.WireBytes()), itoa(rawBytes),
			fmt.Sprintf("%.0fx", float64(rawBytes)/float64(miner.WireBytes())),
		)
	}
	t.Notes = "a handful of dominant Fourier coefficients per site matches centralised accuracy at a fraction of the communication — the in-situ analysis the paper calls for"
	return t, nil
}
