package experiments

import (
	"fmt"
	"math"

	"pervasivegrid/internal/core"
	"pervasivegrid/internal/partition"
	"pervasivegrid/internal/pde"
	"pervasivegrid/internal/query"
	"pervasivegrid/internal/sensornet"
)

// burningBuilding builds the Figure 1 deployment: rows×cols temperature
// sensors in a 100 m building with a fire at the center, base station at
// the entrance.
func burningBuilding(rows, cols int) (*core.Runtime, error) {
	cfg := core.DefaultConfig()
	cfg.Rows, cfg.Cols = rows, cols
	f := sensornet.NewTemperatureField(20)
	f.Ignite(sensornet.Hotspot{
		Center: sensornet.Position{X: 50, Y: 50},
		Peak:   500, Radius: 15, Start: -1, GrowthRate: 10, Spread: 0.05,
	})
	cfg.Field = f
	rt, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	rt.AssignRooms(2, 2)
	return rt, nil
}

// E1Figure1 reproduces the paper's Figure 1 scenario end-to-end: fire
// fighters query the burning building through the base station; the four
// query types take different paths through the system.
func E1Figure1() (*Table, error) {
	rt, err := burningBuilding(10, 10)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E1",
		Title: "Figure 1 scenario: burning building, four query types",
		Claim: "queries can be as simple as one sensor's temperature or as complex as the temperature distribution, and are partitioned across sensors, base station and grid",
		Columns: []string{
			"query type", "query", "model", "value", "coverage",
			"latency(s)", "energy(J)", "msgs",
		},
	}
	queries := []string{
		"SELECT temp FROM sensors WHERE sensor = 44",
		"SELECT avg(temp) FROM sensors WHERE room = 'r0'",
		"SELECT tempdist(temp) FROM sensors",
		"SELECT forecast(temp) FROM sensors",
		"SELECT isosurface(temp) FROM sensors",
		"SELECT temp FROM sensors WHERE sensor = 44 EPOCH DURATION 10",
	}
	for _, src := range queries {
		res, err := rt.Submit(src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", src, err)
		}
		t.AddRow(
			res.Kind.String(), src, res.Model.String(),
			f4(res.Value), itoa(res.Coverage),
			f3(res.TimeSec), f3(res.EnergyJ), itoa(res.Messages),
		)
	}
	t.Notes = "continuous rows aggregate all epochs; complex values are solved-field peaks (tempdist: steady 2-D, forecast: transient 300 s ahead, isosurface: 3-D volume)"
	return t, nil
}

// E2SolutionModels quantifies §4's premise: the solution model drives
// energy and latency, differently per network size.
func E2SolutionModels() (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "energy/latency of solution models for an aggregate query",
		Claim: "estimates of energy consumption ... and response time of the query in each approach are needed",
		Columns: []string{
			"sensors", "model", "energy(J)", "latency(s)", "bytes", "msgs",
		},
	}
	for _, dim := range []int{5, 10, 15, 20} {
		n := dim * dim
		for _, model := range []string{"direct", "tree", "cluster"} {
			cfg := sensornet.DefaultConfig()
			nw := sensornet.NewGridNetwork(cfg, dim, dim)
			nw.SetField(sensornet.UniformField(25), 0.5)
			strat, err := sensornet.StrategyByName(model)
			if err != nil {
				return nil, err
			}
			col, err := strat.Collect(nw, sensornet.CollectRequest{Agg: sensornet.AggAvg})
			if err != nil {
				return nil, err
			}
			t.AddRow(itoa(n), model, f3(col.EnergyJ), f3(col.Latency), itoa(col.Bytes), itoa(col.Messages))
		}
		// Grid offload: direct collection plus the modelled uplink and
		// grid time (the estimator's view; sensors pay the same energy
		// as direct).
		est := partition.NewEstimator(partition.DefaultPlatform())
		f := partition.Features{Base: query.Aggregate, Selected: n, AvgDepth: float64(dim) / 2, MaxDepth: float64(dim)}
		g := est.Estimate(partition.ModelGrid, f)
		t.AddRow(itoa(n), "grid", f3(g.EnergyJ), f3(g.TimeSec), itoa(g.Bytes), "-")
	}
	t.Notes = "in-network aggregation (tree) dominates on energy as N grows; shipping raw data to the grid is strictly worse for aggregates"
	return t, nil
}

// E3NetworkLifetime reproduces the TAG-derived claim: in-network
// aggregation lengthens network lifetime for continuous queries.
func E3NetworkLifetime() (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "network lifetime under a continuous aggregate query",
		Claim: "performing the computation ... inside the sensor network results in saving the energy of the sensors and thus lengthens the lifetime of the sensor network",
		Columns: []string{
			"model", "rounds to first death", "alive after 200 rounds", "J/round",
		},
	}
	const maxRounds = 20000
	for _, model := range []string{"direct", "tree", "cluster"} {
		cfg := sensornet.DefaultConfig()
		cfg.InitialEnergy = 0.02 // small battery so lifetime is observable
		nw := sensornet.NewGridNetwork(cfg, 7, 7)
		nw.SetField(sensornet.UniformField(25), 0.5)
		strat, err := sensornet.StrategyByName(model)
		if err != nil {
			return nil, err
		}
		firstDeath := -1
		aliveAt200 := -1
		energyPerRound := 0.0
		for round := 1; round <= maxRounds; round++ {
			before := nw.TotalEnergyUsed()
			_, err := strat.Collect(nw, sensornet.CollectRequest{Agg: sensornet.AggAvg, Time: float64(round)})
			if err != nil {
				break // network partitioned from base
			}
			if round == 1 {
				energyPerRound = nw.TotalEnergyUsed() - before
			}
			if firstDeath < 0 && nw.AliveCount() < len(nw.Sensors) {
				firstDeath = round
			}
			if round == 200 {
				aliveAt200 = nw.AliveCount()
			}
			if nw.AliveCount() == 0 {
				break
			}
			if firstDeath > 0 && round >= 200 {
				break
			}
		}
		fd := "-"
		if firstDeath > 0 {
			fd = itoa(firstDeath)
		}
		al := "-"
		if aliveAt200 >= 0 {
			al = fmt.Sprintf("%d/%d", aliveAt200, len(nw.Sensors))
		}
		t.AddRow(model, fd, al, f3(energyPerRound))
	}
	t.Notes = "tree aggregation defers the first node death the longest (the TAG result)"
	return t, nil
}

// E4ComplexCrossover locates the point where offloading a complex query to
// the grid beats solving at the base station.
func E4ComplexCrossover() (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "complex query: base-station solve vs grid offload",
		Claim: "it is simply not feasible to perform the computation for such a query inside the network; the data is moved to the resources on the grid",
		Columns: []string{
			"pde grid", "ops", "base time(s)", "grid time(s)", "winner",
		},
	}
	est := partition.NewEstimator(partition.DefaultPlatform())
	prev := ""
	crossover := ""
	for _, dim := range []int{9, 17, 33, 65, 129, 257} {
		ops := pde.EstimateJacobiOps(dim, dim, 1e-6)
		f := partition.Features{Base: query.Complex, Selected: 100, AvgDepth: 3, MaxDepth: 6, ComputeOps: ops}
		base := est.Estimate(partition.ModelDirect, f)
		gridE := est.Estimate(partition.ModelGrid, f)
		w := "base"
		if gridE.TimeSec < base.TimeSec {
			w = "grid"
		}
		if prev == "base" && w == "grid" {
			crossover = fmt.Sprintf("%dx%d", dim, dim)
		}
		prev = w
		t.AddRow(fmt.Sprintf("%dx%d", dim, dim), f3(ops), f3(base.TimeSec), f3(gridE.TimeSec), w)
	}
	if crossover != "" {
		t.Notes = "crossover at " + crossover + ": below it the uplink transfer dominates; above it the grid's compute rate wins"
	}
	// End-to-end sanity: a real solve through the runtime agrees with
	// the winner at the default resolution.
	rt, err := burningBuilding(10, 10)
	if err != nil {
		return nil, err
	}
	res, err := rt.Submit("SELECT tempdist(temp) FROM sensors")
	if err != nil {
		return nil, err
	}
	t.Notes += fmt.Sprintf("; live run at 33x33 chose %s (%.3gs, solve converged=%v)",
		res.Model, res.TimeSec, res.Solve.Converged)
	return t, nil
}

// E5DecisionMaker measures the adaptive selector against an oracle and
// static policies in a world whose true costs deviate from the analytic
// model.
func E5DecisionMaker() (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "decision-maker accuracy vs oracle and static policies",
		Claim: "the system will be made adaptive by comparing the estimates ... with the actual values ... incorporated into the learning technique",
		Columns: []string{
			"policy", "oracle agreement", "mean regret (norm. cost)",
		},
	}

	// The "true" world: cluster heads are badly placed here, so cluster
	// costs 2.5x its estimate; direct's contention costs 1.5x.
	est := partition.NewEstimator(partition.DefaultPlatform())
	trueCost := func(m partition.Model, f partition.Features) float64 {
		e := est.Estimate(m, f)
		if !e.Feasible {
			return math.Inf(1)
		}
		c := 0.6*e.EnergyJ*1e3 + 0.4*e.TimeSec // normalised blend (mJ vs s)
		switch m {
		case partition.ModelCluster:
			c *= 2.5
		case partition.ModelDirect:
			c *= 1.5
		}
		return c
	}
	oracle := func(f partition.Features) partition.Model {
		best, bestC := partition.ModelDirect, math.Inf(1)
		for _, m := range partition.Models() {
			if c := trueCost(m, f); c < bestC {
				best, bestC = m, c
			}
		}
		return best
	}
	feat := func(i int) partition.Features {
		bases := []query.Type{query.Simple, query.Aggregate, query.Complex}
		f := partition.Features{
			Base:     bases[i%3],
			Selected: 20 + (i*37)%380,
			AvgDepth: 1.5 + float64(i%7)*0.7,
		}
		f.MaxDepth = f.AvgDepth * 2
		if f.Base == query.Complex {
			f.ComputeOps = 1e8 * float64(1+(i%20))
		}
		return f
	}

	q, err := query.Parse("SELECT avg(temp) FROM sensors")
	if err != nil {
		return nil, err
	}
	evaluate := func(choose func(f partition.Features) partition.Model) (float64, float64) {
		agree, regret := 0, 0.0
		const trials = 200
		for i := 0; i < trials; i++ {
			f := feat(10_000 + i)
			got := choose(f)
			want := oracle(f)
			if got == want {
				agree++
			}
			regret += trueCost(got, f) - trueCost(want, f)
		}
		return float64(agree) / trials, regret / trials
	}

	static := func(m partition.Model) func(partition.Features) partition.Model {
		return func(f partition.Features) partition.Model {
			if !est.Estimate(m, f).Feasible {
				return partition.ModelDirect
			}
			return m
		}
	}
	for _, pol := range []struct {
		name   string
		choose func(partition.Features) partition.Model
	}{
		{"always-direct", static(partition.ModelDirect)},
		{"always-tree", static(partition.ModelTree)},
		{"always-grid", static(partition.ModelGrid)},
	} {
		a, r := evaluate(pol.choose)
		t.AddRow(pol.name, pct(a), f3(r))
	}

	// Untrained analytic decision maker.
	fresh := partition.NewDecisionMaker(est)
	a0, r0 := evaluate(func(f partition.Features) partition.Model {
		dec, err := fresh.Choose(q, f)
		if err != nil {
			return partition.ModelDirect
		}
		return dec.Model
	})
	t.AddRow("analytic (untrained)", pct(a0), f3(r0))

	// Trained: feed oracle labels for 300 training instances (the
	// paper's offline-simulation phase), then re-evaluate.
	trained := partition.NewDecisionMaker(est)
	trained.MinEvidence = 20
	for i := 0; i < 300; i++ {
		f := feat(i)
		trained.ObserveBest(f, oracle(f))
	}
	a1, r1 := evaluate(func(f partition.Features) partition.Model {
		dec, err := trained.Choose(q, f)
		if err != nil {
			return partition.ModelDirect
		}
		return dec.Model
	})
	t.AddRow("learned k-NN (300 obs)", pct(a1), f3(r1))

	// Ablation: the same training through the decision-tree selector.
	treeSel := partition.NewDecisionMaker(est)
	treeSel.Selector = partition.SelectorTree
	treeSel.MinEvidence = 20
	for i := 0; i < 300; i++ {
		f := feat(i)
		treeSel.ObserveBest(f, oracle(f))
	}
	a2, r2 := evaluate(func(f partition.Features) partition.Model {
		dec, err := treeSel.Choose(q, f)
		if err != nil {
			return partition.ModelDirect
		}
		return dec.Model
	})
	t.AddRow("learned tree (300 obs)", pct(a2), f3(r2))
	t.Notes = "both learned selectors recover the oracle where the analytic model's cluster/direct assumptions are wrong"
	return t, nil
}
