package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/faultinject"
	"pervasivegrid/internal/supervise"
)

// E15 exercises the self-healing runtime end to end: a service agent
// whose handler crash-loops (every 20th envelope panics) is hammered
// with a burst of senders at twice its mailbox capacity. The supervised
// platform restarts the agent with backoff, breakers open under the
// overflow and re-close after the cool-down, and the retry layer rides
// out both — so nearly every envelope is eventually handled and the
// process never "exits". The unsupervised baseline gets exactly one
// strike: the first panic kills the agent for good (OnAgentDown is the
// stand-in for the process crash a raw goroutine panic would cause) and
// delivery collapses to the envelopes handled before the crash.

// selfHealConfig pins every knob of one E15 run so both rows measure
// the same workload.
const (
	selfHealMailboxCap = 16 // per-lane mailbox capacity
	selfHealSenders    = 32 // concurrent senders = 2x mailbox capacity
	selfHealPerSender  = 2  // envelopes per sender
	selfHealPanicEvery = 20 // every Nth handled envelope panics
)

// selfHealResult is one mode's measured outcome.
type selfHealResult struct {
	offered  int
	handled  int
	panics   uint64
	restarts uint64
	giveUps  uint64
	exits    int
	flips    uint64
	shed     uint64
	alive    bool
}

func (r selfHealResult) success() float64 {
	if r.offered == 0 {
		return 0
	}
	return float64(r.handled) / float64(r.offered)
}

// runSelfHeal drives the crash-loop + overload workload against one
// platform and reports what survived.
func runSelfHeal(supervised bool) (selfHealResult, error) {
	const svcID agent.ID = "flaky-svc"
	name := "selfheal-supervised"
	if !supervised {
		name = "selfheal-baseline"
	}
	p := agent.NewPlatform(name)
	defer p.Close()

	p.Mailbox = agent.MailboxOptions{Capacity: selfHealMailboxCap, Policy: agent.DropNewest}
	p.Breakers = supervise.NewBreakerSet(supervise.BreakerPolicy{
		FailureThreshold:  5,
		OpenFor:           25 * time.Millisecond,
		HalfOpenSuccesses: 1,
	})
	if supervised {
		// Short restart backoff keeps the crash-loop stalls well inside
		// the senders' retry budget; the budget itself is generous
		// because three restarts inside the burst are expected.
		p.Supervision = &supervise.Policy{
			Restart:     true,
			MaxRestarts: 16,
			Window:      10 * time.Second,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    40 * time.Millisecond,
		}
	} else {
		p.Supervision = &supervise.Policy{Restart: false}
	}
	var exits atomic.Int64
	p.OnAgentDown = func(id agent.ID, err error) { exits.Add(1) }

	// The service: a little real work per envelope (so the burst piles up
	// against the mailbox) behind a deterministic crash injector.
	inj := faultinject.New(faultinject.Config{Seed: 7, PanicEveryN: selfHealPanicEvery})
	var handled atomic.Int64
	h := agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		wallClock.Sleep(100 * time.Microsecond)
		handled.Add(1)
	})
	if err := p.Register(svcID, inj.WrapHandler(h), agent.Attributes{}, nil); err != nil {
		return selfHealResult{}, err
	}

	// Offered load: 2x mailbox capacity in concurrent senders, each
	// pushing through the retry layer — an open breaker or a full
	// mailbox degrades into backoff, not loss.
	offered := selfHealSenders * selfHealPerSender
	var wg sync.WaitGroup
	for i := 0; i < selfHealSenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			policy := agent.RetryPolicy{
				MaxAttempts: 20,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    25 * time.Millisecond,
				Jitter:      0.2,
				Seed:        int64(i) + 1,
			}
			for j := 0; j < selfHealPerSender; j++ {
				env, err := agent.NewEnvelope(agent.ID(fmt.Sprintf("loadgen-%d", i)),
					svcID, "inform", "x-selfheal", j)
				if err != nil {
					return
				}
				_ = agent.SendRetry(p, env, 10*time.Second, policy)
			}
		}(i)
	}
	wg.Wait()

	// Let the backlog drain; a dead baseline agent never will, so stop
	// waiting the moment supervision has given the agent up.
	deadline := wallClock.Now().Add(3 * time.Second)
	for p.QueuedEnvelopes() > 0 && p.AgentAlive(svcID) && wallClock.Now().Before(deadline) {
		wallClock.Sleep(2 * time.Millisecond)
	}
	wallClock.Sleep(20 * time.Millisecond) // settle the in-flight handle

	st := p.SupervisionStats()
	return selfHealResult{
		offered:  offered,
		handled:  int(handled.Load()),
		panics:   st.Panics,
		restarts: st.Restarts,
		giveUps:  st.GiveUps,
		exits:    int(exits.Load()),
		flips:    p.Breakers.Transitions(),
		shed:     p.DeliveryStats().Shed,
		alive:    p.AgentAlive(svcID),
	}, nil
}

// E15SelfHealing compares the supervised runtime against the
// one-strike baseline under the same crash-looping service and
// overload burst.
func E15SelfHealing() (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "self-healing: supervised runtime vs one-strike baseline",
		Claim:   "devices and agents in a pervasive grid \"may be disconnected or destroyed\" — supervision restarts a crash-looping agent, breakers shed the overload, and delivery stays above 90% while the unsupervised baseline loses the agent to its first panic",
		Columns: []string{"mode", "offered", "handled", "success", "panics", "restarts", "exits", "breaker flips", "shed", "alive"},
	}

	sup, err := runSelfHeal(true)
	if err != nil {
		return nil, err
	}
	base, err := runSelfHeal(false)
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		mode string
		r    selfHealResult
	}{{"supervised", sup}, {"unsupervised", base}} {
		alive := "yes"
		if !row.r.alive {
			alive = "no"
		}
		t.AddRow(row.mode, itoa(row.r.offered), itoa(row.r.handled), pct(row.r.success()),
			itoa(int(row.r.panics)), itoa(int(row.r.restarts)), itoa(row.r.exits),
			itoa(int(row.r.flips)), itoa(int(row.r.shed)), alive)
	}
	t.Notes = fmt.Sprintf(
		"mailbox cap %d (drop-newest), %d concurrent senders x %d envelopes (2x capacity), handler panics every %d envelopes; breaker threshold 5, cool-down 25ms; supervised give-ups=%d — breaker flips count closed->open->half-open->closed transitions observed by the shared BreakerSet",
		selfHealMailboxCap, selfHealSenders, selfHealPerSender, selfHealPanicEvery, sup.giveUps)
	return t, nil
}
