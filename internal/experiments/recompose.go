package experiments

// E18 — adaptive re-composition under pressure. A two-step composition
// (ingest -> mine) runs against provider agents on a real platform through
// the retry layer. Mid-plan — the instant the first step completes — every
// provider of the second step's concept is destroyed (a crash-loop or a
// partition, injected with faultinject). The static engine exhausts its
// candidates and abandons the conversation; the adaptive executor re-plans
// onto the library's degraded alternative (ingest -> approx) carrying the
// completed step forward in its handoff, so the conversation finishes
// without redoing any work.

import (
	"fmt"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/composition"
	"pervasivegrid/internal/core"
	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/faultinject"
	"pervasivegrid/internal/ontology"
	"pervasivegrid/internal/supervise"
)

// e18Scenarios are the mid-plan pressure modes applied to every provider
// of the second step's concept.
var e18Scenarios = []string{"healthy", "crash-loop", "partition"}

// e18Library defines the goal: a primary decomposition over ingest+mine
// and a ranked degraded alternative over ingest+approx, sharing the
// ingest prefix so a re-plan can carry the completed step forward.
func e18Library() (*composition.Library, error) {
	l := composition.NewLibrary()
	for _, task := range []*composition.Task{
		{Name: "analyse", Subtasks: []string{"ingest", "mine"},
			Alternatives: [][]string{{"ingest", "approx"}}},
		{Name: "ingest", Concept: "IngestService",
			Inputs: []string{"Raw"}, Outputs: []string{"IngestedData"}},
		{Name: "mine", Concept: "MineService",
			Inputs: []string{"IngestedData"}, Outputs: []string{"Result"}},
		{Name: "approx", Concept: "ApproxService",
			Inputs: []string{"IngestedData"}, Outputs: []string{"Result"}},
	} {
		if err := l.Define(task); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// e18Outcome is one trial's measurements.
type e18Outcome struct {
	ok                  bool
	latency             float64
	replans, migrations int
	redone              int
}

// e18Trial runs one conversation. Providers for MineService sit behind
// the injector (handler and deputy), so the scenario can crash-loop or
// partition exactly the services bound to the remaining step.
func e18Trial(o *ontology.Ontology, lib *composition.Library, scenario string, adaptive bool) (e18Outcome, error) {
	p := agent.NewPlatform("e18")
	defer p.Close()
	inj := faultinject.New(faultinject.Config{Seed: 42})
	b := discovery.NewBroker("b0", discovery.NewSemanticMatcher(o))
	for _, c := range []string{"IngestService", "MineService", "ApproxService"} {
		for j := 0; j < 2; j++ {
			name := fmt.Sprintf("%s-%d", c, j)
			if _, err := b.Reg.Register(&ontology.Profile{Name: name, Concept: c}, time.Hour); err != nil {
				return e18Outcome{}, err
			}
			service := name
			var h agent.Handler = agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
				if env.Performative != "request" || env.Ontology != core.ComposeOntology {
					return
				}
				out, err := env.Reply("inform", core.InvokeReply{OK: true, Service: service})
				if err != nil {
					return
				}
				out.From = ctx.Self
				_ = ctx.Send(out)
			})
			var wrapDeputy func(agent.Deputy) agent.Deputy
			if c == "MineService" {
				h = inj.WrapHandler(h)
				wrapDeputy = inj.WrapDeputy
			}
			if err := p.Register(core.ProviderAgentID(name), h, agent.Attributes{}, wrapDeputy); err != nil {
				return e18Outcome{}, err
			}
		}
	}

	policy := agent.RetryPolicy{
		MaxAttempts:    2,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       10 * time.Millisecond,
		AttemptTimeout: 25 * time.Millisecond,
		Seed:           7,
	}
	inner := core.PlatformInvoker(p, 150*time.Millisecond, policy)
	done := map[string]int{}
	eng := &composition.Engine{
		Brokers: []*discovery.Broker{b},
		Onto:    o,
		Breakers: supervise.NewBreakerSet(supervise.BreakerPolicy{
			FailureThreshold: 1, OpenFor: time.Minute,
		}),
		Invoke: func(prof *ontology.Profile, step composition.Step) error {
			err := inner(prof, step)
			if err == nil {
				done[step.Task.Name]++
				if step.Task.Name == "ingest" && done["ingest"] == 1 {
					// Mid-plan pressure: the first step just finished, and
					// every provider of the remaining step's concept dies.
					switch scenario {
					case "crash-loop":
						inj.CrashFor(time.Minute)
					case "partition":
						inj.SetPartitioned(true)
					}
				}
			}
			return err
		},
	}

	start := wallClock.Now()
	var exec composition.Execution
	if adaptive {
		a := &composition.Adaptive{
			Engine: eng, Library: lib,
			Goal: "analyse", Initial: []string{"Raw"},
		}
		a.Start()
		a.WatchBreakers(eng.Breakers)
		exec = a.Run()
		a.Stop()
	} else {
		plan, err := lib.Plan("analyse")
		if err != nil {
			return e18Outcome{}, err
		}
		exec = eng.Execute(plan)
	}
	out := e18Outcome{
		ok:      exec.Succeeded,
		latency: wallClock.Now().Sub(start).Seconds(),
		replans: exec.Replans, migrations: exec.Migrations,
	}
	for _, n := range done {
		if n > 1 {
			out.redone += n - 1
		}
	}
	return out, nil
}

// E18AdaptiveRecomposition measures completion rate and latency for the
// static engine versus the adaptive executor when the services bound to a
// conversation's remaining step die mid-plan.
func E18AdaptiveRecomposition() (*Table, error) {
	t := &Table{
		ID:    "E18",
		Title: "adaptive re-composition under pressure",
		Claim: "if a network service breaks down, the architecture should be able to detect this and resort to fault control mechanisms — here by re-planning the rest of a composition mid-conversation and migrating it to substitute services without redoing completed work",
		Columns: []string{
			"scenario", "executor", "completed", "mean latency(s)",
			"replans", "migrations", "redone steps",
		},
	}
	o := ontology.Pervasive()
	lib, err := e18Library()
	if err != nil {
		return nil, err
	}
	const trials = 6
	for _, scenario := range e18Scenarios {
		for _, adaptive := range []bool{false, true} {
			completed, latency, redone := 0, 0.0, 0
			replans, migrations := 0, 0
			for trial := 0; trial < trials; trial++ {
				out, err := e18Trial(o, lib, scenario, adaptive)
				if err != nil {
					return nil, err
				}
				if out.ok {
					completed++
					latency += out.latency
				}
				replans += out.replans
				migrations += out.migrations
				redone += out.redone
			}
			meanLat := "-"
			if completed > 0 {
				meanLat = f3(latency / float64(completed))
			}
			mode := "static"
			if adaptive {
				mode = "adaptive"
			}
			t.AddRow(scenario, mode, pct(float64(completed)/trials),
				meanLat, itoa(replans), itoa(migrations), itoa(redone))
		}
	}
	t.Notes = "mid-plan, every provider of the remaining step's concept is crash-looped or partitioned; the static engine abandons the conversation while the adaptive executor re-plans onto the degraded alternative, carries the completed step in its handoff, and redoes nothing"
	return t, nil
}
