package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// cell fetches a table cell by row predicate and column name.
func cell(t *testing.T, tb *Table, match func(row []string) bool, col string) string {
	t.Helper()
	ci := -1
	for i, c := range tb.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("%s: column %q missing in %v", tb.ID, col, tb.Columns)
	}
	for _, row := range tb.Rows {
		if match(row) {
			return row[ci]
		}
	}
	t.Fatalf("%s: no row matches", tb.ID)
	return ""
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTableFprint(t *testing.T) {
	tb := &Table{ID: "X", Title: "test", Claim: "c", Columns: []string{"a", "bb"}, Notes: "n"}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== X: test ==", "claim: c", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAllRunnersPresent(t *testing.T) {
	rs := All()
	if len(rs) != 17 {
		t.Fatalf("runners = %d, want 17", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r.ID] {
			t.Fatalf("duplicate runner %s", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestE1ScenarioShape(t *testing.T) {
	tb, err := E1Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 query rows", len(tb.Rows))
	}
	kinds := map[string]bool{}
	for _, row := range tb.Rows {
		kinds[row[0]] = true
	}
	for _, k := range []string{"simple", "aggregate", "complex", "continuous"} {
		if !kinds[k] {
			t.Fatalf("missing %s row", k)
		}
	}
	// The near-fire simple reading is hot.
	v := num(t, cell(t, tb, func(r []string) bool { return r[0] == "simple" }, "value"))
	if v < 100 {
		t.Fatalf("simple value = %v, want hot", v)
	}
}

func TestE2TreeBeatsDirectAtScale(t *testing.T) {
	tb, err := E2SolutionModels()
	if err != nil {
		t.Fatal(err)
	}
	at := func(n, model, col string) float64 {
		return num(t, cell(t, tb, func(r []string) bool { return r[0] == n && r[1] == model }, col))
	}
	for _, n := range []string{"100", "400"} {
		if at(n, "tree", "energy(J)") >= at(n, "direct", "energy(J)") {
			t.Fatalf("n=%s: tree energy should beat direct", n)
		}
		if at(n, "grid", "latency(s)") <= at(n, "tree", "latency(s)") {
			t.Fatalf("n=%s: grid latency should exceed in-network", n)
		}
	}
}

func TestE3TreeLongestLifetime(t *testing.T) {
	if testing.Short() {
		t.Skip("lifetime sweep is slow")
	}
	tb, err := E3NetworkLifetime()
	if err != nil {
		t.Fatal(err)
	}
	death := func(model string) float64 {
		return num(t, cell(t, tb, func(r []string) bool { return r[0] == model }, "rounds to first death"))
	}
	if death("tree") <= death("direct") {
		t.Fatalf("tree lifetime %v should exceed direct %v", death("tree"), death("direct"))
	}
}

func TestE4CrossoverExists(t *testing.T) {
	tb, err := E4ComplexCrossover()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.Notes, "crossover at") {
		t.Fatalf("no crossover found: %s", tb.Notes)
	}
	// Largest grid must favour the grid decisively.
	last := tb.Rows[len(tb.Rows)-1]
	if last[len(last)-1] != "grid" {
		t.Fatalf("largest problem winner = %s", last[len(last)-1])
	}
}

func TestE5LearnedBeatsStaticAndUntrained(t *testing.T) {
	tb, err := E5DecisionMaker()
	if err != nil {
		t.Fatal(err)
	}
	agr := func(policy string) float64 {
		return num(t, cell(t, tb, func(r []string) bool { return r[0] == policy }, "oracle agreement"))
	}
	learned := agr("learned k-NN (300 obs)")
	if learned < 85 {
		t.Fatalf("learned agreement = %v%%, want >= 85%%", learned)
	}
	if learned <= agr("analytic (untrained)") {
		t.Fatal("learning should improve over the untrained analytic model")
	}
	for _, s := range []string{"always-direct", "always-tree", "always-grid"} {
		if learned <= agr(s) {
			t.Fatalf("learned should beat %s", s)
		}
	}
}

func TestE6SemanticDominates(t *testing.T) {
	tb, err := E6Discovery()
	if err != nil {
		t.Fatal(err)
	}
	get := func(n, matcher, col string) float64 {
		return num(t, cell(t, tb, func(r []string) bool { return r[0] == n && r[1] == matcher }, col))
	}
	for _, n := range []string{"500", "2000"} {
		if get(n, "semantic", "precision") < 95 || get(n, "semantic", "recall") < 95 {
			t.Fatalf("n=%s: semantic should be near-perfect", n)
		}
		if get(n, "jini", "precision") >= get(n, "semantic", "precision") {
			t.Fatalf("n=%s: jini precision should be poor", n)
		}
		if get(n, "sdp", "recall") >= get(n, "semantic", "recall") {
			t.Fatalf("n=%s: sdp recall should be poor", n)
		}
	}
}

func TestE7RebindingAndDistribution(t *testing.T) {
	tb, err := E7CompositionFaults()
	if err != nil {
		t.Fatal(err)
	}
	get := func(p, policy string) float64 {
		return num(t, cell(t, tb, func(r []string) bool { return r[0] == p && r[1] == policy }, "success"))
	}
	if get("0.2", "rebind(4)") <= get("0.2", "no-retry") {
		t.Fatal("re-binding should beat no-retry at 20% failures")
	}
	if get("coord down", "distributed") <= get("coord down", "centralized") {
		t.Fatal("distributed coordination should survive coordinator loss")
	}
	if get("coord down", "centralized") != 0 {
		t.Fatal("centralized with coordinator down should always fail")
	}
}

func TestE8LifetimeCliff(t *testing.T) {
	tb, err := E8DynamicComposition()
	if err != nil {
		t.Fatal(err)
	}
	get := func(life, strat string) float64 {
		return num(t, cell(t, tb, func(r []string) bool { return r[0] == life && r[1] == strat }, "success"))
	}
	if get("2", "reactive") >= get("60", "reactive") {
		t.Fatal("short-lived services should sink availability")
	}
	if get("60", "reactive") < 95 {
		t.Fatal("long-lived services should be highly available")
	}
}

func TestE9SolversConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweep is slow")
	}
	tb, err := E9PDEScaling()
	if err != nil {
		t.Fatal(err)
	}
	// SOR iterations ≪ Jacobi iterations at the same grid.
	sor := num(t, cell(t, tb, func(r []string) bool { return r[0] == "129x129" && r[1] == "sor" && r[2] == "1" }, "iters"))
	jac := num(t, cell(t, tb, func(r []string) bool { return r[0] == "129x129" && r[1] == "jacobi" && r[2] == "1" }, "iters"))
	if sor*5 > jac {
		t.Fatalf("sor iters %v should be far below jacobi %v", sor, jac)
	}
}

func TestE10SavingsAndAccuracy(t *testing.T) {
	tb, err := E10StreamMining()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		acc := num(t, cell(t, tb, func(r []string) bool { return r[0] == row[0] }, "ensemble acc"))
		save := num(t, cell(t, tb, func(r []string) bool { return r[0] == row[0] }, "saving"))
		if acc < 90 {
			t.Fatalf("topK=%s: ensemble accuracy %v too low", row[0], acc)
		}
		if save <= 1 {
			t.Fatalf("topK=%s: no communication saving", row[0])
		}
	}
}

func TestE13ObservedCorrectionChangesDecisions(t *testing.T) {
	tb, err := E13ObservedCost()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	changed := 0
	for _, row := range tb.Rows {
		if row[len(row)-1] == "*" {
			changed++
		}
	}
	if changed == 0 {
		var buf bytes.Buffer
		tb.Fprint(&buf)
		t.Fatalf("observed-cost correction changed no decision:\n%s", buf.String())
	}
	if !strings.Contains(tb.Notes, "measured per-hop latency") {
		t.Fatalf("notes missing measurement summary: %s", tb.Notes)
	}
}

func TestE14FleetTelemetryDecisionFlip(t *testing.T) {
	tb, err := E14FleetTelemetry()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	changed := 0
	for _, row := range tb.Rows {
		if row[len(row)-1] == "*" {
			changed++
		}
	}
	if changed == 0 {
		var buf bytes.Buffer
		tb.Fprint(&buf)
		t.Fatalf("degraded-uplink correction changed no decision:\n%s", buf.String())
	}
	// The deep 100-sensor aggregate is far from every boundary; if the
	// fleet correction flips it, the loop is scrambling rather than
	// refining decisions.
	for _, row := range tb.Rows {
		if row[0] == "avg over 100, deep" && row[len(row)-1] == "*" {
			t.Fatal("robust deep case flipped under fleet correction")
		}
	}
	if !strings.Contains(tb.Notes, "monitor-aggregated uplink cost") {
		t.Fatalf("notes missing aggregation summary: %s", tb.Notes)
	}
}

func TestE15SupervisedSurvivesBaselineDies(t *testing.T) {
	tb, err := E15SelfHealing()
	if err != nil {
		t.Fatal(err)
	}
	get := func(mode, col string) float64 {
		return num(t, cell(t, tb, func(r []string) bool { return r[0] == mode }, col))
	}
	str := func(mode, col string) string {
		return cell(t, tb, func(r []string) bool { return r[0] == mode }, col)
	}
	if s := get("supervised", "success"); s < 90 {
		var buf bytes.Buffer
		tb.Fprint(&buf)
		t.Fatalf("supervised success = %v%%, want >= 90%%:\n%s", s, buf.String())
	}
	if e := get("supervised", "exits"); e != 0 {
		t.Fatalf("supervised exits = %v, want 0", e)
	}
	if r := get("supervised", "restarts"); r == 0 {
		t.Fatal("supervised run saw no restarts — the crash loop never fired")
	}
	if a := str("supervised", "alive"); a != "yes" {
		t.Fatalf("supervised agent alive = %q, want yes", a)
	}
	if s := get("unsupervised", "success"); s >= 90 {
		t.Fatalf("unsupervised success = %v%%, expected collapse below 90%%", s)
	}
	if e := get("unsupervised", "exits"); e < 1 {
		t.Fatalf("unsupervised exits = %v, want >= 1", e)
	}
	if a := str("unsupervised", "alive"); a != "no" {
		t.Fatalf("unsupervised agent alive = %q, want no", a)
	}
	// Both runs must have flipped a breaker: the burst overflows the
	// mailbox (supervised) and the dead agent's route fails (baseline).
	if f := get("unsupervised", "breaker flips"); f < 1 {
		t.Fatalf("unsupervised breaker flips = %v, want >= 1", f)
	}
}

func TestE11CachingOrdering(t *testing.T) {
	tb, err := E11Caching()
	if err != nil {
		t.Fatal(err)
	}
	get := func(prefix, col string) float64 {
		return num(t, cell(t, tb, func(r []string) bool { return strings.HasPrefix(r[0], prefix) }, col))
	}
	reactive := get("reactive", "energy(J)")
	continuous := get("continuous", "energy(J)")
	cached := get("cached", "energy(J)")
	if !(cached < continuous && continuous < reactive) {
		t.Fatalf("energy ordering violated: cached=%v continuous=%v reactive=%v", cached, continuous, reactive)
	}
	if get("cached", "messages") >= get("reactive", "messages") {
		t.Fatal("caching should slash message count")
	}
}

func TestE16ShedsScaleWhilePriorityHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("three 4s open-loop storm runs over real TCP")
	}
	tb, err := E16PriorityUnderStorm()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 intensities", len(tb.Rows))
	}
	get := func(row []string, col string) float64 {
		return num(t, cell(t, tb, func(r []string) bool { return &r[0] == &row[0] }, col))
	}
	// The runner already gates priority delivery >= 99% and a clean
	// priority lane per row (CheckStormReport); here we pin the shape of
	// the claim: sheds grow with overload and the 4x row really shed.
	low, mid, high := tb.Rows[0], tb.Rows[1], tb.Rows[2]
	if s := get(high, "bulk shed"); s <= get(mid, "bulk shed") || s == 0 {
		t.Fatalf("sheds did not grow with intensity: %v -> %v -> %v",
			get(low, "bulk shed"), get(mid, "bulk shed"), s)
	}
	for _, row := range tb.Rows {
		if dl := get(row, "prio dead letters"); dl != 0 {
			t.Fatalf("bulk %s/s: %v priority dead letters", row[0], dl)
		}
	}
}

func TestE17DeterministicAtEveryScale(t *testing.T) {
	if testing.Short() {
		t.Skip("2M node-ticks per row, serial and parallel")
	}
	tb, err := E17CityScaleSimulation()
	if err != nil {
		t.Fatal(err) // includes any digest divergence — the runner refuses to tabulate one
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 10k/50k/100k", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if eq := cell(t, tb, func(r []string) bool { return &r[0] == &row[0] }, "digest(1w)==digest(8w)"); eq != "yes" {
			t.Fatalf("%s nodes: digest column = %q", row[0], eq)
		}
		if tps := num(t, cell(t, tb, func(r []string) bool { return &r[0] == &row[0] }, "ticks/s")); tps <= 0 {
			t.Fatalf("%s nodes: ticks/s = %v", row[0], tps)
		}
	}
}

func TestE18AdaptiveCompletesWhereStaticAbandons(t *testing.T) {
	tb, err := E18AdaptiveRecomposition()
	if err != nil {
		t.Fatal(err)
	}
	get := func(scenario, mode, col string) string {
		return cell(t, tb, func(r []string) bool { return r[0] == scenario && r[1] == mode }, col)
	}
	// Parity when nothing degrades: the adaptive executor costs nothing.
	if num(t, get("healthy", "static", "completed")) != 100 ||
		num(t, get("healthy", "adaptive", "completed")) != 100 {
		t.Fatal("healthy scenario should complete under both executors")
	}
	for _, scenario := range []string{"crash-loop", "partition"} {
		if v := num(t, get(scenario, "static", "completed")); v > 10 {
			t.Fatalf("%s: static completed %v%%, expected abandonment", scenario, v)
		}
		if v := num(t, get(scenario, "adaptive", "completed")); v < 90 {
			t.Fatalf("%s: adaptive completed %v%%, want >= 90%%", scenario, v)
		}
		if v := num(t, get(scenario, "adaptive", "replans")); v < 1 {
			t.Fatalf("%s: adaptive shows no re-plans", scenario)
		}
		// Migration fidelity: completed steps are carried forward, never
		// re-executed on the substitute plan.
		if v := num(t, get(scenario, "adaptive", "redone steps")); v != 0 {
			t.Fatalf("%s: adaptive redid %v completed steps", scenario, v)
		}
	}
}
