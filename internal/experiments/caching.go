package experiments

import "fmt"

// E11Caching is the proactive-vs-reactive ablation: the paper suggests
// "pro-actively compute some generic information about ... a query which
// is requested with a high frequency. The other approach is to re-actively
// integrate and execute services". Here the same aggregate demand (five
// answers) is served three ways: five independent one-shot queries (fully
// reactive, five installation floods), one continuous query (installation
// amortised across epochs), and five one-shots against the base station's
// result cache (fully proactive within the TTL).
func E11Caching() (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "ablation: reactive re-execution vs amortised/continuous vs cached",
		Claim: "we might want to pro-actively compute some generic information about ... a query which is requested with a high frequency; the other approach is to re-actively integrate and execute",
		Columns: []string{
			"strategy", "answers", "messages", "energy(J)", "total latency(s)",
		},
	}
	const answers = 5
	q := "SELECT avg(temp) FROM sensors"

	// Fully reactive: a fresh flood + collection per request.
	rt, err := burningBuilding(10, 10)
	if err != nil {
		return nil, err
	}
	msgs, energy, latency := 0, 0.0, 0.0
	for i := 0; i < answers; i++ {
		res, err := rt.Submit(q)
		if err != nil {
			return nil, err
		}
		msgs += res.Messages
		energy += res.EnergyJ
		latency += res.TimeSec
	}
	t.AddRow("reactive one-shots", itoa(answers), itoa(msgs), f3(energy), f3(latency))

	// Continuous: one installation, epochs stream results.
	rtc, err := burningBuilding(10, 10)
	if err != nil {
		return nil, err
	}
	rtc.Cfg.MaxRounds = answers
	res, err := rtc.Submit(q + " EPOCH 10")
	if err != nil {
		return nil, err
	}
	t.AddRow("continuous (5 epochs)", itoa(len(res.Rounds)), itoa(res.Messages), f3(res.EnergyJ), f3(res.TimeSec))

	// Cached: first execution pays, repeats are free within the TTL.
	rtk, err := burningBuilding(10, 10)
	if err != nil {
		return nil, err
	}
	rtk.EnableCache(600)
	msgs, energy, latency = 0, 0.0, 0.0
	hits := 0
	for i := 0; i < answers; i++ {
		res, err := rtk.Submit(q)
		if err != nil {
			return nil, err
		}
		msgs += res.Messages
		energy += res.EnergyJ
		latency += res.TimeSec
		if res.Cached {
			hits++
		}
	}
	t.AddRow(fmt.Sprintf("cached (%d hits)", hits), itoa(answers), itoa(msgs), f3(energy), f3(latency))
	t.Notes = "installation flooding makes reactive re-execution the most expensive path; continuous amortises the flood; caching answers repeats for free at the price of staleness"
	return t, nil
}
