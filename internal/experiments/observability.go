package experiments

import (
	"fmt"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/faultinject"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/partition"
	"pervasivegrid/internal/query"
)

// E13ObservedCost closes the estimate/measurement loop below the learned
// calibration layer: it runs real envelope conversations through a
// degraded messaging path (injected latency + 10% drop), measures the
// per-hop delivery cost and loss with the obs layer, corrects the
// decision maker's transport constants from those measurements
// (partition.ApplyObserved), and compares the partition decisions made
// before and after the correction.
func E13ObservedCost() (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "observed-cost correction of the partition cost model",
		Claim:   "\"comparing the estimates … with the actual values … the results would be incorporated\" — measured transport cost corrects the analytic estimates",
		Columns: []string{"query", "selected", "model(configured)", "model(observed)", "time-est(conf)", "time-est(obs)", "changed"},
	}

	// A messaging path degraded the way a congested pervasive deployment
	// would be: injected per-envelope latency and 10% envelope loss.
	const dropProb = 0.10
	inj := faultinject.New(faultinject.Config{
		Seed:          17,
		DropProb:      dropProb,
		Latency:       8 * time.Millisecond,
		LatencyJitter: 8 * time.Millisecond,
	})
	p := agent.NewPlatform("e13")
	defer p.Close()
	if err := p.Register("echo", agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		if out, err := env.Reply("inform", "ok"); err == nil {
			out.From = ctx.Self
			_ = ctx.Platform.Send(out)
		}
	}), agent.Attributes{}, inj.WrapDeputy); err != nil {
		return nil, err
	}

	// Measure round-trip conversations through the degraded path. The
	// RTT crosses the injector once (request); the reply is direct — so
	// the observed per-hop latency is the RTT minus local overhead,
	// captured as a histogram and summarised by its median.
	rtt := obs.NewRegistry()
	hist := rtt.Histogram("observed_rtt_seconds")
	policy := agent.RetryPolicy{MaxAttempts: 6, BaseDelay: 5 * time.Millisecond,
		MaxDelay: 40 * time.Millisecond, Seed: 17, AttemptTimeout: 60 * time.Millisecond}
	const calls = 40
	completed := 0
	for i := 0; i < calls; i++ {
		start := wallClock.Now()
		if _, err := agent.CallRetry(p, "echo", "request", "e13-echo", i, 2*time.Second, policy); err == nil {
			hist.Observe(wallClock.Now().Sub(start).Seconds())
			completed++
		}
	}
	if completed == 0 {
		return nil, fmt.Errorf("e13: no echo conversation completed")
	}
	st := inj.Stats()
	measuredDrop := float64(st.Dropped) / float64(st.Seen)
	measuredHop := hist.Quantile(0.5)

	observed := partition.ObservedTransport{
		AvgDeliverSec: measuredHop,
		DropRate:      measuredDrop,
	}

	// Decide the same workload against the configured platform and
	// against the observation-corrected one.
	confPlat := partition.DefaultPlatform()
	dmConf := partition.NewDecisionMaker(partition.NewEstimator(confPlat))
	dmObs := partition.NewDecisionMaker(partition.NewEstimator(confPlat))
	dmObs.CorrectTransport(observed)

	// The 40-sensor mid-depth cases sit on the cluster/tree boundary
	// under the configured 2ms HopDelay: once the measured per-hop cost
	// comes back several times higher, the extra cluster-head hops stop
	// paying for themselves and the decision flips. The deep/complex
	// cases are far from any boundary and must NOT flip — the correction
	// should move estimates, not scramble robust decisions.
	cases := []struct {
		name string
		f    partition.Features
	}{
		{"avg over 40, mid", partition.Features{Base: query.Aggregate, Selected: 40, AvgDepth: 4, MaxDepth: 6}},
		{"raw readings, 40", partition.Features{Base: query.Simple, Selected: 40, AvgDepth: 4, MaxDepth: 6}},
		{"avg over 100, deep", partition.Features{Base: query.Aggregate, Selected: 100, AvgDepth: 6, MaxDepth: 10}},
		{"distribution, 100", partition.Features{Base: query.Complex, Selected: 100, AvgDepth: 6, MaxDepth: 10, ComputeOps: 5e7}},
		{"continuous avg, 40", partition.Features{Base: query.Aggregate, Selected: 40, AvgDepth: 4, MaxDepth: 6, Epoch: 10}},
	}
	changed := 0
	for _, c := range cases {
		before, err := dmConf.Choose(nil, c.f)
		if err != nil {
			return nil, err
		}
		after, err := dmObs.Choose(nil, c.f)
		if err != nil {
			return nil, err
		}
		var tBefore, tAfter float64
		for _, est := range before.Estimates {
			if est.Model == before.Model {
				tBefore = est.TimeSec
			}
		}
		for _, est := range after.Estimates {
			if est.Model == after.Model {
				tAfter = est.TimeSec
			}
		}
		mark := ""
		if before.Model != after.Model {
			mark = "*"
			changed++
		}
		t.AddRow(c.name, itoa(c.f.Selected), before.Model.String(), after.Model.String(),
			f3(tBefore)+" s", f3(tAfter)+" s", mark)
	}
	t.Notes = fmt.Sprintf(
		"measured per-hop latency %s s (p50 of %d conversations), measured drop %s vs injected %s; corrected HopDelay %s s -> %s s, bandwidth derated by 1/(1-drop); %d/%d decisions changed",
		f3(measuredHop), completed, pct(measuredDrop), pct(dropProb),
		f3(confPlat.Net.HopDelay), f3(dmObs.Est.P.Net.HopDelay), changed, len(cases))
	return t, nil
}
