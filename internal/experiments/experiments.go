// Package experiments implements the reproduction suite E1–E18 described
// in DESIGN.md. The paper (a vision paper) publishes no quantitative
// tables; each experiment here quantifies one of its explicit claims, and
// E1 reproduces Figure 1's scenario end-to-end. The same runners back
// cmd/pgridbench and the repository's benchmark suite; results are
// returned as printable tables so EXPERIMENTS.md can be regenerated.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"pervasivegrid/internal/obs"
)

// wallClock is the timing source for every experiment's latency
// measurement. Experiments measure real elapsed time by design, but they
// still go through the obs.Clock seam so a harness can substitute a
// FakeClock and make table runs deterministic.
var wallClock obs.Clock = obs.Real

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper text the experiment tests
	Columns []string
	Rows    [][]string
	Notes   string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// Runner is one experiment entry point.
type Runner struct {
	ID  string
	Run func() (*Table, error)
}

// All lists the full suite in order.
func All() []Runner {
	return []Runner{
		{"E1", E1Figure1},
		{"E2", E2SolutionModels},
		{"E3", E3NetworkLifetime},
		{"E4", E4ComplexCrossover},
		{"E5", E5DecisionMaker},
		{"E6", E6Discovery},
		{"E7", E7CompositionFaults},
		{"E8", E8DynamicComposition},
		{"E9", E9PDEScaling},
		{"E10", E10StreamMining},
		{"E11", E11Caching},
		{"E13", E13ObservedCost},
		{"E14", E14FleetTelemetry},
		{"E15", E15SelfHealing},
		{"E16", E16PriorityUnderStorm},
		{"E17", E17CityScaleSimulation},
		{"E18", E18AdaptiveRecomposition},
	}
}

func f3(v float64) string  { return fmt.Sprintf("%.3g", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4g", v) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
