package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"pervasivegrid/internal/composition"
	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/ontology"
)

// printerCorpus synthesises a service population: a fraction are color
// printers, of which a fraction are cheap; plus unrelated services.
func printerCorpus(n int, seed int64) ([]*ontology.Profile, map[string]bool) {
	rng := rand.New(rand.NewSource(seed))
	truth := map[string]bool{} // services that truly satisfy the need
	var pool []*ontology.Profile
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("svc-%d", i)
		roll := rng.Float64()
		switch {
		case roll < 0.15: // color printer
			cost := rng.Float64() * 0.4
			p := &ontology.Profile{
				Name: name, Concept: "ColorPrinter",
				Interface: "Printer.printIt",
				UUID:      "uuid-" + name,
				Properties: map[string]ontology.Value{
					"color": ontology.Str("yes"),
					"cost":  ontology.Num(cost),
					"queue": ontology.Num(float64(rng.Intn(20))),
				},
			}
			pool = append(pool, p)
			if cost <= 0.10 {
				truth[name] = true
			}
		case roll < 0.35: // mono printer, same Jini interface
			pool = append(pool, &ontology.Profile{
				Name: name, Concept: "PrinterService",
				Interface: "Printer.printIt",
				UUID:      "uuid-" + name,
				Properties: map[string]ontology.Value{
					"cost":  ontology.Num(rng.Float64() * 0.1),
					"queue": ontology.Num(float64(rng.Intn(20))),
				},
			})
		default: // unrelated services
			concepts := []string{"StorageService", "DisplayService", "TemperatureSensor", "HospitalRecords"}
			pool = append(pool, &ontology.Profile{
				Name: name, Concept: concepts[rng.Intn(len(concepts))],
				Interface: "Other.op",
				UUID:      "uuid-" + name,
			})
		}
	}
	return pool, truth
}

// E6Discovery compares semantic matching against the Jini-style and
// Bluetooth-SDP-style baselines on the paper's own printer scenario.
func E6Discovery() (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "service discovery: semantic vs syntactic matching",
		Claim: "they return exact matches and can only handle equality constraints ... not sufficient for clients to find a printer service that ... will print in color but only within a prespecified cost constraint",
		Columns: []string{
			"services", "matcher", "precision", "recall", "lookup(ms)",
		},
	}
	o := ontology.Pervasive()
	semantic := discovery.NewSemanticMatcher(o)
	jini := discovery.JiniMatcher{}
	sdp := discovery.SDPMatcher{}

	for _, n := range []int{100, 500, 2000} {
		pool, truth := printerCorpus(n, int64(n))
		if len(truth) == 0 {
			continue
		}
		// The need: a color printer within cost 0.10, short queue first.
		semReq := ontology.Request{
			Concept: "ColorPrinter",
			Constraints: []ontology.Constraint{
				{Property: "color", Op: ontology.OpEq, Value: ontology.Str("yes")},
				{Property: "cost", Op: ontology.OpLe, Value: ontology.Num(0.10)},
			},
			PreferLow: []string{"queue"},
		}
		// Jini can only name the interface; SDP can only name one UUID
		// the client somehow already knows (pick one true service).
		jiniReq := ontology.Request{Concept: "Printer.printIt"}
		var knownUUID string
		for name := range truth {
			if knownUUID == "" || "uuid-"+name < knownUUID {
				knownUUID = "uuid-" + name
			}
		}
		sdpReq := ontology.Request{Concept: knownUUID}

		score := func(m discovery.Matcher, req ontology.Request) (prec, rec float64, ms float64) {
			start := wallClock.Now()
			got := m.Match(req, pool)
			ms = float64(wallClock.Now().Sub(start).Microseconds()) / 1000
			if len(got) == 0 {
				return 0, 0, ms
			}
			hit := 0
			for _, g := range got {
				if truth[g.Profile.Name] {
					hit++
				}
			}
			return float64(hit) / float64(len(got)), float64(hit) / float64(len(truth)), ms
		}
		for _, mc := range []struct {
			m   discovery.Matcher
			req ontology.Request
		}{
			{semantic, semReq}, {jini, jiniReq}, {sdp, sdpReq},
		} {
			p, r, ms := score(mc.m, mc.req)
			t.AddRow(itoa(n), mc.m.Name(), pct(p), pct(r), f3(ms))
		}
	}
	t.Notes = "semantic matching is exact on the capability need; Jini floods the client with every printIt service; SDP retrieves only the single pre-known UUID"
	return t, nil
}

// compositionWorld builds brokers with redundant services for the paper's
// stream-mining pipeline.
func compositionWorld(nBrokers, perConcept int, ttl time.Duration, now func() time.Time) []*discovery.Broker {
	o := ontology.Pervasive()
	m := discovery.NewSemanticMatcher(o)
	brokers := make([]*discovery.Broker, nBrokers)
	for i := range brokers {
		brokers[i] = discovery.NewBroker(fmt.Sprintf("broker-%d", i), m)
		if now != nil {
			brokers[i].Reg.Now = now
		}
	}
	concepts := []string{"DecisionTreeService", "FourierSpectrumService", "DataMiningService"}
	for ci, c := range concepts {
		for j := 0; j < perConcept; j++ {
			p := &ontology.Profile{Name: fmt.Sprintf("%s-%d", c, j), Concept: c}
			b := brokers[(ci+j)%nBrokers]
			b.Reg.Register(p, ttl) //nolint:errcheck // static registration
		}
	}
	for i := range brokers {
		for j := i + 1; j < len(brokers); j++ {
			brokers[i].Peer(brokers[j], true)
		}
	}
	return brokers
}

// E7CompositionFaults sweeps per-invocation failure probability and
// compares no-retry vs re-binding, and centralized vs distributed
// coordination under coordinator loss.
func E7CompositionFaults() (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "composition fault tolerance",
		Claim: "if a network service breaks down, the architecture should be able to detect this and resort to fault control mechanisms ... degrade gracefully",
		Columns: []string{
			"fail prob", "policy", "success", "mean rebinds",
		},
	}
	o := ontology.Pervasive()
	lib := composition.StreamMiningLibrary()
	plan, err := lib.Plan("mine-stream")
	if err != nil {
		return nil, err
	}
	const trials = 100
	for _, pFail := range []float64{0, 0.1, 0.2, 0.3, 0.5} {
		for _, pol := range []struct {
			name     string
			attempts int
		}{
			{"no-retry", 1},
			{"rebind(4)", 4},
		} {
			rng := rand.New(rand.NewSource(int64(pFail*1000) + int64(pol.attempts)))
			succ, rebinds := 0, 0
			for trial := 0; trial < trials; trial++ {
				brokers := compositionWorld(1, 4, time.Hour, nil)
				e := &composition.Engine{
					Brokers: brokers, Onto: o,
					MaxAttempts: pol.attempts,
					Invoke: func(*ontology.Profile, composition.Step) error {
						if rng.Float64() < pFail {
							return fmt.Errorf("injected failure")
						}
						return nil
					},
				}
				exec := e.Execute(plan)
				if exec.Succeeded {
					succ++
				}
				rebinds += exec.Rebinds()
			}
			t.AddRow(f3(pFail), pol.name, pct(float64(succ)/trials), f3(float64(rebinds)/trials))
		}
	}

	// Coordinator loss: centralized vs distributed.
	for _, mode := range []composition.Mode{composition.Centralized, composition.Distributed} {
		succ := 0
		for trial := 0; trial < trials; trial++ {
			brokers := compositionWorld(3, 3, time.Hour, nil)
			e := &composition.Engine{
				Brokers: brokers, Onto: o, Mode: mode,
				BrokerDown: map[string]bool{"broker-0": true},
				Invoke:     func(*ontology.Profile, composition.Step) error { return nil },
			}
			if exec := e.Execute(plan); exec.Succeeded {
				succ++
			}
		}
		t.AddRow("coord down", mode.String(), pct(float64(succ)/trials), "0")
	}
	t.Notes = "re-binding holds success near 100% until most candidates fail; distributed coordination survives broker loss that kills the centralized architecture"
	return t, nil
}

// E8DynamicComposition sweeps service lifetime and compares reactive vs
// proactive binding in a world of short-lived services.
func E8DynamicComposition() (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "composition with short-lived services",
		Claim: "service composition should be able to take advantage of different short-lived services which stay in the vicinity for a finite amount of time and then disappear",
		Columns: []string{
			"mean lifetime(s)", "strategy", "success", "mean latency(s)",
		},
	}
	o := ontology.Pervasive()
	lib := composition.StreamMiningLibrary()
	plan, err := lib.Plan("mine-stream")
	if err != nil {
		return nil, err
	}
	concepts := []string{"DecisionTreeService", "FourierSpectrumService", "DataMiningService"}
	const trials = 60
	for _, lifetime := range []float64{2, 5, 15, 60} {
		for _, strat := range []composition.BindStrategy{composition.Reactive, composition.Proactive} {
			rng := rand.New(rand.NewSource(int64(lifetime*10) + int64(strat)))
			succ := 0
			latency := 0.0
			for trial := 0; trial < trials; trial++ {
				// Virtual clock: services registered with exponential
				// lifetimes; the composition starts after a random
				// delay so some leases have already expired.
				now := time.Unix(0, 0)
				clock := func() time.Time { return now }
				brokers := compositionWorld(1, 0, time.Hour, clock)
				for _, c := range concepts {
					for j := 0; j < 4; j++ {
						life := rng.ExpFloat64() * lifetime
						p := &ontology.Profile{Name: fmt.Sprintf("%s-%d", c, j), Concept: c}
						brokers[0].Reg.Register(p, time.Duration(life*float64(time.Second))) //nolint:errcheck
					}
				}
				e := &composition.Engine{
					Brokers: brokers, Onto: o, Strategy: strat,
					DiscoveryCost: 0.05, InvokeCost: 0.2,
					Invoke: func(*ontology.Profile, composition.Step) error { return nil },
				}
				if strat == composition.Proactive {
					e.Prebind(plan)
				}
				// A fixed 8 s passes between planning and execution, so
				// shorter-lived services are likelier to be gone.
				now = now.Add(8 * time.Second)
				exec := e.Execute(plan)
				if exec.Succeeded {
					succ++
					latency += exec.Latency
				}
			}
			meanLat := "-"
			if succ > 0 {
				meanLat = f3(latency / float64(succ))
			}
			t.AddRow(f3(lifetime), strat.String(), pct(float64(succ)/trials), meanLat)
		}
	}
	t.Notes = "short lifetimes sink availability for both strategies; proactive binding saves discovery latency when services persist but pays fallback lookups when its cache goes stale"
	return t, nil
}
