package experiments

import (
	"fmt"
	"time"

	"pervasivegrid/internal/faultinject"
	"pervasivegrid/internal/partition"
	"pervasivegrid/internal/query"
	"pervasivegrid/internal/telemetry"
)

// E14FleetTelemetry closes the same loop as E13 but fleet-wide, through
// the telemetry plane: two real nodes report into a monitor agent over
// TCP envelopes, each probing its own uplink with echo round-trips. One
// node's uplink is degraded with injected latency and loss. The monitor
// aggregates both nodes' measurements and corrects a decision maker per
// node (Monitor.Correct -> partition.ApplyObserved); the experiment
// compares the partition decisions the grid would make for work placed
// behind the healthy uplink versus the degraded one.
func E14FleetTelemetry() (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "fleet-telemetry correction: healthy vs degraded uplink",
		Claim:   "\"the actual values of the metrics for the chosen solution\" are fed back fleet-wide — a monitor agent's aggregated measurements repartition work when a remote node degrades",
		Columns: []string{"query", "selected", "model(healthy node)", "model(degraded node)", "time-est(healthy)", "time-est(degraded)", "changed"},
	}

	// Node 1 keeps a clean uplink; node 2's uplink suffers congestion-like
	// latency plus 12% envelope loss, the shape E13 injects locally.
	fleet, err := telemetry.StartFleet(telemetry.FleetConfig{
		Nodes:    2,
		Interval: 100 * time.Millisecond,
		NodeFaults: []faultinject.Config{
			{},
			{Seed: 17, DropProb: 0.12, Latency: 8 * time.Millisecond, LatencyJitter: 8 * time.Millisecond},
		},
	})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()

	// Each node measures its own uplink: echo round-trips against the
	// monitor platform, recorded as transport_rtt_seconds /
	// transport_probe_*_total in the node registry.
	const probes = 30
	for _, n := range fleet.Nodes {
		for i := 0; i < probes; i++ {
			n.Prober.ProbeOnce()
		}
		if err := n.Reporter.ReportNow(); err != nil {
			return nil, fmt.Errorf("e14: %s report: %w", n.Name, err)
		}
	}

	obsHealthy, ok := fleet.Monitor.ObservedTransport("node-1")
	if !ok || obsHealthy.AvgDeliverSec <= 0 {
		return nil, fmt.Errorf("e14: no healthy-uplink measurement aggregated")
	}
	obsDegraded, ok := fleet.Monitor.ObservedTransport("node-2")
	if !ok || obsDegraded.AvgDeliverSec <= 0 {
		return nil, fmt.Errorf("e14: no degraded-uplink measurement aggregated")
	}

	confPlat := partition.DefaultPlatform()
	dmHealthy := partition.NewDecisionMaker(partition.NewEstimator(confPlat))
	if _, ok := fleet.Monitor.Correct(dmHealthy, "node-1"); !ok {
		return nil, fmt.Errorf("e14: correct(node-1) failed")
	}
	dmDegraded := partition.NewDecisionMaker(partition.NewEstimator(confPlat))
	if _, ok := fleet.Monitor.Correct(dmDegraded, "node-2"); !ok {
		return nil, fmt.Errorf("e14: correct(node-2) failed")
	}

	// The E13 workload set: boundary cases flip with hop cost, the
	// deep/complex cases must stay put.
	cases := []struct {
		name string
		f    partition.Features
	}{
		{"avg over 40, mid", partition.Features{Base: query.Aggregate, Selected: 40, AvgDepth: 4, MaxDepth: 6}},
		{"raw readings, 40", partition.Features{Base: query.Simple, Selected: 40, AvgDepth: 4, MaxDepth: 6}},
		{"avg over 100, deep", partition.Features{Base: query.Aggregate, Selected: 100, AvgDepth: 6, MaxDepth: 10}},
		{"distribution, 100", partition.Features{Base: query.Complex, Selected: 100, AvgDepth: 6, MaxDepth: 10, ComputeOps: 5e7}},
		{"continuous avg, 40", partition.Features{Base: query.Aggregate, Selected: 40, AvgDepth: 4, MaxDepth: 6, Epoch: 10}},
	}
	changed := 0
	for _, c := range cases {
		healthy, err := dmHealthy.Choose(nil, c.f)
		if err != nil {
			return nil, err
		}
		degraded, err := dmDegraded.Choose(nil, c.f)
		if err != nil {
			return nil, err
		}
		var tHealthy, tDegraded float64
		for _, est := range healthy.Estimates {
			if est.Model == healthy.Model {
				tHealthy = est.TimeSec
			}
		}
		for _, est := range degraded.Estimates {
			if est.Model == degraded.Model {
				tDegraded = est.TimeSec
			}
		}
		mark := ""
		if healthy.Model != degraded.Model {
			mark = "*"
			changed++
		}
		t.AddRow(c.name, itoa(c.f.Selected), healthy.Model.String(), degraded.Model.String(),
			f3(tHealthy)+" s", f3(tDegraded)+" s", mark)
	}

	fv := fleet.Monitor.Fleet()
	t.Notes = fmt.Sprintf(
		"monitor-aggregated uplink cost: node-1 %s s rtt / %s loss, node-2 %s s rtt / %s loss (%d probes each, %d nodes reporting, fleet worst=%s); %d/%d decisions changed between the two corrections",
		f3(obsHealthy.AvgDeliverSec), pct(obsHealthy.DropRate),
		f3(obsDegraded.AvgDeliverSec), pct(obsDegraded.DropRate),
		probes, len(fv.Nodes), fv.Worst, changed, len(cases))
	return t, nil
}
