package core

import (
	"pervasivegrid/internal/query"
)

// Result caching implements the paper's proactive option: "we might want
// to pro-actively compute some generic information about services required
// to execute a query which is requested with a high frequency" — a query
// answered recently (within CacheTTL of virtual time) is served from the
// base station's cache at zero network cost.

type cachedResult struct {
	res Result
	at  float64 // virtual completion time
}

// EnableCache turns result caching on with the given virtual-time TTL in
// seconds. A non-positive ttl disables caching.
func (rt *Runtime) EnableCache(ttl float64) {
	rt.cacheTTL = ttl
	if ttl <= 0 {
		rt.cache = nil
		return
	}
	if rt.cache == nil {
		rt.cache = map[string]cachedResult{}
	}
}

// CacheLen reports the live cache entries.
func (rt *Runtime) CacheLen() int { return len(rt.cache) }

// cacheable reports whether a query's result may be reused: one-shot
// queries only (continuous queries stream by definition), and only when
// caching is enabled.
func (rt *Runtime) cacheable(q *query.Query) bool {
	return rt.cacheTTL > 0 && q.Epoch == 0
}

// cachedFor returns a fresh-enough cached result.
func (rt *Runtime) cachedFor(q *query.Query) (*Result, bool) {
	if !rt.cacheable(q) {
		return nil, false
	}
	e, ok := rt.cache[q.String()]
	if !ok || rt.clock-e.at > rt.cacheTTL {
		return nil, false
	}
	out := e.res // copy
	out.Cached = true
	// A cache hit costs nothing on the radio.
	out.EnergyJ, out.TimeSec, out.Messages, out.Bytes = 0, 0, 0, 0
	return &out, true
}

// storeCache records a completed execution.
func (rt *Runtime) storeCache(q *query.Query, res *Result) {
	if !rt.cacheable(q) || res == nil {
		return
	}
	rt.cache[q.String()] = cachedResult{res: *res, at: rt.clock}
}
