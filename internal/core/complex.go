package core

import (
	"fmt"
	"math"

	"pervasivegrid/internal/grid"
	"pervasivegrid/internal/partition"
	"pervasivegrid/internal/pde"
	"pervasivegrid/internal/query"
	"pervasivegrid/internal/sensornet"
)

// ForecastConfig controls forecast(...) queries: the runtime reconstructs
// the current field from sensor readings and integrates the heat equation
// forward to predict the field a horizon into the future (the fire
// fighters' "where will it be hot in five minutes").
type ForecastConfig struct {
	// Alpha is the effective thermal diffusivity in m²/s (default 0.5,
	// an air-with-convection scale for building fires).
	Alpha float64
	// Horizon is the prediction span in seconds (default 300).
	Horizon float64
	// SourceThreshold marks readings this far above ambient as
	// persistent heat sources (pinned during integration; default 100).
	SourceThreshold float64
}

// forecastDefaults fills zero fields.
func (f ForecastConfig) withDefaults() ForecastConfig {
	if f.Alpha <= 0 {
		f.Alpha = 0.5
	}
	if f.Horizon <= 0 {
		f.Horizon = 300
	}
	if f.SourceThreshold <= 0 {
		f.SourceThreshold = 100
	}
	return f
}

// ambient returns the field's baseline temperature.
func (rt *Runtime) ambient() float64 {
	if tf, ok := rt.Net.Sampler.Field.(*sensornet.TemperatureField); ok {
		return tf.Ambient
	}
	return 20
}

// forecastOps estimates the integration work for the decision maker.
func (rt *Runtime) forecastOps(fc ForecastConfig) float64 {
	g := rt.Cfg.PDE
	h := rt.Cfg.Net.Width / float64(g.Nx-1)
	dt := 0.2 * h * h / fc.Alpha
	steps := math.Ceil(fc.Horizon / dt)
	return steps * float64(g.Nx*g.Ny) * 7
}

// executeForecast handles forecast(temp): reconstruct, pin sources, step
// forward, report the predicted field.
func (rt *Runtime) executeForecast(q *query.Query, sel func(*sensornet.Node) bool, at float64) (*Result, error) {
	fc := rt.Cfg.Forecast.withDefaults()
	f := rt.features(q, sel)
	f.ComputeOps = rt.forecastOps(fc)
	dec, err := rt.DM.Choose(q, f)
	if err != nil {
		return nil, err
	}
	col, err := sensornet.DirectStrategy{}.Collect(rt.Net, sensornet.CollectRequest{
		Agg: sensornet.AggMax, Select: sel, Time: at,
	})
	if err != nil {
		return nil, err
	}

	g, err := pde.NewGrid2D(rt.Cfg.PDE.Nx, rt.Cfg.PDE.Ny, rt.Cfg.Net.Width/float64(rt.Cfg.PDE.Nx-1))
	if err != nil {
		return nil, err
	}
	ambient := rt.ambient()
	g.SetBoundary(ambient)
	samples := make([]pde.Sample, 0, len(col.Readings))
	var sources []pde.Sample
	for _, r := range col.Readings {
		n := rt.Net.Node(r.Sensor)
		if n == nil {
			continue
		}
		s := pde.Sample{X: n.Pos.X, Y: n.Pos.Y, Value: r.Value}
		samples = append(samples, s)
		if r.Value > ambient+fc.SourceThreshold {
			sources = append(sources, s)
		}
	}
	// Current state everywhere, then persistent sources pinned.
	pde.FillIDW(g, rt.Cfg.Net.Width, rt.Cfg.Net.Height, samples, 4)
	pde.PinSamples(g, rt.Cfg.Net.Width, rt.Cfg.Net.Height, sources)

	tc := pde.TransientConfig{Alpha: fc.Alpha, Horizon: fc.Horizon}
	var tr pde.TransientResult
	timeSec := col.Latency
	switch dec.Model {
	case partition.ModelGrid:
		placement, err := rt.Cluster.Submit(grid.Job{
			Name:        "forecast",
			Ops:         f.ComputeOps,
			InputBytes:  col.Coverage * sensornet.RawReadingBytes,
			OutputBytes: rt.Cfg.PDE.Nx * rt.Cfg.PDE.Ny * 8,
			Run: func(workers int) (any, error) {
				tc.Workers = workers
				return pde.StepHeat2D(g, tc)
			},
		})
		if err != nil {
			return nil, err
		}
		out, ok := placement.Output.(pde.TransientResult)
		if !ok {
			return nil, fmt.Errorf("core: forecast returned %T", placement.Output)
		}
		tr = out
		timeSec += placement.ResponseTime()
	default:
		tc.Workers = 1
		tr, err = pde.StepHeat2D(g, tc)
		if err != nil {
			return nil, err
		}
		timeSec += tr.Ops / rt.Cfg.Platform.BaseOpsPerSec
	}

	peak := math.Inf(-1)
	for _, v := range g.V {
		if v > peak {
			peak = v
		}
	}
	rt.DM.Observe(f, dec.Model, partition.Measured{EnergyJ: col.EnergyJ, TimeSec: timeSec})
	rt.clock += timeSec
	return &Result{
		Query: q, Kind: q.Kind(), Model: dec.Model, Learned: dec.Learned,
		Value: peak, Field: g,
		Solve:    pde.Result{Iterations: tr.Steps, Converged: true, Ops: tr.Ops},
		Coverage: col.Coverage,
		EnergyJ:  col.EnergyJ, TimeSec: timeSec,
		Messages: col.Messages, Bytes: col.Bytes,
	}, nil
}

// executeSolve3D handles isosurface(temp): the paper's "3D partial
// differential equation" — a steady solve over the building volume with
// sensor readings pinned at their instrument height.
func (rt *Runtime) executeSolve3D(q *query.Query, sel func(*sensornet.Node) bool, at float64) (*Result, error) {
	nz := rt.Cfg.PDE.Nz
	if nz < 3 {
		nz = 9
	}
	f := rt.features(q, sel)
	f.ComputeOps = pde.EstimateJacobiOps(rt.Cfg.PDE.Nx, rt.Cfg.PDE.Ny, rt.Cfg.PDE.Tol) * float64(nz)
	dec, err := rt.DM.Choose(q, f)
	if err != nil {
		return nil, err
	}
	col, err := sensornet.DirectStrategy{}.Collect(rt.Net, sensornet.CollectRequest{
		Agg: sensornet.AggMax, Select: sel, Time: at,
	})
	if err != nil {
		return nil, err
	}

	g3, err := pde.NewGrid3D(rt.Cfg.PDE.Nx, rt.Cfg.PDE.Ny, nz, rt.Cfg.Net.Width/float64(rt.Cfg.PDE.Nx-1))
	if err != nil {
		return nil, err
	}
	ambient := rt.ambient()
	g3.SetBoundary(ambient)
	// Sensors sit at instrument height: the middle z layer.
	zmid := nz / 2
	for _, r := range col.Readings {
		n := rt.Net.Node(r.Sensor)
		if n == nil {
			continue
		}
		x := int(math.Round(n.Pos.X / rt.Cfg.Net.Width * float64(g3.Nx-1)))
		y := int(math.Round(n.Pos.Y / rt.Cfg.Net.Height * float64(g3.Ny-1)))
		x = clampInt(x, 0, g3.Nx-1)
		y = clampInt(y, 0, g3.Ny-1)
		g3.Pin(x, y, zmid, r.Value)
	}

	opt := pde.Options{Tol: rt.Cfg.PDE.Tol}
	var solve pde.Result
	timeSec := col.Latency
	switch dec.Model {
	case partition.ModelGrid:
		placement, err := rt.Cluster.Submit(grid.Job{
			Name:        "pde-solve-3d",
			Ops:         f.ComputeOps,
			InputBytes:  col.Coverage * sensornet.RawReadingBytes,
			OutputBytes: g3.Nx * g3.Ny * g3.Nz * 8,
			Run: func(workers int) (any, error) {
				opt.Workers = workers
				return pde.SolveSOR3D(g3, opt)
			},
		})
		if err != nil {
			return nil, err
		}
		out, ok := placement.Output.(pde.Result)
		if !ok {
			return nil, fmt.Errorf("core: 3d solve returned %T", placement.Output)
		}
		solve = out
		timeSec += placement.ResponseTime()
	default:
		opt.Workers = 1
		solve, err = pde.SolveSOR3D(g3, opt)
		if err != nil {
			return nil, err
		}
		timeSec += solve.Ops / rt.Cfg.Platform.BaseOpsPerSec
	}
	if !solve.Converged {
		return nil, fmt.Errorf("core: 3D solve did not converge (residual %g)", solve.Residual)
	}

	peak := math.Inf(-1)
	for _, v := range g3.V {
		if v > peak {
			peak = v
		}
	}
	rt.DM.Observe(f, dec.Model, partition.Measured{EnergyJ: col.EnergyJ, TimeSec: timeSec})
	rt.clock += timeSec
	return &Result{
		Query: q, Kind: q.Kind(), Model: dec.Model, Learned: dec.Learned,
		Value: peak, Field3D: g3, Solve: solve, Coverage: col.Coverage,
		EnergyJ: col.EnergyJ, TimeSec: timeSec,
		Messages: col.Messages, Bytes: col.Bytes,
	}, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
