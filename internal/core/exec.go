package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pervasivegrid/internal/grid"
	"pervasivegrid/internal/partition"
	"pervasivegrid/internal/pde"
	"pervasivegrid/internal/query"
	"pervasivegrid/internal/sensornet"
)

// RoundResult is one epoch of a continuous query.
type RoundResult struct {
	Time    float64
	Value   float64
	EnergyJ float64
	Latency float64
}

// Result is the outcome of executing one query.
type Result struct {
	Query *query.Query
	Kind  query.Type
	// Model is the solution model the decision maker chose.
	Model partition.Model
	// Learned marks a decision made by the learned selector.
	Learned bool
	// Value is the scalar answer (reading, aggregate, or peak field
	// value for complex queries).
	Value float64
	// Field is the solved temperature distribution for complex queries.
	Field *pde.Grid2D
	// Field3D is the solved volume for isosurface (3-D) queries.
	Field3D *pde.Grid3D
	// Solve reports the PDE solve for complex queries.
	Solve pde.Result
	// Rounds holds per-epoch results for continuous queries.
	Rounds []RoundResult
	// Groups holds per-group aggregates for GROUP BY queries
	// (group label -> value); Value then carries the first group's
	// answer in label order.
	Groups map[string]float64
	// Coverage is the number of sensors that contributed.
	Coverage int
	// EnergyJ and TimeSec are the measured execution costs.
	EnergyJ float64
	TimeSec float64
	// Messages and Bytes are the radio traffic.
	Messages int
	Bytes    int
	// Cached marks a result served from the base station's cache.
	Cached bool
}

// Submit parses and executes a query.
func (rt *Runtime) Submit(src string) (*Result, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return rt.Execute(q)
}

// selector builds the WHERE predicate over static node attributes and the
// node's true local field value (a sensor can evaluate "temp > 50" on its
// own reading before transmitting, as in TAG's predicate push-down).
func (rt *Runtime) selector(q *query.Query, at float64) (func(*sensornet.Node) bool, error) {
	type check func(*sensornet.Node) bool
	var checks []check
	for _, p := range q.Where {
		p := p
		switch strings.ToLower(p.Field) {
		case "sensor":
			id, err := strconv.Atoi(p.Value)
			if err != nil {
				return nil, fmt.Errorf("core: sensor predicate value %q is not an id", p.Value)
			}
			if p.Op != "=" {
				return nil, fmt.Errorf("core: sensor predicate supports '=' only, got %q", p.Op)
			}
			checks = append(checks, func(n *sensornet.Node) bool { return n.ID == sensornet.NodeID(id) })
		case "room":
			switch p.Op {
			case "=":
				checks = append(checks, func(n *sensornet.Node) bool { return n.Room == p.Value })
			case "!=":
				checks = append(checks, func(n *sensornet.Node) bool { return n.Room != p.Value })
			default:
				return nil, fmt.Errorf("core: room predicate supports = and != only, got %q", p.Op)
			}
		case "temp", "value":
			v, err := strconv.ParseFloat(p.Value, 64)
			if err != nil {
				return nil, fmt.Errorf("core: temp predicate value %q is not a number", p.Value)
			}
			field := rt.Net.Sampler.Field
			checks = append(checks, func(n *sensornet.Node) bool {
				local := field.At(n.Pos, at)
				switch p.Op {
				case "=":
					return local == v
				case "!=":
					return local != v
				case "<":
					return local < v
				case "<=":
					return local <= v
				case ">":
					return local > v
				case ">=":
					return local >= v
				}
				return false
			})
		default:
			return nil, fmt.Errorf("core: unknown predicate field %q", p.Field)
		}
	}
	return func(n *sensornet.Node) bool {
		for _, c := range checks {
			if !c(n) {
				return false
			}
		}
		return true
	}, nil
}

// features summarises the query against the current network for the
// decision maker.
func (rt *Runtime) features(q *query.Query, sel func(*sensornet.Node) bool) partition.Features {
	tree := rt.Net.HopTree()
	selected, sumDepth, maxDepth := 0, 0, 0
	for _, s := range rt.Net.Sensors {
		if !s.Alive() || (sel != nil && !sel(s)) {
			continue
		}
		d := sensornet.Depth(tree, s.ID)
		if d < 0 {
			continue
		}
		selected++
		sumDepth += d
		if d > maxDepth {
			maxDepth = d
		}
	}
	f := partition.Features{
		Base:     q.Base(),
		Selected: selected,
		Epoch:    q.Epoch,
	}
	if selected > 0 {
		f.AvgDepth = float64(sumDepth) / float64(selected)
		f.MaxDepth = float64(maxDepth)
	}
	if q.Base() == query.Complex {
		f.ComputeOps = pde.EstimateJacobiOps(rt.Cfg.PDE.Nx, rt.Cfg.PDE.Ny, rt.Cfg.PDE.Tol)
	}
	return f
}

// Execute runs a parsed query end-to-end: install, classify, decide,
// execute, observe.
func (rt *Runtime) Execute(q *query.Query) (*Result, error) {
	if hit, ok := rt.cachedFor(q); ok {
		rt.record(hit)
		return hit, nil
	}
	install := rt.installQuery(q)
	var res *Result
	var err error
	if q.Epoch > 0 {
		res, err = rt.executeContinuous(q)
	} else {
		res, err = rt.executeOnce(q, rt.clock)
	}
	if err != nil {
		return nil, err
	}
	// Fold the installation round into the result's accounting.
	res.Messages += install.Messages
	res.Bytes += install.Bytes
	res.EnergyJ += install.EnergyJ
	res.TimeSec += install.Latency
	rt.storeCache(q, res)
	rt.record(res)
	return res, nil
}

// installQuery pushes the query text into the network — Figure 1's
// "Install Query" arrow. Single-sensor queries route point-to-point;
// everything else floods (TAG-style declarative query push-down). The
// installation happens once per Execute, so continuous queries amortise it
// across epochs.
func (rt *Runtime) installQuery(q *query.Query) sensornet.DisseminationResult {
	payload := len(q.Raw)
	if payload == 0 {
		payload = len(q.String())
	}
	if target := q.TargetSensor(); target >= 0 && q.Base() == query.Simple {
		// Route to the one sensor: the cost mirrors a unicast along the
		// hop tree (link costs are symmetric in the radio model).
		res, err := sensornet.Unicast(rt.Net, sensornet.NodeID(target), payload)
		if err != nil {
			return sensornet.DisseminationResult{}
		}
		rt.clock += res.Latency
		return res
	}
	res := sensornet.Flood(rt.Net, sensornet.BaseStationID, payload)
	rt.clock += res.Latency
	return res
}

func (rt *Runtime) executeOnce(q *query.Query, at float64) (*Result, error) {
	sel, err := rt.selector(q, at)
	if err != nil {
		return nil, err
	}
	switch q.Base() {
	case query.Simple:
		return rt.executeSimple(q, sel, at)
	case query.Aggregate:
		return rt.executeAggregate(q, sel, at)
	case query.Complex:
		return rt.executeComplex(q, sel, at)
	}
	return nil, fmt.Errorf("core: unhandled query type %v", q.Kind())
}

// executeSimple answers a single-sensor probe with a hop-by-hop unicast.
func (rt *Runtime) executeSimple(q *query.Query, sel func(*sensornet.Node) bool, at float64) (*Result, error) {
	target := q.TargetSensor()
	var node *sensornet.Node
	if target >= 0 {
		node = rt.Net.Node(sensornet.NodeID(target))
		if node == nil {
			return nil, fmt.Errorf("core: sensor %d does not exist", target)
		}
	} else {
		// No pinned sensor: pick the first match.
		for _, s := range rt.Net.Sensors {
			if s.Alive() && sel(s) {
				node = s
				break
			}
		}
		if node == nil {
			return nil, fmt.Errorf("core: no sensor matches %s", q)
		}
	}
	if !node.Alive() {
		return nil, fmt.Errorf("core: sensor %d is dead", node.ID)
	}
	reading := rt.Net.Sampler.Sample(node, at)
	res, err := sensornet.Unicast(rt.Net, node.ID, sensornet.RawReadingBytes)
	if err != nil {
		return nil, err
	}
	if res.Reached != 1 {
		return nil, fmt.Errorf("core: reading from sensor %d lost in transit", node.ID)
	}
	rt.clock += res.Latency
	return &Result{
		Query: q, Kind: q.Kind(), Model: partition.ModelDirect,
		Value: reading.Value, Coverage: 1,
		EnergyJ: res.EnergyJ, TimeSec: res.Latency,
		Messages: res.Messages, Bytes: res.Bytes,
	}, nil
}

// strategyFor maps a chosen model to a collection strategy. ModelGrid
// collects raw data like direct (the grid needs the raw readings).
func strategyFor(m partition.Model) sensornet.Strategy {
	switch m {
	case partition.ModelTree:
		return sensornet.TreeStrategy{}
	case partition.ModelCluster:
		return &sensornet.ClusterStrategy{}
	default:
		return sensornet.DirectStrategy{}
	}
}

func (rt *Runtime) executeAggregate(q *query.Query, sel func(*sensornet.Node) bool, at float64) (*Result, error) {
	agg, err := sensornet.ParseAggKind(q.AggFunc())
	if err != nil {
		return nil, err
	}
	f := rt.features(q, sel)
	dec, err := rt.DM.Choose(q, f)
	if err != nil {
		return nil, err
	}
	if q.GroupBy != "" {
		return rt.executeGrouped(q, sel, agg, dec, f, at)
	}
	strat := strategyFor(dec.Model)
	col, err := strat.Collect(rt.Net, sensornet.CollectRequest{Agg: agg, Select: sel, Time: at})
	if err != nil {
		return nil, err
	}
	timeSec := col.Latency
	if dec.Model == partition.ModelGrid {
		// Ship the readings to the grid for the (trivial) aggregation:
		// pays transfer, demonstrating why the decision maker avoids
		// this for aggregates.
		placement, err := rt.Cluster.Submit(grid.Job{
			Name:        "aggregate",
			Ops:         float64(col.Coverage),
			InputBytes:  col.Coverage * sensornet.RawReadingBytes,
			OutputBytes: sensornet.PartialStateBytes,
		})
		if err != nil {
			return nil, err
		}
		timeSec += placement.ResponseTime()
	}
	rt.DM.Observe(f, dec.Model, partition.Measured{EnergyJ: col.EnergyJ, TimeSec: timeSec})
	rt.clock += timeSec
	return &Result{
		Query: q, Kind: q.Kind(), Model: dec.Model, Learned: dec.Learned,
		Value: col.Value, Coverage: col.Coverage,
		EnergyJ: col.EnergyJ, TimeSec: timeSec,
		Messages: col.Messages, Bytes: col.Bytes,
	}, nil
}

// executeComplex answers a temperature-distribution query: collect raw
// readings, build the PDE grid, and solve — at the base station or on the
// wired grid, per the decision maker.
func (rt *Runtime) executeComplex(q *query.Query, sel func(*sensornet.Node) bool, at float64) (*Result, error) {
	switch q.ComplexFunc() {
	case "forecast":
		return rt.executeForecast(q, sel, at)
	case "isosurface":
		return rt.executeSolve3D(q, sel, at)
	}
	f := rt.features(q, sel)
	dec, err := rt.DM.Choose(q, f)
	if err != nil {
		return nil, err
	}
	// Raw data always leaves the network for complex queries.
	col, err := sensornet.DirectStrategy{}.Collect(rt.Net, sensornet.CollectRequest{
		Agg: sensornet.AggMax, Select: sel, Time: at,
	})
	if err != nil {
		return nil, err
	}

	g, err := pde.NewGrid2D(rt.Cfg.PDE.Nx, rt.Cfg.PDE.Ny, rt.Cfg.Net.Width/float64(rt.Cfg.PDE.Nx-1))
	if err != nil {
		return nil, err
	}
	ambient := 20.0
	if tf, ok := rt.Net.Sampler.Field.(*sensornet.TemperatureField); ok {
		ambient = tf.Ambient
	}
	g.SetBoundary(ambient)
	samples := make([]pde.Sample, 0, len(col.Readings))
	for _, r := range col.Readings {
		n := rt.Net.Node(r.Sensor)
		if n == nil {
			continue
		}
		samples = append(samples, pde.Sample{X: n.Pos.X, Y: n.Pos.Y, Value: r.Value})
	}
	pde.PinSamples(g, rt.Cfg.Net.Width, rt.Cfg.Net.Height, samples)

	opt := pde.Options{Tol: rt.Cfg.PDE.Tol}
	var solve pde.Result
	timeSec := col.Latency
	switch dec.Model {
	case partition.ModelGrid:
		placement, err := rt.Cluster.Submit(grid.Job{
			Name:        "pde-solve",
			Ops:         f.ComputeOps,
			InputBytes:  col.Coverage * sensornet.RawReadingBytes,
			OutputBytes: rt.Cfg.PDE.Nx * rt.Cfg.PDE.Ny * 8,
			Run: func(workers int) (any, error) {
				opt.Workers = workers
				return pde.Solve(g, rt.Cfg.PDE.Method, opt)
			},
		})
		if err != nil {
			return nil, err
		}
		out, ok := placement.Output.(pde.Result)
		if !ok {
			return nil, fmt.Errorf("core: grid solve returned %T", placement.Output)
		}
		solve = out
		timeSec += placement.ResponseTime()
	default:
		// Base station solves single-threaded; its modelled rate
		// converts the solver's op count into virtual time.
		opt.Workers = 1
		solve, err = pde.Solve(g, rt.Cfg.PDE.Method, opt)
		if err != nil {
			return nil, err
		}
		timeSec += solve.Ops / rt.Cfg.Platform.BaseOpsPerSec
	}
	if !solve.Converged {
		return nil, fmt.Errorf("core: PDE solve did not converge (residual %g)", solve.Residual)
	}

	peak := math.Inf(-1)
	for _, v := range g.V {
		if v > peak {
			peak = v
		}
	}
	rt.DM.Observe(f, dec.Model, partition.Measured{EnergyJ: col.EnergyJ, TimeSec: timeSec})
	rt.clock += timeSec
	return &Result{
		Query: q, Kind: q.Kind(), Model: dec.Model, Learned: dec.Learned,
		Value: peak, Field: g, Solve: solve, Coverage: col.Coverage,
		EnergyJ: col.EnergyJ, TimeSec: timeSec,
		Messages: col.Messages, Bytes: col.Bytes,
	}, nil
}

// executeContinuous runs the inner query once per epoch for MaxRounds,
// charging idle energy between epochs.
func (rt *Runtime) executeContinuous(q *query.Query) (*Result, error) {
	inner := *q
	inner.Epoch = 0
	total := &Result{Query: q, Kind: query.Continuous}
	for round := 0; round < rt.Cfg.MaxRounds; round++ {
		at := rt.clock
		r, err := rt.executeOnce(&inner, at)
		if err != nil {
			if round > 0 {
				break // degrade: report completed rounds
			}
			return nil, err
		}
		total.Rounds = append(total.Rounds, RoundResult{
			Time: at, Value: r.Value, EnergyJ: r.EnergyJ, Latency: r.TimeSec,
		})
		total.Model = r.Model
		total.Value = r.Value
		total.Groups = r.Groups
		total.Coverage = r.Coverage
		total.EnergyJ += r.EnergyJ
		total.TimeSec += r.TimeSec
		total.Messages += r.Messages
		total.Bytes += r.Bytes
		// Advance to the next epoch boundary and charge idle listening.
		if wait := q.Epoch - r.TimeSec; wait > 0 {
			rt.Net.ChargeIdle(wait)
			rt.clock += wait
		}
	}
	if len(total.Rounds) == 0 {
		return nil, fmt.Errorf("core: continuous query produced no rounds")
	}
	return total, nil
}
