// Package core is the Pervasive Grid runtime — the paper's contribution.
// It ties together the substrates: the sensor-network simulator, the wired
// grid, the query processor, and the adaptive decision maker, and exposes
// the three components the paper names — Query Processor, Decision Maker,
// and Simulator — behind one API. It also wires the multi-agent framework
// (a query agent answering envelopes) and semantic service discovery
// (sensors, solvers, and gateways advertise profiles).
package core

import (
	"fmt"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/grid"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/ontology"
	"pervasivegrid/internal/partition"
	"pervasivegrid/internal/pde"
	"pervasivegrid/internal/sensornet"
)

// Config assembles a pervasive grid deployment.
type Config struct {
	// Net parameterises the sensor network.
	Net sensornet.Config
	// Rows, Cols deploy sensors on a lattice (both > 0); otherwise
	// RandomN sensors are scattered.
	Rows, Cols int
	RandomN    int
	// Field is the physical field being sensed (default: 20°C ambient
	// temperature).
	Field sensornet.Field
	// Noise is the sensor measurement noise stddev.
	Noise float64
	// Platform parameterises the decision maker's cost model; its Net
	// field is overwritten with Net.
	Platform partition.Platform
	// GridResources defines the wired grid; a default two-node cluster
	// is built when empty.
	GridResources []*grid.Resource
	// PDE controls complex-query solves.
	PDE PDEConfig
	// Forecast controls forecast(...) queries.
	Forecast ForecastConfig
	// MaxRounds bounds continuous-query execution per Submit (default 3).
	MaxRounds int
}

// PDEConfig controls the temperature-distribution solver.
type PDEConfig struct {
	// Nx, Ny set the solve resolution (default 33x33).
	Nx, Ny int
	// Nz sets the vertical resolution for 3-D (isosurface) solves
	// (default 9).
	Nz int
	// Method picks the solver (default SOR).
	Method pde.Method
	// Tol is the convergence tolerance (default 1e-6).
	Tol float64
}

// DefaultConfig is a 10x10 building deployment against the default
// platform.
func DefaultConfig() Config {
	return Config{
		Net:      sensornet.DefaultConfig(),
		Rows:     10,
		Cols:     10,
		Platform: partition.DefaultPlatform(),
		PDE:      PDEConfig{Nx: 33, Ny: 33, Method: pde.SOR, Tol: 1e-6},
	}
}

// Runtime is a running pervasive grid.
type Runtime struct {
	Cfg     Config
	Net     *sensornet.Network
	Cluster *grid.Cluster
	DM      *partition.DecisionMaker
	Onto    *ontology.Ontology
	Broker  *discovery.Broker

	// DeputyWrap, when set, decorates the deputy of every agent this
	// runtime registers (query, broker, solver bidders). The pgridd
	// daemon points it at a faultinject.Injector for chaos experiments;
	// tests use it to make the real messaging path lossy.
	DeputyWrap func(agent.Deputy) agent.Deputy

	// HandlerWrap, when set, decorates the handler of every agent this
	// runtime registers — the crash-side twin of DeputyWrap. Chaos tests
	// point it at faultinject.Injector.WrapHandler so the agent itself
	// panics mid-conversation and supervision has something to heal.
	HandlerWrap func(agent.Handler) agent.Handler

	// Metrics receives runtime-level series (core_queries_total,
	// core_conversation_seconds, cache hit/miss counters, energy and
	// message totals). Always non-nil for runtimes built via New.
	Metrics *obs.Registry

	// clock is the runtime's virtual time in seconds, advanced by query
	// execution and continuous epochs.
	clock float64

	// cache holds recent one-shot results when EnableCache is on.
	cache    map[string]cachedResult
	cacheTTL float64

	// stats accumulates execution counters.
	stats Snapshot
}

// Snapshot is the runtime's execution counters, for operators ("the main
// mission control may want to query the data network for evaluating the
// overall performance").
type Snapshot struct {
	// Queries counts completed executions by query kind name.
	Queries map[string]int
	// Models counts executions by chosen solution model name.
	Models map[string]int
	// CacheHits counts results served from the cache.
	CacheHits int
	// EnergyJ and Messages total the radio spend across executions.
	EnergyJ  float64
	Messages int
}

// wrapHandler applies the runtime's HandlerWrap decoration (identity
// when unset); every agent the runtime registers goes through it.
func (rt *Runtime) wrapHandler(h agent.Handler) agent.Handler {
	if rt.HandlerWrap == nil {
		return h
	}
	return rt.HandlerWrap(h)
}

// Stats returns a copy of the execution counters.
func (rt *Runtime) Stats() Snapshot {
	out := rt.stats
	out.Queries = map[string]int{}
	out.Models = map[string]int{}
	for k, v := range rt.stats.Queries {
		out.Queries[k] = v
	}
	for k, v := range rt.stats.Models {
		out.Models[k] = v
	}
	return out
}

// record folds one completed result into the counters.
func (rt *Runtime) record(res *Result) {
	if rt.stats.Queries == nil {
		rt.stats.Queries = map[string]int{}
		rt.stats.Models = map[string]int{}
	}
	rt.stats.Queries[res.Kind.String()]++
	rt.stats.Models[res.Model.String()]++
	if res.Cached {
		rt.stats.CacheHits++
		rt.Metrics.Counter("core_cache_hits_total").Inc()
	} else {
		rt.Metrics.Counter("core_cache_misses_total").Inc()
	}
	rt.stats.EnergyJ += res.EnergyJ
	rt.stats.Messages += res.Messages
	rt.Metrics.Counter("core_queries_total", "kind", res.Kind.String()).Inc()
	rt.Metrics.Counter("core_models_total", "model", res.Model.String()).Inc()
	rt.Metrics.Counter("core_energy_joules_total").Add(res.EnergyJ)
	rt.Metrics.Counter("core_messages_total").Add(float64(res.Messages))
	rt.Metrics.Histogram("core_query_virtual_seconds").Observe(res.TimeSec)
	epochs := len(res.Rounds)
	if epochs == 0 {
		epochs = 1 // a one-shot query is a single epoch
	}
	rt.Metrics.Histogram("sensornet_messages_per_epoch").
		Observe(float64(res.Messages) / float64(epochs))
}

// New assembles a runtime from the config.
func New(cfg Config) (*Runtime, error) {
	if cfg.PDE.Nx < 3 {
		cfg.PDE.Nx = 33
	}
	if cfg.PDE.Ny < 3 {
		cfg.PDE.Ny = 33
	}
	if cfg.PDE.Tol <= 0 {
		cfg.PDE.Tol = 1e-6
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 3
	}

	var nw *sensornet.Network
	switch {
	case cfg.Rows > 0 && cfg.Cols > 0:
		nw = sensornet.NewGridNetwork(cfg.Net, cfg.Rows, cfg.Cols)
	case cfg.RandomN > 0:
		nw = sensornet.NewRandomNetwork(cfg.Net, cfg.RandomN)
	default:
		return nil, fmt.Errorf("core: config needs Rows/Cols or RandomN")
	}
	if cfg.Field == nil {
		cfg.Field = sensornet.NewTemperatureField(20)
	}
	nw.SetField(cfg.Field, cfg.Noise)

	resources := cfg.GridResources
	if len(resources) == 0 {
		ws, err := grid.NewResource("workstation", 2e8, 4, 0.9)
		if err != nil {
			return nil, err
		}
		super, err := grid.NewResource("supercomputer", 5e9, 32, 0.85)
		if err != nil {
			return nil, err
		}
		resources = []*grid.Resource{ws, super}
	}
	link := grid.Link{BandwidthBps: cfg.Platform.GridLinkBps, LatencySec: cfg.Platform.GridLatencySec}
	if link.BandwidthBps <= 0 {
		link = grid.Link{BandwidthBps: 2e6, LatencySec: 0.05}
	}
	cluster, err := grid.NewCluster(link, grid.MinCompletion, resources...)
	if err != nil {
		return nil, err
	}

	cfg.Platform.Net = cfg.Net
	onto := ontology.Pervasive()
	rt := &Runtime{
		Cfg:     cfg,
		Net:     nw,
		Cluster: cluster,
		DM:      partition.NewDecisionMaker(partition.NewEstimator(cfg.Platform)),
		Onto:    onto,
		Broker:  discovery.NewBroker("base-station", discovery.NewSemanticMatcher(onto)),
		Metrics: obs.NewRegistry(),
	}
	rt.Broker.Reg.Metrics = rt.Metrics
	nw.Metrics = rt.Metrics
	return rt, nil
}

// Clock reports the runtime's virtual time.
func (rt *Runtime) Clock() float64 { return rt.clock }

// AssignRooms labels sensors with room names on a rooms-x by rooms-y grid
// ("r<i>" row-major), so WHERE room = '...' predicates select regions.
func (rt *Runtime) AssignRooms(roomsX, roomsY int) {
	if roomsX < 1 || roomsY < 1 {
		return
	}
	for _, s := range rt.Net.Sensors {
		cx := int(s.Pos.X / rt.Cfg.Net.Width * float64(roomsX))
		cy := int(s.Pos.Y / rt.Cfg.Net.Height * float64(roomsY))
		if cx >= roomsX {
			cx = roomsX - 1
		}
		if cy >= roomsY {
			cy = roomsY - 1
		}
		s.Room = fmt.Sprintf("r%d", cy*roomsX+cx)
	}
}
