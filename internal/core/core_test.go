package core

import (
	"math"
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/ontology"
	"pervasivegrid/internal/partition"
	"pervasivegrid/internal/query"
	"pervasivegrid/internal/sensornet"
)

// fireRuntime builds the Figure 1 deployment: a 10x10 building sensor grid
// with a fire burning at the center.
func fireRuntime(t *testing.T) *Runtime {
	t.Helper()
	cfg := DefaultConfig()
	f := sensornet.NewTemperatureField(20)
	// Ignited before the simulation origin so intensity is already ~1 at
	// t=0 (intensity ramps as 1-exp(-GrowthRate*(t-Start))).
	f.Ignite(sensornet.Hotspot{
		Center: sensornet.Position{X: 50, Y: 50},
		Peak:   500, Radius: 15, Start: -1, GrowthRate: 10,
	})
	cfg.Field = f
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AssignRooms(2, 2)
	return rt
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.RandomN = 0, 0, 0
	if _, err := New(cfg); err == nil {
		t.Fatal("config without deployment should fail")
	}
	cfg.RandomN = 20
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Net.Sensors) != 20 {
		t.Fatalf("sensors = %d", len(rt.Net.Sensors))
	}
}

func TestSimpleQuery(t *testing.T) {
	rt := fireRuntime(t)
	res, err := rt.Submit("SELECT temp FROM sensors WHERE sensor = 44")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != query.Simple || res.Coverage != 1 {
		t.Fatalf("result = %+v", res)
	}
	// Sensor 44 is at (45,45), close to the fire: hot.
	if res.Value < 100 {
		t.Fatalf("near-fire reading = %v, want hot", res.Value)
	}
	if res.EnergyJ <= 0 || res.TimeSec <= 0 || res.Messages < 1 {
		t.Fatalf("metrics = %+v", res)
	}
}

func TestSimpleQueryUnknownSensor(t *testing.T) {
	rt := fireRuntime(t)
	if _, err := rt.Submit("SELECT temp FROM sensors WHERE sensor = 999"); err == nil {
		t.Fatal("unknown sensor should fail")
	}
}

func TestAggregateQuery(t *testing.T) {
	rt := fireRuntime(t)
	res, err := rt.Submit("SELECT avg(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != query.Aggregate {
		t.Fatalf("kind = %v", res.Kind)
	}
	if res.Coverage != 100 {
		t.Fatalf("coverage = %d, want 100", res.Coverage)
	}
	// Average must be above ambient (fire) but far below peak.
	if res.Value <= 20 || res.Value >= 500 {
		t.Fatalf("avg = %v", res.Value)
	}
	// Decision maker should pick in-network aggregation.
	if res.Model == partition.ModelGrid {
		t.Fatalf("aggregate went to the grid: %v", res.Model)
	}
}

func TestAggregateWithRoomPredicate(t *testing.T) {
	rt := fireRuntime(t)
	res, err := rt.Submit("SELECT count(temp) FROM sensors WHERE room = 'r0'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 25 {
		t.Fatalf("room r0 coverage = %d, want 25 (quarter of 10x10)", res.Coverage)
	}
	if res.Value != 25 {
		t.Fatalf("count = %v", res.Value)
	}
}

func TestAggregateWithValuePredicate(t *testing.T) {
	rt := fireRuntime(t)
	res, err := rt.Submit("SELECT count(temp) FROM sensors WHERE temp > 100")
	if err != nil {
		t.Fatal(err)
	}
	// Only sensors near the fire read > 100.
	if res.Value <= 0 || res.Value >= 100 {
		t.Fatalf("hot sensors = %v, want a strict subset", res.Value)
	}
}

func TestComplexQuerySolvesField(t *testing.T) {
	rt := fireRuntime(t)
	res, err := rt.Submit("SELECT tempdist(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != query.Complex || res.Field == nil {
		t.Fatalf("result = %+v", res)
	}
	if !res.Solve.Converged {
		t.Fatal("solve did not converge")
	}
	// The reconstructed field must be hot near the fire center and near
	// ambient at the building corner.
	nx, ny := res.Field.Nx, res.Field.Ny
	center := res.Field.At(nx/2, ny/2)
	corner := res.Field.At(1, 1)
	if center < 100 {
		t.Fatalf("field center = %v, want hot", center)
	}
	if corner > center/2 {
		t.Fatalf("corner %v should be much cooler than center %v", corner, center)
	}
	if res.Value < center-1e-9 {
		t.Fatalf("peak %v below center %v", res.Value, center)
	}
	// Complex queries go to the grid or base station.
	if res.Model != partition.ModelGrid && res.Model != partition.ModelDirect {
		t.Fatalf("complex model = %v", res.Model)
	}
}

func TestContinuousQueryRounds(t *testing.T) {
	rt := fireRuntime(t)
	res, err := rt.Submit("SELECT temp FROM sensors WHERE sensor = 44 EPOCH DURATION 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != query.Continuous {
		t.Fatalf("kind = %v", res.Kind)
	}
	if len(res.Rounds) != rt.Cfg.MaxRounds {
		t.Fatalf("rounds = %d, want %d", len(res.Rounds), rt.Cfg.MaxRounds)
	}
	// Epochs advance virtual time.
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].Time <= res.Rounds[i-1].Time {
			t.Fatalf("round times not increasing: %+v", res.Rounds)
		}
	}
	if rt.Clock() < 20 {
		t.Fatalf("clock = %v, want >= 2 epochs", rt.Clock())
	}
}

func TestContinuousAggregate(t *testing.T) {
	rt := fireRuntime(t)
	res, err := rt.Submit("SELECT max(temp) FROM sensors EPOCH 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds")
	}
	if res.Value < 100 {
		t.Fatalf("max temp = %v, want hot", res.Value)
	}
}

func TestCostClauseRejected(t *testing.T) {
	rt := fireRuntime(t)
	// Impossible energy bound.
	if _, err := rt.Submit("SELECT avg(temp) FROM sensors COST energy 0.0000000001"); err == nil {
		t.Fatal("impossible cost limit should fail")
	}
}

func TestDecisionFeedbackAccumulates(t *testing.T) {
	rt := fireRuntime(t)
	before := rt.DM.Observations()
	for i := 0; i < 3; i++ {
		if _, err := rt.Submit("SELECT avg(temp) FROM sensors"); err != nil {
			t.Fatal(err)
		}
	}
	if rt.DM.Observations() <= before {
		t.Fatal("executions should feed the decision maker")
	}
}

func TestBadQueries(t *testing.T) {
	rt := fireRuntime(t)
	for _, src := range []string{
		"SELECT temp FROM sensors WHERE widget = 5",
		"SELECT temp FROM sensors WHERE sensor > 5",
		"SELECT temp FROM sensors WHERE sensor = xyz",
		"SELECT temp FROM sensors WHERE temp = abc",
		"SELECT temp FROM sensors WHERE room < 'r0'",
		"not a query",
	} {
		if _, err := rt.Submit(src); err == nil {
			t.Errorf("Submit(%q) should fail", src)
		}
	}
}

func TestAssignRooms(t *testing.T) {
	rt := fireRuntime(t)
	rooms := map[string]int{}
	for _, s := range rt.Net.Sensors {
		rooms[s.Room]++
	}
	if len(rooms) != 4 {
		t.Fatalf("rooms = %v, want 4 quadrants", rooms)
	}
	for r, n := range rooms {
		if n != 25 {
			t.Fatalf("room %s has %d sensors, want 25", r, n)
		}
	}
	rt.AssignRooms(0, 5) // invalid: no-op
}

func TestAdvertiseAndDiscover(t *testing.T) {
	rt := fireRuntime(t)
	if err := rt.AdvertiseDefaults(); err != nil {
		t.Fatal(err)
	}
	// 100 sensors + 2 solvers + 1 gateway.
	if n := rt.Broker.Reg.Len(); n != 103 {
		t.Fatalf("advertised = %d, want 103", n)
	}
	// Semantic discovery: nearest temperature sensors to a location.
	got := rt.Discover(ontology.Request{
		Concept: "TemperatureSensor",
		X:       50, Y: 50, HasLoc: true,
		Constraints: []ontology.Constraint{{Op: ontology.OpNear, Value: ontology.Num(10)}},
	})
	if len(got) == 0 {
		t.Fatal("no sensors near the center")
	}
	for _, m := range got {
		x, _ := m.Profile.Prop("x")
		y, _ := m.Profile.Prop("y")
		dx, dy := x.N-50, y.N-50
		if math.Sqrt(dx*dx+dy*dy) > 10 {
			t.Fatalf("match %s outside radius", m.Profile.Name)
		}
	}
	// A solver request finds the grid resources.
	solvers := rt.Discover(ontology.Request{Concept: "PDESolver"})
	if len(solvers) < 2 {
		t.Fatalf("solvers = %d, want >= 2", len(solvers))
	}
}

func TestCompositionEngineFromRuntime(t *testing.T) {
	rt := fireRuntime(t)
	if err := rt.AdvertiseDefaults(); err != nil {
		t.Fatal(err)
	}
	e := rt.NewCompositionEngine(nil)
	if e == nil || e.Invoke == nil {
		t.Fatal("engine incomplete")
	}
	// The platform-backed variant must come armed with a real invoker and
	// per-service breakers.
	p := agent.NewPlatform("compose")
	defer p.Close()
	pe := rt.NewCompositionEngine(p)
	if pe.Breakers == nil {
		t.Fatal("platform engine has no breakers")
	}
}

func TestQueryAgentEndToEnd(t *testing.T) {
	rt := fireRuntime(t)
	p := agent.NewPlatform("test")
	defer p.Close()
	if err := rt.RegisterQueryAgent(p); err != nil {
		t.Fatal(err)
	}

	replies := make(chan QueryReply, 1)
	err := p.Register("handheld", agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		var r QueryReply
		if err := env.Decode(&r); err == nil {
			replies <- r
		}
	}), agent.Attributes{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	env, err := agent.NewEnvelope("handheld", QueryAgentID, "request", QueryOntology,
		QueryRequest{Query: "SELECT avg(temp) FROM sensors"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(env); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-replies:
		if !r.OK || r.Kind != "aggregate" || r.Coverage != 100 {
			t.Fatalf("reply = %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply from query agent")
	}

	// Malformed query surfaces as a failure reply, not silence.
	bad, _ := agent.NewEnvelope("handheld", QueryAgentID, "request", QueryOntology,
		QueryRequest{Query: "garbage"})
	if err := p.Send(bad); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-replies:
		if r.OK || r.Error == "" {
			t.Fatalf("bad query reply = %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no failure reply")
	}
}

func TestChooseOnly(t *testing.T) {
	rt := fireRuntime(t)
	dec, f, err := rt.ChooseOnly("SELECT avg(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if f.Selected != 100 || len(dec.Estimates) != 4 {
		t.Fatalf("dec=%+v f=%+v", dec, f)
	}
	if _, _, err := rt.ChooseOnly("bogus"); err == nil {
		t.Fatal("bad query should fail")
	}
}

func TestEnergyDepletionOverContinuousRounds(t *testing.T) {
	rt := fireRuntime(t)
	before := rt.Net.TotalEnergyUsed()
	if _, err := rt.Submit("SELECT avg(temp) FROM sensors EPOCH 30"); err != nil {
		t.Fatal(err)
	}
	after := rt.Net.TotalEnergyUsed()
	if after <= before {
		t.Fatal("continuous rounds should drain energy (radio + idle)")
	}
}

func TestForecastQuery(t *testing.T) {
	rt := fireRuntime(t)
	res, err := rt.Submit("SELECT forecast(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != query.Complex || res.Field == nil {
		t.Fatalf("result = %+v", res)
	}
	// The predicted field stays bounded by the pinned fire sources and
	// ambient, and remains hot near the fire.
	nx, ny := res.Field.Nx, res.Field.Ny
	center := res.Field.At(nx/2, ny/2)
	if center < 100 {
		t.Fatalf("forecast center = %v, want hot", center)
	}
	corner := res.Field.At(1, 1)
	if corner >= center {
		t.Fatal("corner should stay cooler than the fire")
	}
	if res.Solve.Iterations < 1 {
		t.Fatal("no integration steps recorded")
	}
}

func TestForecastDiffusesOutward(t *testing.T) {
	// A longer horizon must spread heat further from the fire.
	shortCfg := DefaultConfig()
	f := sensornet.NewTemperatureField(20)
	f.Ignite(sensornet.Hotspot{Center: sensornet.Position{X: 50, Y: 50},
		Peak: 500, Radius: 10, Start: -1, GrowthRate: 10})
	shortCfg.Field = f
	shortCfg.Forecast = ForecastConfig{Horizon: 30}
	rtShort, err := New(shortCfg)
	if err != nil {
		t.Fatal(err)
	}
	longCfg := shortCfg
	longCfg.Forecast = ForecastConfig{Horizon: 600}
	rtLong, err := New(longCfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rtShort.Submit("SELECT forecast(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	rl, err := rtLong.Submit("SELECT forecast(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	// Probe a point 30 m from the fire center.
	px := rs.Field.Nx * 8 / 10
	py := rs.Field.Ny / 2
	if rl.Field.At(px, py) <= rs.Field.At(px, py) {
		t.Fatalf("600s forecast (%g) should be hotter at distance than 30s (%g)",
			rl.Field.At(px, py), rs.Field.At(px, py))
	}
}

func TestIsosurface3DQuery(t *testing.T) {
	rt := fireRuntime(t)
	res, err := rt.Submit("SELECT isosurface(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if res.Field3D == nil {
		t.Fatal("3D field missing")
	}
	if !res.Solve.Converged {
		t.Fatal("3D solve did not converge")
	}
	g3 := res.Field3D
	zmid := g3.Nz / 2
	center := g3.At(g3.Nx/2, g3.Ny/2, zmid)
	if center < 100 {
		t.Fatalf("3D center at sensor height = %v, want hot", center)
	}
	// Heat decays away from the instrumented layer toward the fixed
	// ceiling/floor.
	above := g3.At(g3.Nx/2, g3.Ny/2, g3.Nz-2)
	if above >= center {
		t.Fatalf("layer near ceiling (%v) should be cooler than sensor layer (%v)", above, center)
	}
	if res.Value < center-1e-9 {
		t.Fatal("peak below center")
	}
}

func TestQueryInstallationAccounted(t *testing.T) {
	// An aggregate query's traffic must include the installation flood:
	// more messages than the bare collection round.
	rtBare := fireRuntime(t)
	sel := func(n *sensornet.Node) bool { return true }
	_ = sel
	colOnly, err := sensornet.TreeStrategy{}.Collect(rtBare.Net, sensornet.CollectRequest{Agg: sensornet.AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	rt := fireRuntime(t)
	res, err := rt.Submit("SELECT avg(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages <= colOnly.Messages {
		t.Fatalf("query messages %d should exceed bare collection %d (installation flood)",
			res.Messages, colOnly.Messages)
	}
}

func TestContinuousAmortisesInstallation(t *testing.T) {
	// Three one-shot queries flood three times; one continuous query with
	// three epochs floods once — so it must cost fewer messages.
	rtOne := fireRuntime(t)
	oneShot := 0
	for i := 0; i < 3; i++ {
		res, err := rtOne.Submit("SELECT avg(temp) FROM sensors")
		if err != nil {
			t.Fatal(err)
		}
		oneShot += res.Messages
	}
	rtCont := fireRuntime(t)
	res, err := rtCont.Submit("SELECT avg(temp) FROM sensors EPOCH 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages >= oneShot {
		t.Fatalf("continuous (%d msgs) should amortise installation vs 3 one-shots (%d)",
			res.Messages, oneShot)
	}
}

func TestResultCacheServesRepeats(t *testing.T) {
	rt := fireRuntime(t)
	rt.EnableCache(60)
	first, err := rt.Submit("SELECT avg(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first execution cannot be a cache hit")
	}
	energyAfterFirst := rt.Net.TotalEnergyUsed()
	second, err := rt.Submit("SELECT avg(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat within TTL should hit the cache")
	}
	if second.Value != first.Value {
		t.Fatal("cached value differs")
	}
	if second.EnergyJ != 0 || second.Messages != 0 {
		t.Fatal("cache hit should cost nothing")
	}
	if rt.Net.TotalEnergyUsed() != energyAfterFirst {
		t.Fatal("cache hit drained sensor energy")
	}
	if rt.CacheLen() != 1 {
		t.Fatalf("cache entries = %d", rt.CacheLen())
	}
}

func TestResultCacheExpires(t *testing.T) {
	rt := fireRuntime(t)
	rt.EnableCache(5)
	if _, err := rt.Submit("SELECT max(temp) FROM sensors"); err != nil {
		t.Fatal(err)
	}
	// Burn virtual time past the TTL with an expensive query.
	if _, err := rt.Submit("SELECT temp FROM sensors WHERE sensor = 0 EPOCH 10"); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Submit("SELECT max(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("stale entry should not serve")
	}
}

func TestCacheDisabledAndContinuousBypass(t *testing.T) {
	rt := fireRuntime(t)
	// Disabled by default.
	if _, err := rt.Submit("SELECT avg(temp) FROM sensors"); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Submit("SELECT avg(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("cache should be off by default")
	}
	// Continuous queries never cache.
	rt.EnableCache(1000)
	if _, err := rt.Submit("SELECT avg(temp) FROM sensors EPOCH 10"); err != nil {
		t.Fatal(err)
	}
	r2, err := rt.Submit("SELECT avg(temp) FROM sensors EPOCH 10")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Fatal("continuous query was cached")
	}
	// EnableCache(0) clears.
	rt.EnableCache(0)
	if rt.CacheLen() != 0 {
		t.Fatal("disable should clear the cache")
	}
}

func TestSolverNegotiation(t *testing.T) {
	rt := fireRuntime(t)
	p := agent.NewPlatform("test")
	defer p.Close()
	if err := rt.RegisterSolverAgents(p); err != nil {
		t.Fatal(err)
	}
	// Both resources bid; the supercomputer's completion time wins.
	placement, winner, err := rt.NegotiateSolve(p, 1e10, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if winner != "supercomputer" {
		t.Fatalf("winner = %s, want supercomputer", winner)
	}
	if placement.Resource.Name != "supercomputer" {
		t.Fatalf("placed on %s", placement.Resource.Name)
	}
	// Saturate the supercomputer: the workstation's bid now wins for a
	// small job.
	for i := 0; i < 3; i++ {
		if _, _, err := rt.NegotiateSolve(p, 1e13, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	_, winner, err = rt.NegotiateSolve(p, 1e8, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if winner != "workstation" {
		t.Fatalf("queued-supercomputer negotiation picked %s, want workstation", winner)
	}
}

func TestNegotiateSolveRefusalOnBadOps(t *testing.T) {
	rt := fireRuntime(t)
	p := agent.NewPlatform("test")
	defer p.Close()
	if err := rt.RegisterSolverAgents(p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.NegotiateSolve(p, -5, time.Second); err == nil {
		t.Fatal("all-refusal negotiation should fail")
	}
}

func TestMonitorAnomaliesDetectsIgnition(t *testing.T) {
	// Quiet building; a fire ignites at t=150 near sensor 44. The
	// monitor must stay silent before ignition and alert after.
	cfg := DefaultConfig()
	cfg.Noise = 0.5
	f := sensornet.NewTemperatureField(20)
	f.Ignite(sensornet.Hotspot{
		Center: sensornet.Position{X: 45, Y: 45},
		Peak:   400, Radius: 15, Start: 150, GrowthRate: 0.5,
	})
	cfg.Field = f
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.MonitorAnomalies(MonitorConfig{Sensor: 44, Epoch: 10, Rounds: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alerts) == 0 {
		t.Fatal("ignition never flagged")
	}
	first := res.Alerts[0]
	if first.Time < 150 {
		t.Fatalf("alert at t=%v predates the ignition at t=150", first.Time)
	}
	if first.Time > 300 {
		t.Fatalf("alert at t=%v is far too late", first.Time)
	}
	if res.EnergyJ <= 0 || res.Rounds != 40 {
		t.Fatalf("result = %+v", res)
	}
}

func TestMonitorAnomaliesQuietStreamSilent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Noise = 0.5
	rt, err := New(cfg) // ambient-only field
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.MonitorAnomalies(MonitorConfig{Sensor: 10, Epoch: 5, Rounds: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alerts) > 1 {
		t.Fatalf("quiet stream raised %d alerts", len(res.Alerts))
	}
}

func TestMonitorAnomaliesValidation(t *testing.T) {
	rt := fireRuntime(t)
	if _, err := rt.MonitorAnomalies(MonitorConfig{Sensor: 9999}); err == nil {
		t.Fatal("unknown sensor should fail")
	}
	// A dead sensor stops the run; with zero completed rounds it errors.
	rt.Net.Node(7).Energy = 0
	if _, err := rt.MonitorAnomalies(MonitorConfig{Sensor: 7, Rounds: 5}); err == nil {
		t.Fatal("dead sensor should fail")
	}
}

func TestGroupByRoom(t *testing.T) {
	rt := fireRuntime(t)
	res, err := rt.Submit("SELECT count(temp) FROM sensors GROUP BY room")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 4 {
		t.Fatalf("groups = %v, want 4 rooms", res.Groups)
	}
	for room, v := range res.Groups {
		if v != 25 {
			t.Fatalf("room %s count = %v, want 25", room, v)
		}
	}
	if res.Coverage != 100 {
		t.Fatalf("total coverage = %d", res.Coverage)
	}
	// The fire is at the center: every quadrant's max should be above
	// ambient but differ per room is not guaranteed; check avg instead.
	res2, err := rt.Submit("SELECT avg(temp) FROM sensors GROUP BY room")
	if err != nil {
		t.Fatal(err)
	}
	for room, v := range res2.Groups {
		if v <= 20 || v >= 500 {
			t.Fatalf("room %s avg = %v", room, v)
		}
	}
}

func TestGroupByWithPredicate(t *testing.T) {
	rt := fireRuntime(t)
	res, err := rt.Submit("SELECT count(temp) FROM sensors WHERE temp > 100 GROUP BY room")
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range res.Groups {
		total += v
	}
	flat, err := rt.Submit("SELECT count(temp) FROM sensors WHERE temp > 100")
	if err != nil {
		t.Fatal(err)
	}
	if total != flat.Value {
		t.Fatalf("grouped total %v != flat count %v", total, flat.Value)
	}
}

func TestGroupByUnsupportedField(t *testing.T) {
	rt := fireRuntime(t)
	if _, err := rt.Submit("SELECT avg(temp) FROM sensors GROUP BY color"); err == nil {
		t.Fatal("GROUP BY color should fail")
	}
}

func TestGroupByContinuous(t *testing.T) {
	rt := fireRuntime(t)
	res, err := rt.Submit("SELECT max(temp) FROM sensors GROUP BY room EPOCH 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds")
	}
	if len(res.Groups) != 4 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
}

func TestRuntimeStats(t *testing.T) {
	rt := fireRuntime(t)
	rt.EnableCache(600)
	for _, src := range []string{
		"SELECT temp FROM sensors WHERE sensor = 44",
		"SELECT avg(temp) FROM sensors",
		"SELECT avg(temp) FROM sensors", // cache hit
		"SELECT tempdist(temp) FROM sensors",
	} {
		if _, err := rt.Submit(src); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.Stats()
	if st.Queries["simple"] != 1 || st.Queries["aggregate"] != 2 || st.Queries["complex"] != 1 {
		t.Fatalf("queries = %v", st.Queries)
	}
	if st.CacheHits != 1 {
		t.Fatalf("cache hits = %d", st.CacheHits)
	}
	if st.EnergyJ <= 0 || st.Messages == 0 {
		t.Fatalf("totals = %+v", st)
	}
	// The copy must not alias internal state.
	st.Queries["simple"] = 99
	if rt.Stats().Queries["simple"] != 1 {
		t.Fatal("Stats leaked internal map")
	}
}

func TestGroupedCacheInterplay(t *testing.T) {
	rt := fireRuntime(t)
	rt.EnableCache(600)
	first, err := rt.Submit("SELECT count(temp) FROM sensors GROUP BY room")
	if err != nil {
		t.Fatal(err)
	}
	second, err := rt.Submit("SELECT count(temp) FROM sensors GROUP BY room")
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("grouped repeat should hit the cache")
	}
	if len(second.Groups) != len(first.Groups) {
		t.Fatal("cached groups lost")
	}
}
