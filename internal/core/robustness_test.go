package core

import (
	"testing"

	"pervasivegrid/internal/sensornet"
)

// Robustness integration tests: the paper's runtime must "handle the
// transport level problems caused by low bandwidth, high latency, frequent
// disconnections and network topology changes".

func TestQuerySurvivesLossyLinks(t *testing.T) {
	rt := fireRuntime(t)
	rt.Net.SetLossProb(0.1)
	res, err := rt.Submit("SELECT avg(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage == 0 {
		t.Fatal("no coverage under 10% loss")
	}
	if res.Coverage >= 100 {
		t.Fatal("lossy network should lose some contributions")
	}
	// The answer over the surviving sensors is still in a sane range.
	if res.Value < 20 || res.Value > 500 {
		t.Fatalf("avg = %v", res.Value)
	}
	if rt.Net.Stats().Lost == 0 {
		t.Fatal("loss counter never moved")
	}
}

func TestQueryAfterTopologyChange(t *testing.T) {
	rt := fireRuntime(t)
	// First answer with the original topology.
	before, err := rt.Submit("SELECT count(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if before.Value != 100 {
		t.Fatalf("initial count = %v", before.Value)
	}
	// A hallway collapses: the row of sensors next to the base station
	// dies, and one mobile sensor is carried out of the building.
	for id := sensornet.NodeID(0); id < 5; id++ {
		rt.Net.Node(id).Energy = 0
	}
	rt.Net.MoveNode(99, sensornet.Position{X: 400, Y: 400})
	after, err := rt.Submit("SELECT count(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	// The routing tree rebuilds around the dead row; coverage drops but
	// the query still completes.
	if after.Value >= before.Value {
		t.Fatalf("count after failures = %v, want < %v", after.Value, before.Value)
	}
	if after.Value < 50 {
		t.Fatalf("count = %v: too much coverage lost for 6 missing sensors", after.Value)
	}
}

func TestContinuousQueryDegradesAsNodesDie(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Net.InitialEnergy = 0.003 // tiny batteries: deaths mid-stream
	cfg.MaxRounds = 30
	f := sensornet.NewTemperatureField(20)
	cfg.Field = f
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Submit("SELECT count(temp) FROM sensors EPOCH 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) < 2 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	first := res.Rounds[0].Value
	last := res.Rounds[len(res.Rounds)-1].Value
	if last >= first {
		t.Fatalf("coverage should decay as batteries die: first=%v last=%v (alive=%d)",
			first, last, rt.Net.AliveCount())
	}
}

func TestBaseStationRelocation(t *testing.T) {
	rt := fireRuntime(t)
	before, err := rt.Submit("SELECT temp FROM sensors WHERE sensor = 99")
	if err != nil {
		t.Fatal(err)
	}
	// The command vehicle drives to the far corner: sensor 99 is now a
	// one-hop neighbor and the probe gets cheaper.
	rt.Net.MoveBase(sensornet.Position{X: 95, Y: 95})
	after, err := rt.Submit("SELECT temp FROM sensors WHERE sensor = 99")
	if err != nil {
		t.Fatal(err)
	}
	if after.Messages >= before.Messages {
		t.Fatalf("probe after relocation uses %d msgs, before %d", after.Messages, before.Messages)
	}
}

func TestImpossibleQueryAfterPartition(t *testing.T) {
	rt := fireRuntime(t)
	// Kill everything: queries must fail cleanly, not hang or panic.
	for _, s := range rt.Net.Sensors {
		s.Energy = 0
	}
	if _, err := rt.Submit("SELECT avg(temp) FROM sensors"); err == nil {
		t.Fatal("query over a dead network should fail")
	}
	if _, err := rt.Submit("SELECT temp FROM sensors WHERE sensor = 5"); err == nil {
		t.Fatal("probe of a dead sensor should fail")
	}
}
