package core

import (
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/composition"
	"pervasivegrid/internal/faultinject"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/ontology"
	"pervasivegrid/internal/supervise"
)

// Chaos test for adaptive re-composition over the real messaging path: a
// two-step composition (ingest -> mine) runs against provider agents
// hosted behind a real TCP gateway. The moment the first step completes,
// the service bound to the remaining step starts crash-looping — a
// mid-plan death. The conversation must finish on the substitute provider
// without redoing the completed step, the victim's breaker must open, and
// the adaptive executor must see the degradation signal.
func TestChaosAdaptiveCompositionSurvivesProviderCrash(t *testing.T) {
	rt := fireRuntime(t)
	reg := func(name, concept string) {
		p := &ontology.Profile{Name: name, Concept: concept}
		if _, err := rt.Broker.Reg.Register(p, DefaultLeaseTTL); err != nil {
			t.Fatal(err)
		}
	}

	// The base station hosts the providers; its supervision backoff runs
	// on a fake clock so the victim's crash-loop restarts are instant.
	fc := obs.NewFakeClock()
	defer fc.AutoAdvance()()
	server := agent.NewPlatform("base-station")
	server.Clock = fc
	defer server.Close()

	// mine-a registers first with its handler behind the injector: the
	// one provider the chaos will kill. Ties rank by name, so it is the
	// top candidate for the mine step.
	injMine := faultinject.New(faultinject.Config{Seed: 11})
	reg("mine-a", "MineService")
	rt.HandlerWrap = injMine.WrapHandler
	if n, err := rt.RegisterProviderAgents(server); err != nil || n != 1 {
		t.Fatalf("victim registration: n=%d err=%v", n, err)
	}
	rt.HandlerWrap = nil
	reg("ingest-a", "IngestService")
	reg("mine-b", "MineService")
	if n, err := rt.RegisterProviderAgents(server); err != nil || n != 2 {
		t.Fatalf("substitute registration: n=%d err=%v", n, err)
	}

	gw, err := agent.ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	client := agent.NewPlatform("handheld")
	defer client.Close()
	link := agent.DialReconnect(client, gw.Addr(), agent.ReconnectOptions{
		MaxBuffer: 16,
		BaseDelay: 5 * time.Millisecond,
	})
	defer link.Close()
	chaosWaitFor(t, "initial connect", link.Connected)

	lib := composition.NewLibrary()
	for _, task := range []*composition.Task{
		{Name: "report", Subtasks: []string{"ingest", "mine"}},
		{Name: "ingest", Concept: "IngestService",
			Inputs: []string{"Raw"}, Outputs: []string{"IngestedData"}},
		{Name: "mine", Concept: "MineService",
			Inputs: []string{"IngestedData"}, Outputs: []string{"Result"}},
	} {
		if err := lib.Define(task); err != nil {
			t.Fatal(err)
		}
	}

	eng := rt.NewCompositionEngine(client)
	// One failure opens the victim's breaker, and a tight conversation
	// budget keeps the dead provider's step failure fast.
	eng.Breakers = supervise.NewBreakerSet(supervise.BreakerPolicy{
		FailureThreshold: 1, OpenFor: time.Minute,
	})
	eng.Breakers.AttachMetrics(rt.Metrics)
	policy := agent.RetryPolicy{
		MaxAttempts:    3,
		BaseDelay:      10 * time.Millisecond,
		MaxDelay:       50 * time.Millisecond,
		Jitter:         0.2,
		AttemptTimeout: 250 * time.Millisecond,
		Seed:           17,
	}
	inner := PlatformInvoker(client, 3*time.Second, policy)
	eng.Invoke = func(p *ontology.Profile, s composition.Step) error {
		err := inner(p, s)
		if err == nil && s.Task.Name == "ingest" {
			// Mid-plan kill: step 1 is done, and the service bound to
			// the remaining step dies before it is invoked.
			injMine.CrashFor(time.Minute)
		}
		return err
	}

	a := &composition.Adaptive{Engine: eng, Library: lib, Goal: "report", Initial: []string{"Raw"}}
	a.Start()
	a.WatchBreakers(eng.Breakers)
	defer func() {
		done := make(chan struct{})
		go func() { a.Stop(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("adaptive Stop hung")
		}
	}()

	exec := a.Run()
	if !exec.Succeeded {
		t.Fatalf("conversation abandoned: %+v", exec.Err)
	}
	if len(exec.Steps) != 2 {
		t.Fatalf("steps = %d, want 2: %+v", len(exec.Steps), exec.Steps)
	}
	if got := exec.Steps[0].Service; got != "ingest-a" {
		t.Fatalf("ingest bound to %q", got)
	}
	mine := exec.Steps[1]
	if mine.Service != "mine-b" {
		t.Fatalf("mine finished on %q, want substitute mine-b (rebinds=%d)", mine.Service, mine.Rebinds)
	}
	if mine.Rebinds < 1 {
		t.Fatalf("mine step shows no rebind off the crashed provider: %+v", mine)
	}

	// The kill really happened on the wire, and the breaker opened on it.
	if got := injMine.Stats().Panicked; got < 1 {
		t.Fatalf("injector panics = %d, want >= 1", got)
	}
	if st := eng.Breakers.State("mine-a"); st != supervise.BreakerOpen {
		t.Fatalf("mine-a breaker = %v, want open", st)
	}

	// Zero redone work: each completed step invoked its provider exactly
	// once, and the crashed provider never acknowledged anything.
	invocations := func(svc string) float64 {
		return rt.Metrics.Counter("core_provider_invocations_total", "service", svc).Value()
	}
	if n := invocations("ingest-a"); n != 1 {
		t.Fatalf("ingest-a acknowledged %v invocations, want exactly 1", n)
	}
	if n := invocations("mine-b"); n != 1 {
		t.Fatalf("mine-b acknowledged %v invocations, want exactly 1", n)
	}
	if n := invocations("mine-a"); n != 0 {
		t.Fatalf("crashed mine-a acknowledged %v invocations", n)
	}

	// The adaptive watch saw the breaker transition as a signal.
	chaosWaitFor(t, "breaker-open signal", func() bool {
		return rt.Metrics.Counter("composition_signals_total", "kind", "breaker-open").Value() >= 1
	})
}
