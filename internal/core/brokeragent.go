package core

import (
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/ontology"
)

// Broker-agent wire types: Ronin "has the notion of service discovery
// (agent discovery) built into the architecture" — this agent exposes the
// runtime's semantic broker to any agent on the platform (or across a TCP
// link).

// AdvertiseRequest registers a service profile under a lease.
type AdvertiseRequest struct {
	Profile    ontology.Profile `json:"profile"`
	TTLSeconds float64          `json:"ttlSeconds"`
}

// AdvertiseReply acknowledges a registration.
type AdvertiseReply struct {
	OK      bool    `json:"ok"`
	Error   string  `json:"error,omitempty"`
	LeaseID uint64  `json:"leaseId,omitempty"`
	Expires float64 `json:"expiresUnix,omitempty"`
}

// DiscoverRequest runs a semantic lookup.
type DiscoverRequest struct {
	Request ontology.Request `json:"request"`
	// Max bounds the returned matches (0 = all).
	Max int `json:"max,omitempty"`
}

// DiscoveredService is one match on the wire.
type DiscoveredService struct {
	Profile ontology.Profile `json:"profile"`
	Score   float64          `json:"score"`
}

// DiscoverReply carries the ranked matches.
type DiscoverReply struct {
	OK      bool                `json:"ok"`
	Error   string              `json:"error,omitempty"`
	Matches []DiscoveredService `json:"matches"`
}

// DeregisterRequest withdraws an advertisement by name.
type DeregisterRequest struct {
	Name string `json:"name"`
}

// DiscoveryOntology is the envelope ontology for broker traffic.
const DiscoveryOntology = "pgrid-discovery-v1"

// BrokerAgentID is the conventional ID of a runtime's broker agent.
const BrokerAgentID agent.ID = "broker-agent"

// RegisterBrokerAgent hosts a discovery broker agent for this runtime.
// Performatives: "advertise" (AdvertiseRequest → AdvertiseReply),
// "discover" (DiscoverRequest → DiscoverReply), "deregister"
// (DeregisterRequest → AdvertiseReply).
func (rt *Runtime) RegisterBrokerAgent(p *agent.Platform) error {
	attrs := agent.Attributes{
		Agent: map[string]string{agent.AttrRole: agent.RoleBroker},
	}
	return p.Register(BrokerAgentID, rt.wrapHandler(agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		var reply any
		performative := "inform"
		switch env.Performative {
		case "advertise":
			var req AdvertiseRequest
			if err := env.Decode(&req); err != nil {
				reply, performative = AdvertiseReply{Error: err.Error()}, "failure"
				break
			}
			prof := req.Profile // own copy; the registry keeps the pointer
			if err := prof.Validate(rt.Onto); err != nil {
				reply, performative = AdvertiseReply{Error: err.Error()}, "failure"
				break
			}
			ttl := time.Duration(req.TTLSeconds * float64(time.Second))
			lease, err := rt.Broker.Reg.Register(&prof, ttl)
			if err != nil {
				reply, performative = AdvertiseReply{Error: err.Error()}, "failure"
				break
			}
			reply = AdvertiseReply{OK: true, LeaseID: lease.ID, Expires: float64(lease.Expires.Unix())}
		case "discover":
			var req DiscoverRequest
			if err := env.Decode(&req); err != nil {
				reply, performative = DiscoverReply{Error: err.Error()}, "failure"
				break
			}
			matches := rt.Broker.Lookup(req.Request, req.Max)
			if req.Max > 0 && len(matches) > req.Max {
				matches = matches[:req.Max]
			}
			out := DiscoverReply{OK: true}
			for _, m := range matches {
				out.Matches = append(out.Matches, DiscoveredService{Profile: *m.Profile, Score: m.Score})
			}
			reply = out
		case "deregister":
			var req DeregisterRequest
			if err := env.Decode(&req); err != nil {
				reply, performative = AdvertiseReply{Error: err.Error()}, "failure"
				break
			}
			rt.Broker.Reg.Deregister(req.Name)
			reply = AdvertiseReply{OK: true}
		default:
			reply, performative = AdvertiseReply{Error: "unknown performative " + env.Performative}, "failure"
		}
		out, err := env.Reply(performative, reply)
		if err != nil {
			return
		}
		out.From = ctx.Self
		_ = agent.SendRetry(ctx.Platform, out, 2*time.Second, replyPolicy)
	})), attrs, rt.DeputyWrap)
}

// Discover asks a platform's broker agent for service matches through the
// retry layer. Discovery is a pure lookup, so replayed requests are
// harmless.
func Discover(p *agent.Platform, req ontology.Request, max int, timeout time.Duration, policy agent.RetryPolicy) (DiscoverReply, error) {
	env, err := agent.CallRetry(p, BrokerAgentID, "discover", DiscoveryOntology,
		DiscoverRequest{Request: req, Max: max}, timeout, policy)
	if err != nil {
		return DiscoverReply{}, err
	}
	var reply DiscoverReply
	if err := env.Decode(&reply); err != nil {
		return DiscoverReply{}, err
	}
	return reply, nil
}

// Advertise registers a service profile with a platform's broker agent
// through the retry layer. Re-registration under the same name renews the
// lease, so a duplicated request is idempotent.
func Advertise(p *agent.Platform, profile ontology.Profile, ttl time.Duration, timeout time.Duration, policy agent.RetryPolicy) (AdvertiseReply, error) {
	env, err := agent.CallRetry(p, BrokerAgentID, "advertise", DiscoveryOntology,
		AdvertiseRequest{Profile: profile, TTLSeconds: ttl.Seconds()}, timeout, policy)
	if err != nil {
		return AdvertiseReply{}, err
	}
	var reply AdvertiseReply
	if err := env.Decode(&reply); err != nil {
		return AdvertiseReply{}, err
	}
	return reply, nil
}
