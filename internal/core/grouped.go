package core

import (
	"fmt"
	"sort"

	"pervasivegrid/internal/partition"
	"pervasivegrid/internal/query"
	"pervasivegrid/internal/sensornet"
)

// GROUP BY execution: TAG's grouped aggregation, which the paper's query
// format inherits. Groups partition the selected sensors by a static
// attribute (currently "room"); each group is aggregated with the chosen
// solution model's strategy and the base station assembles the table.

// executeGrouped answers "SELECT agg(temp) FROM sensors ... GROUP BY room".
func (rt *Runtime) executeGrouped(q *query.Query, sel func(*sensornet.Node) bool, agg sensornet.AggKind,
	dec partition.Decision, f partition.Features, at float64) (*Result, error) {
	if q.GroupBy != "room" {
		return nil, fmt.Errorf("core: GROUP BY %s not supported (only room)", q.GroupBy)
	}
	// Enumerate the groups among selected alive sensors.
	groups := map[string]bool{}
	for _, s := range rt.Net.Sensors {
		if s.Alive() && (sel == nil || sel(s)) {
			groups[s.Room] = true
		}
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: no sensors match %s", q)
	}
	labels := make([]string, 0, len(groups))
	for g := range groups {
		labels = append(labels, g)
	}
	sort.Strings(labels)

	total := &Result{
		Query: q, Kind: q.Kind(), Model: dec.Model, Learned: dec.Learned,
		Groups: map[string]float64{},
	}
	strat := strategyFor(dec.Model)
	for _, label := range labels {
		label := label
		groupSel := func(n *sensornet.Node) bool {
			return n.Room == label && (sel == nil || sel(n))
		}
		col, err := strat.Collect(rt.Net, sensornet.CollectRequest{Agg: agg, Select: groupSel, Time: at})
		if err != nil {
			// A group whose sensors are unreachable degrades to absence
			// rather than failing the whole table.
			continue
		}
		total.Groups[label] = col.Value
		total.Coverage += col.Coverage
		total.EnergyJ += col.EnergyJ
		total.Messages += col.Messages
		total.Bytes += col.Bytes
		if col.Latency > total.TimeSec {
			total.TimeSec = col.Latency // groups collect concurrently per epoch
		}
	}
	if len(total.Groups) == 0 {
		return nil, fmt.Errorf("core: every group unreachable for %s", q)
	}
	total.Value = total.Groups[labels[0]]
	rt.DM.Observe(f, dec.Model, partition.Measured{EnergyJ: total.EnergyJ, TimeSec: total.TimeSec})
	rt.clock += total.TimeSec
	return total, nil
}
