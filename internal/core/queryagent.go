package core

import (
	"fmt"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/partition"
	"pervasivegrid/internal/query"
)

// Query-agent wire types: the JSON bodies carried inside envelopes between
// handhelds and the base station's query agent.

// QueryRequest asks the query agent to run a query.
type QueryRequest struct {
	Query string `json:"query"`
}

// QueryReply carries the scalar result of a query (fields omitted when not
// applicable).
type QueryReply struct {
	OK       bool    `json:"ok"`
	Error    string  `json:"error,omitempty"`
	Kind     string  `json:"kind,omitempty"`
	Model    string  `json:"model,omitempty"`
	Value    float64 `json:"value,omitempty"`
	Coverage int     `json:"coverage,omitempty"`
	EnergyJ  float64 `json:"energyJ,omitempty"`
	TimeSec  float64 `json:"timeSec,omitempty"`
	Rounds   int     `json:"rounds,omitempty"`
	// Groups carries per-group values for GROUP BY queries.
	Groups map[string]float64 `json:"groups,omitempty"`
	// Cached marks a result served from the base station's cache.
	Cached bool `json:"cached,omitempty"`
}

// QueryOntology is the envelope ontology identifier for query traffic.
const QueryOntology = "pgrid-query-v1"

// QueryAgentID is the conventional agent ID of a runtime's query agent.
const QueryAgentID agent.ID = "query-agent"

// replyFor converts an execution outcome into the wire shape.
func replyFor(res *Result, err error) QueryReply {
	if err != nil {
		return QueryReply{OK: false, Error: err.Error()}
	}
	return QueryReply{
		OK:       true,
		Kind:     res.Kind.String(),
		Model:    res.Model.String(),
		Value:    res.Value,
		Coverage: res.Coverage,
		EnergyJ:  res.EnergyJ,
		TimeSec:  res.TimeSec,
		Rounds:   len(res.Rounds),
		Groups:   res.Groups,
		Cached:   res.Cached,
	}
}

// RegisterQueryAgent hosts a query agent for this runtime on the given
// platform under QueryAgentID. Any agent (local or across a TCP link) can
// send a "request" envelope with a QueryRequest body and receives an
// "inform" (or "failure") envelope with a QueryReply.
func (rt *Runtime) RegisterQueryAgent(p *agent.Platform) error {
	attrs := agent.Attributes{
		Agent:  map[string]string{agent.AttrRole: agent.RoleProvider},
		Domain: map[string]string{"service": "sensor-query"},
	}
	clk := p.Clock
	if clk == nil {
		clk = obs.Real
	}
	return p.Register(QueryAgentID, rt.wrapHandler(agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		start := clk.Now()
		var req QueryRequest
		var reply QueryReply
		if err := env.Decode(&req); err != nil {
			reply = QueryReply{OK: false, Error: "bad request: " + err.Error()}
		} else {
			res, err := rt.Submit(req.Query)
			reply = replyFor(res, err)
		}
		performative := "inform"
		if !reply.OK {
			performative = "failure"
		}
		out, err := env.Reply(performative, reply)
		if err != nil {
			return
		}
		out.From = ctx.Self
		// A computed query result is too expensive to lose to a briefly
		// full mailbox or a link mid-reconnect: retry the reply.
		_ = agent.SendRetry(ctx.Platform, out, 2*time.Second, replyPolicy)
		// Conversation duration: request receipt through reply handoff,
		// wall time — the handheld-visible latency contribution of this
		// node (transport latency is on the platform histogram).
		rt.Metrics.Histogram("core_conversation_seconds").
			Observe(clk.Now().Sub(start).Seconds())
	})), attrs, rt.DeputyWrap)
}

// replyPolicy is the short retry used for agent replies: enough to ride
// out a reconnect window, cheap enough not to stall the handler goroutine.
var replyPolicy = agent.RetryPolicy{MaxAttempts: 3, BaseDelay: 20 * time.Millisecond, MaxDelay: 200 * time.Millisecond}

// AskQuery is the handheld side of the conversation: it submits a query
// to a platform's query agent (local, or across a gateway/link) through
// the retry layer, so a lossy or briefly partitioned transport degrades
// into latency instead of failure. Query execution is idempotent, which
// is what makes the re-send safe.
func AskQuery(p *agent.Platform, src string, timeout time.Duration, policy agent.RetryPolicy) (QueryReply, error) {
	reply, _, err := AskQueryTraced(p, src, timeout, policy)
	return reply, err
}

// AskQueryTraced is AskQuery, additionally returning the conversation's
// TraceID (0 when the platform traces nothing). The reply envelope
// carries the request's TraceID across every hop, so the ID names the
// whole causal timeline — load harnesses attach it to latency
// histograms as an exemplar.
func AskQueryTraced(p *agent.Platform, src string, timeout time.Duration, policy agent.RetryPolicy) (QueryReply, uint64, error) {
	env, err := agent.CallRetry(p, QueryAgentID, "request", QueryOntology,
		QueryRequest{Query: src}, timeout, policy)
	if err != nil {
		return QueryReply{}, 0, err
	}
	var reply QueryReply
	if err := env.Decode(&reply); err != nil {
		return QueryReply{}, env.TraceID, fmt.Errorf("core: bad query reply: %w", err)
	}
	return reply, env.TraceID, nil
}

// ChooseOnly runs the decision maker without executing — used by tools
// that want to display the would-be plan.
func (rt *Runtime) ChooseOnly(src string) (partition.Decision, partition.Features, error) {
	q, err := query.Parse(src)
	if err != nil {
		return partition.Decision{}, partition.Features{}, err
	}
	sel, err := rt.selector(q, rt.clock)
	if err != nil {
		return partition.Decision{}, partition.Features{}, err
	}
	f := rt.features(q, sel)
	dec, err := rt.DM.Choose(q, f)
	return dec, f, err
}
