package core

import (
	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/partition"
	"pervasivegrid/internal/query"
)

// Query-agent wire types: the JSON bodies carried inside envelopes between
// handhelds and the base station's query agent.

// QueryRequest asks the query agent to run a query.
type QueryRequest struct {
	Query string `json:"query"`
}

// QueryReply carries the scalar result of a query (fields omitted when not
// applicable).
type QueryReply struct {
	OK       bool    `json:"ok"`
	Error    string  `json:"error,omitempty"`
	Kind     string  `json:"kind,omitempty"`
	Model    string  `json:"model,omitempty"`
	Value    float64 `json:"value,omitempty"`
	Coverage int     `json:"coverage,omitempty"`
	EnergyJ  float64 `json:"energyJ,omitempty"`
	TimeSec  float64 `json:"timeSec,omitempty"`
	Rounds   int     `json:"rounds,omitempty"`
	// Groups carries per-group values for GROUP BY queries.
	Groups map[string]float64 `json:"groups,omitempty"`
	// Cached marks a result served from the base station's cache.
	Cached bool `json:"cached,omitempty"`
}

// QueryOntology is the envelope ontology identifier for query traffic.
const QueryOntology = "pgrid-query-v1"

// QueryAgentID is the conventional agent ID of a runtime's query agent.
const QueryAgentID agent.ID = "query-agent"

// replyFor converts an execution outcome into the wire shape.
func replyFor(res *Result, err error) QueryReply {
	if err != nil {
		return QueryReply{OK: false, Error: err.Error()}
	}
	return QueryReply{
		OK:       true,
		Kind:     res.Kind.String(),
		Model:    res.Model.String(),
		Value:    res.Value,
		Coverage: res.Coverage,
		EnergyJ:  res.EnergyJ,
		TimeSec:  res.TimeSec,
		Rounds:   len(res.Rounds),
		Groups:   res.Groups,
		Cached:   res.Cached,
	}
}

// RegisterQueryAgent hosts a query agent for this runtime on the given
// platform under QueryAgentID. Any agent (local or across a TCP link) can
// send a "request" envelope with a QueryRequest body and receives an
// "inform" (or "failure") envelope with a QueryReply.
func (rt *Runtime) RegisterQueryAgent(p *agent.Platform) error {
	attrs := agent.Attributes{
		Agent:  map[string]string{agent.AttrRole: agent.RoleProvider},
		Domain: map[string]string{"service": "sensor-query"},
	}
	return p.Register(QueryAgentID, agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		var req QueryRequest
		var reply QueryReply
		if err := env.Decode(&req); err != nil {
			reply = QueryReply{OK: false, Error: "bad request: " + err.Error()}
		} else {
			res, err := rt.Submit(req.Query)
			reply = replyFor(res, err)
		}
		performative := "inform"
		if !reply.OK {
			performative = "failure"
		}
		out, err := env.Reply(performative, reply)
		if err != nil {
			return
		}
		_ = ctx.Send(out)
	}), attrs, nil)
}

// ChooseOnly runs the decision maker without executing — used by tools
// that want to display the would-be plan.
func (rt *Runtime) ChooseOnly(src string) (partition.Decision, partition.Features, error) {
	q, err := query.Parse(src)
	if err != nil {
		return partition.Decision{}, partition.Features{}, err
	}
	sel, err := rt.selector(q, rt.clock)
	if err != nil {
		return partition.Decision{}, partition.Features{}, err
	}
	f := rt.features(q, sel)
	dec, err := rt.DM.Choose(q, f)
	return dec, f, err
}
