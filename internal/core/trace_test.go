package core

import (
	"strings"
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/faultinject"
	"pervasivegrid/internal/obs"
)

// Acceptance test for the tracing tentpole: a pgridquery-style
// conversation runs over a real TCP gateway with 10% injected envelope
// drop on the query agent's deputy. Client and server platforms share
// one trace sink (as pgridd and a co-located tool would share a file or
// a scrape endpoint), so the dumped timeline is the full causal hop
// chain: client send -> route over the link -> server ingress -> server
// deliver -> reply send -> route back -> client ingress -> client
// deliver — plus the retry hops where the injector ate an attempt.
func TestTracedConversationUnderDropDumpsEveryHop(t *testing.T) {
	rt := fireRuntime(t)
	inj := faultinject.New(faultinject.Config{Seed: 5, DropProb: 0.10})
	rt.DeputyWrap = inj.WrapDeputy

	tracer := obs.NewTracer(8192)

	server := agent.NewPlatform("base-station")
	server.Tracer = tracer
	defer server.Close()
	if err := rt.RegisterQueryAgent(server); err != nil {
		t.Fatal(err)
	}
	gw, err := agent.ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	client := agent.NewPlatform("handheld")
	client.Tracer = tracer
	defer client.Close()
	link := agent.DialReconnect(client, gw.Addr(), agent.ReconnectOptions{})
	defer link.Close()
	chaosWaitFor(t, "initial connect", link.Connected)

	policy := agent.RetryPolicy{
		MaxAttempts:    8,
		BaseDelay:      10 * time.Millisecond,
		MaxDelay:       80 * time.Millisecond,
		AttemptTimeout: 150 * time.Millisecond,
		Seed:           3,
	}

	// Run conversations until one provably lost an attempt to the
	// injector and still completed — that trace must show the retry.
	var retried uint64
	for i := 0; i < 100 && retried == 0; i++ {
		env, err := agent.CallRetry(client, QueryAgentID, "request", QueryOntology,
			QueryRequest{Query: "SELECT temp FROM sensors WHERE sensor = 44"}, 10*time.Second, policy)
		if err != nil {
			t.Fatalf("conversation %d: %v", i, err)
		}
		if env.TraceID == 0 {
			t.Fatal("reply envelope lost its trace id")
		}
		for _, s := range tracer.Trace(env.TraceID) {
			if s.Kind == obs.SpanRetry {
				retried = env.TraceID
				break
			}
		}
	}
	if retried == 0 {
		t.Fatalf("no conversation retried in 100 runs at 10%% drop; injector: %+v", inj.Stats())
	}

	spans := tracer.Trace(retried)
	kinds := map[string][]string{}
	for _, s := range spans {
		kinds[s.Kind] = append(kinds[s.Kind], s.Node)
	}
	// Every hop of the causal chain must be present.
	for _, want := range []string{obs.SpanSend, obs.SpanRoute, obs.SpanIngress, obs.SpanDeliver, obs.SpanRetry} {
		if len(kinds[want]) == 0 {
			t.Fatalf("trace %x missing %q spans; have %v\n%s", retried, want, kinds, tracer.Timeline(retried))
		}
	}
	// Both sides of the conversation contributed spans.
	nodes := map[string]bool{}
	for _, s := range spans {
		nodes[s.Node] = true
	}
	if !nodes["handheld"] || !nodes["base-station"] {
		t.Fatalf("trace should span both platforms, got %v", nodes)
	}

	tl := tracer.Timeline(retried)
	for _, want := range []string{"send", "route", "ingress", "deliver", "retry", "handheld", "base-station", "query-agent"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline missing %q:\n%s", want, tl)
		}
	}
	t.Logf("dumped timeline:\n%s", tl)
}
