package core

import (
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/ontology"
)

// brokerClient drives the broker agent synchronously for tests.
type brokerClient struct {
	t       *testing.T
	p       *agent.Platform
	id      agent.ID
	replies chan agent.Envelope
}

func newBrokerClient(t *testing.T, p *agent.Platform) *brokerClient {
	t.Helper()
	c := &brokerClient{t: t, p: p, id: "client", replies: make(chan agent.Envelope, 4)}
	err := p.Register(c.id, agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		c.replies <- env
	}), agent.Attributes{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func (c *brokerClient) call(performative string, body any) agent.Envelope {
	c.t.Helper()
	env, err := agent.NewEnvelope(c.id, BrokerAgentID, performative, DiscoveryOntology, body)
	if err != nil {
		c.t.Fatal(err)
	}
	if err := c.p.Send(env); err != nil {
		c.t.Fatal(err)
	}
	select {
	case r := <-c.replies:
		return r
	case <-time.After(5 * time.Second):
		c.t.Fatal("broker agent did not reply")
		return agent.Envelope{}
	}
}

func TestBrokerAgentAdvertiseDiscoverDeregister(t *testing.T) {
	rt := fireRuntime(t)
	p := agent.NewPlatform("test")
	defer p.Close()
	if err := rt.RegisterBrokerAgent(p); err != nil {
		t.Fatal(err)
	}
	c := newBrokerClient(t, p)

	// Advertise a mobile lab service.
	adv := c.call("advertise", AdvertiseRequest{
		Profile: ontology.Profile{
			Name: "mobile-lab-1", Concept: "ToxinSensor",
			Properties: map[string]ontology.Value{"x": ontology.Num(30), "y": ontology.Num(40)},
		},
		TTLSeconds: 3600,
	})
	var advReply AdvertiseReply
	if err := adv.Decode(&advReply); err != nil {
		t.Fatal(err)
	}
	if !advReply.OK || advReply.LeaseID == 0 {
		t.Fatalf("advertise reply = %+v", advReply)
	}

	// Discover it semantically (by parent concept).
	disc := c.call("discover", DiscoverRequest{
		Request: ontology.Request{Concept: "SensorService"},
		Max:     5,
	})
	var discReply DiscoverReply
	if err := disc.Decode(&discReply); err != nil {
		t.Fatal(err)
	}
	if !discReply.OK || len(discReply.Matches) == 0 {
		t.Fatalf("discover reply = %+v", discReply)
	}
	found := false
	for _, m := range discReply.Matches {
		if m.Profile.Name == "mobile-lab-1" {
			found = true
			if m.Score <= 0 {
				t.Fatal("zero score")
			}
		}
	}
	if !found {
		t.Fatal("advertised service not discovered")
	}
	if len(discReply.Matches) > 5 {
		t.Fatal("Max not honoured")
	}

	// Deregister and confirm it is gone.
	c.call("deregister", DeregisterRequest{Name: "mobile-lab-1"})
	disc2 := c.call("discover", DiscoverRequest{Request: ontology.Request{Concept: "ToxinSensor"}})
	var discReply2 DiscoverReply
	if err := disc2.Decode(&discReply2); err != nil {
		t.Fatal(err)
	}
	for _, m := range discReply2.Matches {
		if m.Profile.Name == "mobile-lab-1" {
			t.Fatal("deregistered service still discoverable")
		}
	}
}

func TestBrokerAgentRejectsInvalid(t *testing.T) {
	rt := fireRuntime(t)
	p := agent.NewPlatform("test")
	defer p.Close()
	if err := rt.RegisterBrokerAgent(p); err != nil {
		t.Fatal(err)
	}
	c := newBrokerClient(t, p)

	// Unknown concept fails validation.
	bad := c.call("advertise", AdvertiseRequest{
		Profile:    ontology.Profile{Name: "x", Concept: "NoSuchConcept"},
		TTLSeconds: 60,
	})
	var reply AdvertiseReply
	if err := bad.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.OK || bad.Performative != "failure" {
		t.Fatalf("invalid advertise accepted: %+v", reply)
	}

	// Zero TTL fails.
	noTTL := c.call("advertise", AdvertiseRequest{
		Profile: ontology.Profile{Name: "y", Concept: "Service"},
	})
	if err := noTTL.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.OK {
		t.Fatal("zero ttl accepted")
	}

	// Unknown performative fails.
	weird := c.call("renegotiate", struct{}{})
	if weird.Performative != "failure" {
		t.Fatal("unknown performative should fail")
	}
}

func TestBrokerAgentOverTCP(t *testing.T) {
	rt := fireRuntime(t)
	server := agent.NewPlatform("server")
	defer server.Close()
	if err := rt.RegisterBrokerAgent(server); err != nil {
		t.Fatal(err)
	}
	gw, err := agent.ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	client := agent.NewPlatform("client")
	defer client.Close()
	link, err := agent.Dial(client, gw.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	replies := make(chan agent.Envelope, 1)
	err = client.Register("remote-device", agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		replies <- env
	}), agent.Attributes{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	env, err := agent.NewEnvelope("remote-device", BrokerAgentID, "advertise", DiscoveryOntology,
		AdvertiseRequest{
			Profile:    ontology.Profile{Name: "remote-sensor", Concept: "SmokeSensor"},
			TTLSeconds: 600,
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send(env); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-replies:
		var reply AdvertiseReply
		if err := r.Decode(&reply); err != nil || !reply.OK {
			t.Fatalf("remote advertise reply = %+v err=%v", reply, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply over TCP")
	}
	// The advertisement landed in the runtime's broker.
	if got := rt.Discover(ontology.Request{Concept: "SmokeSensor"}); len(got) == 0 {
		t.Fatal("remote advertisement not visible to runtime discovery")
	}
}
