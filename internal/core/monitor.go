package core

import (
	"fmt"

	"pervasivegrid/internal/query"
	"pervasivegrid/internal/sensornet"
	"pervasivegrid/internal/stream"
)

// Anomaly monitoring: the paper's defense scenario wants "discovery of
// anomalous patterns" and "detection of any anomaly" over live sensor
// streams. MonitorAnomalies runs a continuous probe against one sensor and
// screens each epoch's reading through an EWMA anomaly detector at the
// base station.

// Alert is one flagged reading.
type Alert struct {
	Round int
	Time  float64
	Value float64
	Z     float64
}

// MonitorConfig parameterises a monitoring run.
type MonitorConfig struct {
	// Sensor is the monitored sensor's ID.
	Sensor int
	// Epoch is the probe period in virtual seconds (default 10).
	Epoch float64
	// Rounds is how many epochs to watch (default 20).
	Rounds int
	// Lambda and Threshold configure the detector (defaults 0.2 / 3).
	Lambda, Threshold float64
}

// MonitorResult reports a completed monitoring run.
type MonitorResult struct {
	Alerts  []Alert
	Rounds  int
	EnergyJ float64
}

// MonitorAnomalies probes the sensor every epoch and returns the alerts
// the detector raised. Each probe pays real network cost (a unicast per
// epoch, like a continuous simple query).
func (rt *Runtime) MonitorAnomalies(cfg MonitorConfig) (*MonitorResult, error) {
	if cfg.Epoch <= 0 {
		cfg.Epoch = 10
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 20
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 0.2
	}
	node := rt.Net.Node(sensornet.NodeID(cfg.Sensor))
	if node == nil {
		return nil, fmt.Errorf("core: sensor %d does not exist", cfg.Sensor)
	}
	det, err := stream.NewAnomalyDetector(cfg.Lambda, cfg.Threshold)
	if err != nil {
		return nil, err
	}

	q := &query.Query{
		Raw:    fmt.Sprintf("SELECT temp FROM sensors WHERE sensor = %d", cfg.Sensor),
		Select: []query.SelectItem{{Attr: "temp"}},
		Where:  []query.Predicate{{Field: "sensor", Op: "=", Value: fmt.Sprintf("%d", cfg.Sensor)}},
	}
	res := &MonitorResult{}
	for round := 0; round < cfg.Rounds; round++ {
		sel, err := rt.selector(q, rt.clock)
		if err != nil {
			return nil, err
		}
		r, err := rt.executeSimple(q, sel, rt.clock)
		if err != nil {
			// The sensor died or the route broke: stop monitoring with
			// what we have rather than failing the whole run.
			break
		}
		res.Rounds++
		res.EnergyJ += r.EnergyJ
		if anom, z := det.Observe(r.Value); anom {
			res.Alerts = append(res.Alerts, Alert{
				Round: round, Time: rt.clock, Value: r.Value, Z: z,
			})
		}
		if wait := cfg.Epoch - r.TimeSec; wait > 0 {
			rt.Net.ChargeIdle(wait)
			rt.clock += wait
		}
	}
	if res.Rounds == 0 {
		return nil, fmt.Errorf("core: monitoring of sensor %d produced no rounds", cfg.Sensor)
	}
	return res, nil
}
