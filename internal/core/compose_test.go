package core

import (
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/composition"
	"pervasivegrid/internal/ontology"
)

// TestPlatformCompositionEndToEnd drives a composition through the real
// invoker on a single local platform: every step becomes a request/inform
// conversation with its service's provider agent.
func TestPlatformCompositionEndToEnd(t *testing.T) {
	rt := fireRuntime(t)
	for _, svc := range []struct{ name, concept string }{
		{"ingest-0", "IngestService"},
		{"mine-0", "MineService"},
	} {
		p := &ontology.Profile{Name: svc.name, Concept: svc.concept}
		if _, err := rt.Broker.Reg.Register(p, DefaultLeaseTTL); err != nil {
			t.Fatal(err)
		}
	}

	p := agent.NewPlatform("local")
	defer p.Close()
	n, err := rt.RegisterProviderAgents(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("registered %d provider agents, want 2", n)
	}
	// Idempotent: a second pass adds nothing and errors nothing.
	if n, err = rt.RegisterProviderAgents(p); err != nil || n != 0 {
		t.Fatalf("re-registration: n=%d err=%v", n, err)
	}

	lib := composition.NewLibrary()
	for _, task := range []*composition.Task{
		{Name: "report", Subtasks: []string{"ingest", "mine"}},
		{Name: "ingest", Concept: "IngestService",
			Inputs: []string{"Raw"}, Outputs: []string{"IngestedData"}},
		{Name: "mine", Concept: "MineService",
			Inputs: []string{"IngestedData"}, Outputs: []string{"Result"}},
	} {
		if err := lib.Define(task); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := lib.Plan("report")
	if err != nil {
		t.Fatal(err)
	}

	eng := rt.NewCompositionEngine(p)
	exec := eng.Execute(plan)
	if !exec.Succeeded {
		t.Fatalf("platform composition failed: %+v", exec.Err)
	}
	for _, svc := range []string{"ingest-0", "mine-0"} {
		got := rt.Metrics.Counter("core_provider_invocations_total", "service", svc).Value()
		if got != 1 {
			t.Fatalf("%s acknowledged %v invocations, want 1", svc, got)
		}
	}
	// A step against a service with no provider agent must fail the
	// conversation instead of silently succeeding: that is what feeds the
	// breakers.
	if _, err := rt.Broker.Reg.Register(
		&ontology.Profile{Name: "ghost-0", Concept: "GhostService"}, DefaultLeaseTTL); err != nil {
		t.Fatal(err)
	}
	ghost := composition.NewLibrary()
	if err := ghost.Define(&composition.Task{Name: "haunt", Concept: "GhostService"}); err != nil {
		t.Fatal(err)
	}
	gplan, err := ghost.Plan("haunt")
	if err != nil {
		t.Fatal(err)
	}
	geng := rt.NewCompositionEngine(p)
	geng.Invoke = PlatformInvoker(p, 500*time.Millisecond, agent.RetryPolicy{
		MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, AttemptTimeout: 100 * time.Millisecond,
	})
	if gexec := geng.Execute(gplan); gexec.Succeeded {
		t.Fatal("composition against a provider-less service succeeded")
	}
}
