package core

import (
	"fmt"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/grid"
)

// Grid-resource negotiation: §2 requires agents that "negotiate with other
// agents about ... performance commitments". Each grid resource can be
// exposed as a bidder agent whose bid is its estimated completion time for
// the tendered job; the base station awards the solve with a contract-net
// round instead of trusting the scheduler's internal view. This matters
// when grid resources belong to different administrative domains and the
// scheduler cannot see their queues.

// SolverAgentID names the bidder agent for a resource.
func SolverAgentID(resourceName string) agent.ID {
	return agent.ID("solver-" + resourceName)
}

// RegisterSolverAgents hosts one contract-net bidder per grid resource.
// Each bids its estimated completion time (queue wait + compute) for the
// op count named in the CFP payload ("ops"), and refuses malformed CFPs.
func (rt *Runtime) RegisterSolverAgents(p *agent.Platform) error {
	for _, r := range rt.Cluster.Resources() {
		r := r
		bid := func(cfp agent.CFP) float64 {
			var ops float64
			if _, err := fmt.Sscanf(cfp.Payload["ops"], "%g", &ops); err != nil || ops <= 0 {
				return -1 // refuse
			}
			// Performance commitment: when could I be done?
			wait := r.BusyUntil() - rt.Cluster.Now()
			if wait < 0 {
				wait = 0
			}
			return wait + ops/r.EffectiveRate(r.Cores)
		}
		attrs := agent.Attributes{
			Agent:  map[string]string{agent.AttrRole: agent.RoleProvider},
			Domain: map[string]string{"resource": r.Name},
		}
		if err := p.Register(SolverAgentID(r.Name), rt.wrapHandler(agent.Bidder(bid, nil)), attrs, rt.DeputyWrap); err != nil {
			return err
		}
	}
	return nil
}

// NegotiateSolve runs a contract-net round over the registered solver
// agents for a job of the given op count and returns the winning
// resource's placement estimate.
func (rt *Runtime) NegotiateSolve(p *agent.Platform, ops float64, deadline time.Duration) (grid.Placement, string, error) {
	var contractors []agent.ID
	for _, r := range rt.Cluster.Resources() {
		contractors = append(contractors, SolverAgentID(r.Name))
	}
	res, err := agent.ContractNet(p, contractors, agent.CFP{
		Task:    "pde-solve",
		Payload: map[string]string{"ops": fmt.Sprintf("%g", ops)},
	}, deadline)
	if err != nil {
		return grid.Placement{}, "", err
	}
	if res.Winner == "" {
		return grid.Placement{}, "", fmt.Errorf("core: no grid resource bid for the solve")
	}
	name := string(res.Winner)
	const prefix = "solver-"
	if len(name) > len(prefix) {
		name = name[len(prefix):]
	}
	// The award is a commitment: reserve the winner's time specifically.
	placement, err := rt.Cluster.SubmitTo(name, grid.Job{Name: "negotiated-solve", Ops: ops})
	if err != nil {
		return grid.Placement{}, "", err
	}
	return placement, name, nil
}
