package core

import (
	"fmt"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/composition"
	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/ontology"
	"pervasivegrid/internal/supervise"
)

// DefaultLeaseTTL is the advertisement lifetime used by AdvertiseDefaults.
// Long-standing services (grid solvers) get it; callers model short-lived
// mobile services by registering with shorter leases.
const DefaultLeaseTTL = time.Hour

// AdvertiseDefaults populates the runtime's broker with the deployment's
// services: every alive sensor as a TemperatureSensor, the grid's solver
// and aggregation capabilities, and the base station as a gateway.
func (rt *Runtime) AdvertiseDefaults() error {
	for _, s := range rt.Net.Sensors {
		if !s.Alive() {
			continue
		}
		p := &ontology.Profile{
			Name:    fmt.Sprintf("sensor-%d", s.ID),
			Concept: "TemperatureSensor",
			Outputs: []string{"TemperatureSensor"},
			Properties: map[string]ontology.Value{
				"x":      ontology.Num(s.Pos.X),
				"y":      ontology.Num(s.Pos.Y),
				"room":   ontology.Str(s.Room),
				"energy": ontology.Num(s.Energy),
			},
			UUID:      fmt.Sprintf("uuid-sensor-%d", s.ID),
			Interface: "Sensor.read",
		}
		if err := p.Validate(rt.Onto); err != nil {
			return err
		}
		if _, err := rt.Broker.Reg.Register(p, DefaultLeaseTTL); err != nil {
			return err
		}
	}
	for _, r := range rt.Cluster.Resources() {
		p := &ontology.Profile{
			Name:    "heat-solver-" + r.Name,
			Concept: "HeatSolver",
			Inputs:  []string{"TemperatureSensor", "BuildingPlan"},
			Outputs: []string{"HeatSolver"},
			Properties: map[string]ontology.Value{
				"opsPerSec": ontology.Num(r.EffectiveRate(r.Cores)),
				"cores":     ontology.Num(float64(r.Cores)),
			},
			Interface: "Solver.solve",
		}
		if err := p.Validate(rt.Onto); err != nil {
			return err
		}
		if _, err := rt.Broker.Reg.Register(p, DefaultLeaseTTL); err != nil {
			return err
		}
	}
	gw := &ontology.Profile{
		Name:    "base-station",
		Concept: "GatewayService",
		Properties: map[string]ontology.Value{
			"x": ontology.Num(rt.Cfg.Net.BasePos.X),
			"y": ontology.Num(rt.Cfg.Net.BasePos.Y),
		},
		Interface: "Gateway.route",
	}
	if err := gw.Validate(rt.Onto); err != nil {
		return err
	}
	_, err := rt.Broker.Reg.Register(gw, DefaultLeaseTTL)
	return err
}

// Discover runs a semantic lookup against the runtime's broker (fanning out
// to peers when the local answer is thin).
func (rt *Runtime) Discover(req ontology.Request) []discovery.Match {
	return rt.Broker.Lookup(req, 1)
}

// NewCompositionEngine builds a composition engine over the runtime's
// broker and ontology. With a platform, steps are invoked for real: each
// bound service's provider agent (see RegisterProviderAgents) is called
// over the messaging path through CallRetry, behind a per-service circuit
// breaker, so engine executions exercise the same retry/breaker machinery
// as every other conversation. With a nil platform the invoker is the
// modelled always-succeeds stub; callers replace Invoke to model failures.
func (rt *Runtime) NewCompositionEngine(p *agent.Platform) *composition.Engine {
	e := &composition.Engine{
		Brokers:       []*discovery.Broker{rt.Broker},
		Onto:          rt.Onto,
		Invoke:        func(*ontology.Profile, composition.Step) error { return nil },
		DiscoveryCost: 0.005,
		InvokeCost:    0.02,
		Metrics:       rt.Metrics,
	}
	if p != nil {
		e.Invoke = PlatformInvoker(p, DefaultInvokeTimeout, DefaultInvokePolicy())
		e.Breakers = supervise.NewBreakerSet(supervise.DefaultBreakerPolicy())
		e.Breakers.AttachMetrics(rt.Metrics)
	}
	return e
}
