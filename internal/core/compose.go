package core

import (
	"fmt"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/composition"
	"pervasivegrid/internal/ontology"
)

// ComposeOntology labels provider-invocation conversations: the composition
// engine's step calls travel as envelopes under this vocabulary.
const ComposeOntology = "pgrid-compose-v1"

// ProviderAgentID names the agent serving an advertised service profile.
// The composition invoker derives the same ID from the bound profile, so
// an advertisement and its provider agent stay connected by name alone.
func ProviderAgentID(service string) agent.ID {
	return agent.ID("provider-" + service)
}

// InvokeRequest asks a provider agent to perform one composition step.
type InvokeRequest struct {
	Task    string `json:"task"`
	Concept string `json:"concept"`
}

// InvokeReply is the provider's answer.
type InvokeReply struct {
	OK      bool   `json:"ok"`
	Service string `json:"service"`
	Error   string `json:"error,omitempty"`
}

// RegisterProviderAgents hosts one provider agent per profile currently
// advertised on the runtime's broker. Each agent answers ComposeOntology
// requests with an acknowledgement carrying its service name — the
// conversation leg a composition step rides over the real messaging path.
// Already-hosted services are skipped, so the call is idempotent and can
// re-run after new advertisements. Returns how many agents were added.
func (rt *Runtime) RegisterProviderAgents(p *agent.Platform) (int, error) {
	added := 0
	for _, prof := range rt.Broker.Reg.Profiles() {
		id := ProviderAgentID(prof.Name)
		if _, hosted := p.Attributes(id); hosted {
			continue
		}
		service := prof.Name
		attrs := agent.Attributes{Agent: map[string]string{
			agent.AttrRole: agent.RoleProvider,
			"concept":      prof.Concept,
		}}
		h := agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
			if env.Performative != "request" || env.Ontology != ComposeOntology {
				return
			}
			var req InvokeRequest
			if err := env.Decode(&req); err != nil {
				return
			}
			rt.Metrics.Counter("core_provider_invocations_total", "service", service).Inc()
			out, err := env.Reply("inform", InvokeReply{OK: true, Service: service})
			if err != nil {
				return
			}
			out.From = ctx.Self
			// A step acknowledgement lost to a full mailbox would burn a
			// whole invocation attempt on the composer: retry the reply.
			_ = agent.SendRetry(ctx.Platform, out, 2*time.Second, replyPolicy)
		})
		if err := p.Register(id, rt.wrapHandler(h), attrs, rt.DeputyWrap); err != nil {
			return added, err
		}
		added++
	}
	return added, nil
}

// PlatformInvoker builds a composition.Invoker that calls the bound
// service's provider agent over the platform through the retry layer — the
// real-messaging replacement for the modelled always-succeeds invoker. A
// call that exhausts its retries (crashed provider, partition, open link)
// surfaces as a step failure, which is exactly what feeds the engine's
// breakers and the adaptive executor's re-planning.
func PlatformInvoker(p *agent.Platform, timeout time.Duration, policy agent.RetryPolicy) composition.Invoker {
	return func(prof *ontology.Profile, step composition.Step) error {
		env, err := agent.CallRetry(p, ProviderAgentID(prof.Name), "request", ComposeOntology,
			InvokeRequest{Task: step.Task.Name, Concept: step.Task.Concept}, timeout, policy)
		if err != nil {
			return fmt.Errorf("core: invoke %s for step %s: %w", prof.Name, step.Task.Name, err)
		}
		var rep InvokeReply
		if err := env.Decode(&rep); err != nil {
			return fmt.Errorf("core: invoke %s: bad reply: %w", prof.Name, err)
		}
		if !rep.OK {
			return fmt.Errorf("core: provider %s refused step %s: %s", prof.Name, step.Task.Name, rep.Error)
		}
		return nil
	}
}

// DefaultInvokeTimeout and DefaultInvokePolicy are the conversation budget
// NewCompositionEngine gives the platform invoker: enough attempts to ride
// out a provider restart, short enough that a dead provider fails the step
// in seconds and lets the engine re-bind.
const DefaultInvokeTimeout = 5 * time.Second

// DefaultInvokePolicy returns the stock retry policy for platform-backed
// step invocations.
func DefaultInvokePolicy() agent.RetryPolicy {
	return agent.RetryPolicy{
		MaxAttempts:    4,
		BaseDelay:      20 * time.Millisecond,
		MaxDelay:       250 * time.Millisecond,
		Jitter:         0.2,
		AttemptTimeout: 500 * time.Millisecond,
	}
}
