package core

import (
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/faultinject"
	"pervasivegrid/internal/obs"
)

// Chaos test for the acceptance scenario: a handheld's query conversation
// runs over a real TCP gateway/link with 10% injected envelope drop on the
// query agent's deputy, survives a forced gateway restart mid-conversation
// via retry + reconnect, and the platform's DeliveryStats expose the
// damage (retries, dead letters) instead of hiding it. All randomness is
// seeded, so the fault pattern is reproducible.

func chaosWaitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestChaosQuerySurvivesDropAndDisconnect(t *testing.T) {
	rt := fireRuntime(t)
	inj := faultinject.New(faultinject.Config{Seed: 7, DropProb: 0.10})
	rt.DeputyWrap = inj.WrapDeputy

	server := agent.NewPlatform("base-station")
	defer server.Close()
	if err := rt.RegisterQueryAgent(server); err != nil {
		t.Fatal(err)
	}
	gw, err := agent.ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := gw.Addr()

	client := agent.NewPlatform("handheld")
	defer client.Close()
	link := agent.DialReconnect(client, addr, agent.ReconnectOptions{
		MaxBuffer: 4,
		BaseDelay: 5 * time.Millisecond,
	})
	defer link.Close()
	chaosWaitFor(t, "initial connect", link.Connected)

	policy := agent.RetryPolicy{
		MaxAttempts:    10,
		BaseDelay:      10 * time.Millisecond,
		MaxDelay:       100 * time.Millisecond,
		Jitter:         0.2,
		AttemptTimeout: 250 * time.Millisecond,
		Seed:           99,
	}
	const src = "SELECT temp FROM sensors WHERE sensor = 44"

	// Phase 1 — lossy steady state: every query must complete despite the
	// 10% drop; run until the injector has provably eaten at least one
	// request (the index of the first drop is fixed by the seed).
	queries := 0
	for inj.Stats().Dropped == 0 {
		queries++
		if queries > 100 {
			t.Fatal("injector never dropped anything at 10%")
		}
		r, err := AskQuery(client, src, 10*time.Second, policy)
		if err != nil {
			t.Fatalf("query %d under loss: %v", queries, err)
		}
		if !r.OK {
			t.Fatalf("query %d failed: %s", queries, r.Error)
		}
	}
	t.Logf("first injected drop after %d queries", queries)

	// Phase 2 — forced disconnect mid-conversation: the gateway dies,
	// traffic buffers (and overflows, deterministically dead-lettering
	// the oldest), the gateway comes back on the same address, the link
	// replays, and the in-flight conversation completes.
	gw.Close()
	chaosWaitFor(t, "link to notice the disconnect", func() bool { return !link.Connected() })

	// A burst while down: 8 notifications into a 4-slot buffer must
	// dead-letter the overflow with reason link_down.
	if err := client.Register("notifier", agent.HandlerFunc(func(agent.Envelope, *agent.Context) {}),
		agent.Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		env, err := agent.NewEnvelope("notifier", QueryAgentID, "inform", QueryOntology, i)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Send(env); err != nil {
			t.Fatalf("send while down: %v", err)
		}
	}

	type outcome struct {
		r   QueryReply
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		r, err := AskQuery(client, src, 20*time.Second, policy)
		done <- outcome{r, err}
	}()
	// Let at least two attempt timeouts elapse while the link is down so
	// the conversation provably retries across the outage.
	time.Sleep(600 * time.Millisecond)

	gw2, err := agent.ListenAndServe(server, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()

	res := <-done
	if res.err != nil {
		t.Fatalf("conversation across the outage: %v", res.err)
	}
	if !res.r.OK {
		t.Fatalf("conversation across the outage failed: %s", res.r.Error)
	}

	// Phase 3 — the accounting must show what happened.
	if st := link.Stats(); st.Connects < 2 {
		t.Fatalf("link connects = %d, want a reconnection", st.Connects)
	}
	cst := client.DeliveryStats()
	if cst.Retries == 0 {
		t.Fatal("client DeliveryStats shows no retries after a lossy, partitioned conversation")
	}
	if cst.Reasons[agent.DropLinkDown] < 4 {
		t.Fatalf("link_down dead letters = %d, want >= 4 (8 sends into a 4-slot buffer)",
			cst.Reasons[agent.DropLinkDown])
	}
	if cst.DeadLettered == 0 || len(client.DeadLetters()) == 0 {
		t.Fatalf("dead-letter ring empty; stats = %+v", cst)
	}
	if dropped := inj.Stats().Dropped; dropped == 0 {
		t.Fatalf("injector stats lost their drops: %+v", inj.Stats())
	}
	t.Logf("client stats: %+v; injector: %+v; link: %+v",
		cst, inj.Stats(), link.Stats())
}

// TestChaosQueryAgentPanicsAndRestarts is the crash-side companion of the
// drop/disconnect chaos above: the base station's query agent itself
// panics on every 3rd envelope it handles. Supervision must recover each
// crash and restart the agent, the handheld's retry layer must re-send
// the conversations the panics ate, and every query must still complete
// — the process never notices beyond latency.
func TestChaosQueryAgentPanicsAndRestarts(t *testing.T) {
	rt := fireRuntime(t)
	inj := faultinject.New(faultinject.Config{Seed: 3, PanicEveryN: 3})
	rt.HandlerWrap = inj.WrapHandler

	// The base station's supervision backoff runs on a fake clock: each
	// restart sleep fires deterministically instead of stretching the
	// test by the real backoff schedule. The conversation itself rides
	// the real clock on the client side.
	fc := obs.NewFakeClock()
	defer fc.AutoAdvance()()
	server := agent.NewPlatform("base-station")
	server.Clock = fc
	defer server.Close()
	if err := rt.RegisterQueryAgent(server); err != nil {
		t.Fatal(err)
	}
	gw, err := agent.ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	client := agent.NewPlatform("handheld")
	defer client.Close()
	link := agent.DialReconnect(client, gw.Addr(), agent.ReconnectOptions{
		MaxBuffer: 4,
		BaseDelay: 5 * time.Millisecond,
	})
	defer link.Close()
	chaosWaitFor(t, "initial connect", link.Connected)

	policy := agent.RetryPolicy{
		MaxAttempts:    10,
		BaseDelay:      10 * time.Millisecond,
		MaxDelay:       100 * time.Millisecond,
		Jitter:         0.2,
		AttemptTimeout: 250 * time.Millisecond,
		Seed:           42,
	}
	const src = "SELECT temp FROM sensors WHERE sensor = 44"

	// Six conversations against an agent that dies on envelopes 3, 6, 9,
	// ... — with retried attempts landing on the restarted incarnation,
	// at least two crashes are guaranteed inside this run.
	for i := 0; i < 6; i++ {
		r, err := AskQuery(client, src, 10*time.Second, policy)
		if err != nil {
			t.Fatalf("query %d across agent crashes: %v", i+1, err)
		}
		if !r.OK {
			t.Fatalf("query %d failed: %s", i+1, r.Error)
		}
	}

	if got := inj.Stats().Panicked; got < 2 {
		t.Fatalf("injector panics = %d, want >= 2", got)
	}
	if got := server.AgentRestarts(QueryAgentID); got < 2 {
		t.Fatalf("AgentRestarts(query-agent) = %d, want >= 2", got)
	}
	if !server.AgentAlive(QueryAgentID) {
		t.Fatal("query agent not alive after the crash loop")
	}
	st := server.SupervisionStats()
	if st.Panics < 2 || st.Restarts < 2 || st.GiveUps != 0 {
		t.Fatalf("supervision stats = %+v, want >= 2 panics/restarts and no give-ups", st)
	}
	// The handheld's accounting shows the re-sent conversations.
	if cst := client.DeliveryStats(); cst.Retries == 0 {
		t.Fatal("client shows no retries although the agent ate requests")
	}
	t.Logf("injector: %+v; supervision: %+v", inj.Stats(), st)
}
