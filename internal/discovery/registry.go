package discovery

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

import (
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/ontology"
)

// Lease is a time-bounded registration, the mechanism that keeps the
// registry honest when "services may be coming up and going down
// frequently".
type Lease struct {
	ID      uint64
	Name    string
	Expires time.Time
}

// Registry stores service advertisements under leases. It is safe for
// concurrent use. The clock is injectable so simulations can drive expiry
// deterministically.
type Registry struct {
	// Now supplies the current time; defaults to time.Now.
	Now func() time.Time

	// Metrics, when set, receives discovery_match_latency_seconds,
	// discovery_lookup_{hits,misses}_total, and a discovery_registry_size
	// gauge. Nil disables instrumentation (obs.Registry is nil-safe).
	Metrics *obs.Registry

	// OnRegister, when set, observes every successful Register and Renew
	// (called outside the registry lock, after the entry is stored). The
	// durable store journals these so the node re-advertises its
	// services after a crash. Set before traffic starts.
	OnRegister func(p *ontology.Profile, l Lease)

	// OnDeregister, when set, observes explicit Deregister calls (not
	// lease expiry — an expired lease re-expires on its own after
	// recovery, so journaling it would be redundant). Set before traffic
	// starts.
	OnDeregister func(name string)

	mu      sync.RWMutex
	nextID  uint64
	entries map[string]*entry // by profile name
	watches watchList
}

type entry struct {
	profile *ontology.Profile
	lease   Lease
}

// NewRegistry builds an empty registry on the wall clock.
func NewRegistry() *Registry {
	return &Registry{Now: obs.Real.Now, entries: map[string]*entry{}}
}

func (r *Registry) now() time.Time {
	if r.Now != nil {
		return r.Now()
	}
	return obs.Real.Now()
}

// Register advertises a profile for ttl; re-registering a name replaces the
// previous advertisement and lease. A non-positive ttl is an error.
func (r *Registry) Register(p *ontology.Profile, ttl time.Duration) (Lease, error) {
	if p == nil || p.Name == "" {
		return Lease{}, fmt.Errorf("discovery: register needs a named profile")
	}
	if ttl <= 0 {
		return Lease{}, fmt.Errorf("discovery: register %q with non-positive ttl", p.Name)
	}
	r.mu.Lock()
	r.nextID++
	l := Lease{ID: r.nextID, Name: p.Name, Expires: r.now().Add(ttl)}
	r.entries[p.Name] = &entry{profile: p, lease: l}
	r.mu.Unlock()
	// Watchers and the journal hook run outside the lock so their
	// callbacks may use the registry freely.
	r.notifyWatchers(p)
	if fn := r.OnRegister; fn != nil {
		fn(p, l)
	}
	return l, nil
}

// Renew extends an existing lease by ttl from now. Renewing an unknown or
// superseded lease fails.
func (r *Registry) Renew(l Lease, ttl time.Duration) (Lease, error) {
	if ttl <= 0 {
		return Lease{}, fmt.Errorf("discovery: renew with non-positive ttl")
	}
	r.mu.Lock()
	e, ok := r.entries[l.Name]
	if !ok || e.lease.ID != l.ID {
		r.mu.Unlock()
		return Lease{}, fmt.Errorf("discovery: lease %d for %q not active", l.ID, l.Name)
	}
	e.lease.Expires = r.now().Add(ttl)
	renewed := e.lease
	profile := e.profile
	r.mu.Unlock()
	if fn := r.OnRegister; fn != nil {
		fn(profile, renewed)
	}
	return renewed, nil
}

// Deregister removes an advertisement by name; removing an absent name is a
// no-op.
func (r *Registry) Deregister(name string) {
	r.mu.Lock()
	_, had := r.entries[name]
	delete(r.entries, name)
	r.mu.Unlock()
	if had {
		if fn := r.OnDeregister; fn != nil {
			fn(name)
		}
	}
}

// sweep drops expired entries. Callers hold r.mu.
func (r *Registry) sweep() {
	now := r.now()
	for name, e := range r.entries {
		if e.lease.Expires.Before(now) {
			delete(r.entries, name)
		}
	}
}

// Profiles snapshots the live advertisements in name order.
func (r *Registry) Profiles() []*ontology.Profile {
	r.mu.Lock()
	r.sweep()
	out := make([]*ontology.Profile, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.profile)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of live advertisements.
func (r *Registry) Len() int { return len(r.Profiles()) }

// Lookup runs the matcher over the live advertisements.
func (r *Registry) Lookup(m Matcher, req ontology.Request) []Match {
	profiles := r.Profiles()
	r.Metrics.Gauge("discovery_registry_size").Set(float64(len(profiles)))
	start := r.now()
	matches := m.Match(req, profiles)
	r.Metrics.Histogram("discovery_match_latency_seconds").
		Observe(r.now().Sub(start).Seconds())
	if len(matches) > 0 {
		r.Metrics.Counter("discovery_lookup_hits_total").Inc()
	} else {
		r.Metrics.Counter("discovery_lookup_misses_total").Inc()
	}
	return matches
}
