package discovery

import (
	"fmt"
	"testing"
	"time"

	"pervasivegrid/internal/ontology"
)

func printerFleet() []*ontology.Profile {
	return []*ontology.Profile{
		{
			Name: "lobby-mono", Concept: "PrinterService",
			Interface: "Printer.printIt", UUID: "uuid-lobby-mono",
			Properties: map[string]ontology.Value{
				"queue": ontology.Num(0), "cost": ontology.Num(0.02),
				"x": ontology.Num(90), "y": ontology.Num(90),
			},
		},
		{
			Name: "lab-color", Concept: "ColorPrinter",
			Interface: "Printer.printIt", UUID: "uuid-lab-color",
			Properties: map[string]ontology.Value{
				"queue": ontology.Num(7), "cost": ontology.Num(0.20),
				"color": ontology.Str("yes"),
				"x":     ontology.Num(5), "y": ontology.Num(5),
			},
		},
		{
			Name: "hall-color", Concept: "ColorPrinter",
			Interface: "Printer.printIt", UUID: "uuid-hall-color",
			Properties: map[string]ontology.Value{
				"queue": ontology.Num(2), "cost": ontology.Num(0.08),
				"color": ontology.Str("yes"),
				"x":     ontology.Num(20), "y": ontology.Num(0),
			},
		},
		{
			Name: "scanner", Concept: "DeviceService",
			Interface: "Scanner.scanIt", UUID: "uuid-scanner",
			Properties: map[string]ontology.Value{"x": ontology.Num(1), "y": ontology.Num(1)},
		},
	}
}

// TestPaperPrinterScenario reproduces the paper's worked example: "find a
// printer service that has the shortest print queue ... will print in color
// but only within a prespecified cost constraint" — which Jini lookup
// cannot express.
func TestPaperPrinterScenario(t *testing.T) {
	o := ontology.Pervasive()
	m := NewSemanticMatcher(o)
	req := ontology.Request{
		Concept: "ColorPrinter",
		Constraints: []ontology.Constraint{
			{Property: "color", Op: ontology.OpEq, Value: ontology.Str("yes")},
			{Property: "cost", Op: ontology.OpLe, Value: ontology.Num(0.10)},
		},
		PreferLow: []string{"queue"},
	}
	got := m.Match(req, printerFleet())
	if len(got) != 1 {
		t.Fatalf("matches = %d, want exactly hall-color", len(got))
	}
	if got[0].Profile.Name != "hall-color" {
		t.Fatalf("best = %s, want hall-color", got[0].Profile.Name)
	}
}

func TestSemanticRankedFuzzyMatches(t *testing.T) {
	o := ontology.Pervasive()
	m := NewSemanticMatcher(o)
	// No constraints: the generic printer should surface too, ranked
	// below the exact color printers.
	req := ontology.Request{Concept: "ColorPrinter", PreferLow: []string{"queue"}}
	got := m.Match(req, printerFleet())
	if len(got) < 3 {
		t.Fatalf("fuzzy match should return color + generic printers, got %d", len(got))
	}
	names := map[string]float64{}
	for _, g := range got {
		names[g.Profile.Name] = g.Score
	}
	if names["hall-color"] <= names["lobby-mono"] {
		t.Fatal("exact concept with short queue should outrank generic printer")
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatal("results must be ranked descending")
		}
	}
	// The scanner (different branch) should rank last or be cut.
	if s, ok := names["scanner"]; ok && s >= names["lobby-mono"] {
		t.Fatal("unrelated service should not outrank a printer")
	}
}

func TestSemanticGeographicConstraint(t *testing.T) {
	o := ontology.Pervasive()
	m := NewSemanticMatcher(o)
	req := ontology.Request{
		Concept: "PrinterService",
		X:       0, Y: 0, HasLoc: true,
		Constraints: []ontology.Constraint{{Op: ontology.OpNear, Value: ontology.Num(30)}},
	}
	got := m.Match(req, printerFleet())
	for _, g := range got {
		if g.Profile.Name == "lobby-mono" {
			t.Fatal("lobby-mono at (90,90) is outside 30m radius")
		}
	}
	if len(got) < 2 {
		t.Fatalf("nearby printers should match, got %d", len(got))
	}
}

func TestSemanticSubsumption(t *testing.T) {
	o := ontology.Pervasive()
	m := NewSemanticMatcher(o)
	// Request the general category; the specialised color printer must
	// match strongly (specialisation is substitutable).
	req := ontology.Request{Concept: "PrinterService"}
	got := m.Match(req, printerFleet())
	found := false
	for _, g := range got {
		if g.Profile.Concept == "ColorPrinter" && g.Score > 0.8 {
			found = true
		}
	}
	if !found {
		t.Fatal("specialised service should strongly match a general request")
	}
}

func TestSemanticIOMatching(t *testing.T) {
	o := ontology.Pervasive()
	m := NewSemanticMatcher(o)
	m.IOWeight = 1
	m.ConceptWeight = 0.001
	m.PrefWeight = 0.001
	m.MinScore = 0.01
	producer := &ontology.Profile{
		Name: "solver", Concept: "HeatSolver",
		Inputs:  []string{"TemperatureSensor"},
		Outputs: []string{"BuildingPlan"},
	}
	mismatch := &ontology.Profile{
		Name: "miner", Concept: "HeatSolver",
		Inputs:  []string{"HospitalRecords"},
		Outputs: []string{"WeatherData"},
	}
	req := ontology.Request{
		Concept: "HeatSolver",
		Inputs:  []string{"TemperatureSensor"},
		Outputs: []string{"BuildingPlan"},
	}
	got := m.Match(req, []*ontology.Profile{mismatch, producer})
	if len(got) == 0 || got[0].Profile.Name != "solver" {
		t.Fatalf("IO-compatible service should rank first: %+v", got)
	}
}

func TestJiniMatcherExactOnly(t *testing.T) {
	jm := JiniMatcher{}
	got := jm.Match(ontology.Request{Concept: "Printer.printIt"}, printerFleet())
	if len(got) != 3 {
		t.Fatalf("jini matches = %d, want 3 (all with the interface)", len(got))
	}
	// Jini cannot see the color/queue/cost distinctions: all scores 1.
	for _, g := range got {
		if g.Score != 1 {
			t.Fatal("jini assigns no ranking")
		}
	}
	if got := jm.Match(ontology.Request{Concept: "Printer.printColorCheap"}, printerFleet()); len(got) != 0 {
		t.Fatal("jini finds nothing without the exact interface string")
	}
}

func TestSDPMatcherUUIDOnly(t *testing.T) {
	sm := SDPMatcher{}
	got := sm.Match(ontology.Request{Concept: "uuid-lab-color"}, printerFleet())
	if len(got) != 1 || got[0].Profile.Name != "lab-color" {
		t.Fatalf("sdp match = %+v", got)
	}
	if got := sm.Match(ontology.Request{Concept: "uuid-unknown"}, printerFleet()); len(got) != 0 {
		t.Fatal("sdp must miss unknown UUIDs")
	}
}

func TestRegistryLeaseExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	r := NewRegistry()
	r.Now = func() time.Time { return now }
	p := &ontology.Profile{Name: "s1", Concept: "Service"}
	lease, err := r.Register(p, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatal("registered profile missing")
	}
	now = now.Add(5 * time.Second)
	if r.Len() != 1 {
		t.Fatal("profile expired too early")
	}
	if _, err := r.Renew(lease, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	now = now.Add(8 * time.Second) // t=13, renewed lease expires at t=15
	if r.Len() != 1 {
		t.Fatal("renewed lease should still be live at t=13")
	}
	now = now.Add(5 * time.Second) // t=18 > 15
	if r.Len() != 0 {
		t.Fatal("expired profile should be swept")
	}
	if _, err := r.Renew(lease, time.Second); err == nil {
		t.Fatal("renewing an expired lease should fail")
	}
}

func TestRegistryReplaceAndDeregister(t *testing.T) {
	r := NewRegistry()
	p1 := &ontology.Profile{Name: "svc", Concept: "Service"}
	l1, err := r.Register(p1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	p2 := &ontology.Profile{Name: "svc", Concept: "SensorService"}
	if _, err := r.Register(p2, time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := r.Profiles(); len(got) != 1 || got[0].Concept != "SensorService" {
		t.Fatalf("replacement failed: %+v", got)
	}
	if _, err := r.Renew(l1, time.Hour); err == nil {
		t.Fatal("superseded lease should not renew")
	}
	r.Deregister("svc")
	if r.Len() != 0 {
		t.Fatal("deregister failed")
	}
	r.Deregister("absent") // no-op
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(nil, time.Hour); err == nil {
		t.Fatal("nil profile should fail")
	}
	if _, err := r.Register(&ontology.Profile{Name: "x"}, 0); err == nil {
		t.Fatal("zero ttl should fail")
	}
	if _, err := r.Renew(Lease{}, 0); err == nil {
		t.Fatal("zero ttl renew should fail")
	}
}

func TestBrokerFanOut(t *testing.T) {
	o := ontology.Pervasive()
	m := NewSemanticMatcher(o)
	b1 := NewBroker("b1", m)
	b2 := NewBroker("b2", m)
	b1.Peer(b2, true)

	fleet := printerFleet()
	if _, err := b1.Reg.Register(fleet[0], time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Reg.Register(fleet[2], time.Hour); err != nil {
		t.Fatal(err)
	}

	req := ontology.Request{Concept: "PrinterService"}
	local := b1.LookupLocal(req)
	if len(local) != 1 {
		t.Fatalf("local lookup = %d, want 1", len(local))
	}
	all := b1.Lookup(req, 2)
	if len(all) != 2 {
		t.Fatalf("federated lookup = %d, want 2", len(all))
	}
	// Satisfied locally: no fan-out needed when want is met.
	one := b1.Lookup(req, 1)
	if len(one) != 1 {
		t.Fatalf("want-satisfied lookup = %d, want 1", len(one))
	}
}

func TestBrokerSync(t *testing.T) {
	o := ontology.Pervasive()
	m := NewSemanticMatcher(o)
	b1 := NewBroker("b1", m)
	b2 := NewBroker("b2", m)
	b1.Peer(b2, false) // one-way replication

	for i, p := range printerFleet() {
		if _, err := b1.Reg.Register(p, time.Hour); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	n := b1.SyncOnce(time.Minute)
	if n != 4 {
		t.Fatalf("synced %d, want 4", n)
	}
	if b2.Reg.Len() != 4 {
		t.Fatalf("peer registry = %d, want 4", b2.Reg.Len())
	}
	// b2 can now answer locally.
	if got := b2.LookupLocal(ontology.Request{Concept: "ColorPrinter"}); len(got) == 0 {
		t.Fatal("replicated ads should answer local lookups")
	}
}

func TestBrokerSelfAndNilPeerIgnored(t *testing.T) {
	b := NewBroker("b", JiniMatcher{})
	b.Peer(nil, true)
	b.Peer(b, true)
	if len(b.Peers()) != 0 {
		t.Fatal("self/nil peers should be ignored")
	}
}

func TestSemanticScalability(t *testing.T) {
	o := ontology.Pervasive()
	m := NewSemanticMatcher(o)
	var pool []*ontology.Profile
	concepts := []string{"TemperatureSensor", "SmokeSensor", "HeatSolver", "ColorPrinter", "StorageService"}
	for i := 0; i < 2000; i++ {
		pool = append(pool, &ontology.Profile{
			Name:    fmt.Sprintf("svc-%d", i),
			Concept: concepts[i%len(concepts)],
			Properties: map[string]ontology.Value{
				"cost": ontology.Num(float64(i % 97)),
			},
		})
	}
	req := ontology.Request{
		Concept:     "TemperatureSensor",
		Constraints: []ontology.Constraint{{Property: "cost", Op: ontology.OpLt, Value: ontology.Num(50)}},
	}
	got := m.Match(req, pool)
	if len(got) == 0 {
		t.Fatal("large pool should produce matches")
	}
	for _, g := range got {
		v, _ := g.Profile.Prop("cost")
		if v.N >= 50 {
			t.Fatal("constraint violated in result")
		}
	}
}

func BenchmarkSemanticMatch1000(b *testing.B) {
	o := ontology.Pervasive()
	m := NewSemanticMatcher(o)
	var pool []*ontology.Profile
	for i := 0; i < 1000; i++ {
		pool = append(pool, &ontology.Profile{
			Name:       fmt.Sprintf("svc-%d", i),
			Concept:    "TemperatureSensor",
			Properties: map[string]ontology.Value{"cost": ontology.Num(float64(i))},
		})
	}
	req := ontology.Request{Concept: "SensorService", PreferLow: []string{"cost"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := m.Match(req, pool); len(got) == 0 {
			b.Fatal("no matches")
		}
	}
}

func TestWatchNotifiesOnMatchingRegistration(t *testing.T) {
	o := ontology.Pervasive()
	m := NewSemanticMatcher(o)
	r := NewRegistry()
	var got []string
	cancel := r.Watch(m, ontology.Request{Concept: "ColorPrinter"}, 0.8, func(match Match) {
		got = append(got, match.Profile.Name)
	})
	if r.Watchers() != 1 {
		t.Fatal("watcher not installed")
	}
	// A matching service appears.
	if _, err := r.Register(&ontology.Profile{Name: "new-color", Concept: "ColorPrinter"}, time.Hour); err != nil {
		t.Fatal(err)
	}
	// An unrelated service appears.
	if _, err := r.Register(&ontology.Profile{Name: "scanner", Concept: "StorageService"}, time.Hour); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "new-color" {
		t.Fatalf("watch fired for %v, want [new-color]", got)
	}
	// Cancel stops notifications.
	cancel()
	cancel() // idempotent
	if r.Watchers() != 0 {
		t.Fatal("watcher not removed")
	}
	if _, err := r.Register(&ontology.Profile{Name: "another-color", Concept: "ColorPrinter"}, time.Hour); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("cancelled watcher still fired")
	}
}

func TestWatchMinScoreFilters(t *testing.T) {
	o := ontology.Pervasive()
	m := NewSemanticMatcher(o)
	r := NewRegistry()
	fired := 0
	r.Watch(m, ontology.Request{Concept: "ColorPrinter"}, 0.95, func(Match) { fired++ })
	// A sibling concept matches fuzzily but under the bar.
	if _, err := r.Register(&ontology.Profile{Name: "mono", Concept: "PrinterService"}, time.Hour); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("low-score match should not fire a 0.95 watcher")
	}
	if _, err := r.Register(&ontology.Profile{Name: "exact", Concept: "ColorPrinter"}, time.Hour); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("exact match fired %d times", fired)
	}
}

func TestWatchSupportsRebindingScenario(t *testing.T) {
	// The composition use case: a standing watch re-binds a degraded
	// pipeline when a better service appears.
	o := ontology.Pervasive()
	m := NewSemanticMatcher(o)
	b := NewBroker("b", m)
	bound := "fallback-miner"
	b.Reg.Watch(m, ontology.Request{Concept: "DecisionTreeService"}, 0.9, func(match Match) {
		bound = match.Profile.Name
	})
	if _, err := b.Reg.Register(&ontology.Profile{Name: "fresh-miner", Concept: "DecisionTreeService"}, time.Hour); err != nil {
		t.Fatal(err)
	}
	if bound != "fresh-miner" {
		t.Fatalf("rebinding watch did not fire: bound=%s", bound)
	}
}
