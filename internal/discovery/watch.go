package discovery

import (
	"sync"

	"pervasivegrid/internal/ontology"
)

// Continuous discovery: "the world of services can change rapidly ... a
// good composition platform should be able to adapt its composition by
// taking maximum advantage of the currently available services." Watchers
// get a callback whenever a newly registered advertisement matches their
// standing request, so compositions can rebind to better services as they
// appear.

// watcher is one standing subscription.
type watcher struct {
	id       uint64
	matcher  Matcher
	req      ontology.Request
	minScore float64
	fn       func(Match)
}

// watchList is embedded in Registry hooks; kept separate so the zero
// Registry keeps working.
type watchList struct {
	mu       sync.Mutex
	nextID   uint64
	watchers []*watcher
}

// Watch installs a standing request on the registry: fn runs (on the
// registering goroutine) for every future advertisement whose match score
// reaches minScore. It returns a cancel function. Existing advertisements
// do not fire; pair Watch with an initial Lookup for a full picture.
func (r *Registry) Watch(m Matcher, req ontology.Request, minScore float64, fn func(Match)) func() {
	r.watches.mu.Lock()
	defer r.watches.mu.Unlock()
	r.watches.nextID++
	w := &watcher{id: r.watches.nextID, matcher: m, req: req, minScore: minScore, fn: fn}
	r.watches.watchers = append(r.watches.watchers, w)
	id := w.id
	return func() {
		r.watches.mu.Lock()
		defer r.watches.mu.Unlock()
		for i, ww := range r.watches.watchers {
			if ww.id == id {
				r.watches.watchers = append(r.watches.watchers[:i], r.watches.watchers[i+1:]...)
				return
			}
		}
	}
}

// Watchers reports the number of standing subscriptions.
func (r *Registry) Watchers() int {
	r.watches.mu.Lock()
	defer r.watches.mu.Unlock()
	return len(r.watches.watchers)
}

// notifyWatchers runs after a successful Register, outside r.mu.
func (r *Registry) notifyWatchers(p *ontology.Profile) {
	r.watches.mu.Lock()
	snapshot := append([]*watcher(nil), r.watches.watchers...)
	r.watches.mu.Unlock()
	for _, w := range snapshot {
		for _, m := range w.matcher.Match(w.req, []*ontology.Profile{p}) {
			if m.Score >= w.minScore {
				w.fn(m)
			}
		}
	}
}
