package discovery

import (
	"sort"
	"sync"
	"time"

	"pervasivegrid/internal/ontology"
)

// Broker is a discovery agent owning a registry and knowing peer brokers —
// the "distributed set of brokers" the paper proposes instead of UDDI's
// "highly centralized model". Lookups can stay local or fan out one hop to
// peers; advertisements can be replicated by anti-entropy sync.
type Broker struct {
	Name    string
	Reg     *Registry
	Matcher Matcher

	mu    sync.RWMutex
	peers []*Broker
}

// NewBroker builds a broker with its own registry.
func NewBroker(name string, m Matcher) *Broker {
	return &Broker{Name: name, Reg: NewRegistry(), Matcher: m}
}

// Peer links another broker (bidirectionally when mutual is true). Linking
// nil or self is ignored.
func (b *Broker) Peer(other *Broker, mutual bool) {
	if other == nil || other == b {
		return
	}
	b.mu.Lock()
	b.peers = append(b.peers, other)
	b.mu.Unlock()
	if mutual {
		other.Peer(b, false)
	}
}

// Peers snapshots the peer list.
func (b *Broker) Peers() []*Broker {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]*Broker(nil), b.peers...)
}

// LookupLocal matches only against this broker's registry.
func (b *Broker) LookupLocal(req ontology.Request) []Match {
	return b.Reg.Lookup(b.Matcher, req)
}

// Lookup matches locally and, when the local result set is smaller than
// want, fans out one hop to peers and merges the ranked results
// (deduplicated by profile name, best score wins).
func (b *Broker) Lookup(req ontology.Request, want int) []Match {
	local := b.LookupLocal(req)
	if want > 0 && len(local) >= want {
		return local
	}
	merged := map[string]Match{}
	for _, m := range local {
		merged[m.Profile.Name] = m
	}
	for _, p := range b.Peers() {
		for _, m := range p.LookupLocal(req) {
			if prev, ok := merged[m.Profile.Name]; !ok || m.Score > prev.Score {
				merged[m.Profile.Name] = m
			}
		}
	}
	out := make([]Match, 0, len(merged))
	for _, m := range merged {
		out = append(out, m)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Profile.Name < out[j].Profile.Name
	})
	return out
}

// SyncOnce replicates this broker's live advertisements to every peer under
// short anti-entropy leases, so lookups local to a peer can see remote
// services between syncs. Returns how many (broker, profile) replications
// were pushed.
func (b *Broker) SyncOnce(ttl time.Duration) int {
	profiles := b.Reg.Profiles()
	n := 0
	for _, p := range b.Peers() {
		for _, prof := range profiles {
			if _, err := p.Reg.Register(prof, ttl); err == nil {
				n++
			}
		}
	}
	return n
}
