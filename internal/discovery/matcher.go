// Package discovery implements service discovery for the pervasive grid.
//
// The paper's position is that Jini/SLP/UPnP/Bluetooth-SDP-era systems
// "describe services entirely in syntactic terms", "return exact matches
// and can only handle equality constraints". This package provides the
// semantic alternative — ontology-based fuzzy matching that returns a
// ranked list under non-equality constraints — together with faithful
// syntactic baselines for comparison, a lease-based registry for services
// that come and go, and distributed broker agents.
package discovery

import (
	"sort"

	"pervasivegrid/internal/ontology"
)

// Match is one scored discovery result.
type Match struct {
	Profile *ontology.Profile
	// Score is in [0, 1]; higher is better.
	Score float64
}

// Matcher ranks candidate profiles against a request.
type Matcher interface {
	// Name identifies the matcher in experiment tables.
	Name() string
	// Match returns candidates ordered by descending score.
	Match(req ontology.Request, candidates []*ontology.Profile) []Match
}

// SemanticMatcher scores candidates with ontology similarity and filters
// them with the request's hard constraints. Matching is fuzzy: a
// TemperatureSensor request still surfaces a generic SensorService, just
// with a lower score.
type SemanticMatcher struct {
	Onto *ontology.Ontology
	// MinScore drops candidates scoring below it (default 0.35).
	MinScore float64
	// ConceptWeight, IOWeight, PrefWeight blend the score components;
	// they default to 0.6/0.2/0.2 and are normalised internally.
	ConceptWeight, IOWeight, PrefWeight float64
}

// NewSemanticMatcher builds a matcher with default weights over the given
// ontology.
func NewSemanticMatcher(o *ontology.Ontology) *SemanticMatcher {
	return &SemanticMatcher{Onto: o, MinScore: 0.35, ConceptWeight: 0.6, IOWeight: 0.2, PrefWeight: 0.2}
}

// Name implements Matcher.
func (m *SemanticMatcher) Name() string { return "semantic" }

// conceptScore blends subsumption and Wu–Palmer similarity: an exact or
// subsumed concept scores highest, a sibling lower, a stranger near zero.
func (m *SemanticMatcher) conceptScore(want, have string) float64 {
	if want == have {
		return 1
	}
	if m.Onto.IsA(have, want) {
		return 0.95 // candidate is a specialisation of the request
	}
	sim := m.Onto.Similarity(want, have)
	if m.Onto.IsA(want, have) {
		// Candidate is more general than requested: usable but weaker.
		if sim < 0.75 {
			return sim
		}
		return 0.75
	}
	return sim * 0.9
}

// ioScore measures how well the candidate's outputs cover the request's
// wanted outputs and how well the client's available inputs cover the
// candidate's required inputs. Empty requirements score 1.
func (m *SemanticMatcher) ioScore(req ontology.Request, p *ontology.Profile) float64 {
	cover := func(wanted, offered []string) float64 {
		if len(wanted) == 0 {
			return 1
		}
		total := 0.0
		for _, w := range wanted {
			best := 0.0
			for _, o := range offered {
				s := m.conceptScore(w, o)
				if s > best {
					best = s
				}
			}
			total += best
		}
		return total / float64(len(wanted))
	}
	outs := cover(req.Outputs, p.Outputs)
	ins := cover(p.Inputs, req.Inputs)
	return (outs + ins) / 2
}

// prefScore rewards candidates with smaller values on PreferLow properties,
// scaled against the candidate pool's observed range.
func prefScore(req ontology.Request, p *ontology.Profile, lo, hi map[string]float64) float64 {
	if len(req.PreferLow) == 0 {
		return 1
	}
	total, n := 0.0, 0
	for _, key := range req.PreferLow {
		v, ok := p.Prop(key)
		if !ok || v.Kind != ontology.KindNumber {
			continue
		}
		l, h := lo[key], hi[key]
		n++
		if h <= l {
			total += 1
			continue
		}
		total += 1 - (v.N-l)/(h-l)
	}
	if n == 0 {
		return 0.5 // no preference data available
	}
	return total / float64(n)
}

// Match implements Matcher.
func (m *SemanticMatcher) Match(req ontology.Request, candidates []*ontology.Profile) []Match {
	cw, iw, pw := m.ConceptWeight, m.IOWeight, m.PrefWeight
	if cw <= 0 && iw <= 0 && pw <= 0 {
		cw, iw, pw = 0.6, 0.2, 0.2
	}
	sum := cw + iw + pw
	cw, iw, pw = cw/sum, iw/sum, pw/sum
	minScore := m.MinScore
	if minScore <= 0 {
		minScore = 0.35
	}

	// Pass 1: constraint filter; collect preference ranges over the
	// surviving pool so prefScore is scale-free.
	var pool []*ontology.Profile
	for _, p := range candidates {
		ok := true
		for _, c := range req.Constraints {
			if !ontology.Satisfies(p, c, req) {
				ok = false
				break
			}
		}
		if ok {
			pool = append(pool, p)
		}
	}
	lo, hi := map[string]float64{}, map[string]float64{}
	for _, key := range req.PreferLow {
		first := true
		for _, p := range pool {
			v, ok := p.Prop(key)
			if !ok || v.Kind != ontology.KindNumber {
				continue
			}
			if first || v.N < lo[key] {
				lo[key] = v.N
			}
			if first || v.N > hi[key] {
				hi[key] = v.N
			}
			first = false
		}
	}

	// Pass 2: score and rank.
	var out []Match
	for _, p := range pool {
		score := cw*m.conceptScore(req.Concept, p.Concept) +
			iw*m.ioScore(req, p) +
			pw*prefScore(req, p, lo, hi)
		if score >= minScore {
			out = append(out, Match{Profile: p, Score: score})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Profile.Name < out[j].Profile.Name
	})
	return out
}

// JiniMatcher reproduces interface-based exact matching: a candidate
// matches only when its Interface string equals the request's wanted
// interface (carried in the request concept field by convention of this
// baseline). No ranking, no constraints beyond equality.
type JiniMatcher struct{}

// Name implements Matcher.
func (JiniMatcher) Name() string { return "jini" }

// Match implements Matcher. Score is always 1 for a hit.
func (JiniMatcher) Match(req ontology.Request, candidates []*ontology.Profile) []Match {
	var out []Match
	for _, p := range candidates {
		if p.Interface != "" && p.Interface == req.Concept {
			out = append(out, Match{Profile: p, Score: 1})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Profile.Name < out[j].Profile.Name })
	return out
}

// SDPMatcher reproduces Bluetooth SDP: services match only by exact UUID.
// The paper: "Bluetooth SDP relies on unique 128 bit UUIDs to describe and
// match services. This is clearly inadequate."
type SDPMatcher struct{}

// Name implements Matcher.
func (SDPMatcher) Name() string { return "sdp" }

// Match implements Matcher; the request concept carries the wanted UUID.
func (SDPMatcher) Match(req ontology.Request, candidates []*ontology.Profile) []Match {
	var out []Match
	for _, p := range candidates {
		if p.UUID != "" && p.UUID == req.Concept {
			out = append(out, Match{Profile: p, Score: 1})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Profile.Name < out[j].Profile.Name })
	return out
}
