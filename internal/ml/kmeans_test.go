package ml

import (
	"math"
	"math/rand"
	"testing"
)

// threeBlobs synthesises three well-separated Gaussian clusters.
func threeBlobs(rng *rand.Rand, perCluster int) ([][]float64, []int) {
	centers := [][]float64{{0, 0}, {20, 0}, {0, 20}}
	var X [][]float64
	var labels []int
	for c, cent := range centers {
		for i := 0; i < perCluster; i++ {
			X = append(X, []float64{
				cent[0] + rng.NormFloat64(),
				cent[1] + rng.NormFloat64(),
			})
			labels = append(labels, c)
		}
	}
	return X, labels
}

func TestKMeansRecoverBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	X, labels := threeBlobs(rng, 60)
	km, err := FitKMeans(X, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(km.Centroids) != 3 {
		t.Fatalf("centroids = %d", len(km.Centroids))
	}
	// All points in one true cluster must map to one k-means cluster.
	for c := 0; c < 3; c++ {
		votes := map[int]int{}
		for i, row := range X {
			if labels[i] == c {
				votes[km.Assign(row)]++
			}
		}
		best, total := 0, 0
		for _, n := range votes {
			total += n
			if n > best {
				best = n
			}
		}
		if float64(best)/float64(total) < 0.95 {
			t.Fatalf("true cluster %d split across k-means clusters: %v", c, votes)
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := FitKMeans(nil, 2, 1, 0); err != ErrEmpty {
		t.Fatal("empty input should fail")
	}
	X := [][]float64{{1}, {2}}
	if _, err := FitKMeans(X, 0, 1, 0); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := FitKMeans(X, 3, 1, 0); err == nil {
		t.Fatal("k > n should fail")
	}
	if _, err := FitKMeans([][]float64{{1}, {2, 3}}, 1, 1, 0); err == nil {
		t.Fatal("ragged input should fail")
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, _ := threeBlobs(rng, 30)
	a, err := FitKMeans(X, 3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitKMeans(X, 3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Centroids {
		for j := range a.Centroids[c] {
			if a.Centroids[c][j] != b.Centroids[c][j] {
				t.Fatal("same seed should reproduce centroids")
			}
		}
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, _ := threeBlobs(rng, 40)
	k1, err := FitKMeans(X, 1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	k3, err := FitKMeans(X, 3, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k3.Inertia(X) >= k1.Inertia(X) {
		t.Fatal("more clusters should not increase inertia on separated blobs")
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	km, err := FitKMeans(X, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if km.Assign([]float64{1, 1}) >= 2 {
		t.Fatal("assignment out of range")
	}
}

func TestNaiveBayesSeparatesClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var d Dataset
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			d.Add([]float64{rng.NormFloat64(), rng.NormFloat64()}, 0)
		} else {
			d.Add([]float64{8 + rng.NormFloat64(), 8 + rng.NormFloat64()}, 1)
		}
	}
	nb, err := TrainNaiveBayes(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(nb.Predict, d); acc < 0.98 {
		t.Fatalf("accuracy = %v", acc)
	}
	// Predictive scoring: posterior near the far cluster is confident.
	s, err := nb.Score([]float64{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if s[1] < 0.95 {
		t.Fatalf("posterior = %v, want confident class 1", s)
	}
	if math.Abs(s[0]+s[1]-1) > 1e-9 {
		t.Fatalf("posteriors do not normalise: %v", s)
	}
	// A midpoint case scores uncertainly.
	mid, _ := nb.Score([]float64{4, 4})
	if mid[0] < 0.05 || mid[0] > 0.95 {
		t.Fatalf("midpoint posterior should be uncertain: %v", mid)
	}
}

func TestNaiveBayesValidation(t *testing.T) {
	if _, err := TrainNaiveBayes(Dataset{}); err == nil {
		t.Fatal("empty training should fail")
	}
	nb := &NaiveBayes{}
	if _, err := nb.Score([]float64{1}); err == nil {
		t.Fatal("untrained score should fail")
	}
}

func TestNaiveBayesConstantFeature(t *testing.T) {
	// Zero-variance features must not produce NaNs (variance floor).
	var d Dataset
	for i := 0; i < 20; i++ {
		d.Add([]float64{5, float64(i % 2)}, i%2)
	}
	nb, err := TrainNaiveBayes(d)
	if err != nil {
		t.Fatal(err)
	}
	s, err := nb.Score([]float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s {
		if math.IsNaN(p) {
			t.Fatal("NaN posterior")
		}
	}
	if nb.Predict([]float64{5, 1}) != 1 {
		t.Fatal("informative feature ignored")
	}
}
