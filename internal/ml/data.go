// Package ml implements the "standard machine learning techniques" the
// paper applies to dynamic computation partitioning (a Pythia-style learned
// selector) and to stream mining: decision trees with numeric threshold
// splits, k-nearest-neighbour classification and regression, and small
// dataset utilities. Everything is from scratch on the standard library.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// Dataset pairs feature vectors with integer class labels.
type Dataset struct {
	X [][]float64
	Y []int
}

// ErrEmpty indicates a training call with no samples.
var ErrEmpty = errors.New("ml: empty dataset")

// Validate checks shape invariants: equal lengths and rectangular features.
func (d Dataset) Validate() error {
	if len(d.X) == 0 {
		return ErrEmpty
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d feature rows but %d labels", len(d.X), len(d.Y))
	}
	w := len(d.X[0])
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), w)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: row %d feature %d is not finite", i, j)
			}
		}
	}
	return nil
}

// Add appends one sample.
func (d *Dataset) Add(x []float64, y int) {
	d.X = append(d.X, append([]float64(nil), x...))
	d.Y = append(d.Y, y)
}

// Len reports the sample count.
func (d Dataset) Len() int { return len(d.X) }

// Classes returns the distinct labels present, in ascending order.
func (d Dataset) Classes() []int {
	seen := map[int]bool{}
	var out []int
	for _, y := range d.Y {
		if !seen[y] {
			seen[y] = true
			out = append(out, y)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Accuracy scores a classifier over a dataset.
func Accuracy(predict func([]float64) int, d Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	hit := 0
	for i, x := range d.X {
		if predict(x) == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(d.Len())
}

// Scaler standardises features to zero mean and unit variance, protecting
// distance-based learners from dominant dimensions.
type Scaler struct {
	Mean, Std []float64
}

// FitScaler computes per-feature statistics.
func FitScaler(X [][]float64) (*Scaler, error) {
	if len(X) == 0 {
		return nil, ErrEmpty
	}
	w := len(X[0])
	s := &Scaler{Mean: make([]float64, w), Std: make([]float64, w)}
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Transform returns the standardised copy of x.
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		if j < len(s.Mean) {
			out[j] = (v - s.Mean[j]) / s.Std[j]
		} else {
			out[j] = v
		}
	}
	return out
}
