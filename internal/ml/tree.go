package ml

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// TreeConfig bounds decision-tree growth.
type TreeConfig struct {
	// MaxDepth limits tree height; 0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum samples in a leaf (default 1).
	MinLeaf int
}

// DecisionTree is a binary classification/“choose a class” tree with
// numeric threshold splits (x[Feature] <= Threshold goes left), trained by
// greedy Gini-impurity reduction — the CART flavour of the paper's
// "standard machine learning techniques".
type DecisionTree struct {
	root *treeNode
	// NumFeatures is the trained feature width.
	NumFeatures int
}

type treeNode struct {
	// Leaf fields.
	leaf  bool
	class int
	// Split fields.
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
}

// TrainTree fits a decision tree to the dataset.
func TrainTree(d Dataset, cfg TreeConfig) (*DecisionTree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t := &DecisionTree{NumFeatures: len(d.X[0])}
	t.root = grow(d, idx, cfg, 0)
	return t, nil
}

// gini computes the Gini impurity of the labels selected by idx.
func gini(d Dataset, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	counts := map[int]int{}
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	g := 1.0
	n := float64(len(idx))
	for _, c := range counts {
		p := float64(c) / n
		g -= p * p
	}
	return g
}

// majority returns the most frequent label (ties broken by smaller label).
func majority(d Dataset, idx []int) int {
	counts := map[int]int{}
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	best, bestN := 0, -1
	for label, c := range counts {
		if c > bestN || (c == bestN && label < best) {
			best, bestN = label, c
		}
	}
	return best
}

func pure(d Dataset, idx []int) bool {
	for _, i := range idx[1:] {
		if d.Y[i] != d.Y[idx[0]] {
			return false
		}
	}
	return true
}

func grow(d Dataset, idx []int, cfg TreeConfig, depth int) *treeNode {
	if len(idx) <= cfg.MinLeaf || pure(d, idx) || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return &treeNode{leaf: true, class: majority(d, idx)}
	}

	parentGini := gini(d, idx)
	// Accept zero-gain splits: concepts like XOR have no first split with
	// positive Gini gain, yet splitting still makes progress because both
	// children are strictly smaller. Recursion terminates regardless.
	bestGain := math.Inf(-1)
	bestFeature, bestThreshold := -1, 0.0
	n := float64(len(idx))
	w := len(d.X[0])

	order := make([]int, len(idx))
	for f := 0; f < w; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return d.X[order[a]][f] < d.X[order[b]][f] })
		// Scan split points between distinct consecutive values,
		// maintaining left/right label counts incrementally.
		leftCounts := map[int]int{}
		rightCounts := map[int]int{}
		for _, i := range order {
			rightCounts[d.Y[i]]++
		}
		giniOf := func(counts map[int]int, total float64) float64 {
			if total == 0 {
				return 0
			}
			g := 1.0
			for _, c := range counts {
				p := float64(c) / total
				g -= p * p
			}
			return g
		}
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			leftCounts[d.Y[i]]++
			rightCounts[d.Y[i]]--
			v, next := d.X[i][f], d.X[order[k+1]][f]
			if v == next {
				continue
			}
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < cfg.MinLeaf || int(nr) < cfg.MinLeaf {
				continue
			}
			gain := parentGini - (nl/n)*giniOf(leftCounts, nl) - (nr/n)*giniOf(rightCounts, nr)
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeature = f
				bestThreshold = (v + next) / 2
			}
		}
	}

	if bestFeature < 0 {
		return &treeNode{leaf: true, class: majority(d, idx)}
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if d.X[i][bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &treeNode{leaf: true, class: majority(d, idx)}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      grow(d, leftIdx, cfg, depth+1),
		right:     grow(d, rightIdx, cfg, depth+1),
	}
}

// Predict classifies one feature vector.
func (t *DecisionTree) Predict(x []float64) int {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// Depth returns the tree height (a lone leaf has depth 0).
func (t *DecisionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Nodes counts all nodes including leaves.
func (t *DecisionTree) Nodes() int { return countNodes(t.root) }

func countNodes(n *treeNode) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}

// String renders the tree for debugging.
func (t *DecisionTree) String() string {
	var b strings.Builder
	var walk func(n *treeNode, indent string)
	walk = func(n *treeNode, indent string) {
		if n.leaf {
			fmt.Fprintf(&b, "%s=> class %d\n", indent, n.class)
			return
		}
		fmt.Fprintf(&b, "%sx[%d] <= %.4g?\n", indent, n.feature, n.threshold)
		walk(n.left, indent+"  ")
		walk(n.right, indent+"  ")
	}
	walk(t.root, "")
	return b.String()
}
