package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeans clusters feature vectors with Lloyd's algorithm — the paper lists
// "clustering" among the analysis techniques the pervasive grid must run
// over sensor data (e.g. grouping target tracks or contamination sites).
type KMeans struct {
	K int
	// Centroids after Fit, one row per cluster.
	Centroids [][]float64
	// Iterations actually performed by Fit.
	Iterations int
}

// FitKMeans clusters X into k groups. The seed makes initialisation
// reproducible (k-means++ style seeding). maxIter bounds Lloyd iterations
// (default 100).
func FitKMeans(X [][]float64, k int, seed int64, maxIter int) (*KMeans, error) {
	if len(X) == 0 {
		return nil, ErrEmpty
	}
	if k < 1 || k > len(X) {
		return nil, fmt.Errorf("ml: k=%d outside [1,%d]", k, len(X))
	}
	w := len(X[0])
	for i, row := range X {
		if len(row) != w {
			return nil, fmt.Errorf("ml: row %d width %d != %d", i, len(row), w)
		}
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	rng := rand.New(rand.NewSource(seed))

	dist2 := func(a, b []float64) float64 {
		d := 0.0
		for j := range a {
			diff := a[j] - b[j]
			d += diff * diff
		}
		return d
	}

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, append([]float64(nil), X[rng.Intn(len(X))]...))
	for len(centroids) < k {
		weights := make([]float64, len(X))
		total := 0.0
		for i, row := range X {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := dist2(row, c); d < best {
					best = d
				}
			}
			weights[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), X[rng.Intn(len(X))]...))
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		pick := len(X) - 1
		for i, wgt := range weights {
			acc += wgt
			if acc >= r {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), X[pick]...))
	}

	km := &KMeans{K: k, Centroids: centroids}
	assign := make([]int, len(X))
	for iter := 0; iter < maxIter; iter++ {
		km.Iterations = iter + 1
		changed := false
		for i, row := range X {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := dist2(row, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, w)
		}
		for i, row := range X {
			c := assign[i]
			counts[c]++
			for j, v := range row {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // keep the old centroid for empty clusters
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	return km, nil
}

// Assign returns the nearest centroid's index for x.
func (km *KMeans) Assign(x []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range km.Centroids {
		d := 0.0
		for j := range cent {
			if j < len(x) {
				diff := x[j] - cent[j]
				d += diff * diff
			}
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Inertia is the summed squared distance of X to assigned centroids — the
// quantity Lloyd's algorithm descends.
func (km *KMeans) Inertia(X [][]float64) float64 {
	total := 0.0
	for _, row := range X {
		c := km.Centroids[km.Assign(row)]
		for j := range c {
			if j < len(row) {
				d := row[j] - c[j]
				total += d * d
			}
		}
	}
	return total
}
