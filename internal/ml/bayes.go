package ml

import (
	"fmt"
	"math"
)

// NaiveBayes is a Gaussian naive-Bayes classifier with probabilistic
// output — the "predictive scoring" technique the paper lists: it scores
// how likely a case belongs to each class rather than only naming one.
type NaiveBayes struct {
	classes []int
	prior   map[int]float64
	mean    map[int][]float64
	vari    map[int][]float64
	width   int
}

// TrainNaiveBayes fits per-class Gaussian feature models.
func TrainNaiveBayes(d Dataset) (*NaiveBayes, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	nb := &NaiveBayes{
		prior: map[int]float64{},
		mean:  map[int][]float64{},
		vari:  map[int][]float64{},
		width: len(d.X[0]),
	}
	counts := map[int]int{}
	for i, row := range d.X {
		y := d.Y[i]
		if _, ok := nb.mean[y]; !ok {
			nb.classes = append(nb.classes, y)
			nb.mean[y] = make([]float64, nb.width)
			nb.vari[y] = make([]float64, nb.width)
		}
		counts[y]++
		for j, v := range row {
			nb.mean[y][j] += v
		}
	}
	for y, c := range counts {
		nb.prior[y] = float64(c) / float64(d.Len())
		for j := range nb.mean[y] {
			nb.mean[y][j] /= float64(c)
		}
	}
	for i, row := range d.X {
		y := d.Y[i]
		for j, v := range row {
			dd := v - nb.mean[y][j]
			nb.vari[y][j] += dd * dd
		}
	}
	for y, c := range counts {
		for j := range nb.vari[y] {
			nb.vari[y][j] = nb.vari[y][j]/float64(c) + 1e-6 // variance floor
		}
	}
	// Deterministic class order.
	for i := 1; i < len(nb.classes); i++ {
		for j := i; j > 0 && nb.classes[j] < nb.classes[j-1]; j-- {
			nb.classes[j], nb.classes[j-1] = nb.classes[j-1], nb.classes[j]
		}
	}
	return nb, nil
}

// logLikelihood computes log P(x | class) + log prior.
func (nb *NaiveBayes) logLikelihood(y int, x []float64) float64 {
	ll := math.Log(nb.prior[y])
	for j := 0; j < nb.width && j < len(x); j++ {
		m, v := nb.mean[y][j], nb.vari[y][j]
		d := x[j] - m
		ll += -0.5*math.Log(2*math.Pi*v) - d*d/(2*v)
	}
	return ll
}

// Score returns the posterior probability per class (normalised).
func (nb *NaiveBayes) Score(x []float64) (map[int]float64, error) {
	if len(nb.classes) == 0 {
		return nil, fmt.Errorf("ml: naive bayes not trained")
	}
	lls := make([]float64, len(nb.classes))
	maxLL := math.Inf(-1)
	for i, y := range nb.classes {
		lls[i] = nb.logLikelihood(y, x)
		if lls[i] > maxLL {
			maxLL = lls[i]
		}
	}
	out := map[int]float64{}
	total := 0.0
	for i, y := range nb.classes {
		p := math.Exp(lls[i] - maxLL)
		out[y] = p
		total += p
	}
	for y := range out {
		out[y] /= total
	}
	return out, nil
}

// Predict names the most probable class.
func (nb *NaiveBayes) Predict(x []float64) int {
	best, bestLL := 0, math.Inf(-1)
	for _, y := range nb.classes {
		if ll := nb.logLikelihood(y, x); ll > bestLL {
			best, bestLL = y, ll
		}
	}
	return best
}
