package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDatasetValidate(t *testing.T) {
	var d Dataset
	if err := d.Validate(); err != ErrEmpty {
		t.Fatalf("empty validate = %v, want ErrEmpty", err)
	}
	d.Add([]float64{1, 2}, 0)
	d.Add([]float64{3, 4}, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d.X = append(d.X, []float64{5}) // ragged
	d.Y = append(d.Y, 0)
	if err := d.Validate(); err == nil {
		t.Fatal("ragged dataset should fail validation")
	}
	var nan Dataset
	nan.Add([]float64{math.NaN()}, 0)
	if err := nan.Validate(); err == nil {
		t.Fatal("NaN feature should fail validation")
	}
}

func TestDatasetClasses(t *testing.T) {
	var d Dataset
	for _, y := range []int{3, 1, 3, 2, 1} {
		d.Add([]float64{0}, y)
	}
	got := d.Classes()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("classes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("classes = %v, want %v", got, want)
		}
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{0, 100}, {10, 300}, {20, 500}}
	s, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	z := s.Transform([]float64{10, 300})
	if math.Abs(z[0]) > 1e-9 || math.Abs(z[1]) > 1e-9 {
		t.Fatalf("mean point should map to ~0, got %v", z)
	}
	// Constant feature must not divide by zero.
	s2, err := FitScaler([][]float64{{5}, {5}})
	if err != nil {
		t.Fatal(err)
	}
	if v := s2.Transform([]float64{5})[0]; v != 0 {
		t.Fatalf("constant feature transform = %v, want 0", v)
	}
}

// xorDataset is not linearly separable: a depth-2 tree must learn it.
func xorDataset() Dataset {
	var d Dataset
	for i := 0; i < 40; i++ {
		a, b := float64(i%2), float64((i/2)%2)
		label := 0
		if a != b {
			label = 1
		}
		d.Add([]float64{a, b}, label)
	}
	return d
}

func TestTreeLearnsXOR(t *testing.T) {
	d := xorDataset()
	tree, err := TrainTree(d, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tree.Predict, d); acc != 1.0 {
		t.Fatalf("XOR accuracy = %v, want 1.0", acc)
	}
	if tree.Depth() < 2 {
		t.Fatalf("XOR needs depth >= 2, got %d", tree.Depth())
	}
}

func TestTreePureLeaf(t *testing.T) {
	var d Dataset
	for i := 0; i < 10; i++ {
		d.Add([]float64{float64(i)}, 7)
	}
	tree, err := TrainTree(d, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() != 1 {
		t.Fatalf("pure dataset should give a single leaf, got %d nodes", tree.Nodes())
	}
	if tree.Predict([]float64{99}) != 7 {
		t.Fatal("pure tree should always predict the one class")
	}
}

func TestTreeMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var d Dataset
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y := 0
		if x[0]+x[1]*2+x[2]*3 > 3 {
			y = 1
		}
		d.Add(x, y)
	}
	shallow, err := TrainTree(d, TreeConfig{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Depth() > 2 {
		t.Fatalf("depth = %d exceeds MaxDepth 2", shallow.Depth())
	}
	deep, err := TrainTree(d, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if Accuracy(deep.Predict, d) < Accuracy(shallow.Predict, d) {
		t.Fatal("unbounded tree should fit training data at least as well")
	}
}

func TestTreeMinLeaf(t *testing.T) {
	d := xorDataset()
	tree, err := TrainTree(d, TreeConfig{MinLeaf: 30})
	if err != nil {
		t.Fatal(err)
	}
	// With MinLeaf 30 of 40 samples, no split is possible.
	if tree.Nodes() != 1 {
		t.Fatalf("nodes = %d, want 1 (MinLeaf forbids splits)", tree.Nodes())
	}
}

func TestTreeEmptyFails(t *testing.T) {
	if _, err := TrainTree(Dataset{}, TreeConfig{}); err == nil {
		t.Fatal("training on empty dataset should fail")
	}
}

func TestTreeGeneralises(t *testing.T) {
	// Train/test split on a noisy threshold concept.
	rng := rand.New(rand.NewSource(11))
	var train, test Dataset
	gen := func(d *Dataset, n int) {
		for i := 0; i < n; i++ {
			x := []float64{rng.Float64() * 10, rng.Float64() * 10}
			y := 0
			if x[0] > 5 {
				y = 1
			}
			d.Add(x, y)
		}
	}
	gen(&train, 300)
	gen(&test, 100)
	tree, err := TrainTree(train, TreeConfig{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tree.Predict, test); acc < 0.95 {
		t.Fatalf("held-out accuracy = %v, want >= 0.95", acc)
	}
}

func TestTreeString(t *testing.T) {
	tree, err := TrainTree(xorDataset(), TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := tree.String()
	if s == "" {
		t.Fatal("String should render the tree")
	}
}

func TestKNNClassifier(t *testing.T) {
	c := NewKNNClassifier(3)
	if _, err := c.Predict([]float64{0}); err != ErrEmpty {
		t.Fatalf("empty predict err = %v, want ErrEmpty", err)
	}
	// Two well-separated clusters.
	for i := 0; i < 20; i++ {
		c.Add([]float64{float64(i%5) * 0.1, 0}, 0)
		c.Add([]float64{float64(i%5)*0.1 + 10, 0}, 1)
	}
	if y, _ := c.Predict([]float64{0.2, 0}); y != 0 {
		t.Fatalf("near cluster 0 predicted %d", y)
	}
	if y, _ := c.Predict([]float64{10.2, 0}); y != 1 {
		t.Fatalf("near cluster 1 predicted %d", y)
	}
}

func TestKNNScaleInvariance(t *testing.T) {
	// Feature 1 has a huge scale but carries no signal; standardisation
	// must keep feature 0 decisive.
	c := NewKNNClassifier(3)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		noise := rng.Float64() * 1e6
		if i%2 == 0 {
			c.Add([]float64{1, noise}, 0)
		} else {
			c.Add([]float64{2, noise}, 1)
		}
	}
	hits := 0
	for i := 0; i < 50; i++ {
		noise := rng.Float64() * 1e6
		want := i % 2
		x := []float64{1 + float64(want), noise}
		if y, _ := c.Predict(x); y == want {
			hits++
		}
	}
	if hits < 40 {
		t.Fatalf("scale-invariant accuracy = %d/50, want >= 40", hits)
	}
}

func TestKNNDefaultK(t *testing.T) {
	if NewKNNClassifier(0).K != 3 || NewKNNRegressor(-1).K != 3 {
		t.Fatal("non-positive k should default to 3")
	}
}

func TestKNNRegressor(t *testing.T) {
	r := NewKNNRegressor(3)
	if _, err := r.Predict([]float64{0}); err != ErrEmpty {
		t.Fatal("empty regressor should error")
	}
	for i := 0; i < 50; i++ {
		x := float64(i) / 10
		r.Add([]float64{x}, 3*x+1)
	}
	got, err := r.Predict([]float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-8.5) > 0.5 {
		t.Fatalf("regression at 2.5 = %v, want ~8.5", got)
	}
	// NaN targets are ignored.
	n := r.Len()
	r.Add([]float64{1}, math.NaN())
	if r.Len() != n {
		t.Fatal("NaN target should be rejected")
	}
}

// Property: the tree always predicts a label that occurs in training data.
func TestPropertyTreePredictsSeenLabel(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		var d Dataset
		for i := 0; i+1 < len(raw); i += 2 {
			d.Add([]float64{float64(raw[i])}, int(raw[i+1])%4)
		}
		tree, err := TrainTree(d, TreeConfig{})
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, y := range d.Y {
			seen[y] = true
		}
		for v := 0; v < 256; v += 7 {
			if !seen[tree.Predict([]float64{float64(v)})] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: training accuracy of an unbounded tree on distinct feature
// vectors is perfect.
func TestPropertyTreeFitsDistinctPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		var d Dataset
		used := map[float64]bool{}
		for i := 0; i < 50; i++ {
			x := math.Floor(rng.Float64() * 1e6)
			if used[x] {
				continue
			}
			used[x] = true
			d.Add([]float64{x}, rng.Intn(3))
		}
		tree, err := TrainTree(d, TreeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if acc := Accuracy(tree.Predict, d); acc != 1.0 {
			t.Fatalf("trial %d: accuracy on distinct points = %v, want 1.0", trial, acc)
		}
	}
}

func BenchmarkTreeTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var d Dataset
	for i := 0; i < 500; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		y := 0
		if x[0]+x[1] > x[2]+x[3] {
			y = 1
		}
		d.Add(x, y)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainTree(d, TreeConfig{MaxDepth: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	c := NewKNNClassifier(5)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		c.Add([]float64{rng.Float64(), rng.Float64()}, i%3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Predict([]float64{0.5, 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}
