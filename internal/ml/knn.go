package ml

import (
	"fmt"
	"math"
	"sort"
)

// KNNClassifier is a lazy k-nearest-neighbour classifier over standardised
// features. It supports online growth (Add), which is what the paper's
// adaptive decision maker needs: every completed query execution becomes a
// new training point.
type KNNClassifier struct {
	K int

	data   Dataset
	scaler *Scaler
	dirty  bool
}

// NewKNNClassifier builds an empty classifier; k defaults to 3 when
// non-positive.
func NewKNNClassifier(k int) *KNNClassifier {
	if k <= 0 {
		k = 3
	}
	return &KNNClassifier{K: k}
}

// Add inserts a training sample.
func (c *KNNClassifier) Add(x []float64, y int) {
	c.data.Add(x, y)
	c.dirty = true
}

// Len reports the training-set size.
func (c *KNNClassifier) Len() int { return c.data.Len() }

func (c *KNNClassifier) refit() {
	if !c.dirty {
		return
	}
	s, err := FitScaler(c.data.X)
	if err == nil {
		c.scaler = s
	}
	c.dirty = false
}

type neighbour struct {
	dist float64
	y    int
}

func (c *KNNClassifier) neighbours(x []float64) []neighbour {
	c.refit()
	q := x
	if c.scaler != nil {
		q = c.scaler.Transform(x)
	}
	ns := make([]neighbour, 0, c.data.Len())
	for i, row := range c.data.X {
		r := row
		if c.scaler != nil {
			r = c.scaler.Transform(row)
		}
		d := 0.0
		for j := range q {
			if j < len(r) {
				diff := q[j] - r[j]
				d += diff * diff
			}
		}
		ns = append(ns, neighbour{dist: d, y: c.data.Y[i]})
	}
	sort.Slice(ns, func(a, b int) bool { return ns[a].dist < ns[b].dist })
	return ns
}

// Predict returns the majority label among the k nearest training samples.
// It returns an error when no samples have been added.
func (c *KNNClassifier) Predict(x []float64) (int, error) {
	if c.data.Len() == 0 {
		return 0, ErrEmpty
	}
	ns := c.neighbours(x)
	k := c.K
	if k > len(ns) {
		k = len(ns)
	}
	votes := map[int]float64{}
	for _, n := range ns[:k] {
		w := 1.0 / (1e-9 + n.dist) // distance-weighted vote
		votes[n.y] += w
	}
	best, bestV := 0, math.Inf(-1)
	for y, v := range votes {
		if v > bestV || (v == bestV && y < best) {
			best, bestV = y, v
		}
	}
	return best, nil
}

// KNNRegressor predicts a continuous target as the distance-weighted mean
// of the k nearest training targets. The decision maker uses it to
// calibrate cost estimates against measured executions.
type KNNRegressor struct {
	K int

	X      [][]float64
	Y      []float64
	scaler *Scaler
	dirty  bool
}

// NewKNNRegressor builds an empty regressor; k defaults to 3.
func NewKNNRegressor(k int) *KNNRegressor {
	if k <= 0 {
		k = 3
	}
	return &KNNRegressor{K: k}
}

// Add inserts a training sample.
func (r *KNNRegressor) Add(x []float64, y float64) {
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return
	}
	r.X = append(r.X, append([]float64(nil), x...))
	r.Y = append(r.Y, y)
	r.dirty = true
}

// Len reports the training-set size.
func (r *KNNRegressor) Len() int { return len(r.X) }

// Predict estimates the target at x; it errors on an empty training set.
func (r *KNNRegressor) Predict(x []float64) (float64, error) {
	if len(r.X) == 0 {
		return 0, ErrEmpty
	}
	if r.dirty {
		if s, err := FitScaler(r.X); err == nil {
			r.scaler = s
		}
		r.dirty = false
	}
	q := x
	if r.scaler != nil {
		q = r.scaler.Transform(x)
	}
	type nd struct {
		d float64
		y float64
	}
	ns := make([]nd, 0, len(r.X))
	for i, row := range r.X {
		rr := row
		if r.scaler != nil {
			rr = r.scaler.Transform(row)
		}
		d := 0.0
		for j := range q {
			if j < len(rr) {
				diff := q[j] - rr[j]
				d += diff * diff
			}
		}
		ns = append(ns, nd{d: d, y: r.Y[i]})
	}
	sort.Slice(ns, func(a, b int) bool { return ns[a].d < ns[b].d })
	k := r.K
	if k > len(ns) {
		k = len(ns)
	}
	num, den := 0.0, 0.0
	for _, n := range ns[:k] {
		w := 1.0 / (1e-9 + n.d)
		num += w * n.y
		den += w
	}
	if den == 0 {
		return 0, fmt.Errorf("ml: degenerate weights in knn regression")
	}
	return num / den, nil
}
