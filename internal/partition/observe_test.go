package partition

import (
	"testing"

	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/query"
)

func TestApplyObservedCorrectsTransport(t *testing.T) {
	p := DefaultPlatform()
	o := ObservedTransport{AvgDeliverSec: 0.01, DropRate: 0.2}
	c := ApplyObserved(p, o)
	if c.Net.HopDelay != 0.01 {
		t.Fatalf("HopDelay = %v, want 0.01", c.Net.HopDelay)
	}
	if want := p.Net.BandwidthBps * 0.8; c.Net.BandwidthBps != want {
		t.Fatalf("BandwidthBps = %v, want %v", c.Net.BandwidthBps, want)
	}
	// Out-of-range measurements leave the platform untouched.
	same := ApplyObserved(p, ObservedTransport{AvgDeliverSec: -1, DropRate: 1.5})
	if same.Net.HopDelay != p.Net.HopDelay || same.Net.BandwidthBps != p.Net.BandwidthBps {
		t.Fatalf("invalid observation should be ignored: %+v", same.Net)
	}
}

func TestCorrectTransportRaisesHopHeavyEstimates(t *testing.T) {
	dm := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	f := Features{Base: query.Aggregate, Selected: 100, AvgDepth: 6, MaxDepth: 10}
	before := dm.Est.Estimate(ModelTree, f)
	dm.CorrectTransport(ObservedTransport{AvgDeliverSec: 0.02, DropRate: 0.1})
	after := dm.Est.Estimate(ModelTree, f)
	if after.TimeSec <= before.TimeSec {
		t.Fatalf("10x hop delay should raise tree latency: before %v, after %v",
			before.TimeSec, after.TimeSec)
	}
	if after.EnergyJ < before.EnergyJ {
		t.Fatalf("bandwidth derate should not lower energy: before %v, after %v",
			before.EnergyJ, after.EnergyJ)
	}
}

func TestCorrectTransportFlipsBoundaryDecision(t *testing.T) {
	f := Features{Base: query.Aggregate, Selected: 40, AvgDepth: 4, MaxDepth: 6}
	dm := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	before, err := dm.Choose(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	dm.CorrectTransport(ObservedTransport{AvgDeliverSec: 0.012, DropRate: 0.05})
	after, err := dm.Choose(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if before.Model == after.Model {
		t.Fatalf("boundary decision should flip under 6x hop cost: %s both times", before.Model)
	}
}

func TestObservedFromSnapshotPrefersProbeRTT(t *testing.T) {
	reg := obs.NewRegistry()
	for i := 0; i < 20; i++ {
		reg.Histogram(SeriesTransportRTT).Observe(0.010)
		reg.Histogram(SeriesDeliverLatency).Observe(0.001)
	}
	reg.Counter(SeriesTransportProbeSent).Add(20)
	reg.Counter(SeriesTransportProbeLost).Add(5)

	o := ObservedFromSnapshot(reg.Snapshot())
	if o.AvgDeliverSec < 0.005 || o.AvgDeliverSec > 0.02 {
		t.Fatalf("latency should come from the probe RTT p50, got %v", o.AvgDeliverSec)
	}
	if o.DropRate != 0.25 {
		t.Fatalf("DropRate = %v, want 0.25", o.DropRate)
	}
}

func TestObservedFromSnapshotFallsBackToDeliverLatency(t *testing.T) {
	reg := obs.NewRegistry()
	for i := 0; i < 20; i++ {
		reg.Histogram(SeriesDeliverLatency).Observe(0.004)
	}
	o := ObservedFromSnapshot(reg.Snapshot())
	if o.AvgDeliverSec <= 0 || o.AvgDeliverSec > 0.01 {
		t.Fatalf("latency should fall back to deliver p50, got %v", o.AvgDeliverSec)
	}
	if o.DropRate != 0 {
		t.Fatalf("no probes sent: DropRate = %v, want 0", o.DropRate)
	}
}

func TestObservedFromSnapshotEmptyMeansKeepConfigured(t *testing.T) {
	o := ObservedFromSnapshot(obs.Snapshot{})
	if o.AvgDeliverSec != 0 || o.DropRate != 0 {
		t.Fatalf("empty snapshot must leave zeros (keep configured): %+v", o)
	}
	// And ApplyObserved on zeros must not touch the platform.
	p := DefaultPlatform()
	c := ApplyObserved(p, o)
	if c.Net.HopDelay != p.Net.HopDelay || c.Net.BandwidthBps != p.Net.BandwidthBps {
		t.Fatalf("zero observation changed transport: %+v vs %+v", c.Net, p.Net)
	}
}
