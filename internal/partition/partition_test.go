package partition

import (
	"math/rand"
	"testing"

	"pervasivegrid/internal/pde"
	"pervasivegrid/internal/query"
)

func testFeatures(base query.Type, n int, ops float64) Features {
	return Features{Base: base, Selected: n, AvgDepth: 3, MaxDepth: 5, ComputeOps: ops}
}

func TestModelsAndStrings(t *testing.T) {
	if len(Models()) != 4 {
		t.Fatal("expected 4 solution models")
	}
	for _, m := range Models() {
		if m.String() == "" {
			t.Fatal("model should have a name")
		}
	}
	if Model(99).String() == "" {
		t.Fatal("unknown model should format")
	}
}

func TestTreeCheaperThanDirectForAggregates(t *testing.T) {
	e := NewEstimator(DefaultPlatform())
	f := testFeatures(query.Aggregate, 100, 0)
	direct := e.Estimate(ModelDirect, f)
	tree := e.Estimate(ModelTree, f)
	if !direct.Feasible || !tree.Feasible {
		t.Fatal("both models should be feasible for aggregates")
	}
	if tree.EnergyJ >= direct.EnergyJ {
		t.Fatalf("tree energy %g should beat direct %g", tree.EnergyJ, direct.EnergyJ)
	}
	if tree.Bytes >= direct.Bytes {
		t.Fatalf("tree bytes %d should beat direct %d", tree.Bytes, direct.Bytes)
	}
}

func TestComplexInfeasibleInNetwork(t *testing.T) {
	e := NewEstimator(DefaultPlatform())
	f := testFeatures(query.Complex, 100, pde.EstimateJacobiOps(64, 64, 1e-6))
	if e.Estimate(ModelTree, f).Feasible {
		t.Fatal("PDE solve must not be feasible as tree aggregation")
	}
	if e.Estimate(ModelCluster, f).Feasible {
		t.Fatal("PDE solve must not be feasible at cluster heads")
	}
	if !e.Estimate(ModelGrid, f).Feasible || !e.Estimate(ModelDirect, f).Feasible {
		t.Fatal("grid and base-station execution must remain feasible")
	}
}

func TestGridWinsForHeavyCompute(t *testing.T) {
	e := NewEstimator(DefaultPlatform())
	heavy := testFeatures(query.Complex, 50, 1e10)
	grid := e.Estimate(ModelGrid, heavy)
	direct := e.Estimate(ModelDirect, heavy)
	if grid.TimeSec >= direct.TimeSec {
		t.Fatalf("grid time %g should beat base-station time %g for 1e10 ops", grid.TimeSec, direct.TimeSec)
	}
	// And for trivial compute the transfer overhead makes grid slower.
	light := testFeatures(query.Simple, 5, 0)
	gridL := e.Estimate(ModelGrid, light)
	directL := e.Estimate(ModelDirect, light)
	if gridL.TimeSec <= directL.TimeSec {
		t.Fatalf("grid time %g should lose to base station %g with no compute", gridL.TimeSec, directL.TimeSec)
	}
}

func TestCrossoverExists(t *testing.T) {
	// Sweep compute ops: there must be a point where grid overtakes the
	// base station — the dynamic-partitioning motivation.
	e := NewEstimator(DefaultPlatform())
	prevWinner := ""
	flips := 0
	for _, ops := range []float64{0, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11} {
		f := testFeatures(query.Complex, 50, ops)
		grid := e.Estimate(ModelGrid, f)
		direct := e.Estimate(ModelDirect, f)
		w := "direct"
		if grid.TimeSec < direct.TimeSec {
			w = "grid"
		}
		if prevWinner != "" && w != prevWinner {
			flips++
		}
		prevWinner = w
	}
	if flips != 1 {
		t.Fatalf("expected exactly one crossover, got %d flips", flips)
	}
}

func TestEstimateAllOrder(t *testing.T) {
	e := NewEstimator(DefaultPlatform())
	all := e.EstimateAll(testFeatures(query.Aggregate, 10, 0))
	if len(all) != 4 {
		t.Fatalf("estimates = %d", len(all))
	}
	for i, m := range Models() {
		if all[i].Model != m {
			t.Fatalf("order mismatch at %d", i)
		}
	}
}

func TestChooseRespectsCostClause(t *testing.T) {
	d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	f := testFeatures(query.Aggregate, 100, 0)

	// Tight energy budget (5 mJ): only in-network aggregation fits.
	qEnergy, err := query.Parse("SELECT avg(temp) FROM sensors COST energy 0.005")
	if err != nil {
		t.Fatal(err)
	}
	dec, err := d.Choose(qEnergy, f)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Model != ModelTree && dec.Model != ModelCluster {
		t.Fatalf("energy-bounded choice = %v, want in-network aggregation", dec.Model)
	}

	// Impossible budget: error.
	qImpossible, _ := query.Parse("SELECT avg(temp) FROM sensors COST energy 0.0000000001")
	if _, err := d.Choose(qImpossible, f); err == nil {
		t.Fatal("impossible cost limit should error")
	}
}

func TestChooseComplexGoesToGridOrBase(t *testing.T) {
	d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	q, _ := query.Parse("SELECT tempdist(temp) FROM sensors")
	f := testFeatures(query.Complex, 100, 1e10)
	dec, err := d.Choose(q, f)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Model != ModelGrid && dec.Model != ModelDirect {
		t.Fatalf("complex query chose %v", dec.Model)
	}
	if len(dec.Infeasible) < 2 {
		t.Fatalf("tree and cluster should be infeasible: %v", dec.Infeasible)
	}
}

func TestChooseDefaultObjectivePrefersTreeForAggregates(t *testing.T) {
	d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	q, _ := query.Parse("SELECT avg(temp) FROM sensors")
	dec, err := d.Choose(q, testFeatures(query.Aggregate, 200, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Model == ModelDirect || dec.Model == ModelGrid {
		t.Fatalf("aggregate over 200 sensors chose %v; in-network should win", dec.Model)
	}
}

func TestCalibrationAdjustsEstimates(t *testing.T) {
	d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	f := testFeatures(query.Aggregate, 50, 0)
	raw := d.Est.Estimate(ModelTree, f)
	// Report that the real network costs 3x the analytic energy.
	for i := 0; i < 5; i++ {
		d.Observe(f, ModelTree, Measured{EnergyJ: raw.EnergyJ * 3, TimeSec: raw.TimeSec})
	}
	cal := d.calibrated(ModelTree, f)
	if cal.EnergyJ < raw.EnergyJ*2 {
		t.Fatalf("calibration did not absorb the 3x ratio: %g vs raw %g", cal.EnergyJ, raw.EnergyJ)
	}
}

func TestLearnedSelectorTakesOver(t *testing.T) {
	d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	d.MinEvidence = 5
	f := testFeatures(query.Aggregate, 80, 0)
	// Teach that cluster is the winner for exactly these features (say
	// the analytic model is wrong for this deployment).
	for i := 0; i < 6; i++ {
		d.ObserveBest(f, ModelCluster)
	}
	q, _ := query.Parse("SELECT avg(temp) FROM sensors")
	dec, err := d.Choose(q, f)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Learned {
		t.Fatal("selector should be trusted after MinEvidence observations")
	}
	if dec.Model != ModelCluster {
		t.Fatalf("learned choice = %v, want cluster", dec.Model)
	}
}

func TestLearnedSelectorRespectsFeasibility(t *testing.T) {
	d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	d.MinEvidence = 3
	f := testFeatures(query.Complex, 50, 1e10)
	// Maliciously teach an infeasible model; Choose must ignore it.
	for i := 0; i < 4; i++ {
		d.ObserveBest(f, ModelTree)
	}
	q, _ := query.Parse("SELECT tempdist(temp) FROM sensors")
	dec, err := d.Choose(q, f)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Model == ModelTree {
		t.Fatal("learned vote for an infeasible model must be overridden")
	}
}

func TestObserveIgnoresInvalidModel(t *testing.T) {
	d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	d.Observe(testFeatures(query.Simple, 1, 0), Model(-1), Measured{})
	d.ObserveBest(testFeatures(query.Simple, 1, 0), Model(99))
	if d.Observations() != 0 {
		t.Fatal("invalid observations should be ignored")
	}
}

func TestAdaptationImprovesSelection(t *testing.T) {
	// Simulated world where the analytic model misjudges: cluster is
	// secretly best for mid-size aggregates. After feedback, the
	// decision maker should pick cluster for similar queries.
	rng := rand.New(rand.NewSource(4))
	d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	d.MinEvidence = 10
	q, _ := query.Parse("SELECT avg(temp) FROM sensors")

	train := func() Features {
		return Features{
			Base: query.Aggregate, Selected: 60 + rng.Intn(40),
			AvgDepth: 2 + rng.Float64()*2, MaxDepth: 5,
		}
	}
	for i := 0; i < 20; i++ {
		d.ObserveBest(train(), ModelCluster)
	}
	hits := 0
	for i := 0; i < 20; i++ {
		dec, err := d.Choose(q, train())
		if err != nil {
			t.Fatal(err)
		}
		if dec.Model == ModelCluster {
			hits++
		}
	}
	if hits < 16 {
		t.Fatalf("after training, cluster chosen %d/20 times", hits)
	}
}

func TestFeatureVectorStable(t *testing.T) {
	f := testFeatures(query.Complex, 10, 1e6)
	v := f.Vector()
	if len(v) != 5 {
		t.Fatalf("feature width = %d", len(v))
	}
	f2 := f
	f2.Epoch = 10
	if f.Vector()[4] == f2.Vector()[4] {
		t.Fatal("continuity flag should differ")
	}
}

func TestTreeSelectorLearnsLikeKNN(t *testing.T) {
	// Both selector kinds must recover a policy the analytic model gets
	// wrong.
	rng := rand.New(rand.NewSource(8))
	q, _ := query.Parse("SELECT avg(temp) FROM sensors")
	train := func() Features {
		return Features{
			Base: query.Aggregate, Selected: 60 + rng.Intn(40),
			AvgDepth: 2 + rng.Float64()*2, MaxDepth: 5,
		}
	}
	for _, kind := range []SelectorKind{SelectorKNN, SelectorTree} {
		d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
		d.Selector = kind
		d.MinEvidence = 10
		for i := 0; i < 30; i++ {
			d.ObserveBest(train(), ModelCluster)
		}
		hits := 0
		for i := 0; i < 20; i++ {
			dec, err := d.Choose(q, train())
			if err != nil {
				t.Fatal(err)
			}
			if dec.Model == ModelCluster {
				hits++
			}
		}
		if hits < 16 {
			t.Fatalf("%v selector: cluster chosen %d/20", kind, hits)
		}
	}
	if SelectorKNN.String() != "knn" || SelectorTree.String() != "tree" {
		t.Fatal("selector names")
	}
}

func TestTreeSelectorRetrainsOnNewEvidence(t *testing.T) {
	d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	d.Selector = SelectorTree
	d.MinEvidence = 4
	f := testFeatures(query.Aggregate, 50, 0)
	q, _ := query.Parse("SELECT avg(temp) FROM sensors")
	for i := 0; i < 6; i++ {
		d.ObserveBest(f, ModelTree)
	}
	dec, err := d.Choose(q, f)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Model != ModelTree {
		t.Fatalf("first regime: %v", dec.Model)
	}
	// The world shifts: cluster becomes best. The tree must retrain.
	for i := 0; i < 30; i++ {
		d.ObserveBest(f, ModelCluster)
	}
	dec, err = d.Choose(q, f)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Model != ModelCluster {
		t.Fatalf("after shift: %v, want cluster", dec.Model)
	}
}

func TestExplorationVariesChoices(t *testing.T) {
	d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	d.Exploration = 0.5
	d.ExploreSeed = 9
	q, _ := query.Parse("SELECT avg(temp) FROM sensors")
	f := testFeatures(query.Aggregate, 100, 0)
	seen := map[Model]bool{}
	explored := 0
	for i := 0; i < 60; i++ {
		dec, err := d.Choose(q, f)
		if err != nil {
			t.Fatal(err)
		}
		seen[dec.Model] = true
		if dec.Explored {
			explored++
		}
	}
	if len(seen) < 3 {
		t.Fatalf("exploration visited only %d models", len(seen))
	}
	if explored < 15 || explored > 45 {
		t.Fatalf("explored %d/60 at epsilon 0.5", explored)
	}
}

func TestNoExplorationIsDeterministic(t *testing.T) {
	d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	q, _ := query.Parse("SELECT avg(temp) FROM sensors")
	f := testFeatures(query.Aggregate, 100, 0)
	first, err := d.Choose(q, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		dec, err := d.Choose(q, f)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Model != first.Model || dec.Explored {
			t.Fatal("epsilon 0 must be deterministic")
		}
	}
}

func TestExplorationRespectsFeasibility(t *testing.T) {
	d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	d.Exploration = 1.0 // always explore
	q, _ := query.Parse("SELECT tempdist(temp) FROM sensors")
	f := testFeatures(query.Complex, 100, 1e10)
	for i := 0; i < 40; i++ {
		dec, err := d.Choose(q, f)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Model == ModelTree || dec.Model == ModelCluster {
			t.Fatalf("explored into infeasible model %v", dec.Model)
		}
	}
}
