package partition

import (
	"fmt"
	"math"
	"math/rand"

	"pervasivegrid/internal/ml"
	"pervasivegrid/internal/query"
)

// Measured is the observed cost of an executed query round, fed back into
// the decision maker.
type Measured struct {
	EnergyJ float64
	TimeSec float64
}

// Objective weights the two costs when the query's COST clause does not
// pin one of them.
type Objective struct {
	// EnergyWeight and TimeWeight blend normalised energy and time.
	EnergyWeight, TimeWeight float64
}

// DefaultObjective favours energy slightly, reflecting the paper's
// "preserving the energy of the sensors is of prime importance".
func DefaultObjective() Objective { return Objective{EnergyWeight: 0.6, TimeWeight: 0.4} }

// Decision is the decision maker's answer for one query.
type Decision struct {
	Model Model
	// Estimates holds the (calibrated) per-model estimates considered.
	Estimates []Estimate
	// Learned is true when the k-NN selector made the call rather than
	// the analytic estimates alone.
	Learned bool
	// Explored is true when epsilon-greedy exploration overrode the
	// normal choice.
	Explored bool
	// Infeasible lists models ruled out by feasibility or the COST
	// clause.
	Infeasible []Model
}

// SelectorKind picks the learning technique behind the adaptive selector —
// the paper says only "standard machine learning techniques would be used",
// so both a lazy (k-NN) and an eager (decision-tree) learner are provided
// and compared in the E5 ablation.
type SelectorKind int

// Selector kinds.
const (
	// SelectorKNN votes with the k nearest past executions (default).
	SelectorKNN SelectorKind = iota
	// SelectorTree retrains a decision tree over past executions.
	SelectorTree
)

func (k SelectorKind) String() string {
	if k == SelectorTree {
		return "tree"
	}
	return "knn"
}

// DecisionMaker implements the adaptive selection loop: analytic estimates
// calibrated by per-model regressors, with a learned classifier over past
// executions taking over once it has seen enough evidence (the Pythia
// approach transplanted to query partitioning).
type DecisionMaker struct {
	Est *Estimator
	Obj Objective
	// MinEvidence is how many observations the learner needs before its
	// vote is trusted (default 8).
	MinEvidence int
	// Selector picks the learning technique (default k-NN).
	Selector SelectorKind
	// Exploration is an epsilon-greedy rate in [0, 1): with this
	// probability Choose picks a random feasible model instead of the
	// best-scoring one, so Observe gathers evidence about alternatives —
	// the online counterpart of the paper's offline simulation phase.
	Exploration float64
	// ExploreSeed makes exploration reproducible (0 = fixed default).
	ExploreSeed int64
	exploreRng  *rand.Rand

	selector *ml.KNNClassifier
	selData  ml.Dataset
	selTree  *ml.DecisionTree // lazily trained; nil when stale
	// calibration maps features -> measured/estimated ratios per model.
	energyCal [numModels]*ml.KNNRegressor
	timeCal   [numModels]*ml.KNNRegressor
	observed  int
}

// NewDecisionMaker builds a decision maker over an estimator.
func NewDecisionMaker(est *Estimator) *DecisionMaker {
	d := &DecisionMaker{
		Est: est, Obj: DefaultObjective(), MinEvidence: 8,
		selector: ml.NewKNNClassifier(3),
	}
	for i := 0; i < numModels; i++ {
		d.energyCal[i] = ml.NewKNNRegressor(3)
		d.timeCal[i] = ml.NewKNNRegressor(3)
	}
	return d
}

// calibrated returns the estimate with learned correction factors applied.
func (d *DecisionMaker) calibrated(m Model, f Features) Estimate {
	est := d.Est.Estimate(m, f)
	v := f.Vector()
	if r, err := d.energyCal[m].Predict(v); err == nil && r > 0 {
		est.EnergyJ *= r
	}
	if r, err := d.timeCal[m].Predict(v); err == nil && r > 0 {
		est.TimeSec *= r
	}
	return est
}

// Choose picks the solution model for a query with the given features. The
// query's COST clause acts as a hard constraint; remaining candidates are
// scored by the objective. An error is returned when no model is feasible
// within the cost limit.
func (d *DecisionMaker) Choose(q *query.Query, f Features) (Decision, error) {
	dec := Decision{}
	for _, m := range Models() {
		dec.Estimates = append(dec.Estimates, d.calibrated(m, f))
	}

	feasible := map[Model]Estimate{}
	for _, est := range dec.Estimates {
		ok := est.Feasible
		if ok && q != nil {
			switch q.CostMetric {
			case query.CostEnergy:
				ok = est.EnergyJ <= q.CostLimit
			case query.CostTime:
				ok = est.TimeSec <= q.CostLimit
			}
		}
		if ok {
			feasible[est.Model] = est
		} else {
			dec.Infeasible = append(dec.Infeasible, est.Model)
		}
	}
	if len(feasible) == 0 {
		return dec, fmt.Errorf("partition: no solution model satisfies %s within cost limit", q)
	}

	// Exploration layer: occasionally try a random feasible model so the
	// feedback loop sees alternatives it would otherwise never measure.
	if d.Exploration > 0 {
		if d.exploreRng == nil {
			seed := d.ExploreSeed
			if seed == 0 {
				seed = 42
			}
			d.exploreRng = rand.New(rand.NewSource(seed))
		}
		if d.exploreRng.Float64() < d.Exploration {
			options := make([]Model, 0, len(feasible))
			for _, m := range Models() {
				if _, ok := feasible[m]; ok {
					options = append(options, m)
				}
			}
			dec.Model = options[d.exploreRng.Intn(len(options))]
			dec.Explored = true
			return dec, nil
		}
	}

	// Learned layer: once enough executions are observed, let the
	// configured selector vote; its choice wins when feasible.
	if d.observed >= d.MinEvidence {
		if pred, ok := d.predictLearned(f); ok {
			if _, feas := feasible[pred]; feas {
				dec.Model = pred
				dec.Learned = true
				return dec, nil
			}
		}
	}

	// Analytic layer: optimise the query's pinned metric, or the blended
	// objective. Costs are normalised by the feasible pool's maxima so
	// the weights are scale-free.
	var maxE, maxT float64
	for _, est := range feasible {
		maxE = math.Max(maxE, est.EnergyJ)
		maxT = math.Max(maxT, est.TimeSec)
	}
	if maxE == 0 {
		maxE = 1
	}
	if maxT == 0 {
		maxT = 1
	}
	score := func(est Estimate) float64 {
		if q != nil {
			switch q.CostMetric {
			case query.CostEnergy:
				// Energy already constrained: minimise time.
				return est.TimeSec
			case query.CostTime:
				return est.EnergyJ
			}
		}
		return d.Obj.EnergyWeight*est.EnergyJ/maxE + d.Obj.TimeWeight*est.TimeSec/maxT
	}
	best := Model(-1)
	bestScore := math.Inf(1)
	for _, m := range Models() {
		est, ok := feasible[m]
		if !ok {
			continue
		}
		if s := score(est); s < bestScore {
			best, bestScore = m, s
		}
	}
	dec.Model = best
	return dec, nil
}

// Observe feeds a measured execution back: the calibration regressors learn
// the measured/estimated ratios, and the selector learns which model turned
// out cheapest for these features (the caller passes the model actually
// used and its measured cost; with Oracle-style training the caller can
// pass the best-known model).
func (d *DecisionMaker) Observe(f Features, m Model, meas Measured) {
	if m < 0 || int(m) >= numModels {
		return
	}
	raw := d.Est.Estimate(m, f)
	v := f.Vector()
	if raw.EnergyJ > 0 && meas.EnergyJ > 0 {
		d.energyCal[m].Add(v, meas.EnergyJ/raw.EnergyJ)
	}
	if raw.TimeSec > 0 && meas.TimeSec > 0 {
		d.timeCal[m].Add(v, meas.TimeSec/raw.TimeSec)
	}
	d.observed++
}

// ObserveBest additionally teaches the selector that model m was the best
// choice for features f (used when the caller can compare alternatives,
// e.g. during an exploration phase or offline simulation — the paper's
// "conduct simulations on these query types to generate data").
func (d *DecisionMaker) ObserveBest(f Features, m Model) {
	if m < 0 || int(m) >= numModels {
		return
	}
	d.selector.Add(f.Vector(), int(m))
	d.selData.Add(f.Vector(), int(m))
	d.selTree = nil // stale
	d.observed++
}

// predictLearned consults the configured selector.
func (d *DecisionMaker) predictLearned(f Features) (Model, bool) {
	switch d.Selector {
	case SelectorTree:
		if d.selTree == nil {
			if d.selData.Len() == 0 {
				return 0, false
			}
			t, err := ml.TrainTree(d.selData, ml.TreeConfig{MaxDepth: 8, MinLeaf: 2})
			if err != nil {
				return 0, false
			}
			d.selTree = t
		}
		return Model(d.selTree.Predict(f.Vector())), true
	default:
		pred, err := d.selector.Predict(f.Vector())
		if err != nil {
			return 0, false
		}
		return Model(pred), true
	}
}

// Observations reports how much evidence the decision maker has absorbed.
func (d *DecisionMaker) Observations() int { return d.observed }
