package partition

import "pervasivegrid/internal/obs"

// Observed-transport feedback: the platform's estimator is built from
// *configured* radio parameters (HopDelay, BandwidthBps), but a live
// deployment measures what delivery actually costs — the obs layer's
// agent_deliver_latency_seconds histogram and the dead-letter/fault
// accounting. Feeding those measurements back corrects every per-hop
// term of the analytic cost model at once, which is the paper's
// "comparing the estimates with the actual values" applied below the
// learned calibration layer: the learners fix per-(model, features)
// bias; this fixes the transport constants everything is computed from.

// ObservedTransport is a measured view of the messaging substrate.
type ObservedTransport struct {
	// AvgDeliverSec is the measured per-hop delivery latency in seconds
	// (e.g. the p50 of agent_deliver_latency_seconds, or a sensornet
	// measurement). Zero or negative leaves the configured HopDelay.
	AvgDeliverSec float64
	// DropRate is the measured fraction of envelopes lost in [0, 1).
	// Lost envelopes are paid for by retransmission, so the effective
	// bandwidth is derated by 1/(1-DropRate). Out-of-range values
	// leave the configured bandwidth.
	DropRate float64
}

// ApplyObserved returns a copy of the platform with its transport
// constants corrected from measurements.
func ApplyObserved(p Platform, o ObservedTransport) Platform {
	if o.AvgDeliverSec > 0 {
		p.Net.HopDelay = o.AvgDeliverSec
	}
	if o.DropRate > 0 && o.DropRate < 1 {
		p.Net.BandwidthBps *= 1 - o.DropRate
	}
	return p
}

// Metric series ObservedFromSnapshot understands. Nodes that probe their
// uplink (internal/telemetry.Prober) record the RTT histogram and the
// sent/lost counters; platforms always record the local deliver
// histogram, which serves as the fallback latency measurement.
const (
	SeriesTransportRTT       = "transport_rtt_seconds"
	SeriesTransportProbeSent = "transport_probe_sent_total"
	SeriesTransportProbeLost = "transport_probe_lost_total"
	SeriesDeliverLatency     = "agent_deliver_latency_seconds"
)

// ObservedFromSnapshot extracts a measured transport view from one
// node's metric snapshot — the bridge between the fleet telemetry plane
// (internal/telemetry merges per-node obs.Snapshots) and the decision
// maker. Latency prefers the uplink probe RTT p50 and falls back to the
// local deliver-latency p50; the drop rate is the probe loss ratio.
// Missing series leave the corresponding field zero, which ApplyObserved
// treats as "keep the configured constant".
func ObservedFromSnapshot(s obs.Snapshot) ObservedTransport {
	var o ObservedTransport
	if h, ok := s.Histograms[SeriesTransportRTT]; ok && h.Count > 0 {
		o.AvgDeliverSec = h.P50
	} else if h, ok := s.Histograms[SeriesDeliverLatency]; ok && h.Count > 0 {
		o.AvgDeliverSec = h.P50
	}
	if sent := s.Counters[SeriesTransportProbeSent]; sent > 0 {
		o.DropRate = s.Counters[SeriesTransportProbeLost] / sent
	}
	return o
}

// CorrectTransport rebuilds the decision maker's estimator from the
// measured transport, keeping everything it has learned (selector and
// calibration state are untouched — they correct residual bias on top
// of whatever analytic base they were trained against).
func (d *DecisionMaker) CorrectTransport(o ObservedTransport) {
	d.Est = NewEstimator(ApplyObserved(d.Est.P, o))
}
