// Package partition implements the paper's Decision Maker: for each query
// it estimates the computation, data transfer, energy consumption, and
// response time of every solution model — in-network aggregation (tree or
// cluster), delivering raw data to the base station/handheld, or moving the
// data to the grid — picks the model that best satisfies the query's COST
// clause, and adapts by folding measured executions back into learned
// calibration ("comparing the estimates ... with the actual values ... and
// the results would be incorporated into the learning technique").
package partition

import (
	"fmt"
	"math"

	"pervasivegrid/internal/query"
	"pervasivegrid/internal/sensornet"
)

// Model is a solution model from §4 of the paper.
type Model int

// Solution models.
const (
	// ModelDirect ships raw readings to the base station, which
	// computes.
	ModelDirect Model = iota
	// ModelTree aggregates in-network over a TAG-style tree.
	ModelTree
	// ModelCluster aggregates at cluster heads, then ships partials.
	ModelCluster
	// ModelGrid ships raw data through the base station to the grid and
	// computes there.
	ModelGrid
	numModels = 4
)

// Models lists all solution models.
func Models() []Model { return []Model{ModelDirect, ModelTree, ModelCluster, ModelGrid} }

func (m Model) String() string {
	switch m {
	case ModelDirect:
		return "direct"
	case ModelTree:
		return "tree"
	case ModelCluster:
		return "cluster"
	case ModelGrid:
		return "grid"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// Features summarises a (query, network, computation) instance for both the
// analytic cost model and the learners.
type Features struct {
	// Base is the query's base type (Simple/Aggregate/Complex).
	Base query.Type
	// Selected is the number of sensors the WHERE clause matches.
	Selected int
	// AvgDepth and MaxDepth describe the routing tree from the selected
	// sensors to the base station.
	AvgDepth, MaxDepth float64
	// ComputeOps is the work the query's function needs (0 for
	// simple/aggregate; the PDE estimate for complex queries).
	ComputeOps float64
	// Epoch is the continuous-query period (0 for one-shot).
	Epoch float64
}

// Vector encodes features for the learners.
func (f Features) Vector() []float64 {
	cont := 0.0
	if f.Epoch > 0 {
		cont = 1
	}
	return []float64{
		float64(f.Base),
		float64(f.Selected),
		f.AvgDepth,
		math.Log10(f.ComputeOps + 1),
		cont,
	}
}

// Platform describes the hardware the estimator reasons about.
type Platform struct {
	// Net parameterises the sensor network radios.
	Net sensornet.Config
	// BaseOpsPerSec is the base station / handheld compute rate.
	BaseOpsPerSec float64
	// SensorOpsPerSec is the per-node in-network compute rate.
	SensorOpsPerSec float64
	// GridLinkBps and GridLatencySec describe the base-to-grid pipe.
	GridLinkBps    float64
	GridLatencySec float64
	// GridOpsPerSec is the effective grid compute rate (parallel).
	GridOpsPerSec float64
	// ClusterHeadFraction mirrors the cluster strategy's head density.
	ClusterHeadFraction float64
}

// DefaultPlatform pairs the default sensor network with a handheld-class
// base station and a fast but far-away grid.
func DefaultPlatform() Platform {
	return Platform{
		Net:                 sensornet.DefaultConfig(),
		BaseOpsPerSec:       5e6,
		SensorOpsPerSec:     5e5,
		GridLinkBps:         2e6,
		GridLatencySec:      0.05,
		GridOpsPerSec:       5e9,
		ClusterHeadFraction: 0.1,
	}
}

// Estimate is the predicted cost of running a query under one model.
type Estimate struct {
	Model Model
	// EnergyJ is the sensor-network energy for one round.
	EnergyJ float64
	// TimeSec is the response time for one round.
	TimeSec float64
	// Bytes is the radio traffic for one round.
	Bytes int
	// Feasible is false when the model cannot run the query (e.g. a
	// PDE solve inside the sensor network at impossible scale).
	Feasible bool
}

// perHopSeconds is the modelled time to push payload one hop.
func (p Platform) perHopSeconds(payloadBytes int) float64 {
	return float64(payloadBytes+p.Net.HeaderBytes)*8/p.Net.BandwidthBps + p.Net.HopDelay
}

// hopEnergy is tx+rx energy for one hop at the configured radio range.
func (p Platform) hopEnergy(payloadBytes int) float64 {
	size := payloadBytes + p.Net.HeaderBytes
	r := p.Net.RadioRange
	return p.Net.Energy.TxCost(size, r) + p.Net.Energy.RxCost(size)
}

// Estimator produces analytic per-model estimates.
type Estimator struct {
	P Platform
}

// NewEstimator builds an estimator for a platform.
func NewEstimator(p Platform) *Estimator { return &Estimator{P: p} }

// Estimate predicts the cost of one round of the query under model m.
func (e *Estimator) Estimate(m Model, f Features) Estimate {
	p := e.P
	n := float64(f.Selected)
	if n < 1 {
		n = 1
	}
	avgD := math.Max(f.AvgDepth, 1)
	maxD := math.Max(f.MaxDepth, avgD)
	raw := sensornet.RawReadingBytes
	partial := sensornet.PartialStateBytes

	est := Estimate{Model: m, Feasible: true}
	switch m {
	case ModelDirect:
		hops := n * avgD
		est.Bytes = int(hops) * (raw + p.Net.HeaderBytes)
		est.EnergyJ = hops * p.hopEnergy(raw)
		// Convergecast serialises at the root: the root link carries
		// all n readings; the farthest sensor pays maxD hops.
		est.TimeSec = maxD*p.perHopSeconds(raw) + (n-1)*p.perHopSeconds(raw)
		est.TimeSec += f.ComputeOps / p.BaseOpsPerSec
	case ModelTree:
		if f.Base == query.Complex {
			// A PDE solve cannot be decomposed into TAG partials.
			est.Feasible = false
		}
		links := n * 1.1 // participants ship one partial each (+relays)
		est.Bytes = int(links) * (partial + p.Net.HeaderBytes)
		est.EnergyJ = links*p.hopEnergy(partial) + n*p.Net.Energy.ComputeCost(1)
		est.TimeSec = maxD * p.perHopSeconds(partial)
	case ModelCluster:
		if f.Base == query.Complex {
			est.Feasible = false
		}
		heads := math.Max(1, n*p.ClusterHeadFraction)
		memberHops := n - heads
		headHops := heads * avgD
		est.Bytes = int(memberHops)*(raw+p.Net.HeaderBytes) + int(headHops)*(partial+p.Net.HeaderBytes)
		est.EnergyJ = memberHops*p.hopEnergy(raw) + headHops*p.hopEnergy(partial) + n*p.Net.Energy.ComputeCost(1)
		est.TimeSec = p.perHopSeconds(raw) + maxD*p.perHopSeconds(partial) + (n/heads)*p.perHopSeconds(raw)
	case ModelGrid:
		// Collect raw data exactly like direct, then push it over the
		// grid link and compute there.
		hops := n * avgD
		est.Bytes = int(hops) * (raw + p.Net.HeaderBytes)
		est.EnergyJ = hops * p.hopEnergy(raw)
		collect := maxD*p.perHopSeconds(raw) + (n-1)*p.perHopSeconds(raw)
		transfer := p.GridLatencySec + n*float64(raw)*8/p.GridLinkBps
		compute := f.ComputeOps / p.GridOpsPerSec
		ret := p.GridLatencySec
		est.TimeSec = collect + transfer + compute + ret
	}
	return est
}

// EstimateAll returns the estimates for every model, in Models() order.
func (e *Estimator) EstimateAll(f Features) []Estimate {
	out := make([]Estimate, 0, numModels)
	for _, m := range Models() {
		out = append(out, e.Estimate(m, f))
	}
	return out
}
