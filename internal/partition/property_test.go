package partition

import (
	"math"
	"testing"
	"testing/quick"

	"pervasivegrid/internal/query"
)

// Property tests over the cost model: the decision maker's estimates must
// be finite, non-negative, and monotone in the obvious directions, or the
// selection logic built on them is meaningless.

func randomFeatures(sel uint8, depth uint8, base uint8, ops uint32) Features {
	f := Features{
		Base:     query.Type(int(base) % 3),
		Selected: 1 + int(sel)%400,
		AvgDepth: 1 + float64(depth%10),
	}
	f.MaxDepth = f.AvgDepth + 2
	if f.Base == query.Complex {
		f.ComputeOps = float64(ops)
	}
	return f
}

func TestPropertyEstimatesFiniteNonNegative(t *testing.T) {
	est := NewEstimator(DefaultPlatform())
	f := func(sel, depth, base uint8, ops uint32) bool {
		feats := randomFeatures(sel, depth, base, ops)
		for _, m := range Models() {
			e := est.Estimate(m, feats)
			if math.IsNaN(e.EnergyJ) || math.IsInf(e.EnergyJ, 0) || e.EnergyJ < 0 {
				return false
			}
			if math.IsNaN(e.TimeSec) || math.IsInf(e.TimeSec, 0) || e.TimeSec < 0 {
				return false
			}
			if e.Bytes < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEnergyMonotoneInSelected(t *testing.T) {
	est := NewEstimator(DefaultPlatform())
	f := func(sel uint8, depth uint8) bool {
		small := randomFeatures(sel, depth, 1, 0)
		big := small
		big.Selected = small.Selected + 50
		for _, m := range []Model{ModelDirect, ModelTree, ModelCluster} {
			if est.Estimate(m, big).EnergyJ < est.Estimate(m, small).EnergyJ {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGridTimeMonotoneInOps(t *testing.T) {
	est := NewEstimator(DefaultPlatform())
	f := func(sel uint8, ops uint32) bool {
		lo := randomFeatures(sel, 3, 2, ops)
		hi := lo
		hi.ComputeOps = lo.ComputeOps + 1e9
		return est.Estimate(ModelGrid, hi).TimeSec >= est.Estimate(ModelGrid, lo).TimeSec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyChooseAlwaysFeasible(t *testing.T) {
	d := NewDecisionMaker(NewEstimator(DefaultPlatform()))
	q, err := query.Parse("SELECT avg(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	f := func(sel, depth, base uint8, ops uint32) bool {
		feats := randomFeatures(sel, depth, base, ops)
		dec, err := d.Choose(q, feats)
		if err != nil {
			return false // no COST clause: some model is always feasible
		}
		// The chosen model must be one of the feasible estimates.
		for _, e := range dec.Estimates {
			if e.Model == dec.Model {
				return e.Feasible
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
