package sensornet

import (
	"math"
	"testing"
)

// collectConfig returns a connected 5x5 grid with a uniform field.
func collectNetwork(t *testing.T, val float64) *Network {
	t.Helper()
	cfg := testConfig()
	nw := NewGridNetwork(cfg, 5, 5)
	if !nw.Connected() {
		t.Fatal("test network must be connected")
	}
	nw.SetField(UniformField(val), 0)
	return nw
}

func TestDirectCollectAvg(t *testing.T) {
	nw := collectNetwork(t, 42)
	res, err := DirectStrategy{}.Collect(nw, CollectRequest{Agg: AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 25 || res.Selected != 25 {
		t.Fatalf("coverage = %d/%d, want 25/25", res.Coverage, res.Selected)
	}
	if math.Abs(res.Value-42) > 1e-9 {
		t.Fatalf("avg = %v, want 42", res.Value)
	}
	if len(res.Readings) != 25 {
		t.Fatalf("raw readings = %d, want 25", len(res.Readings))
	}
	if res.Latency <= 0 || res.Messages < 25 || res.EnergyJ <= 0 {
		t.Fatalf("implausible round metrics: %+v", res)
	}
}

func TestTreeCollectMatchesDirectValue(t *testing.T) {
	for _, agg := range []AggKind{AggSum, AggCount, AggMin, AggMax, AggAvg} {
		nwd := collectNetwork(t, 17)
		nwt := collectNetwork(t, 17)
		d, err := DirectStrategy{}.Collect(nwd, CollectRequest{Agg: agg})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := TreeStrategy{}.Collect(nwt, CollectRequest{Agg: agg})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.Value-tr.Value) > 1e-9 {
			t.Fatalf("%v: direct=%v tree=%v", agg, d.Value, tr.Value)
		}
		if tr.Coverage != d.Coverage {
			t.Fatalf("%v: coverage direct=%d tree=%d", agg, d.Coverage, tr.Coverage)
		}
	}
}

func TestTreeCheaperThanDirect(t *testing.T) {
	// The TAG claim: in-network aggregation ships fewer bytes and less
	// energy than centralizing raw readings, on a multi-hop topology.
	nwd := collectNetwork(t, 10)
	nwt := collectNetwork(t, 10)
	d, err := DirectStrategy{}.Collect(nwd, CollectRequest{Agg: AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TreeStrategy{}.Collect(nwt, CollectRequest{Agg: AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Messages >= d.Messages {
		t.Fatalf("tree messages %d, direct %d: aggregation should send fewer", tr.Messages, d.Messages)
	}
	if tr.EnergyJ >= d.EnergyJ {
		t.Fatalf("tree energy %g, direct %g: aggregation should cost less", tr.EnergyJ, d.EnergyJ)
	}
}

func TestClusterCollect(t *testing.T) {
	nw := collectNetwork(t, 33)
	cs := &ClusterStrategy{HeadFraction: 0.2}
	res, err := cs.Collect(nw, CollectRequest{Agg: AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 25 {
		t.Fatalf("coverage = %d, want 25", res.Coverage)
	}
	if math.Abs(res.Value-33) > 1e-9 {
		t.Fatalf("avg = %v, want 33", res.Value)
	}
}

func TestCollectWithPredicate(t *testing.T) {
	nw := collectNetwork(t, 5)
	// Tag the left half as room 101.
	for _, s := range nw.Sensors {
		if s.Pos.X < 50 {
			s.Room = "101"
		}
	}
	sel := func(n *Node) bool { return n.Room == "101" }
	res, err := TreeStrategy{}.Collect(nw, CollectRequest{Agg: AggCount, Select: sel})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, s := range nw.Sensors {
		if s.Room == "101" {
			want++
		}
	}
	if int(res.Value) != want || res.Coverage != want {
		t.Fatalf("count = %v coverage=%d, want %d", res.Value, res.Coverage, want)
	}
}

func TestCollectNoMatchingSensors(t *testing.T) {
	nw := collectNetwork(t, 5)
	sel := func(n *Node) bool { return false }
	if _, err := (DirectStrategy{}).Collect(nw, CollectRequest{Agg: AggAvg, Select: sel}); err != ErrUnreachable {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestCollectSurvivesDeadSubtree(t *testing.T) {
	nw := collectNetwork(t, 9)
	// Kill a handful of nodes; the round must still complete with
	// reduced coverage (graceful degradation).
	nw.Node(12).Energy = 0
	nw.Node(17).Energy = 0
	res, err := TreeStrategy{}.Collect(nw, CollectRequest{Agg: AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage == 0 || res.Coverage >= 25 {
		t.Fatalf("coverage = %d, want partial (0 < c < 25)", res.Coverage)
	}
	if math.Abs(res.Value-9) > 1e-9 {
		t.Fatalf("avg over survivors = %v, want 9", res.Value)
	}
}

func TestRepeatedRoundsDrainEnergy(t *testing.T) {
	nw := collectNetwork(t, 1)
	tr := TreeStrategy{}
	prev := nw.TotalEnergyUsed()
	for i := 0; i < 5; i++ {
		if _, err := tr.Collect(nw, CollectRequest{Agg: AggSum, Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
		used := nw.TotalEnergyUsed()
		if used <= prev {
			t.Fatalf("round %d did not drain energy", i)
		}
		prev = used
	}
}

func TestClusterRotationSpreadsLoad(t *testing.T) {
	nw := collectNetwork(t, 1)
	cs := &ClusterStrategy{HeadFraction: 0.15}
	for i := 0; i < 20; i++ {
		if _, err := cs.Collect(nw, CollectRequest{Agg: AggAvg, Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// With rotation no single sensor should carry wildly more TX than the
	// median: compare max to min spend.
	var max, min float64 = 0, math.Inf(1)
	for _, s := range nw.Sensors {
		used := s.InitialEnergy - s.Energy
		if used > max {
			max = used
		}
		if used < min {
			min = used
		}
	}
	if min == 0 {
		t.Fatal("some sensor never transmitted")
	}
	if max/min > 50 {
		t.Fatalf("load imbalance max/min = %.1f, rotation should spread head duty", max/min)
	}
}

func TestFloodReachesAll(t *testing.T) {
	nw := collectNetwork(t, 0)
	res := Flood(nw, BaseStationID, 20)
	if res.Reached != 25 {
		t.Fatalf("flood reached %d, want 25", res.Reached)
	}
	if res.Messages < 25 {
		t.Fatalf("flood messages = %d, want >= one per node", res.Messages)
	}
	if res.Latency <= 0 {
		t.Fatal("flood latency must be positive")
	}
}

func TestGossipTradesCoverageForCost(t *testing.T) {
	flooded := Flood(collectNetwork(t, 0), BaseStationID, 20)
	low := Gossip(collectNetwork(t, 0), BaseStationID, 20, GossipConfig{Forward: 0.3, Seed: 5})
	if low.Messages >= flooded.Messages {
		t.Fatalf("gossip(0.3) messages %d, flood %d: gossip should transmit less", low.Messages, flooded.Messages)
	}
	if low.Reached > flooded.Reached {
		t.Fatal("gossip cannot reach more nodes than flooding")
	}
}

func TestGossipFanout(t *testing.T) {
	nw := collectNetwork(t, 0)
	res := Gossip(nw, BaseStationID, 20, GossipConfig{Forward: 1.0, Fanout: 2, Seed: 9})
	if res.Reached == 0 {
		t.Fatal("fanout gossip reached nobody")
	}
	if res.Reached > 25 {
		t.Fatalf("reached %d > network size", res.Reached)
	}
}

func TestUnicastToBase(t *testing.T) {
	nw := collectNetwork(t, 0)
	res, err := Unicast(nw, 24, 10) // far corner, multi-hop
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 1 {
		t.Fatal("unicast did not deliver")
	}
	if res.Messages < 2 {
		t.Fatalf("messages = %d, want multi-hop", res.Messages)
	}
	if _, err := Unicast(nw, 99, 10); err == nil {
		t.Fatal("unicast from unknown node should error")
	}
}

func TestStrategyByName(t *testing.T) {
	for _, name := range []string{"direct", "tree", "cluster"} {
		s, err := StrategyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Fatalf("%q -> %q", name, s.Name())
		}
	}
	if _, err := StrategyByName("warp"); err == nil {
		t.Fatal("unknown strategy should error")
	}
}

func benchCollect(b *testing.B, strat Strategy) {
	cfg := DefaultConfig()
	cfg.InitialEnergy = 1e9 // never die during the bench
	nw := NewGridNetwork(cfg, 10, 10)
	nw.SetField(UniformField(25), 0.5)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := strat.Collect(nw, CollectRequest{Agg: AggAvg, Time: float64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectDirect100(b *testing.B)  { benchCollect(b, DirectStrategy{}) }
func BenchmarkCollectTree100(b *testing.B)    { benchCollect(b, TreeStrategy{}) }
func BenchmarkCollectCluster100(b *testing.B) { benchCollect(b, &ClusterStrategy{}) }

func BenchmarkFlood400(b *testing.B) {
	cfg := DefaultConfig()
	cfg.InitialEnergy = 1e9
	nw := NewGridNetwork(cfg, 20, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := Flood(nw, BaseStationID, 40); res.Reached == 0 {
			b.Fatal("flood reached nobody")
		}
	}
}

func TestFloodOnDisconnectedNetwork(t *testing.T) {
	cfg := testConfig()
	cfg.RadioRange = 5 // nobody hears anybody
	nw := NewGridNetwork(cfg, 3, 3)
	res := Flood(nw, BaseStationID, 20)
	if res.Reached != 0 {
		t.Fatalf("reached %d on a disconnected network", res.Reached)
	}
}

func TestGossipDeterministicWithSeed(t *testing.T) {
	run := func() DisseminationResult {
		cfg := testConfig()
		nw := NewGridNetwork(cfg, 5, 5)
		return Gossip(nw, BaseStationID, 20, GossipConfig{Forward: 0.5, Seed: 77})
	}
	a, b := run(), run()
	if a.Reached != b.Reached || a.Messages != b.Messages {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestCollectFromDeadOrigin(t *testing.T) {
	nw := collectNetwork(t, 5)
	for _, s := range nw.Sensors {
		s.Energy = 0
	}
	for _, name := range []string{"direct", "tree", "cluster"} {
		strat, err := StrategyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := strat.Collect(nw, CollectRequest{Agg: AggAvg}); err == nil {
			t.Fatalf("%s: collection over a dead network should fail", name)
		}
	}
}
