package sensornet

import (
	"fmt"
	"math/rand"

	"pervasivegrid/internal/simevent"
)

// DisseminationResult reports a query-installation round: how the query
// text reached the sensors ("Install Query" in the paper's Figure 1).
type DisseminationResult struct {
	// Reached is how many distinct sensors received the message.
	Reached int
	// Latency is the virtual time until the last first-time reception.
	Latency float64
	// Messages, Bytes, EnergyJ are the round's network cost.
	Messages int
	Bytes    int
	EnergyJ  float64
}

// Flood disseminates payloadBytes from origin using classic flooding: every
// node rebroadcasts the first copy it receives exactly once. The paper
// names flooding as one data-routing technique a network may use.
func Flood(nw *Network, origin NodeID, payloadBytes int) DisseminationResult {
	start := nw.Kernel.Now()
	statsBefore := nw.Stats()
	seen := map[NodeID]bool{origin: true}
	last := start

	var relay func(id NodeID)
	relay = func(id NodeID) {
		nw.Broadcast(id, payloadBytes, func(to NodeID, at simevent.Time) {
			if seen[to] {
				return
			}
			seen[to] = true
			if float64(at) > float64(last) {
				last = at
			}
			relay(to)
		})
	}
	relay(origin)
	nw.Kernel.RunAll()

	reached := len(seen) - 1 // exclude origin
	statsAfter := nw.Stats()
	return DisseminationResult{
		Reached:  reached,
		Latency:  float64(last - start),
		Messages: statsAfter.Messages - statsBefore.Messages,
		Bytes:    statsAfter.Bytes - statsBefore.Bytes,
		EnergyJ:  statsAfter.EnergyJ - statsBefore.EnergyJ,
	}
}

// GossipConfig parameterises probabilistic gossip dissemination.
type GossipConfig struct {
	// Forward is the probability a node relays the first copy it
	// receives (the origin always transmits). Classic gossiping trades
	// coverage for energy as Forward drops below 1.
	Forward float64
	// Fanout is how many random neighbors a relaying node unicasts to;
	// 0 means broadcast to all neighbors.
	Fanout int
	// Seed drives the protocol's randomness.
	Seed int64
}

// Gossip disseminates payloadBytes from origin using probabilistic
// gossiping, the second routing technique the paper names.
func Gossip(nw *Network, origin NodeID, payloadBytes int, cfg GossipConfig) DisseminationResult {
	if cfg.Forward <= 0 {
		cfg.Forward = 0.7
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := nw.Kernel.Now()
	statsBefore := nw.Stats()
	seen := map[NodeID]bool{origin: true}
	last := start

	var relay func(id NodeID, force bool)
	relay = func(id NodeID, force bool) {
		if !force && rng.Float64() > cfg.Forward {
			return
		}
		onFirst := func(to NodeID, at simevent.Time) {
			if seen[to] {
				return
			}
			seen[to] = true
			if float64(at) > float64(last) {
				last = at
			}
			relay(to, false)
		}
		if cfg.Fanout <= 0 {
			nw.Broadcast(id, payloadBytes, onFirst)
			return
		}
		node := nw.Node(id)
		if node == nil {
			return
		}
		// Pick Fanout random distinct neighbors.
		nbrs := make([]NodeID, len(node.Neighbors))
		copy(nbrs, node.Neighbors)
		rng.Shuffle(len(nbrs), func(i, j int) { nbrs[i], nbrs[j] = nbrs[j], nbrs[i] })
		k := cfg.Fanout
		if k > len(nbrs) {
			k = len(nbrs)
		}
		for _, to := range nbrs[:k] {
			to := to
			nw.Send(id, to, payloadBytes, func(at simevent.Time) { onFirst(to, at) })
		}
	}
	relay(origin, true)
	nw.Kernel.RunAll()

	statsAfter := nw.Stats()
	return DisseminationResult{
		Reached:  len(seen) - 1,
		Latency:  float64(last - start),
		Messages: statsAfter.Messages - statsBefore.Messages,
		Bytes:    statsAfter.Bytes - statsBefore.Bytes,
		EnergyJ:  statsAfter.EnergyJ - statsBefore.EnergyJ,
	}
}

// Unicast routes a payload from a sensor to the base station hop-by-hop
// along the current hop tree and reports the delivery result. It is the
// primitive behind simple (single-sensor) queries.
func Unicast(nw *Network, from NodeID, payloadBytes int) (DisseminationResult, error) {
	start := nw.Kernel.Now()
	statsBefore := nw.Stats()
	tree := nw.HopTree()
	if _, ok := tree[from]; !ok {
		return DisseminationResult{}, fmt.Errorf("sensornet: node %d cannot reach base station", from)
	}
	last := start
	delivered := false

	var forward func(cur NodeID)
	forward = func(cur NodeID) {
		parent, ok := tree[cur]
		if !ok {
			return
		}
		nw.Send(cur, parent, payloadBytes, func(at simevent.Time) {
			if float64(at) > float64(last) {
				last = at
			}
			if parent == BaseStationID {
				delivered = true
				return
			}
			forward(parent)
		})
	}
	forward(from)
	nw.Kernel.RunAll()

	statsAfter := nw.Stats()
	res := DisseminationResult{
		Latency:  float64(last - start),
		Messages: statsAfter.Messages - statsBefore.Messages,
		Bytes:    statsAfter.Bytes - statsBefore.Bytes,
		EnergyJ:  statsAfter.EnergyJ - statsBefore.EnergyJ,
	}
	if delivered {
		res.Reached = 1
	}
	return res, nil
}
