package sensornet

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"

	"pervasivegrid/internal/simevent"
)

// CitySim is the city-scale counterpart of Network: where Network models
// one building's radio graph in detail (O(n²) neighbor rebuilds, per-hop
// reservations), CitySim scales the paper's vision to the whole city —
// 100k+ sensors ticking — by trading radio-level fidelity for a sharded
// event loop. Nodes are partitioned across simevent.ShardedKernel shards;
// each shard samples, drains, and aggregates its own nodes every tick,
// and periodically reports its partial aggregate to the base station
// (shard 0) through cross-shard posts. Everything a node does derives
// from a per-node xorshift stream seeded by (Seed, node ID), and
// cross-shard merges happen in fixed source order, so a run is
// byte-identical for any worker count: Digest() is the proof.

// CityConfig parameterises a city-scale simulation.
type CityConfig struct {
	// Nodes is the sensor population (required).
	Nodes int
	// Shards partitions the population (default: 8, or Nodes when
	// smaller). Node id lives on shard id % Shards.
	Shards int
	// Workers bounds the goroutines executing shards (default
	// GOMAXPROCS). Any value yields the same run — that is the point.
	Workers int
	// Seed makes the whole simulation reproducible.
	Seed int64
	// TickPeriod is the virtual sampling period in seconds (default 1).
	TickPeriod simevent.Duration
	// ReportEvery posts each shard's aggregate to the base station every
	// N ticks (default 5).
	ReportEvery int
	// InitialEnergy is the per-node battery in joules (default 2).
	InitialEnergy float64
	// SampleCost is joules drained per sample (default 5e-5, roughly a
	// mote-class sense+CPU budget per reading).
	SampleCost float64
}

func (c CityConfig) withDefaults() CityConfig {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Shards > c.Nodes {
		c.Shards = c.Nodes
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.TickPeriod <= 0 {
		c.TickPeriod = 1
	}
	if c.ReportEvery <= 0 {
		c.ReportEvery = 5
	}
	if c.InitialEnergy <= 0 {
		c.InitialEnergy = 2.0
	}
	if c.SampleCost <= 0 {
		c.SampleCost = 5e-5
	}
	return c
}

// cityNode is one simulated sensor's state. Kept flat (no pointers, no
// maps) so 100k of them stay cache- and GC-friendly.
type cityNode struct {
	rng     uint64  // per-node xorshift64 state
	energy  float64 // remaining battery, joules
	reading float64 // last sampled value
	samples uint32  // lifetime sample count
}

// next steps the node's xorshift64 stream and returns a uniform [0,1).
func (n *cityNode) next() float64 {
	x := n.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	n.rng = x
	return float64(x>>11) / float64(1<<53)
}

// cityShard owns one partition of the population. Only its own shard's
// event handlers touch it during a run.
type cityShard struct {
	idx   int
	nodes []cityNode // node id = idx + k*Shards for the k-th entry
	ticks int

	// Rolling aggregate since the last base report.
	sum   float64
	peak  float64
	alive int
}

// CityAggregate is the base station's merged view of the city.
type CityAggregate struct {
	Reports int     // shard reports merged
	Samples uint64  // total samples covered by merged reports
	Sum     float64 // sum of readings in merged reports
	Peak    float64 // hottest reading seen in any merged report
	Alive   int     // alive node-ticks covered by merged reports
}

// CityStats is a post-run summary.
type CityStats struct {
	Nodes    int
	Alive    int
	Ticks    int
	Samples  uint64
	EnergyJ  float64 // joules drained across the city
	Executed uint64  // event handlers run by the sharded kernel
	Base     CityAggregate
}

// CitySim drives a sharded city-wide sensing population.
type CitySim struct {
	Cfg    CityConfig
	Kernel *simevent.ShardedKernel

	shards []*cityShard
	base   CityAggregate // owned by shard 0's handlers during a run
	ticks  int
}

// NewCitySim builds the population and arms one sampling ticker per
// shard. The field being sensed is synthetic but deterministic: a slow
// city-wide diurnal wave plus per-node noise from the node's own stream.
func NewCitySim(cfg CityConfig) (*CitySim, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("sensornet: city sim needs nodes, got %d", cfg.Nodes)
	}
	cs := &CitySim{
		Cfg:    cfg,
		Kernel: simevent.NewSharded(cfg.Shards, cfg.TickPeriod, cfg.Workers),
		shards: make([]*cityShard, cfg.Shards),
	}
	for s := 0; s < cfg.Shards; s++ {
		count := (cfg.Nodes - s + cfg.Shards - 1) / cfg.Shards
		sh := &cityShard{idx: s, nodes: make([]cityNode, count)}
		for k := range sh.nodes {
			id := s + k*cfg.Shards
			// splitmix64 over (seed, id) gives every node an independent,
			// reproducible stream regardless of sharding arithmetic.
			sh.nodes[k] = cityNode{rng: splitmix64(uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(id) + 1), energy: cfg.InitialEnergy}
		}
		cs.shards[s] = sh
		tk := simevent.NewTicker(cs.Kernel.Shard(s), cfg.TickPeriod, fmt.Sprintf("city-tick-%d", s), func(now simevent.Time) {
			cs.tickShard(sh, now)
		})
		if err := tk.Start(); err != nil {
			return nil, err
		}
	}
	return cs, nil
}

// splitmix64 is the standard 64-bit mixer; it turns correlated inputs
// into independent xorshift seeds and never returns zero.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 0x2545f4914f6cdd1d
	}
	return x
}

// tickShard samples every alive node in the shard and, every ReportEvery
// ticks, posts the rolling aggregate to the base station on shard 0.
func (cs *CitySim) tickShard(sh *cityShard, now simevent.Time) {
	wave := 20 + 8*math.Sin(float64(now)/300*2*math.Pi) // diurnal-ish city wave
	sh.ticks++
	for k := range sh.nodes {
		n := &sh.nodes[k]
		if n.energy <= 0 {
			continue
		}
		n.reading = wave + 2*(n.next()-0.5)
		n.samples++
		n.energy -= cs.Cfg.SampleCost
		if n.energy < 0 {
			n.energy = 0
		}
		sh.sum += n.reading
		if n.reading > sh.peak {
			sh.peak = n.reading
		}
		sh.alive++
	}
	if sh.ticks%cs.Cfg.ReportEvery == 0 {
		sum, peak, alive := sh.sum, sh.peak, sh.alive
		covered := uint64(sh.alive)
		sh.sum, sh.peak, sh.alive = 0, 0, 0
		_ = cs.Kernel.Post(sh.idx, 0, now, fmt.Sprintf("city-report-%d", sh.idx), func() {
			cs.base.Reports++
			cs.base.Samples += covered
			cs.base.Sum += sum
			if peak > cs.base.Peak {
				cs.base.Peak = peak
			}
			cs.base.Alive += alive
		})
	}
}

// Run advances the city by ticks sampling periods.
func (cs *CitySim) Run(ticks int) error {
	if ticks <= 0 {
		return nil
	}
	target := simevent.Time(cs.ticks+ticks) * cs.Cfg.TickPeriod
	if _, err := cs.Kernel.Run(target); err != nil {
		return err
	}
	cs.ticks += ticks
	return nil
}

// Stats summarises the run so far. Call only between Runs.
func (cs *CitySim) Stats() CityStats {
	st := CityStats{Nodes: cs.Cfg.Nodes, Ticks: cs.ticks, Executed: cs.Kernel.Executed(), Base: cs.base}
	for _, sh := range cs.shards {
		for k := range sh.nodes {
			n := &sh.nodes[k]
			st.Samples += uint64(n.samples)
			st.EnergyJ += cs.Cfg.InitialEnergy - n.energy
			if n.energy > 0 {
				st.Alive++
			}
		}
	}
	return st
}

// Digest folds every node's state (iterated in global node-ID order, so
// the partition layout cannot leak into the hash) plus the base
// aggregate into one FNV-1a value. Two runs with the same seed must
// produce identical digests regardless of Workers — the determinism
// contract of the sharded loop.
func (cs *CitySim) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for id := 0; id < cs.Cfg.Nodes; id++ {
		n := &cs.shards[id%cs.Cfg.Shards].nodes[id/cs.Cfg.Shards]
		w(n.rng)
		w(math.Float64bits(n.energy))
		w(math.Float64bits(n.reading))
		w(uint64(n.samples))
	}
	w(uint64(cs.base.Reports))
	w(cs.base.Samples)
	w(math.Float64bits(cs.base.Sum))
	w(math.Float64bits(cs.base.Peak))
	w(uint64(cs.base.Alive))
	return h.Sum64()
}
