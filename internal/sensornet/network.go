package sensornet

import (
	"fmt"
	"math/rand"

	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/simevent"
)

// Config parameterises a simulated network.
type Config struct {
	// Width and Height bound the deployment area in meters.
	Width, Height float64
	// RadioRange is the maximum link distance in meters.
	RadioRange float64
	// BandwidthBps is the radio bandwidth in bits per second.
	BandwidthBps float64
	// HopDelay is a fixed per-hop MAC/processing delay in seconds.
	HopDelay float64
	// HeaderBytes is the per-message overhead added to every payload.
	HeaderBytes int
	// InitialEnergy is the battery per sensor in joules.
	InitialEnergy float64
	// BasePos places the base station; defaults to the area corner.
	BasePos Position
	// Energy is the radio/computation energy model.
	Energy EnergyModel
	// Seed makes placement and protocol randomness reproducible.
	Seed int64
}

// DefaultConfig returns a 100 m × 100 m network with mica-mote-like
// parameters: 30 m radio range, 40 kbit/s bandwidth, 2 J batteries.
func DefaultConfig() Config {
	return Config{
		Width:         100,
		Height:        100,
		RadioRange:    30,
		BandwidthBps:  40_000,
		HopDelay:      0.002,
		HeaderBytes:   8,
		InitialEnergy: 2.0,
		BasePos:       Position{X: 50, Y: 0},
		Energy:        DefaultEnergyModel(),
		Seed:          1,
	}
}

// Stats accumulates network-wide accounting for an experiment window.
type Stats struct {
	Messages   int     // transmissions (a broadcast counts once)
	Deliveries int     // successful receptions
	Bytes      int     // payload+header bytes transmitted
	Dropped    int     // sends that failed (dead or out-of-range nodes)
	Lost       int     // transmissions lost to the radio loss model
	EnergyJ    float64 // total energy drained from sensors
	ComputeOps float64 // abstract in-network computation performed
}

// Network is a simulated sensor network attached to a discrete-event
// kernel.
type Network struct {
	Cfg     Config
	Kernel  *simevent.Kernel
	Base    *Node
	Sensors []*Node
	Sampler *Sampler

	// Metrics, when set, mirrors the Stats accounting as sensornet_*
	// gauges after every radio/compute operation, so a live /metrics
	// endpoint sees energy and traffic without polling Stats().
	Metrics *obs.Registry

	stats    Stats
	rng      *rand.Rand
	lossProb float64
}

// mirror publishes the current accounting into the metrics registry.
func (nw *Network) mirror() {
	if nw.Metrics == nil {
		return
	}
	nw.Metrics.Gauge("sensornet_energy_joules").Set(nw.stats.EnergyJ)
	nw.Metrics.Gauge("sensornet_messages").Set(float64(nw.stats.Messages))
	nw.Metrics.Gauge("sensornet_deliveries").Set(float64(nw.stats.Deliveries))
	nw.Metrics.Gauge("sensornet_bytes").Set(float64(nw.stats.Bytes))
	nw.Metrics.Gauge("sensornet_lost").Set(float64(nw.stats.Lost))
	nw.Metrics.Gauge("sensornet_dropped").Set(float64(nw.stats.Dropped))
	nw.Metrics.Gauge("sensornet_compute_ops").Set(nw.stats.ComputeOps)
}

// NewNetwork builds a network with the given sensor positions. Positions
// outside the configured area are accepted; the area only guides random
// placement helpers.
func NewNetwork(cfg Config, positions []Position) *Network {
	nw := &Network{
		Cfg:    cfg,
		Kernel: simevent.NewKernel(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	nw.Base = &Node{ID: BaseStationID, Pos: cfg.BasePos, Energy: 1e12, InitialEnergy: 1e12}
	nw.Sensors = make([]*Node, len(positions))
	for i, p := range positions {
		nw.Sensors[i] = &Node{
			ID: NodeID(i), Pos: p,
			Energy: cfg.InitialEnergy, InitialEnergy: cfg.InitialEnergy,
		}
	}
	nw.Sampler = NewSampler(UniformField(0), 0, cfg.Seed+1)
	nw.rebuildNeighbors()
	return nw
}

// NewGridNetwork places rows×cols sensors on a regular lattice filling the
// configured area.
func NewGridNetwork(cfg Config, rows, cols int) *Network {
	positions := make([]Position, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := cfg.Width * (float64(c) + 0.5) / float64(cols)
			y := cfg.Height * (float64(r) + 0.5) / float64(rows)
			positions = append(positions, Position{X: x, Y: y})
		}
	}
	return NewNetwork(cfg, positions)
}

// NewRandomNetwork places n sensors uniformly at random in the area.
func NewRandomNetwork(cfg Config, n int) *Network {
	rng := rand.New(rand.NewSource(cfg.Seed))
	positions := make([]Position, n)
	for i := range positions {
		positions[i] = Position{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
	}
	return NewNetwork(cfg, positions)
}

// SetField installs the physical field sensors sample, with measurement
// noise of the given standard deviation.
func (nw *Network) SetField(f Field, noise float64) {
	nw.Sampler = NewSampler(f, noise, nw.Cfg.Seed+1)
}

// Node returns the node with the given ID (the base station for
// BaseStationID), or nil if out of range.
func (nw *Network) Node(id NodeID) *Node {
	if id == BaseStationID {
		return nw.Base
	}
	if id < 0 || int(id) >= len(nw.Sensors) {
		return nil
	}
	return nw.Sensors[id]
}

// Stats returns a copy of the accumulated accounting.
func (nw *Network) Stats() Stats { return nw.stats }

// ResetStats zeroes the accounting window (node counters are preserved).
func (nw *Network) ResetStats() { nw.stats = Stats{} }

// AliveCount reports how many sensors still have battery.
func (nw *Network) AliveCount() int {
	alive := 0
	for _, s := range nw.Sensors {
		if s.Alive() {
			alive++
		}
	}
	return alive
}

// MinEnergy reports the lowest remaining battery across alive sensors, or 0
// when all are dead.
func (nw *Network) MinEnergy() float64 {
	min, any := 0.0, false
	for _, s := range nw.Sensors {
		if !s.Alive() {
			return 0
		}
		if !any || s.Energy < min {
			min, any = s.Energy, true
		}
	}
	return min
}

// TotalEnergyUsed reports joules drained across all sensors since
// deployment.
func (nw *Network) TotalEnergyUsed() float64 {
	used := 0.0
	for _, s := range nw.Sensors {
		used += s.InitialEnergy - s.Energy
	}
	return used
}

// rebuildNeighbors recomputes the neighbor lists from positions and radio
// range. O(n²), fine at the network sizes the paper considers.
func (nw *Network) rebuildNeighbors() {
	all := append([]*Node{nw.Base}, nw.Sensors...)
	for _, n := range all {
		n.Neighbors = n.Neighbors[:0]
	}
	for i, a := range all {
		for _, b := range all[i+1:] {
			if a.Pos.Distance(b.Pos) <= nw.Cfg.RadioRange {
				a.Neighbors = append(a.Neighbors, b.ID)
				b.Neighbors = append(b.Neighbors, a.ID)
			}
		}
	}
}

// InRange reports whether two nodes can communicate directly.
func (nw *Network) InRange(a, b NodeID) bool {
	na, nb := nw.Node(a), nw.Node(b)
	if na == nil || nb == nil {
		return false
	}
	return na.Pos.Distance(nb.Pos) <= nw.Cfg.RadioRange
}

// txDuration returns the virtual time to push a payload onto the air.
func (nw *Network) txDuration(payloadBytes int) simevent.Duration {
	total := float64(payloadBytes+nw.Cfg.HeaderBytes) * 8
	return simevent.Duration(total/nw.Cfg.BandwidthBps) + simevent.Duration(nw.Cfg.HopDelay)
}

// Send transmits payloadBytes from one node to a specific neighbor,
// invoking deliver at the virtual delivery time. It reports false (and
// counts a drop) when the sender is dead, the receiver is dead, or the pair
// is out of range. Energy is charged to both endpoints.
func (nw *Network) Send(from, to NodeID, payloadBytes int, deliver func(at simevent.Time)) bool {
	src, dst := nw.Node(from), nw.Node(to)
	if src == nil || dst == nil {
		nw.stats.Dropped++
		return false
	}
	if !src.Alive() || !dst.Alive() || !nw.InRange(from, to) {
		nw.stats.Dropped++
		return false
	}
	size := payloadBytes + nw.Cfg.HeaderBytes
	d := src.Pos.Distance(dst.Pos)
	if nw.lost() {
		// The sender transmits into the void: it pays, nobody hears.
		src.drain(nw.Cfg.Energy.TxCost(size, d))
		src.Sent++
		src.TxBytes += size
		nw.stats.Messages++
		nw.stats.Bytes += size
		nw.stats.Lost++
		nw.stats.EnergyJ += nw.Cfg.Energy.TxCost(size, d)
		nw.mirror()
		return false
	}
	src.drain(nw.Cfg.Energy.TxCost(size, d))
	dst.drain(nw.Cfg.Energy.RxCost(size))
	src.Sent++
	src.TxBytes += size
	dst.Received++
	dst.RxBytes += size
	nw.stats.Messages++
	nw.stats.Deliveries++
	nw.stats.Bytes += size
	nw.stats.EnergyJ += nw.Cfg.Energy.TxCost(size, d) + nw.Cfg.Energy.RxCost(size)
	nw.mirror()
	if deliver != nil {
		at := nw.reserveTx(src, payloadBytes)
		if _, err := nw.Kernel.Schedule(at, fmt.Sprintf("deliver %d->%d", from, to), func() {
			deliver(nw.Kernel.Now())
		}); err != nil {
			return false
		}
	}
	return true
}

// reserveTx serialises a node's transmissions: the radio is half-duplex,
// so a send starts when the previous one finishes. It returns the
// delivery time and advances the node's radio reservation.
func (nw *Network) reserveTx(src *Node, payloadBytes int) simevent.Time {
	start := nw.Kernel.Now()
	if simevent.Time(src.txFree) > start {
		start = simevent.Time(src.txFree)
	}
	end := start + nw.txDuration(payloadBytes)
	src.txFree = float64(end)
	return end
}

// Broadcast transmits payloadBytes from a node to every alive neighbor in
// one radio transmission (the sender pays once at full range; each receiver
// pays reception). deliver is invoked once per receiving neighbor.
func (nw *Network) Broadcast(from NodeID, payloadBytes int, deliver func(to NodeID, at simevent.Time)) int {
	src := nw.Node(from)
	if src == nil || !src.Alive() {
		nw.stats.Dropped++
		return 0
	}
	size := payloadBytes + nw.Cfg.HeaderBytes
	src.drain(nw.Cfg.Energy.TxCost(size, nw.Cfg.RadioRange))
	src.Sent++
	src.TxBytes += size
	nw.stats.Messages++
	nw.stats.Bytes += size
	nw.stats.EnergyJ += nw.Cfg.Energy.TxCost(size, nw.Cfg.RadioRange)
	bcastAt := nw.reserveTx(src, payloadBytes)
	reached := 0
	for _, nbrID := range src.Neighbors {
		dst := nw.Node(nbrID)
		if dst == nil || !dst.Alive() {
			continue
		}
		if nw.lost() {
			nw.stats.Lost++
			continue
		}
		dst.drain(nw.Cfg.Energy.RxCost(size))
		dst.Received++
		dst.RxBytes += size
		nw.stats.Deliveries++
		nw.stats.EnergyJ += nw.Cfg.Energy.RxCost(size)
		reached++
		if deliver != nil {
			to := nbrID
			if _, err := nw.Kernel.Schedule(bcastAt, fmt.Sprintf("bcast %d->%d", from, to), func() {
				deliver(to, nw.Kernel.Now())
			}); err != nil {
				break
			}
		}
	}
	nw.mirror()
	return reached
}

// Compute charges a node for ops abstract operations of local computation.
func (nw *Network) Compute(id NodeID, ops float64) {
	n := nw.Node(id)
	if n == nil || !n.Alive() {
		return
	}
	n.Computed += ops
	cost := nw.Cfg.Energy.ComputeCost(ops)
	n.drain(cost)
	if n.ID != BaseStationID {
		nw.stats.EnergyJ += cost
		nw.stats.ComputeOps += ops
		nw.mirror()
	}
}

// ChargeIdle drains idle-listening energy from every alive sensor for a
// span of virtual seconds. Lifetime experiments call this once per epoch.
func (nw *Network) ChargeIdle(seconds float64) {
	cost := nw.Cfg.Energy.IdleJPerSec * seconds
	for _, s := range nw.Sensors {
		if s.Alive() {
			s.drain(cost)
			nw.stats.EnergyJ += cost
		}
	}
	nw.mirror()
}

// HopTree computes a BFS hop tree rooted at the base station over alive
// nodes. The result maps each reachable sensor to its parent (toward the
// base). Unreachable sensors are absent.
func (nw *Network) HopTree() map[NodeID]NodeID {
	parent := make(map[NodeID]NodeID)
	visited := map[NodeID]bool{BaseStationID: true}
	queue := []NodeID{BaseStationID}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nbr := range nw.Node(cur).Neighbors {
			if visited[nbr] {
				continue
			}
			n := nw.Node(nbr)
			if n == nil || !n.Alive() {
				continue
			}
			visited[nbr] = true
			parent[nbr] = cur
			queue = append(queue, nbr)
		}
	}
	return parent
}

// Connected reports whether every alive sensor can reach the base station.
func (nw *Network) Connected() bool {
	tree := nw.HopTree()
	for _, s := range nw.Sensors {
		if s.Alive() {
			if _, ok := tree[s.ID]; !ok {
				return false
			}
		}
	}
	return true
}

// Depth returns the hop count from a sensor to the base station along the
// given hop tree, or -1 when unreachable.
func Depth(tree map[NodeID]NodeID, id NodeID) int {
	d := 0
	for id != BaseStationID {
		p, ok := tree[id]
		if !ok {
			return -1
		}
		id = p
		d++
		if d > len(tree)+1 {
			return -1 // defensive: malformed tree
		}
	}
	return d
}

// RouteToBase returns the hop path from a sensor to the base station along
// the current hop tree, excluding the sensor itself and including the base.
func (nw *Network) RouteToBase(id NodeID) []NodeID {
	tree := nw.HopTree()
	var path []NodeID
	cur := id
	for cur != BaseStationID {
		p, ok := tree[cur]
		if !ok {
			return nil
		}
		path = append(path, p)
		cur = p
		if len(path) > len(nw.Sensors)+1 {
			return nil
		}
	}
	return path
}
