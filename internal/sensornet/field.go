package sensornet

import (
	"math"
	"math/rand"
)

// Field is a physical quantity defined over the deployment plane that
// sensors sample. Implementations must be deterministic in (pos, t) so that
// simulation runs are reproducible (any randomness is seeded noise applied
// by the sampler, not the field).
type Field interface {
	// At returns the field value at position pos and virtual time t.
	At(pos Position, t float64) float64
}

// UniformField is a constant field, useful in tests.
type UniformField float64

// At implements Field.
func (u UniformField) At(Position, float64) float64 { return float64(u) }

// Hotspot is a localized heat source: a Gaussian bump that grows over time,
// modelling a spreading fire.
type Hotspot struct {
	Center Position
	// Peak is the temperature excess at the center at full intensity.
	Peak float64
	// Radius is the Gaussian sigma in meters.
	Radius float64
	// Start is when the hotspot ignites (virtual seconds).
	Start float64
	// GrowthRate scales how fast intensity ramps from 0 to 1 after
	// Start; intensity = 1 - exp(-GrowthRate * (t - Start)).
	GrowthRate float64
	// Spread is the radius growth in meters per second after Start.
	Spread float64
}

// TemperatureField models building air temperature: an ambient baseline
// plus any number of hotspots (fires).
type TemperatureField struct {
	Ambient  float64
	Hotspots []Hotspot
}

// NewTemperatureField returns a field at the given ambient temperature with
// no hotspots.
func NewTemperatureField(ambient float64) *TemperatureField {
	return &TemperatureField{Ambient: ambient}
}

// Ignite adds a hotspot.
func (f *TemperatureField) Ignite(h Hotspot) { f.Hotspots = append(f.Hotspots, h) }

// At implements Field.
func (f *TemperatureField) At(pos Position, t float64) float64 {
	v := f.Ambient
	for _, h := range f.Hotspots {
		if t < h.Start {
			continue
		}
		age := t - h.Start
		intensity := 1.0
		if h.GrowthRate > 0 {
			intensity = 1 - math.Exp(-h.GrowthRate*age)
		}
		r := h.Radius + h.Spread*age
		if r <= 0 {
			continue
		}
		d := pos.Distance(h.Center)
		v += h.Peak * intensity * math.Exp(-(d*d)/(2*r*r))
	}
	return v
}

// Sampler draws noisy sensor readings from a field.
type Sampler struct {
	Field Field
	// NoiseStdDev is the standard deviation of additive Gaussian
	// measurement noise.
	NoiseStdDev float64
	rng         *rand.Rand
}

// NewSampler returns a sampler with the given seed for reproducible noise.
func NewSampler(f Field, noise float64, seed int64) *Sampler {
	return &Sampler{Field: f, NoiseStdDev: noise, rng: rand.New(rand.NewSource(seed))}
}

// Sample reads the field at the node's position at time t.
func (s *Sampler) Sample(n *Node, t float64) Reading {
	v := s.Field.At(n.Pos, t)
	if s.NoiseStdDev > 0 {
		v += s.rng.NormFloat64() * s.NoiseStdDev
	}
	return Reading{Sensor: n.ID, Time: t, Value: v}
}
