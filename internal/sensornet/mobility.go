package sensornet

import "pervasivegrid/internal/simevent"

// Mobility and link-failure support: the paper singles out "dynamic network
// topologies" and "frequent disconnections" as what separates the pervasive
// grid from classical grid computing. Nodes can move (handhelds, field
// units), links can drop packets, and senders can retransmit.

// MoveNode relocates a node and rebuilds the neighbor lists. Moving an
// unknown node reports false.
func (nw *Network) MoveNode(id NodeID, to Position) bool {
	n := nw.Node(id)
	if n == nil {
		return false
	}
	n.Pos = to
	nw.rebuildNeighbors()
	return true
}

// MoveBase relocates the base station (e.g. a mobile command vehicle).
func (nw *Network) MoveBase(to Position) {
	nw.Base.Pos = to
	nw.rebuildNeighbors()
}

// SetLossProb sets the per-transmission loss probability applied by Send
// and Broadcast. Lost transmissions still cost the sender (and, for
// unicast, the receiver's radio does not hear anything, so only the sender
// pays).
func (nw *Network) SetLossProb(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	nw.lossProb = p
}

// LossProb reports the current loss probability.
func (nw *Network) LossProb() float64 { return nw.lossProb }

// lost draws one loss event.
func (nw *Network) lost() bool {
	return nw.lossProb > 0 && nw.rng.Float64() < nw.lossProb
}

// SendReliable transmits with up to maxAttempts tries (ARQ-style): each
// attempt pays full transmission energy; the first successful attempt
// schedules the delivery. It returns the attempts used and whether the
// message got through.
func (nw *Network) SendReliable(from, to NodeID, payloadBytes, maxAttempts int, deliver func(at simevent.Time)) (int, bool) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if nw.Send(from, to, payloadBytes, deliver) {
			return attempt, true
		}
		// Send returning false for structural reasons (dead node, out
		// of range) will not improve with retries.
		if !nw.retryable(from, to) {
			return attempt, false
		}
	}
	return maxAttempts, false
}

// retryable reports whether a failed send could succeed on retry (i.e. the
// failure was a loss, not a structural impossibility).
func (nw *Network) retryable(from, to NodeID) bool {
	src, dst := nw.Node(from), nw.Node(to)
	if src == nil || dst == nil {
		return false
	}
	return src.Alive() && dst.Alive() && nw.InRange(from, to)
}
