package sensornet

import "testing"

// cityDigest runs a CitySim to completion and returns its digest + stats.
func cityDigest(t testing.TB, nodes, workers, ticks int, seed int64) (uint64, CityStats) {
	t.Helper()
	cs, err := NewCitySim(CityConfig{
		Nodes:   nodes,
		Shards:  8,
		Workers: workers,
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Run(ticks); err != nil {
		t.Fatal(err)
	}
	return cs.Digest(), cs.Stats()
}

// TestCitySimDeterministicAcrossWorkers is the sharded-loop determinism
// gate: the same seed must produce byte-identical aggregate state whether
// the shards run on one worker or eight. Short mode runs 10k nodes (and
// stays `-race`-clean there); the full path scales the same check to a
// 100k-node city.
func TestCitySimDeterministicAcrossWorkers(t *testing.T) {
	nodes, ticks := 10_000, 30
	if !testing.Short() {
		nodes, ticks = 100_000, 20
	}
	d1, st1 := cityDigest(t, nodes, 1, ticks, 42)
	d8, st8 := cityDigest(t, nodes, 8, ticks, 42)
	if d1 != d8 {
		t.Fatalf("digest diverged across worker counts: workers=1 %x, workers=8 %x", d1, d8)
	}
	if st1 != st8 {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st8)
	}
	if want := uint64(nodes) * uint64(ticks); st1.Samples != want {
		t.Fatalf("samples = %d, want %d (every node, every tick)", st1.Samples, want)
	}
	if st1.Base.Reports == 0 || st1.Base.Samples == 0 {
		t.Fatalf("base station merged no reports: %+v", st1.Base)
	}
	// A different seed must actually change the state.
	d2, _ := cityDigest(t, nodes, 8, ticks, 43)
	if d2 == d1 {
		t.Fatal("digest insensitive to seed")
	}
}

func TestCitySimRepeatedRunsAccumulate(t *testing.T) {
	cs, err := NewCitySim(CityConfig{Nodes: 1000, Workers: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Run(5); err != nil {
		t.Fatal(err)
	}
	mid := cs.Stats()
	if err := cs.Run(5); err != nil {
		t.Fatal(err)
	}
	end := cs.Stats()
	if mid.Samples != 5000 || end.Samples != 10000 {
		t.Fatalf("samples mid=%d end=%d, want 5000/10000", mid.Samples, end.Samples)
	}
	if end.EnergyJ <= mid.EnergyJ {
		t.Fatalf("energy did not drain: mid=%g end=%g", mid.EnergyJ, end.EnergyJ)
	}

	// Split runs must equal one continuous run with the same seed.
	one, err := NewCitySim(CityConfig{Nodes: 1000, Workers: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := one.Run(10); err != nil {
		t.Fatal(err)
	}
	if one.Digest() != cs.Digest() {
		t.Fatal("split Run(5)+Run(5) diverged from Run(10)")
	}
}

func TestCitySimEnergyDeathStopsSampling(t *testing.T) {
	cs, err := NewCitySim(CityConfig{
		Nodes: 100, Workers: 2, Seed: 1,
		InitialEnergy: 3e-4, SampleCost: 1e-4, // dead after 3 samples
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Run(10); err != nil {
		t.Fatal(err)
	}
	st := cs.Stats()
	if st.Alive != 0 {
		t.Fatalf("alive = %d, want 0 after batteries drained", st.Alive)
	}
	if st.Samples != 300 {
		t.Fatalf("samples = %d, want 300 (3 per node before death)", st.Samples)
	}
}

func TestCitySimRejectsEmptyPopulation(t *testing.T) {
	if _, err := NewCitySim(CityConfig{}); err == nil {
		t.Fatal("zero-node city accepted")
	}
}

// BenchmarkCityTick measures the sharded loop's sustained tick rate at
// city scale — the number EXPERIMENTS.md quotes for the 100k-node claim.
func BenchmarkCityTick100k(b *testing.B) {
	cs, err := NewCitySim(CityConfig{Nodes: 100_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := cs.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

func TestCitySimRunZeroTicksIsNoop(t *testing.T) {
	cs, err := NewCitySim(CityConfig{Nodes: 16, Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := cs.Digest()
	if err := cs.Run(0); err != nil {
		t.Fatal(err)
	}
	if cs.Digest() != before {
		t.Fatal("Run(0) mutated state")
	}
}
