// Package sensornet simulates wireless sensor networks: node placement,
// radio connectivity, a first-order energy model, data routing (flooding,
// gossiping, cluster heads, TAG-style aggregation trees), and collection of
// sensor readings toward a base station.
//
// The simulator plays the role GloMoSim plays in the paper: it provides the
// measurable substrate (energy, messages, latency) over which the pervasive
// grid runtime decides where computation should happen.
package sensornet

import (
	"fmt"
	"math"
)

// NodeID identifies a node in a network. The base station is always
// BaseStationID; sensors are numbered from 0.
type NodeID int

// BaseStationID is the reserved ID of the base station.
const BaseStationID NodeID = -1

// Position is a point in the 2-D deployment plane, in meters.
type Position struct {
	X, Y float64
}

// Distance returns the Euclidean distance to other.
func (p Position) Distance(other Position) float64 {
	dx, dy := p.X-other.X, p.Y-other.Y
	return math.Sqrt(dx*dx + dy*dy)
}

func (p Position) String() string {
	return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y)
}

// Node is a simulated sensor node.
type Node struct {
	ID  NodeID
	Pos Position

	// Energy is the remaining battery in joules. The base station has
	// effectively infinite energy.
	Energy float64
	// InitialEnergy records the battery at deployment.
	InitialEnergy float64

	// Room optionally tags the node with a location label ("210") so
	// WHERE predicates can select by room.
	Room string

	// Rate is the sensing rate in readings per second for continuous
	// streams.
	Rate float64

	// Neighbors holds the IDs of nodes within radio range, including the
	// base station when in range. Maintained by the Network.
	Neighbors []NodeID

	// txFree is the virtual time the node's radio finishes its current
	// transmission; sends queue behind it (half-duplex, one TX at a
	// time). Managed by the Network.
	txFree float64

	// Counters.
	Sent     int     // messages transmitted
	Received int     // messages received
	TxBytes  int     // bytes transmitted
	RxBytes  int     // bytes received
	Computed float64 // local computation performed, in abstract ops
}

// Alive reports whether the node still has battery. The base station is
// always alive.
func (n *Node) Alive() bool {
	return n.ID == BaseStationID || n.Energy > 0
}

// drain subtracts j joules, clamping at zero. The base station never
// drains.
func (n *Node) drain(j float64) {
	if n.ID == BaseStationID {
		return
	}
	n.Energy -= j
	if n.Energy < 0 {
		n.Energy = 0
	}
}

// Reading is a single sensed sample.
type Reading struct {
	Sensor NodeID
	Time   float64 // virtual seconds
	Value  float64
}
