package sensornet

import (
	"fmt"
	"math"
)

// AggKind names an aggregate function from the paper's query language
// ("aggregate functions like Max, Min, Avg, Sum, etc.").
type AggKind int

// Supported aggregates.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

// ParseAggKind resolves a name like "avg" to its AggKind.
func ParseAggKind(name string) (AggKind, error) {
	switch name {
	case "sum", "SUM", "Sum":
		return AggSum, nil
	case "count", "COUNT", "Count":
		return AggCount, nil
	case "min", "MIN", "Min":
		return AggMin, nil
	case "max", "MAX", "Max":
		return AggMax, nil
	case "avg", "AVG", "Avg", "mean":
		return AggAvg, nil
	}
	return 0, fmt.Errorf("sensornet: unknown aggregate %q", name)
}

func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return fmt.Sprintf("agg(%d)", int(k))
}

// PartialStateBytes is the wire size of one partial state record: sum,
// count, min, max as four 64-bit values. This is what TAG-style in-network
// aggregation ships per link instead of raw readings.
const PartialStateBytes = 32

// RawReadingBytes is the wire size of one raw sensor reading (sensor id +
// 32-bit value + timestamp fits in 12 bytes).
const RawReadingBytes = 12

// Partial is a decomposable aggregation state (a TAG partial state record).
// The zero Partial is the identity element for Merge.
type Partial struct {
	Sum   float64
	Count float64
	Min   float64
	Max   float64
}

// Add folds one reading into the partial state.
func (p *Partial) Add(v float64) {
	if p.Count == 0 {
		p.Min, p.Max = v, v
	} else {
		p.Min = math.Min(p.Min, v)
		p.Max = math.Max(p.Max, v)
	}
	p.Sum += v
	p.Count++
}

// Merge folds another partial state into this one.
func (p *Partial) Merge(q Partial) {
	if q.Count == 0 {
		return
	}
	if p.Count == 0 {
		*p = q
		return
	}
	p.Sum += q.Sum
	p.Count += q.Count
	p.Min = math.Min(p.Min, q.Min)
	p.Max = math.Max(p.Max, q.Max)
}

// Final evaluates the partial state for the requested aggregate. It returns
// NaN for value aggregates over an empty state (count is 0, not NaN).
func (p Partial) Final(k AggKind) float64 {
	if p.Count == 0 {
		if k == AggCount {
			return 0
		}
		return math.NaN()
	}
	switch k {
	case AggSum:
		return p.Sum
	case AggCount:
		return p.Count
	case AggMin:
		return p.Min
	case AggMax:
		return p.Max
	case AggAvg:
		return p.Sum / p.Count
	}
	return math.NaN()
}
