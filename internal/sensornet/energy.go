package sensornet

// EnergyModel is the first-order radio model used throughout the sensor
// database literature (Heinzelman et al.): transmitting k bits over
// distance d costs k*ElecJPerBit + k*AmpJPerBitM2*d², receiving k bits
// costs k*ElecJPerBit, and local computation costs ComputeJPerOp per
// abstract operation.
type EnergyModel struct {
	// ElecJPerBit is the electronics cost per bit for both TX and RX.
	ElecJPerBit float64
	// AmpJPerBitM2 is the transmit-amplifier cost per bit per square
	// meter.
	AmpJPerBitM2 float64
	// ComputeJPerOp is the cost of one abstract computation operation
	// (one aggregation step, one arithmetic op in a local solve, ...).
	ComputeJPerOp float64
	// IdleJPerSec is the idle listening cost per second. Applied by
	// Network.chargeIdle for lifetime experiments.
	IdleJPerSec float64
}

// DefaultEnergyModel returns the standard parameterisation: 50 nJ/bit
// electronics, 100 pJ/bit/m² amplifier, 5 nJ per compute op, and a small
// idle drain.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		ElecJPerBit:   50e-9,
		AmpJPerBitM2:  100e-12,
		ComputeJPerOp: 5e-9,
		IdleJPerSec:   5e-6,
	}
}

// TxCost returns the energy in joules to transmit bytes over distance d
// meters.
func (m EnergyModel) TxCost(bytes int, d float64) float64 {
	bits := float64(bytes) * 8
	return bits*m.ElecJPerBit + bits*m.AmpJPerBitM2*d*d
}

// RxCost returns the energy in joules to receive bytes.
func (m EnergyModel) RxCost(bytes int) float64 {
	return float64(bytes) * 8 * m.ElecJPerBit
}

// ComputeCost returns the energy to perform ops abstract operations.
func (m EnergyModel) ComputeCost(ops float64) float64 {
	return ops * m.ComputeJPerOp
}
