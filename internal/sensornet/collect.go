package sensornet

import (
	"errors"
	"fmt"

	"pervasivegrid/internal/simevent"
)

// CollectRequest describes one round of aggregate data collection: sample
// every selected sensor once and deliver the aggregate (or the raw
// readings, depending on the strategy) to the base station.
type CollectRequest struct {
	// Agg is the aggregate the base station must end up with.
	Agg AggKind
	// Select filters sensors (the WHERE clause); nil selects all.
	Select func(*Node) bool
	// Time is the virtual sampling timestamp.
	Time float64
}

// CollectResult reports one collection round.
type CollectResult struct {
	// Value is the aggregate observed at the base station.
	Value float64
	// Coverage is how many sensor readings contributed to Value.
	Coverage int
	// Selected is how many alive sensors matched the predicate.
	Selected int
	// Latency is the virtual time from round start to the last delivery
	// at the base station.
	Latency float64
	// Messages, Bytes, and EnergyJ are the round's network cost.
	Messages int
	Bytes    int
	EnergyJ  float64
	// Readings holds the raw readings when the strategy delivers raw
	// data to the base station (direct collection); nil otherwise.
	Readings []Reading
}

// Strategy is a data-collection solution model from §4 of the paper: a way
// to move sensor data (or partial aggregates) to the base station.
type Strategy interface {
	// Name identifies the strategy in experiment tables.
	Name() string
	// Collect performs one collection round on the network. The network
	// kernel is run to completion within the call.
	Collect(nw *Network, req CollectRequest) (CollectResult, error)
}

// ErrUnreachable indicates no selected sensor can reach the base station.
var ErrUnreachable = errors.New("sensornet: no selected sensor can reach the base station")

// selectedReachable returns the selected alive sensors that have a route to
// the base station under the given hop tree.
func selectedReachable(nw *Network, tree map[NodeID]NodeID, sel func(*Node) bool) []*Node {
	var out []*Node
	for _, s := range nw.Sensors {
		if !s.Alive() {
			continue
		}
		if sel != nil && !sel(s) {
			continue
		}
		if _, ok := tree[s.ID]; !ok {
			continue
		}
		out = append(out, s)
	}
	return out
}

// DirectStrategy ships every raw reading hop-by-hop to the base station,
// which computes the aggregate centrally. This is the paper's "all sensors
// send their data to the base station" baseline.
type DirectStrategy struct{}

// Name implements Strategy.
func (DirectStrategy) Name() string { return "direct" }

// Collect implements Strategy.
func (DirectStrategy) Collect(nw *Network, req CollectRequest) (CollectResult, error) {
	start := nw.Kernel.Now()
	statsBefore := nw.Stats()
	tree := nw.HopTree()
	selected := selectedReachable(nw, tree, req.Select)
	if len(selected) == 0 {
		return CollectResult{}, ErrUnreachable
	}

	var agg Partial
	var readings []Reading
	last := start

	// forward pushes one raw reading from cur toward the base station.
	var forward func(cur NodeID, r Reading)
	forward = func(cur NodeID, r Reading) {
		parent, ok := tree[cur]
		if !ok && cur != BaseStationID {
			return // route lost (node died mid-round)
		}
		nw.Send(cur, parent, RawReadingBytes, func(at simevent.Time) {
			if float64(at) > float64(last) {
				last = at
			}
			if parent == BaseStationID {
				nw.Compute(BaseStationID, 1) // one aggregation step at base
				agg.Add(r.Value)
				readings = append(readings, r)
				return
			}
			forward(parent, r)
		})
	}

	for _, s := range selected {
		r := nw.Sampler.Sample(s, req.Time)
		forward(s.ID, r)
	}
	nw.Kernel.RunAll()

	statsAfter := nw.Stats()
	return CollectResult{
		Value:    agg.Final(req.Agg),
		Coverage: int(agg.Count),
		Selected: len(selected),
		Latency:  float64(last - start),
		Messages: statsAfter.Messages - statsBefore.Messages,
		Bytes:    statsAfter.Bytes - statsBefore.Bytes,
		EnergyJ:  statsAfter.EnergyJ - statsBefore.EnergyJ,
		Readings: readings,
	}, nil
}

// TreeStrategy performs TAG-style in-network aggregation over a hop tree:
// each node merges its children's partial state records with its own
// reading and ships exactly one partial state record to its parent.
type TreeStrategy struct{}

// Name implements Strategy.
func (TreeStrategy) Name() string { return "tree" }

// Collect implements Strategy.
func (TreeStrategy) Collect(nw *Network, req CollectRequest) (CollectResult, error) {
	start := nw.Kernel.Now()
	statsBefore := nw.Stats()
	tree := nw.HopTree()
	selected := selectedReachable(nw, tree, req.Select)
	if len(selected) == 0 {
		return CollectResult{}, ErrUnreachable
	}
	selectedSet := make(map[NodeID]bool, len(selected))
	for _, s := range selected {
		selectedSet[s.ID] = true
	}

	// participants are every node on a route from a selected sensor to
	// the base: non-selected relay nodes still forward partials.
	participant := make(map[NodeID]bool)
	for _, s := range selected {
		cur := s.ID
		for cur != BaseStationID {
			participant[cur] = true
			p, ok := tree[cur]
			if !ok {
				break
			}
			cur = p
		}
	}

	// expected child partials per participant node.
	expected := make(map[NodeID]int)
	for id := range participant {
		p := tree[id]
		if p != BaseStationID && participant[p] {
			expected[p]++
		}
	}
	baseExpected := 0
	for id := range participant {
		if tree[id] == BaseStationID {
			baseExpected++
		}
	}
	_ = baseExpected

	state := make(map[NodeID]*Partial)
	for id := range participant {
		p := &Partial{}
		if selectedSet[id] {
			r := nw.Sampler.Sample(nw.Node(id), req.Time)
			p.Add(r.Value)
			nw.Compute(id, 1)
		}
		state[id] = p
	}

	var baseAgg Partial
	last := start
	received := make(map[NodeID]int)

	var sendUp func(id NodeID)
	sendUp = func(id NodeID) {
		parent := tree[id]
		payload := *state[id]
		ok := nw.Send(id, parent, PartialStateBytes, func(at simevent.Time) {
			if float64(at) > float64(last) {
				last = at
			}
			if parent == BaseStationID {
				nw.Compute(BaseStationID, 1)
				baseAgg.Merge(payload)
				return
			}
			nw.Compute(parent, 1)
			state[parent].Merge(payload)
			received[parent]++
			if received[parent] >= expected[parent] {
				sendUp(parent)
			}
		})
		if !ok && parent != BaseStationID {
			// The link failed (a node died mid-round). The parent will
			// never hear from this child; lower its expectation so the
			// round still completes, losing this subtree's data — the
			// graceful-degradation behaviour the paper calls for.
			expected[parent]--
			if received[parent] >= expected[parent] && expected[parent] >= 0 {
				sendUp(parent)
			}
		}
	}

	// Leaves (participants with no expected children) fire first; inner
	// nodes fire when all children have reported.
	for id := range participant {
		if expected[id] == 0 {
			sendUp(id)
		}
	}
	nw.Kernel.RunAll()

	statsAfter := nw.Stats()
	return CollectResult{
		Value:    baseAgg.Final(req.Agg),
		Coverage: int(baseAgg.Count),
		Selected: len(selected),
		Latency:  float64(last - start),
		Messages: statsAfter.Messages - statsBefore.Messages,
		Bytes:    statsAfter.Bytes - statsBefore.Bytes,
		EnergyJ:  statsAfter.EnergyJ - statsBefore.EnergyJ,
	}, nil
}

// ClusterStrategy groups sensors into clusters with heads (LEACH-style):
// members send raw readings one hop to their head, heads aggregate locally
// and ship one partial state record to the base station along the hop tree.
type ClusterStrategy struct {
	// HeadFraction is the fraction of alive sensors elected head each
	// round (default 0.1). Heads are rotated by round counter so the
	// role's energy burden is shared.
	HeadFraction float64
	round        int
}

// Name implements Strategy.
func (c *ClusterStrategy) Name() string { return "cluster" }

// Collect implements Strategy.
func (c *ClusterStrategy) Collect(nw *Network, req CollectRequest) (CollectResult, error) {
	start := nw.Kernel.Now()
	statsBefore := nw.Stats()
	tree := nw.HopTree()
	selected := selectedReachable(nw, tree, req.Select)
	if len(selected) == 0 {
		return CollectResult{}, ErrUnreachable
	}
	frac := c.HeadFraction
	if frac <= 0 {
		frac = 0.1
	}
	c.round++

	// Deterministic rotating head election: a sensor is a head this
	// round when (id + round*stride) mod period < frac*period.
	period := 1000
	stride := 137
	isHead := func(id NodeID) bool {
		h := (int(id)*31 + c.round*stride) % period
		if h < 0 {
			h += period
		}
		return float64(h) < frac*float64(period)
	}

	var heads []*Node
	for _, s := range selected {
		if isHead(s.ID) {
			heads = append(heads, s)
		}
	}
	if len(heads) == 0 {
		heads = append(heads, selected[0]) // guarantee at least one head
	}

	// Assign each selected sensor to the nearest head in radio range;
	// sensors with no head in range act as their own head.
	headOf := make(map[NodeID]NodeID)
	members := make(map[NodeID][]*Node)
	for _, s := range selected {
		best := NodeID(-2)
		bestD := 0.0
		for _, h := range heads {
			d := s.Pos.Distance(h.Pos)
			if d <= nw.Cfg.RadioRange && (best == -2 || d < bestD) {
				best, bestD = h.ID, d
			}
		}
		if best == -2 {
			best = s.ID // own head
		}
		headOf[s.ID] = best
		members[best] = append(members[best], s)
	}

	var baseAgg Partial
	last := start
	expected := make(map[NodeID]int) // raw readings each head waits for
	headState := make(map[NodeID]*Partial)
	for head, ms := range members {
		p := &Partial{}
		headState[head] = p
		for _, m := range ms {
			if m.ID != head {
				expected[head]++
			}
		}
		// The head samples itself if it is a selected sensor (it always
		// is: heads are drawn from selected).
		r := nw.Sampler.Sample(nw.Node(head), req.Time)
		p.Add(r.Value)
		nw.Compute(head, 1)
	}

	// shipUp forwards one partial record from a head to the base along
	// the hop tree.
	var shipUp func(cur NodeID, payload Partial)
	shipUp = func(cur NodeID, payload Partial) {
		parent, ok := tree[cur]
		if !ok {
			return
		}
		nw.Send(cur, parent, PartialStateBytes, func(at simevent.Time) {
			if float64(at) > float64(last) {
				last = at
			}
			if parent == BaseStationID {
				nw.Compute(BaseStationID, 1)
				baseAgg.Merge(payload)
				return
			}
			shipUp(parent, payload)
		})
	}

	headDone := func(head NodeID) {
		shipUp(head, *headState[head])
	}

	for head, ms := range members {
		head := head
		if expected[head] == 0 {
			headDone(head)
			continue
		}
		for _, m := range ms {
			if m.ID == head {
				continue
			}
			r := nw.Sampler.Sample(m, req.Time)
			v := r.Value
			ok := nw.Send(m.ID, head, RawReadingBytes, func(at simevent.Time) {
				if float64(at) > float64(last) {
					last = at
				}
				nw.Compute(head, 1)
				headState[head].Add(v)
				expected[head]--
				if expected[head] == 0 {
					headDone(head)
				}
			})
			if !ok {
				expected[head]--
				if expected[head] == 0 {
					headDone(head)
				}
			}
		}
	}
	nw.Kernel.RunAll()

	statsAfter := nw.Stats()
	return CollectResult{
		Value:    baseAgg.Final(req.Agg),
		Coverage: int(baseAgg.Count),
		Selected: len(selected),
		Latency:  float64(last - start),
		Messages: statsAfter.Messages - statsBefore.Messages,
		Bytes:    statsAfter.Bytes - statsBefore.Bytes,
		EnergyJ:  statsAfter.EnergyJ - statsBefore.EnergyJ,
	}, nil
}

// StrategyByName resolves a solution-model name used in experiment tables.
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "direct":
		return DirectStrategy{}, nil
	case "tree":
		return TreeStrategy{}, nil
	case "cluster":
		return &ClusterStrategy{}, nil
	}
	return nil, fmt.Errorf("sensornet: unknown strategy %q", name)
}
