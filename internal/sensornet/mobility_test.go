package sensornet

import (
	"testing"

	"pervasivegrid/internal/simevent"
)

func TestMoveNodeRewiresTopology(t *testing.T) {
	cfg := testConfig()
	nw := NewGridNetwork(cfg, 5, 5)
	if !nw.Connected() {
		t.Fatal("start connected")
	}
	// Move the far corner sensor out of everyone's range.
	if !nw.MoveNode(24, Position{X: 500, Y: 500}) {
		t.Fatal("move failed")
	}
	if nw.Connected() {
		t.Fatal("exiled node should disconnect the network")
	}
	tree := nw.HopTree()
	if _, ok := tree[24]; ok {
		t.Fatal("exiled node still routed")
	}
	// Bring it back next to the base station.
	nw.MoveNode(24, Position{X: 50, Y: 5})
	if !nw.Connected() {
		t.Fatal("returned node should reconnect")
	}
	if d := Depth(nw.HopTree(), 24); d != 1 {
		t.Fatalf("returned node depth = %d, want 1", d)
	}
	if nw.MoveNode(999, Position{}) {
		t.Fatal("moving unknown node should fail")
	}
}

func TestMoveBase(t *testing.T) {
	cfg := testConfig()
	nw := NewGridNetwork(cfg, 5, 5)
	before := Depth(nw.HopTree(), 24)
	// Drive the command vehicle to the far corner: node 24 becomes close.
	nw.MoveBase(Position{X: 90, Y: 100})
	after := Depth(nw.HopTree(), 24)
	if after >= before {
		t.Fatalf("depth of far corner should shrink: %d -> %d", before, after)
	}
}

func TestLossProbClamped(t *testing.T) {
	nw := NewGridNetwork(testConfig(), 2, 2)
	nw.SetLossProb(-1)
	if nw.LossProb() != 0 {
		t.Fatal("negative loss should clamp to 0")
	}
	nw.SetLossProb(2)
	if nw.LossProb() != 1 {
		t.Fatal("loss > 1 should clamp to 1")
	}
}

func TestTotalLossDropsEverything(t *testing.T) {
	cfg := testConfig()
	cfg.RadioRange = 60
	nw := NewGridNetwork(cfg, 2, 2)
	nw.SetLossProb(1)
	delivered := false
	if nw.Send(0, 1, 10, func(simevent.Time) { delivered = true }) {
		t.Fatal("send should report loss")
	}
	nw.Kernel.RunAll()
	if delivered {
		t.Fatal("lost message was delivered")
	}
	st := nw.Stats()
	if st.Lost != 1 {
		t.Fatalf("lost = %d, want 1", st.Lost)
	}
	// Sender still paid energy.
	if nw.Node(0).Energy >= nw.Node(0).InitialEnergy {
		t.Fatal("sender did not pay for the lost transmission")
	}
	// Receiver heard nothing and paid nothing.
	if nw.Node(1).Energy != nw.Node(1).InitialEnergy {
		t.Fatal("receiver paid for a message it never heard")
	}
}

func TestSendReliableRetries(t *testing.T) {
	cfg := testConfig()
	cfg.RadioRange = 60
	cfg.Seed = 11
	nw := NewGridNetwork(cfg, 2, 2)
	nw.SetLossProb(0.5)
	succ, totalAttempts := 0, 0
	for i := 0; i < 50; i++ {
		attempts, ok := nw.SendReliable(0, 1, 10, 8, nil)
		totalAttempts += attempts
		if ok {
			succ++
		}
	}
	if succ < 45 {
		t.Fatalf("reliable delivery %d/50 with 8 attempts at 50%% loss", succ)
	}
	if totalAttempts <= 50 {
		t.Fatal("retries should have occurred")
	}
}

func TestSendReliableStructuralFailureNoRetry(t *testing.T) {
	cfg := testConfig()
	nw := NewGridNetwork(cfg, 5, 5)
	nw.SetLossProb(0.5)
	// Out of range: must give up immediately.
	attempts, ok := nw.SendReliable(0, 24, 10, 10, nil)
	if ok || attempts != 1 {
		t.Fatalf("structural failure: attempts=%d ok=%v, want 1,false", attempts, ok)
	}
	// Dead receiver: same.
	nw.Node(1).Energy = 0
	attempts, ok = nw.SendReliable(0, 1, 10, 10, nil)
	if ok || attempts != 1 {
		t.Fatalf("dead receiver: attempts=%d ok=%v", attempts, ok)
	}
}

func TestCollectionSurvivesModerateLoss(t *testing.T) {
	cfg := testConfig()
	cfg.Seed = 3
	nw := NewGridNetwork(cfg, 5, 5)
	nw.SetField(UniformField(30), 0)
	nw.SetLossProb(0.1)
	res, err := TreeStrategy{}.Collect(nw, CollectRequest{Agg: AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	// Lossy links shrink coverage but the round completes and the value
	// stays exact over the survivors.
	if res.Coverage == 0 {
		t.Fatal("no coverage under 10% loss")
	}
	if res.Coverage > 25 {
		t.Fatalf("coverage %d exceeds population", res.Coverage)
	}
	if res.Coverage > 0 && res.Value != 30 {
		t.Fatalf("avg over survivors = %v, want 30", res.Value)
	}
}
