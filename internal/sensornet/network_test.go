package sensornet

import (
	"math"
	"testing"
	"testing/quick"

	"pervasivegrid/internal/simevent"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 100, 100
	cfg.RadioRange = 30
	return cfg
}

func TestGridTopologyNeighbors(t *testing.T) {
	cfg := testConfig()
	nw := NewGridNetwork(cfg, 5, 5)
	if len(nw.Sensors) != 25 {
		t.Fatalf("sensors = %d, want 25", len(nw.Sensors))
	}
	// Grid spacing is 20 m with range 30 m: an interior node sees its 4
	// orthogonal neighbors plus 4 diagonals (28.3 m).
	center := nw.Node(12) // row 2, col 2
	if got := len(center.Neighbors); got != 8 {
		t.Fatalf("interior neighbors = %d, want 8", got)
	}
	// Corner node (0,0 cell) sees 3 sensor neighbors; base at (50,0) is
	// 40+ m away, out of range.
	corner := nw.Node(0)
	if got := len(corner.Neighbors); got != 3 {
		t.Fatalf("corner neighbors = %d, want 3", got)
	}
}

func TestConnectivity(t *testing.T) {
	cfg := testConfig()
	nw := NewGridNetwork(cfg, 5, 5)
	if !nw.Connected() {
		t.Fatal("5x5 grid with 30m range should be connected")
	}
	tree := nw.HopTree()
	for _, s := range nw.Sensors {
		if d := Depth(tree, s.ID); d < 1 {
			t.Fatalf("sensor %d depth = %d, want >= 1", s.ID, d)
		}
	}
}

func TestDisconnectedNetwork(t *testing.T) {
	cfg := testConfig()
	cfg.RadioRange = 5 // too short to connect 20m-spaced grid
	nw := NewGridNetwork(cfg, 3, 3)
	if nw.Connected() {
		t.Fatal("sparse network should be disconnected")
	}
	if len(nw.HopTree()) != 0 {
		t.Fatal("no sensor should be reachable")
	}
}

func TestSendChargesEnergyAndCounts(t *testing.T) {
	cfg := testConfig()
	cfg.RadioRange = 60 // 2x2 grid spacing is 50 m
	nw := NewGridNetwork(cfg, 2, 2)
	a, b := nw.Node(0), nw.Node(1)
	if !nw.InRange(0, 1) {
		t.Fatal("adjacent grid nodes should be in range")
	}
	delivered := false
	if !nw.Send(0, 1, 10, func(at simevent.Time) { delivered = true }) {
		t.Fatal("Send failed")
	}
	nw.Kernel.RunAll()
	if !delivered {
		t.Fatal("delivery callback never ran")
	}
	if a.Energy >= a.InitialEnergy {
		t.Fatal("sender energy not drained")
	}
	if b.Energy >= b.InitialEnergy {
		t.Fatal("receiver energy not drained")
	}
	st := nw.Stats()
	if st.Messages != 1 || st.Deliveries != 1 {
		t.Fatalf("stats = %+v, want 1 message, 1 delivery", st)
	}
	wantBytes := 10 + cfg.HeaderBytes
	if st.Bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", st.Bytes, wantBytes)
	}
	// Energy accounting matches the model.
	d := a.Pos.Distance(b.Pos)
	want := cfg.Energy.TxCost(wantBytes, d) + cfg.Energy.RxCost(wantBytes)
	if math.Abs(st.EnergyJ-want) > 1e-15 {
		t.Fatalf("energy = %g, want %g", st.EnergyJ, want)
	}
}

func TestSendOutOfRangeFails(t *testing.T) {
	cfg := testConfig()
	nw := NewGridNetwork(cfg, 5, 5)
	// Node 0 and node 24 are opposite corners, far out of range.
	if nw.Send(0, 24, 10, nil) {
		t.Fatal("out-of-range send should fail")
	}
	if nw.Stats().Dropped != 1 {
		t.Fatal("drop not counted")
	}
}

func TestDeadNodeCannotSendOrReceive(t *testing.T) {
	cfg := testConfig()
	cfg.RadioRange = 60
	nw := NewGridNetwork(cfg, 2, 2)
	nw.Node(0).Energy = 0
	if nw.Send(0, 1, 10, nil) {
		t.Fatal("dead sender should fail")
	}
	if nw.Send(1, 0, 10, nil) {
		t.Fatal("send to dead receiver should fail")
	}
}

func TestBroadcastReachesAliveNeighbors(t *testing.T) {
	cfg := testConfig()
	cfg.RadioRange = 40 // 3x3 grid spacing is 33.3 m
	nw := NewGridNetwork(cfg, 3, 3)
	center := nw.Node(4)
	nw.Node(1).Energy = 0 // kill one neighbor
	var got []NodeID
	reached := nw.Broadcast(4, 10, func(to NodeID, at simevent.Time) { got = append(got, to) })
	nw.Kernel.RunAll()
	if reached != len(center.Neighbors)-1 {
		t.Fatalf("reached = %d, want %d (one neighbor dead)", reached, len(center.Neighbors)-1)
	}
	if len(got) != reached {
		t.Fatalf("callbacks = %d, want %d", len(got), reached)
	}
	for _, id := range got {
		if id == 1 {
			t.Fatal("dead neighbor received broadcast")
		}
	}
}

func TestHopTreeExcludesDeadNodes(t *testing.T) {
	cfg := testConfig()
	cfg.RadioRange = 40
	nw := NewGridNetwork(cfg, 3, 3)
	before := nw.HopTree()
	if len(before) != 9 {
		t.Fatalf("reachable = %d, want 9", len(before))
	}
	// Kill the bottom row (adjacent to base at (50,0)): the rest must
	// still route around if connectivity allows.
	nw.Node(0).Energy = 0
	nw.Node(1).Energy = 0
	nw.Node(2).Energy = 0
	after := nw.HopTree()
	for id := range after {
		if !nw.Node(id).Alive() {
			t.Fatalf("dead node %d in hop tree", id)
		}
	}
}

func TestComputeCharges(t *testing.T) {
	cfg := testConfig()
	nw := NewGridNetwork(cfg, 2, 2)
	e0 := nw.Node(0).Energy
	nw.Compute(0, 1000)
	if nw.Node(0).Energy >= e0 {
		t.Fatal("compute did not drain energy")
	}
	if nw.Stats().ComputeOps != 1000 {
		t.Fatalf("compute ops = %v, want 1000", nw.Stats().ComputeOps)
	}
	// Base station computation is free and uncounted.
	nw.ResetStats()
	nw.Compute(BaseStationID, 1e9)
	if nw.Stats().ComputeOps != 0 {
		t.Fatal("base-station compute should not count against sensors")
	}
}

func TestChargeIdle(t *testing.T) {
	cfg := testConfig()
	nw := NewGridNetwork(cfg, 2, 2)
	e0 := nw.TotalEnergyUsed()
	nw.ChargeIdle(10)
	if nw.TotalEnergyUsed() <= e0 {
		t.Fatal("idle charge did not drain energy")
	}
}

func TestTemperatureFieldHotspot(t *testing.T) {
	f := NewTemperatureField(20)
	f.Ignite(Hotspot{Center: Position{X: 50, Y: 50}, Peak: 400, Radius: 10, Start: 5, GrowthRate: 1})
	if got := f.At(Position{X: 50, Y: 50}, 0); got != 20 {
		t.Fatalf("before ignition temp = %v, want ambient 20", got)
	}
	late := f.At(Position{X: 50, Y: 50}, 100)
	if late < 400 {
		t.Fatalf("center temp after growth = %v, want >= 400", late)
	}
	far := f.At(Position{X: 0, Y: 0}, 100)
	if far > 25 {
		t.Fatalf("far temp = %v, want near ambient", far)
	}
	if f.At(Position{X: 40, Y: 50}, 100) >= late {
		t.Fatal("temperature should decay away from center")
	}
}

func TestSamplerNoiseReproducible(t *testing.T) {
	f := UniformField(100)
	n := &Node{ID: 3, Pos: Position{X: 1, Y: 1}}
	s1 := NewSampler(f, 2.0, 7)
	s2 := NewSampler(f, 2.0, 7)
	for i := 0; i < 10; i++ {
		a, b := s1.Sample(n, float64(i)), s2.Sample(n, float64(i))
		if a.Value != b.Value {
			t.Fatal("same seed should give identical noise")
		}
		if a.Value == 100 {
			t.Fatal("noise should perturb the reading")
		}
	}
}

func TestPartialMergeEquivalence(t *testing.T) {
	// Property: splitting readings across partials and merging equals one
	// big partial, for all aggregates.
	f := func(xs []float64, split uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true // avoid float64 overflow in Sum
			}
		}
		k := int(split) % len(xs)
		var whole, left, right Partial
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			left.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
		}
		left.Merge(right)
		for _, agg := range []AggKind{AggSum, AggCount, AggMin, AggMax, AggAvg} {
			a, b := whole.Final(agg), left.Final(agg)
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialEmpty(t *testing.T) {
	var p Partial
	if got := p.Final(AggCount); got != 0 {
		t.Fatalf("empty count = %v, want 0", got)
	}
	if !math.IsNaN(p.Final(AggAvg)) {
		t.Fatal("empty avg should be NaN")
	}
	var q Partial
	q.Add(5)
	p.Merge(q) // identity merge
	if p.Final(AggSum) != 5 {
		t.Fatal("merge into empty partial lost data")
	}
	q.Merge(Partial{}) // merging empty is a no-op
	if q.Final(AggCount) != 1 {
		t.Fatal("merging empty partial changed state")
	}
}

func TestParseAggKind(t *testing.T) {
	for _, name := range []string{"sum", "count", "min", "max", "avg"} {
		k, err := ParseAggKind(name)
		if err != nil {
			t.Fatalf("ParseAggKind(%q): %v", name, err)
		}
		if k.String() != name {
			t.Fatalf("round trip %q -> %q", name, k.String())
		}
	}
	if _, err := ParseAggKind("median"); err == nil {
		t.Fatal("unsupported aggregate should error")
	}
}

func TestTxSerialisation(t *testing.T) {
	// Two back-to-back sends from one node must not overlap on the air:
	// the second delivery lands one full transmission after the first.
	cfg := testConfig()
	cfg.RadioRange = 60
	nw := NewGridNetwork(cfg, 2, 2)
	var first, second simevent.Time
	if !nw.Send(0, 1, 100, func(at simevent.Time) { first = at }) {
		t.Fatal("send 1 failed")
	}
	if !nw.Send(0, 1, 100, func(at simevent.Time) { second = at }) {
		t.Fatal("send 2 failed")
	}
	nw.Kernel.RunAll()
	txDur := nw.txDuration(100)
	if second < first+txDur-1e-12 {
		t.Fatalf("second delivery %v overlaps first %v (txDur %v)", second, first, txDur)
	}
}

func TestConvergecastSerialisesAtRelay(t *testing.T) {
	// In a direct collection, a relay forwarding many readings serialises
	// them: total latency grows with the number of forwarded readings,
	// not just the hop count.
	cfg := testConfig()
	small := NewGridNetwork(cfg, 3, 5)
	small.SetField(UniformField(1), 0)
	big := NewGridNetwork(cfg, 8, 5)
	big.SetField(UniformField(1), 0)
	rs, err := (DirectStrategy{}).Collect(small, CollectRequest{Agg: AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := (DirectStrategy{}).Collect(big, CollectRequest{Agg: AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Latency <= rs.Latency {
		t.Fatalf("more traffic should mean more serialisation: %v vs %v", rb.Latency, rs.Latency)
	}
}
