package lint

import (
	"go/ast"
	"go/types"
)

// osFileOpeners are the os functions whose result is a writable file
// handle worth guarding. os.Open is omitted: a read-only handle cannot
// corrupt a journal.
var osFileOpeners = map[string]bool{
	"Create":     true,
	"OpenFile":   true,
	"CreateTemp": true,
	"NewFile":    true,
}

// rawFsyncMethods are the mutating calls the rule guards. Close is
// deliberately absent — closing someone else's file is rude but not a
// durability hazard.
var rawFsyncMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteAt":     true,
	"Sync":        true,
	"Truncate":    true,
}

// RawFsync flags direct Write/Sync/Truncate calls on os-opened file
// handles outside the durable package. PR 6 put every byte of node
// state behind internal/durable's CRC-framed, torn-tail-tolerant WAL;
// a stray os.File.Write to a data directory bypasses the framing, the
// fsync policy, and the recovery scan — state that looks persisted but
// cannot be replayed. Packages that legitimately own raw file I/O (the
// durable package itself) are exempt.
//
// Resolution note: the lint loader stubs the stdlib, so *os.File's
// method set is invisible to go/types. The rule instead tracks
// assignment flow — identifiers bound from os.Create / os.OpenFile /
// os.CreateTemp / os.NewFile calls — and flags the guarded methods
// invoked on those identifiers. One-shot helpers like os.WriteFile are
// not flagged: they never hold a handle the caller could mis-fsync.
func RawFsync(exempt ...string) *Analyzer {
	ex := map[string]bool{}
	for _, p := range exempt {
		ex[p] = true
	}
	return &Analyzer{
		Name: "rawfsync",
		Doc:  "direct os.File Write/Sync/Truncate outside the durable WAL layer",
		Run: func(pass *Pass) {
			if ex[pass.Pkg.Path] {
				return
			}
			for _, file := range pass.Pkg.Files {
				byObj, byName := osFileVars(pass, file)
				if len(byObj) == 0 && len(byName) == 0 {
					continue
				}
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
					if !ok || !rawFsyncMethods[sel.Sel.Name] {
						return true
					}
					id, ok := unparen(sel.X).(*ast.Ident)
					if !ok {
						return true
					}
					if !isOSFileIdent(pass, id, byObj, byName) {
						return true
					}
					pass.Report(call,
						"raw os.File."+sel.Sel.Name+" bypasses the durable WAL layer (no framing, no fsync policy, no torn-tail recovery)",
						"journal through internal/durable (WAL.Append / Store), or exempt the package if it legitimately owns raw file I/O")
					return true
				})
			}
		},
	}
}

// osFileVars indexes the identifiers in file that are bound from an
// os file-opening call, by resolved object when type info is available
// and by bare name as a fallback.
func osFileVars(pass *Pass, file *ast.File) (map[types.Object]bool, map[string]bool) {
	byObj := map[types.Object]bool{}
	byName := map[string]bool{}
	bind := func(lhs ast.Expr) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := pass.Pkg.Info.Defs[id]; obj != nil {
			byObj[obj] = true
			return
		}
		if obj := pass.Pkg.Info.Uses[id]; obj != nil {
			byObj[obj] = true
			return
		}
		byName[id.Name] = true
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			// f, err := os.Create(...) — the file handle is the first
			// LHS of a single opener call, or pairwise for parallel
			// assignment.
			if len(st.Rhs) == 1 {
				if isOSOpenCall(pass, file, st.Rhs[0]) && len(st.Lhs) > 0 {
					bind(st.Lhs[0])
				}
				return true
			}
			for i, rhs := range st.Rhs {
				if i < len(st.Lhs) && isOSOpenCall(pass, file, rhs) {
					bind(st.Lhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Values) == 1 {
				if isOSOpenCall(pass, file, st.Values[0]) && len(st.Names) > 0 {
					bind(st.Names[0])
				}
				return true
			}
			for i, v := range st.Values {
				if i < len(st.Names) && isOSOpenCall(pass, file, v) {
					bind(st.Names[i])
				}
			}
		}
		return true
	})
	return byObj, byName
}

// isOSOpenCall reports whether expr is a call to one of the guarded
// os file-opening functions.
func isOSOpenCall(pass *Pass, file *ast.File, expr ast.Expr) bool {
	call, ok := unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !osFileOpeners[sel.Sel.Name] {
		return false
	}
	qual, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	return pass.ImportedPath(file, qual) == "os"
}

// isOSFileIdent resolves a receiver identifier against the os-file
// binding index.
func isOSFileIdent(pass *Pass, id *ast.Ident, byObj map[types.Object]bool, byName map[string]bool) bool {
	if obj := pass.Pkg.Info.Uses[id]; obj != nil {
		return byObj[obj]
	}
	if obj := pass.Pkg.Info.Defs[id]; obj != nil {
		return byObj[obj]
	}
	return byName[id.Name]
}
