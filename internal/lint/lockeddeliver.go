package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockedDeliver flags envelope delivery while a mutex is held — the
// exact shape of the PR 1 DisconnectionDeputy bug, where SetConnected
// flushed its buffer through next.Deliver under d.mu and deadlocked
// against a downstream deputy that re-entered it. Delivery can block
// (or call back into the locking component), so it must happen outside
// the critical section.
//
// The analysis is a linear source-order scan per function: a call to
// X.Lock()/X.RLock() opens a critical section keyed by X; a matching
// non-deferred Unlock/RUnlock closes it (a *deferred* Unlock holds the
// lock to function exit, so everything after the Lock counts); a call
// to a delivery method (Deliver, or a lower-case deliver helper) while
// any section is open is a finding. Straight-line scanning trades
// path sensitivity for zero false negatives on the idioms this
// codebase actually uses.
func LockedDeliver() *Analyzer {
	return &Analyzer{
		Name: "lockeddeliver",
		Doc:  "envelope delivery between mu.Lock() and mu.Unlock() in the same function",
		Run:  runLockedDeliver,
	}
}

// lockEvent is one Lock/Unlock/deliver occurrence in source order.
type lockEvent struct {
	pos      token.Pos
	kind     string // "lock", "unlock", "deliver"
	key      string // rendered mutex expression ("d.mu")
	deferred bool
	node     ast.Node
}

// deliveryNames are the calls that hand an envelope onward.
var deliveryNames = map[string]bool{"Deliver": true, "deliver": true}

func runLockedDeliver(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			events := collectLockEvents(fn.Body)
			sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
			held := map[string]bool{}
			for _, ev := range events {
				switch ev.kind {
				case "lock":
					held[ev.key] = true
				case "unlock":
					if !ev.deferred {
						delete(held, ev.key)
					}
				case "deliver":
					if len(held) > 0 {
						keys := make([]string, 0, len(held))
						for k := range held {
							keys = append(keys, k)
						}
						sort.Strings(keys)
						pass.Report(ev.node,
							"delivery while holding "+strings.Join(keys, ", ")+" can deadlock against a re-entrant deputy",
							"move the Deliver call outside the critical section (collect under the lock, deliver after Unlock)")
					}
				}
			}
		}
	}
}

// collectLockEvents gathers Lock/Unlock/delivery calls in fn body,
// marking Unlocks that are the direct call of a defer statement.
func collectLockEvents(body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[d.Call] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			switch name {
			case "Lock", "RLock":
				events = append(events, lockEvent{pos: call.Pos(), kind: "lock", key: exprKey(fun.X), node: call})
			case "Unlock", "RUnlock":
				events = append(events, lockEvent{pos: call.Pos(), kind: "unlock", key: exprKey(fun.X), deferred: deferredCalls[call], node: call})
			default:
				if deliveryNames[name] {
					events = append(events, lockEvent{pos: call.Pos(), kind: "deliver", node: call})
				}
			}
		case *ast.Ident:
			if deliveryNames[fun.Name] {
				events = append(events, lockEvent{pos: call.Pos(), kind: "deliver", node: call})
			}
		}
		return true
	})
	return events
}

// exprKey renders a selector chain ("d.mu", "l.platform.mu") for use as
// a critical-section key; unrenderable expressions share one bucket.
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.StarExpr:
		return exprKey(x.X)
	default:
		return "<expr>"
	}
}
