package lint

// LockOrder detects lock-acquisition-order inversions across the whole
// repository — the deadlock *class* the per-function rules cannot see.
// Two goroutines deadlock when one acquires lock A then B while another
// acquires B then A; neither function is wrong alone, so the analysis
// has to be global.
//
// The engine replays each function's events in source order, tracking
// the held set exactly like lockeddeliver (a deferred Unlock holds to
// function exit). Whenever lock B is acquired — directly, or anywhere
// inside a callee, known from the callee's transitive Acquires summary —
// while lock A is held, the analyzer records the ordering edge A→B with
// a witness path. Edges between the same class (recursive locking) are
// skipped: that is a different bug with a different fix.
//
// Cycles in the resulting order graph are reported once per
// participating edge, anchored at the acquisition that completes the
// inversion, with both acquisition paths spelled out so the reader can
// see the two interleavings that deadlock.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name:       "lockorder",
		Doc:        "lock-acquisition-order inversion (A→B in one path, B→A in another) across the repo",
		RunProgram: runLockOrder,
	}
}

// lockEdge is one observed ordering: held was locked when acquired was
// taken, in fn, at pos (with via describing the path when the
// acquisition happens inside a callee).
type lockEdge struct {
	held, acquired string
	fn             *FuncNode
	pos            int // index into fn.Events, for position lookup
	via            string
}

func runLockOrder(pass *ProgramPass) {
	edges := map[[2]string]*lockEdge{} // first witness per (held, acquired)
	var order [][2]string              // deterministic iteration order
	note := func(e *lockEdge) {
		key := [2]string{e.held, e.acquired}
		if e.held == e.acquired {
			return
		}
		if _, ok := edges[key]; !ok {
			edges[key] = e
			order = append(order, key)
		}
	}
	for _, fn := range pass.Graph.Funcs {
		held := map[string]bool{}
		for i, ev := range fn.Events {
			switch ev.Kind {
			case EventLock:
				for h := range held {
					note(&lockEdge{held: h, acquired: ev.Detail, fn: fn, pos: i,
						via: fn.Name + " (" + shortPos(fn.Pkg.Fset, ev.Pos) + ")"})
				}
				held[ev.Detail] = true
			case EventUnlock:
				if !ev.Deferred {
					delete(held, ev.Detail)
				}
			case EventCall:
				if ev.Callee == nil || len(held) == 0 {
					continue
				}
				for class, via := range ev.Callee.Acquires {
					for h := range held {
						note(&lockEdge{held: h, acquired: class, fn: fn, pos: i,
							via: fn.Name + " (" + shortPos(fn.Pkg.Fset, ev.Pos) + ") → " + via})
					}
				}
			}
		}
	}
	// Find inversions: any edge both of whose endpoints sit in one
	// strongly connected component of the order graph participates in a
	// cycle. Tarjan over the class nodes.
	scc := stronglyConnected(order)
	for _, key := range order {
		if scc[key[0]] != scc[key[1]] {
			continue
		}
		e := edges[key]
		rev := findReversePath(edges, order, key[1], key[0])
		msg := "lock order inversion: " + LockClassString(e.held) + " → " +
			LockClassString(e.acquired) + " here, but " + rev + " elsewhere — the two interleavings deadlock"
		pass.Report(e.fn.Pkg.Fset.Position(e.fn.Events[e.pos].Pos), msg,
			"pick one global order for these locks and acquire them in it on every path (or merge the critical sections)")
	}
}

// stronglyConnected computes SCC ids for the class nodes of the edge
// set (iterative Tarjan, deterministic over the given edge order).
func stronglyConnected(order [][2]string) map[string]int {
	adj := map[string][]string{}
	var nodes []string
	seen := map[string]bool{}
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for _, e := range order {
		addNode(e[0])
		addNode(e[1])
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, nComp := 0, 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strong(n)
		}
	}
	return comp
}

// findReversePath describes the shortest edge path from 'from' back to
// 'to' in the order graph — the other half of the inversion. BFS over
// the recorded edges; falls back to a generic phrase if the search
// fails (it cannot, inside one SCC, but be defensive).
func findReversePath(edges map[[2]string]*lockEdge, order [][2]string, from, to string) string {
	type hop struct {
		node string
		prev *hop
		edge *lockEdge
	}
	queue := []*hop{{node: from}}
	visited := map[string]bool{from: true}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if h.node == to {
			// Rebuild the chain description.
			var parts []string
			for cur := h; cur.prev != nil; cur = cur.prev {
				parts = append(parts, LockClassString(cur.node)+" (via "+cur.edge.via+")")
			}
			desc := LockClassString(from)
			for i := len(parts) - 1; i >= 0; i-- {
				desc += " → " + parts[i]
			}
			return desc
		}
		for _, key := range order {
			if key[0] != h.node || visited[key[1]] {
				continue
			}
			visited[key[1]] = true
			queue = append(queue, &hop{node: key[1], prev: h, edge: edges[key]})
		}
	}
	return LockClassString(from) + " → … → " + LockClassString(to)
}
