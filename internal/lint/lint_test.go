package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"pervasivegrid/internal/lint"
)

// loadFixture loads one testdata package through a fresh loader.
func loadFixture(t *testing.T, name string) *lint.Package {
	t.Helper()
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	return pkg
}

// wantMarkers scans a fixture directory for trailing "// want rule..."
// comments and returns the expected findings as "base.go:LINE:rule".
func wantMarkers(t *testing.T, dir string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixtures: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, after, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, rule := range strings.Fields(after) {
				want[fmt.Sprintf("%s:%d:%s", e.Name(), i+1, rule)] = true
			}
		}
	}
	return want
}

// gotKeys renders diagnostics in the marker key shape.
func gotKeys(diags []lint.Diagnostic) map[string]bool {
	got := map[string]bool{}
	for _, d := range diags {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule)] = true
	}
	return got
}

// checkAgainstMarkers runs one analyzer over one fixture and compares
// the findings with the // want markers — missing and unexpected
// findings both fail, so seeded violations must fire and suppressed or
// clean shapes must stay silent.
func checkAgainstMarkers(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	want := wantMarkers(t, filepath.Join("testdata", "src", fixture))
	got := gotKeys(diags)
	for k := range want {
		if !got[k] {
			t.Errorf("missing expected finding %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected finding %s", k)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
	}
}

func TestRawClockFixture(t *testing.T) {
	checkAgainstMarkers(t, lint.RawClock("pervasivegrid/internal/obs"), "rawclock")
}

func TestRawClockExemptPackage(t *testing.T) {
	pkg := loadFixture(t, "rawclock")
	// Exempting the fixture's own path silences every finding.
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.RawClock(pkg.Path)})
	if len(diags) != 0 {
		t.Fatalf("exempt package still flagged: %v", diags)
	}
}

func TestRawSendFixture(t *testing.T) {
	pkg := loadFixture(t, "rawsend")
	checkAgainstMarkers(t, lint.RawSend(pkg.Path), "rawsend")
}

func TestRawSendOffListPackage(t *testing.T) {
	pkg := loadFixture(t, "rawsend")
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.RawSend("pervasivegrid/internal/telemetry")})
	if len(diags) != 0 {
		t.Fatalf("off-list package flagged: %v", diags)
	}
}

func TestLockedDeliverFixture(t *testing.T) {
	checkAgainstMarkers(t, lint.LockedDeliver(), "lockeddeliver")
}

func TestGoroLeakFixture(t *testing.T) {
	checkAgainstMarkers(t, lint.GoroLeak(), "goroleak")
}

func TestEnvHopsFixture(t *testing.T) {
	checkAgainstMarkers(t, lint.EnvHops(), "envhops")
}

func TestRawEventFixture(t *testing.T) {
	checkAgainstMarkers(t, lint.RawEvent(), "rawevent")
}

func TestRawSpawnFixture(t *testing.T) {
	checkAgainstMarkers(t, lint.RawSpawn(), "rawspawn")
}

func TestRawSpawnExemptPackage(t *testing.T) {
	pkg := loadFixture(t, "rawspawn")
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.RawSpawn(pkg.Path)})
	if len(diags) != 0 {
		t.Fatalf("exempt package still flagged: %v", diags)
	}
}

func TestRawFsyncFixture(t *testing.T) {
	checkAgainstMarkers(t, lint.RawFsync(), "rawfsync")
}

func TestRawFsyncExemptPackage(t *testing.T) {
	pkg := loadFixture(t, "rawfsync")
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.RawFsync(pkg.Path)})
	if len(diags) != 0 {
		t.Fatalf("exempt package still flagged: %v", diags)
	}
}

func TestLockOrderFixture(t *testing.T) {
	checkAgainstMarkers(t, lint.LockOrder(), "lockorder")
}

func TestBlockHeldFixture(t *testing.T) {
	checkAgainstMarkers(t, lint.BlockHeld(), "blockheld")
}

func TestHotAllocFixture(t *testing.T) {
	checkAgainstMarkers(t, lint.HotAlloc(), "hotalloc")
}

// TestDeadIgnoreFixture runs rawclock + deadignore together: the live
// suppression stays silent, the stale one is the only finding.
func TestDeadIgnoreFixture(t *testing.T) {
	pkg := loadFixture(t, "deadignore")
	diags := lint.Run([]*lint.Package{pkg},
		[]*lint.Analyzer{lint.RawClock("pervasivegrid/internal/obs"), lint.DeadIgnore()})
	want := wantMarkers(t, filepath.Join("testdata", "src", "deadignore"))
	got := gotKeys(diags)
	for k := range want {
		if !got[k] {
			t.Errorf("missing expected finding %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected finding %s", k)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
	}
}

// TestDeadIgnoreRespectsRuleSubset: when the rule a directive names did
// not run, the directive's deadness is unknowable and nothing fires.
func TestDeadIgnoreRespectsRuleSubset(t *testing.T) {
	pkg := loadFixture(t, "deadignore")
	// rawclock is NOT in the run: even the stale rawclock directive
	// must be left alone.
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.DeadIgnore()})
	if len(diags) != 0 {
		t.Fatalf("deadignore fired for a rule outside the run: %v", diags)
	}
}

// TestGraphBlockSummaries pins the fixed-point propagation: the
// three-deep helper chain in the blockheld fixture makes every level
// carry Blocks with a witness chain ending at the channel receive.
func TestGraphBlockSummaries(t *testing.T) {
	pkg := loadFixture(t, "blockheld")
	g := lint.BuildGraph([]*lint.Package{pkg})
	byName := map[string]*lint.FuncNode{}
	for _, fn := range g.Funcs {
		byName[fn.Name] = fn
	}
	for _, name := range []string{"blockheld.(*Node).h3", "blockheld.(*Node).h2", "blockheld.(*Node).h1"} {
		fn := byName[name]
		if fn == nil {
			t.Fatalf("graph missing %s (have %v)", name, keysOf(byName))
		}
		if !fn.Blocks {
			t.Errorf("%s should carry Blocks", name)
		}
	}
	h1 := byName["blockheld.(*Node).h1"]
	if !strings.Contains(h1.BlockWitness, "channel receive") {
		t.Errorf("h1 witness should reach the channel receive, got %q", h1.BlockWitness)
	}
	if !strings.Contains(h1.BlockWitness, "h2") {
		t.Errorf("h1 witness should go through h2, got %q", h1.BlockWitness)
	}
}

// TestGraphAcquireSummaries: cd never names D's mutex but acquires it
// through lockD; the summary must say so.
func TestGraphAcquireSummaries(t *testing.T) {
	pkg := loadFixture(t, "lockorder")
	g := lint.BuildGraph([]*lint.Package{pkg})
	for _, fn := range g.Funcs {
		if fn.Name != "lockorder.cd" {
			continue
		}
		for class := range fn.Acquires {
			if strings.Contains(class, "D.mu") {
				return
			}
		}
		t.Fatalf("cd should transitively acquire D.mu, has %v", fn.Acquires)
	}
	t.Fatal("graph missing lockorder.cd")
}

func keysOf(m map[string]*lint.FuncNode) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestMalformedDirectives: a lint:ignore without rule or reason is
// itself a finding, even with no analyzers running.
func TestMalformedDirectives(t *testing.T) {
	pkg := loadFixture(t, "directives")
	diags := lint.Run([]*lint.Package{pkg}, nil)
	if len(diags) != 2 {
		t.Fatalf("want 2 lint-directive findings, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "lint-directive" {
			t.Errorf("want rule lint-directive, got %s", d.Rule)
		}
	}
}

// TestDiagnosticString pins the file:line:col rendering the Makefile
// gate and editors rely on.
func TestDiagnosticString(t *testing.T) {
	pkg := loadFixture(t, "envhops")
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.EnvHops()})
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	s := diags[0].String()
	if !strings.Contains(s, "envhops.go:") || !strings.Contains(s, ": envhops: ") || !strings.Contains(s, "(fix: ") {
		t.Fatalf("unexpected rendering: %s", s)
	}
}

// TestLoaderResolvesInModuleImports: the fixture imports the real
// agent package; its named types must resolve so rawsend/envhops can
// key on them.
func TestLoaderResolvesInModuleImports(t *testing.T) {
	pkg := loadFixture(t, "envhops")
	if pkg.Types == nil {
		t.Fatal("no types")
	}
	if want := "pervasivegrid/internal/lint/testdata/src/envhops"; pkg.Path != want {
		t.Fatalf("path = %q, want %q", pkg.Path, want)
	}
}

// TestLoadPatternsWalk: ./... from the module root discovers the real
// packages and skips testdata.
func TestLoadPatternsWalk(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns("", "./...")
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)
	has := func(want string) bool {
		for _, p := range paths {
			if p == want {
				return true
			}
		}
		return false
	}
	if !has("pervasivegrid/internal/agent") || !has("pervasivegrid/internal/lint") {
		t.Fatalf("walk missed core packages: %v", paths)
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Fatalf("walk descended into testdata: %s", p)
		}
	}
}

// TestRepoIsClean is the in-suite version of make lint: the production
// analyzer set over the whole module — internal/, cmd/, and examples/
// alike — must report nothing beyond the committed baseline.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns("", "./...")
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}

	// The gate is only as wide as the load: make sure ./... really did
	// pull in the command and example trees, not just internal/.
	trees := map[string]bool{}
	for _, p := range pkgs {
		for _, prefix := range []string{"internal/", "cmd/", "examples/"} {
			if strings.HasPrefix(strings.TrimPrefix(p.Path, "pervasivegrid/"), prefix) {
				trees[prefix] = true
			}
		}
	}
	for _, prefix := range []string{"internal/", "cmd/", "examples/"} {
		if !trees[prefix] {
			t.Errorf("no %s packages loaded — the repo-clean gate lost coverage", prefix)
		}
	}

	diags := lint.Run(pkgs, lint.Default())

	// Findings recorded in lint-baseline.json are excused here exactly as
	// in make lint; anything fresh fails the suite.
	baseline, err := lint.ReadBaseline(filepath.Join(loader.ModuleRoot, "lint-baseline.json"))
	if err != nil {
		t.Fatalf("read lint-baseline.json: %v", err)
	}
	fresh, accepted, stale := lint.ApplyBaseline(loader.ModuleRoot, baseline, diags)
	for _, d := range fresh {
		t.Errorf("%s", d)
	}
	if len(accepted) > 0 || stale > 0 {
		t.Logf("%d baselined finding(s), %d stale baseline entr(ies)", len(accepted), stale)
	}
}

// BenchmarkLintRepo times a full production run — module load, call
// graph, fixed point, every analyzer — over the whole repository. It
// backs the make-check wall-time budget: if the fixed-point engine
// regresses from milliseconds toward minutes, this is the number that
// moves first.
func BenchmarkLintRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := lint.NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.LoadPatterns("", "./...")
		if err != nil {
			b.Fatalf("LoadPatterns: %v", err)
		}
		if diags := lint.Run(pkgs, lint.Default()); len(diags) > 0 {
			b.Fatalf("repo not clean during bench: %v", diags[0])
		}
	}
}
