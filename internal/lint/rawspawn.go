package lint

import (
	"go/ast"
	"go/types"
)

// RawSpawn flags `go` statements that launch a long-running body — a
// function literal, or a same-package function or method, containing an
// unbounded `for {}` loop — without the supervision fence. A raw
// goroutine that panics dies silently: no recovery, no restart, no
// metric, and its owner only notices when the subsystem goes quiet.
// Long-running loops must be spawned through supervise.Spawn (one-shot
// panic fence) or Supervisor.Spawn (restart policy), which is why the
// supervise package itself — and obs, which supervise depends on — are
// exempt: someone has to own the raw `go`.
//
// Run-to-completion goroutines (no unbounded loop) are fine raw: they
// end, and a panic in them surfaces through whatever result path they
// already have. Cross-package calls are not resolved — the callee's
// package is responsible for its own spawn discipline.
func RawSpawn(exempt ...string) *Analyzer {
	ex := map[string]bool{}
	for _, p := range exempt {
		ex[p] = true
	}
	return &Analyzer{
		Name: "rawspawn",
		Doc:  "long-running goroutine (unbounded loop) launched with raw go instead of supervise.Spawn",
		Run: func(pass *Pass) {
			if ex[pass.Pkg.Path] {
				return
			}
			byObj, byName := loopingFuncs(pass.Pkg)
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if spawnedBodyLoops(pass.Pkg, g, byObj, byName) {
						pass.Report(g,
							"long-running goroutine spawned raw: a panic here dies silently",
							"launch it with supervise.Spawn(name, fn) (or a Supervisor) so panics are fenced and counted")
					}
					return true
				})
			}
		},
	}
}

// loopingFuncs indexes the package's function declarations whose bodies
// contain an unbounded loop: by types.Func object when resolution is
// available, and by bare name as a fallback for files whose type info is
// incomplete.
func loopingFuncs(pkg *Package) (map[*types.Func]bool, map[string]bool) {
	byObj := map[*types.Func]bool{}
	byName := map[string]bool{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasUnboundedLoop(fd.Body) {
				continue
			}
			byName[fd.Name.Name] = true
			if pkg.Info != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					byObj[fn] = true
				}
			}
		}
	}
	return byObj, byName
}

// spawnedBodyLoops reports whether the go statement's callee has an
// unbounded loop: directly for a literal, via the declaration index for
// a named same-package function or method.
func spawnedBodyLoops(pkg *Package, g *ast.GoStmt, byObj map[*types.Func]bool, byName map[string]bool) bool {
	switch fun := unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return hasUnboundedLoop(fun.Body)
	case *ast.Ident:
		return calleeLoops(pkg, fun, byObj, byName)
	case *ast.SelectorExpr:
		// Methods (d.drain) and package-qualified calls (other.Fn). A
		// qualifier naming another package resolves to a *types.Func of
		// that package, absent from byObj — and the name fallback only
		// applies when the qualifier is not an import.
		if id, ok := fun.X.(*ast.Ident); ok {
			for _, f := range pkg.Files {
				if containsNode(f, g) {
					if (&Pass{Pkg: pkg}).ImportedPath(f, id) != "" {
						return false
					}
					break
				}
			}
		}
		return calleeLoops(pkg, fun.Sel, byObj, byName)
	}
	return false
}

// calleeLoops resolves an identifier used as a go-call target against
// the looping-declaration index.
func calleeLoops(pkg *Package, id *ast.Ident, byObj map[*types.Func]bool, byName map[string]bool) bool {
	if pkg.Info != nil {
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
			return byObj[fn]
		}
	}
	return byName[id.Name]
}

// containsNode reports whether file's extent covers n.
func containsNode(file *ast.File, n ast.Node) bool {
	return file.Pos() <= n.Pos() && n.Pos() <= file.End()
}
