package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the interprocedural half of pgridlint: a call graph over
// every loaded package, with per-function summaries propagated to a
// fixed point. The per-function analyzers that came first (rawclock,
// lockeddeliver, ...) see one declaration at a time, which means the PR 1
// deliver-under-lock deadlock is only caught when Lock and Deliver sit in
// the same body. The summary engine sees through helper calls: a
// function that *reaches* a blocking operation, or *eventually acquires*
// a mutex, carries that fact to every caller.
//
// Design, in the order things happen:
//
//  1. BuildGraph indexes every FuncDecl of every package by its
//     *types.Func object (with a per-package name fallback for files
//     whose type info is incomplete — the loader stubs out-of-module
//     imports, so some resolution noise is expected and tolerated).
//
//  2. One AST walk per function collects its direct facts in source
//     order: lock/unlock events, calls (resolved against the index),
//     blocking operations (channel send/receive, select without a
//     default, Deliver, Wait/Sleep/Accept, net dials), and allocation
//     sites (composite literals, make/new/append, fmt and friends,
//     string concatenation, closures).
//
//  3. propagate() iterates two monotone summaries to a fixed point:
//     Blocks (does calling this function ever reach a blocking op?) with
//     a witness chain for reporting, and Acquires (the set of lock
//     classes this function can take, transitively) with one witness
//     path per class. Both are finite and grow monotonically, so the
//     round-robin iteration terminates; cycles in the call graph simply
//     converge.
//
// Lock identity is a *class*, not an instance: "x.mu" where x has named
// type agent.Platform becomes "agent.Platform.mu", so two functions
// locking the same field of the same type agree on the key even through
// different receivers. When types don't resolve the key degrades to the
// rendered expression, scoped to the package, which keeps unrelated
// locals from aliasing each other.
//
// Soundness limits (documented in docs/static-analysis.md): calls
// through interfaces or function values are not resolved (no edges), so
// facts reached only that way are missed; path sensitivity is the same
// straight-line approximation lockeddeliver uses; allocations hidden
// behind stubbed stdlib calls are counted only for a known allocating
// set (fmt, encoding/json, strconv, strings builders).

// FuncNode is one function declaration in the program graph.
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func // nil when type resolution failed
	// Name is the qualified display name: "agent.(*Platform).Send" or
	// "durable.Open".
	Name string

	// Events are the function's lock/call/block occurrences in source
	// order — the linear scan blockheld and lockorder replay.
	Events []FuncEvent
	// Allocs are the direct allocation sites in this body.
	Allocs []AllocSite
	// HotBudget is the parsed //lint:hot budget (see ParseHotDirective);
	// nil when the function is not marked hot.
	HotBudget *int
	// hotPos anchors hotalloc diagnostics at the directive's decl.
	hotPos token.Pos

	// Summaries, valid after propagate():

	// Blocks is true when calling this function can reach a blocking
	// operation (directly or through any depth of resolved calls).
	Blocks bool
	// BlockWitness is a human-readable chain to one blocking op, e.g.
	// "flush → send on ch (mailbox.go:94)".
	BlockWitness string
	// Acquires maps every lock class this function can take
	// (transitively) to one witness path describing how.
	Acquires map[string]string
}

// FuncEvent is one occurrence inside a function body, in source order.
type FuncEvent struct {
	Pos  token.Pos
	Kind EventKind
	// Lock/unlock: the lock class key. Block: a short description.
	Detail string
	// Deferred marks an unlock performed by a defer statement.
	Deferred bool
	// Callee is set for EventCall when the target resolved in-graph.
	Callee *FuncNode
	Node   ast.Node
}

// EventKind discriminates FuncEvent.
type EventKind int

const (
	EventLock EventKind = iota
	EventUnlock
	EventCall
	EventBlock
)

// AllocSite is one direct allocation in a function body.
type AllocSite struct {
	Pos  token.Pos
	Kind string // "composite literal", "make", "fmt.Sprintf", ...
}

// Graph is the whole-program call graph plus summaries.
type Graph struct {
	// Funcs holds every indexed function in deterministic order
	// (package path, then file, then source position).
	Funcs []*FuncNode

	byObj  map[*types.Func]*FuncNode
	byName map[string]*FuncNode // "pkgpath\x00name" fallback
}

// FuncFor resolves a declaration back to its node (used by tests).
func (g *Graph) FuncFor(pkg *Package, decl *ast.FuncDecl) *FuncNode {
	for _, fn := range g.Funcs {
		if fn.Pkg == pkg && fn.Decl == decl {
			return fn
		}
	}
	return nil
}

// blockingCalls are method/function names that block by convention in
// this codebase: envelope delivery can park on a full mailbox, Wait and
// Sleep are waits by contract, Accept parks on the listener. Lock/RLock
// are deliberately absent — nested critical sections are lockorder's
// business, and flagging every one as "blocking" would drown blockheld.
var blockingCalls = map[string]string{
	"Deliver": "Deliver (can park on a full mailbox)",
	"deliver": "deliver (can park on a full mailbox)",
	"Wait":    "Wait",
	"Sleep":   "Sleep",
	"Accept":  "Accept",
}

// blockingNetFuncs are package-qualified stdlib calls that block on the
// network.
var blockingNetFuncs = map[string]map[string]bool{
	"net": {"Dial": true, "DialTimeout": true, "Listen": true},
}

// allocStdlib maps stubbed stdlib packages to the call names that
// allocate. "*" means every exported call in the package does.
var allocStdlib = map[string]map[string]bool{
	"fmt":           {"*": true},
	"encoding/json": {"Marshal": true, "MarshalIndent": true, "Unmarshal": true, "NewEncoder": true, "NewDecoder": true},
	"strconv":       {"Itoa": true, "FormatInt": true, "FormatUint": true, "FormatFloat": true, "Quote": true, "AppendInt": false},
	"strings":       {"Join": true, "Repeat": true, "Split": true, "Fields": true, "ToUpper": true, "ToLower": true, "ReplaceAll": true, "TrimSpace": false},
	"sort":          {"Strings": false},
}

// BuildGraph indexes every function declaration across pkgs, collects
// direct facts, and propagates summaries to a fixed point.
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{
		byObj:  map[*types.Func]*FuncNode{},
		byName: map[string]*FuncNode{},
	}
	// Pass 1: index declarations so calls can resolve forward.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := &FuncNode{
					Pkg:      pkg,
					Decl:     fd,
					Name:     qualifiedName(pkg, fd),
					Acquires: map[string]string{},
				}
				if pkg.Info != nil {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						fn.Obj = obj
						g.byObj[obj] = fn
					}
				}
				// Name fallback: only plain functions — method names
				// collide too easily across receivers.
				if fd.Recv == nil {
					g.byName[pkg.Path+"\x00"+fd.Name.Name] = fn
				}
				if budget, pos, ok := ParseHotDirective(pkg.Fset, fd); ok {
					b := budget
					fn.HotBudget = &b
					fn.hotPos = pos
				}
				g.Funcs = append(g.Funcs, fn)
			}
		}
	}
	// Pass 2: per-function direct facts.
	for _, fn := range g.Funcs {
		g.collectFacts(fn)
	}
	g.propagate()
	return g
}

// qualifiedName renders "pkg.(*Recv).Method" / "pkg.Func" for reports.
func qualifiedName(pkg *Package, fd *ast.FuncDecl) string {
	short := pkg.Path
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return short + "." + fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	return short + ".(" + typeExprString(recv) + ")." + fd.Name.Name
}

// typeExprString renders a receiver type expression.
func typeExprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeExprString(t.X)
	case *ast.IndexExpr:
		return typeExprString(t.X)
	case *ast.IndexListExpr:
		return typeExprString(t.X)
	default:
		return "?"
	}
}

// ParseHotDirective scans a function's doc comment for //lint:hot,
// returning the allocation budget (default 0) and the directive's
// position. The directive form is:
//
//	//lint:hot budget=<n>
//
// marking the function as a hot-path root for the hotalloc analyzer.
func ParseHotDirective(fset *token.FileSet, fd *ast.FuncDecl) (budget int, pos token.Pos, ok bool) {
	if fd.Doc == nil {
		return 0, token.NoPos, false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, "lint:hot") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:hot"))
		budget := 0
		for _, f := range strings.Fields(rest) {
			if v, found := strings.CutPrefix(f, "budget="); found {
				if n, err := strconv.Atoi(v); err == nil {
					budget = n
				}
			}
		}
		return budget, c.Pos(), true
	}
	return 0, token.NoPos, false
}

// collectFacts walks one body gathering events and allocation sites.
func (g *Graph) collectFacts(fn *FuncNode) {
	pkg := fn.Pkg
	file := fileOf(pkg, fn.Decl)
	deferred := map[*ast.CallExpr]bool{}
	// A go statement's call runs in a fresh goroutine: it cannot block
	// the spawner, so it contributes no block/call event (rawspawn owns
	// goroutine discipline). Its arguments still evaluate here and keep
	// their allocation sites.
	goCalls := map[*ast.CallExpr]bool{}
	// Channel ops that are a select's comm clauses are part of the
	// select (one event, blocking only without a default), not free-
	// standing blocking ops.
	selectComm := map[ast.Node]bool{}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.DeferStmt:
			deferred[node.Call] = true
		case *ast.GoStmt:
			goCalls[node.Call] = true
		case *ast.SelectStmt:
			for _, clause := range node.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					selectComm[comm] = true
				case *ast.ExprStmt:
					selectComm[unparen(comm.X)] = true
				case *ast.AssignStmt:
					if len(comm.Rhs) == 1 {
						selectComm[unparen(comm.Rhs[0])] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.SendStmt:
			if !selectComm[node] {
				fn.Events = append(fn.Events, FuncEvent{Pos: node.Pos(), Kind: EventBlock, Detail: "channel send", Node: node})
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && !selectComm[node] {
				fn.Events = append(fn.Events, FuncEvent{Pos: node.Pos(), Kind: EventBlock, Detail: "channel receive", Node: node})
			}
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				fn.Events = append(fn.Events, FuncEvent{Pos: node.Pos(), Kind: EventBlock, Detail: "select without default", Node: node})
			}
		case *ast.CompositeLit:
			fn.Allocs = append(fn.Allocs, AllocSite{Pos: node.Pos(), Kind: "composite literal"})
		case *ast.FuncLit:
			fn.Allocs = append(fn.Allocs, AllocSite{Pos: node.Pos(), Kind: "closure"})
			// Facts inside the literal belong to whoever runs it, which
			// the engine cannot see; skip the body (soundness limit).
			return false
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringExpr(pkg, node.X) {
				fn.Allocs = append(fn.Allocs, AllocSite{Pos: node.Pos(), Kind: "string concatenation"})
			}
		case *ast.CallExpr:
			if !goCalls[node] {
				g.collectCall(fn, file, node, deferred[node])
			}
		}
		return true
	})
	sort.SliceStable(fn.Events, func(i, j int) bool { return fn.Events[i].Pos < fn.Events[j].Pos })
}

// collectCall classifies one call expression: lock event, blocking op,
// allocation, resolved in-graph call — possibly several at once.
func (g *Graph) collectCall(fn *FuncNode, file *ast.File, call *ast.CallExpr, isDeferred bool) {
	pkg := fn.Pkg
	switch target := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch target.Name {
		case "make", "new", "append":
			if isBuiltin(pkg, target) {
				fn.Allocs = append(fn.Allocs, AllocSite{Pos: call.Pos(), Kind: target.Name})
			}
			return
		}
		if callee := g.resolve(pkg, target); callee != nil {
			fn.Events = append(fn.Events, FuncEvent{Pos: call.Pos(), Kind: EventCall, Callee: callee, Node: call})
		}
	case *ast.SelectorExpr:
		name := target.Sel.Name
		// Package-qualified call?
		if id, ok := target.X.(*ast.Ident); ok {
			if path := (&Pass{Pkg: pkg}).ImportedPath(file, id); path != "" {
				if names, ok := allocStdlib[path]; ok && (names["*"] || names[name]) {
					short := path[strings.LastIndex(path, "/")+1:]
					fn.Allocs = append(fn.Allocs, AllocSite{Pos: call.Pos(), Kind: short + "." + name})
				}
				if fns, ok := blockingNetFuncs[path]; ok && fns[name] {
					fn.Events = append(fn.Events, FuncEvent{Pos: call.Pos(), Kind: EventBlock, Detail: "net." + name, Node: call})
				}
				if callee := g.resolve(pkg, target.Sel); callee != nil {
					fn.Events = append(fn.Events, FuncEvent{Pos: call.Pos(), Kind: EventCall, Callee: callee, Node: call})
				}
				return
			}
		}
		switch name {
		case "Lock", "RLock":
			fn.Events = append(fn.Events, FuncEvent{Pos: call.Pos(), Kind: EventLock, Detail: lockClass(pkg, target.X), Node: call})
			return
		case "Unlock", "RUnlock":
			fn.Events = append(fn.Events, FuncEvent{Pos: call.Pos(), Kind: EventUnlock, Detail: lockClass(pkg, target.X), Deferred: isDeferred, Node: call})
			return
		}
		if desc, ok := blockingCalls[name]; ok {
			// Blocking-by-convention calls are terminal: the name is the
			// fact, and a call edge on top would double-report the site.
			fn.Events = append(fn.Events, FuncEvent{Pos: call.Pos(), Kind: EventBlock, Detail: desc, Node: call})
			return
		}
		if callee := g.resolve(pkg, target.Sel); callee != nil {
			fn.Events = append(fn.Events, FuncEvent{Pos: call.Pos(), Kind: EventCall, Callee: callee, Node: call})
		}
	}
}

// resolve maps a called identifier to its FuncNode, via type objects
// when possible and the same-package name table otherwise.
func (g *Graph) resolve(pkg *Package, id *ast.Ident) *FuncNode {
	if pkg.Info != nil {
		if obj, ok := pkg.Info.Uses[id].(*types.Func); ok {
			return g.byObj[obj] // nil for out-of-graph callees
		}
	}
	return g.byName[pkg.Path+"\x00"+id.Name]
}

// lockClass names the lock so different holders of the same field
// agree: "agent.Platform.mu" when the owner's type resolves, otherwise
// the rendered expression scoped to the package.
func lockClass(pkg *Package, mutexExpr ast.Expr) string {
	if sel, ok := unparen(mutexExpr).(*ast.SelectorExpr); ok && pkg.Info != nil {
		if tv, ok := pkg.Info.Types[sel.X]; ok {
			if path, name, ok := NamedType(tv.Type); ok {
				short := path[strings.LastIndex(path, "/")+1:]
				return short + "." + name + "." + sel.Sel.Name
			}
		}
	}
	return pkg.Path + "\x00" + exprKey(mutexExpr)
}

// LockClassString renders a class key for humans (strips the package
// scoping of unresolved keys).
func LockClassString(class string) string {
	if i := strings.IndexByte(class, 0); i >= 0 {
		path := class[:i]
		short := path[strings.LastIndex(path, "/")+1:]
		return short + ":" + class[i+1:]
	}
	return class
}

// propagate iterates the Blocks and Acquires summaries to a fixed
// point. Both domains are finite and the transfer functions monotone, so
// repeated sweeps terminate; the sweep order follows g.Funcs, which is
// deterministic.
func (g *Graph) propagate() {
	// Seed direct facts.
	for _, fn := range g.Funcs {
		for _, ev := range fn.Events {
			switch ev.Kind {
			case EventBlock:
				if !fn.Blocks {
					fn.Blocks = true
					fn.BlockWitness = ev.Detail + " (" + shortPos(fn.Pkg.Fset, ev.Pos) + ")"
				}
			case EventLock:
				if _, ok := fn.Acquires[ev.Detail]; !ok {
					fn.Acquires[ev.Detail] = fn.Name + " (" + shortPos(fn.Pkg.Fset, ev.Pos) + ")"
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs {
			for _, ev := range fn.Events {
				if ev.Kind != EventCall || ev.Callee == nil {
					continue
				}
				callee := ev.Callee
				if callee.Blocks && !fn.Blocks {
					fn.Blocks = true
					fn.BlockWitness = callee.Name + " → " + callee.BlockWitness
					changed = true
				}
				for class, via := range callee.Acquires {
					if _, ok := fn.Acquires[class]; !ok {
						fn.Acquires[class] = fn.Name + " → " + via
						changed = true
					}
				}
			}
		}
	}
}

// fileOf finds the file containing a declaration.
func fileOf(pkg *Package, decl ast.Node) *ast.File {
	for _, f := range pkg.Files {
		if f.Pos() <= decl.Pos() && decl.Pos() <= f.End() {
			return f
		}
	}
	return nil
}

// selectHasDefault reports whether a select statement has a default
// clause (a non-blocking poll).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isStringExpr reports whether an expression is string-typed (resolved
// type, or a string literal when types are unavailable).
func isStringExpr(pkg *Package, e ast.Expr) bool {
	if pkg.Info != nil {
		if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok {
				return b.Info()&types.IsString != 0
			}
			return false
		}
	}
	if lit, ok := unparen(e).(*ast.BasicLit); ok {
		return lit.Kind == token.STRING
	}
	return false
}

// isBuiltin reports whether an identifier resolves to the universe-scope
// builtin of the same name (true also when unresolved — shadowing a
// builtin is rare enough to accept the approximation).
func isBuiltin(pkg *Package, id *ast.Ident) bool {
	if pkg.Info != nil {
		if obj, ok := pkg.Info.Uses[id]; ok {
			_, isB := obj.(*types.Builtin)
			return isB
		}
	}
	return true
}

// shortPos renders "file.go:12" for witness chains.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// ReachableAllocs walks the resolved call graph from root collecting
// every allocation site reachable through it, including the root's own.
// Each function is visited once; the result is sorted by position for
// deterministic reports.
func (g *Graph) ReachableAllocs(root *FuncNode) []AllocSiteIn {
	var out []AllocSiteIn
	seen := map[*FuncNode]bool{}
	var visit func(fn *FuncNode)
	visit = func(fn *FuncNode) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		for _, a := range fn.Allocs {
			out = append(out, AllocSiteIn{Fn: fn, Site: a})
		}
		for _, ev := range fn.Events {
			if ev.Kind == EventCall && ev.Callee != nil {
				visit(ev.Callee)
			}
		}
	}
	visit(root)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn.Name != out[j].Fn.Name {
			return out[i].Fn.Name < out[j].Fn.Name
		}
		return out[i].Site.Pos < out[j].Site.Pos
	})
	return out
}

// AllocSiteIn is an allocation site paired with its owning function.
type AllocSiteIn struct {
	Fn   *FuncNode
	Site AllocSite
}
