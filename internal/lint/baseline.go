package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The findings baseline lets a new analyzer land before the codebase is
// clean under it: known findings are committed to lint-baseline.json
// and burned down over time, while anything *not* in the baseline fails
// the gate immediately. Entries are keyed by (file, rule, message) —
// deliberately not by line, so unrelated edits that shift code do not
// resurrect a baselined finding. The cost of that choice: moving a
// baselined finding to another file, or editing code enough to change
// the message, surfaces it again — which is the conservative direction.

// BaselineSchema identifies the on-disk format.
const BaselineSchema = "pgridlint-baseline/v1"

// BaselineEntry is one accepted pre-existing finding.
type BaselineEntry struct {
	// File is module-root-relative with forward slashes.
	File    string `json:"file"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// Baseline is the committed set of accepted findings.
type Baseline struct {
	Schema   string          `json:"schema"`
	Findings []BaselineEntry `json:"findings"`
}

// NewBaseline captures the given findings as a baseline, with paths
// made relative to moduleRoot.
func NewBaseline(moduleRoot string, diags []Diagnostic) Baseline {
	b := Baseline{Schema: BaselineSchema, Findings: make([]BaselineEntry, 0, len(diags))}
	for _, d := range diags {
		b.Findings = append(b.Findings, BaselineEntry{
			File:    relFile(moduleRoot, d.Pos.Filename),
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaseline writes the baseline as indented JSON (stable output for
// small diffs in review).
func WriteBaseline(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("lint: parse baseline %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return b, fmt.Errorf("lint: baseline %s has schema %q, want %q", path, b.Schema, BaselineSchema)
	}
	return b, nil
}

// ApplyBaseline splits findings into new (not covered) and accepted
// (matched an entry), and reports how many baseline entries went
// unmatched — the burn-down signal. Matching is multiset: one entry
// excuses one finding.
func ApplyBaseline(moduleRoot string, b Baseline, diags []Diagnostic) (fresh, accepted []Diagnostic, stale int) {
	budget := map[BaselineEntry]int{}
	for _, e := range b.Findings {
		budget[e]++
	}
	for _, d := range diags {
		key := BaselineEntry{
			File:    relFile(moduleRoot, d.Pos.Filename),
			Rule:    d.Rule,
			Message: d.Message,
		}
		if budget[key] > 0 {
			budget[key]--
			accepted = append(accepted, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	for _, n := range budget {
		stale += n
	}
	return fresh, accepted, stale
}

// relFile renders a diagnostic filename relative to the module root
// with forward slashes, falling back to the input when outside it.
func relFile(moduleRoot, file string) string {
	if moduleRoot == "" {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(moduleRoot, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}

// JSONFinding is one diagnostic in -json output.
type JSONFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Fix     string `json:"fix,omitempty"`
	// Baselined marks findings excused by the baseline file; they are
	// included so tooling can render the burn-down, but they do not
	// affect the exit code.
	Baselined bool `json:"baselined,omitempty"`
}

// JSONReport is the machine-readable output shape (schema pgridlint/v1).
type JSONReport struct {
	Schema string `json:"schema"`
	// Findings lists new findings first, then baselined ones, each
	// sorted by position.
	Findings []JSONFinding `json:"findings"`
	Stats    JSONStats     `json:"stats"`
}

// JSONStats summarizes one run.
type JSONStats struct {
	Packages  int `json:"packages"`
	Rules     int `json:"rules"`
	New       int `json:"new"`
	Baselined int `json:"baselined"`
	// StaleBaseline counts baseline entries no finding matched — ready
	// to be dropped by regenerating the baseline.
	StaleBaseline int   `json:"staleBaseline"`
	ElapsedMS     int64 `json:"elapsedMs"`
}

// NewJSONReport assembles the -json payload.
func NewJSONReport(moduleRoot string, fresh, accepted []Diagnostic, pkgs, rules int, stale int, elapsedMS int64) JSONReport {
	rep := JSONReport{
		Schema: "pgridlint/v1",
		Stats: JSONStats{
			Packages:      pkgs,
			Rules:         rules,
			New:           len(fresh),
			Baselined:     len(accepted),
			StaleBaseline: stale,
			ElapsedMS:     elapsedMS,
		},
	}
	add := func(d Diagnostic, baselined bool) {
		rep.Findings = append(rep.Findings, JSONFinding{
			File:      relFile(moduleRoot, d.Pos.Filename),
			Line:      d.Pos.Line,
			Col:       d.Pos.Column,
			Rule:      d.Rule,
			Message:   d.Message,
			Fix:       d.Fix,
			Baselined: baselined,
		})
	}
	for _, d := range fresh {
		add(d, false)
	}
	for _, d := range accepted {
		add(d, true)
	}
	if rep.Findings == nil {
		rep.Findings = []JSONFinding{}
	}
	return rep
}
