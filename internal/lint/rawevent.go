package lint

import (
	"go/ast"
)

// RawEvent flags raw obs.Event composite literals outside the obs
// package itself. A hand-rolled wide event bypasses NewEvent, the only
// constructor that pins the identity fields (node, trace, from, to,
// start) every downstream consumer keys on: the monitor's per-node
// event view, the flight recorder's dump grouping, and the exemplar
// join from pgridload percentiles all break silently on an event whose
// Trace or Node was forgotten. Inside internal/obs the literal IS the
// constructor; everywhere else it is a schema violation waiting for a
// query that filters on the missing field.
func RawEvent() *Analyzer {
	return &Analyzer{
		Name: "rawevent",
		Doc:  "raw obs.Event literal outside internal/obs (bypasses NewEvent and the wide-event identity fields)",
		Run: func(pass *Pass) {
			if pass.Pkg.Path == obsPkgPath {
				return
			}
			for _, file := range pass.Pkg.Files {
				f := file
				ast.Inspect(f, func(n ast.Node) bool {
					lit, ok := n.(*ast.CompositeLit)
					if !ok {
						return true
					}
					if tv, ok := pass.Pkg.Info.Types[lit]; ok {
						if path, name, ok := NamedType(tv.Type); ok {
							if path == obsPkgPath && name == "Event" {
								reportEventLit(pass, lit)
							}
							return true
						}
					}
					if sel, ok := lit.Type.(*ast.SelectorExpr); ok && sel.Sel.Name == "Event" {
						if id, ok := sel.X.(*ast.Ident); ok && pass.ImportedPath(f, id) == obsPkgPath {
							reportEventLit(pass, lit)
						}
					}
					return true
				})
			}
		},
	}
}

func reportEventLit(pass *Pass, lit *ast.CompositeLit) {
	pass.Report(lit,
		"raw obs.Event literal skips NewEvent (trace/node/from/to identity fields the monitor, flight recorder, and exemplar join key on)",
		"build wide events with obs.NewEvent and the accretion helpers (AddPhase/SetAttr/Finish)")
}
