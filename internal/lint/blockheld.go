package lint

import (
	"sort"
	"strings"
)

// BlockHeld generalizes lockeddeliver from one blocking call (Deliver)
// caught in one body, to *any* blocking operation reachable through
// *any* depth of resolved helper calls while a mutex is held. Blocking
// under a lock is how the PR 1 DisconnectionDeputy deadlocked — the
// lock holder parks on something that can only make progress once the
// lock is free — and the single-function rule only catches the literal
// shape. The summary engine propagates "calling this can block" up the
// call graph, so the deadlock hides behind helpers at its peril.
//
// Blocking operations: channel send/receive, select without a default,
// Deliver/deliver, Wait, Sleep, Accept, and net dials. The held-set
// tracking is the same straight-line source-order scan lockeddeliver
// uses (deferred Unlock holds to exit).
//
// Direct Deliver-under-lock sites are left to lockeddeliver, which owns
// that exact shape and its suppressions; blockheld reports everything
// else, so the two rules never double-flag one line.
func BlockHeld() *Analyzer {
	return &Analyzer{
		Name:       "blockheld",
		Doc:        "blocking operation (chan op, select, Deliver, Wait, ...) reachable while a mutex is held",
		RunProgram: runBlockHeld,
	}
}

func runBlockHeld(pass *ProgramPass) {
	for _, fn := range pass.Graph.Funcs {
		held := map[string]bool{}
		for _, ev := range fn.Events {
			switch ev.Kind {
			case EventLock:
				held[ev.Detail] = true
			case EventUnlock:
				if !ev.Deferred {
					delete(held, ev.Detail)
				}
			case EventBlock:
				if len(held) == 0 {
					continue
				}
				// Deliver directly under a lock is lockeddeliver's
				// finding; do not report it twice.
				if strings.HasPrefix(ev.Detail, "Deliver") || strings.HasPrefix(ev.Detail, "deliver") {
					continue
				}
				pass.Report(fn.Pkg.Fset.Position(ev.Pos),
					ev.Detail+" while holding "+heldList(held)+" can deadlock or stall every other user of the lock",
					"move the blocking operation outside the critical section")
			case EventCall:
				if ev.Callee == nil || !ev.Callee.Blocks || len(held) == 0 {
					continue
				}
				pass.Report(fn.Pkg.Fset.Position(ev.Pos),
					"call while holding "+heldList(held)+" reaches a blocking op: "+
						ev.Callee.Name+" → "+ev.Callee.BlockWitness,
					"restructure so the lock is released before the call (collect under the lock, act after Unlock)")
			}
		}
	}
}

// heldList renders the held lock classes, sorted for determinism.
func heldList(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, LockClassString(k))
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
