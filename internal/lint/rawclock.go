package lint

import (
	"go/ast"
)

// rawClockBanned are the time-package functions that read or wait on
// the wall clock. Everything else in package time (Duration arithmetic,
// Date construction, parsing) is pure and allowed.
var rawClockBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// RawClock flags direct wall-clock access (time.Now, time.Sleep,
// time.After, time.NewTimer, ...) outside the exempt packages. All time
// must flow through the obs.Clock seam so the FakeClock can drive
// retry/backoff/staleness machinery deterministically in tests; one raw
// time.Sleep in a hot path turns a microsecond FakeClock test back into
// a wall-clock one. Test files are not loaded by the framework, so the
// rule applies to production sources only.
func RawClock(exempt ...string) *Analyzer {
	ex := map[string]bool{}
	for _, p := range exempt {
		ex[p] = true
	}
	return &Analyzer{
		Name: "rawclock",
		Doc:  "wall-clock access outside the obs.Clock seam (time.Now/Sleep/After/... beyond the exempt packages)",
		Run: func(pass *Pass) {
			if ex[pass.Pkg.Path] {
				return
			}
			for _, file := range pass.Pkg.Files {
				f := file
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok || !rawClockBanned[sel.Sel.Name] {
						return true
					}
					if pass.ImportedPath(f, id) != "time" {
						return true
					}
					pass.Report(sel,
						"time."+sel.Sel.Name+" bypasses the obs.Clock seam (FakeClock tests cannot control it)",
						"thread an obs.Clock through this path, or use obs.Real explicitly")
					return true
				})
			}
		},
	}
}
