package lint

import (
	"go/ast"
	"regexp"
)

// stopNamePattern matches identifiers that conventionally carry a stop
// signal: done/quit/stop channels, contexts, cancel funcs, wait groups.
var stopNamePattern = regexp.MustCompile(`(?i)^(done|quit|stop|stopped|exit|closing|closed|cancel|ctx|wg)$`)

// GoroLeak flags `go func() { ... }()` statements whose literal body
// contains an unbounded loop (`for { ... }` with no condition) but
// references no stop signal — no done/quit/stop channel, no context, no
// WaitGroup. Such a goroutine has no shutdown path: it outlives its
// owner, pins its captures, and turns every test of its package into a
// goroutine leak (see internal/leak, the runtime half of this check).
// Run-to-completion goroutines (no unbounded loop) and named-function
// goroutines (whose stop path lives in the callee) are not flagged.
func GoroLeak() *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc:  "go func literal with an unbounded loop and no stop signal (ctx/done channel/WaitGroup)",
		Run: func(pass *Pass) {
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					lit, ok := unparen(g.Call.Fun).(*ast.FuncLit)
					if !ok {
						return true
					}
					if hasUnboundedLoop(lit.Body) && !referencesStopSignal(lit.Body) {
						pass.Report(g,
							"goroutine loops forever with no stop signal in scope",
							"select on a done/quit channel (or ctx.Done()) inside the loop, or bound the loop")
					}
					return true
				})
			}
		},
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// hasUnboundedLoop reports whether body contains a `for {}` (no
// condition) loop. Conditioned and three-clause loops terminate by
// construction or are the author's explicit responsibility; range loops
// end when their operand does (a closed channel, a finite collection).
func hasUnboundedLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil && f.Init == nil && f.Post == nil {
			found = true
			return false
		}
		return !found
	})
	return found
}

// referencesStopSignal reports whether the body mentions any
// conventionally named stop mechanism, either as a bare identifier
// (done, ctx, wg) or as the field of a receiver (l.done, pr.stop).
func referencesStopSignal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if stopNamePattern.MatchString(x.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if stopNamePattern.MatchString(x.Sel.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}
