// Package envhops is a pgridlint fixture: raw envelope literals versus
// the constructors.
package envhops

import "pervasivegrid/internal/agent"

// Bad hand-rolls an envelope, bypassing hop accounting and encoding.
func Bad() agent.Envelope {
	return agent.Envelope{To: "peer", Performative: "inform"} // want envhops
}

// BadPtr does the same through a pointer literal.
func BadPtr() *agent.Envelope {
	return &agent.Envelope{To: "peer"} // want envhops
}

// Good uses the constructor.
func Good() (agent.Envelope, error) {
	return agent.NewEnvelope("self", "peer", "inform", "fixture", 42)
}

// Suppressed is a codec-level literal that never rides a route.
func Suppressed() agent.Envelope {
	//lint:ignore envhops fixture: codec-internal literal, never routed
	return agent.Envelope{ContentType: "application/json"}
}
