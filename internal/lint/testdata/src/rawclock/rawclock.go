// Package rawclock is a pgridlint fixture: seeded wall-clock
// violations plus the allowed shapes.
package rawclock

import "time"

// Bad reads the wall clock directly.
func Bad() time.Time {
	return time.Now() // want rawclock
}

// BadSleep blocks on the wall clock.
func BadSleep() {
	time.Sleep(time.Millisecond) // want rawclock
}

// BadTimer arms a wall-clock timer and waits on a wall-clock channel.
func BadTimer() {
	t := time.NewTimer(time.Second) // want rawclock
	<-t.C
	<-time.After(time.Millisecond) // want rawclock
}

// BadSince measures with the wall clock.
func BadSince(start time.Time) time.Duration {
	return time.Since(start) // want rawclock
}

// Suppressed demonstrates the trailing-directive form.
func Suppressed() time.Time {
	return time.Now() //lint:ignore rawclock fixture demonstrates suppression
}

// SuppressedAbove demonstrates the standalone-directive form.
func SuppressedAbove() {
	//lint:ignore rawclock fixture demonstrates line-above suppression
	time.Sleep(time.Millisecond)
}

// Allowed uses only the pure parts of package time.
func Allowed() time.Duration {
	d := 3 * time.Hour
	_ = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	return d
}
