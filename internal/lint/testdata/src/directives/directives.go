// Package directives is a pgridlint fixture: malformed suppression
// comments are themselves findings.
package directives

import "time"

// MissingReason has a rule but no reason.
func MissingReason() time.Time {
	//lint:ignore rawclock
	return time.Now()
}

// NoRule has nothing after the directive.
func NoRule() {
	//lint:ignore
	time.Sleep(time.Millisecond)
}
