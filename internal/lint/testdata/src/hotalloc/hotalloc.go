// Package hotalloc is the fixture corpus for the hotalloc analyzer: a
// hot root whose reachable allocation sites exceed its budget, one that
// fits, and an allocation-free root with the default zero budget.
package hotalloc

import "fmt"

// Hot reaches four allocation sites (a string concatenation here, plus
// a composite literal, a make, and a fmt call in the helper) against a
// budget of two.
//
//lint:hot budget=2
func Hot() string { // want hotalloc
	s := helper()
	return s + "!"
}

func helper() string {
	m := map[string]int{}
	_ = m
	b := make([]byte, 4)
	return fmt.Sprintf("%v", b)
}

// Cool fits its budget exactly: one make, budget one.
//
//lint:hot budget=1
func Cool() []byte {
	return make([]byte, 8)
}

// Zero allocates nothing and says so: the default budget is zero.
//
//lint:hot
func Zero(x, y int) int { return x + y }

// deepRoot exceeds through a three-deep call chain: each level adds one
// composite literal.
//
//lint:hot budget=2
func DeepRoot() [3][]int { // want hotalloc
	return [3][]int{d1(), d2(), nil}
}

func d1() []int { return []int{1} }

func d2() []int { return append(d1(), 2) }
