// Package rawspawn is a pgridlint fixture: long-running goroutines
// launched raw versus through a supervision fence.
package rawspawn

// pump loops forever; anything that go-spawns it raw is flagged.
func pump(ch chan int, done chan struct{}) {
	for {
		select {
		case <-ch:
		case <-done:
			return
		}
	}
}

// finite runs to completion.
func finite(ch chan int) {
	for i := 0; i < 4; i++ {
		ch <- i
	}
}

type worker struct {
	ch   chan int
	done chan struct{}
}

// loop is a long-running method body.
func (w *worker) loop() {
	for {
		select {
		case <-w.ch:
		case <-w.done:
			return
		}
	}
}

// BadLiteral spawns a looping literal raw: stoppable, so goroleak is
// satisfied, but a panic inside still dies unfenced.
func BadLiteral(ch chan int, done chan struct{}) {
	go func() { // want rawspawn
		for {
			select {
			case <-ch:
			case <-done:
				return
			}
		}
	}()
}

// BadNamed spawns a looping same-package function raw. goroleak does not
// fire — the callee has a stop path — but the panic fence is missing.
func BadNamed(ch chan int, done chan struct{}) {
	go pump(ch, done) // want rawspawn
}

// BadMethod spawns a looping method raw.
func BadMethod(w *worker) {
	go w.loop() // want rawspawn
}

// GoodFinite runs to completion; raw is fine.
func GoodFinite(ch chan int) {
	go finite(ch)
}

// GoodLiteralBounded ends on its own.
func GoodLiteralBounded(ch chan int) {
	go func() {
		for i := 0; i < 2; i++ {
			ch <- i
		}
	}()
}

// Suppressed documents a deliberate raw spawn.
func Suppressed(w *worker) {
	//lint:ignore rawspawn fixture: fence lives in the caller
	go w.loop()
}
