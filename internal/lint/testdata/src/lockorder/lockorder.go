// Package lockorder is the fixture corpus for the lockorder analyzer:
// a direct two-lock inversion, an inversion hidden behind a helper
// call, a consistently-ordered pair that must stay silent, and a
// recursive acquisition that is not this rule's business.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

var a A
var b B

// ab and ba together form the true cycle: A→B here, B→A below.
func ab() {
	a.mu.Lock()
	b.mu.Lock() // want lockorder
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba() {
	b.mu.Lock()
	a.mu.Lock() // want lockorder
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

var c C
var d D

// lockD is the helper hiding one half of the second cycle: cd never
// mentions D's mutex, but reaches it through this call.
func lockD() {
	d.mu.Lock()
	d.mu.Unlock()
}

func cd() {
	c.mu.Lock()
	lockD() // want lockorder
	c.mu.Unlock()
}

func dc() {
	d.mu.Lock()
	c.mu.Lock() // want lockorder
	c.mu.Unlock()
	d.mu.Unlock()
}

type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

var e E
var f F

// ef1 and ef2 acquire in the same order on every path: a consistent
// global order is exactly what the rule asks for, so no finding.
func ef1() {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func ef2() {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// reacquire takes the same class twice — a recursive-locking bug, not
// an ordering inversion; lockorder stays silent.
func reacquire() {
	a.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	a.mu.Unlock()
}
