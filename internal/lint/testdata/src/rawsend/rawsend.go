// Package rawsend is a pgridlint fixture: raw platform sends in a
// package that is on the retry-required list.
package rawsend

import (
	"time"

	"pervasivegrid/internal/agent"
)

// Bad sends without the retry layer.
func Bad(p *agent.Platform, env agent.Envelope) {
	_ = p.Send(env) // want rawsend
}

// BadCall opens a conversation that one dropped envelope kills.
func BadCall(p *agent.Platform) {
	_, _ = agent.Call(p, "peer", "request", "fixture", nil, time.Second) // want rawsend
}

// BadContext sends through the handler context.
func BadContext(ctx *agent.Context, env agent.Envelope) {
	_ = ctx.Send(env) // want rawsend
}

// Good rides the retry layer.
func Good(p *agent.Platform, env agent.Envelope) {
	_ = agent.SendRetry(p, env, time.Second, agent.RetryPolicy{})
}

// Suppressed is a deliberate fire-and-forget send.
func Suppressed(p *agent.Platform, env agent.Envelope) {
	//lint:ignore rawsend fixture: local fire-and-forget by design
	_ = p.Send(env)
}
