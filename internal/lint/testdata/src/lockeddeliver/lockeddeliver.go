// Package lockeddeliver is a pgridlint fixture: deliveries inside and
// outside critical sections.
package lockeddeliver

import "sync"

// Sink is a stand-in for agent.Deputy.
type Sink interface {
	Deliver(v int) error
}

// Box guards a buffer with a mutex and forwards to next.
type Box struct {
	mu     sync.Mutex
	buffer []int
	next   Sink
}

// BadDeferred holds the lock (via defer) across the delivery.
func (b *Box) BadDeferred(v int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next.Deliver(v) // want lockeddeliver
}

// BadBetween delivers between Lock and Unlock.
func (b *Box) BadBetween(v int) {
	b.mu.Lock()
	_ = b.next.Deliver(v) // want lockeddeliver
	b.mu.Unlock()
}

// GoodFlush collects under the lock and delivers after releasing it —
// the shape the PR 1 DisconnectionDeputy fix established.
func (b *Box) GoodFlush() {
	b.mu.Lock()
	buf := b.buffer
	b.buffer = nil
	b.mu.Unlock()
	for _, v := range buf {
		_ = b.next.Deliver(v)
	}
}

// Suppressed documents a passthrough that is safe by construction.
func (b *Box) Suppressed(v int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	//lint:ignore lockeddeliver fixture: next is non-blocking by contract
	return b.next.Deliver(v)
}
