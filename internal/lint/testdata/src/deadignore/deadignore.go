// Package deadignore is the fixture corpus for the deadignore rule: a
// live suppression (still hiding a finding), a stale one (nothing left
// to hide), one naming a rule outside the run, and a wildcard — only
// the stale one is reported.
package deadignore

import "time"

// live still suppresses a real rawclock finding, so it is not dead.
func live() {
	//lint:ignore rawclock fixture keeps a live suppression
	time.Sleep(time.Millisecond)
}

// stale suppresses nothing: the offending line was fixed, the
// directive stayed behind.
func stale() {
	//lint:ignore rawclock the sleep this excused was deleted // want deadignore
	_ = 1 + 1
}

// offrun names a rule that is not part of this run; its deadness is
// unknowable, so it is left alone.
func offrun() {
	//lint:ignore notarule the rule only runs in another configuration
	_ = 2 + 2
}

// wildcard blanket waivers are exempt for the same reason.
func wildcard() {
	//lint:ignore * blanket waiver, deadness unknowable
	_ = 3 + 3
}
