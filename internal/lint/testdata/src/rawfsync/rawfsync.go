// Package rawfsync is a pgridlint fixture: direct os.File mutation
// that bypasses the durable WAL layer, plus the allowed shapes.
package rawfsync

import (
	"io"
	"os"
)

// Bad journals bytes straight through a raw handle: no CRC framing, no
// fsync policy, no torn-tail recovery.
func Bad(path string, rec []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(rec); err != nil { // want rawfsync
		return err
	}
	return f.Sync() // want rawfsync
}

// BadOpenFile appends through a raw handle.
func BadOpenFile(path string, rec []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(string(rec)) // want rawfsync
	return err
}

// BadTruncate amputates a file outside the recovery scan.
func BadTruncate(path string) error {
	f, err := os.CreateTemp("", "wal-*")
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Truncate(0) // want rawfsync
}

// Suppressed demonstrates the trailing-directive form.
func Suppressed(path string, rec []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(rec) //lint:ignore rawfsync fixture demonstrates suppression
	return err
}

// Allowed shapes: one-shot helpers hold no handle to mis-fsync, a
// read-only handle cannot corrupt a journal, and writing through an
// io.Writer seam is the decorator pattern durable itself uses.
func Allowed(path string, rec []byte, w io.Writer) error {
	if err := os.WriteFile(path, rec, 0o644); err != nil {
		return err
	}
	r, err := os.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	if _, err := w.Write(rec); err != nil {
		return err
	}
	return nil
}
