// Package goroleak is a pgridlint fixture: leaky and stoppable
// goroutine launches.
package goroleak

// Bad spins forever with no way to stop it.
func Bad(ch chan int) {
	go func() { // want goroleak
		for {
			<-ch
		}
	}()
}

// GoodSelect has a done channel in its loop.
func GoodSelect(ch chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case <-ch:
			case <-done:
				return
			}
		}
	}()
}

// GoodBounded runs to completion.
func GoodBounded(ch chan int) {
	go func() {
		for i := 0; i < 8; i++ {
			ch <- i
		}
	}()
}

// GoodRange ends when the channel closes.
func GoodRange(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// Suppressed is a process-lifetime goroutine by design.
func Suppressed(ch chan int) {
	//lint:ignore goroleak fixture: process-lifetime pump by design
	go func() {
		for {
			<-ch
		}
	}()
}
