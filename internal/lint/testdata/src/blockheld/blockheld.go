// Package blockheld is the fixture corpus for the blockheld analyzer:
// blocking operations under a lock — direct, and reached through helper
// calls up to three deep — plus the shapes that must stay silent
// (blocking after Unlock, non-blocking select polls, and the direct
// Deliver-under-lock that lockeddeliver owns).
package blockheld

import "sync"

// Deputy is a concrete delivery target whose Deliver parks on a
// channel, like a full mailbox does.
type Deputy struct{ ch chan int }

func (d *Deputy) Deliver(v int) { d.ch <- v }

type Node struct {
	mu  sync.Mutex
	ch  chan int
	wg  sync.WaitGroup
	dep *Deputy
}

// directSend blocks on the channel inside the critical section.
func (n *Node) directSend(v int) {
	n.mu.Lock()
	n.ch <- v // want blockheld
	n.mu.Unlock()
}

// h3/h2/h1: the blocking receive sits three helper calls below the
// lock holder.
func (n *Node) h3() { <-n.ch }

func (n *Node) h2() { n.h3() }

func (n *Node) h1() { n.h2() }

func (n *Node) chain() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.h1() // want blockheld
}

// flush hides the PR 1 deliver-under-lock shape one call deep: the
// caller holds the lock, the helper delivers.
func (n *Node) flush(v int) { n.dep.Deliver(v) }

func (n *Node) deliverViaHelper(v int) {
	n.mu.Lock()
	n.flush(v) // want blockheld
	n.mu.Unlock()
}

// deliverDirect is lockeddeliver's finding, not blockheld's — the two
// rules split the class so one line is never flagged twice.
func (n *Node) deliverDirect(v int) {
	n.mu.Lock()
	n.dep.Deliver(v)
	n.mu.Unlock()
}

// wait parks on the WaitGroup with the lock held.
func (n *Node) wait() {
	n.mu.Lock()
	n.wg.Wait() // want blockheld
	n.mu.Unlock()
}

// sel blocks in a select with no default.
func (n *Node) sel() {
	n.mu.Lock()
	select { // want blockheld
	case v := <-n.ch:
		_ = v
	}
	n.mu.Unlock()
}

// poll is a non-blocking select: the default clause makes the receive a
// peek, so holding the lock across it is fine.
func (n *Node) poll() {
	n.mu.Lock()
	select {
	case v := <-n.ch:
		_ = v
	default:
	}
	n.mu.Unlock()
}

// afterUnlock releases the lock before blocking — the fix the rule
// suggests, and it must stay silent.
func (n *Node) afterUnlock(v int) {
	n.mu.Lock()
	n.mu.Unlock()
	n.ch <- v
}

// spawned launches the blocking chain in a fresh goroutine: the
// spawner does not block, so holding the lock across the go statement
// is fine (goroutine discipline is rawspawn's business).
func (n *Node) spawned() {
	n.mu.Lock()
	go n.h1()
	n.mu.Unlock()
}

// suppressed: an accepted blocking send under the lock, excused with a
// reason; the directive keeps the finding out and deadignore considers
// the directive live.
func (n *Node) suppressed(v int) {
	n.mu.Lock()
	//lint:ignore blockheld fixture exercises the suppression path
	n.ch <- v
	n.mu.Unlock()
}
