// Package rawevent is a pgridlint fixture: raw wide-event literals
// versus the NewEvent constructor.
package rawevent

import (
	"time"

	"pervasivegrid/internal/obs"
)

// Bad hand-rolls a wide event, forgetting the identity fields.
func Bad() obs.Event {
	return obs.Event{Outcome: obs.OutcomeOK} // want rawevent
}

// BadPtr does the same through a pointer literal.
func BadPtr() *obs.Event {
	return &obs.Event{Trace: 1, Node: "n1"} // want rawevent
}

// Good uses the constructor and the accretion helpers.
func Good(now time.Time) obs.Event {
	ev := obs.NewEvent("n1", 1, "a", "b", "fixture", now)
	ev.SetAttr("k", "v")
	ev.Finish(obs.OutcomeOK, now)
	return ev
}

// GoodSlice carries events without constructing any.
func GoodSlice(evs []obs.Event) int { return len(evs) }

// Suppressed is a decode-target literal that never leaves the function.
func Suppressed() obs.Event {
	//lint:ignore rawevent fixture: zero value as a JSON decode target
	return obs.Event{}
}
