package lint

import (
	"go/ast"
)

// RawSend flags raw agent.Send / agent.Call conversations in packages
// on the retry-required list. Those packages talk across node
// boundaries (gateways, reconnecting links), where a raw send turns
// transient loss — a full mailbox, a link mid-reconnect — into silent
// failure; SendRetry/CallRetry ride it out with backoff and
// cross-attempt reply correlation. Packages whose sends are strictly
// local (or that exist to exercise the raw path) stay off the list.
func RawSend(retryRequired ...string) *Analyzer {
	req := map[string]bool{}
	for _, p := range retryRequired {
		req[p] = true
	}
	return &Analyzer{
		Name: "rawsend",
		Doc:  "raw Send/Call in a package on the retry-required list (use SendRetry/CallRetry)",
		Run: func(pass *Pass) {
			if !req[pass.Pkg.Path] {
				return
			}
			for _, file := range pass.Pkg.Files {
				f := file
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					name := sel.Sel.Name
					if name != "Send" && name != "Call" {
						return true
					}
					// Package-level agent.Call(...).
					if id, ok := sel.X.(*ast.Ident); ok && pass.ImportedPath(f, id) == agentPkgPath {
						if name == "Call" {
							pass.Report(call,
								"raw agent.Call loses the conversation on one dropped envelope",
								"use agent.CallRetry with a RetryPolicy")
						}
						return true
					}
					// Method sends: (*agent.Platform).Send, (*agent.Context).Send.
					tv, ok := pass.Pkg.Info.Types[sel.X]
					if !ok {
						return true
					}
					path, tname, ok := NamedType(tv.Type)
					if !ok || path != agentPkgPath {
						return true
					}
					if (tname == "Platform" || tname == "Context") && name == "Send" {
						pass.Report(call,
							"raw "+tname+".Send drops on transient failure (mailbox full, link mid-reconnect)",
							"use agent.SendRetry, or //lint:ignore rawsend with the reason the loss is acceptable")
					}
					return true
				})
			}
		},
	}
}
