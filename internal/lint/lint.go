// Package lint is pgridlint's analyzer framework: a zero-dependency
// static-analysis harness built directly on go/parser, go/ast, and
// go/types (no x/tools), matching the module's from-scratch ethos.
//
// Three PRs of resilience, observability, and telemetry work accreted
// project invariants that nothing enforced mechanically: all time flows
// through the obs.Clock seam, cross-node sends go through the retry
// layer, deputies never deliver while holding a lock, spawned goroutines
// need a stop path, and envelopes are built by the constructors that
// keep hop accounting honest. Each invariant is one Analyzer here; the
// cmd/pgridlint driver runs them over every package and make check
// fails on any finding.
//
// Findings are suppressed inline with
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// placed on the offending line or alone on the line above it. The
// reason is mandatory: a suppression without one is itself a finding
// (rule "lint-directive"), so silent opt-outs cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: where, which rule, what is wrong, and how
// to fix it.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	// Fix is the suggested remedy, printed after the message.
	Fix string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	if d.Fix != "" {
		s += " (fix: " + d.Fix + ")"
	}
	return s
}

// Analyzer is one named invariant check. Per-package analyzers set Run
// and see one type-checked package at a time; whole-program analyzers
// set RunProgram instead and see every loaded package plus the
// interprocedural call graph (built lazily, once, shared between them).
type Analyzer struct {
	// Name is the rule ID used in diagnostics and //lint:ignore.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(pass *Pass)
	// RunProgram inspects the whole program at once. Exactly one of Run
	// and RunProgram must be set.
	RunProgram func(pass *ProgramPass)
}

// ProgramPass carries one whole-program analyzer run.
type ProgramPass struct {
	// Pkgs are every loaded package, in load order.
	Pkgs []*Package
	// Graph is the interprocedural call graph with summaries.
	Graph    *Graph
	analyzer *Analyzer
	report   func(Diagnostic)
}

// Report records a finding at an explicit position (program analyzers
// report across packages, so they carry their own fset positions).
func (p *ProgramPass) Report(pos token.Position, message, fix string) {
	p.report(Diagnostic{
		Pos:     pos,
		Rule:    p.analyzer.Name,
		Message: message,
		Fix:     fix,
	})
}

// Pass carries one (analyzer, package) run and collects its findings.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	report   func(Diagnostic)
}

// Report records a finding anchored at node's position.
func (p *Pass) Report(node ast.Node, message, fix string) {
	p.report(Diagnostic{
		Pos:     p.Pkg.Fset.Position(node.Pos()),
		Rule:    p.analyzer.Name,
		Message: message,
		Fix:     fix,
	})
}

// ImportedPath resolves an identifier used as a package qualifier (the
// "time" in time.Now) to the import path it names, or "" when the
// identifier is not a package name. Resolution goes through go/types
// when available and falls back to matching the file's import table,
// so a package whose type information is incomplete still resolves its
// qualifiers.
func (p *Pass) ImportedPath(file *ast.File, id *ast.Ident) string {
	if obj, ok := p.Pkg.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // a variable, type, etc. shadowing the package name
	}
	// Fallback: an unresolved identifier that matches an import's name.
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(name, "/"); i >= 0 {
			name = name[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}

// NamedType reduces a type to its named type's (package path, name),
// unwrapping one level of pointer. It returns ok=false for unnamed,
// builtin, or invalid types.
func NamedType(t types.Type) (path, name string, ok bool) {
	if t == nil {
		return "", "", false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	rules  map[string]bool
	reason string
	pos    token.Position
	line   int  // line the directive suppresses (its own, or the next)
	used   bool // set when the directive suppressed at least one finding
}

// directivePrefix introduces a suppression comment. Both "//lint:ignore"
// and "// lint:ignore" are accepted.
const directivePrefix = "lint:ignore"

// parseDirectives extracts every //lint:ignore directive from a file,
// reporting malformed ones (missing rule or reason) as diagnostics.
func parseDirectives(fset *token.FileSet, file *ast.File, bad func(Diagnostic)) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSuffix(text, "*/")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
			if len(fields) < 2 {
				bad(Diagnostic{
					Pos:     pos,
					Rule:    "lint-directive",
					Message: "malformed lint:ignore: need a rule and a reason",
					Fix:     "write //lint:ignore <rule> <reason>",
				})
				continue
			}
			rules := map[string]bool{}
			for _, r := range strings.Split(fields[0], ",") {
				if r != "" {
					rules[r] = true
				}
			}
			d := ignoreDirective{rules: rules, reason: strings.Join(fields[1:], " "), pos: pos, line: pos.Line}
			// A directive alone on its line suppresses the next line; a
			// trailing directive suppresses its own line. Distinguish by
			// whether any node of the file starts on the directive line
			// before the comment's column — cheap approximation: treat
			// the directive as covering both its own line and the next.
			out = append(out, d)
		}
	}
	return out
}

// suppressed reports whether a diagnostic is covered by a directive on
// its own line or the line directly above.
func suppressed(dirs []ignoreDirective, d Diagnostic) bool {
	for i := range dirs {
		dir := &dirs[i]
		if !dir.rules[d.Rule] && !dir.rules["*"] {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			dir.used = true
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. //lint:ignore directives are honored;
// malformed directives surface as "lint-directive" findings. Per-package
// analyzers run first, then whole-program ones (which share one lazily
// built call graph) — so a program analyzer that inspects directive
// usage (deadignore) observes the complete run.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	// Directive table for every file of every package, built once and
	// kept for the whole run: suppression marks usage on it, and the
	// deadignore rule reads the usage bits at the end.
	dirs := map[string][]ignoreDirective{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			dirs[name] = parseDirectives(pkg.Fset, f, func(d Diagnostic) {
				out = append(out, d)
			})
		}
	}
	report := func(d Diagnostic) {
		if suppressed(dirs[d.Pos.Filename], d) {
			return
		}
		out = append(out, d)
	}
	var graph *Graph // built on first program-analyzer use
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{Pkg: pkg, analyzer: a, report: report}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if graph == nil && a.Name != "deadignore" {
			graph = BuildGraph(pkgs)
		}
		pass := &ProgramPass{Pkgs: pkgs, Graph: graph, analyzer: a, report: report}
		a.RunProgram(pass)
	}
	reportDeadIgnores(analyzers, dirs, report)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// DeadIgnore returns the stale-suppression rule. It is a marker the Run
// driver acts on after every other analyzer has finished: a
// //lint:ignore directive that suppressed nothing, while every rule it
// names actually ran, is dead weight — the code it excused was fixed or
// deleted, and keeping the directive would silently excuse the next
// regression. Directives naming rules outside the run (a -rules subset)
// are left alone: the rule that would use them did not get a chance.
func DeadIgnore() *Analyzer {
	return &Analyzer{
		Name: "deadignore",
		Doc:  "//lint:ignore directive that no longer suppresses any finding",
		// The work happens in Run after all analyzers finish; the no-op
		// keeps the rule listable and -rules-selectable.
		RunProgram: func(pass *ProgramPass) {},
	}
}

// reportDeadIgnores emits deadignore findings when the rule is part of
// the run: every directive that suppressed nothing although each rule it
// names was active. Wildcard directives and directives mentioning
// deadignore itself are exempt — their deadness is unknowable.
func reportDeadIgnores(analyzers []*Analyzer, dirs map[string][]ignoreDirective, report func(Diagnostic)) {
	active := false
	ran := map[string]bool{"lint-directive": true}
	for _, a := range analyzers {
		ran[a.Name] = true
		if a.Name == "deadignore" {
			active = true
		}
	}
	if !active {
		return
	}
	// Deterministic file order.
	files := make([]string, 0, len(dirs))
	for f := range dirs {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for i := range dirs[f] {
			dir := &dirs[f][i]
			if dir.used || dir.rules["*"] || dir.rules["deadignore"] {
				continue
			}
			covered := true
			var names []string
			for r := range dir.rules {
				names = append(names, r)
				if !ran[r] {
					covered = false
				}
			}
			if !covered {
				continue
			}
			sort.Strings(names)
			report(Diagnostic{
				Pos:     dir.pos,
				Rule:    "deadignore",
				Message: "stale suppression: no " + strings.Join(names, ",") + " finding left to suppress",
				Fix:     "delete the //lint:ignore directive",
			})
		}
	}
}

// agentPkgPath is the import path the platform invariants anchor on.
const agentPkgPath = "pervasivegrid/internal/agent"

// obsPkgPath is the import path that owns the wide-event schema.
const obsPkgPath = "pervasivegrid/internal/obs"

// Default returns the production analyzer set, configured for this
// module's layout: obs owns raw time, telemetry and core must use the
// retry layer for sends.
func Default() []*Analyzer {
	return []*Analyzer{
		RawClock("pervasivegrid/internal/obs"),
		RawSend("pervasivegrid/internal/telemetry", "pervasivegrid/internal/core"),
		LockedDeliver(),
		GoroLeak(),
		EnvHops(),
		RawEvent(),
		RawSpawn("pervasivegrid/internal/supervise", "pervasivegrid/internal/obs"),
		RawFsync("pervasivegrid/internal/durable"),
		LockOrder(),
		BlockHeld(),
		HotAlloc(),
		DeadIgnore(),
	}
}
