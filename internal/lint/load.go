package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and (best-effort) type-checked package.
type Package struct {
	// Path is the import path ("pervasivegrid/internal/agent").
	Path string
	// Dir is the absolute directory the sources came from.
	Dir string
	// Fset maps positions for every file of every package this loader
	// touched (shared so cross-package positions stay coherent).
	Fset *token.FileSet
	// Files are the parsed non-test sources, comments included.
	Files []*ast.File
	// Types is the type-checked package object. In-module imports are
	// checked from source; imports outside the module are stubbed, so
	// Types may carry errors for expressions that touch them — the
	// analyzers only rely on identifier and named-type resolution,
	// which survives stubbing.
	Types *types.Package
	// Info holds the resolution maps the analyzers consult.
	Info *types.Info
	// TypeErrors collects what the checker complained about (expected
	// and non-fatal when external imports are stubbed).
	TypeErrors []error
}

// Loader loads packages of one module from source. It is deliberately
// minimal: it understands a single module rooted at a go.mod, resolves
// in-module imports by type-checking them from source (recursively,
// with memoization), and stubs every import outside the module with an
// empty package object. That is exactly enough type information for
// pgridlint's analyzers — qualifier identity (is this ident package
// "time"?) and named-type identity (is this receiver *agent.Platform?)
// — without dragging in export data, cgo, or x/tools.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's declared import path.
	ModulePath string

	fset    *token.FileSet
	pkgs    map[string]*Package // memo by import path
	loading map[string]bool     // cycle guard
	stubs   map[string]*types.Package
}

// NewLoader finds the enclosing module by walking up from dir to the
// nearest go.mod and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
		stubs:      map[string]*types.Package{},
	}, nil
}

// modulePath extracts the module declaration from a go.mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: %s has no module directive", gomod)
}

// Fset exposes the loader's shared position set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadPatterns loads the packages named by patterns, resolved relative
// to dir ("" = the module root). A pattern is a directory, or a
// directory suffixed with "/..." for a recursive walk ("./..." walks
// everything). testdata, vendor, and dot-directories are skipped during
// walks, mirroring the go tool.
func (l *Loader) LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	if dir == "" {
		dir = l.ModuleRoot
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(dir, rest)
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: walk %s: %w", pat, err)
			}
			continue
		}
		p := pat
		if !filepath.IsAbs(p) {
			p = filepath.Join(dir, p)
		}
		if !hasGoFiles(p) {
			return nil, fmt.Errorf("lint: %s contains no Go files", pat)
		}
		add(p)
	}
	sort.Strings(dirs)
	out := make([]*Package, 0, len(dirs))
	for _, d := range dirs {
		pkg, err := l.LoadDir(d)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir (non-test files
// only), memoized by import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	importPath, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, fmt.Errorf("lint: read %s: %w", abs, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: %s contains no Go files", abs)
	}

	pkg := &Package{
		Path: importPath,
		Dir:  abs,
		Fset: l.fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	conf := types.Config{
		Importer:    importerFunc(l.importPkg),
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		// Stubbed external imports make many expressions untypeable;
		// keep checking past them.
		DisableUnusedImportCheck: true,
	}
	// Check never returns a useful error here beyond what the Error
	// callback already captured; stubbed imports guarantee some noise.
	tpkg, _ := conf.Check(importPath, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	pkg.Files = files
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPathFor(abs string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", abs, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// importPkg resolves one import during type checking: unsafe is the
// real unsafe, in-module paths are loaded from source, and everything
// else (stdlib, would-be third-party) becomes an empty stub package.
// Stubbing keeps the loader hermetic — no export data, no cgo, no
// network — at the cost of type errors on expressions that reach into
// stubbed packages, which the analyzers are built to tolerate.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(path, l.ModulePath)
		rel = strings.TrimPrefix(rel, "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if stub, ok := l.stubs[path]; ok {
		return stub, nil
	}
	name := path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	stub := types.NewPackage(path, name)
	stub.MarkComplete()
	l.stubs[path] = stub
	return stub, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
