package lint

import (
	"fmt"
	"strings"
)

// HotAlloc budgets allocations on hot paths. A function marked
//
//	//lint:hot budget=<n>
//
// in its doc comment is a hot-path root (Platform.Send, the envelope
// codec, WAL.Append, the sampler — the paths ROADMAP item 1 is about to
// make fast). The analyzer counts every *static allocation site*
// reachable from the root through the resolved call graph — composite
// literals, make/new/append, fmt and other known-allocating stdlib
// calls, string concatenation, closures — and reports when the count
// exceeds the budget, listing the heaviest callees so the overage is
// actionable.
//
// Budgets are a ratchet, not a target: set them to today's measured
// count so an optimization can lower them and a regression cannot raise
// them without tripping the gate. Static sites are not runtime
// allocs/op — a site in a loop is one site — but every new site on a
// hot path is a new place the optimizer has to win back.
func HotAlloc() *Analyzer {
	return &Analyzer{
		Name:       "hotalloc",
		Doc:        "allocation sites reachable from a //lint:hot root exceed its budget",
		RunProgram: runHotAlloc,
	}
}

func runHotAlloc(pass *ProgramPass) {
	for _, fn := range pass.Graph.Funcs {
		if fn.HotBudget == nil {
			continue
		}
		sites := pass.Graph.ReachableAllocs(fn)
		budget := *fn.HotBudget
		if len(sites) <= budget {
			continue
		}
		// Summarize per function, heaviest first, for the fix hint.
		perFn := map[string]int{}
		var order []string
		for _, s := range sites {
			if perFn[s.Fn.Name] == 0 {
				order = append(order, s.Fn.Name)
			}
			perFn[s.Fn.Name]++
		}
		// Keep discovery order (deterministic: sites are sorted), then
		// show the top contributors.
		top := order
		if len(top) > 4 {
			top = top[:4]
		}
		var parts []string
		for _, name := range top {
			parts = append(parts, fmt.Sprintf("%s: %d", name, perFn[name]))
		}
		pass.Report(fn.Pkg.Fset.Position(fn.Decl.Name.Pos()),
			fmt.Sprintf("hot root %s reaches %d allocation sites, budget %d (%s)",
				fn.Name, len(sites), budget, strings.Join(parts, ", ")),
			"remove allocations from the hot path, or raise the budget in the //lint:hot directive with a justification")
	}
}
