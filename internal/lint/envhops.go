package lint

import (
	"go/ast"
)

// EnvHops flags raw agent.Envelope composite literals outside the agent
// package itself. A hand-rolled literal bypasses NewEnvelope and Reply,
// the constructors that keep the envelope conventions honest: JSON
// content encoding (Decode refuses anything else), reply correlation
// (InReplyTo/TraceID inheritance), and above all the hop accounting
// that feeds the platform's MaxHops TTL — an envelope whose Hops field
// is managed by hand can loop between gateways forever or be dropped on
// its first hop. Inside internal/agent the literals ARE the
// constructors; everywhere else they are a bug waiting for a route
// change.
func EnvHops() *Analyzer {
	return &Analyzer{
		Name: "envhops",
		Doc:  "raw agent.Envelope literal outside internal/agent (bypasses NewEnvelope/Reply and MaxHops TTL accounting)",
		Run: func(pass *Pass) {
			if pass.Pkg.Path == agentPkgPath {
				return
			}
			for _, file := range pass.Pkg.Files {
				f := file
				ast.Inspect(f, func(n ast.Node) bool {
					lit, ok := n.(*ast.CompositeLit)
					if !ok {
						return true
					}
					// Resolve the literal's type: prefer go/types, fall
					// back to the syntactic qualifier for robustness.
					if tv, ok := pass.Pkg.Info.Types[lit]; ok {
						if path, name, ok := NamedType(tv.Type); ok {
							if path == agentPkgPath && name == "Envelope" {
								reportEnvLit(pass, lit)
							}
							return true
						}
					}
					if sel, ok := lit.Type.(*ast.SelectorExpr); ok && sel.Sel.Name == "Envelope" {
						if id, ok := sel.X.(*ast.Ident); ok && pass.ImportedPath(f, id) == agentPkgPath {
							reportEnvLit(pass, lit)
						}
					}
					return true
				})
			}
		},
	}
}

func reportEnvLit(pass *Pass, lit *ast.CompositeLit) {
	pass.Report(lit,
		"raw agent.Envelope literal skips NewEnvelope/Reply (content encoding, reply correlation, MaxHops TTL accounting)",
		"build envelopes with agent.NewEnvelope or Envelope.Reply")
}
