package grid

import (
	"fmt"
	"sync"
)

// Data staging: the paper constrains partitioning "by device resources,
// data and code locations, and network bandwidth". A dataset already
// staged on the grid does not cross the access link again — repeated
// analyses over the same sensor data (continuous queries, ensembles) pay
// the uplink once.

// stagedData tracks one dataset resident on the grid.
type stagedData struct {
	bytes int
	hits  int
}

// StageManager tracks datasets staged behind the cluster's access link.
type StageManager struct {
	mu     sync.Mutex
	staged map[string]*stagedData
	// Capacity bounds total staged bytes (0 = unlimited); stages beyond
	// it evict the least-recently staged keys.
	Capacity int
	order    []string // insertion order for eviction
}

// NewStageManager builds an empty manager with the given capacity in
// bytes (0 = unlimited).
func NewStageManager(capacity int) *StageManager {
	return &StageManager{staged: map[string]*stagedData{}, Capacity: capacity}
}

// Stage records a dataset as resident. Staging an existing key refreshes
// its size. It returns the bytes that must cross the link now (0 when the
// key was already staged with the same size).
func (s *StageManager) Stage(key string, bytes int) (int, error) {
	if key == "" {
		return 0, fmt.Errorf("grid: staging needs a key")
	}
	if bytes < 0 {
		return 0, fmt.Errorf("grid: negative staged size")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.staged[key]; ok {
		if d.bytes == bytes {
			return 0, nil
		}
		delta := bytes - d.bytes
		d.bytes = bytes
		if delta < 0 {
			delta = 0
		}
		s.evictLocked()
		return delta, nil
	}
	s.staged[key] = &stagedData{bytes: bytes}
	s.order = append(s.order, key)
	s.evictLocked()
	return bytes, nil
}

// evictLocked enforces Capacity, oldest first. Callers hold s.mu.
func (s *StageManager) evictLocked() {
	if s.Capacity <= 0 {
		return
	}
	total := 0
	for _, d := range s.staged {
		total += d.bytes
	}
	for total > s.Capacity && len(s.order) > 0 {
		victim := s.order[0]
		s.order = s.order[1:]
		if d, ok := s.staged[victim]; ok {
			total -= d.bytes
			delete(s.staged, victim)
		}
	}
}

// Resident reports whether a dataset is staged and its size.
func (s *StageManager) Resident(key string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.staged[key]
	if !ok {
		return 0, false
	}
	d.hits++
	return d.bytes, true
}

// Hits reports how many times a staged key has been reused.
func (s *StageManager) Hits(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.staged[key]; ok {
		return d.hits
	}
	return 0
}

// Evict removes a dataset.
func (s *StageManager) Evict(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.staged, key)
	for i, k := range s.order {
		if k == key {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// StagedBytes sums resident data.
func (s *StageManager) StagedBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, d := range s.staged {
		total += d.bytes
	}
	return total
}

// SubmitStaged submits a job whose input may already be resident: when
// key is staged, the job's InputBytes do not cross the link (they are
// replaced by zero), otherwise the input is transferred and staged for
// next time.
func (c *Cluster) SubmitStaged(s *StageManager, key string, job Job) (Placement, error) {
	if s != nil && key != "" {
		if _, ok := s.Resident(key); ok {
			job.InputBytes = 0
		} else if _, err := s.Stage(key, job.InputBytes); err != nil {
			return Placement{}, err
		}
	}
	return c.Submit(job)
}
