// Package grid models the wired Grid infrastructure of the paper: a set of
// networked compute resources ("from the ASCI terraflop machines to
// workstations") reachable from the sensor network's base station over a
// bandwidth-limited link, with a scheduler that places jobs and a transfer
// model that accounts for moving data in and out.
//
// Virtual time in this package is decoupled from the sensor network's
// discrete-event clock: the decision maker combines both through its cost
// model.
package grid

import (
	"errors"
	"fmt"
	"sync"
)

// Resource is one compute element on the grid.
type Resource struct {
	// Name identifies the resource in schedules.
	Name string
	// OpsPerSec is the sustained rate in abstract operations per second
	// for a single-worker job.
	OpsPerSec float64
	// Cores bounds intra-job parallelism on this resource.
	Cores int
	// Efficiency is the parallel efficiency per extra core in (0, 1];
	// effective rate = OpsPerSec * (1 + Efficiency*(workers-1)).
	Efficiency float64

	mu        sync.Mutex
	busyUntil float64 // virtual seconds
	jobsRun   int
}

// NewResource validates and builds a resource.
func NewResource(name string, opsPerSec float64, cores int, efficiency float64) (*Resource, error) {
	if name == "" {
		return nil, errors.New("grid: resource needs a name")
	}
	if opsPerSec <= 0 {
		return nil, fmt.Errorf("grid: resource %q rate must be positive", name)
	}
	if cores < 1 {
		return nil, fmt.Errorf("grid: resource %q needs >= 1 core", name)
	}
	if efficiency <= 0 || efficiency > 1 {
		return nil, fmt.Errorf("grid: resource %q efficiency %v outside (0,1]", name, efficiency)
	}
	return &Resource{Name: name, OpsPerSec: opsPerSec, Cores: cores, Efficiency: efficiency}, nil
}

// EffectiveRate returns the ops/sec this resource sustains with the given
// number of workers (clamped to Cores).
func (r *Resource) EffectiveRate(workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	if workers > r.Cores {
		workers = r.Cores
	}
	return r.OpsPerSec * (1 + r.Efficiency*float64(workers-1))
}

// BusyUntil reports the virtual time this resource frees up.
func (r *Resource) BusyUntil() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busyUntil
}

// JobsRun reports how many jobs this resource has executed.
func (r *Resource) JobsRun() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobsRun
}

// Link models the pipe between the base station and the grid.
type Link struct {
	// BandwidthBps is in bits per second.
	BandwidthBps float64
	// LatencySec is the one-way latency.
	LatencySec float64
}

// TransferTime returns the virtual seconds to move bytes across the link.
func (l Link) TransferTime(bytes int) float64 {
	if bytes <= 0 {
		return l.LatencySec
	}
	return l.LatencySec + float64(bytes)*8/l.BandwidthBps
}

// Job is a unit of grid work.
type Job struct {
	// Name labels the job.
	Name string
	// Ops is the abstract operation count (for placement estimates).
	Ops float64
	// InputBytes and OutputBytes cross the base-station link.
	InputBytes, OutputBytes int
	// Workers requests intra-job parallelism (0 = all cores of the
	// chosen resource).
	Workers int
	// Run optionally performs the real computation; workers is the
	// degree of parallelism granted. When nil the job is simulation-only.
	Run func(workers int) (any, error)
}

// Placement describes where and when a job runs under the virtual-time
// model.
type Placement struct {
	Resource *Resource
	// Start and Finish are virtual times including queueing; transfer
	// happens before Start.
	Start, Finish float64
	// TransferIn, Compute, TransferOut decompose the makespan.
	TransferIn, Compute, TransferOut float64
	// Output is the Run result when the job carried real computation.
	Output any
}

// ResponseTime is the full virtual latency from submission to the result
// arriving back at the base station.
func (p Placement) ResponseTime() float64 { return p.Finish }
