package grid

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Policy selects how the scheduler places jobs.
type Policy int

// Scheduling policies.
const (
	// MinCompletion picks the resource minimising the job's finish time
	// (queue wait + compute), the sensible default.
	MinCompletion Policy = iota
	// FastestFirst always picks the highest effective rate regardless of
	// queue depth.
	FastestFirst
	// RoundRobin cycles through resources, ignoring load.
	RoundRobin
)

func (p Policy) String() string {
	switch p {
	case MinCompletion:
		return "min-completion"
	case FastestFirst:
		return "fastest-first"
	case RoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Cluster is a schedulable set of grid resources behind one access link.
type Cluster struct {
	Link   Link
	Policy Policy

	mu        sync.Mutex
	resources []*Resource
	now       float64 // virtual clock
	rrNext    int
}

// NewCluster builds a cluster; at least one resource is required.
func NewCluster(link Link, policy Policy, resources ...*Resource) (*Cluster, error) {
	if len(resources) == 0 {
		return nil, errors.New("grid: cluster needs at least one resource")
	}
	return &Cluster{Link: link, Policy: policy, resources: resources}, nil
}

// Resources returns the cluster's resources.
func (c *Cluster) Resources() []*Resource {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Resource, len(c.resources))
	copy(out, c.resources)
	return out
}

// Now reports the cluster's virtual clock.
func (c *Cluster) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the cluster's virtual clock forward.
func (c *Cluster) Advance(dt float64) {
	if dt <= 0 {
		return
	}
	c.mu.Lock()
	c.now += dt
	c.mu.Unlock()
}

// Estimate predicts the placement for a job under the current load without
// committing it.
func (c *Cluster) Estimate(job Job) (Placement, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.place(job, false)
}

// Submit places the job (reserving the resource's virtual time) and, if the
// job has a Run function, executes it with the granted parallelism.
func (c *Cluster) Submit(job Job) (Placement, error) {
	c.mu.Lock()
	p, err := c.place(job, true)
	c.mu.Unlock()
	if err != nil {
		return p, err
	}
	if job.Run != nil {
		workers := job.Workers
		if workers <= 0 || workers > p.Resource.Cores {
			workers = p.Resource.Cores
		}
		out, err := job.Run(workers)
		if err != nil {
			return p, fmt.Errorf("grid: job %q failed on %s: %w", job.Name, p.Resource.Name, err)
		}
		p.Output = out
	}
	return p, nil
}

// place picks a resource per policy. Callers hold c.mu.
func (c *Cluster) place(job Job, commit bool) (Placement, error) {
	if job.Ops < 0 {
		return Placement{}, fmt.Errorf("grid: job %q has negative ops", job.Name)
	}
	workers := job.Workers

	candidate := func(r *Resource) Placement {
		w := workers
		if w <= 0 || w > r.Cores {
			w = r.Cores
		}
		tin := c.Link.TransferTime(job.InputBytes)
		r.mu.Lock()
		ready := r.busyUntil
		r.mu.Unlock()
		start := c.now + tin
		if ready > start {
			start = ready
		}
		compute := 0.0
		if job.Ops > 0 {
			compute = job.Ops / r.EffectiveRate(w)
		}
		tout := c.Link.TransferTime(job.OutputBytes)
		return Placement{
			Resource: r, Start: start,
			Finish:      start + compute + tout,
			TransferIn:  tin,
			Compute:     compute,
			TransferOut: tout,
		}
	}

	var best Placement
	switch c.Policy {
	case RoundRobin:
		r := c.resources[c.rrNext%len(c.resources)]
		if commit {
			c.rrNext++
		}
		best = candidate(r)
	case FastestFirst:
		var fastest *Resource
		for _, r := range c.resources {
			if fastest == nil || r.EffectiveRate(r.Cores) > fastest.EffectiveRate(fastest.Cores) {
				fastest = r
			}
		}
		best = candidate(fastest)
	default: // MinCompletion
		for i, r := range c.resources {
			p := candidate(r)
			if i == 0 || p.Finish < best.Finish {
				best = p
			}
		}
	}

	if commit {
		r := best.Resource
		r.mu.Lock()
		if end := best.Start + best.Compute; end > r.busyUntil {
			r.busyUntil = end
		}
		r.jobsRun++
		r.mu.Unlock()
	}
	return best, nil
}

// SubmitTo places a job on the named resource regardless of policy — the
// path used when an external negotiation (e.g. a contract-net award) has
// already picked the resource.
func (c *Cluster) SubmitTo(name string, job Job) (Placement, error) {
	c.mu.Lock()
	var target *Resource
	for _, r := range c.resources {
		if r.Name == name {
			target = r
			break
		}
	}
	if target == nil {
		c.mu.Unlock()
		return Placement{}, fmt.Errorf("grid: unknown resource %q", name)
	}
	saved := c.resources
	c.resources = []*Resource{target}
	p, err := c.place(job, true)
	c.resources = saved
	c.mu.Unlock()
	if err != nil {
		return p, err
	}
	if job.Run != nil {
		workers := job.Workers
		if workers <= 0 || workers > p.Resource.Cores {
			workers = p.Resource.Cores
		}
		out, err := job.Run(workers)
		if err != nil {
			return p, fmt.Errorf("grid: job %q failed on %s: %w", job.Name, p.Resource.Name, err)
		}
		p.Output = out
	}
	return p, nil
}

// Utilisation reports, per resource, the fraction of virtual time spent
// busy up to the cluster clock (capped at 1 when reservations extend past
// now).
func (c *Cluster) Utilisation() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.resources))
	for _, r := range c.resources {
		r.mu.Lock()
		busy := r.busyUntil
		r.mu.Unlock()
		if c.now <= 0 {
			out[r.Name] = 0
			continue
		}
		u := busy / c.now
		if u > 1 {
			u = 1
		}
		out[r.Name] = u
	}
	return out
}

// Sorted returns resource names ordered by descending effective full-core
// rate — handy for deterministic reporting.
func (c *Cluster) Sorted() []string {
	rs := c.Resources()
	names := make([]string, len(rs))
	rate := make(map[string]float64, len(rs))
	for i, r := range rs {
		names[i] = r.Name
		rate[r.Name] = r.EffectiveRate(r.Cores)
	}
	sortByRate(names, rate)
	return names
}

func sortByRate(names []string, rate map[string]float64) {
	sort.SliceStable(names, func(i, j int) bool { return rate[names[i]] > rate[names[j]] })
}
