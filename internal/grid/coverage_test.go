package grid

import (
	"math"
	"testing"
)

func TestResourceBusyUntilTracksReservations(t *testing.T) {
	c := testCluster(t, FastestFirst)
	p, err := c.Submit(Job{Name: "j", Ops: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	busy := p.Resource.BusyUntil()
	if busy <= 0 {
		t.Fatalf("BusyUntil = %v, want > 0 after a reservation", busy)
	}
	p2, err := c.Submit(Job{Name: "j2", Ops: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Resource.Name == p.Resource.Name && p2.Resource.BusyUntil() <= busy {
		t.Fatalf("second reservation should extend BusyUntil past %v", busy)
	}
}

func TestPlacementResponseTime(t *testing.T) {
	c := testCluster(t, MinCompletion)
	p, err := c.Estimate(Job{Name: "j", Ops: 1e9, InputBytes: 1000, OutputBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ResponseTime(); got != p.Finish {
		t.Fatalf("ResponseTime = %v, want Finish %v", got, p.Finish)
	}
	if p.ResponseTime() < p.TransferIn+p.Compute {
		t.Fatalf("response %v cannot undercut transfer %v + compute %v",
			p.ResponseTime(), p.TransferIn, p.Compute)
	}
}

func TestStageRefreshGrowAndShrink(t *testing.T) {
	s := NewStageManager(0)
	if _, err := s.Stage("k", 1000); err != nil {
		t.Fatal(err)
	}
	// Growing pays only the delta across the link.
	moved, err := s.Stage("k", 1500)
	if err != nil || moved != 500 {
		t.Fatalf("grow moved %d err=%v, want 500", moved, err)
	}
	// Shrinking moves nothing.
	moved, err = s.Stage("k", 200)
	if err != nil || moved != 0 {
		t.Fatalf("shrink moved %d err=%v, want 0", moved, err)
	}
	if n, ok := s.Resident("k"); !ok || n != 200 {
		t.Fatalf("resident = %d %v, want 200", n, ok)
	}
	if s.Hits("nope") != 0 {
		t.Fatal("missing key should report zero hits")
	}
}

func TestUtilisationBeforeClockAdvances(t *testing.T) {
	c := testCluster(t, FastestFirst)
	if _, err := c.Submit(Job{Name: "j", Ops: 1e12}); err != nil {
		t.Fatal(err)
	}
	// Clock still at zero: utilisation must be 0, not NaN or Inf.
	for name, u := range c.Utilisation() {
		if u != 0 || math.IsNaN(u) {
			t.Fatalf("%s utilisation = %v before any Advance", name, u)
		}
	}
	// Reservations extending far past the clock clamp at 1.
	c.Advance(1e-9)
	for _, u := range c.Utilisation() {
		if u > 1 {
			t.Fatalf("utilisation %v exceeds 1", u)
		}
	}
}

func TestSubmitStagedPropagatesStageError(t *testing.T) {
	c := testCluster(t, MinCompletion)
	s := NewStageManager(0)
	if _, err := c.SubmitStaged(s, "bad", Job{Name: "j", Ops: 1e6, InputBytes: -1}); err == nil {
		t.Fatal("negative input bytes should fail staging")
	}
}
