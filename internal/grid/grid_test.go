package grid

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustResource(t *testing.T, name string, rate float64, cores int, eff float64) *Resource {
	t.Helper()
	r, err := NewResource(name, rate, cores, eff)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func testCluster(t *testing.T, policy Policy) *Cluster {
	t.Helper()
	c, err := NewCluster(
		Link{BandwidthBps: 1e6, LatencySec: 0.01},
		policy,
		mustResource(t, "workstation", 1e8, 4, 0.9),
		mustResource(t, "supercomputer", 1e10, 64, 0.8),
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestResourceValidation(t *testing.T) {
	cases := []struct {
		name  string
		rate  float64
		cores int
		eff   float64
	}{
		{"", 1, 1, 1},
		{"x", 0, 1, 1},
		{"x", 1, 0, 1},
		{"x", 1, 1, 0},
		{"x", 1, 1, 1.5},
	}
	for _, c := range cases {
		if _, err := NewResource(c.name, c.rate, c.cores, c.eff); err == nil {
			t.Fatalf("NewResource(%q,%v,%d,%v) should fail", c.name, c.rate, c.cores, c.eff)
		}
	}
}

func TestEffectiveRateScaling(t *testing.T) {
	r := mustResource(t, "r", 100, 8, 0.5)
	if got := r.EffectiveRate(1); got != 100 {
		t.Fatalf("rate(1) = %v, want 100", got)
	}
	if got := r.EffectiveRate(2); got != 150 {
		t.Fatalf("rate(2) = %v, want 150", got)
	}
	// Clamped to core count.
	if r.EffectiveRate(100) != r.EffectiveRate(8) {
		t.Fatal("workers should clamp to cores")
	}
	if r.EffectiveRate(0) != 100 {
		t.Fatal("workers < 1 should clamp to 1")
	}
}

func TestLinkTransferTime(t *testing.T) {
	l := Link{BandwidthBps: 8000, LatencySec: 0.5}
	if got := l.TransferTime(1000); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("transfer = %v, want 1.5", got)
	}
	if got := l.TransferTime(0); got != 0.5 {
		t.Fatalf("empty transfer = %v, want latency only", got)
	}
}

func TestMinCompletionPrefersFastIdleResource(t *testing.T) {
	c := testCluster(t, MinCompletion)
	p, err := c.Estimate(Job{Name: "big", Ops: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	if p.Resource.Name != "supercomputer" {
		t.Fatalf("placed on %s, want supercomputer", p.Resource.Name)
	}
}

func TestMinCompletionAvoidsLoadedResource(t *testing.T) {
	c := testCluster(t, MinCompletion)
	// Saturate the supercomputer with a massive committed job.
	if _, err := c.Submit(Job{Name: "hog", Ops: 1e14}); err != nil {
		t.Fatal(err)
	}
	p, err := c.Estimate(Job{Name: "tiny", Ops: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if p.Resource.Name != "workstation" {
		t.Fatalf("placed on %s, want workstation (supercomputer queued)", p.Resource.Name)
	}
}

func TestSubmitReservesTime(t *testing.T) {
	c := testCluster(t, FastestFirst)
	p1, err := c.Submit(Job{Name: "a", Ops: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Submit(Job{Name: "b", Ops: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Start < p1.Start+p1.Compute-1e-9 {
		t.Fatalf("second job started at %v before first finished compute at %v", p2.Start, p1.Start+p1.Compute)
	}
	if p1.Resource.JobsRun()+p2.Resource.JobsRun() < 2 {
		t.Fatal("jobs not counted")
	}
}

func TestEstimateDoesNotReserve(t *testing.T) {
	c := testCluster(t, MinCompletion)
	p1, err := c.Estimate(Job{Name: "a", Ops: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Estimate(Job{Name: "a", Ops: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Finish != p2.Finish {
		t.Fatal("estimates should be idempotent")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	c := testCluster(t, RoundRobin)
	seen := map[string]int{}
	for i := 0; i < 4; i++ {
		p, err := c.Submit(Job{Name: "j", Ops: 1e6})
		if err != nil {
			t.Fatal(err)
		}
		seen[p.Resource.Name]++
	}
	if seen["workstation"] != 2 || seen["supercomputer"] != 2 {
		t.Fatalf("round robin distribution = %v", seen)
	}
}

func TestTransferDominatesSmallJobs(t *testing.T) {
	c := testCluster(t, MinCompletion)
	p, err := c.Estimate(Job{Name: "datafat", Ops: 1e6, InputBytes: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if p.TransferIn < p.Compute {
		t.Fatalf("transfer %v should dominate compute %v for data-fat tiny jobs", p.TransferIn, p.Compute)
	}
}

func TestSubmitRunsRealComputation(t *testing.T) {
	c := testCluster(t, MinCompletion)
	p, err := c.Submit(Job{
		Name: "real", Ops: 1e6, Workers: 2,
		Run: func(workers int) (any, error) {
			if workers != 2 {
				t.Fatalf("granted %d workers, want 2", workers)
			}
			return 42, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Output != 42 {
		t.Fatalf("output = %v, want 42", p.Output)
	}
}

func TestSubmitPropagatesRunError(t *testing.T) {
	c := testCluster(t, MinCompletion)
	boom := errors.New("boom")
	_, err := c.Submit(Job{Name: "bad", Ops: 1, Run: func(int) (any, error) { return nil, boom }})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestNegativeOpsRejected(t *testing.T) {
	c := testCluster(t, MinCompletion)
	if _, err := c.Estimate(Job{Name: "neg", Ops: -5}); err == nil {
		t.Fatal("negative ops should be rejected")
	}
}

func TestClusterNeedsResources(t *testing.T) {
	if _, err := NewCluster(Link{}, MinCompletion); err == nil {
		t.Fatal("empty cluster should be rejected")
	}
}

func TestAdvanceAndUtilisation(t *testing.T) {
	c := testCluster(t, FastestFirst)
	if _, err := c.Submit(Job{Name: "j", Ops: 1e10}); err != nil {
		t.Fatal(err)
	}
	c.Advance(1000)
	u := c.Utilisation()
	if u["supercomputer"] <= 0 {
		t.Fatalf("utilisation = %v, supercomputer should be busy", u)
	}
	if u["workstation"] != 0 {
		t.Fatalf("workstation utilisation = %v, want 0", u["workstation"])
	}
	c.Advance(-5) // ignored
	if c.Now() != 1000 {
		t.Fatal("negative advance should be ignored")
	}
}

func TestSortedByRate(t *testing.T) {
	c := testCluster(t, MinCompletion)
	names := c.Sorted()
	if names[0] != "supercomputer" || names[1] != "workstation" {
		t.Fatalf("sorted = %v", names)
	}
}

func TestPolicyString(t *testing.T) {
	if MinCompletion.String() == "" || FastestFirst.String() == "" || RoundRobin.String() == "" {
		t.Fatal("policies should have names")
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy should still format")
	}
}

func TestStageManagerBasics(t *testing.T) {
	s := NewStageManager(0)
	if _, err := s.Stage("", 10); err == nil {
		t.Fatal("empty key should fail")
	}
	if _, err := s.Stage("k", -1); err == nil {
		t.Fatal("negative size should fail")
	}
	moved, err := s.Stage("readings-r8", 1000)
	if err != nil || moved != 1000 {
		t.Fatalf("first stage moved %d err=%v", moved, err)
	}
	moved, err = s.Stage("readings-r8", 1000)
	if err != nil || moved != 0 {
		t.Fatalf("re-stage moved %d, want 0", moved)
	}
	if n, ok := s.Resident("readings-r8"); !ok || n != 1000 {
		t.Fatalf("resident = %d %v", n, ok)
	}
	if s.Hits("readings-r8") != 1 {
		t.Fatalf("hits = %d", s.Hits("readings-r8"))
	}
	s.Evict("readings-r8")
	if _, ok := s.Resident("readings-r8"); ok {
		t.Fatal("evicted key still resident")
	}
}

func TestStageManagerCapacityEviction(t *testing.T) {
	s := NewStageManager(2500)
	for i, key := range []string{"a", "b", "c"} {
		if _, err := s.Stage(key, 1000); err != nil {
			t.Fatalf("stage %d: %v", i, err)
		}
	}
	// Capacity 2500 holds only 2 datasets: "a" (oldest) evicted.
	if _, ok := s.Resident("a"); ok {
		t.Fatal("oldest dataset should be evicted")
	}
	if _, ok := s.Resident("c"); !ok {
		t.Fatal("newest dataset missing")
	}
	if s.StagedBytes() > 2500 {
		t.Fatalf("staged bytes %d exceed capacity", s.StagedBytes())
	}
}

func TestSubmitStagedSkipsTransfer(t *testing.T) {
	c := testCluster(t, MinCompletion)
	s := NewStageManager(0)
	job := Job{Name: "solve", Ops: 1e6, InputBytes: 10_000_000}
	p1, err := c.SubmitStaged(s, "dataset-1", job)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.SubmitStaged(s, "dataset-1", job)
	if err != nil {
		t.Fatal(err)
	}
	if p2.TransferIn >= p1.TransferIn {
		t.Fatalf("staged resubmission transfer %v should beat first %v", p2.TransferIn, p1.TransferIn)
	}
	// A different dataset pays the full transfer again.
	p3, err := c.SubmitStaged(s, "dataset-2", job)
	if err != nil {
		t.Fatal(err)
	}
	if p3.TransferIn != p1.TransferIn {
		t.Fatal("unstaged dataset should pay the full uplink")
	}
	// No staging manager: plain submit.
	if _, err := c.SubmitStaged(nil, "x", job); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransferTimeMonotone(t *testing.T) {
	f := func(bw uint32, lat uint16, a, b uint16) bool {
		l := Link{BandwidthBps: 1 + float64(bw%1_000_000), LatencySec: float64(lat) / 1000}
		x, y := int(a), int(a)+int(b)
		return l.TransferTime(y) >= l.TransferTime(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPlacementRespectsCausality(t *testing.T) {
	// Every committed placement starts at or after the transfer-in and
	// finishes after it starts.
	c := testCluster(t, MinCompletion)
	f := func(ops uint32, in uint16) bool {
		p, err := c.Submit(Job{Name: "p", Ops: float64(ops), InputBytes: int(in)})
		if err != nil {
			return false
		}
		return p.Finish >= p.Start && p.Start >= p.TransferIn-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitToUnknownResource(t *testing.T) {
	c := testCluster(t, MinCompletion)
	if _, err := c.SubmitTo("mainframe", Job{Name: "j", Ops: 1}); err == nil {
		t.Fatal("unknown resource should fail")
	}
}

func TestSubmitToRunsJob(t *testing.T) {
	c := testCluster(t, MinCompletion)
	p, err := c.SubmitTo("workstation", Job{
		Name: "j", Ops: 1e6,
		Run: func(workers int) (any, error) { return workers, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Resource.Name != "workstation" {
		t.Fatalf("placed on %s", p.Resource.Name)
	}
	if p.Output != 4 { // workstation has 4 cores
		t.Fatalf("workers granted = %v", p.Output)
	}
	// SubmitTo bypasses policy: min-completion would have picked the
	// supercomputer for this job.
	if sp, err := c.Submit(Job{Name: "k", Ops: 1e6}); err != nil || sp.Resource.Name != "supercomputer" {
		t.Fatalf("policy submit landed on %v (%v)", sp.Resource, err)
	}
}
