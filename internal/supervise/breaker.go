package supervise

import (
	"sort"
	"sync"
	"time"

	"pervasivegrid/internal/obs"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// Breaker states: Closed passes traffic, Open sheds it, HalfOpen lets
// probe traffic through to test recovery.
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

// String renders the state for /fleet.json and metrics labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerPolicy shapes the closed→open→half-open state machine.
type BreakerPolicy struct {
	// FailureThreshold is how many consecutive failures open the
	// breaker (default 5).
	FailureThreshold int
	// OpenFor is the cool-down before an open breaker lets a probe
	// through (default 2s).
	OpenFor time.Duration
	// HalfOpenSuccesses is how many consecutive probe successes close
	// a half-open breaker (default 2).
	HalfOpenSuccesses int
	// Clock is the cool-down time source (nil = wall clock).
	Clock obs.Clock
}

// DefaultBreakerPolicy returns the stock breaker policy.
func DefaultBreakerPolicy() BreakerPolicy {
	return BreakerPolicy{FailureThreshold: 5, OpenFor: 2 * time.Second, HalfOpenSuccesses: 2}
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	def := DefaultBreakerPolicy()
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = def.FailureThreshold
	}
	if p.OpenFor <= 0 {
		p.OpenFor = def.OpenFor
	}
	if p.HalfOpenSuccesses <= 0 {
		p.HalfOpenSuccesses = def.HalfOpenSuccesses
	}
	return p
}

func (p BreakerPolicy) clock() obs.Clock {
	if p.Clock != nil {
		return p.Clock
	}
	return obs.Real
}

// Breaker is one target's circuit breaker. Closed counts consecutive
// failures; at the threshold it opens and sheds sends for OpenFor; then
// it half-opens, letting traffic probe the target — enough consecutive
// successes close it, any failure re-opens it. ForceOpen lets the
// telemetry plane trip a breaker from health state (suspect/down) before
// local sends ever fail.
type Breaker struct {
	name   string
	policy BreakerPolicy

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive failures while closed
	successes int // consecutive successes while half-open
	openedAt  time.Time
	counts    BreakerCounts

	onChange func(name string, from, to BreakerState)
}

// BreakerCounts is cumulative breaker activity (transition counts are
// the "breaker flips" EXPERIMENTS.md records).
type BreakerCounts struct {
	// Failures / Successes count reported outcomes.
	Failures  uint64
	Successes uint64
	// Opened / HalfOpened / Closed count transitions into each state.
	Opened     uint64
	HalfOpened uint64
	Closed     uint64
	// ForcedOpen counts health-driven trips (a subset of Opened).
	ForcedOpen uint64
}

// NewBreaker builds a breaker for one named target.
func NewBreaker(name string, policy BreakerPolicy) *Breaker {
	return &Breaker{name: name, policy: policy.withDefaults()}
}

// Name returns the target this breaker guards.
func (b *Breaker) Name() string { return b.name }

// transitionLocked moves the state machine; callers hold b.mu.
func (b *Breaker) transitionLocked(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	switch to {
	case BreakerOpen:
		b.counts.Opened++
		b.openedAt = b.policy.clock().Now()
	case BreakerHalfOpen:
		b.counts.HalfOpened++
		b.successes = 0
	case BreakerClosed:
		b.counts.Closed++
		b.failures = 0
	}
	if b.onChange != nil {
		b.onChange(b.name, from, to)
	}
}

// Allow reports whether a send to the target should be attempted. An
// open breaker whose cool-down has elapsed half-opens (and allows the
// probe) as a side effect.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.policy.clock().Now().Sub(b.openedAt) >= b.policy.OpenFor {
			b.transitionLocked(BreakerHalfOpen)
			return true
		}
		return false
	default:
		return true
	}
}

// Success records a successful interaction with the target.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.counts.Successes++
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.successes++
		if b.successes >= b.policy.HalfOpenSuccesses {
			b.transitionLocked(BreakerClosed)
		}
	case BreakerOpen:
		// A straggling success from before the trip changes nothing.
	}
}

// Failure records a failed interaction with the target.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.counts.Failures++
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.policy.FailureThreshold {
			b.transitionLocked(BreakerOpen)
		}
	case BreakerHalfOpen:
		// The probe failed: back to shedding for a full cool-down.
		b.transitionLocked(BreakerOpen)
	case BreakerOpen:
	}
}

// ForceOpen trips the breaker regardless of failure counts — the
// health→breaker feedback path (telemetry marked the target suspect or
// down). A no-op when already open, so repeated health syncs do not keep
// resetting the cool-down.
func (b *Breaker) ForceOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		return
	}
	b.counts.ForcedOpen++
	b.transitionLocked(BreakerOpen)
}

// State returns the current position without side effects.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Counts snapshots cumulative activity.
func (b *Breaker) Counts() BreakerCounts {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts
}

// view builds the serialisable snapshot.
func (b *Breaker) view() BreakerView {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerView{
		Target:     b.name,
		State:      b.state.String(),
		Failures:   b.counts.Failures,
		Successes:  b.counts.Successes,
		Opened:     b.counts.Opened,
		HalfOpened: b.counts.HalfOpened,
		Closed:     b.counts.Closed,
		ForcedOpen: b.counts.ForcedOpen,
	}
}

// BreakerView is one breaker's state as served in /fleet.json.
type BreakerView struct {
	Target     string `json:"target"`
	State      string `json:"state"`
	Failures   uint64 `json:"failures"`
	Successes  uint64 `json:"successes"`
	Opened     uint64 `json:"opened"`
	HalfOpened uint64 `json:"half_opened"`
	Closed     uint64 `json:"closed"`
	ForcedOpen uint64 `json:"forced_open,omitempty"`
}

// DefaultBreakerTargets bounds how many distinct targets a BreakerSet
// tracks; beyond it new failures are not tracked (Allow stays true), so
// ephemeral caller IDs cannot grow the map without bound.
const DefaultBreakerTargets = 1024

// BreakerSet keys breakers by target (an agent ID, a service name, or a
// fleet node). Breakers are created lazily on the first Failure or
// ForceOpen — a target that never fails costs nothing, and Allow/Success
// on an untracked target are free no-ops.
type BreakerSet struct {
	policy BreakerPolicy

	mu       sync.Mutex
	breakers map[string]*Breaker
	metrics  *obs.Registry
	// MaxTargets overrides DefaultBreakerTargets when positive.
	MaxTargets int

	// Transition subscribers live under their own mutex: notifications
	// fire with the transitioning breaker's mutex held, and s.mu is held
	// while breaker mutexes are acquired (instrumentLocked), so routing
	// them through s.mu would close a lock cycle. subMu never acquires
	// another lock.
	subMu   sync.Mutex
	subs    map[int]func(target string, from, to BreakerState)
	nextSub int
}

// NewBreakerSet builds an empty set with the given policy (zero fields
// defaulted).
func NewBreakerSet(policy BreakerPolicy) *BreakerSet {
	return &BreakerSet{policy: policy.withDefaults(), breakers: map[string]*Breaker{}}
}

// AttachMetrics exports breaker state into reg: gauge
// breaker_state{target} (0 closed, 1 half-open, 2 open) and counter
// breaker_transitions_total{target,to}.
func (s *BreakerSet) AttachMetrics(reg *obs.Registry) {
	s.mu.Lock()
	s.metrics = reg
	for _, b := range s.breakers {
		s.instrumentLocked(b)
	}
	s.mu.Unlock()
}

// instrumentLocked wires the change hook; callers hold s.mu.
func (s *BreakerSet) instrumentLocked(b *Breaker) {
	reg := s.metrics
	if reg != nil {
		reg.Gauge("breaker_state", "target", b.name).Set(float64(b.State()))
	}
	b.mu.Lock()
	b.onChange = func(name string, from, to BreakerState) {
		if reg != nil {
			reg.Gauge("breaker_state", "target", name).Set(float64(to))
			reg.Counter("breaker_transitions_total", "target", name, "to", to.String()).Inc()
		}
		s.notify(name, from, to)
	}
	b.mu.Unlock()
}

// OnTransition subscribes fn to every state change of every breaker in
// the set (including ones created later) and returns a cancel func.
// Subscribers run synchronously with the transitioning breaker's
// internal mutex held: they MUST NOT block and MUST NOT call back into
// the set or any breaker — hand the signal off with a non-blocking
// channel send or an atomic flag and return.
func (s *BreakerSet) OnTransition(fn func(target string, from, to BreakerState)) func() {
	s.subMu.Lock()
	if s.subs == nil {
		s.subs = map[int]func(string, BreakerState, BreakerState){}
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = fn
	s.subMu.Unlock()
	return func() {
		s.subMu.Lock()
		delete(s.subs, id)
		s.subMu.Unlock()
	}
}

// notify fans a transition out to subscribers. Called from breaker
// onChange hooks (breaker mutex held), so it only touches subMu.
func (s *BreakerSet) notify(target string, from, to BreakerState) {
	s.subMu.Lock()
	if len(s.subs) == 0 {
		s.subMu.Unlock()
		return
	}
	fns := make([]func(string, BreakerState, BreakerState), 0, len(s.subs))
	for _, fn := range s.subs {
		fns = append(fns, fn)
	}
	s.subMu.Unlock()
	for _, fn := range fns {
		fn(target, from, to)
	}
}

// get returns the breaker for target, creating it when create is set and
// the set has room.
func (s *BreakerSet) get(target string, create bool) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.breakers[target]
	if ok || !create {
		return b
	}
	max := s.MaxTargets
	if max <= 0 {
		max = DefaultBreakerTargets
	}
	if len(s.breakers) >= max {
		return nil
	}
	b = NewBreaker(target, s.policy)
	s.breakers[target] = b
	s.instrumentLocked(b)
	return b
}

// Allow reports whether a send to target should be attempted (true for
// untracked targets).
func (s *BreakerSet) Allow(target string) bool {
	if b := s.get(target, false); b != nil {
		return b.Allow()
	}
	return true
}

// Success records a successful interaction (no-op for untracked
// targets — only failures create breakers).
func (s *BreakerSet) Success(target string) {
	if b := s.get(target, false); b != nil {
		b.Success()
	}
}

// Failure records a failed interaction, creating the target's breaker
// on first failure.
func (s *BreakerSet) Failure(target string) {
	if b := s.get(target, true); b != nil {
		b.Failure()
	}
}

// ForceOpen trips the target's breaker (health-driven), creating it if
// needed.
func (s *BreakerSet) ForceOpen(target string) {
	if b := s.get(target, true); b != nil {
		b.ForceOpen()
	}
}

// State returns the target's position (BreakerClosed for untracked).
func (s *BreakerSet) State(target string) BreakerState {
	if b := s.get(target, false); b != nil {
		return b.State()
	}
	return BreakerClosed
}

// Breaker returns the tracked breaker for target, or nil.
func (s *BreakerSet) Breaker(target string) *Breaker {
	return s.get(target, false)
}

// Snapshot lists every tracked breaker, sorted by target, for
// /fleet.json and experiment tables.
func (s *BreakerSet) Snapshot() []BreakerView {
	s.mu.Lock()
	bs := make([]*Breaker, 0, len(s.breakers))
	for _, b := range s.breakers {
		bs = append(bs, b)
	}
	s.mu.Unlock()
	out := make([]BreakerView, 0, len(bs))
	for _, b := range bs {
		out = append(out, b.view())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}

// Transitions sums open/half-open/close transitions across the set —
// the headline "breaker flips" number.
func (s *BreakerSet) Transitions() uint64 {
	var n uint64
	for _, v := range s.Snapshot() {
		n += v.Opened + v.HalfOpened + v.Closed
	}
	return n
}
