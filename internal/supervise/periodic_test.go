package supervise

import (
	"sync/atomic"
	"testing"
	"time"

	"pervasivegrid/internal/obs"
)

func TestPeriodicTicksAndStops(t *testing.T) {
	clk := obs.NewFakeClock()
	var ticks atomic.Int64
	proc := Periodic("ticker", clk, 50*time.Millisecond, func() {
		ticks.Add(1)
	})

	waitWaiter := func() {
		deadline := time.Now().Add(2 * time.Second)
		for clk.Waiters() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("periodic loop never armed its timer")
			}
			time.Sleep(time.Millisecond)
		}
	}
	for i := int64(1); i <= 3; i++ {
		waitWaiter()
		clk.Advance(50 * time.Millisecond)
		deadline := time.Now().Add(2 * time.Second)
		for ticks.Load() < i {
			if time.Now().After(deadline) {
				t.Fatalf("tick %d never fired (have %d)", i, ticks.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}
	proc.Stop()
	if proc.Alive() {
		t.Fatal("stopped periodic proc still alive")
	}
	if got := ticks.Load(); got != 3 {
		t.Fatalf("ticks = %d, want exactly 3", got)
	}
}

func TestPeriodicSurvivesPanickingTick(t *testing.T) {
	clk := obs.NewFakeClock()
	var ticks atomic.Int64
	proc := Periodic("flaky-ticker", clk, 10*time.Millisecond, func() {
		if ticks.Add(1) == 1 {
			panic("bad tick")
		}
	})
	fire := func(want int64) {
		deadline := time.Now().Add(2 * time.Second)
		for clk.Waiters() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("loop never re-armed")
			}
			time.Sleep(time.Millisecond)
		}
		clk.Advance(10 * time.Millisecond)
		for ticks.Load() < want {
			if time.Now().After(deadline) {
				t.Fatalf("tick %d never fired", want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	fire(1) // panics
	fire(2) // loop survived the panic and kept ticking
	if proc.Err() == nil {
		t.Fatal("panicking tick left no recorded error")
	}
	proc.Stop()
}
