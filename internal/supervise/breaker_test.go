package supervise

import (
	"testing"
	"time"

	"pervasivegrid/internal/obs"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	fc := obs.NewFakeClock()
	b := NewBreaker("svc", BreakerPolicy{FailureThreshold: 3, OpenFor: time.Second, Clock: fc})
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a send inside the cool-down")
	}
	if c := b.Counts(); c.Opened != 1 || c.Failures != 3 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestBreakerHalfOpenProbeAndClose(t *testing.T) {
	fc := obs.NewFakeClock()
	b := NewBreaker("svc", BreakerPolicy{FailureThreshold: 1, OpenFor: time.Second, HalfOpenSuccesses: 2, Clock: fc})
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker should be open")
	}
	fc.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cool-down elapsed: probe should be allowed")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	b.Success()
	if b.State() != BreakerHalfOpen {
		t.Fatal("one success closed a breaker that needs two")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after enough probe successes, want closed", b.State())
	}
	c := b.Counts()
	if c.Opened != 1 || c.HalfOpened != 1 || c.Closed != 1 {
		t.Fatalf("transition counts = %+v", c)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	fc := obs.NewFakeClock()
	b := NewBreaker("svc", BreakerPolicy{FailureThreshold: 1, OpenFor: time.Second, Clock: fc})
	b.Failure()
	fc.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe not allowed")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	// The cool-down restarts from the re-open.
	fc.Advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a send before a fresh cool-down")
	}
}

func TestBreakerForceOpenAndHeal(t *testing.T) {
	fc := obs.NewFakeClock()
	b := NewBreaker("node-2", BreakerPolicy{OpenFor: time.Second, HalfOpenSuccesses: 1, Clock: fc})
	b.ForceOpen()
	if b.State() != BreakerOpen {
		t.Fatal("ForceOpen did not open")
	}
	openedAt := b.Counts().Opened
	// Repeated health syncs must not reset the cool-down.
	fc.Advance(900 * time.Millisecond)
	b.ForceOpen()
	fc.Advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("repeated ForceOpen reset the cool-down")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed after heal", b.State())
	}
	if got := b.Counts().Opened; got != openedAt {
		t.Fatalf("ForceOpen while open counted a transition: %d -> %d", openedAt, got)
	}
}

func TestBreakerSetLazyCreation(t *testing.T) {
	s := NewBreakerSet(BreakerPolicy{FailureThreshold: 2})
	if !s.Allow("never-seen") {
		t.Fatal("untracked target not allowed")
	}
	s.Success("never-seen")
	if s.Breaker("never-seen") != nil {
		t.Fatal("Success created a breaker")
	}
	s.Failure("svc")
	if s.Breaker("svc") == nil {
		t.Fatal("Failure did not create a breaker")
	}
	if s.State("svc") != BreakerClosed {
		t.Fatal("one failure below threshold opened the breaker")
	}
	s.Failure("svc")
	if s.State("svc") != BreakerOpen || s.Allow("svc") {
		t.Fatal("threshold failures did not open the set's breaker")
	}
}

func TestBreakerSetBoundsTargets(t *testing.T) {
	s := NewBreakerSet(BreakerPolicy{})
	s.MaxTargets = 2
	s.Failure("a")
	s.Failure("b")
	s.Failure("c") // over the cap: not tracked
	if s.Breaker("c") != nil {
		t.Fatal("set grew past MaxTargets")
	}
	if !s.Allow("c") {
		t.Fatal("untracked over-cap target must stay allowed")
	}
	if got := len(s.Snapshot()); got != 2 {
		t.Fatalf("snapshot has %d entries, want 2", got)
	}
}

func TestBreakerSetSnapshotAndMetrics(t *testing.T) {
	fc := obs.NewFakeClock()
	reg := obs.NewRegistry()
	s := NewBreakerSet(BreakerPolicy{FailureThreshold: 1, OpenFor: time.Second, HalfOpenSuccesses: 1, Clock: fc})
	s.AttachMetrics(reg)
	s.Failure("beta")
	s.Failure("alpha")
	views := s.Snapshot()
	if len(views) != 2 || views[0].Target != "alpha" || views[1].Target != "beta" {
		t.Fatalf("snapshot not sorted: %+v", views)
	}
	if views[0].State != "open" {
		t.Fatalf("alpha state = %s, want open", views[0].State)
	}
	if got := reg.Gauge("breaker_state", "target", "alpha").Value(); got != float64(BreakerOpen) {
		t.Fatalf("breaker_state gauge = %v, want %v", got, float64(BreakerOpen))
	}
	if got := reg.Counter("breaker_transitions_total", "target", "alpha", "to", "open").Value(); got != 1 {
		t.Fatalf("transition counter = %v, want 1", got)
	}
	// alpha: open -> half-open -> closed = 3 transitions; beta: 1.
	fc.Advance(time.Second)
	s.Allow("alpha")
	s.Success("alpha")
	if got := s.Transitions(); got != 4 {
		t.Fatalf("Transitions() = %d, want 4", got)
	}
	if got := reg.Gauge("breaker_state", "target", "alpha").Value(); got != float64(BreakerClosed) {
		t.Fatalf("healed gauge = %v, want closed", got)
	}
}

func TestBreakerSetOnTransition(t *testing.T) {
	fc := obs.NewFakeClock()
	s := NewBreakerSet(BreakerPolicy{FailureThreshold: 2, OpenFor: time.Second, HalfOpenSuccesses: 1, Clock: fc})

	type hop struct {
		target   string
		from, to BreakerState
	}
	var got []hop
	cancel := s.OnTransition(func(target string, from, to BreakerState) {
		got = append(got, hop{target, from, to})
	})

	s.Failure("svc-a")
	s.Failure("svc-a") // closed -> open
	fc.Advance(time.Second)
	s.Allow("svc-a")   // open -> half-open
	s.Success("svc-a") // half-open -> closed
	s.ForceOpen("svc-b")

	want := []hop{
		{"svc-a", BreakerClosed, BreakerOpen},
		{"svc-a", BreakerOpen, BreakerHalfOpen},
		{"svc-a", BreakerHalfOpen, BreakerClosed},
		{"svc-b", BreakerClosed, BreakerOpen},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d transitions %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}

	cancel()
	s.Failure("svc-b") // already open: no transition either way
	s.Failure("svc-c")
	s.Failure("svc-c") // closed -> open, but unsubscribed
	if len(got) != len(want) {
		t.Fatalf("cancelled subscriber still notified: %v", got[len(want):])
	}
}

func TestBreakerSetOnTransitionWithMetrics(t *testing.T) {
	fc := obs.NewFakeClock()
	s := NewBreakerSet(BreakerPolicy{FailureThreshold: 1, OpenFor: time.Second, Clock: fc})
	reg := obs.NewRegistry()
	s.AttachMetrics(reg)

	fired := 0
	s.OnTransition(func(string, BreakerState, BreakerState) { fired++ })
	s.Failure("svc")
	if fired != 1 {
		t.Fatalf("subscriber fired %d times, want 1", fired)
	}
	if got := reg.Gauge("breaker_state", "target", "svc").Value(); got != float64(BreakerOpen) {
		t.Fatalf("breaker_state gauge = %v, want %v (metrics must keep working alongside subscribers)", got, float64(BreakerOpen))
	}
}
