// Package supervise is the self-healing layer of the runtime: Erlang-style
// supervision for the platform's goroutines. The paper's pervasive grid
// assumes devices and agents fail constantly — "the firefighter's PDA ...
// may be disconnected or destroyed" — so a panicking agent must cost the
// grid one conversation turn, not the whole process.
//
// Two levels of protection are offered:
//
//   - Spawn runs a one-shot goroutine behind a panic fence. A transport
//     pump that dies takes its own Proc down, never the process.
//   - Supervisor restarts children one-for-one with exponential backoff
//     and a max-restart budget inside a sliding window; exhausting the
//     budget escalates to OnGiveUp instead of crash-looping forever.
//
// The package also hosts the per-route circuit breakers (breaker.go) that
// turn delivery failures and telemetry health states into shed decisions.
package supervise

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"pervasivegrid/internal/obs"
)

// Policy shapes how a Supervisor treats a crashing child.
type Policy struct {
	// Restart re-runs a child after a panic. False means one strike:
	// the first panic escalates straight to OnGiveUp (the unsupervised
	// baseline behaviour, minus the process exit).
	Restart bool
	// MaxRestarts bounds restarts inside Window before the supervisor
	// gives up on the child (default 8).
	MaxRestarts int
	// Window is the sliding restart-intensity window (default 10s). A
	// child that stays up long enough for its crashes to age out of the
	// window earns its budget back.
	Window time.Duration
	// BaseDelay is the backoff before the first restart (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 1s).
	MaxDelay time.Duration
	// Multiplier grows the backoff per consecutive restart (default 2).
	Multiplier float64
	// Clock is the time source for backoff and the restart window. Nil
	// means the wall clock; tests inject obs.FakeClock.
	Clock obs.Clock
}

// DefaultPolicy returns the stock one-for-one restart policy.
func DefaultPolicy() Policy {
	return Policy{
		Restart:     true,
		MaxRestarts: 8,
		Window:      10 * time.Second,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    time.Second,
		Multiplier:  2,
	}
}

// withDefaults fills zero fields (Restart is taken as configured: a
// zero-value Policy is deliberately a no-restart policy).
func (p Policy) withDefaults() Policy {
	def := DefaultPolicy()
	if p.MaxRestarts <= 0 {
		p.MaxRestarts = def.MaxRestarts
	}
	if p.Window <= 0 {
		p.Window = def.Window
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = def.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = def.MaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = def.Multiplier
	}
	return p
}

func (p Policy) clock() obs.Clock {
	if p.Clock != nil {
		return p.Clock
	}
	return obs.Real
}

// PanicError is the recovered value of a crashed child, with the stack
// captured at the recovery point.
type PanicError struct {
	Child string
	Value any
	Stack []byte
}

// Error implements error. The stack is kept out of the message (it is
// available via Stack) so wrapped errors stay log-line sized.
func (e *PanicError) Error() string {
	return fmt.Sprintf("supervise: child %q panicked: %v", e.Child, e.Value)
}

// Proc is a handle on a supervised goroutine (one-shot or restarting).
type Proc struct {
	name string
	stop chan struct{}
	done chan struct{}

	stopOnce sync.Once

	mu       sync.Mutex
	restarts int
	lastErr  error
	alive    bool
	gaveUp   bool
}

// Name returns the child name the Proc was spawned under.
func (pr *Proc) Name() string { return pr.name }

// Stop signals the child to stop and waits for it to exit. For one-shot
// Spawn procs whose function does not watch a stop signal, Stop simply
// waits for the function to return.
func (pr *Proc) Stop() {
	pr.stopOnce.Do(func() { close(pr.stop) })
	<-pr.done
}

// Stopping exposes the stop signal so delivery paths (e.g. a blocking
// mailbox policy) can abort when the owning agent is going away.
func (pr *Proc) Stopping() <-chan struct{} { return pr.stop }

// Done is closed once the child has exited for good (normal return,
// stop, or give-up).
func (pr *Proc) Done() <-chan struct{} { return pr.done }

// Restarts reports how many times the child has been restarted.
func (pr *Proc) Restarts() int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.restarts
}

// Alive reports whether the child is currently running (or between
// restarts).
func (pr *Proc) Alive() bool {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.alive
}

// GaveUp reports whether the supervisor exhausted the restart budget and
// escalated.
func (pr *Proc) GaveUp() bool {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.gaveUp
}

// Err returns the most recent recovered panic (a *PanicError), or nil if
// the child has never crashed.
func (pr *Proc) Err() error {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.lastErr
}

func newProc(name string) *Proc {
	return &Proc{
		name:  name,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		alive: true,
	}
}

func (pr *Proc) setAlive(v bool) {
	pr.mu.Lock()
	pr.alive = v
	pr.mu.Unlock()
}

func (pr *Proc) noteCrash(err error) {
	pr.mu.Lock()
	pr.lastErr = err
	pr.mu.Unlock()
}

func (pr *Proc) noteRestart() {
	pr.mu.Lock()
	pr.restarts++
	pr.mu.Unlock()
}

func (pr *Proc) noteGiveUp() {
	pr.mu.Lock()
	pr.gaveUp = true
	pr.alive = false
	pr.mu.Unlock()
}

// Spawn runs fn on its own goroutine behind a panic fence and returns a
// handle. The goroutine is one-shot: a panic is recovered and recorded on
// the Proc, not propagated and not restarted — the fence is for pumps
// (transport read loops, reporters) that have their own reconnect logic
// and must never take the process down. Use a Supervisor when the child
// should be restarted.
func Spawn(name string, fn func()) *Proc {
	proc := newProc(name)
	go func() {
		defer close(proc.done)
		defer proc.setAlive(false)
		if err := runSafe(name, fn); err != nil {
			proc.noteCrash(err)
		}
	}()
	return proc
}

// runSafe invokes fn, converting a panic into a *PanicError.
func runSafe(name string, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Child: name, Value: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// Exit describes a child the supervisor has given up on.
type Exit struct {
	// Name is the child name.
	Name string
	// Err is the final recovered panic.
	Err error
	// Restarts is how many restarts were burned before escalation.
	Restarts int
}

// Supervisor restarts crashing children one-for-one. Children are run
// functions taking a stop signal; a normal return is a clean exit (no
// restart), a panic is a crash handled per the Policy.
type Supervisor struct {
	name   string
	policy Policy

	mu       sync.Mutex
	procs    map[string]*Proc
	restarts uint64
	panics   uint64
	giveups  uint64
	metrics  *obs.Registry

	onRestart func(name string, err error, restarts int)
	onGiveUp  func(exit Exit)
}

// NewSupervisor builds a supervisor with the given policy (zero fields
// filled with defaults; see Policy).
func NewSupervisor(name string, policy Policy) *Supervisor {
	return &Supervisor{
		name:   name,
		policy: policy.withDefaults(),
		procs:  map[string]*Proc{},
	}
}

// OnRestart installs a hook called after each restart decision, before
// the backoff sleep. Install hooks before spawning children.
func (s *Supervisor) OnRestart(fn func(name string, err error, restarts int)) {
	s.mu.Lock()
	s.onRestart = fn
	s.mu.Unlock()
}

// OnGiveUp installs the escalation hook: called once when a child
// exhausts its restart budget (or crashes under a no-restart policy).
// This is where a daemon decides whether a dead child is fatal.
func (s *Supervisor) OnGiveUp(fn func(exit Exit)) {
	s.mu.Lock()
	s.onGiveUp = fn
	s.mu.Unlock()
}

// AttachMetrics mirrors supervision events into reg:
// supervise_panics_total / supervise_restarts_total (labelled by child)
// and supervise_giveups_total.
func (s *Supervisor) AttachMetrics(reg *obs.Registry) {
	s.mu.Lock()
	s.metrics = reg
	s.mu.Unlock()
}

// Stats is a point-in-time snapshot of supervision activity.
type Stats struct {
	// Panics counts recovered child panics.
	Panics uint64
	// Restarts counts restart decisions taken.
	Restarts uint64
	// GiveUps counts children escalated after budget exhaustion.
	GiveUps uint64
}

// Stats snapshots the supervisor's counters.
func (s *Supervisor) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Panics: s.panics, Restarts: s.restarts, GiveUps: s.giveups}
}

// Proc returns the handle for a named child, or nil.
func (s *Supervisor) Proc(name string) *Proc {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.procs[name]
}

// Spawn starts a supervised child. run receives the stop signal and
// should return when it fires; a panic triggers the restart policy. The
// latest Spawn under a name replaces the supervisor's handle for it (the
// previous child, if any, keeps running until stopped).
func (s *Supervisor) Spawn(name string, run func(stop <-chan struct{})) *Proc {
	proc := newProc(name)
	s.mu.Lock()
	s.procs[name] = proc
	s.mu.Unlock()
	go s.loop(proc, run)
	return proc
}

// loop is the per-child supervision loop: run, recover, decide, back
// off, restart — until a clean exit, a stop, or budget exhaustion. The
// handle is dropped from the supervisor on exit so short-lived children
// (ephemeral callers) do not grow the map without bound; callers keep
// the *Proc returned by Spawn.
func (s *Supervisor) loop(proc *Proc, run func(stop <-chan struct{})) {
	defer func() {
		s.mu.Lock()
		if s.procs[proc.name] == proc {
			delete(s.procs, proc.name)
		}
		s.mu.Unlock()
	}()
	defer close(proc.done)
	clk := s.policy.clock()
	delay := s.policy.BaseDelay
	var crashes []time.Time
	for {
		err := runSafe(proc.name, func() { run(proc.stop) })
		if err == nil {
			// Clean exit: the child returned on its own terms.
			proc.setAlive(false)
			return
		}
		proc.noteCrash(err)
		s.notePanic(proc.name)
		select {
		case <-proc.stop:
			proc.setAlive(false)
			return
		default:
		}
		now := clk.Now()
		crashes = append(crashes, now)
		kept := crashes[:0]
		for _, at := range crashes {
			if now.Sub(at) <= s.policy.Window {
				kept = append(kept, at)
			}
		}
		crashes = kept
		if len(crashes) == 1 {
			// Previous crashes aged out of the window: the child earned
			// its backoff back too.
			delay = s.policy.BaseDelay
		}
		if !s.policy.Restart || len(crashes) > s.policy.MaxRestarts {
			proc.noteGiveUp()
			s.escalate(Exit{Name: proc.name, Err: err, Restarts: proc.Restarts()})
			return
		}
		proc.noteRestart()
		s.noteRestart(proc.name, err, proc.Restarts())
		select {
		case <-proc.stop:
			proc.setAlive(false)
			return
		case <-clk.After(delay):
		}
		grown := time.Duration(float64(delay) * s.policy.Multiplier)
		if grown > s.policy.MaxDelay {
			grown = s.policy.MaxDelay
		}
		delay = grown
	}
}

func (s *Supervisor) notePanic(child string) {
	s.mu.Lock()
	s.panics++
	if s.metrics != nil {
		s.metrics.Counter("supervise_panics_total", "child", child).Inc()
	}
	s.mu.Unlock()
}

func (s *Supervisor) noteRestart(child string, err error, restarts int) {
	s.mu.Lock()
	s.restarts++
	if s.metrics != nil {
		s.metrics.Counter("supervise_restarts_total", "child", child).Inc()
	}
	hook := s.onRestart
	s.mu.Unlock()
	if hook != nil {
		hook(child, err, restarts)
	}
}

// Periodic runs fn every interval on a supervised goroutine until the
// returned Proc is stopped. Each tick is panic-fenced like Spawn: a
// panicking fn is recorded on the Proc and the loop keeps ticking —
// built for maintenance pumps (WAL interval fsync, cache sweeps) where
// one bad tick must not end the schedule. clk nil means the wall clock.
func Periodic(name string, clk obs.Clock, interval time.Duration, fn func()) *Proc {
	if clk == nil {
		clk = obs.Real
	}
	proc := newProc(name)
	go func() {
		defer close(proc.done)
		defer proc.setAlive(false)
		for {
			select {
			case <-proc.stop:
				return
			case <-clk.After(interval):
			}
			if err := runSafe(name, fn); err != nil {
				proc.noteCrash(err)
			}
		}
	}()
	return proc
}

func (s *Supervisor) escalate(exit Exit) {
	s.mu.Lock()
	s.giveups++
	if s.metrics != nil {
		s.metrics.Counter("supervise_giveups_total", "child", exit.Name).Inc()
	}
	hook := s.onGiveUp
	s.mu.Unlock()
	if hook != nil {
		hook(exit)
	}
}
