package supervise

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pervasivegrid/internal/obs"
)

func TestSpawnRecoversPanic(t *testing.T) {
	proc := Spawn("boom", func() { panic("kaboom") })
	select {
	case <-proc.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("proc never finished")
	}
	if proc.Alive() {
		t.Fatal("proc still reported alive")
	}
	err := proc.Err()
	if err == nil {
		t.Fatal("panic was not recorded")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PanicError", err)
	}
	if pe.Child != "boom" || pe.Value != "kaboom" {
		t.Fatalf("unexpected panic error: %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
}

func TestSpawnCleanExit(t *testing.T) {
	ran := make(chan struct{})
	proc := Spawn("ok", func() { close(ran) })
	<-ran
	proc.Stop()
	if proc.Err() != nil {
		t.Fatalf("clean exit recorded an error: %v", proc.Err())
	}
	if proc.Restarts() != 0 {
		t.Fatalf("one-shot proc restarted %d times", proc.Restarts())
	}
}

func TestSupervisorRestartsOnPanic(t *testing.T) {
	fc := obs.NewFakeClock()
	defer fc.AutoAdvance()()
	sup := NewSupervisor("test", Policy{Restart: true, MaxRestarts: 5, Clock: fc})
	reg := obs.NewRegistry()
	sup.AttachMetrics(reg)

	var runs atomic.Int32
	proc := sup.Spawn("flappy", func(stop <-chan struct{}) {
		if runs.Add(1) <= 2 {
			panic("transient")
		}
		<-stop
	})
	// Wait for the third (stable) run to be entered.
	deadline := time.Now().Add(5 * time.Second)
	for runs.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if runs.Load() < 3 {
		t.Fatalf("child ran %d times, want 3", runs.Load())
	}
	if got := proc.Restarts(); got != 2 {
		t.Fatalf("Restarts() = %d, want 2", got)
	}
	if !proc.Alive() {
		t.Fatal("stable child not reported alive")
	}
	proc.Stop()
	st := sup.Stats()
	if st.Panics != 2 || st.Restarts != 2 || st.GiveUps != 0 {
		t.Fatalf("stats = %+v, want 2 panics / 2 restarts / 0 giveups", st)
	}
	if got := reg.Counter("supervise_restarts_total", "child", "flappy").Value(); got != 2 {
		t.Fatalf("supervise_restarts_total = %v, want 2", got)
	}
}

func TestSupervisorGivesUpAndEscalates(t *testing.T) {
	fc := obs.NewFakeClock()
	defer fc.AutoAdvance()()
	sup := NewSupervisor("test", Policy{Restart: true, MaxRestarts: 2, Clock: fc})

	var mu sync.Mutex
	var exits []Exit
	sup.OnGiveUp(func(e Exit) {
		mu.Lock()
		exits = append(exits, e)
		mu.Unlock()
	})
	proc := sup.Spawn("doomed", func(stop <-chan struct{}) { panic("always") })
	select {
	case <-proc.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor never gave up")
	}
	if !proc.GaveUp() {
		t.Fatal("GaveUp() = false after budget exhaustion")
	}
	if got := proc.Restarts(); got != 2 {
		t.Fatalf("Restarts() = %d, want 2 (the budget)", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(exits) != 1 {
		t.Fatalf("OnGiveUp called %d times, want 1", len(exits))
	}
	if exits[0].Name != "doomed" || exits[0].Restarts != 2 || exits[0].Err == nil {
		t.Fatalf("unexpected exit: %+v", exits[0])
	}
}

func TestSupervisorNoRestartPolicy(t *testing.T) {
	sup := NewSupervisor("test", Policy{Restart: false})
	gaveUp := make(chan Exit, 1)
	sup.OnGiveUp(func(e Exit) { gaveUp <- e })
	proc := sup.Spawn("once", func(stop <-chan struct{}) { panic("first strike") })
	select {
	case e := <-gaveUp:
		if e.Restarts != 0 {
			t.Fatalf("no-restart policy burned %d restarts", e.Restarts)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no escalation under Restart:false")
	}
	<-proc.Done()
}

func TestSupervisorStopDuringBackoff(t *testing.T) {
	fc := obs.NewFakeClock() // no AutoAdvance: backoff sleep parks forever
	sup := NewSupervisor("test", Policy{Restart: true, MaxRestarts: 8, BaseDelay: time.Hour, Clock: fc})
	entered := make(chan struct{})
	proc := sup.Spawn("parked", func(stop <-chan struct{}) {
		close(entered)
		panic("crash into backoff")
	})
	<-entered
	// Wait until the supervisor is parked on the backoff timer.
	deadline := time.Now().Add(2 * time.Second)
	for fc.Waiters() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() { proc.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not interrupt the backoff sleep")
	}
}

func TestSupervisorWindowRecoversBudget(t *testing.T) {
	fc := obs.NewFakeClock()
	defer fc.AutoAdvance()()
	// Budget of 1 restart per 50ms window; a child that crashes once,
	// then stays up past the window, may crash again without give-up.
	sup := NewSupervisor("test", Policy{
		Restart: true, MaxRestarts: 1, Window: 50 * time.Millisecond,
		BaseDelay: time.Millisecond, Clock: fc,
	})
	var runs atomic.Int32
	proc := sup.Spawn("slow-flap", func(stop <-chan struct{}) {
		n := runs.Add(1)
		if n >= 4 {
			<-stop
			return
		}
		// Stay "up" long enough for the previous crash to age out.
		fc.Sleep(200 * time.Millisecond)
		panic("periodic")
	})
	deadline := time.Now().Add(5 * time.Second)
	for runs.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if runs.Load() < 4 {
		t.Fatalf("child ran %d times, want 4 (window should refill the budget)", runs.Load())
	}
	if proc.GaveUp() {
		t.Fatal("supervisor gave up despite crashes aging out of the window")
	}
	proc.Stop()
}
