package telemetry

import (
	"sync"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/partition"
	"pervasivegrid/internal/supervise"
)

// Transport probing: a node cannot read its uplink cost off a local
// histogram — injected latency and silent drops happen beyond its
// deputy — so it measures the only way a distributed system can: by
// round-tripping real envelopes and timing them. The prober records
//
//	transport_rtt_seconds        histogram  per-probe round-trip time
//	transport_probe_sent_total   counter    probes attempted
//	transport_probe_lost_total   counter    probes that timed out
//
// into the platform registry; those are exactly the series
// partition.ObservedFromSnapshot reads on the monitor side, which makes
// the probe → report → aggregate → ApplyObserved chain fully automatic.

// ProbeOptions tunes a transport prober.
type ProbeOptions struct {
	// Target is the echo agent to round-trip against (typically
	// EchoID on the monitor platform).
	Target agent.ID
	// Interval separates periodic probes (default 1s; only used by the
	// background loop).
	Interval time.Duration
	// Timeout bounds one probe conversation (default 250ms). A probe
	// that times out counts as lost.
	Timeout time.Duration
	// Retry shapes the probe conversation. Defaults to a single attempt
	// so each probe measures one shot of the link, not the retry layer.
	Retry agent.RetryPolicy
	// Clock is the RTT time source (default: the platform's clock).
	Clock obs.Clock
}

// EchoID is the well-known echo responder the monitor side registers.
const EchoID agent.ID = "telemetry-echo"

func (o ProbeOptions) withDefaults(p *agent.Platform) ProbeOptions {
	if o.Target == "" {
		o.Target = EchoID
	}
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 250 * time.Millisecond
	}
	if o.Retry.MaxAttempts <= 0 {
		o.Retry.MaxAttempts = 1
	}
	if o.Clock == nil {
		if p.Clock != nil {
			o.Clock = p.Clock
		} else {
			o.Clock = obs.Real
		}
	}
	if o.Retry.Clock == nil {
		o.Retry.Clock = o.Clock
	}
	return o
}

// RegisterEcho registers the telemetry echo responder on p under id
// ("" = EchoID): every probe request is answered with an inform carrying
// the same body.
func RegisterEcho(p *agent.Platform, id agent.ID) error {
	if id == "" {
		id = EchoID
	}
	return p.Register(id, agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		if out, err := env.Reply("inform", "pong"); err == nil {
			out.From = ctx.Self
			// A retried echo reply would hide the loss the probe exists to
			// measure: a dropped pong must count as a dropped pong.
			//lint:ignore rawsend probe replies must not retry — loss is the measured signal
			_ = ctx.Platform.Send(out)
		}
	}), agent.Attributes{Agent: map[string]string{agent.AttrRole: "telemetry-echo"}}, nil)
}

// Prober measures a node's uplink by echo round-trips.
type Prober struct {
	platform *agent.Platform
	opts     ProbeOptions
	done     chan struct{}
	stopped  chan struct{}

	mu     sync.Mutex
	closed bool
	once   sync.Once
}

// NewProber builds a prober; call ProbeOnce for synchronous probes or
// Start for a background probe loop.
func NewProber(p *agent.Platform, opts ProbeOptions) *Prober {
	return &Prober{
		platform: p,
		opts:     opts.withDefaults(p),
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
}

// ProbeOnce round-trips one probe and records it. It returns the RTT and
// whether the probe completed.
func (pr *Prober) ProbeOnce() (time.Duration, bool) {
	reg := pr.platform.Metrics()
	reg.Counter(partition.SeriesTransportProbeSent).Inc()
	clk := pr.opts.Clock
	start := clk.Now()
	_, err := agent.CallRetry(pr.platform, pr.opts.Target, "request", OntologyProbe,
		"ping", pr.opts.Timeout, pr.opts.Retry)
	if err != nil {
		reg.Counter(partition.SeriesTransportProbeLost).Inc()
		return 0, false
	}
	rtt := clk.Now().Sub(start)
	reg.Histogram(partition.SeriesTransportRTT).Observe(rtt.Seconds())
	return rtt, true
}

// Start launches the periodic probe loop (idempotent).
func (pr *Prober) Start() {
	pr.once.Do(func() {
		supervise.Spawn("telemetry-probe", func() {
			defer close(pr.stopped)
			for {
				select {
				case <-pr.done:
					return
				case <-pr.opts.Clock.After(pr.opts.Interval):
				}
				select {
				case <-pr.done:
					return
				default:
				}
				pr.ProbeOnce()
			}
		})
	})
}

// Close stops the probe loop.
func (pr *Prober) Close() {
	pr.mu.Lock()
	if pr.closed {
		pr.mu.Unlock()
		return
	}
	pr.closed = true
	pr.mu.Unlock()
	close(pr.done)
	pr.once.Do(func() { close(pr.stopped) }) // loop never started
	<-pr.stopped
}
