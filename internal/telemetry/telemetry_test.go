package telemetry

import (
	"strings"
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/partition"
	"pervasivegrid/internal/query"
)

// waitFor polls cond until it holds or the real-time deadline passes.
// Virtual time is driven explicitly by the tests; this only absorbs
// goroutine/network scheduling delay, so outcomes stay deterministic.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestReporterShipsDeltasToLocalMonitor(t *testing.T) {
	clk := obs.NewFakeClock()
	p := agent.NewPlatform("node-a")
	p.Clock = clk
	defer p.Close()

	mon, err := RegisterMonitor(p, MonitorOptions{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	app := obs.NewRegistry()
	rep, err := StartReporter(p, ReporterOptions{
		Interval: time.Second,
		Sources:  []obs.Source{app},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	// The reporter announces itself immediately (full snapshot).
	waitFor(t, "first report", func() bool { return mon.Reports("node-a") >= 1 })
	snap, ok := mon.NodeSnapshot("node-a")
	if !ok {
		t.Fatal("node-a unknown after first report")
	}
	if snap.Gauges["runtime_goroutines"] < 1 {
		t.Fatalf("runtime gauges missing from report: %v", snap.Gauges)
	}
	if mon.Health("node-a") != Healthy {
		t.Fatalf("health = %v, want healthy", mon.Health("node-a"))
	}

	// Change one app series; the next report is a delta that must merge
	// onto the stored view without losing the untouched series.
	app.Counter("app_things_total").Add(5)
	clk.Advance(time.Second)
	waitFor(t, "second report", func() bool { return mon.Reports("node-a") >= 2 })
	snap, _ = mon.NodeSnapshot("node-a")
	if snap.Counters["app_things_total"] != 5 {
		t.Fatalf("delta did not merge: %v", snap.Counters)
	}
	if snap.Gauges["runtime_goroutines"] < 1 {
		t.Fatalf("delta merge lost prior series: %v", snap.Gauges)
	}

	fv := mon.Fleet()
	if len(fv.Nodes) != 1 || fv.Nodes[0].Node != "node-a" || fv.Worst != Healthy {
		t.Fatalf("fleet view = %+v", fv)
	}
	if fv.Nodes[0].Series == 0 {
		t.Fatal("fleet view reports zero series")
	}
}

func TestHealthDecaysWithStalenessAndRecovers(t *testing.T) {
	clk := obs.NewFakeClock()
	p := agent.NewPlatform("node-b")
	p.Clock = clk
	defer p.Close()

	mon, err := RegisterMonitor(p, MonitorOptions{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := StartReporter(p, ReporterOptions{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first report", func() bool { return mon.Reports("node-b") >= 1 })

	// Stop reporting and walk the clock through every threshold:
	// healthy (≤2s) → degraded (≤4s) → suspect (≤8s) → down.
	rep.Close()
	steps := []struct {
		advance time.Duration
		want    Health
	}{
		{time.Second, Healthy},                         // 1s stale
		{time.Second + 500*time.Millisecond, Degraded}, // 2.5s
		{2 * time.Second, Suspect},                     // 4.5s
		{4 * time.Second, Down},                        // 8.5s
	}
	for _, st := range steps {
		clk.Advance(st.advance)
		if got := mon.Health("node-b"); got != st.want {
			t.Fatalf("after advance to %v staleness: health = %v, want %v",
				clk.Now(), got, st.want)
		}
	}
	if fv := mon.Fleet(); fv.Worst != Down {
		t.Fatalf("fleet worst = %v, want down", fv.Worst)
	}

	// A fresh report snaps the node straight back to healthy.
	rep2, err := StartReporter(p, ReporterOptions{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	waitFor(t, "recovery report", func() bool { return mon.Health("node-b") == Healthy })
}

func TestMonitorCountsSeqGapsAndResyncs(t *testing.T) {
	clk := obs.NewFakeClock()
	p := agent.NewPlatform("monitor")
	p.Clock = clk
	defer p.Close()
	mon, err := RegisterMonitor(p, MonitorOptions{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	reg.Counter("c_total").Add(1)
	full := reg.Snapshot()
	mon.Ingest(Report{Node: "n", Seq: 1, Full: true, Snap: full})
	mon.Ingest(Report{Node: "n", Seq: 2, Snap: obs.Snapshot{}})
	// Reports 3 and 4 lost in transit.
	mon.Ingest(Report{Node: "n", Seq: 5, Snap: obs.Snapshot{}})
	// The reporter noticed a failure and resynced with a full snapshot.
	mon.Ingest(Report{Node: "n", Seq: 6, Full: true, Snap: full})
	// A duplicated envelope replays an old seq; must not corrupt counts.
	mon.Ingest(Report{Node: "n", Seq: 5, Snap: obs.Snapshot{}})

	fv := mon.Fleet()
	if len(fv.Nodes) != 1 {
		t.Fatalf("nodes = %d", len(fv.Nodes))
	}
	nv := fv.Nodes[0]
	if nv.Missed != 2 {
		t.Fatalf("missed = %d, want 2", nv.Missed)
	}
	if nv.Resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", nv.Resyncs)
	}
	if nv.Seq != 6 {
		t.Fatalf("seq = %d, want 6", nv.Seq)
	}
	if nv.Reports != 5 {
		t.Fatalf("reports = %d, want 5", nv.Reports)
	}
}

func TestObservedTransportFeedsPartitionDecision(t *testing.T) {
	clk := obs.NewFakeClock()
	p := agent.NewPlatform("monitor")
	p.Clock = clk
	defer p.Close()
	mon, err := RegisterMonitor(p, MonitorOptions{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}

	// A degraded remote node: 12ms probe RTT, 10% probe loss.
	reg := obs.NewRegistry()
	for i := 0; i < 40; i++ {
		reg.Histogram(partition.SeriesTransportRTT).Observe(0.012)
	}
	reg.Counter(partition.SeriesTransportProbeSent).Add(40)
	reg.Counter(partition.SeriesTransportProbeLost).Add(4)
	mon.Ingest(Report{Node: "remote", Seq: 1, Full: true, Snap: reg.Snapshot()})

	o, ok := mon.ObservedTransport("remote")
	if !ok {
		t.Fatal("remote unknown")
	}
	if o.AvgDeliverSec < 0.006 || o.AvgDeliverSec > 0.024 {
		t.Fatalf("AvgDeliverSec = %v, want ~0.012 (bucket-quantised)", o.AvgDeliverSec)
	}
	if o.DropRate != 0.1 {
		t.Fatalf("DropRate = %v, want 0.1", o.DropRate)
	}

	conf := partition.DefaultPlatform()
	dm := partition.NewDecisionMaker(partition.NewEstimator(conf))
	if _, ok := mon.Correct(dm, "remote"); !ok {
		t.Fatal("Correct failed")
	}
	if dm.Est.P.Net.HopDelay != o.AvgDeliverSec {
		t.Fatalf("HopDelay = %v, want %v", dm.Est.P.Net.HopDelay, o.AvgDeliverSec)
	}
	if dm.Est.P.Net.BandwidthBps >= conf.Net.BandwidthBps {
		t.Fatal("bandwidth not derated by measured drop")
	}

	// The same boundary workload E13 uses must flip once the measured
	// hop cost replaces the configured 2ms constant.
	f := partition.Features{Base: query.Aggregate, Selected: 40, AvgDepth: 4, MaxDepth: 6}
	dmConf := partition.NewDecisionMaker(partition.NewEstimator(conf))
	before, err := dmConf.Choose(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	after, err := dm.Choose(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if before.Model == after.Model {
		t.Fatalf("boundary decision did not flip (both %v)", before.Model)
	}
}

func TestObservedTransportFallsBackToDeliveryAccounting(t *testing.T) {
	clk := obs.NewFakeClock()
	p := agent.NewPlatform("monitor")
	p.Clock = clk
	defer p.Close()
	mon, err := RegisterMonitor(p, MonitorOptions{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// No probe series: drop rate comes from the platform's delivery
	// accounting (90 delivered / 10 dropped).
	mon.Ingest(Report{Node: "n", Seq: 1, Full: true, Snap: obs.Snapshot{},
		Delivered: 90, Dropped: 10})
	o, _ := mon.ObservedTransport("n")
	if o.DropRate != 0.1 {
		t.Fatalf("fallback DropRate = %v, want 0.1", o.DropRate)
	}
	if o.AvgDeliverSec != 0 {
		t.Fatalf("AvgDeliverSec = %v, want 0 (no histogram)", o.AvgDeliverSec)
	}
}

func TestTraceStitchingAcrossReportedSpans(t *testing.T) {
	clk := obs.NewFakeClock()
	p := agent.NewPlatform("monitor")
	p.Clock = clk
	defer p.Close()
	mon, err := RegisterMonitor(p, MonitorOptions{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}

	// Two nodes report spans of the same conversation; the monitor must
	// stitch them into one timeline, in time order, node-tagged.
	id := obs.NewTraceID()
	t0 := clk.Now()
	mon.Ingest(Report{Node: "a", Seq: 1, Full: true, Spans: []obs.Span{
		{Trace: id, Seq: 1, Time: t0, Node: "a", Kind: obs.SpanSend, From: "x", To: "y"},
		{Trace: id, Seq: 1, Time: t0.Add(time.Millisecond), Node: "a", Kind: obs.SpanRoute, From: "x", To: "y"},
	}})
	mon.Ingest(Report{Node: "b", Seq: 1, Full: true, Spans: []obs.Span{
		{Trace: id, Seq: 1, Time: t0.Add(2 * time.Millisecond), Node: "b", Kind: obs.SpanIngress, From: "x", To: "y"},
		{Trace: id, Seq: 1, Time: t0.Add(3 * time.Millisecond), Node: "b", Kind: obs.SpanDeliver, From: "x", To: "y"},
	}})

	spans := mon.Tracer().Trace(id)
	if len(spans) != 4 {
		t.Fatalf("stitched %d spans, want 4", len(spans))
	}
	if spans[0].Node != "a" || spans[3].Node != "b" {
		t.Fatalf("stitched order wrong: %+v", spans)
	}
	tl := mon.Timeline(id)
	for _, want := range []string{"[a]", "[b]", "send", "ingress", "deliver"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline missing %q:\n%s", want, tl)
		}
	}
	if fv := mon.Fleet(); fv.Traces != 1 {
		t.Fatalf("fleet traces = %d, want 1", fv.Traces)
	}
}

// TestSeqGapTriggersFullResyncAtLoadRates runs the silent-loss scenario
// at load-harness rates: a node doing thousands of local deliveries per
// virtual second keeps reporting into a partitioned uplink (the injector
// drops silently, so the reporter believes every delta arrived and its
// delta base keeps advancing). After the heal, the series that changed
// only during the blackout are stale on the monitor forever — unless the
// monitor notices the seq gap and requests a full resync, which is the
// contract under test.
func TestSeqGapTriggersFullResyncAtLoadRates(t *testing.T) {
	clk := obs.NewFakeClock()
	f := startTestFleet(t, clk, 1)
	node := f.Nodes[0]
	advanceAndSettle(t, clk, f, 0)

	// Blackout: five report intervals of heavy local traffic, every
	// report silently dropped on the uplink.
	f.Partition(0, true)
	repBaseline := node.Reporter.Seq()
	for i := 0; i < 5; i++ {
		node.Work(2000)
		clk.Advance(time.Second)
		seqTarget := repBaseline + uint64(i+1)
		waitFor(t, "blackout report attempt", func() bool {
			return node.Reporter.Seq() >= seqTarget
		})
	}
	// The deliver histogram moved only during the blackout; nothing
	// after the heal touches it (reporter traffic leaves over the link,
	// not through a local mailbox).
	liveCount := node.Platform.MetricsSnapshot().Histograms["agent_deliver_latency_seconds"].Count

	// Heal. The first post-heal delta exposes the seq gap; the monitor
	// must request a resync and the next report must be full.
	f.Partition(0, false)
	advanceAndSettle(t, clk, f, 0)
	waitFor(t, "monitor-side resync after seq gap", func() bool {
		clk.Advance(time.Second)
		for _, nv := range f.Monitor.Fleet().Nodes {
			if nv.Node == node.Name {
				return nv.Missed >= 1 && nv.Resyncs >= 1
			}
		}
		return false
	})
	snap, ok := f.Monitor.NodeSnapshot(node.Name)
	if !ok {
		t.Fatalf("node %s unknown to monitor", node.Name)
	}
	// The resync control envelope is itself one more local delivery on
	// the node, so the stored count may run slightly ahead of the
	// pre-heal capture — what matters is that the ~10k blackout-era
	// samples are not missing.
	got := snap.Histograms["agent_deliver_latency_seconds"].Count
	if got < liveCount {
		t.Fatalf("stored deliver count = %d, want >= %d (the blackout-era samples must arrive via the full resync)", got, liveCount)
	}
}
