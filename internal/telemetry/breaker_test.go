package telemetry

import (
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/supervise"
)

// TestMonitorHealthDrivesBreakers closes the feedback loop: a node that
// goes quiet decays to suspect and its circuit is forced open; when it
// resumes reporting, the cool-down plus a healthy report close it again.
func TestMonitorHealthDrivesBreakers(t *testing.T) {
	clk := obs.NewFakeClock()
	p := agent.NewPlatform("hub")
	p.Clock = clk
	defer p.Close()
	bs := supervise.NewBreakerSet(supervise.BreakerPolicy{
		FailureThreshold: 3, OpenFor: time.Minute, HalfOpenSuccesses: 1, Clock: clk,
	})
	mon, err := RegisterMonitor(p, MonitorOptions{Interval: time.Second, Breakers: bs})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	mon.Ingest(Report{Node: "edge", Seq: 1, Full: true})
	if got := bs.State("edge"); got != supervise.BreakerClosed {
		t.Fatalf("healthy node breaker = %v, want closed", got)
	}

	// The node goes quiet past SuspectAfter (4×Interval): its circuit is
	// forced open so senders shed traffic toward it.
	clk.Advance(5 * time.Second)
	mon.SyncBreakers()
	if got := bs.State("edge"); got != supervise.BreakerOpen {
		t.Fatalf("suspect node breaker = %v, want open", got)
	}

	// The open circuit is visible in the fleet view.
	fv := mon.Fleet()
	found := false
	for _, bv := range fv.Breakers {
		if bv.Target == "edge" && bv.State == "open" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fleet view breakers %+v missing open edge circuit", fv.Breakers)
	}

	// A fresh report makes the node healthy again, but the circuit keeps
	// shedding until its cool-down elapses — health is a hint, recovery
	// is proven by a probe.
	mon.Ingest(Report{Node: "edge", Seq: 2})
	if got := bs.State("edge"); got != supervise.BreakerOpen {
		t.Fatalf("breaker healed before cool-down: %v", got)
	}
	clk.Advance(2 * time.Minute)
	if !bs.Allow("edge") {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	mon.Ingest(Report{Node: "edge", Seq: 3})
	if got := bs.State("edge"); got != supervise.BreakerClosed {
		t.Fatalf("breaker after healthy report = %v, want closed", got)
	}
}

// TestMonitorOnHealthChange exercises the health-verdict subscription
// seam: subscribers see each verdict transition exactly once (repeated
// evaluations at the same verdict are silent), and cancel stops delivery.
func TestMonitorOnHealthChange(t *testing.T) {
	clk := obs.NewFakeClock()
	p := agent.NewPlatform("hub")
	p.Clock = clk
	defer p.Close()
	mon, err := RegisterMonitor(p, MonitorOptions{Interval: time.Second, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	type hop struct {
		node     string
		from, to Health
	}
	var got []hop
	cancel := mon.OnHealthChange(func(node string, from, to Health) {
		got = append(got, hop{node, from, to})
	})

	// First report: node arrives healthy — no change fires.
	mon.Ingest(Report{Node: "edge", Seq: 1, Full: true})
	if len(got) != 0 {
		t.Fatalf("healthy arrival fired %v", got)
	}

	// Decay to degraded, then suspect; re-evaluating at the same
	// staleness band must not re-fire.
	clk.Advance(3 * time.Second)
	mon.SyncBreakers()
	mon.SyncBreakers()
	clk.Advance(2 * time.Second)
	mon.SyncBreakers()
	// Recovery snaps straight back to healthy.
	mon.Ingest(Report{Node: "edge", Seq: 2})

	want := []hop{
		{"edge", Healthy, Degraded},
		{"edge", Degraded, Suspect},
		{"edge", Suspect, Healthy},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("change[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}

	cancel()
	clk.Advance(time.Minute)
	mon.SyncBreakers() // edge -> down, but unsubscribed
	if len(got) != len(want) {
		t.Fatalf("cancelled subscriber still notified: %v", got[len(want):])
	}
}
