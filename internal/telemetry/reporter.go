package telemetry

import (
	"sync"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/supervise"
)

// ReporterOptions tunes a node's reporter deputy.
type ReporterOptions struct {
	// Monitor is the destination agent (default MonitorID). It may live
	// on the local platform or behind any route (gateway, reconnecting
	// link) — the reporter only sees an ID.
	Monitor agent.ID
	// ID is the reporter's own agent ID (default "telemetry-reporter-"
	// + platform name; reporters crossing one gateway must be unique
	// fleet-wide so reverse routes don't collide).
	ID agent.ID
	// Interval is the reporting period (default 1s).
	Interval time.Duration
	// Sources are extra metric registries merged into the node snapshot
	// alongside the platform's own registry (e.g. core.Runtime.Metrics).
	Sources []obs.Source
	// Retry shapes the SendRetry policy for shipping reports. The
	// reporter pins the policy clock to the reporter clock.
	Retry agent.RetryPolicy
	// SendTimeout bounds one report's retried send (default Interval).
	SendTimeout time.Duration
	// MaxSpans caps the spans shipped per report (default 512; the most
	// recent are kept).
	MaxSpans int
	// MaxEvents caps the wide events shipped per report (default 256;
	// the most recent are kept).
	MaxEvents int
	// DisableRuntime skips capturing runtime gauges (goroutines, heap,
	// GC pauses) into the platform registry before each snapshot.
	DisableRuntime bool
	// Clock overrides the time source (default: the platform's clock).
	Clock obs.Clock
}

func (o ReporterOptions) withDefaults(p *agent.Platform) ReporterOptions {
	if o.Monitor == "" {
		o.Monitor = MonitorID
	}
	if o.ID == "" {
		o.ID = agent.ID("telemetry-reporter-" + p.Name)
	}
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.SendTimeout <= 0 {
		o.SendTimeout = o.Interval
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = 512
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 256
	}
	if o.Clock == nil {
		if p.Clock != nil {
			o.Clock = p.Clock
		} else {
			o.Clock = obs.Real
		}
	}
	if o.Retry.Clock == nil {
		o.Retry.Clock = o.Clock
	}
	return o
}

// Reporter is the reporter deputy: a lightweight agent that periodically
// snapshots its node's observability state and ships it to the fleet
// monitor, delta-encoded so a quiet node costs almost nothing on the
// wire. The first report (and any report after a send failure) is a full
// snapshot, so the monitor can always rebuild the node view.
type Reporter struct {
	platform *agent.Platform
	opts     ReporterOptions
	done     chan struct{}
	stopped  chan struct{}

	mu         sync.Mutex
	last       obs.Snapshot // last snapshot acked onto the wire
	haveLast   bool
	seq        uint64
	spanTotal  uint64 // tracer total at the previous report
	eventTotal uint64 // event-log total at the previous report
	closed     bool
}

// StartReporter registers the reporter agent on p and begins the report
// loop: one immediate full report, then one report per interval. Close
// stops the loop and deregisters the agent.
func StartReporter(p *agent.Platform, opts ReporterOptions) (*Reporter, error) {
	r := &Reporter{
		platform: p,
		opts:     opts.withDefaults(p),
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	// The reporter's inbound side is the monitor→node control channel:
	// a resync request means the monitor saw a seq gap (deltas silently
	// lost), so the next report must be a full snapshot.
	err := p.Register(r.opts.ID, agent.HandlerFunc(func(env agent.Envelope, _ *agent.Context) {
		if env.Ontology != OntologyResync {
			return
		}
		r.mu.Lock()
		r.haveLast = false
		r.mu.Unlock()
	}),
		agent.Attributes{Agent: map[string]string{agent.AttrRole: "telemetry-reporter"}}, nil)
	if err != nil {
		return nil, err
	}
	supervise.Spawn("telemetry-reporter", r.loop)
	return r, nil
}

// ID returns the reporter's agent ID.
func (r *Reporter) ID() agent.ID { return r.opts.ID }

// Seq returns how many reports have been sent.
func (r *Reporter) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

func (r *Reporter) loop() {
	defer close(r.stopped)
	clk := r.opts.Clock
	_ = r.ReportNow() // announce the node immediately
	for {
		select {
		case <-r.done:
			return
		case <-clk.After(r.opts.Interval):
		}
		select {
		case <-r.done:
			return
		default:
		}
		_ = r.ReportNow()
	}
}

// snapshot captures the node's merged metric view (platform registry +
// extra sources), refreshing the runtime gauges first.
func (r *Reporter) snapshot() obs.Snapshot {
	if !r.opts.DisableRuntime {
		obs.CaptureRuntime(r.platform.Metrics())
	}
	snaps := []obs.Snapshot{r.platform.MetricsSnapshot()}
	for _, src := range r.opts.Sources {
		if src != nil {
			snaps = append(snaps, src.Snapshot())
		}
	}
	return obs.Merge(snaps...)
}

// newSpans returns the spans recorded since the previous report, capped
// at MaxSpans (most recent kept), and the tracer total to remember.
func (r *Reporter) newSpans(prevTotal uint64) ([]obs.Span, uint64) {
	tr := r.platform.Tracer
	if tr == nil {
		return nil, 0
	}
	total := tr.Total()
	fresh := total - prevTotal
	if fresh == 0 {
		return nil, total
	}
	spans := tr.Spans() // oldest first; the ring may have evicted some
	if uint64(len(spans)) > fresh {
		spans = spans[uint64(len(spans))-fresh:]
	}
	if len(spans) > r.opts.MaxSpans {
		spans = spans[len(spans)-r.opts.MaxSpans:]
	}
	out := make([]obs.Span, len(spans))
	copy(out, spans)
	return out, total
}

// newEvents returns the wide events emitted since the previous report,
// capped at MaxEvents (most recent kept), and the log total to remember.
func (r *Reporter) newEvents(prevTotal uint64) ([]obs.Event, uint64) {
	el := r.platform.Events
	if el == nil {
		return nil, 0
	}
	events, total := el.Since(prevTotal)
	if len(events) > r.opts.MaxEvents {
		events = events[len(events)-r.opts.MaxEvents:]
	}
	return events, total
}

// ReportNow builds and ships one report immediately (also used by the
// periodic loop). On send failure the reporter forgets its delta base so
// the next report is full again — the monitor may have missed this one.
func (r *Reporter) ReportNow() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return agent.ErrClosed
	}
	cur := r.snapshot()
	full := !r.haveLast
	ship := cur
	if !full {
		ship = cur.Delta(r.last)
	}
	spans, spanTotal := r.newSpans(r.spanTotal)
	events, eventTotal := r.newEvents(r.eventTotal)
	r.seq++
	st := r.platform.DeliveryStats()
	tr := r.platform.Tracer
	rep := Report{
		Node:         r.platform.Name,
		Seq:          r.seq,
		Full:         full,
		Snap:         ship,
		Spans:        spans,
		Events:       events,
		SpansSampled: tr.SampledTotal(),
		SpansDropped: tr.DroppedTotal(),
		SpansEvicted: tr.Evicted(),
		Delivered:    st.Delivered,
		Dropped:      st.Dropped,
		Retries:      st.Retries,
		SentAt:       r.opts.Clock.Now(),
	}
	// Optimistically advance the delta base; rolled back below on error.
	r.last, r.haveLast = cur, true
	r.spanTotal = spanTotal
	r.eventTotal = eventTotal
	monitor, id := r.opts.Monitor, r.opts.ID
	timeout, policy := r.opts.SendTimeout, r.opts.Retry
	r.mu.Unlock()

	env, err := agent.NewEnvelope(id, monitor, "inform", OntologyReport, rep)
	if err == nil {
		err = agent.SendRetry(r.platform, env, timeout, policy)
	}
	if err != nil {
		r.mu.Lock()
		r.haveLast = false // resync with a full snapshot next time
		r.mu.Unlock()
	}
	return err
}

// Close stops the report loop and deregisters the reporter agent.
func (r *Reporter) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.done)
	<-r.stopped
	r.platform.Deregister(r.opts.ID)
}
