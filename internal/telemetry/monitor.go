package telemetry

import (
	"sort"
	"sync"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/partition"
	"pervasivegrid/internal/supervise"
)

// Health is a node's liveness classification, derived from report
// staleness on the monitor's clock: a node that keeps reporting is
// healthy; one that has gone quiet decays through degraded and suspect
// to down, and snaps back to healthy on its next report.
type Health string

// Health states, ordered by increasing staleness.
const (
	Healthy  Health = "healthy"
	Degraded Health = "degraded"
	Suspect  Health = "suspect"
	Down     Health = "down"
)

// healthRank orders states for severity comparisons.
func healthRank(h Health) int {
	switch h {
	case Healthy:
		return 0
	case Degraded:
		return 1
	case Suspect:
		return 2
	default:
		return 3
	}
}

// MonitorOptions tunes the fleet monitor.
type MonitorOptions struct {
	// ID is the monitor's agent ID (default MonitorID).
	ID agent.ID
	// Interval is the report period the monitor expects from nodes
	// (default 1s); the staleness thresholds default to multiples of it.
	Interval time.Duration
	// DegradedAfter / SuspectAfter / DownAfter are staleness thresholds
	// (defaults 2×, 4×, and 8× Interval). A node whose last report is
	// older than DownAfter is down.
	DegradedAfter time.Duration
	SuspectAfter  time.Duration
	DownAfter     time.Duration
	// TraceCapacity bounds the stitched cross-node span ring
	// (default 8192).
	TraceCapacity int
	// EventCapacity bounds the fleet-merged wide-event ring
	// (default 4096).
	EventCapacity int
	// Clock is the staleness time source (default: the platform's
	// clock); tests drive health transitions with obs.FakeClock.
	Clock obs.Clock
	// Breakers, when set, closes the health→delivery feedback loop:
	// SyncBreakers force-opens the breaker of every suspect or down
	// node (senders stop feeding a node the monitor believes dead) and
	// credits healthy nodes so half-open circuits can close. Share the
	// set with the sending platform (Platform.Breakers) or composition
	// engine to make the monitor's verdicts bite.
	Breakers *supervise.BreakerSet
}

func (o MonitorOptions) withDefaults(p *agent.Platform) MonitorOptions {
	if o.ID == "" {
		o.ID = MonitorID
	}
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.DegradedAfter <= 0 {
		o.DegradedAfter = 2 * o.Interval
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 4 * o.Interval
	}
	if o.DownAfter <= 0 {
		o.DownAfter = 8 * o.Interval
	}
	if o.TraceCapacity <= 0 {
		o.TraceCapacity = 8192
	}
	if o.EventCapacity <= 0 {
		o.EventCapacity = 4096
	}
	if o.Clock == nil {
		if p.Clock != nil {
			o.Clock = p.Clock
		} else {
			o.Clock = obs.Real
		}
	}
	return o
}

// nodeState is everything the monitor knows about one node.
type nodeState struct {
	snap      obs.Snapshot // reconstructed full view
	lastSeen  time.Time    // monitor clock at last report
	sentAt    time.Time    // node clock when the last report was built
	seq       uint64
	reports   uint64
	missed    uint64 // seq gaps (reports lost in transit)
	resyncs   uint64 // full snapshots after the first
	spans     uint64
	events    uint64
	delivered uint64
	dropped   uint64
	retries   uint64

	// Tracer sampling ledger, as last reported by the node.
	spansSampled uint64
	spansDropped uint64
	spansEvicted uint64

	// lastHealth is the verdict announced to health subscribers at the
	// last evaluation ("" until the node is first evaluated).
	lastHealth Health
}

// Monitor is the fleet MonitorAgent: it ingests telemetry reports,
// maintains per-node snapshots and health states, stitches cross-node
// traces, and exposes the merged fleet view as an obs.Source.
type Monitor struct {
	platform *agent.Platform
	opts     MonitorOptions
	tracer   *obs.Tracer
	events   *obs.EventLog

	mu    sync.Mutex
	nodes map[string]*nodeState

	// Health-verdict subscribers, under their own mutex so notifications
	// (which run outside m.mu) never race subscription changes.
	healthSubMu   sync.Mutex
	healthSubs    map[int]func(node string, from, to Health)
	nextHealthSub int
}

// RegisterMonitor registers the monitor agent on p. Nodes reach it by
// sending Report envelopes to opts.ID (default MonitorID) — from the
// same platform or across any number of gateways.
func RegisterMonitor(p *agent.Platform, opts MonitorOptions) (*Monitor, error) {
	m := &Monitor{
		platform: p,
		opts:     opts.withDefaults(p),
		nodes:    map[string]*nodeState{},
	}
	m.tracer = obs.NewTracer(m.opts.TraceCapacity)
	m.events = obs.NewEventLog(m.opts.EventCapacity)
	err := p.Register(m.opts.ID, agent.HandlerFunc(m.handle),
		agent.Attributes{Agent: map[string]string{agent.AttrRole: "fleet-monitor"}}, nil)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// handle ingests one envelope delivered to the monitor agent.
func (m *Monitor) handle(env agent.Envelope, ctx *agent.Context) {
	if env.Ontology != OntologyReport {
		return
	}
	var rep Report
	if err := env.Decode(&rep); err != nil || rep.Node == "" {
		m.platform.Metrics().Counter("telemetry_bad_reports_total").Inc()
		return
	}
	if gapped := m.Ingest(rep); gapped {
		// Deltas died in transit and the reporter believed they arrived;
		// the stored view may hold stale series until each one changes
		// again. Ask the node for a full snapshot instead of waiting.
		// The request is retried off the mailbox goroutine: a dropped
		// resync is lost forever (the next report's seq is continuous),
		// so this one envelope must try harder than fire-and-forget.
		if reply, err := env.Reply("request", nil); err == nil {
			reply.Ontology = OntologyResync
			m.platform.Metrics().Counter("telemetry_resync_requests_total").Inc()
			policy := agent.RetryPolicy{
				MaxAttempts: 3,
				BaseDelay:   m.opts.Interval / 4,
				MaxDelay:    m.opts.Interval,
				Clock:       m.opts.Clock,
			}
			timeout := 2 * m.opts.Interval
			supervise.Spawn("telemetry-resync", func() {
				_ = agent.SendRetry(m.platform, reply, timeout, policy)
			})
		}
	}
}

// Ingest merges one report into the fleet state, reporting whether it
// exposed a seq gap (reports lost in transit since the node's previous
// one). Exported so in-process deployments (and tests) can bypass the
// envelope layer.
func (m *Monitor) Ingest(rep Report) (gapped bool) {
	now := m.opts.Clock.Now()
	m.mu.Lock()
	ns := m.nodes[rep.Node]
	if ns == nil {
		ns = &nodeState{}
		m.nodes[rep.Node] = ns
	}
	if rep.Full || ns.reports == 0 {
		ns.snap = rep.Snap.Clone()
		if ns.reports > 0 {
			ns.resyncs++
		}
	} else {
		ns.snap = ns.snap.Apply(rep.Snap)
	}
	// A duplicated envelope (fault injector, retry overlap) replays a
	// seq we already saw; idempotent overlay makes that harmless. A gap
	// means reports died in transit — telemetry observing its own loss.
	if ns.seq > 0 && rep.Seq > ns.seq+1 {
		ns.missed += rep.Seq - ns.seq - 1
		gapped = !rep.Full // a full report already healed the gap
	}
	if rep.Seq > ns.seq {
		ns.seq = rep.Seq
	}
	ns.reports++
	ns.spans += uint64(len(rep.Spans))
	ns.events += uint64(len(rep.Events))
	ns.lastSeen = now
	ns.sentAt = rep.SentAt
	ns.delivered, ns.dropped, ns.retries = rep.Delivered, rep.Dropped, rep.Retries
	ns.spansSampled, ns.spansDropped, ns.spansEvicted =
		rep.SpansSampled, rep.SpansDropped, rep.SpansEvicted
	m.mu.Unlock()

	for _, s := range rep.Spans {
		m.tracer.Record(s)
	}
	for _, e := range rep.Events {
		m.events.Emit(e)
	}

	reg := m.platform.Metrics()
	reg.Counter("telemetry_reports_total", "node", rep.Node).Inc()
	reg.Counter("telemetry_spans_total").Add(float64(len(rep.Spans)))
	reg.Counter("telemetry_events_total").Add(float64(len(rep.Events)))
	reg.Gauge("telemetry_nodes").Set(float64(m.NodeCount()))
	m.SyncBreakers()
	return gapped
}

// SyncBreakers pushes the monitor's current health verdicts into the
// attached breaker set: suspect and down nodes are force-opened (their
// circuits stop admitting traffic even though individual sends may still
// be succeeding into a void), healthy nodes are credited so a half-open
// circuit can close. Breaker pushes are a no-op without
// MonitorOptions.Breakers; health-change subscribers are notified either
// way. Called automatically from Ingest and Fleet; exported for callers
// that want to sync on their own cadence.
func (m *Monitor) SyncBreakers() { m.evaluate() }

// OnHealthChange subscribes fn to every node health-verdict change
// (evaluated on Ingest, Fleet, and SyncBreakers) and returns a cancel
// func. A node's first evaluation compares against Healthy, so only
// nodes that appear already degraded fire on arrival. Subscribers run
// synchronously on the evaluating goroutine with no monitor locks held;
// they should hand the verdict off quickly (non-blocking channel send)
// rather than do work inline.
func (m *Monitor) OnHealthChange(fn func(node string, from, to Health)) func() {
	m.healthSubMu.Lock()
	if m.healthSubs == nil {
		m.healthSubs = map[int]func(string, Health, Health){}
	}
	id := m.nextHealthSub
	m.nextHealthSub++
	m.healthSubs[id] = fn
	m.healthSubMu.Unlock()
	return func() {
		m.healthSubMu.Lock()
		delete(m.healthSubs, id)
		m.healthSubMu.Unlock()
	}
}

// evaluate classifies every node, records verdict changes, then — outside
// m.mu — pushes verdicts into the breaker set and notifies subscribers.
func (m *Monitor) evaluate() {
	bs := m.opts.Breakers
	now := m.opts.Clock.Now()
	type verdict struct {
		node     string
		from, to Health
	}
	m.mu.Lock()
	verdicts := make([]verdict, 0, len(m.nodes))
	for name, ns := range m.nodes {
		h := m.health(now.Sub(ns.lastSeen))
		prev := ns.lastHealth
		if prev == "" {
			prev = Healthy
		}
		ns.lastHealth = h
		verdicts = append(verdicts, verdict{name, prev, h})
	}
	m.mu.Unlock()
	for _, v := range verdicts {
		if bs != nil {
			switch v.to {
			case Suspect, Down:
				bs.ForceOpen(v.node)
			case Healthy:
				bs.Success(v.node)
			}
		}
		if v.from != v.to {
			m.notifyHealth(v.node, v.from, v.to)
		}
	}
}

// notifyHealth fans one verdict change out to subscribers.
func (m *Monitor) notifyHealth(node string, from, to Health) {
	m.healthSubMu.Lock()
	if len(m.healthSubs) == 0 {
		m.healthSubMu.Unlock()
		return
	}
	fns := make([]func(string, Health, Health), 0, len(m.healthSubs))
	for _, fn := range m.healthSubs {
		fns = append(fns, fn)
	}
	m.healthSubMu.Unlock()
	for _, fn := range fns {
		fn(node, from, to)
	}
}

// health classifies staleness against the thresholds.
func (m *Monitor) health(staleness time.Duration) Health {
	switch {
	case staleness <= m.opts.DegradedAfter:
		return Healthy
	case staleness <= m.opts.SuspectAfter:
		return Degraded
	case staleness <= m.opts.DownAfter:
		return Suspect
	default:
		return Down
	}
}

// NodeCount reports how many nodes have ever reported.
func (m *Monitor) NodeCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.nodes)
}

// Reports returns the total report count for one node (0 if unknown).
func (m *Monitor) Reports(node string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ns := m.nodes[node]; ns != nil {
		return ns.reports
	}
	return 0
}

// Health returns a node's current health (Down for unknown nodes).
func (m *Monitor) Health(node string) Health {
	now := m.opts.Clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	ns := m.nodes[node]
	if ns == nil {
		return Down
	}
	return m.health(now.Sub(ns.lastSeen))
}

// NodeSnapshot returns the reconstructed full metric snapshot of one
// node and whether the node is known.
func (m *Monitor) NodeSnapshot(node string) (obs.Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ns := m.nodes[node]
	if ns == nil {
		return obs.Snapshot{}, false
	}
	return ns.snap.Clone(), true
}

// ObservedTransport derives the measured transport view of one node from
// its reported metrics — the feedback edge into the partition decision
// maker. The latency comes from the node's probe RTT (or deliver
// latency) histogram; the drop rate prefers probe losses and falls back
// to the node's delivery accounting (dropped vs delivered envelopes).
func (m *Monitor) ObservedTransport(node string) (partition.ObservedTransport, bool) {
	m.mu.Lock()
	ns := m.nodes[node]
	if ns == nil {
		m.mu.Unlock()
		return partition.ObservedTransport{}, false
	}
	snap := ns.snap
	delivered, dropped := ns.delivered, ns.dropped
	m.mu.Unlock()
	o := partition.ObservedFromSnapshot(snap)
	if o.DropRate == 0 && delivered+dropped > 0 {
		o.DropRate = float64(dropped) / float64(delivered+dropped)
	}
	return o, true
}

// Correct applies one node's observed transport to a decision maker,
// returning the observation used (zero-valued fields leave the
// corresponding constants untouched). The caller picks *which* node's
// transport matters for the placement at hand — typically the node
// hosting the candidate remote computation.
func (m *Monitor) Correct(dm *partition.DecisionMaker, node string) (partition.ObservedTransport, bool) {
	o, ok := m.ObservedTransport(node)
	if !ok {
		return o, false
	}
	dm.CorrectTransport(o)
	return o, true
}

// NodeView is one node's row in the fleet view.
type NodeView struct {
	Node         string    `json:"node"`
	Health       Health    `json:"health"`
	LastSeen     time.Time `json:"lastSeen"`
	StalenessSec float64   `json:"stalenessSec"`
	Seq          uint64    `json:"seq"`
	Reports      uint64    `json:"reports"`
	Missed       uint64    `json:"missedReports"`
	Resyncs      uint64    `json:"resyncs"`
	Spans        uint64    `json:"spans"`
	Events       uint64    `json:"events"`
	Delivered    uint64    `json:"delivered"`
	Dropped      uint64    `json:"dropped"`
	Retries      uint64    `json:"retries"`
	Series       int       `json:"series"`
	// The node's tracer sampling ledger: how many spans it retained,
	// head-dropped, and overwrote. A climbing SpansEvicted on a
	// full-capture node means the ring is too small (or it is time to
	// sample); SpansDropped quantifies what sampling cost.
	SpansSampled uint64 `json:"spansSampled"`
	SpansDropped uint64 `json:"spansDropped"`
	SpansEvicted uint64 `json:"spansEvicted"`
	Observed     struct {
		AvgDeliverSec float64 `json:"avgDeliverSec"`
		DropRate      float64 `json:"dropRate"`
	} `json:"observed"`
	Snapshot obs.Snapshot `json:"snapshot"`
}

// FleetView is the monitor's aggregate answer: every node with its
// health, plus fleet-level rollups.
type FleetView struct {
	GeneratedAt time.Time  `json:"generatedAt"`
	Nodes       []NodeView `json:"nodes"`
	// Worst is the most severe health present (Healthy for an empty
	// fleet: nothing known to be wrong).
	Worst Health `json:"worst"`
	// Traces is how many distinct stitched trace IDs are retained.
	Traces int `json:"traces"`
	// Events is how many fleet-merged wide events are retained.
	Events int `json:"events"`
	// Breakers is the per-node circuit state when the monitor drives a
	// breaker set (absent otherwise) — open circuits in /fleet.json are
	// the operator's first clue a node is being shed.
	Breakers []supervise.BreakerView `json:"breakers,omitempty"`
}

// Fleet builds the current fleet view, nodes sorted by name.
func (m *Monitor) Fleet() FleetView {
	now := m.opts.Clock.Now()
	fv := FleetView{GeneratedAt: now, Worst: Healthy}
	m.mu.Lock()
	names := make([]string, 0, len(m.nodes))
	for name := range m.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ns := m.nodes[name]
		stale := now.Sub(ns.lastSeen)
		nv := NodeView{
			Node:         name,
			Health:       m.health(stale),
			LastSeen:     ns.lastSeen,
			StalenessSec: stale.Seconds(),
			Seq:          ns.seq,
			Reports:      ns.reports,
			Missed:       ns.missed,
			Resyncs:      ns.resyncs,
			Spans:        ns.spans,
			Events:       ns.events,
			Delivered:    ns.delivered,
			Dropped:      ns.dropped,
			Retries:      ns.retries,
			Series:       ns.snap.Len(),
			SpansSampled: ns.spansSampled,
			SpansDropped: ns.spansDropped,
			SpansEvicted: ns.spansEvicted,
			Snapshot:     ns.snap.Clone(),
		}
		if healthRank(nv.Health) > healthRank(fv.Worst) {
			fv.Worst = nv.Health
		}
		fv.Nodes = append(fv.Nodes, nv)
	}
	m.mu.Unlock()
	for i := range fv.Nodes {
		if o, ok := m.ObservedTransport(fv.Nodes[i].Node); ok {
			fv.Nodes[i].Observed.AvgDeliverSec = o.AvgDeliverSec
			fv.Nodes[i].Observed.DropRate = o.DropRate
		}
	}
	fv.Traces = len(m.tracer.Traces())
	fv.Events = len(m.events.Events())
	m.evaluate()
	if m.opts.Breakers != nil {
		fv.Breakers = m.opts.Breakers.Snapshot()
	}
	return fv
}

// Snapshot implements obs.Source: the fleet-merged metric view, every
// series labeled with its origin node. Mount the monitor straight into
// obs.Handler to scrape the whole deployment from one endpoint.
func (m *Monitor) Snapshot() obs.Snapshot {
	m.mu.Lock()
	per := make(map[string]obs.Snapshot, len(m.nodes))
	for name, ns := range m.nodes {
		per[name] = ns.snap
	}
	m.mu.Unlock()
	return obs.MergeByNode(per)
}

// Tracer exposes the stitched cross-node span ring. Give it to the
// monitor platform (Platform.Tracer) to interleave local hops with the
// reported ones.
func (m *Monitor) Tracer() *obs.Tracer { return m.tracer }

// Events exposes the fleet-merged wide-event ring. Give it to the
// monitor platform (Platform.Events) to interleave local conversations
// with the reported ones, and mount it at /events.json.
func (m *Monitor) Events() *obs.EventLog { return m.events }

// Timeline renders one stitched cross-node trace.
func (m *Monitor) Timeline(traceID uint64) string { return m.tracer.Timeline(traceID) }

// Close deregisters the monitor agent.
func (m *Monitor) Close() { m.platform.Deregister(m.opts.ID) }
