package telemetry

import (
	"fmt"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/faultinject"
	"pervasivegrid/internal/obs"
)

// Fleet harness: a monitor platform with a TCP gateway plus N node
// platforms, each dialing in over a reconnecting link, running a
// reporter deputy, and carrying its own fault injector on the uplink.
// This is the deployment shape of the paper's Figure 1 (sensor gateways
// + wired nodes reporting to one observer) in miniature; pgridsim's
// -fleet demo, the chaos tests, and experiment E14 all drive it.

// FleetConfig parameterises StartFleet.
type FleetConfig struct {
	// Nodes is the fleet size (default 3).
	Nodes int
	// Interval is the report period (default 200ms).
	Interval time.Duration
	// Addr is the monitor gateway's listen address (default
	// "127.0.0.1:0").
	Addr string
	// Clock drives reporters and the monitor's staleness health machine
	// (default wall clock; tests pass obs.FakeClock).
	Clock obs.Clock
	// NodeFaults configures each node's uplink injector by index
	// (missing entries mean a clean link). Every node gets an injector
	// regardless, so partitions can be opened later.
	NodeFaults []faultinject.Config
	// Monitor overrides monitor options (Interval/Clock are filled from
	// the fields above when zero).
	Monitor MonitorOptions
}

// FleetNode is one simulated node.
type FleetNode struct {
	Name     string
	Platform *agent.Platform
	Link     *agent.ReconnectLink
	Reporter *Reporter
	Prober   *Prober
	// Injector sits on the node's uplink route; SetPartitioned(true)
	// cuts the node off without touching TCP.
	Injector *faultinject.Injector
}

// WorkerID is the local echo agent every fleet node hosts, so nodes have
// deliverable local traffic to measure.
const WorkerID agent.ID = "worker"

// Work delivers n local envelopes to the node's worker agent, generating
// deliver-latency and throughput series for the next report.
func (n *FleetNode) Work(count int) {
	for i := 0; i < count; i++ {
		env, err := agent.NewEnvelope("workload", WorkerID, "inform", "fleet-demo", i)
		if err == nil {
			//lint:ignore rawsend synthetic local load; a full mailbox is the backpressure being measured
			_ = n.Platform.Send(env)
		}
	}
}

// Fleet is a running multi-node telemetry deployment.
type Fleet struct {
	Monitor  *Monitor
	Platform *agent.Platform // the monitor-side platform
	Gateway  *agent.Gateway
	Nodes    []*FleetNode
	clock    obs.Clock
}

// StartFleet boots the monitor (platform + gateway + monitor agent +
// echo responder) and cfg.Nodes nodes, each with a reconnecting TCP link
// to the gateway, a running reporter deputy, and an idle prober. Close
// tears everything down.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Clock == nil {
		cfg.Clock = obs.Real
	}

	mp := agent.NewPlatform("monitor")
	mp.Clock = cfg.Clock
	mopts := cfg.Monitor
	if mopts.Interval <= 0 {
		mopts.Interval = cfg.Interval
	}
	if mopts.Clock == nil {
		mopts.Clock = cfg.Clock
	}
	mon, err := RegisterMonitor(mp, mopts)
	if err != nil {
		mp.Close()
		return nil, err
	}
	// Local monitor-side hops join the stitched ring directly.
	mp.Tracer = mon.Tracer()
	if err := RegisterEcho(mp, EchoID); err != nil {
		mp.Close()
		return nil, err
	}
	gw, err := agent.ListenAndServe(mp, cfg.Addr)
	if err != nil {
		mp.Close()
		return nil, err
	}

	f := &Fleet{Monitor: mon, Platform: mp, Gateway: gw, clock: cfg.Clock}
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node-%d", i+1)
		np := agent.NewPlatform(name)
		np.Clock = cfg.Clock
		np.Tracer = obs.NewTracer(2048)
		// A sink, not an echo: local work should not leak replies onto
		// the uplink.
		if err := np.Register(WorkerID, agent.HandlerFunc(func(agent.Envelope, *agent.Context) {}),
			agent.Attributes{Agent: map[string]string{agent.AttrRole: "worker"}}, nil); err != nil {
			f.Close()
			np.Close()
			return nil, err
		}
		fcfg := faultinject.Config{Seed: int64(i + 1)}
		if i < len(cfg.NodeFaults) {
			fcfg = cfg.NodeFaults[i]
			if fcfg.Seed == 0 {
				fcfg.Seed = int64(i + 1)
			}
		}
		inj := faultinject.New(fcfg)
		inj.AttachMetrics(np.Metrics())
		link := agent.DialReconnect(np, gw.Addr(), agent.ReconnectOptions{
			WrapRoute: inj.WrapRoute,
		})
		rep, err := StartReporter(np, ReporterOptions{
			Interval: cfg.Interval,
			Clock:    cfg.Clock,
			// One fast retry: a report racing a link redial gets a
			// second chance, but a partitioned node must not block.
			Retry: agent.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond,
				Seed: int64(i + 1), Clock: cfg.Clock},
			SendTimeout: cfg.Interval,
		})
		if err != nil {
			link.Close()
			np.Close()
			f.Close()
			return nil, err
		}
		prober := NewProber(np, ProbeOptions{Target: EchoID, Interval: cfg.Interval})
		f.Nodes = append(f.Nodes, &FleetNode{
			Name:     name,
			Platform: np,
			Link:     link,
			Reporter: rep,
			Prober:   prober,
			Injector: inj,
		})
	}
	return f, nil
}

// Partition opens (true) or heals (false) node i's uplink.
func (f *Fleet) Partition(i int, on bool) {
	f.Nodes[i].Injector.SetPartitioned(on)
}

// StopNode kills node i: reporter, prober, link, and platform all go
// away, exactly like a crashed or powered-off device. Idempotent.
func (f *Fleet) StopNode(i int) {
	n := f.Nodes[i]
	if n.Platform == nil {
		return
	}
	n.Reporter.Close()
	n.Prober.Close()
	n.Link.Close()
	n.Platform.Close()
	n.Platform = nil
}

// Close tears the whole fleet down, nodes first.
func (f *Fleet) Close() {
	for i := range f.Nodes {
		f.StopNode(i)
	}
	f.Gateway.Close()
	f.Platform.Close()
}
