package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
)

func startTestFleet(t *testing.T, clk *obs.FakeClock, nodes int) *Fleet {
	t.Helper()
	f, err := StartFleet(FleetConfig{
		Nodes:    nodes,
		Interval: time.Second,
		Clock:    clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	// Every node's initial full report must land before virtual time
	// starts moving, or staleness math gets ambiguous.
	waitFor(t, "initial reports from every node", func() bool {
		for _, n := range f.Nodes {
			if f.Monitor.Reports(n.Name) < 1 {
				return false
			}
		}
		return true
	})
	return f
}

// advanceAndSettle moves virtual time one report interval and waits for
// the still-alive nodes' reports to be ingested, so a later big jump
// cannot conflate "report in flight" with "node stale".
func advanceAndSettle(t *testing.T, clk *obs.FakeClock, f *Fleet, alive ...int) {
	t.Helper()
	before := make(map[string]uint64)
	for _, i := range alive {
		before[f.Nodes[i].Name] = f.Monitor.Reports(f.Nodes[i].Name)
	}
	clk.Advance(time.Second)
	waitFor(t, "interval reports", func() bool {
		for name, n := range before {
			if f.Monitor.Reports(name) <= n {
				return false
			}
		}
		return true
	})
}

func TestFleetOverTCP(t *testing.T) {
	clk := obs.NewFakeClock()
	f := startTestFleet(t, clk, 3)

	// Generate local traffic on each node, then let one report cycle
	// carry the deltas up.
	for _, n := range f.Nodes {
		n.Work(5)
	}
	advanceAndSettle(t, clk, f, 0, 1, 2)

	// The merged fleet registry must expose every node's series under a
	// node label.
	merged := f.Monitor.Snapshot()
	for _, name := range []string{"node-1", "node-2", "node-3"} {
		key := `agent_delivered_total{node="` + name + `"}`
		if merged.Counters[key] < 5 {
			t.Fatalf("merged snapshot missing %s: %v", key, merged.Counters[key])
		}
	}

	h := Handler(f.Monitor)

	// /fleet.json carries all three nodes, healthy.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet.json", nil))
	if rec.Code != 200 {
		t.Fatalf("/fleet.json status %d", rec.Code)
	}
	var fv FleetView
	if err := json.Unmarshal(rec.Body.Bytes(), &fv); err != nil {
		t.Fatal(err)
	}
	if len(fv.Nodes) != 3 {
		t.Fatalf("fleet.json nodes = %d, want 3", len(fv.Nodes))
	}
	for _, nv := range fv.Nodes {
		if nv.Health != Healthy {
			t.Fatalf("node %s health %v, want healthy", nv.Node, nv.Health)
		}
		if nv.Series == 0 {
			t.Fatalf("node %s reported no series", nv.Node)
		}
	}

	// /healthz is green.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz status %d, want 200", rec.Code)
	}

	// /metrics exposes the node-labeled text format.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `agent_delivered_total{node="node-2"}`) {
		t.Fatal("/metrics missing node-labeled series")
	}

	// Kill node-3: after the down threshold (8× interval) /healthz goes
	// 503 while surviving nodes stay healthy.
	f.StopNode(2)
	for i := 0; i < 9; i++ {
		advanceAndSettle(t, clk, f, 0, 1)
	}
	if got := f.Monitor.Health("node-3"); got != Down {
		t.Fatalf("node-3 health %v, want down", got)
	}
	if got := f.Monitor.Health("node-1"); got != Healthy {
		t.Fatalf("node-1 health %v, want healthy", got)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("/healthz status %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"node-3":"down"`) {
		t.Fatalf("/healthz body missing down node: %s", rec.Body.String())
	}
}

func TestFleetStitchesCrossNodeTraces(t *testing.T) {
	clk := obs.NewFakeClock()
	f := startTestFleet(t, clk, 1)

	// A traced conversation from node-1 to the monitor's echo agent: the
	// node records send/route spans locally, the monitor records
	// ingress/deliver directly into the stitched ring, and the node's
	// next report ships its half up.
	reply, err := agent.CallRetry(f.Nodes[0].Platform, EchoID, "request", OntologyProbe,
		"trace-me", 5*time.Second, agent.RetryPolicy{MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if reply.TraceID == 0 {
		t.Fatal("reply carries no trace id")
	}
	advanceAndSettle(t, clk, f, 0)

	waitFor(t, "stitched spans from both sides", func() bool {
		nodes := map[string]bool{}
		for _, sp := range f.Monitor.Tracer().Trace(reply.TraceID) {
			nodes[sp.Node] = true
		}
		return nodes["node-1"] && nodes["monitor"]
	})
	tl := f.Monitor.Timeline(reply.TraceID)
	for _, want := range []string{"[node-1", "[monitor", "ingress"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline missing %q:\n%s", want, tl)
		}
	}
}
