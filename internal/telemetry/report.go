// Package telemetry is the fleet observability plane: it hosts the
// monitoring system *on the same substrate it observes* (Kirby et al.'s
// active-architecture argument). Every node runs a lightweight reporter
// deputy that periodically ships its metric snapshot (delta-encoded) and
// recent trace spans to a MonitorAgent over ordinary envelopes — using
// the resilience layer (SendRetry / reconnecting links), so telemetry
// itself survives the faults the rest of the system is tested against.
// The monitor merges per-node snapshots, derives health states from
// report staleness, stitches cross-node trace timelines, and feeds the
// measured per-node transport cost back into the partition decision
// maker (partition.ObservedFromSnapshot → ApplyObserved).
package telemetry

import (
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
)

// Envelope vocabulary of the telemetry plane. Reports are ordinary
// envelopes: JSON content, the telemetry ontology, an "inform"
// performative — any platform can route them, and the fault injector can
// drop them like any other traffic.
const (
	// MonitorID is the well-known agent ID of the fleet monitor.
	MonitorID agent.ID = "fleet-monitor"
	// OntologyReport marks a telemetry report envelope.
	OntologyReport = "pgrid-telemetry-report"
	// OntologyProbe marks a transport probe (echo) conversation.
	OntologyProbe = "pgrid-telemetry-probe"
	// OntologyResync marks a monitor→node control envelope asking the
	// reporter to ship its next report as a full snapshot. Sent when the
	// monitor observes a seq gap: the missing deltas died in transit
	// while the reporter believed they arrived (a silently lossy uplink),
	// so only the monitor knows the stored view may be stale.
	OntologyResync = "pgrid-telemetry-resync"
)

// Report is one node's periodic telemetry shipment.
type Report struct {
	// Node is the reporting platform's name.
	Node string `json:"node"`
	// Seq numbers this node's reports; the monitor detects gaps (lost
	// reports) by discontinuities.
	Seq uint64 `json:"seq"`
	// Full marks a complete snapshot; otherwise Snap holds only the
	// series changed since the previous report (obs.Snapshot.Delta).
	Full bool `json:"full"`
	// Snap is the delta-encoded (or full) metric snapshot.
	Snap obs.Snapshot `json:"snap"`
	// Spans are the trace spans recorded since the previous report.
	Spans []obs.Span `json:"spans,omitempty"`
	// Events are the wide events emitted since the previous report.
	Events []obs.Event `json:"events,omitempty"`
	// SpansSampled/SpansDropped/SpansEvicted mirror the tracer's
	// sampling ledger (lifetime totals), so the monitor can tell how
	// much of each node's trace volume was retained, head-dropped, or
	// overwritten — loss is never silent, fleet-wide.
	SpansSampled uint64 `json:"spansSampled,omitempty"`
	SpansDropped uint64 `json:"spansDropped,omitempty"`
	SpansEvicted uint64 `json:"spansEvicted,omitempty"`
	// Delivered/Dropped/Retries mirror the platform's DeliveryStats
	// totals so the monitor can compute delivery ratios without
	// depending on metric names.
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Retries   uint64 `json:"retries"`
	// SentAt is the node's clock when the report was built (virtual
	// under FakeClock); the monitor tracks staleness on its own clock.
	SentAt time.Time `json:"sentAt"`
}
