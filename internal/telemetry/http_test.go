package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
)

func TestHandlerEndpoints(t *testing.T) {
	clk := obs.NewFakeClock()
	p := agent.NewPlatform("monitor")
	p.Clock = clk
	defer p.Close()
	mon, err := RegisterMonitor(p, MonitorOptions{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	reg := obs.NewRegistry()
	reg.Counter("c_total").Add(3)
	id := obs.NewTraceID()
	mon.Ingest(Report{Node: "n1", Seq: 1, Full: true, Snap: reg.Snapshot(),
		Spans: []obs.Span{{Trace: id, Time: clk.Now(), Node: "n1", Kind: obs.SpanSend, From: "a", To: "b"}}})

	extra := obs.NewRegistry()
	extra.Gauge("local_gauge").Set(7)
	h := Handler(mon, extra)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	// /metrics merges the fleet view (node-labeled) with extra sources.
	if body := get("/metrics").Body.String(); !strings.Contains(body, `c_total{node="n1"} 3`) ||
		!strings.Contains(body, "local_gauge 7") {
		t.Fatalf("/metrics missing merged series:\n%s", body)
	}
	if body := get("/metrics.json").Body.String(); !strings.Contains(body, "c_total") {
		t.Fatalf("/metrics.json missing series: %s", body)
	}
	if rec := get("/fleet.json"); rec.Code != 200 || !strings.Contains(rec.Body.String(), `"n1"`) {
		t.Fatalf("/fleet.json = %d %s", rec.Code, rec.Body.String())
	}
	if rec := get("/healthz"); rec.Code != 200 {
		t.Fatalf("/healthz = %d, want 200", rec.Code)
	}
	if body := get("/traces").Body.String(); !strings.Contains(body, "1 spans") {
		t.Fatalf("/traces = %q", body)
	}
	tracePath := "/trace?id=" + strings.Fields(get("/traces").Body.String())[0]
	if body := get(tracePath).Body.String(); !strings.Contains(body, "send") {
		t.Fatalf("trace timeline = %q", body)
	}
	if rec := get("/trace?id=zzz"); rec.Code != 400 {
		t.Fatalf("bad trace id = %d, want 400", rec.Code)
	}

	// Staleness past the down threshold flips /healthz.
	clk.Advance(9 * time.Second)
	if rec := get("/healthz"); rec.Code != 503 {
		t.Fatalf("/healthz = %d after 9s staleness, want 503", rec.Code)
	}
}

func TestMonitorRejectsMalformedReports(t *testing.T) {
	p := agent.NewPlatform("monitor")
	defer p.Close()
	mon, err := RegisterMonitor(p, MonitorOptions{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}

	// A report envelope whose body is not a Report must be counted and
	// dropped, not ingested or crashed on.
	env, err := agent.NewEnvelope("rogue", MonitorID, "inform", OntologyReport, "not-a-report")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(env); err != nil {
		t.Fatal(err)
	}
	// A non-report ontology is ignored entirely.
	env2, err := agent.NewEnvelope("rogue", MonitorID, "inform", "unrelated", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send(env2); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "bad report counted", func() bool {
		return p.Metrics().Snapshot().Counters["telemetry_bad_reports_total"] >= 1
	})
	if n := len(mon.Fleet().Nodes); n != 0 {
		t.Fatalf("malformed report created %d node(s)", n)
	}
}

func TestReporterIdentity(t *testing.T) {
	p := agent.NewPlatform("node-x")
	defer p.Close()
	if _, err := RegisterMonitor(p, MonitorOptions{}); err != nil {
		t.Fatal(err)
	}
	rep, err := StartReporter(p, ReporterOptions{Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if rep.ID() != "telemetry-reporter-node-x" {
		t.Fatalf("reporter id = %q (must be fleet-unique)", rep.ID())
	}
	waitFor(t, "announce report", func() bool { return rep.Seq() >= 1 })
}
