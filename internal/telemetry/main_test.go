package telemetry

import (
	"testing"

	"pervasivegrid/internal/leak"
)

// TestMain gates the telemetry suite on goroutine hygiene: reporters,
// probers, monitors, and fleet nodes all own background goroutines, and
// their Stop/Close paths must actually reap them.
func TestMain(m *testing.M) {
	leak.VerifyTestMain(m)
}
