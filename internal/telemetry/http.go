package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"pervasivegrid/internal/obs"
)

// HTTP exposition of the fleet view. Handler extends obs.Handler with
// the telemetry-plane endpoints:
//
//	GET /metrics       Prometheus text — fleet-merged, node-labeled
//	GET /metrics.json  the same snapshot as JSON
//	GET /healthz       200 while no node is down, 503 otherwise
//	GET /fleet.json    FleetView: per-node snapshot + health states
//	GET /traces        stitched cross-node trace IDs (text)
//	GET /trace?id=..   one stitched timeline (text; hex or decimal id)
//	GET /events.json   fleet-merged wide events (one row per conversation)
//
// Mount it on the daemon's metrics listener.
func Handler(m *Monitor, extra ...obs.Source) http.Handler {
	mux := http.NewServeMux()
	sources := append([]obs.Source{m}, extra...)
	mux.Handle("/", obs.Handler(sources...))

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fv := m.Fleet()
		status := "ok"
		code := http.StatusOK
		nodes := map[string]Health{}
		for _, nv := range fv.Nodes {
			nodes[nv.Node] = nv.Health
			if nv.Health == Down {
				status = "down"
				code = http.StatusServiceUnavailable
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status": status,
			"worst":  fv.Worst,
			"nodes":  nodes,
		})
	})

	mux.HandleFunc("/fleet.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Fleet())
	})

	mux.Handle("/events.json", obs.EventsHandler(m.Events()))

	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, id := range m.Tracer().Traces() {
			fmt.Fprintf(w, "%016x (%d spans)\n", id, len(m.Tracer().Trace(id)))
		}
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		raw := r.URL.Query().Get("id")
		id, err := strconv.ParseUint(raw, 16, 64)
		if err != nil {
			if id, err = strconv.ParseUint(raw, 10, 64); err != nil {
				http.Error(w, "trace: bad or missing id", http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, m.Timeline(id))
	})

	return mux
}
