package telemetry

import (
	"net/http/httptest"
	"testing"
	"time"

	"pervasivegrid/internal/obs"
)

// Chaos drill from the issue: three nodes over real TCP, one uplink
// partitioned by the fault injector (silent drops — TCP stays up, the
// reporter keeps "succeeding"), virtual time driven by FakeClock. The
// partitioned node must walk healthy → degraded → suspect → down purely
// on report staleness, /healthz must go 503 only once it is down, and a
// heal must snap it back to healthy.
func TestChaosPartitionHealthLifecycle(t *testing.T) {
	clk := obs.NewFakeClock()
	f := startTestFleet(t, clk, 3)
	h := Handler(f.Monitor)
	const victim = 1 // node-2

	healthz := func() int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code
	}

	f.Partition(victim, true)
	baseline := f.Monitor.Reports("node-2")

	// Walk the staleness ladder one report interval at a time. The
	// healthy nodes keep reporting on every tick; the victim's reports
	// are silently dropped on its uplink, so its staleness accrues.
	wantAt := map[int]Health{ // health after k advanced seconds
		1: Healthy, 2: Healthy, // ≤ 2s
		3: Degraded, 4: Degraded, // ≤ 4s
		5: Suspect, 8: Suspect, // ≤ 8s
		9: Down,
	}
	for k := 1; k <= 9; k++ {
		advanceAndSettle(t, clk, f, 0, 2)
		if want, ok := wantAt[k]; ok {
			if got := f.Monitor.Health("node-2"); got != want {
				t.Fatalf("after %ds of partition: node-2 health %v, want %v", k, got, want)
			}
		}
		// Suspect is bad but not down: the endpoint must stay green
		// until the down threshold.
		wantCode := 200
		if k >= 9 {
			wantCode = 503
		}
		if got := healthz(); got != wantCode {
			t.Fatalf("after %ds of partition: /healthz %d, want %d", k, got, wantCode)
		}
	}
	if got := f.Monitor.Reports("node-2"); got != baseline {
		t.Fatalf("partitioned node still delivered reports: %d -> %d", baseline, got)
	}
	for _, name := range []string{"node-1", "node-3"} {
		if got := f.Monitor.Health(name); got != Healthy {
			t.Fatalf("%s health %v, want healthy during partition", name, got)
		}
	}

	// Heal: the next delivered report resets staleness; the resync logic
	// must bring the stored snapshot back with a full report (the
	// reporter saw only "successes", so the monitor relies on seq gaps).
	f.Partition(victim, false)
	clk.Advance(time.Second)
	waitFor(t, "post-heal report", func() bool {
		return f.Monitor.Reports("node-2") > baseline
	})
	if got := f.Monitor.Health("node-2"); got != Healthy {
		t.Fatalf("post-heal health %v, want healthy", got)
	}
	if got := healthz(); got != 200 {
		t.Fatalf("post-heal /healthz %d, want 200", got)
	}
	fv := f.Monitor.Fleet()
	for _, nv := range fv.Nodes {
		if nv.Node == "node-2" && nv.Missed == 0 {
			t.Fatal("monitor failed to count the reports lost to the partition")
		}
	}
}
