package telemetry

import (
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/leak"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/partition"
)

func TestProbeOnceRecordsRTTAndLoss(t *testing.T) {
	p := agent.NewPlatform("probe-node")
	defer p.Close()
	if err := RegisterEcho(p, ""); err != nil {
		t.Fatal(err)
	}

	pr := NewProber(p, ProbeOptions{Timeout: 2 * time.Second})
	if rtt, ok := pr.ProbeOnce(); !ok || rtt < 0 {
		t.Fatalf("probe against a live echo failed (rtt=%v ok=%v)", rtt, ok)
	}
	snap := p.Metrics().Snapshot()
	if snap.Counters[partition.SeriesTransportProbeSent] != 1 {
		t.Fatalf("sent = %v, want 1", snap.Counters[partition.SeriesTransportProbeSent])
	}
	if snap.Counters[partition.SeriesTransportProbeLost] != 0 {
		t.Fatalf("lost = %v, want 0", snap.Counters[partition.SeriesTransportProbeLost])
	}
	if snap.Histograms[partition.SeriesTransportRTT].Count != 1 {
		t.Fatal("RTT histogram not recorded")
	}

	// Deregister the echo: the next probe has no route to its target and
	// must count as lost without recording an RTT sample.
	p.Deregister(EchoID)
	if _, ok := pr.ProbeOnce(); ok {
		t.Fatal("probe against a missing echo reported success")
	}
	snap = p.Metrics().Snapshot()
	if snap.Counters[partition.SeriesTransportProbeLost] != 1 {
		t.Fatalf("lost = %v, want 1", snap.Counters[partition.SeriesTransportProbeLost])
	}
	if snap.Histograms[partition.SeriesTransportRTT].Count != 1 {
		t.Fatal("lost probe must not add an RTT sample")
	}
	pr.Close() // never started: Close must not hang
}

func TestProberLoopProbesOnClockTicks(t *testing.T) {
	leak.Check(t) // the prober loop goroutine must die with pr.Close
	clk := obs.NewFakeClock()
	p := agent.NewPlatform("probe-node")
	p.Clock = clk
	defer p.Close()
	if err := RegisterEcho(p, ""); err != nil {
		t.Fatal(err)
	}

	pr := NewProber(p, ProbeOptions{Interval: time.Second, Timeout: time.Minute})
	pr.Start()
	pr.Start() // idempotent
	// Advance in steps: the loop goroutine may not have parked on the
	// clock yet, and a tick that lands before the park is simply missed.
	waitFor(t, "first periodic probe", func() bool {
		clk.Advance(time.Second)
		return p.Metrics().Snapshot().Counters[partition.SeriesTransportProbeSent] >= 1
	})
	pr.Close()
	pr.Close() // idempotent
}
