// Package query implements the paper's sensor-query language and the Query
// Processor component: parsing
//
//	SELECT {func(), attrs} FROM sensors
//	WHERE  {selPreds}
//	COST   {cost limitation}
//	EPOCH  {duration}
//
// and classifying each query into the paper's four types — Simple,
// Aggregate, Complex, and Continuous/Windowed — which drive the decision
// maker's choice of solution model. The format follows TAG's, extended (as
// the paper says) with arbitrary functions in the SELECT clause and the
// COST clause bounding sensor energy, response time, or result accuracy.
package query

import (
	"fmt"
	"strings"
)

// Type is the paper's query taxonomy.
type Type int

// Query types. Continuous wraps an inner type (see Query.Base).
const (
	Simple Type = iota
	Aggregate
	Complex
	Continuous
)

func (t Type) String() string {
	switch t {
	case Simple:
		return "simple"
	case Aggregate:
		return "aggregate"
	case Complex:
		return "complex"
	case Continuous:
		return "continuous"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// SelectItem is one SELECT entry: a bare attribute or a function applied to
// an attribute.
type SelectItem struct {
	// Func is the function name ("avg", "tempdist", ...); empty for a
	// bare attribute.
	Func string
	// Attr is the attribute name ("temp").
	Attr string
}

func (s SelectItem) String() string {
	if s.Func == "" {
		return s.Attr
	}
	return fmt.Sprintf("%s(%s)", s.Func, s.Attr)
}

// Predicate is one WHERE condition.
type Predicate struct {
	Field string
	Op    string // = != < <= > >=
	Value string // numeric or string literal (unquoted)
}

func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Field, p.Op, p.Value)
}

// CostMetric names what the COST clause bounds.
type CostMetric int

// Cost metrics.
const (
	CostNone CostMetric = iota
	CostEnergy
	CostTime
	CostAccuracy
)

func (m CostMetric) String() string {
	switch m {
	case CostEnergy:
		return "energy"
	case CostTime:
		return "time"
	case CostAccuracy:
		return "accuracy"
	}
	return "none"
}

// Query is a parsed query.
type Query struct {
	Raw    string
	Select []SelectItem
	Where  []Predicate
	// CostMetric/CostLimit bound execution (CostNone = unbounded).
	CostMetric CostMetric
	CostLimit  float64
	// Epoch is the seconds between results for continuous queries; 0
	// for one-shot.
	Epoch float64
	// GroupBy names the attribute aggregates are partitioned by (TAG's
	// GROUP BY, which the paper's format inherits); empty for a single
	// network-wide aggregate.
	GroupBy string
}

// aggregateFuncs are the decomposable aggregates (TAG's class).
var aggregateFuncs = map[string]bool{
	"avg": true, "sum": true, "count": true, "min": true, "max": true,
}

// complexFuncs require real computation over the data — the PDE class.
var complexFuncs = map[string]bool{
	"tempdist": true, "distribution": true, "solve": true,
	"isosurface": true, "forecast": true, "minestream": true,
}

// Base classifies the query ignoring the EPOCH clause.
func (q *Query) Base() Type {
	for _, s := range q.Select {
		if complexFuncs[strings.ToLower(s.Func)] {
			return Complex
		}
	}
	for _, s := range q.Select {
		if aggregateFuncs[strings.ToLower(s.Func)] {
			return Aggregate
		}
	}
	return Simple
}

// Kind classifies the query per the paper's taxonomy: any EPOCH makes it
// Continuous; otherwise Base applies.
func (q *Query) Kind() Type {
	if q.Epoch > 0 {
		return Continuous
	}
	return q.Base()
}

// TargetSensor returns the sensor ID when the query pins one with an
// equality predicate ("sensor = 10"), or -1.
func (q *Query) TargetSensor() int {
	for _, p := range q.Where {
		if strings.EqualFold(p.Field, "sensor") && p.Op == "=" {
			var id int
			if _, err := fmt.Sscanf(p.Value, "%d", &id); err == nil {
				return id
			}
		}
	}
	return -1
}

// Room returns the room selected by an equality predicate, or "".
func (q *Query) Room() string {
	for _, p := range q.Where {
		if strings.EqualFold(p.Field, "room") && p.Op == "=" {
			return p.Value
		}
	}
	return ""
}

// AggFunc returns the first aggregate function in the SELECT list, or "".
func (q *Query) AggFunc() string {
	for _, s := range q.Select {
		if aggregateFuncs[strings.ToLower(s.Func)] {
			return strings.ToLower(s.Func)
		}
	}
	return ""
}

// ComplexFunc returns the first complex function in the SELECT list, or "".
func (q *Query) ComplexFunc() string {
	for _, s := range q.Select {
		if complexFuncs[strings.ToLower(s.Func)] {
			return strings.ToLower(s.Func)
		}
	}
	return ""
}

func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(" FROM sensors")
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if q.GroupBy != "" {
		fmt.Fprintf(&b, " GROUP BY %s", q.GroupBy)
	}
	if q.CostMetric != CostNone {
		fmt.Fprintf(&b, " COST %s %g", q.CostMetric, q.CostLimit)
	}
	if q.Epoch > 0 {
		fmt.Fprintf(&b, " EPOCH %g", q.Epoch)
	}
	return b.String()
}
