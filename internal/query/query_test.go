package query

import (
	"strings"
	"testing"
	"testing/quick"
)

// The paper's four example queries.
func TestPaperExamples(t *testing.T) {
	cases := []struct {
		src  string
		kind Type
	}{
		// "Return temperature at Sensor # 10"
		{"SELECT temp FROM sensors WHERE sensor = 10", Simple},
		// "Return Average Temperature in room # 210"
		{"SELECT avg(temp) FROM sensors WHERE room = '210'", Aggregate},
		// "Find Temperature Distribution in room #210"
		{"SELECT tempdist(temp) FROM sensors WHERE room = '210'", Complex},
		// "Return temperature at Sensor #10 every 10 seconds"
		{"SELECT temp FROM sensors WHERE sensor = 10 EPOCH DURATION 10", Continuous},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := q.Kind(); got != c.kind {
			t.Errorf("Kind(%q) = %v, want %v", c.src, got, c.kind)
		}
	}
}

func TestParseFull(t *testing.T) {
	q, err := Parse("SELECT avg(temp), max(temp) FROM sensors WHERE room = '210' AND temp > 30 COST energy 0.5 EPOCH 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 2 || q.Select[0].Func != "avg" || q.Select[1].Func != "max" {
		t.Fatalf("select = %+v", q.Select)
	}
	if len(q.Where) != 2 {
		t.Fatalf("where = %+v", q.Where)
	}
	if q.Where[0].Field != "room" || q.Where[0].Value != "210" {
		t.Fatalf("where[0] = %+v", q.Where[0])
	}
	if q.Where[1].Op != ">" || q.Where[1].Value != "30" {
		t.Fatalf("where[1] = %+v", q.Where[1])
	}
	if q.CostMetric != CostEnergy || q.CostLimit != 0.5 {
		t.Fatalf("cost = %v %v", q.CostMetric, q.CostLimit)
	}
	if q.Epoch != 10 {
		t.Fatalf("epoch = %v", q.Epoch)
	}
	if q.Kind() != Continuous || q.Base() != Aggregate {
		t.Fatalf("kind=%v base=%v", q.Kind(), q.Base())
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("select AVG(temp) from sensors where ROOM = 210 epoch 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.AggFunc() != "avg" || q.Room() != "210" || q.Epoch != 5 {
		t.Fatalf("parsed = %+v", q)
	}
}

func TestAccessors(t *testing.T) {
	q, err := Parse("SELECT temp FROM sensors WHERE sensor = 42")
	if err != nil {
		t.Fatal(err)
	}
	if q.TargetSensor() != 42 {
		t.Fatalf("target = %d", q.TargetSensor())
	}
	if q.Room() != "" || q.AggFunc() != "" || q.ComplexFunc() != "" {
		t.Fatal("empty accessors should return zero values")
	}
	q2, _ := Parse("SELECT tempdist(temp) FROM sensors")
	if q2.ComplexFunc() != "tempdist" || q2.TargetSensor() != -1 {
		t.Fatalf("complex accessors: %q %d", q2.ComplexFunc(), q2.TargetSensor())
	}
}

func TestCostMetrics(t *testing.T) {
	for _, m := range []struct {
		src  string
		want CostMetric
	}{
		{"SELECT temp FROM sensors COST energy 1", CostEnergy},
		{"SELECT temp FROM sensors COST time 2.5", CostTime},
		{"SELECT temp FROM sensors COST accuracy 0.9", CostAccuracy},
	} {
		q, err := Parse(m.src)
		if err != nil {
			t.Fatal(err)
		}
		if q.CostMetric != m.want {
			t.Fatalf("%q metric = %v", m.src, q.CostMetric)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM sensors",
		"SELECT temp",
		"SELECT temp FROM tables",
		"SELECT temp FROM sensors WHERE",
		"SELECT temp FROM sensors WHERE sensor",
		"SELECT temp FROM sensors WHERE sensor = ",
		"SELECT temp FROM sensors WHERE sensor ~ 10",
		"SELECT avg(temp FROM sensors",
		"SELECT temp FROM sensors COST joules 5",
		"SELECT temp FROM sensors COST energy x",
		"SELECT temp FROM sensors EPOCH -5",
		"SELECT temp FROM sensors EPOCH",
		"SELECT temp FROM sensors BOGUS",
		"SELECT temp FROM sensors WHERE room = 'unterminated",
		"SELECT temp FROM sensors WHERE x = @",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT temp FROM sensors WHERE sensor = 10",
		"SELECT avg(temp) FROM sensors WHERE room = '210' COST time 5 EPOCH 10",
		"SELECT tempdist(temp), count(temp) FROM sensors WHERE temp >= 100",
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q1.String(), err)
		}
		if q1.Kind() != q2.Kind() || len(q1.Select) != len(q2.Select) || len(q1.Where) != len(q2.Where) {
			t.Fatalf("round trip changed query: %q -> %q", src, q2.String())
		}
	}
}

func TestClassificationPrecedence(t *testing.T) {
	// Complex beats aggregate when both appear.
	q, err := Parse("SELECT avg(temp), tempdist(temp) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if q.Base() != Complex {
		t.Fatalf("base = %v, want complex", q.Base())
	}
	// count() with no attribute is legal.
	q2, err := Parse("SELECT count() FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Base() != Aggregate {
		t.Fatalf("count() base = %v", q2.Base())
	}
}

// Property: the parser never panics, and on success Kind() is total.
func TestPropertyParserRobust(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Parse(%q) panicked: %v", s, r)
			}
		}()
		q, err := Parse(s)
		if err == nil {
			_ = q.Kind()
			_ = q.String()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// And a directed fuzz over fragments.
	frags := []string{"SELECT", "temp", "FROM", "sensors", "WHERE", "=", "(", ")", ",", "avg", "10", "'a'", "COST", "energy", "EPOCH"}
	for i := 0; i < 500; i++ {
		var b strings.Builder
		for j := 0; j < (i%7)+1; j++ {
			b.WriteString(frags[(i*31+j*7)%len(frags)])
			b.WriteByte(' ')
		}
		f(b.String())
	}
}

func TestParseGroupBy(t *testing.T) {
	q, err := Parse("SELECT avg(temp) FROM sensors GROUP BY room")
	if err != nil {
		t.Fatal(err)
	}
	if q.GroupBy != "room" {
		t.Fatalf("group by = %q", q.GroupBy)
	}
	if q.Kind() != Aggregate {
		t.Fatalf("kind = %v", q.Kind())
	}
	// Round trip.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatal(err)
	}
	if q2.GroupBy != "room" {
		t.Fatal("group by lost in round trip")
	}
	// With other clauses.
	q3, err := Parse("SELECT max(temp) FROM sensors WHERE temp > 30 GROUP BY room EPOCH 10")
	if err != nil {
		t.Fatal(err)
	}
	if q3.GroupBy != "room" || q3.Epoch != 10 {
		t.Fatalf("parsed = %+v", q3)
	}
	// Errors.
	for _, bad := range []string{
		"SELECT avg(temp) FROM sensors GROUP room",
		"SELECT avg(temp) FROM sensors GROUP BY",
		"SELECT avg(temp) FROM sensors GROUP BY 42",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
