package query

import "testing"

// FuzzParse drives the parser with arbitrary inputs: it must never panic,
// and any query that parses must re-parse from its own String() with the
// same classification.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT temp FROM sensors WHERE sensor = 10",
		"SELECT avg(temp) FROM sensors WHERE room = '210' COST energy 0.5 EPOCH 10",
		"SELECT tempdist(temp) FROM sensors GROUP BY room",
		"select count() from sensors where temp >= 10 and room != 'r1'",
		"SELECT",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("String() output %q does not re-parse: %v", rendered, err)
		}
		if q.Kind() != q2.Kind() || q.GroupBy != q2.GroupBy || q.Epoch != q2.Epoch {
			t.Fatalf("round trip changed semantics: %q -> %q", src, rendered)
		}
	})
}
