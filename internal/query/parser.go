package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// token kinds.
type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokSymbol // ( ) , and comparison operators
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsSpace(rune(c)):
			l.pos++
		case c == '\'' || c == '"':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case strings.ContainsRune("(),", rune(c)):
			l.emit(tokSymbol, string(c), 1)
		case c == '=' || c == '<' || c == '>' || c == '!':
			l.lexOp()
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) emit(kind tokKind, text string, width int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.pos})
	l.pos += width
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) && l.src[l.pos] != quote {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("query: unterminated string at %d", start)
	}
	l.toks = append(l.toks, token{kind: tokString, text: l.src[start+1 : l.pos], pos: start})
	l.pos++ // closing quote
	return nil
}

func (l *lexer) lexOp() {
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	if l.pos < len(l.src) && l.src[l.pos] == '=' && (c == '<' || c == '>' || c == '!' || c == '=') {
		l.pos++
	}
	op := l.src[start:l.pos]
	if op == "==" {
		op = "="
	}
	l.toks = append(l.toks, token{kind: tokSymbol, text: op, pos: start})
}

// parser walks the token stream.
type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("query: expected %s at position %d, got %q", strings.ToUpper(kw), t.pos, t.text)
	}
	return nil
}

func (p *parser) isKeyword(kws ...string) bool {
	t := p.cur()
	if t.kind != tokIdent {
		return false
	}
	for _, kw := range kws {
		if strings.EqualFold(t.text, kw) {
			return true
		}
	}
	return false
}

// Parse parses one query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q := &Query{Raw: src}

	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("sensors"); err != nil {
		return nil, err
	}

	for {
		switch {
		case p.isKeyword("where"):
			p.next()
			if err := p.parseWhere(q); err != nil {
				return nil, err
			}
		case p.isKeyword("group"):
			p.next()
			if err := p.expectKeyword("by"); err != nil {
				return nil, err
			}
			field := p.next()
			if field.kind != tokIdent {
				return nil, fmt.Errorf("query: expected GROUP BY field at %d, got %q", field.pos, field.text)
			}
			q.GroupBy = field.text
		case p.isKeyword("cost"):
			p.next()
			if err := p.parseCost(q); err != nil {
				return nil, err
			}
		case p.isKeyword("epoch"):
			p.next()
			if err := p.parseEpoch(q); err != nil {
				return nil, err
			}
		case p.cur().kind == tokEOF:
			return q, nil
		default:
			return nil, fmt.Errorf("query: unexpected token %q at %d", p.cur().text, p.cur().pos)
		}
	}
}

func (p *parser) parseSelectList(q *Query) error {
	for {
		t := p.next()
		if t.kind != tokIdent {
			return fmt.Errorf("query: expected attribute or function at %d, got %q", t.pos, t.text)
		}
		item := SelectItem{Attr: t.text}
		if p.cur().kind == tokSymbol && p.cur().text == "(" {
			p.next()
			item.Func = t.text
			item.Attr = ""
			if p.cur().kind == tokIdent {
				item.Attr = p.next().text
			}
			if close := p.next(); close.kind != tokSymbol || close.text != ")" {
				return fmt.Errorf("query: expected ) at %d", close.pos)
			}
		}
		q.Select = append(q.Select, item)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.next()
			continue
		}
		return nil
	}
}

var validOps = map[string]bool{"=": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseWhere(q *Query) error {
	for {
		field := p.next()
		if field.kind != tokIdent {
			return fmt.Errorf("query: expected predicate field at %d, got %q", field.pos, field.text)
		}
		op := p.next()
		if op.kind != tokSymbol || !validOps[op.text] {
			return fmt.Errorf("query: expected comparison operator at %d, got %q", op.pos, op.text)
		}
		val := p.next()
		if val.kind != tokIdent && val.kind != tokNumber && val.kind != tokString {
			return fmt.Errorf("query: expected value at %d, got %q", val.pos, val.text)
		}
		q.Where = append(q.Where, Predicate{Field: field.text, Op: op.text, Value: val.text})
		if p.isKeyword("and") {
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) parseCost(q *Query) error {
	metric := p.next()
	if metric.kind != tokIdent {
		return fmt.Errorf("query: expected cost metric at %d, got %q", metric.pos, metric.text)
	}
	switch strings.ToLower(metric.text) {
	case "energy":
		q.CostMetric = CostEnergy
	case "time":
		q.CostMetric = CostTime
	case "accuracy":
		q.CostMetric = CostAccuracy
	default:
		return fmt.Errorf("query: unknown cost metric %q at %d (want energy|time|accuracy)", metric.text, metric.pos)
	}
	limit := p.next()
	if limit.kind != tokNumber {
		return fmt.Errorf("query: expected cost limit number at %d, got %q", limit.pos, limit.text)
	}
	v, err := strconv.ParseFloat(limit.text, 64)
	if err != nil || v < 0 {
		return fmt.Errorf("query: invalid cost limit %q at %d", limit.text, limit.pos)
	}
	q.CostLimit = v
	return nil
}

func (p *parser) parseEpoch(q *Query) error {
	// Accept optional DURATION keyword: "EPOCH DURATION 10" per the
	// paper's format, or the shorthand "EPOCH 10".
	if p.isKeyword("duration") {
		p.next()
	}
	t := p.next()
	if t.kind != tokNumber {
		return fmt.Errorf("query: expected epoch duration at %d, got %q", t.pos, t.text)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil || v <= 0 {
		return fmt.Errorf("query: invalid epoch %q at %d", t.text, t.pos)
	}
	q.Epoch = v
	return nil
}
