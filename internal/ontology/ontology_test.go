package ontology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddConceptValidation(t *testing.T) {
	o := New()
	if err := o.AddConcept(""); err == nil {
		t.Fatal("empty name should fail")
	}
	if err := o.AddConcept("A"); err != nil {
		t.Fatal(err)
	}
	if err := o.AddConcept("A"); err == nil {
		t.Fatal("duplicate should fail")
	}
	if err := o.AddConcept("B", "Missing"); err == nil {
		t.Fatal("unknown parent should fail")
	}
}

func TestIsAReflexiveTransitive(t *testing.T) {
	o := Pervasive()
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"TemperatureSensor", "TemperatureSensor", true},
		{"TemperatureSensor", "SensorService", true},
		{"TemperatureSensor", "Service", true},
		{"TemperatureSensor", Root, true},
		{"SensorService", "TemperatureSensor", false},
		{"TemperatureSensor", "ComputeService", false},
		{"HeatSolver", "ComputeService", true},
	}
	for _, c := range cases {
		if got := o.IsA(c.sub, c.super); got != c.want {
			t.Errorf("IsA(%q, %q) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestDepth(t *testing.T) {
	o := Pervasive()
	if d := o.Depth(Root); d != 0 {
		t.Fatalf("depth(root) = %d", d)
	}
	if d := o.Depth("Service"); d != 1 {
		t.Fatalf("depth(Service) = %d", d)
	}
	if d := o.Depth("HeatSolver"); d != 4 {
		t.Fatalf("depth(HeatSolver) = %d, want 4", d)
	}
	if d := o.Depth("Nope"); d != -1 {
		t.Fatalf("depth(unknown) = %d, want -1", d)
	}
}

func TestLCS(t *testing.T) {
	o := Pervasive()
	lcs, ok := o.LCS("TemperatureSensor", "SmokeSensor")
	if !ok || lcs != "SensorService" {
		t.Fatalf("LCS = %q ok=%v, want SensorService", lcs, ok)
	}
	lcs, _ = o.LCS("TemperatureSensor", "HeatSolver")
	if lcs != "Service" {
		t.Fatalf("LCS = %q, want Service", lcs)
	}
	if _, ok := o.LCS("TemperatureSensor", "Unknown"); ok {
		t.Fatal("unknown concept should report !ok")
	}
}

func TestSimilarityOrdering(t *testing.T) {
	o := Pervasive()
	if s := o.Similarity("TemperatureSensor", "TemperatureSensor"); s != 1 {
		t.Fatalf("self similarity = %v, want 1", s)
	}
	sib := o.Similarity("TemperatureSensor", "SmokeSensor")
	far := o.Similarity("TemperatureSensor", "ColorPrinter")
	if sib <= far {
		t.Fatalf("sibling sim %v should exceed cross-branch sim %v", sib, far)
	}
	if s := o.Similarity("TemperatureSensor", "Unknown"); s != 0 {
		t.Fatalf("unknown sim = %v, want 0", s)
	}
	parent := o.Similarity("TemperatureSensor", "SensorService")
	if parent <= sib {
		t.Fatalf("parent sim %v should exceed sibling sim %v", parent, sib)
	}
}

func TestSimilarityProperties(t *testing.T) {
	o := Pervasive()
	concepts := o.Concepts()
	f := func(ai, bi uint8) bool {
		a := concepts[int(ai)%len(concepts)]
		b := concepts[int(bi)%len(concepts)]
		s1, s2 := o.Similarity(a, b), o.Similarity(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtree(t *testing.T) {
	o := Pervasive()
	sub := o.Subtree("DataMiningService")
	want := map[string]bool{
		"DataMiningService": true, "ClusteringService": true,
		"DecisionTreeService": true, "FourierSpectrumService": true,
		"PredictiveScoringService": true,
	}
	if len(sub) != len(want) {
		t.Fatalf("subtree = %v", sub)
	}
	for _, c := range sub {
		if !want[c] {
			t.Fatalf("unexpected subtree member %q", c)
		}
	}
	if o.Subtree("Nope") != nil {
		t.Fatal("unknown subtree should be nil")
	}
}

func TestMultipleInheritance(t *testing.T) {
	o := New()
	for _, step := range []struct {
		name    string
		parents []string
	}{
		{"A", nil}, {"B", nil}, {"C", []string{"A", "B"}},
	} {
		if err := o.AddConcept(step.name, step.parents...); err != nil {
			t.Fatal(err)
		}
	}
	if !o.IsA("C", "A") || !o.IsA("C", "B") {
		t.Fatal("C should inherit from both parents")
	}
}

func TestProfileValidate(t *testing.T) {
	o := Pervasive()
	p := &Profile{Name: "t1", Concept: "TemperatureSensor"}
	if err := p.Validate(o); err != nil {
		t.Fatal(err)
	}
	bad := &Profile{Name: "x", Concept: "NoSuch"}
	if err := bad.Validate(o); err == nil {
		t.Fatal("unknown concept should fail")
	}
	noName := &Profile{Concept: "Service"}
	if err := noName.Validate(o); err == nil {
		t.Fatal("empty name should fail")
	}
	badIO := &Profile{Name: "y", Concept: "Service", Inputs: []string{"Ghost"}}
	if err := badIO.Validate(o); err == nil {
		t.Fatal("unknown input concept should fail")
	}
}

func TestSatisfiesOperators(t *testing.T) {
	p := &Profile{
		Name: "printer1", Concept: "ColorPrinter",
		Properties: map[string]Value{
			"queue": Num(3),
			"cost":  Num(0.10),
			"color": Str("yes"),
			"x":     Num(10), "y": Num(0),
		},
	}
	req := Request{X: 0, Y: 0, HasLoc: true}
	cases := []struct {
		c    Constraint
		want bool
	}{
		{Constraint{"queue", OpLt, Num(5)}, true},
		{Constraint{"queue", OpLt, Num(3)}, false},
		{Constraint{"queue", OpLe, Num(3)}, true},
		{Constraint{"queue", OpGt, Num(2)}, true},
		{Constraint{"queue", OpGe, Num(4)}, false},
		{Constraint{"color", OpEq, Str("yes")}, true},
		{Constraint{"color", OpEq, Str("no")}, false},
		{Constraint{"color", OpNe, Str("no")}, true},
		{Constraint{"cost", OpLe, Num(0.15)}, true},
		{Constraint{"", OpNear, Num(15)}, true},
		{Constraint{"", OpNear, Num(5)}, false},
		// Missing property: only != passes.
		{Constraint{"ghost", OpEq, Num(1)}, false},
		{Constraint{"ghost", OpNe, Num(1)}, true},
		// Type mismatch: ordered comparison on string fails.
		{Constraint{"color", OpLt, Str("zzz")}, false},
		{Constraint{"color", OpLt, Num(1)}, false},
	}
	for _, c := range cases {
		if got := Satisfies(p, c.c, req); got != c.want {
			t.Errorf("Satisfies(%v %v %v) = %v, want %v", c.c.Property, c.c.Op, c.c.Value, got, c.want)
		}
	}
	// OpNear without a request location fails.
	if Satisfies(p, Constraint{"", OpNear, Num(100)}, Request{}) {
		t.Fatal("near without request location should fail")
	}
}

func TestValueString(t *testing.T) {
	if Num(2.5).String() != "2.5" || Str("a").String() != "a" {
		t.Fatal("value formatting broken")
	}
	if OpNear.String() != "near" || Op(99).String() == "" {
		t.Fatal("op formatting broken")
	}
}

func TestParseOntology(t *testing.T) {
	src := `
# building-fire domain
Service
SensorService < Service
TemperatureSensor < SensorService   # mote-class
SmokeSensor < SensorService
Hybrid < TemperatureSensor, SmokeSensor
Standalone
`
	o, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if !o.IsA("TemperatureSensor", "Service") {
		t.Fatal("transitivity lost")
	}
	if !o.IsA("Hybrid", "TemperatureSensor") || !o.IsA("Hybrid", "SmokeSensor") {
		t.Fatal("multiple inheritance lost")
	}
	if !o.IsA("Standalone", Root) || o.Depth("Standalone") != 1 {
		t.Fatal("bare concept should hang off Root")
	}
}

func TestParseErrorsOntology(t *testing.T) {
	bad := []string{
		"Child < Missing",  // forward/undefined parent
		"A\nA",             // duplicate
		"Bad Name < Thing", // space in name
		"X <",              // no parents after <
		"Y < ,",            // empty parent
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestDumpRoundTrip(t *testing.T) {
	o := Pervasive()
	var buf strings.Builder
	if err := o.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	o2, err := ParseString(buf.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if len(o2.Concepts()) != len(o.Concepts()) {
		t.Fatalf("concepts %d != %d", len(o2.Concepts()), len(o.Concepts()))
	}
	for _, c := range o.Concepts() {
		if o2.Depth(c) != o.Depth(c) {
			t.Fatalf("depth of %s changed: %d -> %d", c, o.Depth(c), o2.Depth(c))
		}
	}
	// Spot-check a similarity value survives.
	if o.Similarity("TemperatureSensor", "SmokeSensor") != o2.Similarity("TemperatureSensor", "SmokeSensor") {
		t.Fatal("similarity changed across round trip")
	}
}
