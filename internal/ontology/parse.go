package ontology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Parse reads an ontology from a simple line-oriented text format, so
// deployments can define domain vocabularies (the paper's "Agent Domain
// Attributes" world) without recompiling:
//
//	# comments and blank lines are ignored
//	Service
//	SensorService < Service
//	TemperatureSensor < SensorService
//	HybridThing < SensorService, ComputeService   # multiple inheritance
//
// A bare name attaches the concept to Root. Parents must be declared
// before children (forward references are an error, which keeps the file
// readable top-down).
func Parse(r io.Reader) (*Ontology, error) {
	o := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		name := line
		var parents []string
		if i := strings.Index(line, "<"); i >= 0 {
			name = strings.TrimSpace(line[:i])
			for _, p := range strings.Split(line[i+1:], ",") {
				p = strings.TrimSpace(p)
				if p == "" {
					return nil, fmt.Errorf("ontology: line %d: empty parent", lineNo)
				}
				parents = append(parents, p)
			}
			if len(parents) == 0 {
				return nil, fmt.Errorf("ontology: line %d: '<' without parents", lineNo)
			}
		}
		if strings.ContainsAny(name, " \t") || name == "" {
			return nil, fmt.Errorf("ontology: line %d: bad concept name %q", lineNo, name)
		}
		if err := o.AddConcept(name, parents...); err != nil {
			return nil, fmt.Errorf("ontology: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ontology: read: %w", err)
	}
	return o, nil
}

// ParseString parses an ontology from a string.
func ParseString(src string) (*Ontology, error) {
	return Parse(strings.NewReader(src))
}

// Dump writes the ontology in the Parse format, topologically ordered so
// the output re-parses. Root is implicit and omitted.
func (o *Ontology) Dump(w io.Writer) error {
	// Kahn-style order over the is-a DAG, children after parents, with
	// alphabetical tie-breaking for determinism.
	emitted := map[string]bool{Root: true}
	concepts := o.Concepts()
	for {
		progress := false
		var ready []string
		for _, c := range concepts {
			if emitted[c] {
				continue
			}
			ok := true
			for _, p := range o.parents[c] {
				if !emitted[p] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, c)
			}
		}
		sort.Strings(ready)
		for _, c := range ready {
			parents := o.parents[c]
			var line string
			if len(parents) == 1 && parents[0] == Root {
				line = c
			} else {
				line = c + " < " + strings.Join(parents, ", ")
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
			emitted[c] = true
			progress = true
		}
		if !progress {
			break
		}
	}
	return nil
}
