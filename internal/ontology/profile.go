package ontology

import (
	"fmt"
	"math"
)

// ValueKind tags a Value.
type ValueKind int

// Value kinds.
const (
	KindString ValueKind = iota
	KindNumber
)

// Value is a typed property value: either a string or a number.
type Value struct {
	Kind ValueKind
	S    string
	N    float64
}

// Str builds a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Num builds a numeric value.
func Num(n float64) Value { return Value{Kind: KindNumber, N: n} }

func (v Value) String() string {
	if v.Kind == KindNumber {
		return fmt.Sprintf("%g", v.N)
	}
	return v.S
}

// Profile is a semantic service description — the role a DAML-S service
// profile plays in the paper. It names the service's concept, its typed
// inputs/outputs, its capabilities as properties, and its requirements.
type Profile struct {
	// Name uniquely identifies the advertised service instance.
	Name string
	// Concept is the service-category concept in the ontology.
	Concept string
	// Inputs and Outputs are concept names describing the data the
	// service consumes and produces (used by the composition planner).
	Inputs  []string
	Outputs []string
	// Properties hold capability attributes: cost, queue length,
	// location coordinates ("x", "y"), "color", ...
	Properties map[string]Value
	// Requirements hold what the service needs to run (the paper's
	// "what software/hardware they need, how much is the cost to run").
	Requirements map[string]Value
	// UUID is the 128-bit-style identifier a Bluetooth-SDP matcher would
	// use. Derived from the name when empty.
	UUID string
	// Interface is the syntactic interface name a Jini-style matcher
	// would use (e.g. "Printer.printIt").
	Interface string
}

// Validate checks the profile against an ontology.
func (p *Profile) Validate(o *Ontology) error {
	if p.Name == "" {
		return fmt.Errorf("ontology: profile with empty name")
	}
	if !o.Has(p.Concept) {
		return fmt.Errorf("ontology: profile %q uses unknown concept %q", p.Name, p.Concept)
	}
	for _, c := range p.Inputs {
		if !o.Has(c) {
			return fmt.Errorf("ontology: profile %q input %q unknown", p.Name, c)
		}
	}
	for _, c := range p.Outputs {
		if !o.Has(c) {
			return fmt.Errorf("ontology: profile %q output %q unknown", p.Name, c)
		}
	}
	return nil
}

// Prop returns a property value and whether it exists.
func (p *Profile) Prop(key string) (Value, bool) {
	v, ok := p.Properties[key]
	return v, ok
}

// Op is a constraint comparison operator. The paper's complaint about
// Jini-era systems is that they "can only handle equality constraints";
// this set is the expressive superset discovery supports.
type Op int

// Constraint operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpNear // geographic proximity: distance((x,y), request location) <= value
)

func (op Op) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpNear:
		return "near"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Constraint restricts a property of a candidate service.
type Constraint struct {
	Property string
	Op       Op
	Value    Value
}

// Request describes what a client needs: a service concept, data types,
// hard constraints, and soft preferences.
type Request struct {
	// Concept is the wanted service category.
	Concept string
	// Inputs the client can supply; Outputs the client needs.
	Inputs  []string
	Outputs []string
	// Constraints are hard: a violated constraint disqualifies the
	// candidate.
	Constraints []Constraint
	// PreferLow names numeric properties where smaller is better (print
	// queue length, cost, distance); used for ranking, not filtering.
	PreferLow []string
	// X, Y anchor OpNear constraints and distance preferences; HasLoc
	// marks them meaningful.
	X, Y   float64
	HasLoc bool
}

// Satisfies evaluates one constraint against a profile (given the request
// for OpNear anchoring). Missing properties fail every constraint except
// OpNe.
func Satisfies(p *Profile, c Constraint, req Request) bool {
	if c.Op == OpNear {
		if !req.HasLoc {
			return false
		}
		xv, okx := p.Prop("x")
		yv, oky := p.Prop("y")
		if !okx || !oky || xv.Kind != KindNumber || yv.Kind != KindNumber || c.Value.Kind != KindNumber {
			return false
		}
		dx, dy := xv.N-req.X, yv.N-req.Y
		return math.Sqrt(dx*dx+dy*dy) <= c.Value.N
	}
	v, ok := p.Prop(c.Property)
	if !ok {
		return c.Op == OpNe
	}
	if v.Kind != c.Value.Kind {
		return c.Op == OpNe
	}
	switch c.Op {
	case OpEq:
		return v == c.Value
	case OpNe:
		return v != c.Value
	}
	if v.Kind != KindNumber {
		return false // ordered comparisons need numbers
	}
	switch c.Op {
	case OpLt:
		return v.N < c.Value.N
	case OpLe:
		return v.N <= c.Value.N
	case OpGt:
		return v.N > c.Value.N
	case OpGe:
		return v.N >= c.Value.N
	}
	return false
}
