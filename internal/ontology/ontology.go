// Package ontology provides the semantic vocabulary beneath service
// discovery: a concept hierarchy (the role DAML/DAML-S ontologies play in
// the paper), typed service profiles that describe capabilities and
// requirements, and a concept-similarity metric that lets the matcher rank
// inexact matches instead of demanding syntactic equality.
package ontology

import (
	"fmt"
	"sort"
)

// Root is the implicit top concept every ontology contains.
const Root = "Thing"

// Ontology is a directed acyclic is-a hierarchy of named concepts.
type Ontology struct {
	parents  map[string][]string
	children map[string][]string
	depth    map[string]int
}

// New returns an ontology containing only Root.
func New() *Ontology {
	return &Ontology{
		parents:  map[string][]string{Root: nil},
		children: map[string][]string{},
		depth:    map[string]int{Root: 0},
	}
}

// AddConcept inserts a concept beneath one or more parents (Root when none
// are given). All parents must already exist and the concept must be new.
func (o *Ontology) AddConcept(name string, parents ...string) error {
	if name == "" {
		return fmt.Errorf("ontology: empty concept name")
	}
	if _, ok := o.parents[name]; ok {
		return fmt.Errorf("ontology: concept %q already defined", name)
	}
	if len(parents) == 0 {
		parents = []string{Root}
	}
	minDepth := -1
	for _, p := range parents {
		d, ok := o.depth[p]
		if !ok {
			return fmt.Errorf("ontology: parent %q of %q not defined", p, name)
		}
		if minDepth == -1 || d < minDepth {
			minDepth = d
		}
	}
	o.parents[name] = append([]string(nil), parents...)
	for _, p := range parents {
		o.children[p] = append(o.children[p], name)
	}
	o.depth[name] = minDepth + 1
	return nil
}

// Has reports whether the concept exists.
func (o *Ontology) Has(name string) bool {
	_, ok := o.parents[name]
	return ok
}

// Concepts lists every concept in deterministic order.
func (o *Ontology) Concepts() []string {
	out := make([]string, 0, len(o.parents))
	for c := range o.parents {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Depth returns the minimum is-a distance from Root, or -1 when unknown.
func (o *Ontology) Depth(name string) int {
	d, ok := o.depth[name]
	if !ok {
		return -1
	}
	return d
}

// ancestors returns the reflexive-transitive ancestor set of name.
func (o *Ontology) ancestors(name string) map[string]bool {
	out := map[string]bool{}
	var walk func(c string)
	walk = func(c string) {
		if out[c] {
			return
		}
		out[c] = true
		for _, p := range o.parents[c] {
			walk(p)
		}
	}
	if _, ok := o.parents[name]; ok {
		walk(name)
	}
	return out
}

// IsA reports whether sub is (reflexively, transitively) a kind of super.
func (o *Ontology) IsA(sub, super string) bool {
	return o.ancestors(sub)[super]
}

// LCS returns the deepest common ancestor of a and b and true, or Root and
// false when either concept is unknown.
func (o *Ontology) LCS(a, b string) (string, bool) {
	if !o.Has(a) || !o.Has(b) {
		return Root, false
	}
	ancA := o.ancestors(a)
	best, bestDepth := Root, 0
	for c := range o.ancestors(b) {
		if ancA[c] && o.depth[c] >= bestDepth {
			if o.depth[c] > bestDepth || c < best {
				best, bestDepth = c, o.depth[c]
			}
		}
	}
	return best, true
}

// Similarity scores two concepts in [0, 1] with the Wu–Palmer measure:
// 2·depth(lcs) / (depth(a) + depth(b)). Identical concepts score 1;
// unknown concepts score 0.
func (o *Ontology) Similarity(a, b string) float64 {
	if !o.Has(a) || !o.Has(b) {
		return 0
	}
	if a == b {
		return 1
	}
	lcs, _ := o.LCS(a, b)
	da, db, dl := o.depth[a], o.depth[b], o.depth[lcs]
	if da+db == 0 {
		return 1 // both are Root
	}
	return 2 * float64(dl) / float64(da+db)
}

// Subtree lists name and every descendant, in deterministic order.
func (o *Ontology) Subtree(name string) []string {
	if !o.Has(name) {
		return nil
	}
	seen := map[string]bool{}
	var walk func(c string)
	walk = func(c string) {
		if seen[c] {
			return
		}
		seen[c] = true
		for _, ch := range o.children[c] {
			walk(ch)
		}
	}
	walk(name)
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Pervasive builds the default pervasive-computing ontology used by the
// examples and experiments: sensors, computation, data, and device
// services in the spirit of the paper's scenarios.
func Pervasive() *Ontology {
	o := New()
	must := func(name string, parents ...string) {
		if err := o.AddConcept(name, parents...); err != nil {
			panic(err) // static vocabulary; a failure is a programming error
		}
	}
	must("Service")
	must("SensorService", "Service")
	must("TemperatureSensor", "SensorService")
	must("SmokeSensor", "SensorService")
	must("ToxinSensor", "SensorService")
	must("PathogenSensor", "SensorService")
	must("AcousticSensor", "SensorService")
	must("RadarSensor", "SensorService")
	must("ComputeService", "Service")
	must("PDESolver", "ComputeService")
	must("HeatSolver", "PDESolver")
	must("NavierStokesSolver", "PDESolver")
	must("AggregationService", "ComputeService")
	must("DataMiningService", "ComputeService")
	must("ClusteringService", "DataMiningService")
	must("DecisionTreeService", "DataMiningService")
	must("FourierSpectrumService", "DataMiningService")
	must("PredictiveScoringService", "DataMiningService")
	must("DataService", "Service")
	must("HospitalRecords", "DataService")
	must("IntelligenceReports", "DataService")
	must("WeatherData", "DataService")
	must("BuildingPlan", "DataService")
	must("MaterialProperties", "DataService")
	must("DeviceService", "Service")
	must("PrinterService", "DeviceService")
	must("ColorPrinter", "PrinterService")
	must("DisplayService", "DeviceService")
	must("StorageService", "DeviceService")
	must("GatewayService", "DeviceService")
	return o
}
