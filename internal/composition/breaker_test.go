package composition

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/ontology"
	"pervasivegrid/internal/supervise"
)

// TestBreakerGatesCandidatesAndHeals drives a service through the full
// circuit: a failing invocation opens its breaker, a re-advertised copy
// of the same service is then skipped without burning an attempt, and
// after the cool-down a half-open probe closes the circuit again.
func TestBreakerGatesCandidatesAndHeals(t *testing.T) {
	brokers, o := testWorld(t, 1, 1)
	fc := obs.NewFakeClock()
	bs := supervise.NewBreakerSet(supervise.BreakerPolicy{
		FailureThreshold: 1, OpenFor: time.Minute, HalfOpenSuccesses: 1, Clock: fc,
	})
	failing := true
	invoked := 0
	e := &Engine{
		Brokers: brokers, Onto: o, Breakers: bs,
		MaxAttempts: 3,
		Invoke: func(p *ontology.Profile, s Step) error {
			invoked++
			if failing {
				return errors.New("service down")
			}
			return nil
		},
	}
	plan := minePlan(t)

	// Act 1: the sole candidate for step 1 fails, opening its breaker
	// and aborting the composition.
	exec := e.Execute(plan)
	if exec.Succeeded {
		t.Fatal("all-failing world should not succeed")
	}
	// Step 1 burns its exact-match candidate plus any semantic
	// substitutes the rediscovery surfaced; each failed invocation opens
	// that service's breaker.
	var open []string
	for _, v := range bs.Snapshot() {
		if v.State == "open" {
			open = append(open, v.Target)
		}
	}
	if len(open) == 0 {
		t.Fatal("no breaker opened after failing invocations")
	}

	// Act 2: the dead service comes back (re-advertised), but its
	// breaker remembers — the engine skips it without invoking.
	reRegister(t, brokers, o)
	failing = false
	invoked = 0
	exec = e.Execute(plan)
	if exec.Succeeded {
		t.Fatal("open breaker should leave step 1 unbindable")
	}
	if exec.BreakerSkips() < 1 {
		t.Fatalf("BreakerSkips = %d, want >= 1", exec.BreakerSkips())
	}
	if invoked != 0 {
		t.Fatalf("open breaker still let %d invocations through", invoked)
	}
	if !errors.Is(exec.Err, ErrUnbound) {
		t.Fatalf("exec.Err = %v, want ErrUnbound", exec.Err)
	}

	// Act 3: the cool-down elapses; the half-open probe succeeds and the
	// composition completes, closing the circuit.
	fc.Advance(2 * time.Minute)
	exec = e.Execute(plan)
	if !exec.Succeeded {
		t.Fatalf("post-cool-down execution failed: %v", exec.Err)
	}
	for _, target := range open {
		if got := bs.State(target); got == supervise.BreakerOpen {
			t.Fatalf("breaker %s still open after cool-down and successful run", target)
		}
	}
}

// reRegister restores the single per-concept profiles testWorld created.
func reRegister(t *testing.T, brokers []*discovery.Broker, o *ontology.Ontology) {
	t.Helper()
	for _, c := range []string{"DecisionTreeService", "FourierSpectrumService", "DataMiningService"} {
		p := &ontology.Profile{Name: fmt.Sprintf("%s-0", c), Concept: c}
		if _, err := brokers[0].Reg.Register(p, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
}
