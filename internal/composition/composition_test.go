package composition

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/ontology"
)

func TestLibraryDefineValidation(t *testing.T) {
	l := NewLibrary()
	if err := l.Define(nil); err == nil {
		t.Fatal("nil task should fail")
	}
	if err := l.Define(&Task{}); err == nil {
		t.Fatal("unnamed task should fail")
	}
	if err := l.Define(&Task{Name: "p"}); err == nil {
		t.Fatal("primitive without concept should fail")
	}
	if err := l.Define(&Task{Name: "c", Concept: "X", Subtasks: []string{"p"}}); err == nil {
		t.Fatal("compound with concept should fail")
	}
	if err := l.Define(&Task{Name: "p", Concept: "X"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Define(&Task{Name: "p", Concept: "Y"}); err == nil {
		t.Fatal("redefinition should fail")
	}
}

func TestPlanExpansion(t *testing.T) {
	l := StreamMiningLibrary()
	plan, err := l.Plan("mine-stream")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"generate-trees", "compute-spectra", "choose-dominant", "combine-tree"}
	if len(plan) != len(want) {
		t.Fatalf("plan length = %d, want %d", len(plan), len(want))
	}
	for i, s := range plan {
		if s.Task.Name != want[i] {
			t.Fatalf("step %d = %s, want %s", i, s.Task.Name, want[i])
		}
		if len(s.Path) == 0 || s.Path[0] != "mine-stream" {
			t.Fatalf("step %d path = %v", i, s.Path)
		}
	}
}

func TestPlanNestedCompound(t *testing.T) {
	l := NewLibrary()
	for _, task := range []*Task{
		{Name: "top", Subtasks: []string{"mid", "leafC"}},
		{Name: "mid", Subtasks: []string{"leafA", "leafB"}},
		{Name: "leafA", Concept: "A"},
		{Name: "leafB", Concept: "B"},
		{Name: "leafC", Concept: "C"},
	} {
		if err := l.Define(task); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := l.Plan("top")
	if err != nil {
		t.Fatal(err)
	}
	got := []string{}
	for _, s := range plan {
		got = append(got, s.Task.Name)
	}
	want := []string{"leafA", "leafB", "leafC"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("plan = %v, want %v", got, want)
		}
	}
}

func TestPlanCycleDetected(t *testing.T) {
	l := NewLibrary()
	if err := l.Define(&Task{Name: "a", Subtasks: []string{"b"}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Define(&Task{Name: "b", Subtasks: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Plan("a"); err == nil {
		t.Fatal("cycle should be detected")
	}
}

func TestPlanUndefinedTask(t *testing.T) {
	l := NewLibrary()
	if err := l.Define(&Task{Name: "a", Subtasks: []string{"ghost"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Plan("a"); err == nil {
		t.Fatal("undefined subtask should fail")
	}
	if _, err := l.Plan("missing"); err == nil {
		t.Fatal("undefined goal should fail")
	}
}

func TestValidateDataflow(t *testing.T) {
	o := ontology.Pervasive()
	l := StreamMiningLibrary()
	plan, err := l.Plan("mine-stream")
	if err != nil {
		t.Fatal(err)
	}
	// TemperatureSensor subsumes into the wanted SensorService input.
	if err := ValidateDataflow(plan, []string{"TemperatureSensor"}, o); err != nil {
		t.Fatal(err)
	}
	// Without any sensor data the first step is starved.
	if err := ValidateDataflow(plan, nil, o); err == nil {
		t.Fatal("missing initial input should fail dataflow validation")
	}
}

// testWorld builds brokers populated with services for the mining plan.
func testWorld(t *testing.T, nBrokers int, perConcept int) ([]*discovery.Broker, *ontology.Ontology) {
	t.Helper()
	o := ontology.Pervasive()
	m := discovery.NewSemanticMatcher(o)
	brokers := make([]*discovery.Broker, nBrokers)
	for i := range brokers {
		brokers[i] = discovery.NewBroker(fmt.Sprintf("broker-%d", i), m)
	}
	concepts := []string{"DecisionTreeService", "FourierSpectrumService", "DataMiningService"}
	for ci, c := range concepts {
		for j := 0; j < perConcept; j++ {
			p := &ontology.Profile{Name: fmt.Sprintf("%s-%d", c, j), Concept: c}
			b := brokers[(ci+j)%nBrokers]
			if _, err := b.Reg.Register(p, time.Hour); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Full mesh peering so lookups can fan out.
	for i := range brokers {
		for j := range brokers {
			if i < j {
				brokers[i].Peer(brokers[j], true)
			}
		}
	}
	return brokers, o
}

func minePlan(t *testing.T) []Step {
	t.Helper()
	plan, err := StreamMiningLibrary().Plan("mine-stream")
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestExecuteHappyPath(t *testing.T) {
	brokers, o := testWorld(t, 1, 2)
	e := &Engine{
		Brokers: brokers, Onto: o,
		Invoke:        func(*ontology.Profile, Step) error { return nil },
		DiscoveryCost: 0.01, InvokeCost: 0.05,
	}
	exec := e.Execute(minePlan(t))
	if !exec.Succeeded || exec.Err != nil {
		t.Fatalf("execution failed: %+v", exec)
	}
	if len(exec.Steps) != 4 {
		t.Fatalf("steps = %d", len(exec.Steps))
	}
	if exec.Latency <= 0 {
		t.Fatal("latency should accumulate")
	}
	for _, s := range exec.Steps {
		if !s.OK || s.Service == "" || s.Attempts != 1 {
			t.Fatalf("step report %+v", s)
		}
	}
}

func TestExecuteRebindsOnFailure(t *testing.T) {
	brokers, o := testWorld(t, 1, 3)
	deadOnce := map[string]bool{}
	e := &Engine{
		Brokers: brokers, Onto: o,
		MaxAttempts: 3,
		Invoke: func(p *ontology.Profile, s Step) error {
			// First candidate for each concept dies once.
			if !deadOnce[s.Task.Concept] {
				deadOnce[s.Task.Concept] = true
				return errors.New("service crashed")
			}
			return nil
		},
	}
	exec := e.Execute(minePlan(t))
	if !exec.Succeeded {
		t.Fatalf("should survive single failures via re-binding: %+v", exec.Err)
	}
	if exec.Rebinds() == 0 {
		t.Fatal("expected re-binding events")
	}
}

func TestExecuteFailsWhenAllCandidatesDie(t *testing.T) {
	brokers, o := testWorld(t, 1, 2)
	e := &Engine{
		Brokers: brokers, Onto: o,
		MaxAttempts: 5,
		Invoke:      func(*ontology.Profile, Step) error { return errors.New("down") },
	}
	exec := e.Execute(minePlan(t))
	if exec.Succeeded {
		t.Fatal("execution should fail when every candidate dies")
	}
	if exec.Err == nil {
		t.Fatal("terminal error missing")
	}
	if !exec.Abandoned {
		t.Fatal("failed execution should be marked abandoned")
	}
	// One or two transient failures must NOT deregister a service: the
	// breaker quarantines it; only DeregisterAfter consecutive failures
	// confirm death. Each candidate failed at most twice here (initial
	// list + one rediscovery), below the default threshold of 3.
	still := 0
	for _, p := range brokers[0].Reg.Profiles() {
		if p.Concept == "DecisionTreeService" {
			still++
		}
	}
	if still != 2 {
		t.Fatalf("transiently-failing services withdrawn from registry: %d of 2 left", still)
	}
}

func TestExecuteConfirmsDeadAtThreshold(t *testing.T) {
	brokers, o := testWorld(t, 1, 2)
	e := &Engine{
		Brokers: brokers, Onto: o,
		MaxAttempts:     8,
		DeregisterAfter: 2,
		Invoke:          func(*ontology.Profile, Step) error { return errors.New("down") },
	}
	exec := e.Execute(minePlan(t))
	if exec.Succeeded {
		t.Fatal("execution should fail when every candidate dies")
	}
	// With DeregisterAfter=2 each candidate fails twice (initial list +
	// rediscovery) and crosses the confirmed-dead threshold.
	for _, p := range brokers[0].Reg.Profiles() {
		if p.Concept == "DecisionTreeService" {
			t.Fatalf("confirmed-dead service %s still advertised", p.Name)
		}
	}
}

func TestConfirmDeadOnHealthVerdict(t *testing.T) {
	brokers, o := testWorld(t, 2, 2)
	e := &Engine{
		Brokers: brokers, Onto: o, Strategy: Proactive,
		Invoke: func(*ontology.Profile, Step) error { return nil },
	}
	plan := minePlan(t)
	e.Prebind(plan)
	victim := "DecisionTreeService-0"
	e.ConfirmDead(victim)
	for _, b := range brokers {
		for _, p := range b.Reg.Profiles() {
			if p.Name == victim {
				t.Fatalf("ConfirmDead left %s advertised on %s", victim, b.Name)
			}
		}
	}
	// The proactive cache must not serve the dead binding either.
	exec := e.Execute(plan)
	if !exec.Succeeded {
		t.Fatal(exec.Err)
	}
	for _, s := range exec.Steps {
		if s.Service == victim {
			t.Fatalf("step %s still bound to confirmed-dead %s", s.Task, victim)
		}
	}
}

func TestExecuteUnboundStep(t *testing.T) {
	brokers, o := testWorld(t, 1, 1)
	e := &Engine{Brokers: brokers, Onto: o, Invoke: func(*ontology.Profile, Step) error { return nil }}
	plan := []Step{{Task: &Task{Name: "impossible", Concept: "NavierStokesSolver"}}}
	exec := e.Execute(plan)
	if exec.Succeeded || !errors.Is(exec.Err, ErrUnbound) {
		t.Fatalf("err = %v, want ErrUnbound", exec.Err)
	}
}

func TestExecuteOptionalStepDegrades(t *testing.T) {
	brokers, o := testWorld(t, 1, 1)
	plan := minePlan(t)
	// Make an unbindable optional step in the middle.
	opt := Step{Task: &Task{Name: "enrich", Concept: "NavierStokesSolver", Optional: true}}
	plan = append(plan[:2:2], append([]Step{opt}, plan[2:]...)...)
	e := &Engine{Brokers: brokers, Onto: o, Invoke: func(*ontology.Profile, Step) error { return nil }}
	exec := e.Execute(plan)
	if !exec.Succeeded {
		t.Fatalf("optional failure must not abort: %+v", exec.Err)
	}
	if !exec.Degraded {
		t.Fatal("execution should be marked degraded")
	}
}

func TestCentralizedCoordinatorSinglePointOfFailure(t *testing.T) {
	brokers, o := testWorld(t, 3, 2)
	invoke := func(*ontology.Profile, Step) error { return nil }
	down := map[string]bool{"broker-0": true}

	central := &Engine{Brokers: brokers, Onto: o, Invoke: invoke, Mode: Centralized, BrokerDown: down}
	if exec := central.Execute(minePlan(t)); exec.Succeeded || !errors.Is(exec.Err, ErrNoBroker) {
		t.Fatalf("centralized should fail with coordinator down: %+v", exec.Err)
	}

	dist := &Engine{Brokers: brokers, Onto: o, Invoke: invoke, Mode: Distributed, BrokerDown: down}
	if exec := dist.Execute(minePlan(t)); !exec.Succeeded {
		t.Fatalf("distributed should survive broker-0 down: %+v", exec.Err)
	}
}

func TestProactivePrebindAndCacheHit(t *testing.T) {
	brokers, o := testWorld(t, 1, 2)
	calls := 0
	e := &Engine{
		Brokers: brokers, Onto: o, Strategy: Proactive,
		Invoke: func(*ontology.Profile, Step) error { calls++; return nil },
	}
	plan := minePlan(t)
	// mine plan uses 3 distinct concepts (DecisionTreeService twice).
	if bound := e.Prebind(plan); bound != 3 {
		t.Fatalf("prebound = %d, want 3", bound)
	}
	exec := e.Execute(plan)
	if !exec.Succeeded {
		t.Fatal(exec.Err)
	}
	hits := 0
	for _, s := range exec.Steps {
		if s.CacheHit {
			hits++
		}
	}
	if hits != len(exec.Steps) {
		t.Fatalf("cache hits = %d, want %d", hits, len(exec.Steps))
	}
}

func TestProactiveFallsBackWhenServiceVanishes(t *testing.T) {
	brokers, o := testWorld(t, 1, 2)
	e := &Engine{
		Brokers: brokers, Onto: o, Strategy: Proactive,
		Invoke: func(*ontology.Profile, Step) error { return nil },
	}
	plan := minePlan(t)
	e.Prebind(plan)
	// All pre-bound services vanish (lease expiry simulated by
	// deregistering); remaining -1 instances still exist.
	for _, c := range []string{"DecisionTreeService", "FourierSpectrumService", "DataMiningService"} {
		brokers[0].Reg.Deregister(c + "-0")
	}
	exec := e.Execute(plan)
	if !exec.Succeeded {
		t.Fatalf("proactive must fall back to discovery: %+v", exec.Err)
	}
}

func TestShortLivedServices(t *testing.T) {
	o := ontology.Pervasive()
	m := discovery.NewSemanticMatcher(o)
	b := discovery.NewBroker("b", m)
	now := time.Unix(0, 0)
	b.Reg.Now = func() time.Time { return now }

	p := &ontology.Profile{Name: "ephemeral", Concept: "DecisionTreeService"}
	if err := RegisterShortLived(b, p, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	e := &Engine{Brokers: []*discovery.Broker{b}, Onto: o,
		Invoke: func(*ontology.Profile, Step) error { return nil }}
	plan := []Step{{Task: &Task{Name: "t", Concept: "DecisionTreeService"}}}
	if exec := e.Execute(plan); !exec.Succeeded {
		t.Fatalf("service should be visible while alive: %+v", exec.Err)
	}
	now = now.Add(10 * time.Second)
	if exec := e.Execute(plan); exec.Succeeded {
		t.Fatal("service should have disappeared after its lifetime")
	}
}

func TestExecuteNeedsInvoker(t *testing.T) {
	brokers, o := testWorld(t, 1, 1)
	e := &Engine{Brokers: brokers, Onto: o}
	if exec := e.Execute(minePlan(t)); exec.Succeeded || exec.Err == nil {
		t.Fatal("missing invoker should fail")
	}
}

func TestModeAndStrategyStrings(t *testing.T) {
	if Centralized.String() != "centralized" || Distributed.String() != "distributed" {
		t.Fatal("mode names")
	}
	if Reactive.String() != "reactive" || Proactive.String() != "proactive" {
		t.Fatal("strategy names")
	}
}

func TestUnorderedPlanGroups(t *testing.T) {
	l := NewLibrary()
	for _, task := range []*Task{
		{Name: "fuse-intel", Subtasks: []string{"gather", "analyse"}},
		// The three sensor pulls are independent: fetch concurrently.
		{Name: "gather", Unordered: true, Subtasks: []string{"radar", "acoustic", "weather"}},
		{Name: "radar", Concept: "RadarSensor"},
		{Name: "acoustic", Concept: "AcousticSensor"},
		{Name: "weather", Concept: "WeatherData"},
		{Name: "analyse", Concept: "DataMiningService"},
	} {
		if err := l.Define(task); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := l.Plan("fuse-intel")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 4 {
		t.Fatalf("plan = %d steps", len(plan))
	}
	// The three gather steps share a group; analyse has its own.
	g := plan[0].Group
	if plan[1].Group != g || plan[2].Group != g {
		t.Fatalf("gather steps not grouped: %d %d %d", plan[0].Group, plan[1].Group, plan[2].Group)
	}
	if plan[3].Group == g {
		t.Fatal("analyse should be in its own group")
	}
}

func TestParallelGroupLatencyIsMax(t *testing.T) {
	o := ontology.Pervasive()
	m := discovery.NewSemanticMatcher(o)
	b := discovery.NewBroker("b", m)
	for _, c := range []string{"RadarSensor", "AcousticSensor", "WeatherData", "DataMiningService"} {
		if _, err := b.Reg.Register(&ontology.Profile{Name: c + "-1", Concept: c}, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	l := NewLibrary()
	for _, task := range []*Task{
		{Name: "par", Unordered: true, Subtasks: []string{"r", "a", "w"}},
		{Name: "seq", Subtasks: []string{"r2", "a2", "w2"}},
		{Name: "r", Concept: "RadarSensor"}, {Name: "a", Concept: "AcousticSensor"}, {Name: "w", Concept: "WeatherData"},
		{Name: "r2", Concept: "RadarSensor"}, {Name: "a2", Concept: "AcousticSensor"}, {Name: "w2", Concept: "WeatherData"},
	} {
		if err := l.Define(task); err != nil {
			t.Fatal(err)
		}
	}
	engine := func() *Engine {
		return &Engine{
			Brokers: []*discovery.Broker{b}, Onto: o,
			DiscoveryCost: 0.1, InvokeCost: 0.5,
			Invoke: func(*ontology.Profile, Step) error { return nil },
		}
	}
	parPlan, err := l.Plan("par")
	if err != nil {
		t.Fatal(err)
	}
	seqPlan, err := l.Plan("seq")
	if err != nil {
		t.Fatal(err)
	}
	par := engine().Execute(parPlan)
	seq := engine().Execute(seqPlan)
	if !par.Succeeded || !seq.Succeeded {
		t.Fatalf("executions failed: %v %v", par.Err, seq.Err)
	}
	// Sequential: 3 * (0.1 + 0.5) = 1.8; parallel: max = 0.6.
	if par.Latency >= seq.Latency {
		t.Fatalf("parallel latency %v should beat sequential %v", par.Latency, seq.Latency)
	}
	if par.Latency > 0.6001 {
		t.Fatalf("parallel latency %v, want ~0.6 (max of group)", par.Latency)
	}
}

func TestGroupLatencyEmpty(t *testing.T) {
	if groupLatency(nil) != 0 {
		t.Fatal("empty plan latency should be 0")
	}
}

// Property: a plan contains exactly the primitive tasks reachable from the
// goal, in left-to-right order, regardless of nesting shape.
func TestPropertyPlanCountsPrimitives(t *testing.T) {
	build := func(depth, width uint8) (*Library, string, int) {
		l := NewLibrary()
		d := 1 + int(depth)%3
		w := 1 + int(width)%3
		primitives := 0
		var define func(name string, level int) // returns via closure
		define = func(name string, level int) {
			if level >= d {
				l.Define(&Task{Name: name, Concept: "Service"}) //nolint:errcheck
				primitives++
				return
			}
			var subs []string
			for i := 0; i < w; i++ {
				sub := fmt.Sprintf("%s-%d", name, i)
				subs = append(subs, sub)
				define(sub, level+1)
			}
			l.Define(&Task{Name: name, Subtasks: subs, Unordered: level%2 == 1}) //nolint:errcheck
		}
		define("root", 0)
		return l, "root", primitives
	}
	f := func(depth, width uint8) bool {
		l, goal, want := build(depth, width)
		plan, err := l.Plan(goal)
		if err != nil {
			return false
		}
		return len(plan) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: group latency never exceeds the plain sum of step latencies
// and never undercuts the largest single step.
func TestPropertyGroupLatencyBounds(t *testing.T) {
	f := func(lat []uint16, groups []uint8) bool {
		var steps []StepReport
		sum, max := 0.0, 0.0
		for i, l := range lat {
			g := 0
			if i < len(groups) {
				g = int(groups[i]) % 4
			}
			v := float64(l) / 100
			steps = append(steps, StepReport{Latency: v, Group: g})
			sum += v
			if v > max {
				max = v
			}
		}
		got := groupLatency(steps)
		return got <= sum+1e-9 && got >= max-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestProactiveCacheStalenessAfterDeregister pins the cache-hit path's
// staleness contract: a binding whose service deregistered is not served
// from cache (stillAdvertised check at bind time), the step migrates to
// a substitute, and InvalidateCache drops every binding so Prebind
// starts from scratch.
func TestProactiveCacheStalenessAfterDeregister(t *testing.T) {
	brokers, o := testWorld(t, 1, 2)
	e := &Engine{
		Brokers: brokers, Onto: o, Strategy: Proactive,
		Invoke: func(*ontology.Profile, Step) error { return nil },
	}
	plan := minePlan(t)
	if bound := e.Prebind(plan); bound != 3 {
		t.Fatalf("prebound = %d, want 3", bound)
	}
	victim := e.cache["DecisionTreeService"]
	if victim == nil {
		t.Fatal("no cached DecisionTreeService binding")
	}
	brokers[0].Reg.Deregister(victim.Name)

	exec := e.Execute(plan)
	if !exec.Succeeded {
		t.Fatalf("stale cache must fall back to discovery: %+v", exec.Err)
	}
	for _, s := range exec.Steps {
		if s.Service == victim.Name {
			t.Fatalf("step %s served from stale cache binding %s", s.Task, victim.Name)
		}
		if s.Task == "generate-trees" && s.CacheHit {
			t.Fatal("deregistered binding still counted as a cache hit")
		}
	}
	// The fallback re-populates the cache with the substitute it found.
	if repl := e.cache["DecisionTreeService"]; repl == nil || repl.Name == victim.Name {
		t.Fatalf("cache after fallback = %v, want live substitute", repl)
	}

	// InvalidateCache forgets everything: a full Prebind is needed again.
	e.InvalidateCache()
	if len(e.cache) != 0 {
		t.Fatalf("cache not empty after InvalidateCache: %v", e.cache)
	}
	if bound := e.Prebind(plan); bound != 3 {
		t.Fatalf("re-prebind bound %d, want 3", bound)
	}
}
