package composition

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/ontology"
	"pervasivegrid/internal/supervise"
)

// adaptiveWorld builds a broker with per-concept services plus a library
// whose goal has a primary decomposition over "primary-svc" concepts and
// an alternative over "fallback-svc" concepts.
func adaptiveWorld(t *testing.T, perConcept int) (*discovery.Broker, *ontology.Ontology, *Library) {
	t.Helper()
	o := ontology.Pervasive()
	b := discovery.NewBroker("b0", discovery.NewSemanticMatcher(o))
	for _, c := range []string{"IngestService", "MineService", "ApproxService"} {
		for j := 0; j < perConcept; j++ {
			p := &ontology.Profile{Name: fmt.Sprintf("%s-%d", c, j), Concept: c}
			if _, err := b.Reg.Register(p, time.Hour); err != nil {
				t.Fatal(err)
			}
		}
	}
	l := NewLibrary()
	def := func(task *Task) {
		if err := l.Define(task); err != nil {
			t.Fatal(err)
		}
	}
	def(&Task{Name: "analyse", Subtasks: []string{"ingest", "mine"},
		Alternatives: [][]string{{"ingest", "approx"}}})
	def(&Task{Name: "ingest", Concept: "IngestService",
		Inputs: []string{"Raw"}, Outputs: []string{"IngestedData"}})
	def(&Task{Name: "mine", Concept: "MineService",
		Inputs: []string{"IngestedData"}, Outputs: []string{"Result"}})
	def(&Task{Name: "approx", Concept: "ApproxService",
		Inputs: []string{"IngestedData"}, Outputs: []string{"Result"}})
	return b, o, l
}

func stopAdaptive(t *testing.T, a *Adaptive) {
	t.Helper()
	done := make(chan struct{})
	go func() { a.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("adaptive Stop hung")
	}
}

// TestAdaptiveMigratesWithinPlan pins intra-plan migration: a breaker
// signal against the service bound to a remaining step steers that step
// to a substitute (no re-plan needed when the same concept has spares).
func TestAdaptiveMigratesWithinPlan(t *testing.T) {
	b, o, _ := adaptiveWorld(t, 2)
	// No alternatives: with a single plan the executor cannot re-plan,
	// so the signal must be answered by steering within the plan.
	l := NewLibrary()
	for _, task := range []*Task{
		{Name: "analyse", Subtasks: []string{"ingest", "mine"}},
		{Name: "ingest", Concept: "IngestService",
			Inputs: []string{"Raw"}, Outputs: []string{"IngestedData"}},
		{Name: "mine", Concept: "MineService",
			Inputs: []string{"IngestedData"}, Outputs: []string{"Result"}},
	} {
		if err := l.Define(task); err != nil {
			t.Fatal(err)
		}
	}
	invoked := map[string]int{}
	e := &Engine{
		Brokers: []*discovery.Broker{b}, Onto: o,
		Metrics: obs.NewRegistry(),
		Invoke: func(p *ontology.Profile, s Step) error {
			invoked[p.Name]++
			return nil
		},
	}
	a := &Adaptive{Engine: e, Library: l, Goal: "analyse", Initial: []string{"Raw"}}
	a.Start()
	defer stopAdaptive(t, a)

	// Find the top-ranked candidate for the second step and degrade it
	// before the conversation starts.
	plan, err := l.Plan("analyse")
	if err != nil {
		t.Fatal(err)
	}
	var scratch float64
	ms, err := e.discover(plan[1], &scratch)
	if err != nil || len(ms) == 0 {
		t.Fatalf("no candidates for %s: %v", plan[1].Task.Name, err)
	}
	victim := ms[0].Profile.Name
	a.absorb(Signal{Kind: SignalBreakerOpen, Service: victim, At: time.Unix(0, 0)})

	exec := a.Run()
	if !exec.Succeeded {
		t.Fatalf("adaptive run failed: %+v", exec.Err)
	}
	if invoked[victim] != 0 {
		t.Fatalf("degraded service %s was invoked %d times", victim, invoked[victim])
	}
	if exec.Migrations == 0 {
		t.Fatal("expected a migration to the substitute service")
	}
	for svc, n := range invoked {
		if n > 1 {
			t.Fatalf("service %s invoked %d times (completed work redone)", svc, n)
		}
	}
}

// TestAdaptiveReplansWhereStaticAbandons is the tentpole contract: every
// service of a mid-plan concept dies; the static engine abandons the
// conversation, the adaptive executor re-plans onto the alternative
// decomposition, keeps the completed first step, and finishes.
func TestAdaptiveReplansWhereStaticAbandons(t *testing.T) {
	deadConcept := "MineService"
	invoke := func(p *ontology.Profile, s Step) error {
		if p.Concept == deadConcept {
			return errors.New("provider crashed")
		}
		return nil
	}

	// Static: abandons once the concept's candidates are exhausted.
	bs, os, ls := adaptiveWorld(t, 1)
	static := &Engine{Brokers: []*discovery.Broker{bs}, Onto: os, Invoke: invoke}
	plan, err := ls.Plan("analyse")
	if err != nil {
		t.Fatal(err)
	}
	if sexec := static.Execute(plan); sexec.Succeeded || !sexec.Abandoned {
		t.Fatalf("static execution should abandon: %+v", sexec)
	}

	// Adaptive: same world, same invoker, re-plans and completes.
	b, o, l := adaptiveWorld(t, 1)
	invoked := map[string]int{}
	e := &Engine{
		Brokers: []*discovery.Broker{b}, Onto: o,
		Metrics: obs.NewRegistry(),
		Invoke: func(p *ontology.Profile, s Step) error {
			if err := invoke(p, s); err != nil {
				return err
			}
			invoked[s.Task.Name]++
			return nil
		},
	}
	events := obs.NewEventLog(16)
	a := &Adaptive{Engine: e, Library: l, Goal: "analyse",
		Initial: []string{"Raw"}, Events: events}
	a.Start()
	defer stopAdaptive(t, a)

	exec := a.Run()
	if !exec.Succeeded {
		t.Fatalf("adaptive run failed: %+v", exec.Err)
	}
	if exec.Replans == 0 {
		t.Fatal("expected at least one re-plan")
	}
	if exec.Abandoned {
		t.Fatal("completed conversation marked abandoned")
	}
	for task, n := range invoked {
		if n > 1 {
			t.Fatalf("step %s executed %d times (completed work redone)", task, n)
		}
	}
	if invoked["ingest"] != 1 || invoked["approx"] != 1 {
		t.Fatalf("invocations = %v, want ingest and approx exactly once", invoked)
	}
	// Metrics and wide events recorded the adaptation.
	if got := e.Metrics.Counter("composition_replans_total").Value(); got == 0 {
		t.Fatal("composition_replans_total not incremented")
	}
	evs := events.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d wide events, want 1", len(evs))
	}
	var sawReplan, sawStep bool
	for _, ph := range evs[0].Phases {
		switch {
		case ph.Name == "replan":
			sawReplan = true
		case ph.Name == "step:ingest":
			sawStep = true
		}
	}
	if !sawReplan || !sawStep {
		t.Fatalf("wide event phases missing replan/step marks: %+v", evs[0].Phases)
	}
}

// TestAdaptiveProactiveReplanOnSignal covers the watch-loop path: a
// breaker-open signal delivered through Degrade (absorbed by the
// supervised watch goroutine) against the only provider of a remaining
// step's concept re-plans before that step ever fails.
func TestAdaptiveProactiveReplanOnSignal(t *testing.T) {
	b, o, l := adaptiveWorld(t, 1)
	invoked := map[string]int{}
	e := &Engine{
		Brokers: []*discovery.Broker{b}, Onto: o,
		Metrics: obs.NewRegistry(),
		Invoke: func(p *ontology.Profile, s Step) error {
			invoked[p.Name]++
			return nil
		},
	}
	a := &Adaptive{Engine: e, Library: l, Goal: "analyse", Initial: []string{"Raw"}}
	a.Start()
	defer stopAdaptive(t, a)

	a.Degrade(Signal{Kind: SignalHealth, Service: "MineService-0",
		Detail: "monitor verdict suspect"})
	deadline := time.Now().Add(5 * time.Second)
	for {
		a.mu.Lock()
		n := len(a.degraded)
		a.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch loop never absorbed the signal")
		}
		time.Sleep(time.Millisecond)
	}

	exec := a.Run()
	if !exec.Succeeded {
		t.Fatalf("adaptive run failed: %+v", exec.Err)
	}
	if exec.Replans == 0 {
		t.Fatal("expected a proactive re-plan from the health signal")
	}
	if invoked["MineService-0"] != 0 {
		t.Fatal("degraded provider was still invoked")
	}
	if got := e.Metrics.Counter("composition_signals_total", "kind", string(SignalHealth)).Value(); got != 1 {
		t.Fatalf("composition_signals_total{health} = %v, want 1", got)
	}
}

// TestAdaptiveWatchBreakers wires a real BreakerSet: failures opening a
// circuit mid-run produce the signal without any manual Degrade call.
func TestAdaptiveWatchBreakers(t *testing.T) {
	b, o, l := adaptiveWorld(t, 2)
	clk := obs.NewFakeClock()
	bset := supervise.NewBreakerSet(supervise.BreakerPolicy{
		FailureThreshold: 1, OpenFor: time.Hour, Clock: clk,
	})
	failing := map[string]bool{"MineService-0": true, "MineService-1": false}
	e := &Engine{
		Brokers: []*discovery.Broker{b}, Onto: o, Breakers: bset,
		Metrics: obs.NewRegistry(),
		Invoke: func(p *ontology.Profile, s Step) error {
			if failing[p.Name] {
				return errors.New("crashed")
			}
			return nil
		},
	}
	a := &Adaptive{Engine: e, Library: l, Goal: "analyse", Initial: []string{"Raw"}}
	a.Start()
	defer stopAdaptive(t, a)
	a.WatchBreakers(bset)

	exec := a.Run()
	if !exec.Succeeded {
		t.Fatalf("adaptive run failed: %+v", exec.Err)
	}
	// The failing provider opened its breaker (threshold 1); the signal
	// flowed through OnTransition -> Degrade. It may land after the
	// rebind already saved the step, but it must be counted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if e.Metrics.Counter("composition_signals_total", "kind", string(SignalBreakerOpen)).Value() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker transition never surfaced as a signal")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdaptiveConfirmsDeadOnDownSignal: a Dead signal (Down verdict)
// withdraws the service's advertisement via Engine.ConfirmDead.
func TestAdaptiveConfirmsDeadOnDownSignal(t *testing.T) {
	b, o, l := adaptiveWorld(t, 2)
	e := &Engine{
		Brokers: []*discovery.Broker{b}, Onto: o,
		Invoke: func(p *ontology.Profile, s Step) error { return nil },
	}
	a := &Adaptive{Engine: e, Library: l, Goal: "analyse", Initial: []string{"Raw"}}
	a.Start()
	defer stopAdaptive(t, a)
	a.absorb(Signal{Kind: SignalHealth, Service: "IngestService-0", Dead: true})

	exec := a.Run()
	if !exec.Succeeded {
		t.Fatalf("adaptive run failed: %+v", exec.Err)
	}
	for _, p := range b.Reg.Profiles() {
		if p.Name == "IngestService-0" {
			t.Fatal("Down-signalled service still advertised after run")
		}
	}
}

// TestAdaptiveHonorsMaxReplans: with re-planning disabled the adaptive
// executor degenerates to static behaviour and abandons.
func TestAdaptiveHonorsMaxReplans(t *testing.T) {
	b, o, l := adaptiveWorld(t, 1)
	e := &Engine{
		Brokers: []*discovery.Broker{b}, Onto: o,
		Invoke: func(p *ontology.Profile, s Step) error {
			if p.Concept == "MineService" {
				return errors.New("crashed")
			}
			return nil
		},
	}
	a := &Adaptive{Engine: e, Library: l, Goal: "analyse",
		Initial: []string{"Raw"}, MaxReplans: -1}
	a.Start()
	defer stopAdaptive(t, a)
	exec := a.Run()
	if exec.Succeeded || !exec.Abandoned {
		t.Fatalf("MaxReplans<0 should abandon like static: %+v", exec)
	}
	if exec.Replans != 0 {
		t.Fatalf("replans = %d with re-planning disabled", exec.Replans)
	}
}

// TestAdaptiveCostSignal: an invoker slower than CostThreshold (measured
// on the executor's clock) raises a cost signal against the service.
func TestAdaptiveCostSignal(t *testing.T) {
	b, o, l := adaptiveWorld(t, 2)
	clk := obs.NewFakeClock()
	e := &Engine{
		Brokers: []*discovery.Broker{b}, Onto: o,
		Metrics: obs.NewRegistry(),
		Invoke: func(p *ontology.Profile, s Step) error {
			if p.Name == "IngestService-0" {
				clk.Advance(300 * time.Millisecond) // slow provider
			}
			return nil
		},
	}
	a := &Adaptive{Engine: e, Library: l, Goal: "analyse",
		Initial: []string{"Raw"}, Clock: clk, CostThreshold: 100 * time.Millisecond}
	a.Start()
	defer stopAdaptive(t, a)

	exec := a.Run()
	if !exec.Succeeded {
		t.Fatalf("adaptive run failed: %+v", exec.Err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if e.Metrics.Counter("composition_signals_total", "kind", string(SignalCost)).Value() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow invocation never raised a cost signal")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHandoffRoundTrip pins the migration snapshot format.
func TestHandoffRoundTrip(t *testing.T) {
	h := NewHandoff([]string{"Raw"})
	h.Complete(Step{Task: &Task{Name: "ingest", Outputs: []string{"Cooked"}}, Group: 2},
		StepReport{Service: "svc-1", Latency: 0.5})
	data, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeHandoff(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Initial) != 1 || back.Initial[0] != "Raw" {
		t.Fatalf("initial = %v", back.Initial)
	}
	c, ok := back.Completed["ingest"]
	if !ok || c.Service != "svc-1" || c.Group != 2 || len(c.Outputs) != 1 {
		t.Fatalf("completed = %+v", back.Completed)
	}
	avail := back.Available()
	if len(avail) != 2 {
		t.Fatalf("available = %v", avail)
	}
}

// TestAdaptiveResumeSkipsCompleted: a conversation resumed from an
// encoded handoff never re-executes the carried-forward steps.
func TestAdaptiveResumeSkipsCompleted(t *testing.T) {
	b, o, l := adaptiveWorld(t, 1)
	hand := NewHandoff([]string{"Raw"})
	plan, err := l.Plan("analyse")
	if err != nil {
		t.Fatal(err)
	}
	hand.Complete(plan[0], StepReport{Service: "IngestService-0", OK: true})
	data, err := hand.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := DecodeHandoff(data)
	if err != nil {
		t.Fatal(err)
	}

	invoked := map[string]int{}
	e := &Engine{
		Brokers: []*discovery.Broker{b}, Onto: o,
		Invoke: func(p *ontology.Profile, s Step) error {
			invoked[s.Task.Name]++
			return nil
		},
	}
	a := &Adaptive{Engine: e, Library: l, Goal: "analyse", Resume: resumed}
	a.Start()
	defer stopAdaptive(t, a)
	exec := a.Run()
	if !exec.Succeeded {
		t.Fatalf("resumed run failed: %+v", exec.Err)
	}
	if invoked["ingest"] != 0 {
		t.Fatal("resumed conversation redid the completed ingest step")
	}
	if invoked["mine"] != 1 {
		t.Fatalf("invocations = %v, want just mine", invoked)
	}
}
