// Package composition implements service composition for the pervasive
// grid: an HTN-style task library that decomposes complex requests into
// primitive service invocations (the paper's decision-tree-ensemble example
// decomposes into generate-trees → Fourier spectra → dominant components →
// combine), and an execution engine that binds each step to discovered
// services with fault tolerance, re-binding, graceful degradation, and
// reactive or proactive binding strategies, under centralized or
// distributed coordination.
package composition

import (
	"fmt"
	"sort"

	"pervasivegrid/internal/ontology"
)

// Task is a node in the HTN library: primitive tasks name a service concept
// to discover and invoke; compound tasks decompose into an ordered list of
// subtask names.
type Task struct {
	// Name uniquely identifies the task in its library.
	Name string
	// Concept is the service concept a primitive task binds to; empty
	// for compound tasks.
	Concept string
	// Inputs and Outputs are data concepts consumed/produced (primitive
	// tasks only).
	Inputs  []string
	Outputs []string
	// Subtasks is the preferred decomposition of a compound task, ordered
	// unless Unordered is set.
	Subtasks []string
	// Alternatives are ranked fallback decompositions for a compound
	// task: Alternatives[0] is tried when the primary Subtasks
	// decomposition cannot be executed (its bound services degraded),
	// Alternatives[1] after that, and so on. Every alternative shares the
	// task's Unordered flag.
	Alternatives [][]string
	// Unordered marks a compound task whose subtasks have no mutual data
	// dependencies and may execute concurrently; the engine models their
	// combined latency as the maximum rather than the sum.
	Unordered bool
	// Optional marks a step whose failure degrades the composite result
	// instead of failing it — the paper's graceful degradation.
	Optional bool
}

// Primitive reports whether the task binds directly to a service.
func (t *Task) Primitive() bool { return len(t.Subtasks) == 0 }

// Methods returns how many ranked decompositions a compound task carries
// (0 for primitives).
func (t *Task) Methods() int {
	if t.Primitive() {
		return 0
	}
	return 1 + len(t.Alternatives)
}

// Decomposition returns the i-th ranked decomposition: 0 is the primary
// Subtasks list, i>0 indexes Alternatives[i-1].
func (t *Task) Decomposition(i int) []string {
	if i <= 0 {
		return t.Subtasks
	}
	return t.Alternatives[i-1]
}

// Library is a named collection of task definitions.
type Library struct {
	tasks map[string]*Task
}

// NewLibrary returns an empty library.
func NewLibrary() *Library { return &Library{tasks: map[string]*Task{}} }

// Define adds a task. Primitive tasks need a concept; compound tasks need
// subtasks. Redefinition is an error.
func (l *Library) Define(t *Task) error {
	if t == nil || t.Name == "" {
		return fmt.Errorf("composition: task needs a name")
	}
	if _, ok := l.tasks[t.Name]; ok {
		return fmt.Errorf("composition: task %q already defined", t.Name)
	}
	if t.Primitive() && t.Concept == "" {
		return fmt.Errorf("composition: primitive task %q needs a concept", t.Name)
	}
	if !t.Primitive() && t.Concept != "" {
		return fmt.Errorf("composition: compound task %q must not name a concept", t.Name)
	}
	if t.Primitive() && len(t.Alternatives) > 0 {
		return fmt.Errorf("composition: primitive task %q cannot carry alternative decompositions", t.Name)
	}
	for i, alt := range t.Alternatives {
		if len(alt) == 0 {
			return fmt.Errorf("composition: task %q alternative %d is empty", t.Name, i)
		}
	}
	l.tasks[t.Name] = t
	return nil
}

// Task looks a task up by name.
func (l *Library) Task(name string) (*Task, bool) {
	t, ok := l.tasks[name]
	return t, ok
}

// Step is one primitive step of an expanded plan.
type Step struct {
	Task *Task
	// Path records the compound tasks expanded to reach this step,
	// outermost first.
	Path []string
	// Group identifies the parallel group the step belongs to: steps
	// sharing a group came from the same unordered decomposition and may
	// run concurrently. Steps in singleton groups are sequential.
	Group int
}

// Plan expands a goal task depth-first into its ordered primitive steps,
// using every compound task's primary decomposition. Undefined subtasks
// and decomposition cycles are errors.
func (l *Library) Plan(goal string) ([]Step, error) {
	return l.planWith(goal, nil)
}

// planWith expands goal using method[name] to pick each compound task's
// decomposition (0 / absent = primary Subtasks, i>0 = Alternatives[i-1]).
func (l *Library) planWith(goal string, method map[string]int) ([]Step, error) {
	var out []Step
	visiting := map[string]bool{}
	nextGroup := 0
	// expand appends name's primitive steps; group < 0 means "allocate a
	// fresh group per primitive" (sequential context), group >= 0 pins
	// every primitive beneath an unordered parent to that group.
	var expand func(name string, path []string, group int) error
	expand = func(name string, path []string, group int) error {
		t, ok := l.tasks[name]
		if !ok {
			return fmt.Errorf("composition: task %q not defined (via %v)", name, path)
		}
		if visiting[name] {
			return fmt.Errorf("composition: decomposition cycle at %q (via %v)", name, path)
		}
		if t.Primitive() {
			g := group
			if g < 0 {
				g = nextGroup
				nextGroup++
			}
			out = append(out, Step{Task: t, Path: append([]string(nil), path...), Group: g})
			return nil
		}
		m := method[name]
		if m >= t.Methods() {
			return fmt.Errorf("composition: task %q has no decomposition %d", name, m)
		}
		visiting[name] = true
		defer delete(visiting, name)
		childGroup := group
		if t.Unordered && childGroup < 0 {
			childGroup = nextGroup
			nextGroup++
		}
		for _, sub := range t.Decomposition(m) {
			if err := expand(sub, append(path, name), childGroup); err != nil {
				return err
			}
		}
		return nil
	}
	if err := expand(goal, nil, -1); err != nil {
		return nil, err
	}
	return out, nil
}

// DefaultMaxPlans bounds PlanRanked's enumeration when the caller passes
// max <= 0.
const DefaultMaxPlans = 8

// PlanRanked expands goal into up to max distinct plans, ordered by
// preference: the all-primary plan first, then plans substituting
// alternative decompositions, cheapest deviations first (fewest and
// lowest-ranked alternatives; ties broken by task name). Plans whose
// decomposition choice fails to expand are skipped; duplicate step
// sequences (an alternative on a task the goal never reaches) are
// deduplicated. An error is returned only when no choice yields a plan.
func (l *Library) PlanRanked(goal string, max int) ([][]Step, error) {
	if max <= 0 {
		max = DefaultMaxPlans
	}
	// Compound tasks carrying alternatives, sorted for deterministic
	// enumeration order.
	var names []string
	for name, t := range l.tasks {
		if !t.Primitive() && len(t.Alternatives) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	counts := make([]int, len(names))
	maxSum := 0
	for i, n := range names {
		counts[i] = l.tasks[n].Methods()
		maxSum += counts[i] - 1
	}

	var plans [][]Step
	seen := map[string]bool{}
	var firstErr error
	vec := make([]int, len(names))
	emit := func() {
		method := make(map[string]int, len(names))
		for j, n := range names {
			method[n] = vec[j]
		}
		steps, err := l.planWith(goal, method)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		sig := planSignature(steps)
		if seen[sig] {
			return
		}
		seen[sig] = true
		plans = append(plans, steps)
	}
	// Enumerate choice vectors in order of increasing total deviation
	// from the primary plan, lexicographic within a band.
	for s := 0; s <= maxSum && len(plans) < max; s++ {
		var rec func(i, remaining int)
		rec = func(i, remaining int) {
			if len(plans) >= max {
				return
			}
			if i == len(names) {
				if remaining == 0 {
					emit()
				}
				return
			}
			limit := counts[i] - 1
			if limit > remaining {
				limit = remaining
			}
			for v := 0; v <= limit; v++ {
				vec[i] = v
				rec(i+1, remaining-v)
			}
			vec[i] = 0
		}
		rec(0, s)
	}
	if len(plans) == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("composition: no plan for goal %q", goal)
	}
	return plans, nil
}

// planSignature fingerprints a plan for deduplication: the ordered task
// names with their parallel-group structure.
func planSignature(plan []Step) string {
	sig := make([]byte, 0, 16*len(plan))
	for _, s := range plan {
		sig = append(sig, s.Task.Name...)
		sig = append(sig, '#')
		sig = fmt.Appendf(sig, "%d", s.Group)
		sig = append(sig, ';')
	}
	return string(sig)
}

// ValidateDataflow checks that every step's inputs are produced by earlier
// steps or supplied initially, using ontology subsumption (a step wanting a
// SensorService input accepts a TemperatureSensor output).
func ValidateDataflow(plan []Step, initial []string, o *ontology.Ontology) error {
	available := append([]string(nil), initial...)
	provides := func(want string) bool {
		for _, have := range available {
			if have == want || o.IsA(have, want) {
				return true
			}
		}
		return false
	}
	for i, s := range plan {
		for _, in := range s.Task.Inputs {
			if !provides(in) {
				return fmt.Errorf("composition: step %d (%s) needs input %q not yet produced", i, s.Task.Name, in)
			}
		}
		available = append(available, s.Task.Outputs...)
	}
	return nil
}

// StreamMiningLibrary builds the paper's worked decomposition: "generating
// decision trees, computing their Fourier spectra, choosing the dominant
// components, and combining them to create a single tree".
func StreamMiningLibrary() *Library {
	l := NewLibrary()
	must := func(t *Task) {
		if err := l.Define(t); err != nil {
			panic(err) // static definitions; failure is a programming error
		}
	}
	must(&Task{
		Name: "mine-stream", Subtasks: []string{
			"generate-trees", "compute-spectra", "choose-dominant", "combine-tree",
		},
	})
	must(&Task{
		Name: "generate-trees", Concept: "DecisionTreeService",
		Inputs: []string{"SensorService"}, Outputs: []string{"DecisionTreeService"},
	})
	must(&Task{
		Name: "compute-spectra", Concept: "FourierSpectrumService",
		Inputs: []string{"DecisionTreeService"}, Outputs: []string{"FourierSpectrumService"},
	})
	must(&Task{
		Name: "choose-dominant", Concept: "DataMiningService",
		Inputs: []string{"FourierSpectrumService"}, Outputs: []string{"DataMiningService"},
	})
	must(&Task{
		Name: "combine-tree", Concept: "DecisionTreeService",
		Inputs: []string{"DataMiningService"}, Outputs: []string{"DecisionTreeService"},
	})
	return l
}
