package composition

import (
	"strings"
	"testing"

	"pervasivegrid/internal/ontology"
)

// altLibrary builds a goal with two ranked fallbacks: a one-step fast
// path, a two-step pipeline, and a degraded approximation.
func altLibrary(t *testing.T) *Library {
	t.Helper()
	l := NewLibrary()
	def := func(task *Task) {
		if err := l.Define(task); err != nil {
			t.Fatal(err)
		}
	}
	def(&Task{Name: "goal", Subtasks: []string{"fast"},
		Alternatives: [][]string{{"slow"}, {"degraded"}}})
	def(&Task{Name: "fast", Concept: "FastService",
		Inputs: []string{"Raw"}, Outputs: []string{"Result"}})
	def(&Task{Name: "slow", Subtasks: []string{"prep", "finish"}})
	def(&Task{Name: "prep", Concept: "PrepService",
		Inputs: []string{"Raw"}, Outputs: []string{"Prepped"}})
	def(&Task{Name: "finish", Concept: "FinishService",
		Inputs: []string{"Prepped"}, Outputs: []string{"Result"}})
	def(&Task{Name: "degraded", Concept: "ApproxService",
		Inputs: []string{"Raw"}, Outputs: []string{"Approx"}})
	return l
}

func planNames(plan []Step) string {
	names := make([]string, len(plan))
	for i, s := range plan {
		names[i] = s.Task.Name
	}
	return strings.Join(names, ",")
}

func TestDefineRejectsBadAlternatives(t *testing.T) {
	l := NewLibrary()
	err := l.Define(&Task{Name: "p", Concept: "C", Alternatives: [][]string{{"x"}}})
	if err == nil {
		t.Fatal("primitive task with alternatives accepted")
	}
	err = l.Define(&Task{Name: "c", Subtasks: []string{"x"}, Alternatives: [][]string{{}}})
	if err == nil {
		t.Fatal("empty alternative decomposition accepted")
	}
}

func TestPlanRankedOrdersAlternatives(t *testing.T) {
	l := altLibrary(t)
	plans, err := l.PlanRanked("goal", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fast", "prep,finish", "degraded"}
	if len(plans) != len(want) {
		t.Fatalf("got %d plans, want %d", len(plans), len(want))
	}
	for i, w := range want {
		if got := planNames(plans[i]); got != w {
			t.Fatalf("plan[%d] = %q, want %q", i, got, w)
		}
	}
	// Plan (the single-plan API) must still return the primary.
	primary, err := l.Plan("goal")
	if err != nil {
		t.Fatal(err)
	}
	if planNames(primary) != want[0] {
		t.Fatalf("Plan = %q, want primary %q", planNames(primary), want[0])
	}
}

func TestPlanRankedCapsAndDedupes(t *testing.T) {
	l := altLibrary(t)
	// An alternative-bearing task the goal never reaches must not
	// produce duplicate plans.
	if err := l.Define(&Task{Name: "orphan", Subtasks: []string{"fast"},
		Alternatives: [][]string{{"degraded"}}}); err != nil {
		t.Fatal(err)
	}
	plans, err := l.PlanRanked("goal", 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range plans {
		sig := planNames(p)
		if seen[sig] {
			t.Fatalf("duplicate plan %q", sig)
		}
		seen[sig] = true
	}
	if len(plans) != 3 {
		t.Fatalf("got %d plans, want 3 distinct", len(plans))
	}
	capped, err := l.PlanRanked("goal", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 2 {
		t.Fatalf("max=2 returned %d plans", len(capped))
	}
}

func TestPlanRankedSkipsBrokenChoices(t *testing.T) {
	l := NewLibrary()
	def := func(task *Task) {
		if err := l.Define(task); err != nil {
			t.Fatal(err)
		}
	}
	def(&Task{Name: "goal", Subtasks: []string{"missing-task"},
		Alternatives: [][]string{{"ok"}}})
	def(&Task{Name: "ok", Concept: "OkService"})
	plans, err := l.PlanRanked("goal", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || planNames(plans[0]) != "ok" {
		t.Fatalf("plans = %v, want just the working alternative", plans)
	}
	// When every choice is broken, the first expansion error surfaces.
	l2 := NewLibrary()
	if err := l2.Define(&Task{Name: "goal", Subtasks: []string{"nope"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.PlanRanked("goal", 0); err == nil {
		t.Fatal("PlanRanked succeeded with no expandable choice")
	}
}

// TestValidateDataflowWithAlternatives checks each ranked plan
// independently satisfies (or fails) dataflow: the two-step fallback
// threads its intermediate product, and stripping the producing step
// breaks it.
func TestValidateDataflowWithAlternatives(t *testing.T) {
	o := ontology.Pervasive()
	l := altLibrary(t)
	plans, err := l.PlanRanked("goal", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range plans {
		if err := ValidateDataflow(p, []string{"Raw"}, o); err != nil {
			t.Fatalf("plan[%d] %q failed dataflow with Raw supplied: %v", i, planNames(p), err)
		}
		if err := ValidateDataflow(p, nil, o); err == nil {
			t.Fatalf("plan[%d] %q validated without its Raw input", i, planNames(p))
		}
	}
	// An alternative that drops the producing step must fail validation:
	// finish alone needs Prepped, which only prep produces.
	l2 := NewLibrary()
	def := func(task *Task) {
		if err := l2.Define(task); err != nil {
			t.Fatal(err)
		}
	}
	def(&Task{Name: "goal", Subtasks: []string{"prep", "finish"},
		Alternatives: [][]string{{"finish"}}})
	def(&Task{Name: "prep", Concept: "PrepService",
		Inputs: []string{"Raw"}, Outputs: []string{"Prepped"}})
	def(&Task{Name: "finish", Concept: "FinishService",
		Inputs: []string{"Prepped"}, Outputs: []string{"Result"}})
	plans2, err := l2.PlanRanked("goal", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans2) != 2 {
		t.Fatalf("got %d plans, want 2", len(plans2))
	}
	if err := ValidateDataflow(plans2[0], []string{"Raw"}, o); err != nil {
		t.Fatalf("primary plan failed dataflow: %v", err)
	}
	if err := ValidateDataflow(plans2[1], []string{"Raw"}, o); err == nil {
		t.Fatal("alternative skipping the producer passed dataflow validation")
	}
}
