package composition

import (
	"testing"

	"pervasivegrid/internal/ontology"
)

func TestLibraryTaskLookup(t *testing.T) {
	l := NewLibrary()
	if err := l.Define(&Task{Name: "p", Concept: "X"}); err != nil {
		t.Fatal(err)
	}
	if task, ok := l.Task("p"); !ok || task.Name != "p" || task.Concept != "X" {
		t.Fatalf("lookup = %+v %v", task, ok)
	}
	if _, ok := l.Task("ghost"); ok {
		t.Fatal("undefined task should not resolve")
	}
}

// InvalidateCache must drop every proactive binding: the next execution
// goes back through discovery (no cache hits) but still succeeds.
func TestInvalidateCacheForcesRediscovery(t *testing.T) {
	brokers, o := testWorld(t, 1, 2)
	e := &Engine{
		Brokers: brokers, Onto: o, Strategy: Proactive,
		Invoke: func(*ontology.Profile, Step) error { return nil },
	}
	plan := minePlan(t)
	if bound := e.Prebind(plan); bound == 0 {
		t.Fatal("prebind bound nothing")
	}
	e.InvalidateCache()
	exec := e.Execute(plan)
	if !exec.Succeeded {
		t.Fatalf("execution after invalidation failed: %+v", exec.Err)
	}
	// A proactive engine refills its cache as it executes, so a concept's
	// repeat uses may hit again — but the first use of each concept must
	// have gone back through discovery.
	seen := map[string]bool{}
	for i, s := range exec.Steps {
		concept := plan[i].Task.Concept
		if !seen[concept] && s.CacheHit {
			t.Fatalf("step %s hit a cache that was invalidated", s.Task)
		}
		seen[concept] = true
	}
}
