package composition

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/ontology"
	"pervasivegrid/internal/supervise"
)

// SignalKind identifies a degradation signal's source.
type SignalKind string

// Degradation signal sources.
const (
	// SignalBreakerOpen fires when a service's circuit breaker opens.
	SignalBreakerOpen SignalKind = "breaker-open"
	// SignalHealth fires when the fleet monitor's verdict for a node
	// hosting a bound service decays to Suspect or Down.
	SignalHealth SignalKind = "health"
	// SignalCost fires when a service's observed invocation cost crosses
	// the configured threshold.
	SignalCost SignalKind = "cost"
)

// Signal is one degradation report against a service.
type Signal struct {
	Kind    SignalKind
	Service string
	// Dead marks the service confirmed dead (a Down health verdict): the
	// executor additionally withdraws its advertisements and proactive
	// bindings via Engine.ConfirmDead.
	Dead bool
	// At is when the signal was observed (stamped by Degrade when zero);
	// the gap to the re-plan that answers it is the adaptation latency.
	At time.Time
	// Detail carries a human-readable cause for events and logs.
	Detail string
}

// CompletedStep is one finished step's carried-forward record: enough to
// skip the step after a migration and still credit its outputs to the
// dataflow of the replacement plan.
type CompletedStep struct {
	Task    string   `json:"task"`
	Service string   `json:"service"`
	Outputs []string `json:"outputs,omitempty"`
	Group   int      `json:"group"`
	Latency float64  `json:"latency"`
}

// Handoff is the conversation's migration state, in the style of
// agent.Checkpointer snapshots: the initially-available data concepts
// plus every completed step with its outputs. A re-planned or migrated
// conversation resumes from a Handoff so completed work is never redone,
// and Encode/Decode let it cross a process boundary as JSON.
type Handoff struct {
	Initial   []string                 `json:"initial,omitempty"`
	Completed map[string]CompletedStep `json:"completed,omitempty"`
}

// NewHandoff starts an empty handoff with the given initial data.
func NewHandoff(initial []string) *Handoff {
	return &Handoff{Initial: append([]string(nil), initial...), Completed: map[string]CompletedStep{}}
}

// Complete records a finished step.
func (h *Handoff) Complete(step Step, rep StepReport) {
	if h.Completed == nil {
		h.Completed = map[string]CompletedStep{}
	}
	h.Completed[step.Task.Name] = CompletedStep{
		Task:    step.Task.Name,
		Service: rep.Service,
		Outputs: append([]string(nil), step.Task.Outputs...),
		Group:   step.Group,
		Latency: rep.Latency,
	}
}

// Available returns the data concepts the conversation has produced so
// far (initial + every completed step's outputs) — the initial set a
// candidate replacement plan's remaining steps must validate against.
func (h *Handoff) Available() []string {
	out := append([]string(nil), h.Initial...)
	for _, c := range h.Completed {
		out = append(out, c.Outputs...)
	}
	return out
}

// Encode serialises the handoff for migration across a process boundary.
func (h *Handoff) Encode() ([]byte, error) { return json.Marshal(h) }

// DecodeHandoff restores an encoded handoff.
func DecodeHandoff(data []byte) (*Handoff, error) {
	h := &Handoff{}
	if err := json.Unmarshal(data, h); err != nil {
		return nil, err
	}
	if h.Completed == nil {
		h.Completed = map[string]CompletedStep{}
	}
	return h, nil
}

// Adaptive executes a goal with mid-conversation re-planning: it
// subscribes to degradation signals (breaker transitions, health
// verdicts, observed cost) and, when one fires against a service bound
// to a remaining or in-flight step, re-plans the rest of the HTN via the
// library's alternative decompositions and migrates the conversation to
// substitute services, carrying completed step outputs forward in a
// Handoff so finished work is never redone.
type Adaptive struct {
	// Engine executes individual steps; required. Its Metrics registry
	// (if any) also receives the adaptive counters.
	Engine *Engine
	// Library plans the goal; required (it holds the alternatives).
	Library *Library
	// Goal is the task to achieve.
	Goal string
	// Initial is the data available at conversation start.
	Initial []string
	// Resume, when set, continues a migrated conversation: its completed
	// steps are skipped and their outputs credited.
	Resume *Handoff
	// Clock times signals, steps, and phases (default obs.Real).
	Clock obs.Clock
	// Events, when set, receives one wide event per conversation with
	// plan/step/replan phases.
	Events *obs.EventLog
	// Node labels wide events (default "composer").
	Node string
	// MaxReplans bounds re-plans per conversation (default 3; negative =
	// none, reproducing the static engine).
	MaxReplans int
	// MaxPlans caps ranked-plan enumeration (default DefaultMaxPlans).
	MaxPlans int
	// CostThreshold, when positive, fires a SignalCost against any
	// service whose observed invocation wall time exceeds it.
	CostThreshold time.Duration
	// SignalBuffer sizes the signal queue (default 64). Enqueue is
	// non-blocking: signals beyond a full buffer are counted and
	// dropped, never stalling a breaker or monitor callback.
	SignalBuffer int

	startOnce sync.Once
	stopOnce  sync.Once
	signals   chan Signal
	quit      chan struct{}
	watch     *supervise.Proc
	cancels   []func()

	mu       sync.Mutex
	degraded map[string]Signal // service -> most recent signal
	dirty    bool              // unabsorbed degradation since last check
	phases   []phaseMark       // wide-event phases for the current run
}

func (a *Adaptive) clock() obs.Clock {
	if a.Clock != nil {
		return a.Clock
	}
	return obs.Real
}

func (a *Adaptive) metrics() *obs.Registry {
	if a.Engine != nil {
		return a.Engine.Metrics
	}
	return nil
}

// Start launches the watch loop (a supervise.Spawn'd goroutine draining
// degradation signals into the avoid set) and arms cost observation by
// wrapping the engine's invoker. Run calls it implicitly; calling it
// early lets signals accumulate before the conversation begins.
func (a *Adaptive) Start() {
	a.startOnce.Do(func() {
		buf := a.SignalBuffer
		if buf <= 0 {
			buf = 64
		}
		a.signals = make(chan Signal, buf)
		a.quit = make(chan struct{})
		a.degraded = map[string]Signal{}
		if a.CostThreshold > 0 && a.Engine != nil && a.Engine.Invoke != nil {
			inner := a.Engine.Invoke
			clk := a.clock()
			threshold := a.CostThreshold
			a.Engine.Invoke = func(p *ontology.Profile, step Step) error {
				start := clk.Now()
				err := inner(p, step)
				if elapsed := clk.Now().Sub(start); elapsed > threshold {
					a.Degrade(Signal{Kind: SignalCost, Service: p.Name, At: start,
						Detail: fmt.Sprintf("invoke took %v (threshold %v)", elapsed, threshold)})
				}
				return err
			}
		}
		a.watch = supervise.Spawn("composition-adaptive-watch", a.watchLoop)
	})
}

// Stop halts the watch loop and detaches every subscription installed
// through WatchBreakers/WatchHealth-style cancels.
func (a *Adaptive) Stop() {
	for _, cancel := range a.cancels {
		cancel()
	}
	a.cancels = nil
	a.stopOnce.Do(func() {
		if a.quit != nil {
			close(a.quit)
		}
	})
	if a.watch != nil {
		<-a.watch.Done()
	}
}

// watchLoop drains degradation signals into the avoid set. It re-arms a
// heartbeat on the executor's clock so a FakeClock-driven test can step
// it deterministically and an idle loop still observes Stop promptly.
func (a *Adaptive) watchLoop() {
	clk := a.clock()
	for {
		select {
		case sig := <-a.signals:
			a.absorb(sig)
		case <-clk.After(time.Second):
			// Heartbeat: nothing to do, re-arm.
		case <-a.quit:
			return
		}
	}
}

// absorb folds one signal into the degraded set.
func (a *Adaptive) absorb(sig Signal) {
	a.mu.Lock()
	prev, known := a.degraded[sig.Service]
	if !known || !prev.Dead { // a Dead verdict is never downgraded
		a.degraded[sig.Service] = sig
	}
	a.dirty = true
	a.mu.Unlock()
	if reg := a.metrics(); reg != nil {
		reg.Counter("composition_signals_total", "kind", string(sig.Kind)).Inc()
	}
}

// Degrade reports a degradation signal against a service. Non-blocking
// and safe from any goroutine — including breaker onChange hooks (which
// run under the breaker's mutex) and monitor health callbacks: when the
// buffer is full the signal is dropped and counted, never stalling the
// caller.
func (a *Adaptive) Degrade(sig Signal) {
	a.Start()
	if sig.At.IsZero() {
		sig.At = a.clock().Now()
	}
	select {
	case a.signals <- sig:
	default:
		if reg := a.metrics(); reg != nil {
			reg.Counter("composition_signals_dropped_total").Inc()
		}
	}
}

// WatchBreakers subscribes the executor to a breaker set: any breaker
// opening (failure-driven or health-forced) fires a SignalBreakerOpen
// against its target. The returned cancel is also invoked by Stop.
func (a *Adaptive) WatchBreakers(bs *supervise.BreakerSet) func() {
	cancel := bs.OnTransition(func(target string, from, to supervise.BreakerState) {
		if to == supervise.BreakerOpen {
			a.Degrade(Signal{Kind: SignalBreakerOpen, Service: target,
				Detail: fmt.Sprintf("breaker %s: %v -> %v", target, from, to)})
		}
	})
	a.cancels = append(a.cancels, cancel)
	return cancel
}

// snapshotDegraded copies the current degraded set, reporting whether
// new signals arrived since the last snapshot.
func (a *Adaptive) snapshotDegraded() (map[string]Signal, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	fresh := a.dirty
	a.dirty = false
	if len(a.degraded) == 0 {
		return nil, fresh
	}
	out := make(map[string]Signal, len(a.degraded))
	for k, v := range a.degraded {
		out[k] = v
	}
	return out, fresh
}

// avoidSet derives the service-avoid set for runStep.
func avoidSet(degraded map[string]Signal) map[string]bool {
	if len(degraded) == 0 {
		return nil
	}
	out := make(map[string]bool, len(degraded))
	for svc := range degraded {
		out[svc] = true
	}
	return out
}

// boundTo reports whether any remaining step's current binding — the
// proactive cache entry or the top-ranked discovery candidate — is a
// degraded service: the "signal fired against a service bound to a
// remaining or in-flight step" condition that justifies a re-plan.
//
// Budget 24: this runs once per degradation signal (not per delivery),
// and semantic discovery for uncached steps dominates its reachable
// allocation sites.
//
//lint:hot budget=24
func (a *Adaptive) boundTo(remaining []Step, degraded map[string]Signal) bool {
	if len(degraded) == 0 {
		return false
	}
	var scratch float64
	for _, s := range remaining {
		if p, ok := a.Engine.cache[s.Task.Concept]; ok {
			if _, bad := degraded[p.Name]; bad {
				return true
			}
			continue
		}
		ms, err := a.Engine.discover(s, &scratch)
		if err != nil || len(ms) == 0 {
			continue
		}
		if _, bad := degraded[ms[0].Profile.Name]; bad {
			return true
		}
	}
	return false
}

// Run executes the goal adaptively and returns the conversation outcome.
// The static engine's counters (attempts, rebinds, breaker skips) appear
// per step; Replans/Migrations/Abandoned summarise the adaptation.
func (a *Adaptive) Run() Execution {
	a.Start()
	clk := a.clock()
	started := clk.Now()
	exec := Execution{}
	fail := func(err error) Execution {
		exec.Err = err
		exec.Abandoned = true
		exec.Latency = groupLatency(exec.Steps)
		if a.Engine != nil {
			a.Engine.record(&exec)
		}
		a.emit(started, &exec)
		return exec
	}
	if a.Engine == nil || a.Engine.Invoke == nil {
		return fail(fmt.Errorf("composition: adaptive executor needs an engine with an invoker"))
	}
	if a.Library == nil {
		return fail(fmt.Errorf("composition: adaptive executor needs a library"))
	}
	maxReplans := a.MaxReplans
	if maxReplans == 0 {
		maxReplans = 3
	}

	planStart := clk.Now()
	plans, err := a.Library.PlanRanked(a.Goal, a.MaxPlans)
	if err != nil {
		return fail(err)
	}
	a.phase("plan", planStart)

	hand := a.Resume
	if hand == nil {
		hand = NewHandoff(a.Initial)
	}

	planIdx := 0
	plan := plans[planIdx]
	i := 0
	for i < len(plan) {
		step := plan[i]
		if _, done := hand.Completed[step.Task.Name]; done {
			// Carried forward across a migration: never redone.
			i++
			continue
		}

		degraded, fresh := a.snapshotDegraded()
		a.applyDead(degraded)

		// A fresh signal against a service bound to a remaining step
		// triggers a proactive re-plan before that binding fails.
		if fresh && maxReplans > exec.Replans && a.boundTo(plan[i:], degraded) {
			if next, ok := a.replan(plans, planIdx, hand, degraded); ok {
				planIdx, plan, i = next, plans[next], 0
				exec.Replans++
				a.phase("replan", clk.Now())
				continue
			}
		}

		stepStart := clk.Now()
		report, termErr := a.Engine.runStep(step, avoidSet(degraded))
		exec.Steps = append(exec.Steps, report)
		a.phase("step:"+step.Task.Name, stepStart)

		if termErr == nil && report.OK {
			if report.Avoided > 0 || report.BreakerSkips > 0 {
				// A preferred candidate was passed over for a degraded
				// or quarantined service: the step migrated to a
				// substitute.
				exec.Migrations++
			}
			hand.Complete(step, report)
			i++
			continue
		}
		if termErr == nil && step.Task.Optional {
			exec.Degraded = true
			i++
			continue
		}

		// The step failed (or lost every broker): the static engine
		// abandons here. Re-plan onto an alternative decomposition,
		// keeping completed work.
		if exec.Replans >= maxReplans {
			if termErr != nil {
				return fail(termErr)
			}
			return fail(stepFailure(step, report))
		}
		degraded, _ = a.snapshotDegraded()
		next, ok := a.replan(plans, planIdx, hand, degraded)
		if !ok {
			if termErr != nil {
				return fail(termErr)
			}
			return fail(stepFailure(step, report))
		}
		planIdx, plan, i = next, plans[next], 0
		exec.Replans++
		a.phase("replan", clk.Now())
	}

	exec.Succeeded = true
	exec.Latency = groupLatency(exec.Steps)
	a.Engine.record(&exec)
	a.emit(started, &exec)
	return exec
}

// applyDead confirms Dead-signalled services dead on the engine
// (deregistration + cache drop). Runs on the executor goroutine so the
// engine stays single-threaded.
func (a *Adaptive) applyDead(degraded map[string]Signal) {
	for svc, sig := range degraded {
		if sig.Dead {
			a.Engine.ConfirmDead(svc)
		}
	}
}

// replan picks the best-ranked plan other than current whose remaining
// steps validate against the handoff's available data and whose bindings
// avoid the degraded set. A plan with clean bindings wins; failing that,
// any dataflow-valid alternative is taken (its steps will steer via the
// avoid set). Reports false when no alternative plan remains.
//
// Budget 32: at most MaxReplans runs per conversation; dataflow
// validation and the boundTo discovery probe account for nearly all
// reachable sites, and both are bounded by the ranked-plan cap.
//
//lint:hot budget=32
func (a *Adaptive) replan(plans [][]Step, current int, hand *Handoff, degraded map[string]Signal) (int, bool) {
	available := hand.Available()
	fallback := -1
	for idx, p := range plans {
		if idx == current {
			continue
		}
		remaining := remainingSteps(p, hand)
		if len(remaining) == 0 {
			return idx, true // everything already done under this plan
		}
		if err := ValidateDataflow(remaining, available, a.Engine.Onto); err != nil {
			continue
		}
		if !a.boundTo(remaining, degraded) {
			return idx, true
		}
		if fallback < 0 {
			fallback = idx
		}
	}
	if fallback >= 0 {
		return fallback, true
	}
	return 0, false
}

// remainingSteps filters a plan down to steps not yet completed.
func remainingSteps(plan []Step, hand *Handoff) []Step {
	out := make([]Step, 0, len(plan))
	for _, s := range plan {
		if _, done := hand.Completed[s.Task.Name]; !done {
			out = append(out, s)
		}
	}
	return out
}

// pending wide-event phases accumulated during Run.
type phaseMark struct {
	name string
	d    time.Duration
}

// phase records a named phase's duration since start.
func (a *Adaptive) phase(name string, start time.Time) {
	if a.Events == nil {
		return
	}
	a.mu.Lock()
	a.phases = append(a.phases, phaseMark{name, a.clock().Now().Sub(start)})
	a.mu.Unlock()
}

// emit publishes the conversation's wide event.
func (a *Adaptive) emit(started time.Time, exec *Execution) {
	if a.Events == nil {
		return
	}
	node := a.Node
	if node == "" {
		node = "composer"
	}
	ev := obs.NewEvent(node, obs.NewTraceID(), "adaptive", a.Goal, "composition", started)
	a.mu.Lock()
	for _, ph := range a.phases {
		ev.AddPhase(ph.name, ph.d)
	}
	a.phases = nil
	a.mu.Unlock()
	ev.SetAttr("replans", fmt.Sprintf("%d", exec.Replans))
	ev.SetAttr("migrations", fmt.Sprintf("%d", exec.Migrations))
	outcome := obs.OutcomeOK
	if exec.Abandoned {
		outcome = obs.OutcomeError
	}
	ev.Finish(outcome, a.clock().Now())
	a.Events.Emit(ev)
}
