package composition

import (
	"errors"
	"fmt"
	"time"

	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/ontology"
	"pervasivegrid/internal/supervise"
)

// Mode selects the coordination architecture the paper contrasts:
// centralized broker-based coordination versus distributed coordination
// across brokers.
type Mode int

// Coordination modes.
const (
	// Centralized coordinates every step through the first broker; if
	// that broker is down the composition fails outright.
	Centralized Mode = iota
	// Distributed lets each step use any live broker, surviving broker
	// failures.
	Distributed
)

func (m Mode) String() string {
	if m == Distributed {
		return "distributed"
	}
	return "centralized"
}

// BindStrategy selects when services are bound to steps.
type BindStrategy int

// Binding strategies.
const (
	// Reactive discovers services at execution time, per step — the
	// paper's "re-actively integrate and execute services".
	Reactive BindStrategy = iota
	// Proactive pre-resolves bindings ahead of execution ("pro-actively
	// compute some generic information about services") and falls back
	// to discovery when a cached binding has vanished.
	Proactive
)

func (s BindStrategy) String() string {
	if s == Proactive {
		return "proactive"
	}
	return "reactive"
}

// Invoker calls a bound service for a step. Experiments inject failure
// behaviour here; real deployments route an envelope to the provider agent.
type Invoker func(p *ontology.Profile, step Step) error

// Engine executes plans against discovered services.
type Engine struct {
	// Brokers are the available discovery brokers; at least one is
	// required. Centralized mode uses only Brokers[0].
	Brokers []*discovery.Broker
	// Onto is the shared vocabulary.
	Onto *ontology.Ontology
	// Invoke performs a service call; required.
	Invoke Invoker
	// Mode picks the coordination architecture.
	Mode Mode
	// Strategy picks reactive or proactive binding.
	Strategy BindStrategy
	// MaxAttempts bounds invocation attempts per step, counting the
	// first try (default 3).
	MaxAttempts int
	// MinScore is the minimum discovery score for a service to be
	// bindable to a step (default 0.75). Composition needs substitutable
	// services, a higher bar than browsing-style fuzzy discovery.
	MinScore float64
	// DiscoveryCost and InvokeCost are the modelled per-operation
	// latencies accumulated into Execution.Latency.
	DiscoveryCost, InvokeCost float64
	// BrokerDown marks brokers (by name) as failed for coordination
	// experiments.
	BrokerDown map[string]bool
	// Breakers, when set, gates candidates by per-service circuit state:
	// a candidate whose breaker is open is skipped without burning an
	// invocation attempt, and every invocation outcome feeds back into
	// the breaker — so a service that keeps failing compositions stops
	// being tried at all until its cool-down elapses.
	Breakers *supervise.BreakerSet
	// DeregisterAfter is how many consecutive invocation failures
	// confirm a service dead and withdraw its advertisement from every
	// broker (default 3; negative = never deregister). Below the
	// threshold a failing service is only quarantined by its breaker —
	// transient failures must not permanently nuke a registration.
	DeregisterAfter int
	// Metrics, when set, receives composition counters
	// (composition_executions_total, composition_abandoned_total, ...).
	Metrics *obs.Registry

	// cache holds proactive bindings keyed by step concept.
	cache map[string]*ontology.Profile
	// failStreak counts consecutive invocation failures per service,
	// reset on success; reaching DeregisterAfter confirms death.
	failStreak map[string]int
}

// DefaultDeregisterAfter is the consecutive-failure threshold that
// confirms a service dead when Engine.DeregisterAfter is zero.
const DefaultDeregisterAfter = 3

// StepReport records one step's execution.
type StepReport struct {
	Task     string
	Service  string // bound service name ("" when unbound)
	Attempts int
	Rebinds  int
	// BreakerSkips counts candidates passed over because their circuit
	// breaker was open; skips do not consume invocation attempts.
	BreakerSkips int
	OK           bool
	Optional     bool
	// CacheHit marks a proactive binding that was used directly.
	CacheHit bool
	// Avoided counts candidates passed over because the caller marked
	// their service degraded (adaptive re-composition steering around a
	// known-bad binding before its breaker opens).
	Avoided int
	// Group echoes the step's parallel group.
	Group int
	// Latency is this step's modelled cost contribution.
	Latency float64
}

// Execution is the outcome of running one plan.
type Execution struct {
	Steps []StepReport
	// Succeeded means every required step completed.
	Succeeded bool
	// Degraded means at least one optional step failed while the
	// composite still succeeded.
	Degraded bool
	// Replans counts mid-conversation re-plans (adaptive executor only;
	// the static engine never re-plans).
	Replans int
	// Migrations counts steps completed on a substitute service after a
	// degradation signal fired against their original binding.
	Migrations int
	// Abandoned marks a conversation that was dropped: it failed and no
	// (further) re-plan could rescue it.
	Abandoned bool
	// Latency is the modelled cost (discovery + invocations).
	Latency float64
	// Err carries the terminal failure when Succeeded is false.
	Err error
}

// ErrNoBroker reports a composition with no live coordinator.
var ErrNoBroker = errors.New("composition: no live broker")

// ErrUnbound reports a step with no matching service.
var ErrUnbound = errors.New("composition: no service matches step")

// liveBrokers returns the brokers usable under the engine's mode.
func (e *Engine) liveBrokers() []*discovery.Broker {
	var candidates []*discovery.Broker
	if e.Mode == Centralized {
		if len(e.Brokers) > 0 {
			candidates = e.Brokers[:1]
		}
	} else {
		candidates = e.Brokers
	}
	var live []*discovery.Broker
	for _, b := range candidates {
		if b != nil && !e.BrokerDown[b.Name] {
			live = append(live, b)
		}
	}
	return live
}

// discover returns ranked candidates for a step from the live brokers,
// charging the per-lookup cost to *cost.
func (e *Engine) discover(step Step, cost *float64) ([]discovery.Match, error) {
	live := e.liveBrokers()
	if len(live) == 0 {
		return nil, ErrNoBroker
	}
	minScore := e.MinScore
	if minScore <= 0 {
		minScore = 0.75
	}
	req := ontology.Request{Concept: step.Task.Concept, Outputs: step.Task.Outputs}
	seen := map[string]bool{}
	var out []discovery.Match
	for _, b := range live {
		*cost += e.DiscoveryCost
		for _, m := range b.Lookup(req, 0) {
			if m.Score >= minScore && !seen[m.Profile.Name] {
				seen[m.Profile.Name] = true
				out = append(out, m)
			}
		}
		if len(out) > 0 {
			break // nearest live broker that can answer wins
		}
	}
	return out, nil
}

// Prebind resolves and caches a binding for every primitive concept in the
// plan — the proactive phase. Concepts with no current match are skipped
// (execution will fall back to discovery).
func (e *Engine) Prebind(plan []Step) int {
	if e.cache == nil {
		e.cache = map[string]*ontology.Profile{}
	}
	bound := 0
	var scratch float64
	for _, s := range plan {
		if _, ok := e.cache[s.Task.Concept]; ok {
			continue
		}
		ms, err := e.discover(s, &scratch)
		if err == nil && len(ms) > 0 {
			e.cache[s.Task.Concept] = ms[0].Profile
			bound++
		}
	}
	return bound
}

// InvalidateCache clears proactive bindings (e.g. after topology churn).
func (e *Engine) InvalidateCache() { e.cache = nil }

// stillAdvertised reports whether a cached profile is still live on any
// usable broker.
func (e *Engine) stillAdvertised(p *ontology.Profile) bool {
	for _, b := range e.liveBrokers() {
		for _, prof := range b.Reg.Profiles() {
			if prof.Name == p.Name {
				return true
			}
		}
	}
	return false
}

// runStep binds and invokes one step: proactively from cache or
// reactively by discovery, trying candidates in rank order up to
// MaxAttempts. Candidates whose breaker is open, or whose service the
// caller marked in avoid, are skipped without burning an attempt. A
// non-nil error is terminal for the whole plan (no live broker); a
// report with OK unset is a step failure the caller may degrade,
// abandon, or re-plan around.
func (e *Engine) runStep(step Step, avoid map[string]bool) (StepReport, error) {
	report := StepReport{Task: step.Task.Name, Optional: step.Task.Optional, Group: step.Group}
	maxAttempts := e.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}

	// Build the candidate list.
	var candidates []*ontology.Profile
	if e.Strategy == Proactive {
		if p, ok := e.cache[step.Task.Concept]; ok && e.stillAdvertised(p) {
			candidates = append(candidates, p)
			report.CacheHit = true
		}
	}
	if len(candidates) == 0 {
		ms, err := e.discover(step, &report.Latency)
		if err != nil {
			return report, err
		}
		for _, m := range ms {
			candidates = append(candidates, m.Profile)
		}
	}

	// Try candidates in rank order, popping each; when the list runs
	// dry, re-discover once more in case new services have appeared
	// since the previous lookup.
	rediscovered := false
	for report.Attempts < maxAttempts {
		if len(candidates) == 0 {
			if rediscovered {
				break
			}
			rediscovered = true
			ms, err := e.discover(step, &report.Latency)
			if err != nil {
				return report, err
			}
			for _, m := range ms {
				candidates = append(candidates, m.Profile)
			}
			continue
		}
		p := candidates[0]
		candidates = candidates[1:]
		if avoid[p.Name] {
			// The caller knows this service is degraded (signal fired
			// against it); steer to a substitute without burning an
			// attempt.
			report.Avoided++
			continue
		}
		if e.Breakers != nil && !e.Breakers.Allow(p.Name) {
			// Open circuit: this service is known-bad right now.
			// Skip to the next candidate without burning an
			// attempt — the breaker already paid for the failures
			// that opened it.
			report.BreakerSkips++
			continue
		}
		report.Attempts++
		report.Latency += e.InvokeCost
		if err := e.Invoke(p, step); err == nil {
			if e.Breakers != nil {
				e.Breakers.Success(p.Name)
			}
			delete(e.failStreak, p.Name)
			report.OK = true
			report.Service = p.Name
			if e.Strategy == Proactive {
				if e.cache == nil {
					e.cache = map[string]*ontology.Profile{}
				}
				e.cache[step.Task.Concept] = p
			}
			break
		}
		// Fault tolerance: feed the failure to the breaker (which
		// quarantines a flapping service without forgetting it), drop
		// any stale proactive binding, and re-bind to the next
		// candidate. Only a confirmed-dead service — DeregisterAfter
		// consecutive failures — is withdrawn from the registries; a
		// single transient failure must not permanently deregister it.
		if e.Breakers != nil {
			e.Breakers.Failure(p.Name)
		}
		report.Rebinds++
		delete(e.cache, step.Task.Concept)
		e.noteFailure(p.Name)
	}
	return report, nil
}

// noteFailure bumps a service's consecutive-failure streak and confirms
// it dead at the DeregisterAfter threshold.
func (e *Engine) noteFailure(service string) {
	n := e.DeregisterAfter
	if n == 0 {
		n = DefaultDeregisterAfter
	}
	if n < 0 {
		return
	}
	if e.failStreak == nil {
		e.failStreak = map[string]int{}
	}
	e.failStreak[service]++
	if e.failStreak[service] >= n {
		e.ConfirmDead(service)
	}
}

// ConfirmDead withdraws a service's advertisement from every broker and
// forgets its proactive bindings — the confirmed-dead path, reached by
// DeregisterAfter consecutive failures or an external Down health
// verdict (Adaptive wires monitor verdicts here).
func (e *Engine) ConfirmDead(service string) {
	for _, b := range e.Brokers {
		if b != nil {
			b.Reg.Deregister(service)
		}
	}
	for c, p := range e.cache {
		if p.Name == service {
			delete(e.cache, c)
		}
	}
	delete(e.failStreak, service)
	if e.Metrics != nil {
		e.Metrics.Counter("composition_confirmed_dead_total").Inc()
	}
}

// Execute runs the plan. Each step is bound (proactively from cache or
// reactively by discovery) and invoked; on invocation failure the engine
// feeds the breaker, re-binds to the next candidate up to MaxAttempts,
// and withdraws only confirmed-dead services (DeregisterAfter
// consecutive failures). Optional-step failure degrades instead of
// aborting.
func (e *Engine) Execute(plan []Step) Execution {
	exec := Execution{}
	if e.Invoke == nil {
		exec.Err = fmt.Errorf("composition: engine has no invoker")
		return exec
	}
	for _, step := range plan {
		report, err := e.runStep(step, nil)
		exec.Steps = append(exec.Steps, report)
		if err != nil {
			exec.Err = err
			break
		}
		if !report.OK {
			if step.Task.Optional {
				exec.Degraded = true
				continue
			}
			exec.Err = stepFailure(step, report)
			break
		}
	}
	if exec.Err != nil {
		exec.Abandoned = true
	} else {
		exec.Succeeded = true
	}
	exec.Latency = groupLatency(exec.Steps)
	e.record(&exec)
	return exec
}

// stepFailure builds the terminal error for a failed required step.
func stepFailure(step Step, report StepReport) error {
	if report.Attempts == 0 {
		return fmt.Errorf("%w: %s (%s)", ErrUnbound, step.Task.Name, step.Task.Concept)
	}
	return fmt.Errorf("composition: step %s failed after %d attempts", step.Task.Name, report.Attempts)
}

// record exports one execution's outcome into the metrics registry.
func (e *Engine) record(exec *Execution) {
	if e.Metrics == nil {
		return
	}
	e.Metrics.Counter("composition_executions_total").Inc()
	if exec.Abandoned {
		e.Metrics.Counter("composition_abandoned_total").Inc()
	}
	if exec.Replans > 0 {
		e.Metrics.Counter("composition_replans_total").Add(float64(exec.Replans))
	}
	if exec.Migrations > 0 {
		e.Metrics.Counter("composition_migrations_total").Add(float64(exec.Migrations))
	}
}

// groupLatency totals step latencies with parallel groups collapsed to
// their slowest member: steps sharing a Group ran concurrently on
// independent services, so the group contributes its maximum, while
// distinct groups are sequential and sum.
func groupLatency(steps []StepReport) float64 {
	maxPerGroup := map[int]float64{}
	var order []int
	for _, s := range steps {
		if _, ok := maxPerGroup[s.Group]; !ok {
			order = append(order, s.Group)
		}
		if s.Latency > maxPerGroup[s.Group] {
			maxPerGroup[s.Group] = s.Latency
		}
	}
	total := 0.0
	for _, g := range order {
		total += maxPerGroup[g]
	}
	return total
}

// Rebinds sums re-binding events across steps.
func (x Execution) Rebinds() int {
	n := 0
	for _, s := range x.Steps {
		n += s.Rebinds
	}
	return n
}

// BreakerSkips sums open-circuit candidate skips across steps.
func (x Execution) BreakerSkips() int {
	n := 0
	for _, s := range x.Steps {
		n += s.BreakerSkips
	}
	return n
}

// RegisterShortLived advertises a profile on a broker with the given
// lifetime, modelling the paper's "short-lived services which stay in the
// vicinity for a finite amount of time and then disappear".
func RegisterShortLived(b *discovery.Broker, p *ontology.Profile, lifetime time.Duration) error {
	_, err := b.Reg.Register(p, lifetime)
	return err
}
