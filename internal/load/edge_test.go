package load

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestQuantileClampsOutOfRangeQ(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if got := h.Quantile(-0.5); got <= 0 {
		t.Fatalf("q<0 should clamp to the low end, got %v", got)
	}
	if got := h.Quantile(2); got != h.Max() {
		t.Fatalf("q>1 = %v, want exact max %v", got, h.Max())
	}
}

func TestErrorRateAndDeliveryRateEmpty(t *testing.T) {
	var res Result
	if got := res.ErrorRate(); got != 0 {
		t.Fatalf("ErrorRate on empty result = %v", got)
	}
	if got := deliveryRate(&res); got != 0 {
		t.Fatalf("deliveryRate on empty result = %v", got)
	}
}

func TestStormAndFloodDefaults(t *testing.T) {
	s := StormOptions{}.withDefaults()
	if s.Duration != 10*time.Second || s.BulkRate != 3000 || s.PriorityRate != 20 ||
		s.ServiceTime != 500*time.Microsecond || s.MailboxCapacity != 32 || s.Clock == nil {
		t.Fatalf("storm defaults = %+v", s)
	}
	f := FloodOptions{}.withDefaults()
	if f.Duration != 10*time.Second || f.Shelters != 10 || f.LeaseTTL != 2*time.Second ||
		f.RegisterRate != 20 || f.QueryRate != 60 || f.HeartbeatRate != 20 ||
		f.Blips != 2 || f.Clock == nil {
		t.Fatalf("flood defaults = %+v", f)
	}
	// Blips: -1 means "really none", distinct from the 0 → default 2.
	if got := (FloodOptions{Blips: -1}).withDefaults().Blips; got != 0 {
		t.Fatalf("Blips -1 = %d, want 0", got)
	}
}

func TestCheckStormReportFailures(t *testing.T) {
	cases := []struct {
		name    string
		metrics map[string]float64
		want    string
	}{
		{"low delivery", map[string]float64{"priorityDeliveryRate": 0.5}, "priority delivery"},
		{"dead letters", map[string]float64{"priorityDeliveryRate": 1, "priorityDeadLetters": 2}, "dead letters"},
	}
	for _, tc := range cases {
		err := CheckStormReport(&Report{Metrics: tc.metrics}, 0.99)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestCheckFloodReportFailures(t *testing.T) {
	base := func() map[string]float64 {
		return map[string]float64{
			"blips": 2, "linkDrops": 4, "reconnects": 2,
			"queryDeliveryRate": 1, "priorityDeliveryRate": 1,
			"priorityDeadLetters": 0, "liveShelters": 10,
		}
	}
	cases := []struct {
		name string
		mut  func(m map[string]float64)
		want string
	}{
		{"no severed links", func(m map[string]float64) { m["linkDrops"] = 0 }, "no connections severed"},
		{"never reconnected", func(m map[string]float64) { m["reconnects"] = 0 }, "never reconnected"},
		{"query delivery", func(m map[string]float64) { m["queryDeliveryRate"] = 0.5 }, "query delivery"},
		{"heartbeat delivery", func(m map[string]float64) { m["priorityDeliveryRate"] = 0.5 }, "heartbeat delivery"},
		{"dead letters", func(m map[string]float64) { m["priorityDeadLetters"] = 1 }, "dead letters"},
		{"empty registry", func(m map[string]float64) { m["liveShelters"] = 0 }, "registry empty"},
	}
	for _, tc := range cases {
		m := base()
		tc.mut(m)
		err := CheckFloodReport(&Report{Metrics: m}, 0.95, 0.95)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	if err := CheckFloodReport(&Report{Metrics: base()}, 0.95, 0.95); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}
}

func TestAttachRamp(t *testing.T) {
	rep := &Report{Schema: ReportSchema, Scenario: "x"}
	rep.AttachRamp(&RampResult{
		Steps:     []StepResult{{Rate: 10, Sustained: true}, {Rate: 20, Sustained: false}},
		Ceiling:   10,
		Saturated: true,
	})
	if rep.CeilingRPS != 10 || !rep.Saturated || len(rep.Steps) != 2 {
		t.Fatalf("attached = ceiling %v saturated %v steps %d", rep.CeilingRPS, rep.Saturated, len(rep.Steps))
	}
}

func TestReportFileErrors(t *testing.T) {
	if _, err := ReadReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("want error for missing file")
	}
	garbled := filepath.Join(t.TempDir(), "garbled.json")
	if err := os.WriteFile(garbled, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(garbled); err == nil {
		t.Fatal("want error for invalid JSON")
	}
	rep := &Report{Schema: ReportSchema}
	if err := rep.WriteFile(filepath.Join(t.TempDir(), "no-such-dir", "r.json")); err == nil {
		t.Fatal("want error writing into a missing directory")
	}
}

func TestRampFailReasons(t *testing.T) {
	if _, err := Ramp(RampOptions{}, func(int) error { return nil }); err == nil {
		t.Fatal("want error for zero start rate")
	}

	// A 4% error rate: achieved throughput stays above the 90% sustain
	// fraction (errors don't count), so the error-rate criterion is the
	// one that must fire.
	boom := errors.New("boom")
	res, err := Ramp(RampOptions{
		Start: 100, StepDuration: 500 * time.Millisecond, StepWarmup: 1, Workers: 8,
	}, func(i int) error {
		if i%25 == 0 {
			return boom
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated || len(res.Steps) != 1 {
		t.Fatalf("saturated=%v steps=%d, want immediate error-rate failure", res.Saturated, len(res.Steps))
	}
	if got := res.Steps[0].FailReason; !strings.Contains(got, "error rate") {
		t.Fatalf("fail reason = %q, want error rate", got)
	}

	// A p99 SLA far below the service time trips the third criterion.
	res, err = Ramp(RampOptions{
		Start: 20, StepDuration: 300 * time.Millisecond, StepWarmup: 1, Workers: 8,
		MaxP99: time.Microsecond,
	}, func(int) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated || !strings.Contains(res.Steps[0].FailReason, "SLA") {
		t.Fatalf("steps = %+v, want p99 SLA failure", res.Steps)
	}
}

func TestProxyTrackAfterCloseRejectsConn(t *testing.T) {
	upstream, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer upstream.Close()
	p, err := NewFlakyProxy(upstream.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	a, b := net.Pipe()
	defer b.Close()
	p.track(a)
	// The closed proxy must have closed the conn rather than tracking it.
	a.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := a.Read(make([]byte, 1)); err == nil {
		t.Fatal("conn still open after track on closed proxy")
	}
	if p.Drops() != 0 {
		t.Fatalf("drops = %d, want 0 (close is not a drop)", p.Drops())
	}
}
