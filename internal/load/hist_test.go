package load

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramQuantilesAgainstExactSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHistogram()
	n := 20_000
	vals := make([]int64, n)
	for i := range vals {
		// Mixed regimes: µs-scale bulk plus a heavy ms-scale tail.
		v := int64(rng.ExpFloat64() * 2e5)
		if rng.Intn(100) == 0 {
			v += int64(rng.Intn(50)) * int64(time.Millisecond)
		}
		vals[i] = v
		h.Record(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if h.Count() != int64(n) {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(n))-1]
		got := int64(h.Quantile(q))
		// Upper-bound semantics: got >= exact, within one octave sub-bucket
		// (~1.6% relative error) plus rounding slack near the rank edge.
		if got < exact-exact/32 {
			t.Fatalf("q=%g: histogram %d below exact %d", q, got, exact)
		}
		if got > exact+exact/16+1 {
			t.Fatalf("q=%g: histogram %d overshoots exact %d beyond bucket error", q, got, exact)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("p100 %v != max %v", h.Quantile(1), h.Max())
	}
}

func TestHistogramBucketBoundsRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back into that bucket, and
	// bounds must be strictly increasing.
	prev := int64(-1)
	for idx := 0; idx <= bucketIndex(1<<40); idx++ {
		hi := bucketHigh(idx)
		if bucketIndex(hi) != idx {
			t.Fatalf("bucketHigh(%d)=%d maps to bucket %d", idx, hi, bucketIndex(hi))
		}
		if hi <= prev {
			t.Fatalf("bucket %d bound %d not above previous %d", idx, hi, prev)
		}
		prev = hi
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-time.Second) // clamps to zero
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative record: count=%d max=%v", h.Count(), h.Max())
	}
}

func TestHistogramMergeAndSnapshotRoundTrip(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 1000; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
		b.Record(time.Duration(i) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d, want 2000", a.Count())
	}
	p99 := a.Quantile(0.99)

	rebuilt := FromSnapshot(a.Snapshot())
	if rebuilt.Count() != a.Count() {
		t.Fatalf("snapshot round-trip count %d != %d", rebuilt.Count(), a.Count())
	}
	if got := rebuilt.Quantile(0.99); got != p99 {
		t.Fatalf("snapshot round-trip p99 %v != %v", got, p99)
	}
}

// TestHistogramExemplars checks that tail percentiles answer with a
// concrete TraceID no faster than the percentile itself: the p99
// exemplar must come from the p99 bucket or the slower tail.
func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram()
	const fastTrace, slowTrace, maxTrace = 0x111, 0x222, 0x333
	for i := 0; i < 990; i++ {
		h.RecordTraced(time.Millisecond, fastTrace)
	}
	for i := 0; i < 9; i++ {
		h.RecordTraced(80*time.Millisecond, slowTrace)
	}
	h.RecordTraced(500*time.Millisecond, maxTrace)

	if got := h.Exemplar(0.50); got != fastTrace {
		t.Fatalf("p50 exemplar = %#x, want fast trace %#x", got, fastTrace)
	}
	if got := h.Exemplar(0.999); got != slowTrace && got != maxTrace {
		t.Fatalf("p999 exemplar = %#x, want a tail trace", got)
	}
	if got := h.MaxExemplar(); got != maxTrace {
		t.Fatalf("max exemplar = %#x, want %#x", got, maxTrace)
	}
	// Untraced observations leave no exemplar, and an untraced histogram
	// answers 0 rather than inventing one.
	u := NewHistogram()
	u.Record(time.Millisecond)
	if u.Exemplar(0.99) != 0 || u.MaxExemplar() != 0 {
		t.Fatal("untraced histogram produced an exemplar")
	}
}

// TestHistogramExemplarNeverFaster floods the fast buckets with traced
// requests and leaves the slow tail untraced: the tail exemplar must
// fall back to the max trace, never a fast bucket's.
func TestHistogramExemplarNeverFaster(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 999; i++ {
		h.RecordTraced(time.Millisecond, 0xfa57)
	}
	h.RecordTraced(time.Second, 0x510)
	if got := h.Exemplar(0.9999); got != 0x510 {
		t.Fatalf("tail exemplar = %#x, want the slow trace 0x510", got)
	}
}

// TestHistogramExemplarSurvivesSnapshotAndMerge round-trips exemplars
// through the wire shape and a shard merge — the path pgridload takes
// from per-client histograms to the printed report.
func TestHistogramExemplarSurvivesSnapshotAndMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.RecordTraced(time.Millisecond, 0xa)
	b.RecordTraced(time.Minute, 0xb)
	a.Merge(b)
	if got := a.MaxExemplar(); got != 0xb {
		t.Fatalf("merge lost max exemplar: %#x", got)
	}
	if got := a.Exemplar(0.999); got != 0xb {
		t.Fatalf("merge lost tail exemplar: %#x", got)
	}

	rebuilt := FromSnapshot(a.Snapshot())
	if got := rebuilt.Exemplar(0.999); got != 0xb {
		t.Fatalf("snapshot round-trip lost tail exemplar: %#x", got)
	}
	if got := rebuilt.MaxExemplar(); got != 0xb {
		t.Fatalf("snapshot round-trip lost max exemplar: %#x", got)
	}
	if got := rebuilt.Exemplar(0.01); got != 0xa {
		t.Fatalf("snapshot round-trip lost fast exemplar: %#x", got)
	}
}
