package load

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramQuantilesAgainstExactSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHistogram()
	n := 20_000
	vals := make([]int64, n)
	for i := range vals {
		// Mixed regimes: µs-scale bulk plus a heavy ms-scale tail.
		v := int64(rng.ExpFloat64() * 2e5)
		if rng.Intn(100) == 0 {
			v += int64(rng.Intn(50)) * int64(time.Millisecond)
		}
		vals[i] = v
		h.Record(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if h.Count() != int64(n) {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(n))-1]
		got := int64(h.Quantile(q))
		// Upper-bound semantics: got >= exact, within one octave sub-bucket
		// (~1.6% relative error) plus rounding slack near the rank edge.
		if got < exact-exact/32 {
			t.Fatalf("q=%g: histogram %d below exact %d", q, got, exact)
		}
		if got > exact+exact/16+1 {
			t.Fatalf("q=%g: histogram %d overshoots exact %d beyond bucket error", q, got, exact)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("p100 %v != max %v", h.Quantile(1), h.Max())
	}
}

func TestHistogramBucketBoundsRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back into that bucket, and
	// bounds must be strictly increasing.
	prev := int64(-1)
	for idx := 0; idx <= bucketIndex(1<<40); idx++ {
		hi := bucketHigh(idx)
		if bucketIndex(hi) != idx {
			t.Fatalf("bucketHigh(%d)=%d maps to bucket %d", idx, hi, bucketIndex(hi))
		}
		if hi <= prev {
			t.Fatalf("bucket %d bound %d not above previous %d", idx, hi, prev)
		}
		prev = hi
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-time.Second) // clamps to zero
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative record: count=%d max=%v", h.Count(), h.Max())
	}
}

func TestHistogramMergeAndSnapshotRoundTrip(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 1000; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
		b.Record(time.Duration(i) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d, want 2000", a.Count())
	}
	p99 := a.Quantile(0.99)

	rebuilt := FromSnapshot(a.Snapshot())
	if rebuilt.Count() != a.Count() {
		t.Fatalf("snapshot round-trip count %d != %d", rebuilt.Count(), a.Count())
	}
	if got := rebuilt.Quantile(0.99); got != p99 {
		t.Fatalf("snapshot round-trip p99 %v != %v", got, p99)
	}
}
