package load

import (
	"fmt"
	"math"
	"sync"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/ontology"
	"pervasivegrid/internal/supervise"
)

// Flood-evacuation scenario: handhelds in a flooding district keep
// shelter advertisements alive under short leases, query for evacuation
// routes, and send priority heartbeats — all across a link that keeps
// dying (a FlakyProxy severs every connection a few times per run). The
// claim under test is the robustness substrate end to end: DialReconnect
// must buffer and replay through the outages, CallRetry must turn
// partitions into latency instead of failure, lease churn must keep the
// registry honest, and the priority lane must stay clean throughout.

// Flood scenario ontologies.
const (
	FloodOntologyRegister  = "x-evac-register"
	FloodOntologyRoute     = "x-evac-route"
	FloodOntologyHeartbeat = "pgrid-control-evac" // priority lane
)

// Flood scenario agent IDs on the base platform.
const (
	FloodRegistryID = agent.ID("evac-registry")
	FloodPlannerID  = agent.ID("evac-planner")
)

// FloodOptions shapes a flood-evacuation run.
type FloodOptions struct {
	// Duration is the measured span (default 10s).
	Duration time.Duration
	// Shelters is the advertised shelter population (default 10).
	Shelters int
	// LeaseTTL bounds each shelter advertisement (default 2s: misses a
	// couple of renewals and the shelter vanishes from the registry).
	LeaseTTL time.Duration
	// RegisterRate is the shelter register/renew rate in req/s (default
	// 20 — each shelter renews ~every Shelters/rate seconds).
	RegisterRate float64
	// QueryRate is the evacuation-route query rate in req/s (default 60).
	QueryRate float64
	// HeartbeatRate is the priority heartbeat rate in req/s (default 20).
	HeartbeatRate float64
	// Blips is how many times the link is severed mid-run (default 2).
	Blips int
	// Workers sizes each generator's pool.
	Workers int
	// Clock is the time source (default wall clock).
	Clock obs.Clock
}

func (o FloodOptions) withDefaults() FloodOptions {
	if o.Duration <= 0 {
		o.Duration = 10 * time.Second
	}
	if o.Shelters <= 0 {
		o.Shelters = 10
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 2 * time.Second
	}
	if o.RegisterRate <= 0 {
		o.RegisterRate = 20
	}
	if o.QueryRate <= 0 {
		o.QueryRate = 60
	}
	if o.HeartbeatRate <= 0 {
		o.HeartbeatRate = 20
	}
	if o.Blips < 0 {
		o.Blips = 0
	} else if o.Blips == 0 {
		o.Blips = 2
	}
	if o.Clock == nil {
		o.Clock = obs.Real
	}
	return o
}

// floodRegister advertises one shelter.
type floodRegister struct {
	Shelter  int     `json:"shelter"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Capacity float64 `json:"capacity"`
}

// floodRouteReq asks for the nearest live shelter.
type floodRouteReq struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// floodRouteReply answers a route query.
type floodRouteReply struct {
	Shelter string  `json:"shelter"`
	Dist    float64 `json:"dist"`
	Live    int     `json:"live"`
}

// retryPolicy rides out a reconnect window: a few attempts spread across
// ~1s of backoff, each with its own attempt timeout.
func floodRetryPolicy(clk obs.Clock) agent.RetryPolicy {
	return agent.RetryPolicy{
		MaxAttempts:    4,
		BaseDelay:      100 * time.Millisecond,
		MaxDelay:       800 * time.Millisecond,
		AttemptTimeout: 2 * time.Second,
		Clock:          clk,
	}
}

// RunFlood stands up the evacuation base station behind a flaky link and
// drives the handheld population through it. The report's latency
// histograms measure the route queries (the evacuee-visible number);
// Metrics carries heartbeat delivery, reconnect and lease-churn
// accounting.
func RunFlood(opts FloodOptions) (*Report, error) {
	opts = opts.withDefaults()
	clk := opts.Clock

	base := agent.NewPlatform("evac-base")
	defer base.Close()
	reg := discovery.NewRegistry()
	reg.Now = clk.Now

	// evac-registry: shelters register/renew here; re-registering a name
	// replaces its lease, so renewal is just another register.
	err := base.Register(FloodRegistryID, agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		var msg floodRegister
		if err := env.Decode(&msg); err != nil {
			return
		}
		name := fmt.Sprintf("shelter-%d", msg.Shelter)
		lease, err := reg.Register(&ontology.Profile{
			Name:    name,
			Concept: "EvacuationShelter",
			Properties: map[string]ontology.Value{
				"x":        ontology.Num(msg.X),
				"y":        ontology.Num(msg.Y),
				"capacity": ontology.Num(msg.Capacity),
			},
		}, opts.LeaseTTL)
		status := "ok"
		if err != nil {
			status = err.Error()
		}
		reply, rerr := env.Reply("inform", map[string]any{"status": status, "lease": lease.ID})
		if rerr != nil {
			return
		}
		_ = ctx.Send(reply)
	}), agent.Attributes{}, nil)
	if err != nil {
		return nil, err
	}

	// evac-planner: nearest live shelter by registry snapshot. Expired
	// leases are swept on every snapshot, so a shelter whose handheld
	// missed its renewals during an outage genuinely disappears.
	err = base.Register(FloodPlannerID, agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		if env.Ontology == FloodOntologyHeartbeat {
			reply, rerr := env.Reply("inform", map[string]string{"status": "alive"})
			if rerr != nil {
				return
			}
			_ = ctx.Send(reply)
			return
		}
		var q floodRouteReq
		if err := env.Decode(&q); err != nil {
			return
		}
		profiles := reg.Profiles()
		best, bestDist := "", math.MaxFloat64
		for _, p := range profiles {
			dx := p.Properties["x"].N - q.X
			dy := p.Properties["y"].N - q.Y
			if d := dx*dx + dy*dy; d < bestDist {
				best, bestDist = p.Name, d
			}
		}
		reply, rerr := env.Reply("inform", floodRouteReply{
			Shelter: best,
			Dist:    math.Sqrt(bestDist),
			Live:    len(profiles),
		})
		if rerr != nil {
			return
		}
		_ = ctx.Send(reply)
	}), agent.Attributes{}, nil)
	if err != nil {
		return nil, err
	}

	gw, err := agent.ListenAndServe(base, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer gw.Close()

	// The flaky proxy is the flood: every connection through it dies on
	// each blip, and the handhelds' reconnect layer has to dig out.
	proxy, err := NewFlakyProxy(gw.Addr())
	if err != nil {
		return nil, err
	}
	defer proxy.Close()

	client := agent.NewPlatform("evac-handhelds")
	defer client.Close()
	link := agent.DialReconnect(client, proxy.Addr(), agent.ReconnectOptions{
		MaxBuffer: 4096,
		BaseDelay: 20 * time.Millisecond,
		MaxDelay:  250 * time.Millisecond,
	})
	defer link.Close()

	policy := floodRetryPolicy(clk)

	// Seed every shelter before the flood so the first route queries have
	// candidates.
	for s := 0; s < opts.Shelters; s++ {
		if _, err := agent.CallRetry(client, FloodRegistryID, "request", FloodOntologyRegister,
			seedShelter(s, opts.Shelters), 5*time.Second, policy); err != nil {
			return nil, fmt.Errorf("load: flood seed shelter %d: %w", s, err)
		}
	}

	// Outage schedule: Blips evenly spaced interior points of the run.
	supervise.Spawn("flood-blips", func() {
		gap := opts.Duration / time.Duration(opts.Blips+1)
		for b := 0; b < opts.Blips; b++ {
			clk.Sleep(gap)
			proxy.DropAll()
		}
	})

	// Three open-loop populations: renewals, heartbeats (background) and
	// route queries (foreground, measured).
	var wg sync.WaitGroup
	var renewRes, hbRes *Result
	var renewErr, hbErr error
	wg.Add(2)
	supervise.Spawn("flood-renew", func() {
		defer wg.Done()
		renewRes, renewErr = Run(Options{
			Rate: opts.RegisterRate, Duration: opts.Duration, Workers: opts.Workers, Clock: clk,
		}, func(i int) error {
			s := i % opts.Shelters
			_, err := agent.CallRetry(client, FloodRegistryID, "request", FloodOntologyRegister,
				seedShelter(s, opts.Shelters), 3*time.Second, policy)
			return err
		})
	})
	supervise.Spawn("flood-heartbeat", func() {
		defer wg.Done()
		hbRes, hbErr = Run(Options{
			Rate: opts.HeartbeatRate, Duration: opts.Duration, Workers: opts.Workers, Clock: clk,
		}, func(int) error {
			_, err := agent.CallRetry(client, FloodPlannerID, "request", FloodOntologyHeartbeat,
				map[string]string{"op": "ping"}, 3*time.Second, policy)
			return err
		})
	})

	queryRes, err := Run(Options{
		Rate: opts.QueryRate, Duration: opts.Duration, Workers: opts.Workers, Clock: clk,
	}, func(i int) error {
		env, err := agent.CallRetry(client, FloodPlannerID, "request", FloodOntologyRoute,
			floodRouteReq{X: float64(i % 100), Y: float64(i % 37)}, 3*time.Second, policy)
		if err != nil {
			return err
		}
		var reply floodRouteReply
		if err := env.Decode(&reply); err != nil {
			return err
		}
		if reply.Shelter == "" {
			return fmt.Errorf("no live shelter (registry empty)")
		}
		return nil
	})
	wg.Wait()
	if err != nil {
		return nil, err
	}
	if renewErr != nil {
		return nil, renewErr
	}
	if hbErr != nil {
		return nil, hbErr
	}

	linkStats := link.Stats()
	rep := NewReport("flood-evac", gw.Addr(), opts.QueryRate, queryRes)
	rep.Metrics = map[string]float64{
		"blips":                float64(opts.Blips),
		"linkDrops":            float64(proxy.Drops()),
		"reconnects":           float64(linkStats.Connects - 1),
		"replayed":             float64(linkStats.Replayed),
		"bufferOverflowed":     float64(linkStats.Overflowed),
		"queriesOK":            float64(queryRes.Completed),
		"queryDeliveryRate":    deliveryRate(queryRes),
		"renewalsOK":           float64(renewRes.Completed),
		"renewalDeliveryRate":  deliveryRate(renewRes),
		"heartbeatsOK":         float64(hbRes.Completed),
		"priorityDeliveryRate": deliveryRate(hbRes),
		"liveShelters":         float64(reg.Len()),
		"priorityDeadLetters":  float64(priorityDeadLetters(base) + priorityDeadLetters(client)),
	}
	return rep, nil
}

// seedShelter places shelter s on a ring so nearest-shelter answers vary
// with the query point.
func seedShelter(s, total int) floodRegister {
	angle := 2 * math.Pi * float64(s) / float64(total)
	return floodRegister{
		Shelter:  s,
		X:        50 + 40*math.Cos(angle),
		Y:        50 + 40*math.Sin(angle),
		Capacity: 100,
	}
}

// CheckFloodReport applies the scenario's pass criteria: the link must
// actually have been severed and recovered, queries must have kept
// flowing (retries turn outages into latency), heartbeats on the
// priority lane must be near-perfect, and the priority lane must be
// clean.
func CheckFloodReport(rep *Report, minQuery, minPriority float64) error {
	if rep.Metrics["blips"] > 0 {
		if rep.Metrics["linkDrops"] == 0 {
			return fmt.Errorf("flood: blips scheduled but no connections severed")
		}
		if rep.Metrics["reconnects"] == 0 {
			return fmt.Errorf("flood: link never reconnected after a blip")
		}
	}
	if got := rep.Metrics["queryDeliveryRate"]; got < minQuery {
		return fmt.Errorf("flood: query delivery %.4f below %.4f", got, minQuery)
	}
	if got := rep.Metrics["priorityDeliveryRate"]; got < minPriority {
		return fmt.Errorf("flood: heartbeat delivery %.4f below %.4f", got, minPriority)
	}
	if got := rep.Metrics["priorityDeadLetters"]; got != 0 {
		return fmt.Errorf("flood: %g dead letters on the priority lane", got)
	}
	if got := rep.Metrics["liveShelters"]; got == 0 {
		return fmt.Errorf("flood: registry empty at end of run — lease churn lost every shelter")
	}
	return nil
}
