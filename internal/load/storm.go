package load

import (
	"fmt"
	"sync"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/supervise"
)

// Sensor-storm scenario: thousands of bulk sensor readings per second
// converge on one base station whose mailbox is far too small for the
// deluge, driving the overload policy (DropOldest) into sustained
// shedding — while the priority lane must keep control traffic flowing.
// The claim under test is the two-lane mailbox design from the overload
// PR: bulk load sheds, telemetry/control does not.

// StormOntologyBulk tags shed-able sensor readings (normal lane).
const StormOntologyBulk = "x-storm-bulk"

// StormOntologyControl tags control pings; the pgrid-control prefix puts
// them on the priority lane.
const StormOntologyControl = "pgrid-control-storm"

// StormSinkID is the overloaded base-station agent.
const StormSinkID = agent.ID("storm-sink")

// StormOptions shapes a sensor-storm run.
type StormOptions struct {
	// Duration is the measured span (default 10s).
	Duration time.Duration
	// BulkRate is the offered sensor-reading rate in msgs/s (default
	// 3000 — above the sink's ~2000/s service ceiling, forcing sheds).
	BulkRate float64
	// PriorityRate is the control-ping rate in req/s (default 20).
	PriorityRate float64
	// ServiceTime is the sink's per-envelope handling cost (default
	// 500µs, i.e. a ~2000 msg/s service ceiling).
	ServiceTime time.Duration
	// MailboxCapacity bounds the base station's normal lane (default 32
	// — deliberately tiny against the storm).
	MailboxCapacity int
	// Policy is the overload behaviour (default DropOldest: fresh sensor
	// data beats stale).
	Policy agent.MailboxPolicy
	// Workers sizes each generator's pool.
	Workers int
	// Clock is the time source (default wall clock).
	Clock obs.Clock
}

func (o StormOptions) withDefaults() StormOptions {
	if o.Duration <= 0 {
		o.Duration = 10 * time.Second
	}
	if o.BulkRate <= 0 {
		o.BulkRate = 3000
	}
	if o.PriorityRate <= 0 {
		o.PriorityRate = 20
	}
	if o.ServiceTime <= 0 {
		o.ServiceTime = 500 * time.Microsecond
	}
	if o.MailboxCapacity <= 0 {
		o.MailboxCapacity = 32
	}
	if o.Clock == nil {
		o.Clock = obs.Real
	}
	return o
}

// stormReading is a bulk sensor sample.
type stormReading struct {
	Sensor  int     `json:"sensor"`
	Celsius float64 `json:"celsius"`
}

// RunStorm stands up a base station behind a real TCP gateway, floods it
// with bulk readings from a handheld-side platform, and measures whether
// control pings on the priority lane survive. The returned report's
// latency histograms are the *control-plane* latencies (the number that
// must stay flat while bulk sheds); bulk accounting rides in Metrics.
func RunStorm(opts StormOptions) (*Report, error) {
	opts = opts.withDefaults()
	clk := opts.Clock

	base := agent.NewPlatform("storm-base")
	base.Mailbox = agent.MailboxOptions{
		Capacity: opts.MailboxCapacity,
		Policy:   opts.Policy,
	}
	defer base.Close()
	err := base.Register(StormSinkID, agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		clk.Sleep(opts.ServiceTime) // the per-message processing cost
		if env.Performative != "request" {
			return // bulk readings are fire-and-forget
		}
		reply, err := env.Reply("inform", map[string]string{"status": "ok"})
		if err != nil {
			return
		}
		_ = ctx.Send(reply)
	}), agent.Attributes{}, nil)
	if err != nil {
		return nil, err
	}

	gw, err := agent.ListenAndServe(base, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer gw.Close()

	client := agent.NewPlatform("storm-handhelds")
	defer client.Close()
	link, err := agent.Dial(client, gw.Addr(), nil)
	if err != nil {
		return nil, err
	}
	defer link.Close()

	// Bulk storm in the background; control pings measured in the
	// foreground. Both schedules are open-loop, so an overloaded base
	// station cannot slow the offered storm down.
	var bulkRes *Result
	var bulkErr error
	var wg sync.WaitGroup
	wg.Add(1)
	supervise.Spawn("storm-bulk", func() {
		defer wg.Done()
		bulkRes, bulkErr = Run(Options{
			Rate:     opts.BulkRate,
			Duration: opts.Duration,
			Workers:  opts.Workers,
			Clock:    clk,
		}, func(i int) error {
			env, err := agent.NewEnvelope("storm-sensor", StormSinkID, "inform",
				StormOntologyBulk, stormReading{Sensor: i % 4096, Celsius: 20 + float64(i%80)/10})
			if err != nil {
				return err
			}
			return client.Send(env)
		})
	})

	prioRes, err := Run(Options{
		Rate:     opts.PriorityRate,
		Duration: opts.Duration,
		Workers:  opts.Workers,
		Clock:    clk,
	}, func(int) error {
		_, err := agent.Call(client, StormSinkID, "request", StormOntologyControl,
			map[string]string{"op": "ping"}, 3*time.Second)
		return err
	})
	wg.Wait()
	if err != nil {
		return nil, err
	}
	if bulkErr != nil {
		return nil, bulkErr
	}

	stats := base.DeliveryStats()
	rep := NewReport("sensor-storm", gw.Addr(), opts.PriorityRate, prioRes)
	rep.Metrics = map[string]float64{
		"bulkRateRPS":          opts.BulkRate,
		"bulkOffered":          float64(bulkRes.Offered),
		"bulkSendErrors":       float64(bulkRes.Errors),
		"baseDelivered":        float64(stats.Delivered),
		"baseShed":             float64(stats.Shed),
		"priorityOffered":      float64(prioRes.Offered),
		"priorityOK":           float64(prioRes.Completed),
		"priorityDeliveryRate": deliveryRate(prioRes),
		"priorityDeadLetters":  float64(priorityDeadLetters(base) + priorityDeadLetters(client)),
	}
	return rep, nil
}

// deliveryRate is the completed fraction of offered load.
func deliveryRate(r *Result) float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Completed) / float64(r.Offered)
}

// priorityDeadLetters counts dead letters that rode the priority lane —
// the number every scenario gate requires to be zero.
func priorityDeadLetters(p *agent.Platform) int {
	n := 0
	for _, dl := range p.DeadLetters() {
		if dl.Env.HighPriority() {
			n++
		}
	}
	return n
}

// CheckStormReport applies the scenario's pass criteria to a report:
// priority delivery ≥ minPriority and a clean priority lane. In overload
// runs (bulk rate above the service ceiling) callers additionally demand
// baseShed > 0 to prove the storm actually overloaded something.
func CheckStormReport(rep *Report, minPriority float64) error {
	if got := rep.Metrics["priorityDeliveryRate"]; got < minPriority {
		return fmt.Errorf("storm: priority delivery %.4f below %.4f", got, minPriority)
	}
	if got := rep.Metrics["priorityDeadLetters"]; got != 0 {
		return fmt.Errorf("storm: %g dead letters on the priority lane", got)
	}
	return nil
}
