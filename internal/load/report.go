package load

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ReportSchema identifies a pgridload JSON report. pgridbench -compare
// sniffs this to decide whether two files are latency reports (gate on
// p99/p999/ceiling) or test2json bench captures (gate on ns/op).
const ReportSchema = "pgridload/v1"

// Percentiles is the latency summary of one run, in milliseconds for
// human eyes; the histogram carries the full nanosecond resolution.
type Percentiles struct {
	P50  float64 `json:"p50Ms"`
	P90  float64 `json:"p90Ms"`
	P99  float64 `json:"p99Ms"`
	P999 float64 `json:"p999Ms"`
	Max  float64 `json:"maxMs"`
	Mean float64 `json:"meanMs"`
}

// Report is the serialized outcome of a pgridload run.
type Report struct {
	Schema   string `json:"schema"`
	Scenario string `json:"scenario"`
	Target   string `json:"target,omitempty"`

	RateRPS    float64      `json:"rateRPS"`
	Offered    int          `json:"offered"`
	Completed  int          `json:"completed"`
	Errors     int          `json:"errors"`
	ErrorRate  float64      `json:"errorRate"`
	ElapsedSec float64      `json:"elapsedSec"`
	Throughput float64      `json:"throughputRPS"`
	Latency    Percentiles  `json:"latency"`
	NaiveP99Ms float64      `json:"naiveP99Ms"` // the closed-loop lie, kept for contrast
	CeilingRPS float64      `json:"ceilingRPS,omitempty"`
	Saturated  bool         `json:"saturated,omitempty"`
	Steps      []StepResult `json:"steps,omitempty"`
	Histogram  []HistBucket `json:"histogram,omitempty"`
	Timeline   []Second     `json:"timeline,omitempty"`
	// Metrics carries scenario-specific measurements (priority delivery
	// rate, sheds, reconnects, lease churn, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Exemplars maps tail percentiles (p99, p999, max) to the hex
	// TraceID of a request observed at that latency — the handle that
	// turns "p999 spiked" into a dumpable causal timeline
	// (GET /trace?id=<exemplar> on the target node).
	Exemplars map[string]string `json:"exemplars,omitempty"`
}

// ms converts a duration for the report.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// SummarizeHist fills a Percentiles from a histogram.
func SummarizeHist(h *Histogram) Percentiles {
	return Percentiles{
		P50:  ms(h.Quantile(0.50)),
		P90:  ms(h.Quantile(0.90)),
		P99:  ms(h.Quantile(0.99)),
		P999: ms(h.Quantile(0.999)),
		Max:  ms(h.Max()),
		Mean: ms(h.Mean()),
	}
}

// NewReport folds a generator result into a serializable report.
func NewReport(scenario, target string, rate float64, res *Result) *Report {
	r := &Report{
		Schema:     ReportSchema,
		Scenario:   scenario,
		Target:     target,
		RateRPS:    rate,
		Offered:    res.Offered,
		Completed:  res.Completed,
		Errors:     res.Errors,
		ErrorRate:  res.ErrorRate(),
		ElapsedSec: res.Elapsed.Seconds(),
		Throughput: res.Throughput,
		Latency:    SummarizeHist(res.Hist),
		NaiveP99Ms: ms(res.NaiveHist.Quantile(0.99)),
		Histogram:  res.Hist.Snapshot(),
		Timeline:   res.Timeline,
	}
	ex := map[string]string{}
	if t := res.Hist.Exemplar(0.99); t != 0 {
		ex["p99"] = fmt.Sprintf("%016x", t)
	}
	if t := res.Hist.Exemplar(0.999); t != 0 {
		ex["p999"] = fmt.Sprintf("%016x", t)
	}
	if t := res.Hist.MaxExemplar(); t != 0 {
		ex["max"] = fmt.Sprintf("%016x", t)
	}
	if len(ex) > 0 {
		r.Exemplars = ex
	}
	return r
}

// AttachRamp folds a ceiling search into the report.
func (r *Report) AttachRamp(ramp *RampResult) {
	r.CeilingRPS = ramp.Ceiling
	r.Saturated = ramp.Saturated
	r.Steps = ramp.Steps
}

// WriteFile serializes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport parses a pgridload report, rejecting files with the wrong
// schema tag (a bench capture, a fleet snapshot, hand-edited junk).
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("load: %s: schema %q is not %q", path, r.Schema, ReportSchema)
	}
	return &r, nil
}

// IsReport reports whether path parses as a pgridload report.
func IsReport(path string) bool {
	_, err := ReadReport(path)
	return err == nil
}

// CompareReports gates new against old on tail latency and ceiling: p99
// and p999 may not grow by more than latencyThreshold (fractional), and
// the sustained-throughput ceiling may not drop by more than
// ceilingThreshold. It returns a human-readable table plus the gate
// verdict.
func CompareReports(old, new *Report, latencyThreshold, ceilingThreshold float64) (string, error) {
	if latencyThreshold <= 0 {
		latencyThreshold = 0.25
	}
	if ceilingThreshold <= 0 {
		ceilingThreshold = 0.20
	}
	out := fmt.Sprintf("%-24s %12s %12s %8s\n", "metric", "old", "new", "delta")
	var failures []string
	row := func(name string, oldV, newV float64, unit string, worseWhenUp bool, threshold float64) {
		delta := 0.0
		if oldV != 0 {
			delta = newV/oldV - 1
		}
		mark := ""
		bad := worseWhenUp && delta > threshold || !worseWhenUp && delta < -threshold
		if oldV != 0 && bad {
			mark = "  REGRESSION"
			failures = append(failures, fmt.Sprintf("%s %.3g -> %.3g (%+.1f%%)", name, oldV, newV, delta*100))
		}
		out += fmt.Sprintf("%-24s %12.3g %12.3g %+7.1f%%%s\n", name+unit, oldV, newV, delta*100, mark)
	}
	row("p50", old.Latency.P50, new.Latency.P50, "(ms)", true, latencyThreshold*4) // informational slack: gate is the tail
	row("p99", old.Latency.P99, new.Latency.P99, "(ms)", true, latencyThreshold)
	row("p999", old.Latency.P999, new.Latency.P999, "(ms)", true, latencyThreshold)
	row("throughput", old.Throughput, new.Throughput, "(rps)", false, ceilingThreshold)
	if old.CeilingRPS > 0 && new.CeilingRPS > 0 {
		row("ceiling", old.CeilingRPS, new.CeilingRPS, "(rps)", false, ceilingThreshold)
	}
	if len(failures) > 0 {
		return out, fmt.Errorf("load report regressed: %v", failures)
	}
	return out, nil
}
